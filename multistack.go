package heteropim

import (
	"heteropim/internal/core"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// Multi-stack data-parallel training: M HMC stacks each train a shard
// of the global minibatch and synchronize gradients over SerDes/NVLink-
// class inter-stack links once per step (ring or tree all-reduce). Each
// stack is simulated by its own event engine, advanced in parallel on
// the worker pool, with a deterministic merge — results are
// byte-identical whatever SetParallelism/HETEROPIM_WORKERS says.

// AllReduce schedules for Options.AllReduce.
const (
	// AllReduceRing is the bandwidth-optimal ring schedule: 2(M-1)
	// phases of P/M-byte chunks around a ring.
	AllReduceRing = string(nn.AllReduceRing)
	// AllReduceTree is the latency-optimal binomial-tree schedule:
	// 2*ceil(log2 M) phases of full-gradient messages.
	AllReduceTree = string(nn.AllReduceTree)
)

// Options configures a simulation run beyond the (config, model) pair.
// The zero value reproduces Run exactly.
type Options struct {
	// FreqScale is the PIM/stack PLL multiplier (0 = 1).
	FreqScale float64
	// BatchSize overrides the model's paper batch size when > 0. For a
	// multi-stack run this is the GLOBAL batch, split across stacks.
	BatchSize int
	// Stacks shards the minibatch across M stacks (data-parallel
	// training with a per-step gradient all-reduce). 0 or 1 is the
	// paper's single-stack system; M > 1 needs a PIM configuration
	// (the CPU/GPU baselines have no stacks to shard across) and a
	// global batch of at least M samples.
	Stacks int
	// AllReduce picks the gradient schedule for Stacks > 1:
	// AllReduceRing (default) or AllReduceTree.
	AllReduce string
}

// RunWithOptions simulates steady-state training of model on config
// under the given options. With the zero Options it is byte-identical
// to Run(config, model).
func RunWithOptions(config Config, model Model, o Options) (Result, error) {
	scale := o.FreqScale
	if scale == 0 {
		scale = 1
	}
	sched, err := nn.ParseAllReduceKind(o.AllReduce)
	if err != nil {
		return Result{}, err
	}
	g, err := nn.BuildWithBatch(model, o.BatchSize)
	if err != nil {
		return Result{}, err
	}
	cfg := hw.PaperConfigScaled(config, scale)
	r, err := core.RunMulti(config, g, cfg, o.Stacks, sched)
	if err != nil {
		return Result{}, err
	}
	return wrap(r), nil
}
