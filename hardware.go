package heteropim

import (
	"fmt"
	"io"

	"heteropim/internal/core"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// HardwareConfig is an opaque handle on a full platform description —
// host CPU, optional GPU, memory stack, PIM complement — for
// design-space exploration beyond the paper's fixed configurations.
type HardwareConfig struct {
	cfg hw.SystemConfig
}

// DefaultHardware returns the paper's configuration for a platform.
func DefaultHardware(kind Config) HardwareConfig {
	return HardwareConfig{cfg: hw.PaperConfig(kind)}
}

// LoadHardware parses a JSON hardware description (see SaveHardware for
// the schema) and validates it.
func LoadHardware(r io.Reader) (HardwareConfig, error) {
	cfg, err := hw.ReadConfig(r)
	if err != nil {
		return HardwareConfig{}, err
	}
	return HardwareConfig{cfg: cfg}, nil
}

// SaveHardware writes the description as indented JSON.
func (h HardwareConfig) SaveHardware(w io.Writer) error {
	return hw.WriteConfig(w, h.cfg)
}

// Name returns the configuration's label.
func (h HardwareConfig) Name() string { return h.cfg.Name }

// FixedUnits returns the fixed-function PIM unit budget.
func (h HardwareConfig) FixedUnits() int { return h.cfg.FixedPIM.Units }

// WithFixedUnits returns a copy with a different fixed-function unit
// budget — the axis the paper's McPAT/HotSpot exploration fixed at 444.
func (h HardwareConfig) WithFixedUnits(units int) (HardwareConfig, error) {
	if units < 0 {
		return HardwareConfig{}, fmt.Errorf("heteropim: negative unit budget %d", units)
	}
	c := h.cfg
	c.FixedPIM = hw.PaperFixedPIM(units)
	c.Name = fmt.Sprintf("%s (%d units)", c.Name, units)
	return HardwareConfig{cfg: c}, nil
}

// WithStackFrequencyScale returns a copy at a different PLL multiplier.
func (h HardwareConfig) WithStackFrequencyScale(scale float64) (HardwareConfig, error) {
	if scale <= 0 {
		return HardwareConfig{}, fmt.Errorf("heteropim: non-positive frequency scale %g", scale)
	}
	c := h.cfg
	c.Stack.FreqScale = scale
	return HardwareConfig{cfg: c}, nil
}

// RunOnHardware simulates a model on a custom platform under the full
// heterogeneous-PIM runtime (profiling, selection, RC, OP).
func RunOnHardware(h HardwareConfig, model Model) (Result, error) {
	g, err := nn.Build(model)
	if err != nil {
		return Result{}, err
	}
	r, err := core.RunPIM(g, h.cfg, core.HeteroOptions())
	if err != nil {
		return Result{}, err
	}
	return wrap(r), nil
}
