package heteropim

import (
	"context"
	"fmt"
	"sort"

	"heteropim/internal/core"
	"heteropim/internal/energy"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/report"
	"heteropim/internal/runner"
	"heteropim/internal/workload"
)

// Table is a rendered experiment result.
type Table = report.Table

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	// ID is the paper artifact id: "T1", "F2", "F8" ... "F17".
	ID string
	// Title describes the artifact.
	Title string
	// Run produces the table.
	Run func() (*Table, error)
}

// Experiments returns a runner per paper table/figure, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"T1", "Table I: operation profiling (top-5 CI and MI ops)", TableI},
		{"F2", "Fig. 2: four-class operation taxonomy", Fig2Classes},
		{"F8", "Fig. 8: execution time breakdown, 5 models x 5 configurations", Fig8ExecTime},
		{"F9", "Fig. 9: normalized dynamic energy", Fig9Energy},
		{"F10", "Fig. 10: performance and energy vs Neurocube", Fig10Neurocube},
		{"F11", "Fig. 11: 3D memory frequency scaling (1x/2x/4x)", Fig11FreqScaling},
		{"F12", "Fig. 12: programmable PIM scaling (1P/4P/16P)", Fig12ProgScaling},
		{"F13", "Fig. 13: execution time with/without RC and OP", Fig13SoftwareImpact},
		{"F14", "Fig. 14: energy with/without RC and OP", Fig14SoftwareEnergy},
		{"F15", "Fig. 15: fixed-function PIM utilization with/without RC and OP", Fig15Utilization},
		{"F16", "Fig. 16: mixed workloads, co-run vs sequential", Fig16Mixed},
		{"F17", "Fig. 17: EDP and power under frequency scaling", Fig17EDP},
	}
}

// profiledModels are the three models of Table I.
func profiledModels() []Model { return []Model{VGG19, AlexNet, DCGAN} }

// ---- parallel fan-out helpers ----
//
// Every figure is a grid of INDEPENDENT pure simulations, so each cell
// fans out on the internal/runner worker pool and results are
// reassembled in input order. Parallel and sequential executions of a
// figure therefore produce bit-identical tables (the determinism each
// simulation needs lives inside its own engine; see internal/runner).

// runJobs evaluates simulation jobs concurrently, returning results in
// job order.
func runJobs(jobs []func() (Result, error)) ([]Result, error) {
	return runner.Map(context.Background(), len(jobs), 0,
		func(_ context.Context, i int) (Result, error) { return jobs[i]() })
}

// runGrid simulates every (model, configuration) cell of a figure's
// matrix concurrently; the result is indexed [model][config].
func runGrid(models []Model, configs []Config) ([][]Result, error) {
	nc := len(configs)
	flat, err := runner.Map(context.Background(), len(models)*nc, 0,
		func(_ context.Context, i int) (Result, error) {
			return Run(configs[i%nc], models[i/nc])
		})
	if err != nil {
		return nil, err
	}
	grid := make([][]Result, len(models))
	for mi := range grid {
		grid[mi] = flat[mi*nc : (mi+1)*nc]
	}
	return grid, nil
}

// configIndex finds a configuration's column in a figure's config list.
func configIndex(configs []Config, want Config) int {
	for i, c := range configs {
		if c == want {
			return i
		}
	}
	return -1
}

// rowGroups computes one group of table rows per item concurrently,
// preserving item order for assembly. Its users (Table I, Fig. 2, the
// workload summaries) build graphs and read cached profiles — a few
// hundred microseconds per cell — so the cost hint keeps them inline
// instead of paying worker dispatch that outweighs the work.
func rowGroups(n int, fn func(i int) ([][]string, error)) ([][][]string, error) {
	return runner.Map(context.Background(), n, 0,
		func(_ context.Context, i int) ([][]string, error) { return fn(i) },
		runner.WithCellCost(200e-6))
}

// addGroups appends row groups to a table in order.
func addGroups(t *Table, groups [][][]string) {
	for _, g := range groups {
		for _, row := range g {
			t.AddRow(row...)
		}
	}
}

// TableI reproduces the operation-profiling table: for each of VGG-19,
// AlexNet and DCGAN, the top-5 operations by execution time ("CI ops")
// and by main-memory accesses ("MI ops"), with their shares and
// invocation counts.
func TableI() (*Table, error) { return TableIFor(profiledModels()) }

// TableIFor is TableI over an explicit model set (scenario-driven
// profiling; TableI keeps the paper's three models).
func TableIFor(models []Model) (*Table, error) {
	t := &Table{
		Title:   "Table I: operation profiling (one training step on CPU)",
		Columns: []string{"Model", "Rank", "Top CI Op", "Time%", "#Inv", "Top MI Op", "Mem%", "#Inv"},
	}
	groups, err := rowGroups(len(models), func(i int) ([][]string, error) {
		m := models[i]
		g, err := nn.Build(m)
		if err != nil {
			return nil, err
		}
		prof := core.CachedProfileStep(g, hw.PaperCPU())
		type agg struct {
			time, mem float64
			inv       int
		}
		byType := map[nn.OpType]*agg{}
		for _, e := range prof.Entries {
			op := g.Ops[e.OpID]
			a, ok := byType[op.Type]
			if !ok {
				a = &agg{}
				byType[op.Type] = a
			}
			a.time += e.Time
			a.mem += e.MemAccesses
			a.inv++
		}
		type row struct {
			t nn.OpType
			a *agg
		}
		rows := make([]row, 0, len(byType))
		for tt, a := range byType {
			rows = append(rows, row{tt, a})
		}
		// Map iteration order is random: sort by type name first so the
		// time/mem orders (and their tie-breaks) are deterministic.
		sort.Slice(rows, func(i, j int) bool { return rows[i].t < rows[j].t })
		byTime := append([]row(nil), rows...)
		sort.SliceStable(byTime, func(i, j int) bool { return byTime[i].a.time > byTime[j].a.time })
		byMem := append([]row(nil), rows...)
		sort.SliceStable(byMem, func(i, j int) bool { return byMem[i].a.mem > byMem[j].a.mem })
		var out [][]string
		for i := 0; i < 5 && i < len(rows); i++ {
			ci, mi := byTime[i], byMem[i]
			out = append(out, []string{string(m), fmt.Sprintf("%d", i+1),
				string(ci.t), fmt.Sprintf("%.2f", 100*ci.a.time/prof.TotalTime), fmt.Sprintf("%d", ci.a.inv),
				string(mi.t), fmt.Sprintf("%.2f", 100*mi.a.mem/prof.TotalAccesses), fmt.Sprintf("%d", mi.a.inv)})
		}
		// The "Other N ops" tail.
		var otherT, otherM float64
		otherInv := 0
		topT := map[nn.OpType]bool{}
		for i := 0; i < 5 && i < len(byTime); i++ {
			topT[byTime[i].t] = true
		}
		for _, r := range rows {
			if !topT[r.t] {
				otherT += r.a.time
				otherM += r.a.mem
				otherInv += r.a.inv
			}
		}
		out = append(out, []string{string(m), "-",
			fmt.Sprintf("Other %d op types", len(rows)-min(5, len(rows))),
			fmt.Sprintf("%.2f", 100*otherT/prof.TotalTime), fmt.Sprintf("%d", otherInv),
			"", "", ""})
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	addGroups(t, groups)
	t.Notes = append(t.Notes,
		"paper shape: top-5 ops >=95% of time and >=90% of accesses; conv backprops lead both lists")
	return t, nil
}

// Fig2Classes reproduces the four-class operation taxonomy.
func Fig2Classes() (*Table, error) { return Fig2ClassesFor(profiledModels()) }

// Fig2ClassesFor is Fig2Classes over an explicit model set.
func Fig2ClassesFor(models []Model) (*Table, error) {
	t := &Table{
		Title:   "Fig. 2: operation classes (1=CI, 2=CI+MI offload targets, 3=MI only, 4=neither)",
		Columns: []string{"Model", "Class1", "Class2", "Class3", "Class4"},
	}
	groups, err := rowGroups(len(models), func(i int) ([][]string, error) {
		g, err := nn.Build(models[i])
		if err != nil {
			return nil, err
		}
		c := g.ClassCounts()
		return [][]string{{string(models[i]), fmt.Sprint(c[nn.Class1]), fmt.Sprint(c[nn.Class2]),
			fmt.Sprint(c[nn.Class3]), fmt.Sprint(c[nn.Class4])}}, nil
	})
	if err != nil {
		return nil, err
	}
	addGroups(t, groups)
	return t, nil
}

// Fig8ExecTime reproduces the execution-time breakdown of the five CNN
// models across the five configurations.
func Fig8ExecTime() (*Table, error) {
	t := &Table{
		Title:   "Fig. 8: execution time breakdown per training step",
		Columns: []string{"Model", "Config", "Step", "Operation", "DataMove", "Sync", "vs Hetero"},
	}
	models, configs := Models(), Configs()
	grid, err := runGrid(models, configs)
	if err != nil {
		return nil, err
	}
	hetIdx := configIndex(configs, ConfigHeteroPIM)
	for mi, m := range models {
		het := grid[mi][hetIdx]
		for ci := range configs {
			r := grid[mi][ci]
			t.AddRow(string(m), r.Config,
				report.Seconds(r.StepTime),
				report.Seconds(r.Breakdown.Operation),
				report.Seconds(r.Breakdown.DataMovement),
				report.Seconds(r.Breakdown.Sync),
				report.Ratio(r.StepTime/het.StepTime))
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: PIM designs beat CPU by 19%-28x; Hetero beats Progr 2.5-23x and Fixed 1.4-5.7x",
		"paper shape: DCGAN loses to GPU, ResNet-50 beats GPU, others within ~10% of GPU")
	return t, nil
}

// Fig9Energy reproduces the normalized dynamic energy comparison.
func Fig9Energy() (*Table, error) {
	t := &Table{
		Title:   "Fig. 9: dynamic energy per step, normalized to Hetero PIM",
		Columns: []string{"Model", "Config", "Energy", "AvgPower", "Normalized"},
	}
	models, configs := Models(), Configs()
	grid, err := runGrid(models, configs)
	if err != nil {
		return nil, err
	}
	hetIdx := configIndex(configs, ConfigHeteroPIM)
	for mi, m := range models {
		het := grid[mi][hetIdx]
		for ci := range configs {
			r := grid[mi][ci]
			t.AddRow(string(m), r.Config, report.Joules(r.Energy),
				report.Watts(r.AvgPower), report.Ratio(r.Energy/het.Energy))
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: CPU 3-24x and GPU 1.3-5x above Hetero; Progr PIM the highest")
	return t, nil
}

// Fig10Neurocube reproduces the Neurocube comparison.
func Fig10Neurocube() (*Table, error) {
	t := &Table{
		Title:   "Fig. 10: Neurocube vs Hetero PIM (ratios of Neurocube to Hetero)",
		Columns: []string{"Model", "Time ratio", "Energy ratio"},
	}
	models := Models()
	jobs := make([]func() (Result, error), 0, 2*len(models))
	for _, m := range models {
		m := m
		jobs = append(jobs,
			func() (Result, error) { return Run(ConfigHeteroPIM, m) },
			func() (Result, error) { return RunNeurocube(m) })
	}
	results, err := runJobs(jobs)
	if err != nil {
		return nil, err
	}
	for mi, m := range models {
		het, nc := results[2*mi], results[2*mi+1]
		t.AddRow(string(m), report.Ratio(nc.StepTime/het.StepTime), report.Ratio(nc.Energy/het.Energy))
	}
	t.Notes = append(t.Notes, "paper shape: Hetero at least 3x better in performance and energy")
	return t, nil
}

// Fig11FreqScaling reproduces the 1x/2x/4x frequency-scaling study.
func Fig11FreqScaling() (*Table, error) {
	t := &Table{
		Title:   "Fig. 11: Hetero PIM under 3D memory frequency scaling",
		Columns: []string{"Model", "Freq", "Step", "Operation", "DataMove", "Sync", "GPU/Hetero"},
	}
	models := Models()
	freqs := []float64{1, 2, 4}
	stride := 1 + len(freqs)
	jobs := make([]func() (Result, error), 0, stride*len(models))
	for _, m := range models {
		m := m
		jobs = append(jobs, func() (Result, error) { return Run(ConfigGPU, m) })
		for _, f := range freqs {
			f := f
			jobs = append(jobs, func() (Result, error) { return RunScaled(ConfigHeteroPIM, m, f) })
		}
	}
	results, err := runJobs(jobs)
	if err != nil {
		return nil, err
	}
	for mi, m := range models {
		gpu := results[stride*mi]
		for fi, f := range freqs {
			r := results[stride*mi+1+fi]
			t.AddRow(string(m), fmt.Sprintf("%gx", f),
				report.Seconds(r.StepTime),
				report.Seconds(r.Breakdown.Operation),
				report.Seconds(r.Breakdown.DataMovement),
				report.Seconds(r.Breakdown.Sync),
				report.Ratio(gpu.StepTime/r.StepTime))
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: higher frequency beats GPU; VGG-19 saturates between 2x and 4x, AlexNet keeps gaining")
	return t, nil
}

// Fig12ProgScaling reproduces the programmable-PIM scaling study.
func Fig12ProgScaling() (*Table, error) {
	t := &Table{
		Title:   "Fig. 12: programmable PIM scaling at constant logic-die area",
		Columns: []string{"Model", "Processors", "Step", "Utilization", "vs 1P"},
	}
	models := Models()
	procs := []int{1, 4, 16}
	jobs := make([]func() (Result, error), 0, len(procs)*len(models))
	for _, m := range models {
		for _, n := range procs {
			m, n := m, n
			jobs = append(jobs, func() (Result, error) { return RunHeteroProcessors(m, n) })
		}
	}
	results, err := runJobs(jobs)
	if err != nil {
		return nil, err
	}
	for mi, m := range models {
		base := results[len(procs)*mi]
		for ni, n := range procs {
			r := results[len(procs)*mi+ni]
			t.AddRow(string(m), fmt.Sprintf("%dP", n),
				report.Seconds(r.StepTime),
				report.Percent(r.FixedUtilization),
				report.Ratio(r.StepTime/base.StepTime))
		}
	}
	t.Notes = append(t.Notes, "paper shape: 1P vs 16P differ by only 12-14%")
	return t, nil
}

// softwareVariants enumerates the Section VI-E variants in figure order.
func softwareVariants() []struct {
	Name string
	V    Variant
} {
	return []struct {
		Name string
		V    Variant
	}{
		{"no RC, no OP", Variant{}},
		{"RC only", Variant{RecursiveKernels: true}},
		{"OP only", Variant{OperationPipeline: true}},
		{"RC + OP", Variant{RecursiveKernels: true, OperationPipeline: true}},
	}
}

// runVariantMatrix simulates every (model, RC/OP variant) cell
// concurrently; results are indexed [model][variant] in
// softwareVariants order.
func runVariantMatrix(models []Model) ([][]Result, error) {
	vs := softwareVariants()
	nv := len(vs)
	flat, err := runner.Map(context.Background(), len(models)*nv, 0,
		func(_ context.Context, i int) (Result, error) {
			return RunVariant(models[i/nv], vs[i%nv].V)
		})
	if err != nil {
		return nil, err
	}
	grid := make([][]Result, len(models))
	for mi := range grid {
		grid[mi] = flat[mi*nv : (mi+1)*nv]
	}
	return grid, nil
}

// Fig13SoftwareImpact reproduces the execution-time software study.
func Fig13SoftwareImpact() (*Table, error) {
	t := &Table{
		Title:   "Fig. 13: Hetero PIM execution time with/without RC and OP",
		Columns: []string{"Model", "Variant", "Step", "Sync", "Speedup vs no-RC/no-OP"},
	}
	models := Models()
	grid, err := runVariantMatrix(models)
	if err != nil {
		return nil, err
	}
	for mi, m := range models {
		base := grid[mi][0]
		for vi, v := range softwareVariants() {
			r := grid[mi][vi]
			t.AddRow(string(m), v.Name, report.Seconds(r.StepTime),
				report.Seconds(r.Breakdown.Sync), report.Ratio(base.StepTime/r.StepTime))
		}
	}
	t.Notes = append(t.Notes, "paper shape: RC+OP improve Hetero PIM by up to 3.8x")
	return t, nil
}

// Fig14SoftwareEnergy reproduces the energy software study.
func Fig14SoftwareEnergy() (*Table, error) {
	t := &Table{
		Title:   "Fig. 14: Hetero PIM energy with/without RC and OP (normalized to RC+OP)",
		Columns: []string{"Model", "Variant", "Energy", "Normalized"},
	}
	models := Models()
	grid, err := runVariantMatrix(models)
	if err != nil {
		return nil, err
	}
	vs := softwareVariants()
	for mi, m := range models {
		full := grid[mi][len(vs)-1] // "RC + OP" is the last variant
		for vi, v := range vs {
			r := grid[mi][vi]
			t.AddRow(string(m), v.Name, report.Joules(r.Energy), report.Ratio(r.Energy/full.Energy))
		}
	}
	t.Notes = append(t.Notes, "paper shape: RC+OP reduce energy by up to 3.9x")
	return t, nil
}

// Fig15Utilization reproduces the fixed-function utilization study.
func Fig15Utilization() (*Table, error) {
	t := &Table{
		Title:   "Fig. 15: fixed-function PIM utilization with/without RC and OP",
		Columns: []string{"Model", "Variant", "Utilization"},
	}
	models := Models()
	grid, err := runVariantMatrix(models)
	if err != nil {
		return nil, err
	}
	for mi, m := range models {
		for vi, v := range softwareVariants() {
			t.AddRow(string(m), v.Name, report.Percent(grid[mi][vi].FixedUtilization))
		}
	}
	t.Notes = append(t.Notes, "paper shape: with RC and OP utilization approaches 100%")
	return t, nil
}

// MixedResult re-exports the Fig. 16 co-run outcome.
type MixedResult = workload.MixedResult

// RunMixedWorkloads runs the six co-run cases of Section VI-F.
func RunMixedWorkloads() ([]MixedResult, error) { return workload.RunAllMixed() }

// Fig16Mixed reproduces the mixed-workload study.
func Fig16Mixed() (*Table, error) {
	results, err := workload.RunAllMixed()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig. 16: mixed workloads — co-run vs sequential execution",
		Columns: []string{"Case", "Sequential", "Co-run", "Improvement"},
	}
	for _, r := range results {
		t.AddRow(r.Case.Name(), report.Seconds(r.Sequential), report.Seconds(r.CoRun),
			report.Percent(r.Improvement))
	}
	t.Notes = append(t.Notes, "paper shape: 69%-83% improvement from co-running")
	return t, nil
}

// Fig17EDP reproduces the EDP and power study.
func Fig17EDP() (*Table, error) {
	t := &Table{
		Title:   "Fig. 17: energy efficiency (EDP) and power under frequency scaling",
		Columns: []string{"Model", "Freq", "EDP(J*s)", "HeteroPower", "GPUPower/HeteroPower"},
	}
	models := Models()
	freqs := []float64{1, 2, 4}
	stride := 1 + len(freqs)
	jobs := make([]func() (Result, error), 0, stride*len(models))
	for _, m := range models {
		m := m
		jobs = append(jobs, func() (Result, error) { return Run(ConfigGPU, m) })
		for _, f := range freqs {
			f := f
			jobs = append(jobs, func() (Result, error) { return RunScaled(ConfigHeteroPIM, m, f) })
		}
	}
	results, err := runJobs(jobs)
	if err != nil {
		return nil, err
	}
	for mi, m := range models {
		gpu := results[stride*mi]
		for fi, f := range freqs {
			r := results[stride*mi+1+fi]
			t.AddRow(string(m), fmt.Sprintf("%gx", f),
				fmt.Sprintf("%.3g", r.EDP),
				report.Watts(r.AvgPower),
				report.Ratio(gpu.AvgPower/r.AvgPower))
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: 4x frequency is the most energy-efficient point; GPU draws 1.5-2.6x more power than Hetero at 4x")
	return t, nil
}

// EnergyOf evaluates the whole-system energy report for an internal
// result (used by tools that need the itemized parts).
func EnergyOf(r core.Result) energy.Report { return energy.Evaluate(r) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ModelSummaries renders the workload-characteristics table: per model,
// graph size, parameters, per-step arithmetic and main-memory traffic,
// and the Fig. 2 class mix — the "Section V-C workloads" overview.
func ModelSummaries() (*Table, error) { return ModelSummariesFor(AllModels()) }

// ModelSummariesFor is ModelSummaries over an explicit model set.
func ModelSummariesFor(models []Model) (*Table, error) {
	t := &Table{
		Title:   "Workload characteristics (one training step, paper batch sizes)",
		Columns: []string{"Model", "Batch", "Ops", "Params", "GFLOPs", "GB", "Class2 ops"},
	}
	groups, err := rowGroups(len(models), func(i int) ([][]string, error) {
		g, err := nn.Build(models[i])
		if err != nil {
			return nil, err
		}
		flops, bytes := g.Totals()
		classes := g.ClassCounts()
		return [][]string{{string(models[i]),
			fmt.Sprintf("%d", g.BatchSize),
			fmt.Sprintf("%d", len(g.Ops)),
			fmt.Sprintf("%.1fM", g.ParamBytes/4/1e6),
			fmt.Sprintf("%.1f", flops/1e9),
			fmt.Sprintf("%.2f", bytes/1e9),
			fmt.Sprintf("%d", classes[nn.Class2])}}, nil
	})
	if err != nil {
		return nil, err
	}
	addGroups(t, groups)
	return t, nil
}
