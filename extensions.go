package heteropim

import (
	"context"
	"fmt"

	"heteropim/internal/core"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/report"
	"heteropim/internal/runner"
	"heteropim/internal/workload"
)

// Extension studies: experiments the paper discusses but does not
// evaluate. E1 builds the Section II-D alternative (heterogeneous PIM
// attached to a GPU system); E2 sweeps the training batch size, which
// the paper fixes at the framework defaults.

// ExtensionExperiments returns the extension runners.
func ExtensionExperiments() []Experiment {
	return []Experiment{
		{"E1", "Extension: heterogeneous PIM attached to a GPU host (Section II-D)", ExtGPUHost},
		{"E2", "Extension: batch-size sensitivity of the Hetero PIM advantage", ExtBatchSweep},
		{"E3", "Extension: multi-tenant co-run beyond two jobs", ExtMultiTenant},
	}
}

// RunGPUHostHetero simulates the heterogeneous PIM attached to a GPU
// system: offloadable operations still run on the PIMs under the full
// runtime, but non-offloaded operations execute on the GPU at
// kernel-launch granularity.
func RunGPUHostHetero(model Model, freqScale float64) (Result, error) {
	g, err := nn.Build(model)
	if err != nil {
		return Result{}, err
	}
	opts := core.HeteroOptions()
	opts.GPUHost = true
	r, err := core.RunPIM(g, hw.GPUHostHeteroConfig(freqScale), opts)
	if err != nil {
		return Result{}, err
	}
	return wrap(r), nil
}

// ExtGPUHost compares CPU-attached vs GPU-attached heterogeneous PIM.
func ExtGPUHost() (*Table, error) {
	t := &Table{
		Title:   "Extension E1: heterogeneous PIM attached to CPU vs GPU hosts",
		Columns: []string{"Model", "Host", "Step", "Energy", "Util", "vs CPU-host"},
	}
	models := Models()
	jobs := make([]func() (Result, error), 0, 2*len(models))
	for _, m := range models {
		m := m
		jobs = append(jobs,
			func() (Result, error) { return Run(ConfigHeteroPIM, m) },
			func() (Result, error) { return RunGPUHostHetero(m, 1) })
	}
	results, err := runJobs(jobs)
	if err != nil {
		return nil, err
	}
	for mi, m := range models {
		cpuHost, gpuHost := results[2*mi], results[2*mi+1]
		t.AddRow(string(m), "CPU", report.Seconds(cpuHost.StepTime),
			report.Joules(cpuHost.Energy), report.Percent(cpuHost.FixedUtilization), "1.00x")
		t.AddRow(string(m), "GPU", report.Seconds(gpuHost.StepTime),
			report.Joules(gpuHost.Energy), report.Percent(gpuHost.FixedUtilization),
			report.Ratio(gpuHost.StepTime/cpuHost.StepTime))
	}
	t.Notes = append(t.Notes,
		"the paper argues (Section II-D) that a GPU host constrains fine-grained op scheduling;",
		"with the PIMs absorbing the offloadable 90%+, the host choice moves step time by only ~2-5%")
	return t, nil
}

// RunWithBatch simulates a model at a non-default batch size on one
// configuration.
func RunWithBatch(config Config, model Model, batch int) (Result, error) {
	g, err := nn.BuildWithBatch(model, batch)
	if err != nil {
		return Result{}, err
	}
	r, err := core.Run(config, g, 1)
	if err != nil {
		return Result{}, err
	}
	return wrap(r), nil
}

// ExtBatchSweep sweeps AlexNet's batch size and reports where the
// Hetero PIM advantage over the GPU moves.
func ExtBatchSweep() (*Table, error) {
	t := &Table{
		Title:   "Extension E2: batch-size sensitivity (AlexNet)",
		Columns: []string{"Batch", "GPU step", "Hetero step", "GPU/Hetero", "Hetero util", "Hetero energy"},
	}
	batches := []int{8, 16, 32, 64, 128}
	jobs := make([]func() (Result, error), 0, 2*len(batches))
	for _, batch := range batches {
		batch := batch
		jobs = append(jobs,
			func() (Result, error) { return RunWithBatch(ConfigGPU, AlexNet, batch) },
			func() (Result, error) { return RunWithBatch(ConfigHeteroPIM, AlexNet, batch) })
	}
	results, err := runJobs(jobs)
	if err != nil {
		return nil, err
	}
	for bi, batch := range batches {
		gpu, het := results[2*bi], results[2*bi+1]
		t.AddRow(fmt.Sprintf("%d", batch),
			report.Seconds(gpu.StepTime),
			report.Seconds(het.StepTime),
			report.Ratio(gpu.StepTime/het.StepTime),
			report.Percent(het.FixedUtilization),
			report.Joules(het.Energy))
	}
	t.Notes = append(t.Notes,
		"small batches shrink per-op parallelism and amplify per-kernel overheads on both sides")
	return t, nil
}

// TenantSpec re-exports the multi-tenant job description.
type TenantSpec = workload.TenantSpec

// MultiTenantResult re-exports the multi-tenant outcome.
type MultiTenantResult = workload.MultiTenantResult

// RunMultiTenant co-schedules N training jobs on one heterogeneous PIM
// system (the Fig. 16 study generalized beyond two tenants).
func RunMultiTenant(tenants []TenantSpec) (MultiTenantResult, error) {
	return workload.RunMultiTenant(tenants)
}

// ExtMultiTenant co-runs three job mixes.
func ExtMultiTenant() (*Table, error) {
	t := &Table{
		Title:   "Extension E3: multi-tenant co-run beyond two jobs",
		Columns: []string{"Tenants", "Sequential", "Co-run", "Improvement", "Worst slowdown"},
	}
	mixes := [][]TenantSpec{
		{{Model: AlexNet}, {Model: DCGAN}, {Model: Word2Vec, HostOnly: true}},
		{{Model: AlexNet}, {Model: InceptionV3}, {Model: LSTM, HostOnly: true}},
		{{Model: AlexNet}, {Model: DCGAN}, {Model: LSTM, HostOnly: true}, {Model: Word2Vec, HostOnly: true}},
	}
	results, err := runner.Map(context.Background(), len(mixes), 0,
		func(_ context.Context, i int) (MultiTenantResult, error) {
			return workload.RunMultiTenant(mixes[i])
		})
	if err != nil {
		return nil, err
	}
	for mi, mix := range mixes {
		r := results[mi]
		name := ""
		for i, ten := range mix {
			if i > 0 {
				name += "+"
			}
			name += string(ten.Model)
		}
		worst := 0.0
		for _, sdown := range r.Slowdowns {
			if sdown > worst {
				worst = sdown
			}
		}
		t.AddRow(name, report.Seconds(r.Sequential), report.Seconds(r.CoRun),
			report.Percent(r.Improvement), report.Ratio(worst))
	}
	t.Notes = append(t.Notes,
		"PIM-scheduled jobs serialize on the shared fixed-function pool; host-side jobs overlap almost freely",
		"worst slowdown = co-run makespan / the tenant's standalone time (the fairness price of sharing)")
	return t, nil
}
