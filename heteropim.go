// Package heteropim is the public API of the heterogeneous
// processing-in-memory (PIM) training simulator — a from-scratch Go
// reproduction of "Processing-in-Memory for Energy-efficient Neural
// Network Training: A Heterogeneous Approach" (MICRO 2018).
//
// The package exposes three layers:
//
//   - Simulation: Run and RunVariant simulate steady-state NN training
//     of the paper's seven workload models on the five evaluated
//     platform configurations (CPU, GPU, Progr PIM, Fixed PIM, Hetero
//     PIM), returning step time, the Fig. 8 breakdown, whole-system
//     energy and fixed-function utilization.
//
//   - Experiments: Experiments lists a runner per paper table/figure
//     (Table I, Figs. 2 and 8-17); each regenerates the corresponding
//     rows/series as a text table.
//
//   - Functional math: the Tensor API (MatMul, Conv2D and its backprops,
//     ReLU, MaxPool, Adam...) runs genuine FP32 training math on small
//     tensors, so examples can train a real micro-model end to end.
package heteropim

import (
	"fmt"

	"heteropim/internal/core"
	"heteropim/internal/energy"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/runner"
)

// SetParallelism fixes how many experiment cells (independent
// simulations) may run concurrently during sweeps; n <= 0 restores the
// GOMAXPROCS default. It returns the previous setting so callers can
// restore it. The HETEROPIM_WORKERS environment variable is the
// out-of-process equivalent. Parallel and sequential sweeps produce
// bit-identical tables: parallelism is only ever across independent
// simulations, never within one.
func SetParallelism(n int) int { return runner.SetWorkers(n) }

// Parallelism reports the worker count parallel sweeps currently use.
func Parallelism() int { return runner.Workers() }

// ---- simulation result cache ----
//
// Uninstrumented simulations are memoized by a content-addressed
// fingerprint of (graph, hardware configuration, effective options), so
// repeated cells — across figures, sweeps and CLI invocations sharing a
// cache directory — collapse to one live run. Cache hits are
// bit-identical to cold runs. Instrumented runs (RunInstrumented, trace
// or census options) always execute live and never touch the cache.

// EnvCacheDir is the environment variable naming the on-disk cache
// directory (the persistent second tier); unset keeps the cache in
// memory only. SetSimulationCacheDir overrides it per process.
const EnvCacheDir = core.EnvCacheDir

// SetSimulationCache enables or disables the simulation result cache
// (default: enabled), returning the previous state.
func SetSimulationCache(on bool) bool { return core.EnableResultCache(on) }

// SetSimulationCacheDir sets the on-disk cache directory ("" disables
// the disk tier), returning the previous one.
func SetSimulationCacheDir(dir string) string { return core.SetResultCacheDir(dir) }

// CacheStats counts simulation-cache traffic; see core.CacheStats.
type CacheStats = core.CacheStats

// SimulationCacheStats reads the process's cache counters.
func SimulationCacheStats() CacheStats { return core.ResultCacheStats() }

// ResetSimulationCache drops every memoized result and zeroes the
// counters (benchmark harnesses isolating cold-path timing).
func ResetSimulationCache() { core.ResetResultCache() }

// DropSimulationCacheMemory evicts the in-memory cache tier only,
// keeping the disk tier and the counters: the next lookup of each cell
// behaves like a fresh process sharing the same cache directory. The
// cluster harness uses it so in-process replicas hit the shared L2
// disk tier the way separate replica processes would.
func DropSimulationCacheMemory() { core.DropResultCacheMemory() }

// Model names a training workload (Section V-C).
type Model = nn.ModelName

// The seven evaluated models.
const (
	VGG19       = nn.VGG19Name
	AlexNet     = nn.AlexNetName
	DCGAN       = nn.DCGANName
	ResNet50    = nn.ResNet50Name
	InceptionV3 = nn.InceptionV3Name
	LSTM        = nn.LSTMName
	Word2Vec    = nn.Word2VecName
)

// Config names one of the five evaluated platform configurations.
type Config = hw.ConfigKind

// The five platforms of Section VI.
const (
	ConfigCPU       = hw.ConfigCPU
	ConfigGPU       = hw.ConfigGPU
	ConfigProgrPIM  = hw.ConfigProgrPIM
	ConfigFixedPIM  = hw.ConfigFixedPIM
	ConfigHeteroPIM = hw.ConfigHeteroPIM
)

// Models returns the five CNN models of Figs. 8-15 in figure order.
func Models() []Model { return nn.CNNModelNames() }

// AllModels adds the two non-CNN co-run models (LSTM, Word2vec).
func AllModels() []Model { return nn.AllModelNames() }

// Configs returns the five platform configurations in figure order.
func Configs() []Config { return hw.AllConfigKinds() }

// Breakdown splits a step's wall clock as in Fig. 8.
type Breakdown struct {
	Operation    float64 // seconds of computation (CPU/GPU/PIMs)
	DataMovement float64 // seconds stalled on data movement
	Sync         float64 // seconds of synchronization / kernel launch
}

// Result is the outcome of simulating one model on one configuration.
type Result struct {
	Model  Model
	Config string
	// StepTime is the steady-state wall-clock seconds per training step.
	StepTime float64
	// Breakdown components sum to StepTime.
	Breakdown Breakdown
	// Energy is the whole-system dynamic energy per step (joules).
	Energy float64
	// AvgPower is Energy / StepTime (watts).
	AvgPower float64
	// EDP is the energy-delay product (J*s).
	EDP float64
	// FixedUtilization is the fixed-function PIM pool utilization
	// (0 for configurations without fixed-function PIMs).
	FixedUtilization float64
	// OffloadedOps / CPUOps count per-step operation placement.
	OffloadedOps, CPUOps int
	// Stacks is how many HMC stacks the step was sharded across (1 for
	// the paper's single-stack system).
	Stacks int
	// AllReduce is the gradient schedule of a multi-stack run ("ring"
	// or "tree"; empty for single-stack).
	AllReduce string
	// AllReduceTime is the per-step gradient synchronization seconds
	// included in StepTime (multi-stack runs only).
	AllReduceTime float64
	// StackStepTime is the slowest stack's compute seconds before the
	// all-reduce; StepTime = StackStepTime + AllReduceTime (multi-stack
	// runs only).
	StackStepTime float64
	// StackMaxTemp is one stack's hottest-bank steady-state temperature
	// in deg C under the run's placement (multi-stack runs with a
	// fixed-function pool; 0 otherwise).
	StackMaxTemp float64
}

// wrap converts an internal result to the public shape.
func wrap(r core.Result) Result {
	e := energy.Evaluate(r)
	stacks := r.Stacks
	if stacks < 1 {
		stacks = 1
	}
	return Result{
		Stacks:        stacks,
		AllReduce:     r.AllReduce,
		AllReduceTime: r.AllReduceTime,
		StackStepTime: r.StackStepTime,
		StackMaxTemp:  r.StackMaxTemp,
		Model:         Model(r.Model),
		Config:        r.Config.Name,
		StepTime:      r.StepTime,
		Breakdown: Breakdown{
			Operation:    r.Breakdown.Operation,
			DataMovement: r.Breakdown.DataMovement,
			Sync:         r.Breakdown.Sync,
		},
		Energy:           e.Dynamic,
		AvgPower:         e.AvgPower,
		EDP:              e.EDP,
		FixedUtilization: r.FixedUtilization,
		OffloadedOps:     r.OffloadedOps,
		CPUOps:           r.CPUOps,
	}
}

// Run simulates steady-state training of model on config at PIM/stack
// frequency scale 1.
func Run(config Config, model Model) (Result, error) {
	return RunScaled(config, model, 1)
}

// RunScaled is Run at a PIM/stack frequency multiplier (1, 2 or 4 in
// the paper's Section VI-D study).
func RunScaled(config Config, model Model, freqScale float64) (Result, error) {
	r, err := core.BuildAndRun(config, model, freqScale)
	if err != nil {
		return Result{}, err
	}
	return wrap(r), nil
}

// Variant toggles the two runtime techniques of Section VI-E.
type Variant struct {
	// RecursiveKernels enables RC (Fig. 6 recursive PIM kernels).
	RecursiveKernels bool
	// OperationPipeline enables OP (the cross-step operation pipeline).
	OperationPipeline bool
}

// RunVariant simulates the Hetero PIM platform with the runtime
// techniques individually toggled (Figs. 13-15).
func RunVariant(model Model, v Variant) (Result, error) {
	g, err := nn.Build(model)
	if err != nil {
		return Result{}, err
	}
	r, err := core.RunHeteroVariant(g, v.RecursiveKernels, v.OperationPipeline, 1)
	if err != nil {
		return Result{}, err
	}
	return wrap(r), nil
}

// RunNeurocube simulates the Neurocube comparison point (Fig. 10).
func RunNeurocube(model Model) (Result, error) {
	g, err := nn.Build(model)
	if err != nil {
		return Result{}, err
	}
	return wrap(core.RunNeurocubeDefault(g)), nil
}

// RunHeteroProcessors simulates Hetero PIM with n programmable PIM
// processors at constant logic-die area (Fig. 12: 1, 4, 16).
func RunHeteroProcessors(model Model, n int) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("heteropim: need at least one processor, got %d", n)
	}
	g, err := nn.Build(model)
	if err != nil {
		return Result{}, err
	}
	r, err := core.RunPIM(g, hw.HeteroConfigWithProcessors(n, 1), core.HeteroOptions())
	if err != nil {
		return Result{}, err
	}
	return wrap(r), nil
}
