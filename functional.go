package heteropim

import (
	"math/rand"

	"heteropim/internal/tensor"
)

// The functional tensor API: genuine FP32 implementations of the
// training operations the paper profiles, usable on small tensors. The
// examples train a real micro-model with these; the simulator proper
// uses analytic descriptors of the same operations.

// Tensor is a dense FP32 tensor (NHWC activations, HWIO filters).
type Tensor = tensor.Tensor

// ConvSpec fixes stride and padding of a convolution.
type ConvSpec = tensor.ConvSpec

// AdamConfig holds optimizer hyperparameters.
type AdamConfig = tensor.AdamConfig

// AdamState carries per-parameter optimizer state.
type AdamState = tensor.AdamState

// NewTensor allocates a zero tensor.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// TensorFromSlice wraps data in a tensor of the given shape.
func TensorFromSlice(data []float32, shape ...int) (*Tensor, error) {
	return tensor.FromSlice(data, shape...)
}

// Randn fills a new tensor with seeded pseudo-normal values.
func Randn(rng *rand.Rand, scale float64, shape ...int) *Tensor {
	return tensor.Randn(rng, scale, shape...)
}

// MatMul computes A x B.
func MatMul(a, b *Tensor) (*Tensor, error) { return tensor.MatMul(a, b) }

// MatMulTransA computes Aᵀ x B (weight gradients of dense layers).
func MatMulTransA(a, b *Tensor) (*Tensor, error) { return tensor.MatMulTransA(a, b) }

// MatMulTransB computes A x Bᵀ (input gradients of dense layers).
func MatMulTransB(a, b *Tensor) (*Tensor, error) { return tensor.MatMulTransB(a, b) }

// Conv2D convolves NHWC input x with HWIO filter w (reference
// implementation).
func Conv2D(x, w *Tensor, spec ConvSpec) (*Tensor, error) { return tensor.Conv2D(x, w, spec) }

// Conv2DGEMM is the im2col+GEMM convolution: same result as Conv2D,
// several times faster — TensorFlow's CPU strategy, and the reason
// forward convolutions are cache friendly in Table I.
func Conv2DGEMM(x, w *Tensor, spec ConvSpec) (*Tensor, error) {
	return tensor.Conv2DGEMM(x, w, spec)
}

// Conv2DBackpropInput is the input gradient of Conv2D.
func Conv2DBackpropInput(inShape []int, w, dy *Tensor, spec ConvSpec) (*Tensor, error) {
	return tensor.Conv2DBackpropInput(inShape, w, dy, spec)
}

// Conv2DBackpropFilter is the filter gradient of Conv2D.
func Conv2DBackpropFilter(x *Tensor, filterShape []int, dy *Tensor, spec ConvSpec) (*Tensor, error) {
	return tensor.Conv2DBackpropFilter(x, filterShape, dy, spec)
}

// BiasAdd adds a per-channel bias.
func BiasAdd(x, b *Tensor) (*Tensor, error) { return tensor.BiasAdd(x, b) }

// BiasAddGrad reduces dy over all but the channel dimension.
func BiasAddGrad(dy *Tensor) *Tensor { return tensor.BiasAddGrad(dy) }

// Relu applies max(0, x).
func Relu(x *Tensor) *Tensor { return tensor.Relu(x) }

// ReluGrad masks dy by the forward input's sign.
func ReluGrad(x, dy *Tensor) (*Tensor, error) { return tensor.ReluGrad(x, dy) }

// MaxPool performs 2D max pooling, returning argmax indices for the
// backward pass.
func MaxPool(x *Tensor, window, stride int) (*Tensor, []int, error) {
	return tensor.MaxPool(x, window, stride)
}

// MaxPoolGrad routes dy back to the argmax positions.
func MaxPoolGrad(xShape []int, dy *Tensor, arg []int) (*Tensor, error) {
	return tensor.MaxPoolGrad(xShape, dy, arg)
}

// Softmax applies a row-wise softmax.
func Softmax(x *Tensor) *Tensor { return tensor.Softmax(x) }

// CrossEntropyWithSoftmax returns mean loss and the logits gradient.
func CrossEntropyWithSoftmax(logits *Tensor, labels []int) (float64, *Tensor, error) {
	return tensor.CrossEntropyWithSoftmax(logits, labels)
}

// DefaultAdam returns TensorFlow's default Adam hyperparameters.
func DefaultAdam() AdamConfig { return tensor.DefaultAdam() }

// NewAdamState allocates optimizer state for a parameter tensor.
func NewAdamState(param *Tensor) *AdamState { return tensor.NewAdamState(param) }

// ApplyAdam performs one in-place Adam update.
func ApplyAdam(param, grad *Tensor, st *AdamState, cfg AdamConfig) error {
	return tensor.ApplyAdam(param, grad, st, cfg)
}
