package heteropim

import (
	"encoding/json"
	"strings"
	"testing"
)

func publicResultJSON(t *testing.T, r Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// The zero Options must reproduce Run byte for byte — the degenerate
// single-stack case routes through the unchanged executor.
func TestRunWithOptionsZeroValueIsRun(t *testing.T) {
	base, err := Run(ConfigHeteroPIM, AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Options{{}, {Stacks: 1}, {FreqScale: 1}} {
		r, err := RunWithOptions(ConfigHeteroPIM, AlexNet, o)
		if err != nil {
			t.Fatal(err)
		}
		if publicResultJSON(t, base) != publicResultJSON(t, r) {
			t.Errorf("RunWithOptions(%+v) diverged from Run", o)
		}
	}
}

func TestRunWithOptionsMultiStack(t *testing.T) {
	single, err := Run(ConfigHeteroPIM, VGG19)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := RunWithOptions(ConfigHeteroPIM, VGG19, Options{Stacks: 4, AllReduce: AllReduceRing})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Stacks != 4 || ring.AllReduce != AllReduceRing {
		t.Fatalf("labels: stacks=%d allreduce=%q", ring.Stacks, ring.AllReduce)
	}
	if !strings.HasSuffix(ring.Config, " x4") {
		t.Errorf("config %q lacks the x4 suffix", ring.Config)
	}
	if ring.StepTime != ring.StackStepTime+ring.AllReduceTime {
		t.Errorf("StepTime %g != StackStepTime %g + AllReduceTime %g",
			ring.StepTime, ring.StackStepTime, ring.AllReduceTime)
	}
	// Strong scaling: 4 stacks must beat 1 stack. Mild superlinearity is
	// possible (chunk-granule rounding favors the smaller shard batch),
	// so only guard against absurd scaling.
	if ring.StepTime >= single.StepTime {
		t.Errorf("4-stack step %g not faster than single-stack %g", ring.StepTime, single.StepTime)
	}
	if ring.StepTime < single.StepTime/8 {
		t.Errorf("4-stack step %g implausibly fast vs single-stack %g", ring.StepTime, single.StepTime)
	}
	// Ring moves the same bytes in more, smaller phases; with VGG-19's
	// large gradient it must synchronize faster than the tree.
	tree, err := RunWithOptions(ConfigHeteroPIM, VGG19, Options{Stacks: 4, AllReduce: AllReduceTree})
	if err != nil {
		t.Fatal(err)
	}
	if ring.AllReduceTime >= tree.AllReduceTime {
		t.Errorf("ring all-reduce %g not below tree %g for a large gradient",
			ring.AllReduceTime, tree.AllReduceTime)
	}
	// Energy accounts for all stacks: a 4-stack system burns more power
	// than one stack.
	if ring.AvgPower <= single.AvgPower {
		t.Errorf("4-stack power %g not above single-stack %g", ring.AvgPower, single.AvgPower)
	}
	if ring.StackMaxTemp <= 0 {
		t.Errorf("StackMaxTemp %g, want > 0", ring.StackMaxTemp)
	}
}

func TestRunWithOptionsRejects(t *testing.T) {
	if _, err := RunWithOptions(ConfigCPU, AlexNet, Options{Stacks: 2}); err == nil {
		t.Error("CPU multi-stack run accepted, want an error")
	}
	if _, err := RunWithOptions(ConfigHeteroPIM, AlexNet, Options{Stacks: 2, AllReduce: "butterfly"}); err == nil {
		t.Error("unknown all-reduce schedule accepted, want an error")
	}
}

// BatchCell.Stacks must match the direct RunWithOptions path bit for
// bit, like every other cell axis.
func TestBatchRunMultiStackCells(t *testing.T) {
	cells := []BatchCell{
		{Config: ConfigHeteroPIM, Model: AlexNet},
		{Config: ConfigHeteroPIM, Model: AlexNet, Stacks: 2, AllReduce: AllReduceRing},
		{Config: ConfigFixedPIM, Model: AlexNet, Stacks: 2, AllReduce: AllReduceTree},
	}
	got, err := BatchRun(cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		var want Result
		if c.Stacks > 1 {
			want, err = RunWithOptions(c.Config, c.Model, Options{Stacks: c.Stacks, AllReduce: c.AllReduce})
		} else {
			want, err = Run(c.Config, c.Model)
		}
		if err != nil {
			t.Fatal(err)
		}
		if publicResultJSON(t, got[i]) != publicResultJSON(t, want) {
			t.Errorf("cell %d: batch result diverged from the direct run", i)
		}
	}
}
