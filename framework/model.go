package framework

import (
	"fmt"

	"heteropim/internal/nn"
	"heteropim/internal/tensor"
)

// Model is a sequential stack of layers trained with Adam and softmax
// cross-entropy.
type Model struct {
	Layers []Layer
	Adam   tensor.AdamConfig
	steps  int
}

// NewModel assembles a model with TensorFlow's default Adam settings.
func NewModel(layers ...Layer) *Model {
	return &Model{Layers: layers, Adam: tensor.DefaultAdam()}
}

// StepReport summarizes one training step.
type StepReport struct {
	Loss float64
	// Placements counts operations per compute resource for this step.
	Placements map[Placement]int
}

// Forward runs inference through the session.
func (m *Model) Forward(s *Session, x *Tensor) (*Tensor, error) {
	cur := x
	for _, l := range m.Layers {
		var err error
		cur, err = l.Forward(s, cur)
		if err != nil {
			return nil, fmt.Errorf("framework: forward %s: %w", l.Name(), err)
		}
	}
	return cur, nil
}

// TrainStep runs one forward/backward/update pass: every operation is
// an OpenCL kernel placed on the device the runtime rules pick, the
// loss is softmax cross-entropy, and every parameter gets an ApplyAdam
// update (on the programmable PIM — it needs sqrt and divide).
func (m *Model) TrainStep(s *Session, x *Tensor, labels []int) (StepReport, error) {
	before := s.Placements()
	logits, err := m.Forward(s, x)
	if err != nil {
		return StepReport{}, err
	}
	var loss float64
	var grad *Tensor
	if _, err := s.submit("loss/SoftmaxCrossEntropy", nn.OpCrossEntropy, float64(logits.Bytes()), func() error {
		var err error
		loss, grad, err = tensor.CrossEntropyWithSoftmax(logits, labels)
		return err
	}); err != nil {
		return StepReport{}, err
	}
	cur := grad
	for i := len(m.Layers) - 1; i >= 0; i-- {
		l := m.Layers[i]
		cur, err = l.Backward(s, cur)
		if err != nil {
			return StepReport{}, fmt.Errorf("framework: backward %s: %w", l.Name(), err)
		}
	}
	m.steps++
	for _, l := range m.Layers {
		for _, p := range l.Params() {
			p := p
			if _, err := s.submit(p.Name+"/ApplyAdam", nn.OpApplyAdam, float64(p.Value.Bytes()), func() error {
				if err := tensor.ApplyAdam(p.Value, p.Grad, p.adam, m.Adam); err != nil {
					return err
				}
				// Zero the gradient accumulator for the next step.
				for i := range p.Grad.Data {
					p.Grad.Data[i] = 0
				}
				return nil
			}); err != nil {
				return StepReport{}, err
			}
		}
	}
	rep := StepReport{Loss: loss, Placements: map[Placement]int{}}
	after := s.Placements()
	for k, v := range after {
		rep.Placements[k] = v - before[k]
	}
	return rep, nil
}

// Steps returns how many training steps have been applied.
func (m *Model) Steps() int { return m.steps }

// NumParams counts trainable scalars.
func (m *Model) NumParams() int {
	total := 0
	for _, l := range m.Layers {
		for _, p := range l.Params() {
			total += p.Value.Size()
		}
	}
	return total
}
