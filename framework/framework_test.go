package framework

import (
	"math/rand"
	"testing"

	"heteropim/internal/hw"
	"heteropim/internal/tensor"
)

// digits returns a batch of synthetic 8x8 images in 2 classes (filled
// square vs horizontal bar) with labels.
func digits(rng *rand.Rand, batch int) (*Tensor, []int) {
	x := tensor.New(batch, 8, 8, 1)
	labels := make([]int, batch)
	for i := 0; i < batch; i++ {
		labels[i] = rng.Intn(2)
		for h := 0; h < 8; h++ {
			for w := 0; w < 8; w++ {
				v := float32(rng.NormFloat64() * 0.05)
				if labels[i] == 0 && h >= 2 && h < 6 && w >= 2 && w < 6 {
					v += 1
				}
				if labels[i] == 1 && h >= 3 && h < 5 {
					v += 1
				}
				x.Set4(i, h, w, 0, v)
			}
		}
	}
	return x, labels
}

func buildModel(rng *rand.Rand) *Model {
	m := NewModel(
		NewConv("conv1", 3, 3, 1, 4, 1, true, true, rng),
		NewPool("pool1", 2, 2),
		NewFlatten("flatten"),
		NewDense("fc", 4*4*4, 2, false, rng),
	)
	m.Adam.LR = 5e-3
	return m
}

func TestTrainStepLearnsThroughOpenCL(t *testing.T) {
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(5))
	m := buildModel(rng)
	var first, last float64
	for step := 0; step < 30; step++ {
		x, labels := digits(rng, 8)
		rep, err := m.TrainStep(s, x, labels)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = rep.Loss
		}
		last = rep.Loss
	}
	if last >= first*0.5 {
		t.Fatalf("loss did not learn: %.4f -> %.4f", first, last)
	}
	if m.Steps() != 30 {
		t.Fatalf("steps = %d", m.Steps())
	}
	if m.NumParams() == 0 {
		t.Fatal("no parameters counted")
	}
}

func TestPlacementFollowsPaperRules(t *testing.T) {
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(6))
	m := buildModel(rng)
	x, labels := digits(rng, 4)
	rep, err := m.TrainStep(s, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Conv/MatMul/BiasAdd/Adam go to fixed PIMs; Relu/MaxPool/loss to
	// the programmable PIM; Reshape stays host-side.
	if rep.Placements[OnFixedPIM] == 0 {
		t.Error("no ops placed on the fixed-function device")
	}
	if rep.Placements[OnProgPIM] == 0 {
		t.Error("no ops placed on the programmable PIM")
	}
	if rep.Placements[OnHost] == 0 {
		t.Error("no ops on the host (Reshape should be)")
	}
	fixedShare := float64(rep.Placements[OnFixedPIM]) /
		float64(rep.Placements[OnFixedPIM]+rep.Placements[OnProgPIM]+rep.Placements[OnHost])
	if fixedShare < 0.4 {
		t.Errorf("fixed-function share = %.0f%%, want the bulk of ops", fixedShare*100)
	}
}

func TestPlacementDegradesWithoutPIMs(t *testing.T) {
	// On a CPU-only platform everything must run host-side.
	s, err := NewSessionWith(hw.PaperConfig(hw.ConfigCPU))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(7))
	m := buildModel(rng)
	x, labels := digits(rng, 4)
	rep, err := m.TrainStep(s, x, labels)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Placements[OnFixedPIM] != 0 || rep.Placements[OnProgPIM] != 0 {
		t.Fatalf("PIM placements on a CPU-only platform: %+v", rep.Placements)
	}
	if rep.Placements[OnHost] == 0 {
		t.Fatal("nothing ran")
	}
}

func TestTrafficSplitsByPlacement(t *testing.T) {
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(8))
	m := buildModel(rng)
	x, labels := digits(rng, 4)
	if _, err := m.TrainStep(s, x, labels); err != nil {
		t.Fatal(err)
	}
	host, pim := s.Traffic()
	if pim <= 0 {
		t.Fatal("no PIM-path traffic recorded")
	}
	if pim <= host {
		t.Fatalf("PIM traffic (%g) should dominate host traffic (%g) under offload", pim, host)
	}
}

func TestBackwardBeforeForwardErrors(t *testing.T) {
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(9))
	dy := tensor.New(1, 2)
	for _, l := range []Layer{
		NewConv("c", 3, 3, 1, 2, 1, true, true, rng),
		NewDense("d", 4, 2, false, rng),
		NewPool("p", 2, 2),
		NewFlatten("f"),
	} {
		if _, err := l.Backward(s, dy); err == nil {
			t.Errorf("%s: backward before forward must error", l.Name())
		}
	}
}

func TestPlacementString(t *testing.T) {
	if OnHost.String() != "host" || OnFixedPIM.String() != "fixed-pim" ||
		OnProgPIM.String() != "prog-pim" || Placement(9).String() != "unknown" {
		t.Fatal("Placement.String mismatch")
	}
}

func TestGradientsMatchDirectMath(t *testing.T) {
	// The framework's dense backward must agree with hand-computed
	// gradients for a 1-layer linear model.
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(10))
	d := NewDense("lin", 3, 2, false, rng)
	m := NewModel(d)
	m.Adam.LR = 0 // keep params fixed; we inspect gradients via updates
	x := tensor.Randn(rng, 1, 4, 3)
	labels := []int{0, 1, 0, 1}
	logits, err := m.Forward(s, x)
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := tensor.CrossEntropyWithSoftmax(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	wantDW, err := tensor.MatMulTransA(x, grad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrainStep(s, x, labels); err != nil {
		t.Fatal(err)
	}
	// TrainStep zeroed the grads after Adam; re-run backward manually.
	if _, err := m.Forward(s, x); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Backward(s, grad); err != nil {
		t.Fatal(err)
	}
	if diff := tensor.MaxAbsDiff(d.W.Grad, wantDW); diff > 1e-4 {
		t.Fatalf("dense weight gradient differs by %g", diff)
	}
}
