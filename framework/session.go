// Package framework is a miniature NN training framework built on the
// extended-OpenCL layer — the functional analogue of the paper's
// TensorFlow integration (Section IV-C). A Model is a stack of layers;
// TrainStep runs a real forward/backward/update pass where every
// operation is submitted as an OpenCL kernel to the compute device the
// paper's placement rules choose: multiply/add-decomposable work to the
// fixed-function PIM device, conditional/discretization work to the
// programmable PIM, the rest to the host.
//
// The tensors are small and the math is genuine (internal/tensor); the
// value of this package is demonstrating the software design end to
// end: one portable kernel per operation, placed by the runtime, with
// no data copies thanks to the shared global memory.
package framework

import (
	"fmt"
	"sync"
	"sync/atomic"

	"heteropim/internal/hmc"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/opencl"
	"heteropim/internal/tensor"
)

// Tensor is the dense FP32 tensor type of the functional path.
type Tensor = tensor.Tensor

// Placement says where an operation executed.
type Placement int

// The three compute resources of the platform model.
const (
	OnHost Placement = iota
	OnFixedPIM
	OnProgPIM
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case OnHost:
		return "host"
	case OnFixedPIM:
		return "fixed-pim"
	case OnProgPIM:
		return "prog-pim"
	default:
		return "unknown"
	}
}

// Session owns an OpenCL platform over a heterogeneous PIM system and
// submits operation kernels to it.
type Session struct {
	platform *opencl.Platform
	cfg      hw.SystemConfig
	bufSeq   atomic.Int64

	// stats
	mu     sync.Mutex
	placed map[Placement]int
}

// NewSession opens a session on the paper's Hetero PIM configuration.
func NewSession() (*Session, error) {
	return NewSessionWith(hw.PaperConfig(hw.ConfigHeteroPIM))
}

// NewSessionWith opens a session on an explicit configuration.
func NewSessionWith(cfg hw.SystemConfig) (*Session, error) {
	p, err := opencl.NewPlatform(cfg)
	if err != nil {
		return nil, err
	}
	return &Session{platform: p, cfg: cfg, placed: map[Placement]int{}}, nil
}

// Close shuts the platform down.
func (s *Session) Close() { s.platform.Close() }

// Placements returns how many operations ran on each resource since the
// session opened.
func (s *Session) Placements() map[Placement]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[Placement]int{}
	for k, v := range s.placed {
		out[k] = v
	}
	return out
}

// hostOnlyTypes are pure data-movement framework ops (class 4 of
// Fig. 2): not worth a PIM launch, they stay on the host.
var hostOnlyTypes = map[nn.OpType]bool{
	nn.OpReshape:   true,
	nn.OpSlice:     true,
	nn.OpTranspose: true,
	nn.OpPad:       true,
	nn.OpConcat:    true,
}

// place applies the scheduling principles of Section III-C to one op
// type: fixed-function first, then programmable PIM, then host.
func (s *Session) place(op nn.OpType) Placement {
	prof := nn.ProfileFor(op)
	switch {
	case hostOnlyTypes[op]:
		return OnHost
	case prof.FixedEligible && prof.DecomposableFrac > 0 && s.platform.Fixed != nil:
		return OnFixedPIM
	case prof.ProgEligible && len(s.platform.Prog) > 0:
		return OnProgPIM
	default:
		return OnHost
	}
}

// submit wraps fn as an OpenCL kernel for the given op type, compiles
// it (Fig. 4), enqueues the right binary on the chosen device's queue,
// waits for the event, and records traffic against a scratch buffer.
func (s *Session) submit(name string, op nn.OpType, bytes float64, fn func() error) (Placement, error) {
	where := s.place(op)
	k := &opencl.Kernel{Name: name, Op: op}
	body := func(ctx *opencl.ExecContext) error { return fn() }
	switch where {
	case OnFixedPIM:
		k.FixedBody = body
	default:
		k.Body = body
	}
	bs, err := opencl.Compile(k)
	if err != nil {
		return where, err
	}
	var ev *opencl.Event
	switch where {
	case OnFixedPIM:
		ev, err = s.platform.Fixed.Queue().EnqueueKernel(bs.Binaries[opencl.BinFixed], s.platform.Memory, nil)
	case OnProgPIM:
		ev, err = s.platform.Prog[0].Queue().EnqueueKernel(bs.Binaries[opencl.BinProgFull], s.platform.Memory, nil)
	default:
		ev, err = s.platform.Host.Queue().EnqueueKernel(bs.Binaries[opencl.BinCPU], s.platform.Memory, nil)
	}
	if err != nil {
		return where, err
	}
	if err := ev.Wait(); err != nil {
		return where, err
	}
	// Account the op's traffic on the proper path of the stack.
	buf, err := s.platform.Memory.Alloc(fmt.Sprintf("scratch-%d", s.bufSeq.Add(1)), bytes, nil)
	if err == nil {
		path := hmc.PIMPath
		if where == OnHost {
			path = hmc.HostPath
		}
		s.platform.Memory.Touch(buf, bytes, path)
		_ = s.platform.Memory.Free(buf.Name)
	}
	s.mu.Lock()
	s.placed[where]++
	s.mu.Unlock()
	return where, nil
}

// Traffic reports the stack traffic accumulated so far (host path, PIM
// path), in bytes.
func (s *Session) Traffic() (host, pim float64) {
	st := s.platform.Memory.Stack()
	return st.HostBytes(), st.PIMBytes()
}
