package framework

import (
	"fmt"
	"math/rand"

	"heteropim/internal/nn"
	"heteropim/internal/tensor"
)

// Param is one trainable tensor with its gradient and optimizer state.
type Param struct {
	Name  string
	Value *Tensor
	Grad  *Tensor
	adam  *tensor.AdamState
}

// Layer is one differentiable building block. Forward and Backward are
// invoked by Model.TrainStep, which submits them as OpenCL kernels.
type Layer interface {
	Name() string
	// Forward consumes the input and returns the activation.
	Forward(s *Session, x *Tensor) (*Tensor, error)
	// Backward consumes dLoss/dOutput and returns dLoss/dInput,
	// accumulating parameter gradients.
	Backward(s *Session, dy *Tensor) (*Tensor, error)
	// Params exposes the trainable tensors.
	Params() []*Param
}

// ---- Conv2D ----

// Conv is a 2D convolution layer with bias and optional ReLU.
type Conv struct {
	name  string
	W     *Param
	B     *Param
	Spec  tensor.ConvSpec
	Relu  bool
	lastX *Tensor
	lastZ *Tensor // pre-activation
}

// NewConv builds a conv layer with HWIO filter shape.
func NewConv(name string, fh, fw, inC, outC, stride int, same, relu bool, rng *rand.Rand) *Conv {
	w := tensor.Randn(rng, 0.2, fh, fw, inC, outC)
	b := tensor.New(outC)
	return &Conv{
		name: name,
		W:    &Param{Name: name + "/weights", Value: w, Grad: tensor.New(w.Shape...), adam: tensor.NewAdamState(w)},
		B:    &Param{Name: name + "/bias", Value: b, Grad: tensor.New(b.Shape...), adam: tensor.NewAdamState(b)},
		Spec: tensor.ConvSpec{StrideH: stride, StrideW: stride, SamePadding: same},
		Relu: relu,
	}
}

// Name implements Layer.
func (c *Conv) Name() string { return c.name }

// Params implements Layer.
func (c *Conv) Params() []*Param { return []*Param{c.W, c.B} }

// Forward implements Layer: Conv2D on the fixed-function device, then
// BiasAdd (fixed) and ReLU (programmable — it is conditional).
func (c *Conv) Forward(s *Session, x *Tensor) (*Tensor, error) {
	c.lastX = x
	var z *Tensor
	if _, err := s.submit(c.name+"/Conv2D", nn.OpConv2D, float64(x.Bytes()+c.W.Value.Bytes()), func() error {
		var err error
		z, err = tensor.Conv2DGEMM(x, c.W.Value, c.Spec)
		return err
	}); err != nil {
		return nil, err
	}
	if _, err := s.submit(c.name+"/BiasAdd", nn.OpBiasAdd, float64(z.Bytes()), func() error {
		var err error
		z, err = tensor.BiasAdd(z, c.B.Value)
		return err
	}); err != nil {
		return nil, err
	}
	c.lastZ = z
	if !c.Relu {
		return z, nil
	}
	var y *Tensor
	if _, err := s.submit(c.name+"/Relu", nn.OpRelu, float64(z.Bytes()), func() error {
		y = tensor.Relu(z)
		return nil
	}); err != nil {
		return nil, err
	}
	return y, nil
}

// Backward implements Layer.
func (c *Conv) Backward(s *Session, dy *Tensor) (*Tensor, error) {
	if c.lastX == nil {
		return nil, fmt.Errorf("framework: %s: backward before forward", c.name)
	}
	cur := dy
	if c.Relu {
		if _, err := s.submit(c.name+"/ReluGrad", nn.OpReluGrad, float64(dy.Bytes()), func() error {
			var err error
			cur, err = tensor.ReluGrad(c.lastZ, cur)
			return err
		}); err != nil {
			return nil, err
		}
	}
	if _, err := s.submit(c.name+"/BiasAddGrad", nn.OpBiasAddGrad, float64(cur.Bytes()), func() error {
		db := tensor.BiasAddGrad(cur)
		var err error
		c.B.Grad, err = tensor.Add(c.B.Grad, db)
		return err
	}); err != nil {
		return nil, err
	}
	if _, err := s.submit(c.name+"/Conv2DBackpropFilter", nn.OpConv2DBackpropFilter,
		float64(c.lastX.Bytes()+cur.Bytes()), func() error {
			dw, err := tensor.Conv2DBackpropFilter(c.lastX, c.W.Value.Shape, cur, c.Spec)
			if err != nil {
				return err
			}
			c.W.Grad, err = tensor.Add(c.W.Grad, dw)
			return err
		}); err != nil {
		return nil, err
	}
	var dx *Tensor
	if _, err := s.submit(c.name+"/Conv2DBackpropInput", nn.OpConv2DBackpropInput,
		float64(cur.Bytes()+c.W.Value.Bytes()), func() error {
			var err error
			dx, err = tensor.Conv2DBackpropInput(c.lastX.Shape, c.W.Value, cur, c.Spec)
			return err
		}); err != nil {
		return nil, err
	}
	return dx, nil
}

// ---- Dense ----

// Dense is a fully connected layer with optional ReLU.
type Dense struct {
	name  string
	W     *Param
	B     *Param
	Relu  bool
	lastX *Tensor
	lastZ *Tensor
}

// NewDense builds a dense layer.
func NewDense(name string, in, out int, relu bool, rng *rand.Rand) *Dense {
	w := tensor.Randn(rng, 0.1, in, out)
	b := tensor.New(out)
	return &Dense{
		name: name,
		W:    &Param{Name: name + "/weights", Value: w, Grad: tensor.New(w.Shape...), adam: tensor.NewAdamState(w)},
		B:    &Param{Name: name + "/bias", Value: b, Grad: tensor.New(b.Shape...), adam: tensor.NewAdamState(b)},
		Relu: relu,
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Forward implements Layer.
func (d *Dense) Forward(s *Session, x *Tensor) (*Tensor, error) {
	d.lastX = x
	var z *Tensor
	if _, err := s.submit(d.name+"/MatMul", nn.OpMatMul, float64(x.Bytes()+d.W.Value.Bytes()), func() error {
		var err error
		z, err = tensor.MatMul(x, d.W.Value)
		return err
	}); err != nil {
		return nil, err
	}
	if _, err := s.submit(d.name+"/BiasAdd", nn.OpBiasAdd, float64(z.Bytes()), func() error {
		var err error
		z, err = tensor.BiasAdd(z, d.B.Value)
		return err
	}); err != nil {
		return nil, err
	}
	d.lastZ = z
	if !d.Relu {
		return z, nil
	}
	var y *Tensor
	if _, err := s.submit(d.name+"/Relu", nn.OpRelu, float64(z.Bytes()), func() error {
		y = tensor.Relu(z)
		return nil
	}); err != nil {
		return nil, err
	}
	return y, nil
}

// Backward implements Layer.
func (d *Dense) Backward(s *Session, dy *Tensor) (*Tensor, error) {
	if d.lastX == nil {
		return nil, fmt.Errorf("framework: %s: backward before forward", d.name)
	}
	cur := dy
	if d.Relu {
		if _, err := s.submit(d.name+"/ReluGrad", nn.OpReluGrad, float64(dy.Bytes()), func() error {
			var err error
			cur, err = tensor.ReluGrad(d.lastZ, cur)
			return err
		}); err != nil {
			return nil, err
		}
	}
	if _, err := s.submit(d.name+"/BiasAddGrad", nn.OpBiasAddGrad, float64(cur.Bytes()), func() error {
		db := tensor.BiasAddGrad(cur)
		var err error
		d.B.Grad, err = tensor.Add(d.B.Grad, db)
		return err
	}); err != nil {
		return nil, err
	}
	if _, err := s.submit(d.name+"/MatMul_grad_w", nn.OpMatMul, float64(d.lastX.Bytes()+cur.Bytes()), func() error {
		dw, err := tensor.MatMulTransA(d.lastX, cur)
		if err != nil {
			return err
		}
		d.W.Grad, err = tensor.Add(d.W.Grad, dw)
		return err
	}); err != nil {
		return nil, err
	}
	var dx *Tensor
	if _, err := s.submit(d.name+"/MatMul_grad_x", nn.OpMatMul, float64(cur.Bytes()+d.W.Value.Bytes()), func() error {
		var err error
		dx, err = tensor.MatMulTransB(cur, d.W.Value)
		return err
	}); err != nil {
		return nil, err
	}
	return dx, nil
}

// ---- MaxPool ----

// Pool is a max-pooling layer (a programmable-PIM discretization op).
type Pool struct {
	name    string
	Window  int
	Stride  int
	lastX   *Tensor
	lastArg []int
}

// NewPool builds a max-pool layer.
func NewPool(name string, window, stride int) *Pool {
	return &Pool{name: name, Window: window, Stride: stride}
}

// Name implements Layer.
func (p *Pool) Name() string { return p.name }

// Params implements Layer.
func (p *Pool) Params() []*Param { return nil }

// Forward implements Layer.
func (p *Pool) Forward(s *Session, x *Tensor) (*Tensor, error) {
	p.lastX = x
	var y *Tensor
	if _, err := s.submit(p.name+"/MaxPool", nn.OpMaxPool, float64(x.Bytes()), func() error {
		var err error
		y, p.lastArg, err = tensor.MaxPool(x, p.Window, p.Stride)
		return err
	}); err != nil {
		return nil, err
	}
	return y, nil
}

// Backward implements Layer.
func (p *Pool) Backward(s *Session, dy *Tensor) (*Tensor, error) {
	if p.lastX == nil {
		return nil, fmt.Errorf("framework: %s: backward before forward", p.name)
	}
	var dx *Tensor
	if _, err := s.submit(p.name+"/MaxPoolGrad", nn.OpMaxPoolGrad, float64(dy.Bytes()), func() error {
		var err error
		dx, err = tensor.MaxPoolGrad(p.lastX.Shape, dy, p.lastArg)
		return err
	}); err != nil {
		return nil, err
	}
	return dx, nil
}

// ---- Flatten ----

// Flatten reshapes NHWC activations to (N, H*W*C).
type Flatten struct {
	name      string
	lastShape []int
}

// NewFlatten builds a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(s *Session, x *Tensor) (*Tensor, error) {
	f.lastShape = append([]int(nil), x.Shape...)
	n := x.Shape[0]
	var y *Tensor
	if _, err := s.submit(f.name+"/Reshape", nn.OpReshape, float64(x.Bytes()), func() error {
		var err error
		y, err = tensor.FromSlice(x.Data, n, x.Size()/n)
		return err
	}); err != nil {
		return nil, err
	}
	return y, nil
}

// Backward implements Layer.
func (f *Flatten) Backward(s *Session, dy *Tensor) (*Tensor, error) {
	if f.lastShape == nil {
		return nil, fmt.Errorf("framework: %s: backward before forward", f.name)
	}
	return tensor.FromSlice(dy.Data, f.lastShape...)
}
