package heteropim

// The benchmark harness: one testing.B benchmark per paper table/figure
// (DESIGN.md §5), plus the ablation benches of DESIGN.md §6. Each
// benchmark regenerates its artifact end to end and reports the headline
// quantity as a custom metric, so `go test -bench=. -benchmem` doubles
// as the full reproduction run.

import (
	"testing"
	"time"

	"heteropim/internal/core"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/workload"
)

// benchLive disables the simulation result cache for the benchmark so
// every iteration measures a live simulation, restoring it afterwards.
func benchLive(b *testing.B) {
	b.Helper()
	prev := SetSimulationCache(false)
	b.Cleanup(func() { SetSimulationCache(prev) })
}

// benchExperiment runs one experiment per iteration.
func benchExperiment(b *testing.B, run func() (*Table, error)) {
	b.Helper()
	benchLive(b)
	for i := 0; i < b.N; i++ {
		t, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkTableI regenerates Table I (operation profiling).
func BenchmarkTableI(b *testing.B) { benchExperiment(b, TableI) }

// BenchmarkFig2Classes regenerates the Fig. 2 taxonomy.
func BenchmarkFig2Classes(b *testing.B) { benchExperiment(b, Fig2Classes) }

// BenchmarkFig8ExecTime regenerates the 5x5 execution-time matrix.
func BenchmarkFig8ExecTime(b *testing.B) { benchExperiment(b, Fig8ExecTime) }

// BenchmarkFig9Energy regenerates the normalized-energy matrix.
func BenchmarkFig9Energy(b *testing.B) { benchExperiment(b, Fig9Energy) }

// BenchmarkFig10Neurocube regenerates the Neurocube comparison.
func BenchmarkFig10Neurocube(b *testing.B) { benchExperiment(b, Fig10Neurocube) }

// BenchmarkFig11FreqScaling regenerates the frequency-scaling study.
func BenchmarkFig11FreqScaling(b *testing.B) { benchExperiment(b, Fig11FreqScaling) }

// BenchmarkFig12ProgScaling regenerates the 1P/4P/16P study.
func BenchmarkFig12ProgScaling(b *testing.B) { benchExperiment(b, Fig12ProgScaling) }

// BenchmarkFig13SoftwareImpact regenerates the RC/OP time study.
func BenchmarkFig13SoftwareImpact(b *testing.B) { benchExperiment(b, Fig13SoftwareImpact) }

// BenchmarkFig14SoftwareEnergy regenerates the RC/OP energy study.
func BenchmarkFig14SoftwareEnergy(b *testing.B) { benchExperiment(b, Fig14SoftwareEnergy) }

// BenchmarkFig15Utilization regenerates the utilization study.
func BenchmarkFig15Utilization(b *testing.B) { benchExperiment(b, Fig15Utilization) }

// BenchmarkFig16Mixed regenerates the mixed-workload study.
func BenchmarkFig16Mixed(b *testing.B) { benchExperiment(b, Fig16Mixed) }

// BenchmarkFig17EDP regenerates the EDP/power study.
func BenchmarkFig17EDP(b *testing.B) { benchExperiment(b, Fig17EDP) }

// BenchmarkParallelSweep measures the parallel experiment runner on the
// 5x5 execution-time matrix (Fig. 8). Run with -cpu 1,4 to compare
// worker widths: the pool sizes itself from GOMAXPROCS, which -cpu
// sets. speedup-x is wall clock relative to a one-worker baseline
// measured in the same process; every timed run starts with cold
// profile and result caches so the comparison isolates the worker pool.
func BenchmarkParallelSweep(b *testing.B) {
	prev := SetParallelism(1)
	defer SetParallelism(prev)
	core.ResetProfileCache()
	ResetSimulationCache()
	start := time.Now()
	if _, err := Fig8ExecTime(); err != nil {
		b.Fatal(err)
	}
	seq := time.Since(start).Seconds()

	SetParallelism(0) // follow GOMAXPROCS so -cpu variants change the width
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ResetProfileCache()
		ResetSimulationCache()
		if _, err := Fig8ExecTime(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	par := b.Elapsed().Seconds() / float64(b.N)
	if par > 0 {
		b.ReportMetric(seq/par, "speedup-x")
	}
	b.ReportMetric(float64(Parallelism()), "workers")
}

// BenchmarkHeteroStep measures the simulator itself: one steady-state
// Hetero PIM run per CNN model, reporting the simulated step time.
func BenchmarkHeteroStep(b *testing.B) {
	benchLive(b)
	for _, m := range Models() {
		m := m
		b.Run(string(m), func(b *testing.B) {
			g, err := nn.Build(nn.ModelName(m))
			if err != nil {
				b.Fatal(err)
			}
			var step float64
			for i := 0; i < b.N; i++ {
				r, err := core.Run(hw.ConfigHeteroPIM, g, 1)
				if err != nil {
					b.Fatal(err)
				}
				step = r.StepTime
			}
			b.ReportMetric(step, "sim-step-s")
		})
	}
}

// --- Ablation benches (DESIGN.md §6) ---

// BenchmarkAblationXPercent sweeps the candidate-selection threshold.
func BenchmarkAblationXPercent(b *testing.B) {
	benchLive(b)
	g := nn.VGG19()
	for _, x := range []float64{50, 70, 90, 99} {
		x := x
		b.Run(bfmt("x", x), func(b *testing.B) {
			opts := core.HeteroOptions()
			opts.XPercent = x
			var step float64
			for i := 0; i < b.N; i++ {
				r, err := core.RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), opts)
				if err != nil {
					b.Fatal(err)
				}
				step = r.StepTime
			}
			b.ReportMetric(step, "sim-step-s")
		})
	}
}

// BenchmarkAblationPlacement compares thermal vs uniform placement.
func BenchmarkAblationPlacement(b *testing.B) {
	benchLive(b)
	g := nn.AlexNet()
	for _, uniform := range []bool{false, true} {
		uniform := uniform
		name := "thermal"
		if uniform {
			name = "uniform"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.HeteroOptions()
			opts.UniformPlacement = uniform
			var step float64
			for i := 0; i < b.N; i++ {
				r, err := core.RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), opts)
				if err != nil {
					b.Fatal(err)
				}
				step = r.StepTime
			}
			b.ReportMetric(step, "sim-step-s")
		})
	}
}

// BenchmarkAblationPipelineDepth sweeps the OP pipeline depth.
func BenchmarkAblationPipelineDepth(b *testing.B) {
	benchLive(b)
	g := nn.AlexNet()
	for _, depth := range []int{1, 2, 4} {
		depth := depth
		b.Run(bfmt("depth", float64(depth)), func(b *testing.B) {
			opts := core.HeteroOptions()
			opts.PipelineDepth = depth
			var step float64
			for i := 0; i < b.N; i++ {
				r, err := core.RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), opts)
				if err != nil {
					b.Fatal(err)
				}
				step = r.StepTime
			}
			b.ReportMetric(step, "sim-step-s")
		})
	}
}

// BenchmarkAblationSyncCost sweeps the host-PIM synchronization cost
// that RC exists to remove.
func BenchmarkAblationSyncCost(b *testing.B) {
	benchLive(b)
	g := nn.AlexNet()
	for _, mult := range []float64{0.5, 1, 2, 4} {
		mult := mult
		b.Run(bfmt("sync", mult), func(b *testing.B) {
			cfg := hw.PaperConfig(hw.ConfigHeteroPIM)
			cfg.FixedPIM.HostSyncOverhead *= mult
			cfg.FixedPIM.SpawnOverhead *= mult
			opts := core.HeteroOptions()
			opts.RC = false // the sweep only matters without RC
			var step float64
			for i := 0; i < b.N; i++ {
				r, err := core.RunPIM(g, cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
				step = r.StepTime
			}
			b.ReportMetric(step, "sim-step-s")
		})
	}
}

// BenchmarkMixedCoRun runs one co-run case per iteration.
func BenchmarkMixedCoRun(b *testing.B) {
	benchLive(b)
	c := workload.MixedCase{CNN: nn.AlexNetName, NonCNN: nn.LSTMName}
	var imp float64
	for i := 0; i < b.N; i++ {
		r, err := workload.RunMixed(c)
		if err != nil {
			b.Fatal(err)
		}
		imp = r.Improvement
	}
	b.ReportMetric(imp*100, "improvement-%")
}

// bfmt renders sub-benchmark names.
func bfmt(key string, v float64) string {
	if v == float64(int(v)) {
		return key + "=" + itoa(int(v))
	}
	return key + "=" + itoa(int(v*10)) + "e-1"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}
