package heteropim

// Determinism regression tests for the parallel experiment runner:
// every figure must produce bit-identical tables whether its cells run
// sequentially or fanned out across workers.

import (
	"reflect"
	"testing"

	"heteropim/internal/core"
)

// runAtParallelism regenerates an experiment table at a fixed worker
// count with a cold profile cache.
func runAtParallelism(t *testing.T, run func() (*Table, error), workers int) *Table {
	t.Helper()
	prev := SetParallelism(workers)
	defer SetParallelism(prev)
	core.ResetProfileCache()
	tab, err := run()
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return tab
}

// TestParallelMatchesSequential asserts sequential and parallel runs of
// representative figures (the 5x5 matrix and the RC/OP variant study,
// which between them exercise runGrid, runJobs and the variant matrix)
// produce deeply equal tables.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		run  func() (*Table, error)
	}{
		{"Fig8ExecTime", Fig8ExecTime},
		{"Fig13SoftwareImpact", Fig13SoftwareImpact},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seq := runAtParallelism(t, c.run, 1)
			par := runAtParallelism(t, c.run, 4)
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("parallel table differs from sequential:\nsequential:\n%s\nparallel:\n%s",
					seq.String(), par.String())
			}
		})
	}
}

// TestAllExperimentsParallelSafe smoke-runs every registered experiment
// (paper + extensions) at parallelism 4; combined with the race
// detector this guards against shared-state regressions in any figure.
func TestAllExperimentsParallelSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: regenerates every artifact")
	}
	prev := SetParallelism(4)
	defer SetParallelism(prev)
	all := append(Experiments(), ExtensionExperiments()...)
	for _, e := range all {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
		})
	}
}

// TestSetParallelismRoundTrip checks the public knob restores cleanly.
func TestSetParallelismRoundTrip(t *testing.T) {
	orig := SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	if prev := SetParallelism(orig); prev != 3 {
		t.Fatalf("SetParallelism returned %d, want 3", prev)
	}
}
