package heteropim_test

import (
	"fmt"

	"heteropim"
)

// ExampleRun simulates one AlexNet training step on the heterogeneous
// PIM platform and reports whether the runtime offloaded work.
func ExampleRun() {
	r, err := heteropim.Run(heteropim.ConfigHeteroPIM, heteropim.AlexNet)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("offloaded ops:", r.OffloadedOps > 0)
	fmt.Println("breakdown sums to step:",
		r.Breakdown.Operation+r.Breakdown.DataMovement+r.Breakdown.Sync > 0.99*r.StepTime)
	// Output:
	// offloaded ops: true
	// breakdown sums to step: true
}

// ExampleRunVariant shows the Section VI-E software toggles: the full
// runtime (RC+OP) beats the bare heterogeneous hardware.
func ExampleRunVariant() {
	bare, err := heteropim.RunVariant(heteropim.AlexNet, heteropim.Variant{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	full, err := heteropim.RunVariant(heteropim.AlexNet,
		heteropim.Variant{RecursiveKernels: true, OperationPipeline: true})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("RC+OP faster:", full.StepTime < bare.StepTime)
	fmt.Println("RC+OP utilization higher:", full.FixedUtilization > bare.FixedUtilization)
	// Output:
	// RC+OP faster: true
	// RC+OP utilization higher: true
}

// ExampleRunScaled shows the Section VI-D frequency scaling.
func ExampleRunScaled() {
	r1, _ := heteropim.RunScaled(heteropim.ConfigHeteroPIM, heteropim.DCGAN, 1)
	r4, _ := heteropim.RunScaled(heteropim.ConfigHeteroPIM, heteropim.DCGAN, 4)
	fmt.Println("4x faster than 1x:", r4.StepTime < r1.StepTime)
	// Output:
	// 4x faster than 1x: true
}
