package heteropim

import (
	"heteropim/internal/core"
	"heteropim/internal/nn"
)

// LayerSpec describes one layer of a user-defined CNN.
type LayerSpec = nn.LayerSpec

// CNNSpec is a user-defined convolutional network — the extension point
// for simulating models beyond the paper's seven workloads. Layer kinds
// are "conv", "pool", "avgpool", "batchnorm" and "fc".
type CNNSpec = nn.CNNSpec

// RunCustomCNN simulates one training step of a user-defined network on
// a platform configuration.
func RunCustomCNN(config Config, spec CNNSpec) (Result, error) {
	g, err := nn.BuildCNN(spec)
	if err != nil {
		return Result{}, err
	}
	r, err := core.Run(config, g, 1)
	if err != nil {
		return Result{}, err
	}
	return wrap(r), nil
}

// RunCustomCNNOnHardware simulates a user-defined network on a custom
// platform under the full heterogeneous-PIM runtime.
func RunCustomCNNOnHardware(h HardwareConfig, spec CNNSpec) (Result, error) {
	g, err := nn.BuildCNN(spec)
	if err != nil {
		return Result{}, err
	}
	r, err := core.RunPIM(g, h.cfg, core.HeteroOptions())
	if err != nil {
		return Result{}, err
	}
	return wrap(r), nil
}
