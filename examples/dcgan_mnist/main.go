// dcgan_mnist demonstrates both faces of the library on the paper's
// smallest workload:
//
//  1. The functional path: train a tiny convolutional classifier on
//     synthetic MNIST-like digits with the public tensor API (real
//     Conv2D / backprop / Adam math — the same operation set the paper
//     profiles), and watch the loss fall.
//
//  2. The simulation path: simulate DCGAN training (batch 64, MNIST
//     shapes) on the five platform configurations; DCGAN is the paper's
//     example of a small model where the GPU retains the edge over
//     Hetero PIM (Section VI-A).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"heteropim"
)

// synthDigit renders a crude synthetic "digit": class 0 draws a filled
// square, class 1 a horizontal bar, class 2 a diagonal. Enough signal
// for a three-way classifier to learn from scratch.
func synthDigit(rng *rand.Rand, class int) *heteropim.Tensor {
	img := heteropim.NewTensor(1, 12, 12, 1)
	for y := 0; y < 12; y++ {
		for x := 0; x < 12; x++ {
			v := float32(rng.NormFloat64() * 0.1)
			switch class {
			case 0:
				if x >= 3 && x < 9 && y >= 3 && y < 9 {
					v += 1
				}
			case 1:
				if y >= 5 && y < 7 {
					v += 1
				}
			case 2:
				if x == y || x == y+1 {
					v += 1
				}
			}
			img.Set4(0, y, x, 0, v)
		}
	}
	return img
}

func functionalTraining() {
	fmt.Println("== Functional path: training a conv classifier on synthetic digits ==")
	rng := rand.New(rand.NewSource(42))
	spec := heteropim.ConvSpec{StrideH: 1, StrideW: 1, SamePadding: true}

	// Parameters: 3x3x1x8 conv filter + dense 8*6*6 -> 3.
	conv := heteropim.Randn(rng, 0.3, 3, 3, 1, 8)
	dense := heteropim.Randn(rng, 0.1, 8*6*6, 3)
	convState := heteropim.NewAdamState(conv)
	denseState := heteropim.NewAdamState(dense)
	adam := heteropim.DefaultAdam()
	adam.LR = 5e-3

	batch := 12
	var firstLoss, lastLoss float64
	for step := 0; step < 60; step++ {
		// Assemble a minibatch.
		x := heteropim.NewTensor(batch, 12, 12, 1)
		labels := make([]int, batch)
		for i := 0; i < batch; i++ {
			labels[i] = rng.Intn(3)
			img := synthDigit(rng, labels[i])
			copy(x.Data[i*12*12:(i+1)*12*12], img.Data)
		}
		// Forward: conv -> relu -> maxpool(2) -> dense -> softmax CE.
		c, err := heteropim.Conv2D(x, conv, spec)
		check(err)
		r := heteropim.Relu(c)
		p, arg, err := heteropim.MaxPool(r, 2, 2)
		check(err)
		flat, err := heteropim.TensorFromSlice(p.Data, batch, 8*6*6)
		check(err)
		logits, err := heteropim.MatMul(flat, dense)
		check(err)
		loss, dLogits, err := heteropim.CrossEntropyWithSoftmax(logits, labels)
		check(err)
		if step == 0 {
			firstLoss = loss
		}
		lastLoss = loss
		// Backward.
		dDense, err := heteropim.MatMulTransA(flat, dLogits)
		check(err)
		dFlat, err := heteropim.MatMulTransB(dLogits, dense)
		check(err)
		dPool, err := heteropim.TensorFromSlice(dFlat.Data, batch, 6, 6, 8)
		check(err)
		dRelu, err := heteropim.MaxPoolGrad(r.Shape, dPool, arg)
		check(err)
		dConvOut, err := heteropim.ReluGrad(c, dRelu)
		check(err)
		dConv, err := heteropim.Conv2DBackpropFilter(x, conv.Shape, dConvOut, spec)
		check(err)
		// Update.
		check(heteropim.ApplyAdam(conv, dConv, convState, adam))
		check(heteropim.ApplyAdam(dense, dDense, denseState, adam))
		if step%15 == 0 || step == 59 {
			fmt.Printf("  step %2d: loss %.4f\n", step, loss)
		}
	}
	fmt.Printf("  loss %.4f -> %.4f (the real math learns)\n\n", firstLoss, lastLoss)
}

func simulatedDCGAN() {
	fmt.Println("== Simulation path: DCGAN training across platforms ==")
	var gpu, het heteropim.Result
	for _, cfg := range heteropim.Configs() {
		r, err := heteropim.Run(cfg, heteropim.DCGAN)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s step %9.2fms  energy %6.2fJ\n", r.Config, r.StepTime*1e3, r.Energy)
		switch cfg {
		case heteropim.ConfigGPU:
			gpu = r
		case heteropim.ConfigHeteroPIM:
			het = r
		}
	}
	fmt.Printf("\nDCGAN is the paper's small-model counterexample: GPU (%.1fms) beats Hetero PIM (%.1fms),\n",
		gpu.StepTime*1e3, het.StepTime*1e3)
	fmt.Printf("yet Hetero PIM still uses %.1fx less energy per step.\n", gpu.Energy/het.Energy)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func main() {
	functionalTraining()
	simulatedDCGAN()
}
