// Quickstart: simulate one training step of VGG-19 on all five platform
// configurations of the paper (CPU, GPU, Progr PIM, Fixed PIM, Hetero
// PIM) and print the Fig. 8-style comparison.
package main

import (
	"fmt"
	"log"

	"heteropim"
)

func main() {
	model := heteropim.VGG19
	fmt.Printf("Simulating one training step of %s (batch 32, ImageNet shapes)\n\n", model)

	var hetero heteropim.Result
	results := make([]heteropim.Result, 0, 5)
	for _, cfg := range heteropim.Configs() {
		r, err := heteropim.Run(cfg, model)
		if err != nil {
			log.Fatalf("simulating %v: %v", cfg, err)
		}
		results = append(results, r)
		if cfg == heteropim.ConfigHeteroPIM {
			hetero = r
		}
	}

	fmt.Printf("%-12s %12s %12s %12s %10s %10s\n",
		"Config", "Step time", "Energy", "Avg power", "PIM util", "vs Hetero")
	for _, r := range results {
		fmt.Printf("%-12s %11.3fs %11.1fJ %11.1fW %9.1f%% %9.2fx\n",
			r.Config, r.StepTime, r.Energy, r.AvgPower,
			r.FixedUtilization*100, r.StepTime/hetero.StepTime)
	}

	fmt.Println("\nThe heterogeneous PIM runtime offloaded",
		hetero.OffloadedOps, "operations per step to the PIMs and kept",
		hetero.CPUOps, "on the host CPU.")
	fmt.Println("Breakdown of the Hetero PIM step (Fig. 8 categories):")
	fmt.Printf("  operation     %8.3fs\n", hetero.Breakdown.Operation)
	fmt.Printf("  data movement %8.3fs\n", hetero.Breakdown.DataMovement)
	fmt.Printf("  synchronization %6.3fs\n", hetero.Breakdown.Sync)
}
