// framework_training demonstrates the paper's software design end to
// end with real math: a miniature training framework (the TensorFlow-
// integration analogue of Section IV-C) submits every operation of a
// small convolutional classifier as an OpenCL kernel, and the runtime
// places each kernel on the device the paper's rules pick — Conv2D /
// MatMul / BiasAdd / ApplyAdam on the fixed-function PIMs, ReLU /
// MaxPool / the loss on the programmable PIM, reshapes on the host.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"heteropim/framework"
	"heteropim/internal/tensor"
)

func batch(rng *rand.Rand, n int) (*framework.Tensor, []int) {
	x := tensor.New(n, 10, 10, 1)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = rng.Intn(3)
		for h := 0; h < 10; h++ {
			for w := 0; w < 10; w++ {
				v := float32(rng.NormFloat64() * 0.05)
				switch labels[i] {
				case 0: // vertical bar
					if w >= 4 && w < 6 {
						v += 1
					}
				case 1: // horizontal bar
					if h >= 4 && h < 6 {
						v += 1
					}
				case 2: // corner blob
					if h < 4 && w < 4 {
						v += 1
					}
				}
				x.Set4(i, h, w, 0, v)
			}
		}
	}
	return x, labels
}

func main() {
	session, err := framework.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	rng := rand.New(rand.NewSource(2018)) // the paper's vintage
	model := framework.NewModel(
		framework.NewConv("conv1", 3, 3, 1, 6, 1, true, true, rng),
		framework.NewPool("pool1", 2, 2),
		framework.NewConv("conv2", 3, 3, 6, 8, 1, true, true, rng),
		framework.NewFlatten("flatten"),
		framework.NewDense("fc", 5*5*8, 3, false, rng),
	)
	model.Adam.LR = 4e-3

	fmt.Printf("training a %d-parameter conv net through the OpenCL layer\n\n", model.NumParams())
	var lastReport framework.StepReport
	for step := 0; step < 40; step++ {
		x, labels := batch(rng, 12)
		rep, err := model.TrainStep(session, x, labels)
		if err != nil {
			log.Fatal(err)
		}
		lastReport = rep
		if step%10 == 0 || step == 39 {
			fmt.Printf("  step %2d  loss %.4f\n", step, rep.Loss)
		}
	}

	fmt.Println("\nper-step operation placement (the paper's scheduling rules):")
	for _, p := range []framework.Placement{framework.OnFixedPIM, framework.OnProgPIM, framework.OnHost} {
		fmt.Printf("  %-10s %3d kernels\n", p, lastReport.Placements[p])
	}
	host, pim := session.Traffic()
	fmt.Printf("\nshared-memory traffic: %.1f MB via PIM path, %.1f MB via host path\n",
		pim/1e6, host/1e6)
	fmt.Println("(offload keeps the bulk of the bytes inside the stack — the paper's energy story)")
}
