// frequency_sweep reproduces the Section VI-D / VI-G frequency studies:
// the heterogeneous PIM at 1x, 2x and 4x the HMC 2.0 stack frequency
// (312.5 MHz), compared against the GPU, with energy-delay product and
// power (Figs. 11 and 17).
package main

import (
	"fmt"
	"log"

	"heteropim"
)

func main() {
	fmt.Println("3D memory frequency scaling (Figs. 11 and 17)")
	for _, model := range []heteropim.Model{heteropim.VGG19, heteropim.AlexNet} {
		gpu, err := heteropim.Run(heteropim.ConfigGPU, model)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (GPU reference: %.3fs, %.1fW)\n", model, gpu.StepTime, gpu.AvgPower)
		fmt.Printf("  %-5s %10s %12s %12s %12s %14s\n",
			"Freq", "Step", "vs GPU", "EDP (J*s)", "Power", "GPU power/PIM")
		var bestEDP float64
		bestFreq := 0.0
		for _, f := range []float64{1, 2, 4} {
			r, err := heteropim.RunScaled(heteropim.ConfigHeteroPIM, model, f)
			if err != nil {
				log.Fatal(err)
			}
			if bestFreq == 0 || r.EDP < bestEDP {
				bestEDP, bestFreq = r.EDP, f
			}
			fmt.Printf("  %3gx %9.3fs %11.2fx %12.3g %11.1fW %13.2fx\n",
				f, r.StepTime, gpu.StepTime/r.StepTime, r.EDP, r.AvgPower,
				gpu.AvgPower/r.AvgPower)
		}
		fmt.Printf("  most energy-efficient point: %gx (paper: 4x)\n", bestFreq)
	}
	fmt.Println("\nPaper shape: higher PIM frequency overtakes the GPU; VGG-19's gains")
	fmt.Println("saturate between 2x and 4x (internal bandwidth bound) while AlexNet")
	fmt.Println("keeps scaling; the GPU draws 1.5-2.6x more power than Hetero PIM at 4x.")
}
