// scenario_sweep shows the declarative scenario subsystem end to end:
// one versioned JSON document describes a cell grid (here a slice of
// the Fig. 8/9 configuration matrix crossed with the Fig. 11 frequency
// axis), the compiler expands and dedups it into an ordered BatchCell
// plan, and the plan renders through the exact CSV writer pimsweep
// uses — so this program's output is byte-identical to saving the
// document to a file and running `pimsweep -scenario grid.json`.
//
// It also compiles an open-loop arrival clause to show that the same
// document format drives load generation: a seeded Poisson process
// yields a deterministic request-offset schedule, the thing
// `pimserve -selfcheck -scenario ...` fires at a live daemon.
package main

import (
	"encoding/csv"
	"fmt"
	"log"
	"os"

	"heteropim"
	"heteropim/internal/cliutil"
)

const grid = `{
  "scenario": 1,
  "name": "example-grid",
  "cells": [
    {"models": ["VGG-19", "AlexNet"],
     "configs": ["gpu", "hetero"],
     "freq_scales": [1, 2]},
    {"models": ["VGG-19"],
     "configs": ["hetero"],
     "freq_scales": [1]}
  ]
}`

const loadtest = `{
  "scenario": 1,
  "name": "example-load",
  "seed": 42,
  "cells": [{"models": ["VGG-19"], "configs": ["hetero"]}],
  "arrival": {"process": "poisson", "rate_per_sec": 200, "requests": 8}
}`

func main() {
	plan, err := heteropim.CompileScenario([]byte(grid))
	if err != nil {
		log.Fatal(err)
	}
	// The second cell set repeats (hetero, VGG-19, 1x) from the first:
	// the compiler folds it, keeping the accounting.
	fmt.Fprintf(os.Stderr, "scenario %q: %d cells requested, %d duplicates folded, %d to run\n",
		plan.Name, plan.Requested, plan.Duplicates, len(plan.Cells))

	w := csv.NewWriter(os.Stdout)
	if err := cliutil.WriteScenarioCSV(w, plan); err != nil {
		log.Fatal(err)
	}
	w.Flush()

	lt, err := heteropim.CompileScenario([]byte(loadtest))
	if err != nil {
		log.Fatal(err)
	}
	offsets, err := lt.Arrival.Schedule(lt.Seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "\nopen-loop %s arrival, seed %d (deterministic):\n",
		lt.Arrival.Normalized(), lt.Seed)
	for i, off := range offsets {
		fmt.Fprintf(os.Stderr, "  request %d fires at +%.1fms\n", i, off*1e3)
	}
}
