// design_space re-opens the question the paper answered with
// McPAT/HotSpot (Section IV-D): how many fixed-function PIMs does the
// logic die need? The paper's area budget allows 444 multiplier/adder
// pairs; this example sweeps the unit budget and the stack frequency
// around that point and shows the knee in step time, energy and EDP —
// including what extra silicon would NOT buy.
package main

import (
	"fmt"
	"log"
	"os"

	"heteropim"
)

func main() {
	model := heteropim.VGG19
	base := heteropim.DefaultHardware(heteropim.ConfigHeteroPIM)

	fmt.Printf("Design space: fixed-function unit budget sweep (%s)\n\n", model)
	fmt.Printf("%8s %12s %12s %12s %12s\n", "Units", "Step", "Energy", "EDP", "PIM util")
	for _, units := range []int{111, 222, 444, 888, 1776} {
		hwCfg, err := base.WithFixedUnits(units)
		if err != nil {
			log.Fatal(err)
		}
		r, err := heteropim.RunOnHardware(hwCfg, model)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if units == 444 {
			marker = "  <- the paper's McPAT/HotSpot budget"
		}
		fmt.Printf("%8d %11.3fs %11.1fJ %12.3g %11.1f%%%s\n",
			units, r.StepTime, r.Energy, r.EDP, r.FixedUtilization*100, marker)
	}

	fmt.Printf("\nFrequency x units interaction (EDP):\n%8s", "")
	scales := []float64{1, 2, 4}
	for _, s := range scales {
		fmt.Printf(" %9gx", s)
	}
	fmt.Println()
	for _, units := range []int{222, 444, 888} {
		fmt.Printf("%7du", units)
		for _, s := range scales {
			hwCfg, err := base.WithFixedUnits(units)
			if err != nil {
				log.Fatal(err)
			}
			hwCfg, err = hwCfg.WithStackFrequencyScale(s)
			if err != nil {
				log.Fatal(err)
			}
			r, err := heteropim.RunOnHardware(hwCfg, model)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10.3g", r.EDP)
		}
		fmt.Println()
	}

	fmt.Println("\nCustom hardware descriptions round-trip as JSON:")
	custom, err := base.WithFixedUnits(888)
	if err != nil {
		log.Fatal(err)
	}
	if err := custom.SaveHardware(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
