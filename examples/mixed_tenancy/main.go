// mixed_tenancy reproduces the Section VI-F multi-tenancy study: a CNN
// training job co-runs with a non-CNN job (LSTM or Word2vec) on the
// same heterogeneous PIM system. The CNN is scheduled by the full
// runtime; the non-CNN job runs on the CPU and the programmable PIM
// when they are idle. Co-running beats training the two jobs
// sequentially because operations across models have no dependences.
package main

import (
	"fmt"
	"log"

	"heteropim"
)

func main() {
	fmt.Println("Mixed-workload co-run (Fig. 16): co-run vs sequential execution")
	fmt.Println()
	results, err := heteropim.RunMixedWorkloads()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %14s %14s %12s\n", "Case", "Sequential", "Co-run", "Improvement")
	var worst, best float64
	for i, r := range results {
		fmt.Printf("%-24s %13.3fs %13.3fs %11.0f%%\n",
			r.Case.Name(), r.Sequential, r.CoRun, r.Improvement*100)
		if i == 0 {
			worst, best = r.Improvement, r.Improvement
		}
		if r.Improvement < worst {
			worst = r.Improvement
		}
		if r.Improvement > best {
			best = r.Improvement
		}
	}
	fmt.Printf("\nImprovement range: %.0f%%-%.0f%% (paper: 69%%-83%%).\n", worst*100, best*100)
	fmt.Println("The gain comes from filling idle CPU/programmable-PIM cycles with the")
	fmt.Println("non-CNN job while the fixed-function PIMs crunch the CNN.")

	// Beyond the paper: more than two tenants on one system.
	fmt.Println("\nExtension: three tenants sharing the stack")
	mt, err := heteropim.RunMultiTenant([]heteropim.TenantSpec{
		{Model: heteropim.AlexNet},
		{Model: heteropim.DCGAN},
		{Model: heteropim.Word2Vec, HostOnly: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  sequential %.3fs -> co-run %.3fs (%.0f%% better)\n",
		mt.Sequential, mt.CoRun, mt.Improvement*100)
	for i, ten := range mt.Tenants {
		fmt.Printf("  %-10s slowdown vs solo: %.2fx\n", ten.Model, mt.Slowdowns[i])
	}
}
