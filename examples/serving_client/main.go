// Serving client: submit a small sweep to a pimserve daemon over its
// JSON API and print a Fig. 8-style table from the results.
//
// With a daemon already running (go run ./cmd/pimserve):
//
//	go run ./examples/serving_client -addr http://127.0.0.1:8080
//
// Run standalone, the example starts an in-process server on a random
// port so the walkthrough works without a second terminal.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"heteropim"
	"heteropim/internal/serve"
)

// submitted mirrors the fields of the job-status response the client
// needs; unknown fields are ignored so the example stays compatible.
type submitted struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Requests int    `json:"requests"`
}

func main() {
	addr := flag.String("addr", "", "base URL of a running pimserve (empty = start one in-process)")
	flag.Parse()

	base := *addr
	if base == "" {
		base = startLocal()
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	model := heteropim.VGG19
	fmt.Printf("Sweeping %s across the five platforms via %s\n\n", model, base)
	fmt.Printf("%-12s %12s %12s %12s %10s\n", "Config", "Step time", "Energy", "Avg power", "Job")
	for _, cfg := range heteropim.ConfigNames() {
		r, id := runCell(client, base, cfg, string(model))
		fmt.Printf("%-12s %11.3fs %11.1fJ %11.1fW  %s\n",
			r.Config, r.StepTime, r.Energy, r.AvgPower, id)
	}
}

// runCell submits one (config, model) job and long-polls its result.
// The result body is the exact json.Marshal(heteropim.Result) bytes the
// server computed once, so decoding it recovers the full Result.
func runCell(client *http.Client, base, config, model string) (heteropim.Result, string) {
	body, err := json.Marshal(map[string]any{"config": config, "model": model})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("submit %s/%s: %v", config, model, err)
	}
	var job submitted
	err = json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	// 202 = newly accepted, 200 = deduplicated onto an existing job.
	if err != nil || (resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK) {
		log.Fatalf("submit %s/%s: status %d (%v)", config, model, resp.StatusCode, err)
	}

	resp, err = client.Get(base + "/v1/jobs/" + job.ID + "/result?wait=60s")
	if err != nil {
		log.Fatalf("result %s: %v", job.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("result %s: status %d", job.ID, resp.StatusCode)
	}
	var r heteropim.Result
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		log.Fatalf("result %s: %v", job.ID, err)
	}
	return r, job.ID
}

// startLocal brings up an in-process pimserve on a random loopback port
// and returns its base URL.
func startLocal() string {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	s := serve.New(serve.Options{})
	go func() {
		if err := http.Serve(ln, s.Handler()); err != nil {
			log.Print(err)
		}
	}()
	fmt.Println("(no -addr given: started an in-process pimserve)")
	return "http://" + ln.Addr().String()
}
