package heteropim

import (
	"math/rand"
	"strings"
	"testing"
)

func TestModelsAndConfigs(t *testing.T) {
	if len(Models()) != 5 {
		t.Fatalf("Models() = %d, want the 5 CNN workloads", len(Models()))
	}
	if len(AllModels()) != 7 {
		t.Fatalf("AllModels() = %d, want 7", len(AllModels()))
	}
	if len(Configs()) != 5 {
		t.Fatalf("Configs() = %d, want 5", len(Configs()))
	}
}

func TestRunPublicAPI(t *testing.T) {
	r, err := Run(ConfigHeteroPIM, AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	if r.StepTime <= 0 || r.Energy <= 0 || r.AvgPower <= 0 || r.EDP <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	sum := r.Breakdown.Operation + r.Breakdown.DataMovement + r.Breakdown.Sync
	if diff := sum - r.StepTime; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("breakdown sum %g != step %g", sum, r.StepTime)
	}
	if r.OffloadedOps == 0 {
		t.Fatal("hetero run offloaded nothing")
	}
	if _, err := Run(ConfigHeteroPIM, "NoSuchModel"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestRunScaledFaster(t *testing.T) {
	r1, err := RunScaled(ConfigHeteroPIM, AlexNet, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunScaled(ConfigHeteroPIM, AlexNet, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.StepTime >= r1.StepTime {
		t.Fatal("4x frequency must be faster")
	}
}

func TestRunVariantOrdering(t *testing.T) {
	base, err := RunVariant(AlexNet, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunVariant(AlexNet, Variant{RecursiveKernels: true, OperationPipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.StepTime >= base.StepTime {
		t.Fatal("RC+OP must beat the bare variant")
	}
	if full.FixedUtilization <= base.FixedUtilization {
		t.Fatal("RC+OP must raise utilization")
	}
}

func TestRunNeurocubeAndProcessors(t *testing.T) {
	nc, err := RunNeurocube(AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	het, err := Run(ConfigHeteroPIM, AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	if nc.StepTime <= het.StepTime {
		t.Fatal("Neurocube must be slower than Hetero PIM")
	}
	p16, err := RunHeteroProcessors(AlexNet, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p16.StepTime <= 0 {
		t.Fatal("16P run degenerate")
	}
	if _, err := RunHeteroProcessors(AlexNet, 0); err == nil {
		t.Fatal("zero processors must error")
	}
}

func TestExperimentListComplete(t *testing.T) {
	exps := Experiments()
	want := []string{"T1", "F2", "F8", "F9", "F10", "F11", "F12", "F13", "F14", "F15", "F16", "F17"}
	if len(exps) != len(want) {
		t.Fatalf("%d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, exps[i].ID, id)
		}
		if exps[i].Title == "" || exps[i].Run == nil {
			t.Errorf("experiment %s incomplete", id)
		}
	}
}

func TestTableIExperiment(t *testing.T) {
	tab, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	// The profiling table must surface the paper's headline ops.
	for _, want := range []string{"Conv2DBackpropFilter", "Conv2DBackpropInput", "BiasAddGrad", "VGG-19", "AlexNet", "DCGAN"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	// Three models x (5 top rows + 1 other row).
	if len(tab.Rows) != 18 {
		t.Errorf("Table I rows = %d, want 18", len(tab.Rows))
	}
	// Conv2DBackpropFilter leads VGG-19's CI list, as in the paper.
	if tab.Rows[0][2] != "Conv2DBackpropFilter" {
		t.Errorf("VGG-19 top CI op = %s, want Conv2DBackpropFilter", tab.Rows[0][2])
	}
}

func TestFig2Experiment(t *testing.T) {
	tab, err := Fig2Classes()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("Fig. 2 rows = %d", len(tab.Rows))
	}
}

func TestFastFigureExperiments(t *testing.T) {
	// The quick per-figure runners (the expensive 5x5 matrices run in
	// the benchmark harness).
	for _, run := range []func() (*Table, error){Fig10Neurocube, Fig12ProgScaling} {
		tab, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			t.Fatal("empty experiment table")
		}
	}
}

func TestFunctionalAPITrainsRealMath(t *testing.T) {
	// The public tensor API must support a full forward/backward/update
	// cycle whose loss decreases.
	rng := rand.New(rand.NewSource(7))
	spec := ConvSpec{StrideH: 1, StrideW: 1, SamePadding: true}
	w := Randn(rng, 0.3, 3, 3, 1, 4)
	dense := Randn(rng, 0.2, 4*4*4, 2)
	ws := NewAdamState(w)
	ds := NewAdamState(dense)
	cfg := DefaultAdam()
	cfg.LR = 1e-2
	var first, last float64
	for step := 0; step < 40; step++ {
		x := Randn(rng, 0.1, 6, 4, 4, 1)
		labels := make([]int, 6)
		for i := range labels {
			labels[i] = i % 2
			if labels[i] == 1 {
				for j := 0; j < 16; j++ {
					x.Data[i*16+j] += 1
				}
			}
		}
		c, err := Conv2D(x, w, spec)
		if err != nil {
			t.Fatal(err)
		}
		r := Relu(c)
		flat, err := TensorFromSlice(r.Data, 6, 4*4*4)
		if err != nil {
			t.Fatal(err)
		}
		logits, err := MatMul(flat, dense)
		if err != nil {
			t.Fatal(err)
		}
		loss, dl, err := CrossEntropyWithSoftmax(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		dDense, err := MatMulTransA(flat, dl)
		if err != nil {
			t.Fatal(err)
		}
		dFlat, err := MatMulTransB(dl, dense)
		if err != nil {
			t.Fatal(err)
		}
		dR, err := TensorFromSlice(dFlat.Data, 6, 4, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		dC, err := ReluGrad(c, dR)
		if err != nil {
			t.Fatal(err)
		}
		dW, err := Conv2DBackpropFilter(x, w.Shape, dC, spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := ApplyAdam(w, dW, ws, cfg); err != nil {
			t.Fatal(err)
		}
		if err := ApplyAdam(dense, dDense, ds, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %g -> %g", first, last)
	}
}

func TestMixedWorkloadsAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed workloads are slow; run without -short")
	}
	results, err := RunMixedWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("%d mixed cases, want 6", len(results))
	}
	for _, r := range results {
		if r.Improvement <= 0.3 {
			t.Errorf("%s: improvement %.0f%%, want substantial", r.Case.Name(), r.Improvement*100)
		}
	}
}

func TestModelSummaries(t *testing.T) {
	tab, err := ModelSummaries()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("summary rows = %d, want 7 models", len(tab.Rows))
	}
	// VGG-19's famous 138M parameters (ours ~143M with conv biases).
	if tab.Rows[0][3] != "143.7M" {
		t.Errorf("VGG-19 params = %s", tab.Rows[0][3])
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is slow; run without -short")
	}
	all := append(Experiments(), ExtensionExperiments()...)
	for _, e := range all {
		tab, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", e.ID)
		}
		if tab.Title == "" || len(tab.Columns) == 0 {
			t.Fatalf("%s: malformed table", e.ID)
		}
	}
}
