GO ?= go

.PHONY: verify lint vet build test race bench benchjson cachejson servejson clusterjson eventsjson multistackjson dsejson dsejson-large dsejson-xl fuzz golden golden-check clean

# verify is the default CI gate: static checks, a full build, the test
# suite, and the race-detector pass (the parallel experiment runner
# makes the race pass load-bearing, not optional).
verify: vet build test race

# lint is the fail-fast CI job: formatting drift and vet findings,
# no compilation of tests required.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the reproduction benchmarks at 1 and 4 logical CPUs so the
# parallel-sweep speedup metric is visible. benchtime must exceed 1x:
# at 1x the printed result is the b.N=1 discovery run, which executes
# before the per-variant GOMAXPROCS takes effect.
bench:
	$(GO) test -bench=. -benchtime=3x -cpu=1,4 -run='^$$' .

# benchjson regenerates BENCH_parallel.json (sequential vs parallel
# wall clock per experiment).
benchjson:
	$(GO) run ./cmd/pimbench -benchjson BENCH_parallel.json

# cachejson regenerates BENCH_cache.json (cold vs warm simulation-cache
# wall clock, Figs. 8-10 + the pimtrain -config all workload). The tool
# exits non-zero if any warm table differs from its cold run or the
# aggregate warm speedup is below the -cachemin floor.
cachejson:
	$(GO) run ./cmd/pimbench -cachejson BENCH_cache.json

# servejson regenerates BENCH_serve.json: the pimserve selfcheck
# replays the committed open-loop Poisson scenario (64 requests over 8
# cells) against an in-process server and fails on any error,
# non-byte-identical result, dedup ratio below 4x, or unclean drain.
servejson:
	$(GO) run ./cmd/pimserve -selfcheck -scenario testdata/scenarios/selfcheck_poisson.json -benchout BENCH_serve.json

# clusterjson regenerates BENCH_cluster.json: 3 pimserve replicas plus
# the consistent-hash router in-process, three client waves with one
# replica drained, killed and recovered mid-load. Fails on any client
# error, a non-byte-identical routed result, cluster dedup below the
# single-node baseline, or a kill path that never rehashed / retried /
# cross-adopted a result from a peer.
clusterjson:
	$(GO) run ./cmd/pimserve -clustercheck -coalesce 2ms -benchout BENCH_cluster.json

# eventsjson regenerates BENCH_events.json (closure vs typed event
# engine microbenchmark). The tool exits non-zero if the typed path
# allocates per event or its events/sec gain is below the 1.3x floor.
eventsjson:
	$(GO) run ./cmd/pimbench -eventsjson BENCH_events.json

# multistackjson regenerates BENCH_multistack.json (one engine vs 8
# per-stack shard engines over the same event volume, plus the M=1
# identity and M=2 worker-count determinism checks of the full
# pipeline). On hosts with >= 8 cores the tool exits non-zero below a
# 3x aggregate speedup; the identity/determinism gates apply everywhere.
multistackjson:
	$(GO) run ./cmd/pimbench -multistackjson BENCH_multistack.json

# dsejson is the quick optimized-vs-exhaustive DSE comparison on the
# 24-candidate paper grid. The tool exits non-zero if any winner
# diverges, under 30% of candidates are pruned, or the aggregate
# wall-clock speedup is below 1.5x.
dsejson:
	$(GO) run ./cmd/pimdse -dsejson BENCH_dse.json -grid paper

# dsejson-large regenerates the committed BENCH_dse.json on the
# 432-point interactive-DSE grid (surrogate ordering + delta replays +
# branch-and-bound vs plain exhaustive search). Gates: byte-identical
# winners for every model, >= 60% of candidates pruned, and >= 10x
# aggregate wall-clock speedup. Takes a couple of minutes — the
# exhaustive legs simulate all 2000+ (model, candidate) cells.
dsejson-large:
	$(GO) run ./cmd/pimdse -dsejson BENCH_dse.json -grid large

# dsejson-xl regenerates the committed BENCH_dse.json on the
# 2232-candidate xl grid (calibrated admissible bounds + deep delta
# checkpoints + confidence ordering vs the large-grid optimization
# level). Gates: >= 2000 candidates, >= 80% pruned, >= 2x aggregate
# speedup over the {prune, surrogate, delta} baseline, sub-second
# median per model per 100 candidates, and winners byte-identical to
# an exhaustive re-run over the winner-containing verification subset.
dsejson-xl:
	$(GO) run ./cmd/pimdse -dsejson BENCH_dse.json -grid xl

# fuzz runs the scenario front end's fuzz targets for a short budget:
# arbitrary bytes must parse-and-compile cleanly or error — never
# panic — and identical documents must always compile to identical
# plans. The committed corpus under internal/scenario/testdata/fuzz
# seeds both targets.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzParseScenario -fuzztime=20s ./internal/scenario
	$(GO) test -run='^$$' -fuzz=FuzzCompile -fuzztime=10s ./internal/scenario

# golden regenerates the committed golden outputs the regression CI job
# diffs against. Run it (and review the diff) whenever an intentional
# model/simulator change moves the numbers.
golden:
	$(GO) run ./cmd/pimtrain -model VGG-19 -config all > testdata/golden/pimtrain_all.txt
	$(GO) run ./cmd/pimtrain -model VGG-19 -config hetero -stacks 2 -allreduce ring > testdata/golden/pimtrain_multistack.txt
	$(GO) run ./cmd/pimprof > testdata/golden/pimprof.txt

# golden-check fails if current tool output drifts from the goldens.
golden-check:
	@mkdir -p /tmp/heteropim-golden
	$(GO) run ./cmd/pimtrain -model VGG-19 -config all > /tmp/heteropim-golden/pimtrain_all.txt
	$(GO) run ./cmd/pimtrain -model VGG-19 -config hetero -stacks 2 -allreduce ring > /tmp/heteropim-golden/pimtrain_multistack.txt
	$(GO) run ./cmd/pimprof > /tmp/heteropim-golden/pimprof.txt
	diff -u testdata/golden/pimtrain_all.txt /tmp/heteropim-golden/pimtrain_all.txt
	diff -u testdata/golden/pimtrain_multistack.txt /tmp/heteropim-golden/pimtrain_multistack.txt
	diff -u testdata/golden/pimprof.txt /tmp/heteropim-golden/pimprof.txt

clean:
	$(GO) clean ./...
