GO ?= go

.PHONY: verify vet build test race bench benchjson clean

# verify is the default CI gate: static checks, a full build, the test
# suite, and the race-detector pass (the parallel experiment runner
# makes the race pass load-bearing, not optional).
verify: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the reproduction benchmarks at 1 and 4 logical CPUs so the
# parallel-sweep speedup metric is visible. benchtime must exceed 1x:
# at 1x the printed result is the b.N=1 discovery run, which executes
# before the per-variant GOMAXPROCS takes effect.
bench:
	$(GO) test -bench=. -benchtime=3x -cpu=1,4 -run='^$$' .

# benchjson regenerates BENCH_parallel.json (sequential vs parallel
# wall clock per experiment).
benchjson:
	$(GO) run ./cmd/pimbench -benchjson BENCH_parallel.json

clean:
	$(GO) clean ./...
