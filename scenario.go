package heteropim

import (
	"fmt"

	"heteropim/internal/scenario"
)

// ScenarioSpec is the versioned declarative scenario document: cell
// sets (models x configurations x option axes), and optionally an
// arrival process for load generation. See internal/scenario for the
// schema and README "Scenarios" for examples.
type ScenarioSpec = scenario.Spec

// ScenarioCellSet is one cross product of models and option axes
// inside a ScenarioSpec.
type ScenarioCellSet = scenario.CellSet

// ScenarioVariant is one RC/OP runtime-technique combination on the
// variants axis of a cell set.
type ScenarioVariant = scenario.VariantAxis

// Arrival describes how a load generator fires a compiled plan's
// cells at a serving daemon: closed-loop N clients, or the open-loop
// poisson / diurnal / burst processes with a seeded, deterministic
// arrival schedule (Arrival.Schedule).
type Arrival = scenario.Arrival

// ScenarioVersion is the schema version CompileScenario accepts (the
// required "scenario" field of the document).
const ScenarioVersion = scenario.Version

// ScenarioPlan is a compiled scenario: the unique simulation cells in
// deterministic order (ready for BatchRun), the dedup accounting, and
// the validated arrival process.
type ScenarioPlan struct {
	Name string
	Seed int64
	// Cells are unique and ordered (first spec occurrence wins); they
	// run through BatchRun byte-identically to the equivalent
	// flag-driven invocations.
	Cells []BatchCell
	// Requested counts cells before dedup; Requested - len(Cells) of
	// them were duplicates.
	Requested  int
	Duplicates int
	Arrival    *Arrival
}

// CompileScenario parses and compiles a scenario document (strict
// JSON: unknown fields and version mismatches are errors) into an
// ordered BatchRun plan. Compilation is deterministic: the same bytes
// always yield the same plan.
func CompileScenario(data []byte) (*ScenarioPlan, error) {
	s, err := scenario.Parse(data)
	if err != nil {
		return nil, err
	}
	return CompileScenarioSpec(*s)
}

// CompileScenarioSpec compiles an in-memory spec (cf. CompileScenario).
func CompileScenarioSpec(s ScenarioSpec) (*ScenarioPlan, error) {
	p, err := scenario.Compile(&s)
	if err != nil {
		return nil, err
	}
	plan := &ScenarioPlan{
		Name:       p.Name,
		Seed:       p.Seed,
		Cells:      make([]BatchCell, len(p.Cells)),
		Requested:  p.Requested,
		Duplicates: p.Duplicates,
		Arrival:    p.Arrival,
	}
	for i, c := range p.Cells {
		bc := BatchCell{
			Config:    c.Config,
			Model:     c.Model,
			BatchSize: c.BatchSize,
			FreqScale: c.FreqScale,
		}
		if c.Stacks > 1 {
			bc.Stacks, bc.AllReduce = c.Stacks, c.AllReduce
		}
		if c.Variant != nil {
			bc.Variant = &Variant{
				RecursiveKernels:  c.Variant.RecursiveKernels,
				OperationPipeline: c.Variant.OperationPipeline,
			}
			bc.Config = 0
		}
		if c.Processors > 0 {
			bc.Processors = c.Processors
			bc.Config = 0
		}
		plan.Cells[i] = bc
	}
	return plan, nil
}

// SweepScenario returns the builtin scenario spec equivalent to one of
// pimsweep's flag-driven sweeps over the given models (nil means the
// paper's five CNN figure models). pimsweep itself compiles these
// specs, so `pimsweep -sweep config` and `pimsweep -scenario <this
// spec>` are byte-identical by construction. Kinds: config, freq,
// variant, batch, stacks.
func SweepScenario(kind string, models []Model) (ScenarioSpec, error) {
	if len(models) == 0 {
		models = Models()
	}
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = string(m)
	}
	spec := ScenarioSpec{Scenario: ScenarioVersion, Name: "sweep-" + kind}
	switch kind {
	case "config":
		spec.Cells = []ScenarioCellSet{{
			Models:  names,
			Configs: []string{"cpu", "gpu", "progr", "fixed", "hetero"},
		}}
	case "freq":
		spec.Cells = []ScenarioCellSet{{
			Models:     names,
			Configs:    []string{"hetero"},
			FreqScales: []float64{1, 2, 4},
		}}
	case "variant":
		spec.Cells = []ScenarioCellSet{{
			Models: names,
			Variants: []ScenarioVariant{
				{RecursiveKernels: false, OperationPipeline: false},
				{RecursiveKernels: false, OperationPipeline: true},
				{RecursiveKernels: true, OperationPipeline: false},
				{RecursiveKernels: true, OperationPipeline: true},
			},
		}}
	case "batch":
		spec.Cells = []ScenarioCellSet{{
			Models:     names,
			Configs:    []string{"gpu", "hetero"},
			BatchSizes: []int{8, 16, 32, 64, 128},
		}}
	case "stacks":
		spec.Cells = []ScenarioCellSet{{
			Models:    names,
			Configs:   []string{"hetero"},
			Stacks:    []int{1, 2, 4, 8},
			AllReduce: []string{"ring", "tree"},
		}}
	default:
		return ScenarioSpec{}, fmt.Errorf("heteropim: unknown sweep scenario %q (valid: config, freq, variant, batch, stacks)", kind)
	}
	return spec, nil
}
