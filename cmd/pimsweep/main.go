// Command pimsweep emits CSV parameter sweeps for plotting the paper's
// figures: the 5x5 configuration matrix (Figs. 8/9), the frequency
// sweep (Figs. 11/17), the RC/OP variant matrix (Figs. 13-15), and the
// batch-size extension sweep.
//
// Usage:
//
//	pimsweep -sweep config                  # model x configuration
//	pimsweep -sweep freq   -models VGG-19   # 1x/2x/4x
//	pimsweep -sweep variant                 # RC/OP toggles
//	pimsweep -sweep batch  -models AlexNet  # batch sizes
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"heteropim"
)

func main() {
	sweep := flag.String("sweep", "config", "config|freq|variant|batch")
	models := flag.String("models", "", "comma-separated models (default: the 5 CNNs)")
	flag.Parse()

	selected := heteropim.Models()
	if *models != "" {
		selected = nil
		for _, m := range strings.Split(*models, ",") {
			selected = append(selected, heteropim.Model(strings.TrimSpace(m)))
		}
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	var err error
	switch *sweep {
	case "config":
		err = sweepConfig(w, selected)
	case "freq":
		err = sweepFreq(w, selected)
	case "variant":
		err = sweepVariant(w, selected)
	case "batch":
		err = sweepBatch(w, selected)
	default:
		fmt.Fprintf(os.Stderr, "pimsweep: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimsweep: %v\n", err)
		os.Exit(1)
	}
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func writeResultRow(w *csv.Writer, prefix []string, r heteropim.Result) error {
	row := append(prefix,
		f(r.StepTime), f(r.Breakdown.Operation), f(r.Breakdown.DataMovement),
		f(r.Breakdown.Sync), f(r.Energy), f(r.AvgPower), f(r.EDP),
		f(r.FixedUtilization))
	return w.Write(row)
}

var resultCols = []string{"step_s", "operation_s", "datamove_s", "sync_s",
	"energy_j", "power_w", "edp_js", "fixed_util"}

func sweepConfig(w *csv.Writer, models []heteropim.Model) error {
	if err := w.Write(append([]string{"model", "config"}, resultCols...)); err != nil {
		return err
	}
	for _, m := range models {
		for _, cfg := range heteropim.Configs() {
			r, err := heteropim.Run(cfg, m)
			if err != nil {
				return err
			}
			if err := writeResultRow(w, []string{string(m), r.Config}, r); err != nil {
				return err
			}
		}
	}
	return nil
}

func sweepFreq(w *csv.Writer, models []heteropim.Model) error {
	if err := w.Write(append([]string{"model", "freq_scale"}, resultCols...)); err != nil {
		return err
	}
	for _, m := range models {
		for _, scale := range []float64{1, 2, 4} {
			r, err := heteropim.RunScaled(heteropim.ConfigHeteroPIM, m, scale)
			if err != nil {
				return err
			}
			if err := writeResultRow(w, []string{string(m), f(scale)}, r); err != nil {
				return err
			}
		}
	}
	return nil
}

func sweepVariant(w *csv.Writer, models []heteropim.Model) error {
	if err := w.Write(append([]string{"model", "rc", "op"}, resultCols...)); err != nil {
		return err
	}
	for _, m := range models {
		for _, rc := range []bool{false, true} {
			for _, op := range []bool{false, true} {
				r, err := heteropim.RunVariant(m, heteropim.Variant{
					RecursiveKernels: rc, OperationPipeline: op})
				if err != nil {
					return err
				}
				if err := writeResultRow(w, []string{string(m),
					strconv.FormatBool(rc), strconv.FormatBool(op)}, r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func sweepBatch(w *csv.Writer, models []heteropim.Model) error {
	if err := w.Write(append([]string{"model", "batch", "config"}, resultCols...)); err != nil {
		return err
	}
	for _, m := range models {
		for _, batch := range []int{8, 16, 32, 64, 128} {
			for _, cfg := range []heteropim.Config{heteropim.ConfigGPU, heteropim.ConfigHeteroPIM} {
				r, err := heteropim.RunWithBatch(cfg, m, batch)
				if err != nil {
					return err
				}
				if err := writeResultRow(w, []string{string(m),
					strconv.Itoa(batch), r.Config}, r); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
