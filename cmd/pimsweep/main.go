// Command pimsweep emits CSV parameter sweeps for plotting the paper's
// figures: the 5x5 configuration matrix (Figs. 8/9), the frequency
// sweep (Figs. 11/17), the RC/OP variant matrix (Figs. 13-15), and the
// batch-size extension sweep.
//
// Independent sweep cells run concurrently on the shared worker pool;
// rows are still emitted in sweep order, so the CSV is byte-identical
// to a sequential run.
//
// Usage:
//
//	pimsweep -sweep config                  # model x configuration
//	pimsweep -sweep freq   -models VGG-19   # 1x/2x/4x
//	pimsweep -sweep variant                 # RC/OP toggles
//	pimsweep -sweep batch  -models AlexNet  # batch sizes
//	pimsweep -sweep stacks -models VGG-19   # multi-stack ring/tree
//	pimsweep -sweep config -workers 1       # force sequential
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"heteropim"
	"heteropim/internal/cliutil"
)

func main() {
	sweep := flag.String("sweep", "config", "config|freq|variant|batch|stacks")
	models := flag.String("models", "", "comma-separated models (default: the 5 CNNs)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	applyCache := cliutil.CacheFlags(flag.CommandLine)
	startProfile := cliutil.ProfileFlags(flag.CommandLine)
	flag.Parse()

	heteropim.SetParallelism(*workers)
	applyCache()
	defer startProfile()()

	selected := heteropim.Models()
	if *models != "" {
		selected = nil
		for _, m := range strings.Split(*models, ",") {
			model, err := heteropim.ParseModel(strings.TrimSpace(m))
			if err != nil {
				fmt.Fprintf(os.Stderr, "pimsweep: %v\n", err)
				os.Exit(1)
			}
			selected = append(selected, model)
		}
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	var err error
	switch *sweep {
	case "config":
		err = sweepConfig(w, selected)
	case "freq":
		err = sweepFreq(w, selected)
	case "variant":
		err = sweepVariant(w, selected)
	case "batch":
		err = sweepBatch(w, selected)
	case "stacks":
		err = sweepStacks(w, selected)
	default:
		fmt.Fprintf(os.Stderr, "pimsweep: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimsweep: %v\n", err)
		os.Exit(1)
	}
	// Stats go to stderr: stdout is machine-readable CSV.
	st := heteropim.SimulationCacheStats()
	bs := heteropim.BatchRunStats()
	fmt.Fprintf(os.Stderr, "simcache: hits=%d misses=%d batch_cells=%d batch_groups=%d batch_leaders=%d\n",
		st.Hits, st.Misses, bs.Cells, bs.Groups, bs.Leaders)
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

var resultCols = []string{"step_s", "operation_s", "datamove_s", "sync_s",
	"energy_j", "power_w", "edp_js", "fixed_util"}

// cell is one sweep point: the CSV prefix columns plus the batched
// simulation that produces the row's results.
type cell struct {
	prefix []string
	sim    heteropim.BatchCell
}

// writeCells evaluates the cells through the grouped batch engine
// (template/profile warm-up per group, then parallel fan-out) and
// writes one CSV row per cell, in cell order.
func writeCells(w *csv.Writer, header []string, cells []cell) error {
	if err := w.Write(append(header, resultCols...)); err != nil {
		return err
	}
	sims := make([]heteropim.BatchCell, len(cells))
	for i, c := range cells {
		sims[i] = c.sim
	}
	results, err := heteropim.BatchRun(sims)
	if err != nil {
		return err
	}
	for i, r := range results {
		row := append(cells[i].prefix,
			f(r.StepTime), f(r.Breakdown.Operation), f(r.Breakdown.DataMovement),
			f(r.Breakdown.Sync), f(r.Energy), f(r.AvgPower), f(r.EDP),
			f(r.FixedUtilization))
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

func sweepConfig(w *csv.Writer, models []heteropim.Model) error {
	var cells []cell
	for _, m := range models {
		for _, cfg := range heteropim.Configs() {
			cells = append(cells, cell{
				prefix: []string{string(m), cfg.String()},
				sim:    heteropim.BatchCell{Config: cfg, Model: m},
			})
		}
	}
	return writeCells(w, []string{"model", "config"}, cells)
}

func sweepFreq(w *csv.Writer, models []heteropim.Model) error {
	var cells []cell
	for _, m := range models {
		for _, scale := range []float64{1, 2, 4} {
			cells = append(cells, cell{
				prefix: []string{string(m), f(scale)},
				sim:    heteropim.BatchCell{Config: heteropim.ConfigHeteroPIM, Model: m, FreqScale: scale},
			})
		}
	}
	return writeCells(w, []string{"model", "freq_scale"}, cells)
}

func sweepVariant(w *csv.Writer, models []heteropim.Model) error {
	var cells []cell
	for _, m := range models {
		for _, rc := range []bool{false, true} {
			for _, op := range []bool{false, true} {
				v := &heteropim.Variant{RecursiveKernels: rc, OperationPipeline: op}
				cells = append(cells, cell{
					prefix: []string{string(m), strconv.FormatBool(rc), strconv.FormatBool(op)},
					sim:    heteropim.BatchCell{Model: m, Variant: v},
				})
			}
		}
	}
	return writeCells(w, []string{"model", "rc", "op"}, cells)
}

// sweepStacks shards each model's global batch across 1/2/4/8 HMC
// stacks on the Hetero PIM platform under both all-reduce schedules.
// The extra columns split the step into the slowest stack's compute and
// the gradient synchronization over the inter-stack link.
func sweepStacks(w *csv.Writer, models []heteropim.Model) error {
	header := append([]string{"model", "stacks", "allreduce"}, resultCols...)
	header = append(header, "stack_step_s", "allreduce_s")
	if err := w.Write(header); err != nil {
		return err
	}
	type row struct{ prefix []string }
	var prefixes []row
	var sims []heteropim.BatchCell
	for _, m := range models {
		for _, stacks := range []int{1, 2, 4, 8} {
			scheds := []string{heteropim.AllReduceRing, heteropim.AllReduceTree}
			if stacks == 1 {
				scheds = []string{"-"} // no gradient exchange on one stack
			}
			for _, sched := range scheds {
				c := heteropim.BatchCell{Config: heteropim.ConfigHeteroPIM, Model: m, Stacks: stacks}
				if stacks > 1 {
					c.AllReduce = sched
				}
				prefixes = append(prefixes, row{[]string{string(m), strconv.Itoa(stacks), sched}})
				sims = append(sims, c)
			}
		}
	}
	results, err := heteropim.BatchRun(sims)
	if err != nil {
		return err
	}
	for i, r := range results {
		row := append(prefixes[i].prefix,
			f(r.StepTime), f(r.Breakdown.Operation), f(r.Breakdown.DataMovement),
			f(r.Breakdown.Sync), f(r.Energy), f(r.AvgPower), f(r.EDP),
			f(r.FixedUtilization), f(r.StackStepTime), f(r.AllReduceTime))
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

func sweepBatch(w *csv.Writer, models []heteropim.Model) error {
	var cells []cell
	for _, m := range models {
		for _, batch := range []int{8, 16, 32, 64, 128} {
			for _, cfg := range []heteropim.Config{heteropim.ConfigGPU, heteropim.ConfigHeteroPIM} {
				cells = append(cells, cell{
					prefix: []string{string(m), strconv.Itoa(batch), cfg.String()},
					sim:    heteropim.BatchCell{Config: cfg, Model: m, BatchSize: batch},
				})
			}
		}
	}
	return writeCells(w, []string{"model", "batch", "config"}, cells)
}
