// Command pimsweep emits CSV parameter sweeps for plotting the paper's
// figures: the 5x5 configuration matrix (Figs. 8/9), the frequency
// sweep (Figs. 11/17), the RC/OP variant matrix (Figs. 13-15), the
// batch-size extension sweep, and the multi-stack sweep.
//
// Every sweep is a scenario: -sweep compiles the builtin spec of that
// name (heteropim.SweepScenario) and -scenario compiles a scenario
// file; both run through the same compiled-plan renderer, so a file
// spelling out the same grid is byte-identical to the flag form.
//
// Independent sweep cells run concurrently on the shared worker pool;
// rows are still emitted in sweep order, so the CSV is byte-identical
// to a sequential run.
//
// Usage:
//
//	pimsweep -sweep config                  # model x configuration
//	pimsweep -sweep freq   -models VGG-19   # 1x/2x/4x
//	pimsweep -sweep variant                 # RC/OP toggles
//	pimsweep -sweep batch  -models AlexNet  # batch sizes
//	pimsweep -sweep stacks -models VGG-19   # multi-stack ring/tree
//	pimsweep -scenario grid.json            # declarative scenario file
//	pimsweep -sweep config -workers 1       # force sequential
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strings"

	"heteropim"
	"heteropim/internal/cliutil"
)

func main() {
	sweep := flag.String("sweep", "config", "builtin sweep scenario: config|freq|variant|batch|stacks")
	models := flag.String("models", "", "comma-separated models for -sweep (default: the 5 CNNs)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	loadScenario := cliutil.ScenarioFlag(flag.CommandLine)
	applyCache := cliutil.CacheFlags(flag.CommandLine)
	startProfile := cliutil.ProfileFlags(flag.CommandLine)
	flag.Parse()

	heteropim.SetParallelism(*workers)
	applyCache()
	defer startProfile()()

	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "pimsweep: %v\n", err)
		os.Exit(1)
	}

	plan, err := loadScenario()
	if err != nil {
		fatal(err)
	}
	if plan == nil {
		var selected []heteropim.Model
		if *models != "" {
			for _, m := range strings.Split(*models, ",") {
				model, err := heteropim.ParseModel(strings.TrimSpace(m))
				if err != nil {
					fatal(err)
				}
				selected = append(selected, model)
			}
		}
		spec, err := heteropim.SweepScenario(*sweep, selected)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimsweep: unknown sweep %q\n", *sweep)
			os.Exit(2)
		}
		if plan, err = heteropim.CompileScenarioSpec(spec); err != nil {
			fatal(err)
		}
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if err := cliutil.WriteScenarioCSV(w, plan); err != nil {
		fatal(err)
	}
	// Stats go to stderr: stdout is machine-readable CSV.
	st := heteropim.SimulationCacheStats()
	bs := heteropim.BatchRunStats()
	fmt.Fprintf(os.Stderr, "simcache: hits=%d misses=%d batch_cells=%d batch_groups=%d batch_leaders=%d\n",
		st.Hits, st.Misses, bs.Cells, bs.Groups, bs.Leaders)
}
