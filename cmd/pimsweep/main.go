// Command pimsweep emits CSV parameter sweeps for plotting the paper's
// figures: the 5x5 configuration matrix (Figs. 8/9), the frequency
// sweep (Figs. 11/17), the RC/OP variant matrix (Figs. 13-15), and the
// batch-size extension sweep.
//
// Independent sweep cells run concurrently on the shared worker pool;
// rows are still emitted in sweep order, so the CSV is byte-identical
// to a sequential run.
//
// Usage:
//
//	pimsweep -sweep config                  # model x configuration
//	pimsweep -sweep freq   -models VGG-19   # 1x/2x/4x
//	pimsweep -sweep variant                 # RC/OP toggles
//	pimsweep -sweep batch  -models AlexNet  # batch sizes
//	pimsweep -sweep config -workers 1       # force sequential
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"heteropim"
	"heteropim/internal/cliutil"
	"heteropim/internal/runner"
)

func main() {
	sweep := flag.String("sweep", "config", "config|freq|variant|batch")
	models := flag.String("models", "", "comma-separated models (default: the 5 CNNs)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	applyCache := cliutil.CacheFlags(flag.CommandLine)
	flag.Parse()

	heteropim.SetParallelism(*workers)
	applyCache()

	selected := heteropim.Models()
	if *models != "" {
		selected = nil
		for _, m := range strings.Split(*models, ",") {
			model, err := heteropim.ParseModel(strings.TrimSpace(m))
			if err != nil {
				fmt.Fprintf(os.Stderr, "pimsweep: %v\n", err)
				os.Exit(1)
			}
			selected = append(selected, model)
		}
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	var err error
	switch *sweep {
	case "config":
		err = sweepConfig(w, selected)
	case "freq":
		err = sweepFreq(w, selected)
	case "variant":
		err = sweepVariant(w, selected)
	case "batch":
		err = sweepBatch(w, selected)
	default:
		fmt.Fprintf(os.Stderr, "pimsweep: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimsweep: %v\n", err)
		os.Exit(1)
	}
	// Stats go to stderr: stdout is machine-readable CSV.
	st := heteropim.SimulationCacheStats()
	fmt.Fprintf(os.Stderr, "simcache: hits=%d misses=%d\n", st.Hits, st.Misses)
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

var resultCols = []string{"step_s", "operation_s", "datamove_s", "sync_s",
	"energy_j", "power_w", "edp_js", "fixed_util"}

// cell is one sweep point: the CSV prefix columns plus the simulation
// that produces the row's results.
type cell struct {
	prefix []string
	run    func() (heteropim.Result, error)
}

// writeCells fans the cells out on the worker pool and writes one CSV
// row per cell, in cell order.
func writeCells(w *csv.Writer, header []string, cells []cell) error {
	if err := w.Write(append(header, resultCols...)); err != nil {
		return err
	}
	results, err := runner.Map(context.Background(), len(cells), 0,
		func(_ context.Context, i int) (heteropim.Result, error) { return cells[i].run() })
	if err != nil {
		return err
	}
	for i, r := range results {
		row := append(cells[i].prefix,
			f(r.StepTime), f(r.Breakdown.Operation), f(r.Breakdown.DataMovement),
			f(r.Breakdown.Sync), f(r.Energy), f(r.AvgPower), f(r.EDP),
			f(r.FixedUtilization))
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

func sweepConfig(w *csv.Writer, models []heteropim.Model) error {
	var cells []cell
	for _, m := range models {
		for _, cfg := range heteropim.Configs() {
			m, cfg := m, cfg
			cells = append(cells, cell{
				prefix: []string{string(m), cfg.String()},
				run:    func() (heteropim.Result, error) { return heteropim.Run(cfg, m) },
			})
		}
	}
	return writeCells(w, []string{"model", "config"}, cells)
}

func sweepFreq(w *csv.Writer, models []heteropim.Model) error {
	var cells []cell
	for _, m := range models {
		for _, scale := range []float64{1, 2, 4} {
			m, scale := m, scale
			cells = append(cells, cell{
				prefix: []string{string(m), f(scale)},
				run: func() (heteropim.Result, error) {
					return heteropim.RunScaled(heteropim.ConfigHeteroPIM, m, scale)
				},
			})
		}
	}
	return writeCells(w, []string{"model", "freq_scale"}, cells)
}

func sweepVariant(w *csv.Writer, models []heteropim.Model) error {
	var cells []cell
	for _, m := range models {
		for _, rc := range []bool{false, true} {
			for _, op := range []bool{false, true} {
				m, rc, op := m, rc, op
				cells = append(cells, cell{
					prefix: []string{string(m), strconv.FormatBool(rc), strconv.FormatBool(op)},
					run: func() (heteropim.Result, error) {
						return heteropim.RunVariant(m, heteropim.Variant{
							RecursiveKernels: rc, OperationPipeline: op})
					},
				})
			}
		}
	}
	return writeCells(w, []string{"model", "rc", "op"}, cells)
}

func sweepBatch(w *csv.Writer, models []heteropim.Model) error {
	var cells []cell
	for _, m := range models {
		for _, batch := range []int{8, 16, 32, 64, 128} {
			for _, cfg := range []heteropim.Config{heteropim.ConfigGPU, heteropim.ConfigHeteroPIM} {
				m, batch, cfg := m, batch, cfg
				cells = append(cells, cell{
					prefix: []string{string(m), strconv.Itoa(batch), cfg.String()},
					run: func() (heteropim.Result, error) {
						return heteropim.RunWithBatch(cfg, m, batch)
					},
				})
			}
		}
	}
	return writeCells(w, []string{"model", "batch", "config"}, cells)
}
