package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"heteropim"
	"heteropim/internal/serve"
)

// runSelfcheck is the acceptance harness for the serving layer: start
// a real daemon on an ephemeral port, drive the scenario's load at it
// (nil plan: the embedded default — 8 mixed cells, closed loop), verify
// zero errors / byte-identity / the dedup gate, then exercise the real
// SIGTERM drain path and write BENCH_serve.json.
func runSelfcheck(plan *heteropim.ScenarioPlan, clients int, dedupMin float64, benchOut string, workers, queue int, timeout time.Duration) error {
	if plan == nil {
		p, err := serve.DefaultSelfcheckPlan()
		if err != nil {
			return err
		}
		plan = p
	}
	srv := serve.New(serve.Options{Workers: workers, QueueCapacity: queue, JobTimeout: timeout})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	baseURL := "http://" + ln.Addr().String()
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "pimserve: selfcheck against %s (scenario %q, %d cells)\n",
		baseURL, plan.Name, len(plan.Cells))

	// Arm the real signal path before the load so the drain below goes
	// through the same SIGTERM plumbing a supervisor would use.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	rep, err := serve.ScenarioLoadGen(baseURL, plan, clients, srv)
	if err != nil {
		return err
	}

	// Graceful drain via a genuine SIGTERM to ourselves.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-ctx.Done():
	case <-time.After(10 * time.Second):
		return fmt.Errorf("selfcheck: SIGTERM never arrived")
	}
	dctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	drainErr := srv.Drain(dctx)
	shutdownErr := hs.Shutdown(dctx)
	rep.DrainClean = drainErr == nil && shutdownErr == nil

	f, err := os.Create(benchOut)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"pimserve: selfcheck: requests=%d errors=%d live_runs=%d dedup=%.1fx p50=%.1fms p99=%.1fms identical=%t drain=%t -> %s\n",
		rep.Requests, rep.Errors, rep.LiveRuns, rep.DedupRatio,
		rep.LatencyP50Ms, rep.LatencyP99Ms, rep.ByteIdentical, rep.DrainClean, benchOut)

	switch {
	case rep.Errors > 0:
		return fmt.Errorf("selfcheck: %d client errors", rep.Errors)
	case !rep.ByteIdentical:
		return fmt.Errorf("selfcheck: served results not byte-identical to direct runs")
	case rep.DedupRatio < dedupMin:
		return fmt.Errorf("selfcheck: dedup ratio %.2fx below the %.1fx floor", rep.DedupRatio, dedupMin)
	case drainErr != nil:
		return fmt.Errorf("selfcheck: drain: %w", drainErr)
	case shutdownErr != nil:
		return fmt.Errorf("selfcheck: shutdown: %w", shutdownErr)
	}
	return nil
}
