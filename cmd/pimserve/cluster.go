package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"heteropim"
	"heteropim/internal/cluster"
	"heteropim/internal/serve"
)

// runRouter runs pimserve as the fleet front door: consistent-hash
// routing of content-addressed job ids over the -backends replicas,
// with health-driven rehashing and in-flight retry. SIGTERM stops the
// health loop and exits 0 once in-flight proxied requests finish.
func runRouter(addr, addrFile, backends string, healthEvery, drainWait time.Duration) {
	var members []cluster.Replica
	for i, raw := range strings.Split(backends, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			fail(fmt.Errorf("-backends entry %q is not a base URL", raw))
		}
		members = append(members, cluster.Replica{
			Name:    fmt.Sprintf("replica-%d", i),
			BaseURL: strings.TrimRight(raw, "/"),
		})
	}
	// An empty fleet is fine now that replicas self-register: the router
	// serves 503 on /readyz until the first POST /v1/replicas arrives.
	if len(members) == 0 {
		fmt.Fprintln(os.Stderr, "pimserve: router starting with no backends; waiting for replica announcements")
	}

	rt := cluster.NewRouter(cluster.RouterOptions{Replicas: members, HealthInterval: healthEvery})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail(err)
	}
	baseURL := "http://" + ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(baseURL+"\n"), 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "pimserve: routing %d replicas on %s\n", len(members), baseURL)

	hs := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintln(os.Stderr, "pimserve: router draining (finishing in-flight proxied requests)")
	rt.Close()
	dctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "pimserve: router shutdown: %v\n", err)
		os.Exit(1)
	}
	reg := rt.Registry()
	fmt.Fprintf(os.Stderr, "pimserve: router drained clean: requests=%.0f rehashes=%.0f retries=%.0f reroutes=%.0f\n",
		reg.CounterValue("cluster.requests"), reg.CounterValue("cluster.rehashes"),
		reg.CounterValue("cluster.retries"), reg.CounterValue("cluster.reroutes"))
}

// announceSelf registers this replica with a router, retrying briefly
// (startup races the router's listener), then warn-only: a replica
// that cannot announce still serves — the router just won't route to
// it until someone registers it.
func announceSelf(routerURL, name, baseURL string) {
	name = replicaName(name, baseURL)
	client := &http.Client{Timeout: 5 * time.Second}
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		if err = cluster.Announce(client, strings.TrimRight(routerURL, "/"),
			cluster.Replica{Name: name, BaseURL: baseURL}); err == nil {
			fmt.Fprintf(os.Stderr, "pimserve: announced %s (%s) to %s\n", name, baseURL, routerURL)
			return
		}
		time.Sleep(300 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "pimserve: announce to %s failed (serving anyway): %v\n", routerURL, err)
}

// replicaName applies the -name default: the listen address.
func replicaName(name, baseURL string) string {
	if name == "" {
		return strings.TrimPrefix(strings.TrimPrefix(baseURL, "http://"), "https://")
	}
	return name
}

// departSelf announces a graceful drain to the router — DELETE
// /v1/replicas/{name} — so the shard range rehashes before the drain
// window starts rejecting submissions. Warn-only: an unreachable router
// discovers the drain through its readiness probe instead.
func departSelf(routerURL, name, baseURL string) {
	name = replicaName(name, baseURL)
	if err := cluster.Depart(nil, strings.TrimRight(routerURL, "/"), name); err != nil {
		fmt.Fprintf(os.Stderr, "pimserve: depart from %s failed (draining anyway): %v\n", routerURL, err)
		return
	}
	fmt.Fprintf(os.Stderr, "pimserve: departed %s from %s\n", name, routerURL)
}

// clustercheckInputs converts a compiled scenario into the cluster
// check's cell mix and arrival process. The check's ground truth and
// routing keys are plain (config, model) jobs, so cells carrying the
// batch API's extra axes (batch size, frequency, variants, processor
// counts, sharding) are rejected rather than silently flattened.
func clustercheckInputs(plan *heteropim.ScenarioPlan) ([]serve.LoadCell, *heteropim.Arrival, int64, error) {
	cells := make([]serve.LoadCell, len(plan.Cells))
	for i, bc := range plan.Cells {
		if bc.BatchSize > 0 || (bc.FreqScale != 0 && bc.FreqScale != 1) ||
			bc.Variant != nil || bc.Processors > 0 || bc.Stacks > 1 {
			return nil, nil, 0, fmt.Errorf("scenario cell %d carries batch-API axes; "+
				"-clustercheck scenarios take plain (config, model) cells", i)
		}
		cells[i] = serve.LoadCell{Config: heteropim.ConfigName(bc.Config), Model: string(bc.Model)}
	}
	return cells, plan.Arrival, plan.Seed, nil
}

// runClustercheck is the fleet's acceptance harness: replicas + router
// in-process, three client waves with a kill-and-recover of one
// replica mid-load, gates on zero errors / byte-identity / cluster
// dedup >= single-node dedup, and writes BENCH_cluster.json. A non-nil
// plan supplies the cell mix and arrival process from a scenario file.
func runClustercheck(plan *heteropim.ScenarioPlan, nodes, clients int, window time.Duration, benchOut string, workers, queue int, timeout time.Duration) error {
	opts := cluster.CheckOptions{
		Replicas:   nodes,
		Clients:    clients,
		Window:     window,
		Workers:    workers,
		Queue:      queue,
		JobTimeout: timeout,
	}
	if plan != nil {
		cells, arr, seed, err := clustercheckInputs(plan)
		if err != nil {
			return err
		}
		opts.Cells, opts.Arrival, opts.Seed = cells, arr, seed
		fmt.Fprintf(os.Stderr, "pimserve: clustercheck scenario %q: %d cells\n", plan.Name, len(cells))
	}
	rep, checkErr := cluster.RunCheck(opts)

	f, err := os.Create(benchOut)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"pimserve: clustercheck: replicas=%d errors=%d identical=%t dedup=%.1fx (single %.1fx) peer_hits=%d rehashes=%.0f retries=%.0f recovered=%t -> %s\n",
		rep.Replicas, rep.Errors, rep.ByteIdentical, rep.Cluster.Dedup, rep.Single.Dedup,
		rep.Cluster.PeerHits, rep.Rehashes, rep.Retries, rep.Recovered, benchOut)
	return checkErr
}
