// Command pimserve is the simulation-as-a-service daemon: an HTTP JSON
// API over the heteropim simulator with admission control, request
// dedup, live Prometheus metrics and graceful drain — and, in router
// mode, the front door of a replica fleet: consistent-hash routing of
// content-addressed job ids, health-driven rehashing of a draining
// replica's shard range, and retry of in-flight submissions.
//
// Usage:
//
//	pimserve                                  # serve on 127.0.0.1:8080
//	pimserve -addr 127.0.0.1:0 -addrfile /tmp/addr   # ephemeral port for scripts
//	pimserve -coalesce 2ms                    # batch near-simultaneous cells through BatchRun
//	pimserve -router -backends URL1,URL2,URL3 # route jobs across a replica fleet
//	pimserve -router                          # empty router; replicas self-register
//	pimserve -announce http://router:8080     # replica: POST itself to the router's /v1/replicas
//	pimserve -selfcheck                       # built-in load generator, writes BENCH_serve.json
//	pimserve -selfcheck -scenario f.json      # load generator driven by a scenario file (open-loop arrivals)
//	pimserve -clustercheck                    # 3 replicas + router + kill-and-recover, writes BENCH_cluster.json
//	pimserve -print hetero,VGG-19             # canonical result JSON of one direct run
//
// Endpoints:
//
//	POST /v1/jobs                submit {"config","model","freq_scale","variant","batch_size","stacks","allreduce","processors","instrument"}
//	POST /v1/scenarios           compile a scenario document, admit one job per unique cell
//	GET  /v1/jobs/{id}           poll the job status document
//	GET  /v1/jobs/{id}/result    long-poll the canonical result bytes
//	GET  /v1/jobs/{id}/events    SSE lifecycle + progress stream
//	POST /v1/replicas            (router) replica self-registration
//	GET  /v1/replicas            (router) list the fleet with readiness
//	GET  /metrics                Prometheus text exposition
//	GET  /healthz, /readyz       liveness / readiness (503 while draining)
//	GET  /                       text status page
//
// SIGTERM/SIGINT drain gracefully: stop admitting, finish in-flight
// jobs, then exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"heteropim"
	"heteropim/internal/cliutil"
	"heteropim/internal/serve"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pimserve: %v\n", err)
	os.Exit(1)
}

// printDirect writes the canonical result JSON of one direct run —
// the bytes the daemon serves for the same cell, so scripts can diff
// served output against ground truth.
func printDirect(cell string) {
	parts := strings.SplitN(cell, ",", 2)
	if len(parts) != 2 {
		fail(fmt.Errorf("-print wants \"config,model\", got %q", cell))
	}
	cfg, err := heteropim.ParseConfig(strings.TrimSpace(parts[0]))
	if err != nil {
		fail(err)
	}
	model, err := heteropim.ParseModel(strings.TrimSpace(parts[1]))
	if err != nil {
		fail(err)
	}
	r, err := heteropim.Run(cfg, model)
	if err != nil {
		fail(err)
	}
	os.Stdout.Write(serve.EncodeResult(r))
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addrfile", "", "write the resolved base URL to this file once listening (for scripts)")
	workers := flag.Int("workers", 0, "simulation pool width (0 = GOMAXPROCS-derived)")
	queue := flag.Int("queue", 64, "admission queue capacity (full queue sheds load with 429)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-job queue-wait timeout")
	drainWait := flag.Duration("drainwait", 60*time.Second, "how long SIGTERM waits for in-flight jobs")
	coalesce := flag.Duration("coalesce", 0, "admission-coalescing window (0 disables; batches near-simultaneous cells through BatchRun)")
	router := flag.Bool("router", false, "run as the cluster router instead of a replica")
	backends := flag.String("backends", "", "router: comma-separated replica base URLs (optional; replicas can self-register)")
	announce := flag.String("announce", "", "replica: self-register with this router's /v1/replicas on startup")
	name := flag.String("name", "", "replica: fleet name used with -announce (default: the listen address)")
	healthEvery := flag.Duration("healthevery", 500*time.Millisecond, "router: replica readiness-probe period")
	selfcheck := flag.Bool("selfcheck", false, "run the built-in load generator against an in-process server and exit")
	clustercheck := flag.Bool("clustercheck", false, "run the in-process cluster load test (replicas + router, kill-and-recover) and exit")
	nodes := flag.Int("nodes", 3, "clustercheck: replica count")
	clients := flag.Int("clients", 64, "selfcheck/clustercheck: concurrent clients")
	dedupMin := flag.Float64("dedupmin", 4, "selfcheck: minimum accepted dedup ratio")
	benchOut := flag.String("benchout", "", "benchmark JSON output path (default BENCH_serve.json or BENCH_cluster.json per mode)")
	printCell := flag.String("print", "", "print the canonical result JSON of one direct run (\"config,model\") and exit")
	loadScenario := cliutil.ScenarioFlag(flag.CommandLine)
	applyCache := cliutil.CacheFlags(flag.CommandLine)
	startProfile := cliutil.ProfileFlags(flag.CommandLine)
	flag.Parse()
	applyCache()
	defer startProfile()()

	if *printCell != "" {
		printDirect(*printCell)
		return
	}
	// -scenario swaps the selfcheck's embedded load document for a file:
	// its cell mix and arrival process (closed-loop clients, open-loop
	// Poisson/diurnal/burst offsets) drive the generator.
	plan, err := loadScenario()
	if err != nil {
		fail(err)
	}
	if plan != nil && !*selfcheck && !*clustercheck {
		fail(fmt.Errorf("-scenario drives the load generators; combine it with -selfcheck or " +
			"-clustercheck (daemons accept scenario documents on POST /v1/scenarios)"))
	}
	if *selfcheck {
		out := *benchOut
		if out == "" {
			out = "BENCH_serve.json"
		}
		if err := runSelfcheck(plan, *clients, *dedupMin, out, *workers, *queue, *timeout); err != nil {
			fail(err)
		}
		return
	}
	if *clustercheck {
		out := *benchOut
		if out == "" {
			out = "BENCH_cluster.json"
		}
		if err := runClustercheck(plan, *nodes, *clients, *coalesce, out, *workers, *queue, *timeout); err != nil {
			fail(err)
		}
		return
	}
	if *router {
		runRouter(*addr, *addrFile, *backends, *healthEvery, *drainWait)
		return
	}

	srv := serve.New(serve.Options{Workers: *workers, QueueCapacity: *queue, JobTimeout: *timeout, CoalesceWindow: *coalesce})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	baseURL := "http://" + ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(baseURL+"\n"), 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "pimserve: listening on %s\n", baseURL)
	if *announce != "" {
		go announceSelf(*announce, *name, baseURL)
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of re-draining

	fmt.Fprintln(os.Stderr, "pimserve: draining (no new jobs; finishing in-flight)")
	if *announce != "" {
		// Tell the router we are leaving before serving out the drain, so
		// our shard range rehashes now instead of at the next failed probe.
		departSelf(*announce, *name, baseURL)
	}
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "pimserve: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "pimserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr, "pimserve: drained clean: requests=%d dedup_hits=%d live_runs=%d rejected=%d\n",
		st.Requests, st.DedupHits, st.JobsRun, st.Rejected)
}
