// Command pimprof reproduces the paper's profiling outputs: Table I
// (top-5 compute-intensive and memory-intensive operations per model),
// the Fig. 2 operation taxonomy, and — optionally — the Pin-substitute
// instruction trace as JSON lines.
//
// Usage:
//
//	pimprof                      # Table I + Fig. 2
//	pimprof -trace VGG-19        # dump the instruction trace to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"heteropim"
	"heteropim/internal/nn"
	"heteropim/internal/trace"
)

func main() {
	traceModel := flag.String("trace", "", "dump the instruction trace of this model as JSON lines")
	dotModel := flag.String("dot", "", "dump this model's step DAG in Graphviz DOT format")
	flag.Parse()

	if *dotModel != "" {
		g, err := nn.Build(nn.ModelName(*dotModel))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimprof: %v\n", err)
			os.Exit(1)
		}
		if err := g.WriteDOT(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pimprof: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *traceModel != "" {
		g, err := nn.Build(nn.ModelName(*traceModel))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimprof: %v\n", err)
			os.Exit(1)
		}
		if err := trace.Write(os.Stdout, trace.Generate(g, 0)); err != nil {
			fmt.Fprintf(os.Stderr, "pimprof: %v\n", err)
			os.Exit(1)
		}
		return
	}

	for _, run := range []func() (*heteropim.Table, error){heteropim.ModelSummaries, heteropim.TableI, heteropim.Fig2Classes} {
		t, err := run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.String())
	}
}
