// Command pimprof reproduces the paper's profiling outputs: Table I
// (top-5 compute-intensive and memory-intensive operations per model),
// the Fig. 2 operation taxonomy, and — optionally — the Pin-substitute
// instruction trace as JSON lines or an instrumented-run timeline in
// Chrome trace-event JSON (loadable in Perfetto).
//
// Usage:
//
//	pimprof                                  # Table I + Fig. 2
//	pimprof -trace VGG-19                    # dump the instruction trace to stdout
//	pimprof -timeline VGG-19 -config hetero  # Chrome trace JSON to stdout
//	pimprof -timeline VGG-19 -o vgg.trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"heteropim"
	"heteropim/internal/cliutil"
	"heteropim/internal/nn"
	"heteropim/internal/trace"
)

// fail prints the error and exits — the single exit path for every
// pimprof error.
func fail(err error) {
	fmt.Fprintf(os.Stderr, "pimprof: %v\n", err)
	os.Exit(1)
}

// buildModel resolves a model name through the public parser (whose
// unknown-name error lists the valid models) and builds its graph.
func buildModel(name string) *nn.Graph {
	model, err := heteropim.ParseModel(name)
	if err != nil {
		fail(err)
	}
	g, err := nn.Build(model)
	if err != nil {
		fail(err)
	}
	return g
}

// output opens the -o target, defaulting to stdout.
func output(path string) io.WriteCloser {
	if path == "" {
		return os.Stdout
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	return f
}

func main() {
	traceModel := flag.String("trace", "", "dump the instruction trace of this model as JSON lines")
	dotModel := flag.String("dot", "", "dump this model's step DAG in Graphviz DOT format")
	timelineModel := flag.String("timeline", "", "run this model instrumented and dump the Chrome trace-event timeline")
	config := flag.String("config", "hetero", "platform for -timeline: cpu|gpu|progr|fixed|hetero")
	out := flag.String("o", "", "write -timeline output to this file instead of stdout")
	loadScenario := cliutil.ScenarioFlag(flag.CommandLine)
	applyCache := cliutil.CacheFlags(flag.CommandLine)
	startProfile := cliutil.ProfileFlags(flag.CommandLine)
	flag.Parse()

	applyCache()
	defer startProfile()()

	// -scenario profiles the scenario's models (distinct, in plan
	// order) through the same three tables the default mode prints.
	if plan, err := loadScenario(); err != nil {
		fail(err)
	} else if plan != nil {
		var models []heteropim.Model
		seen := map[heteropim.Model]bool{}
		for _, c := range plan.Cells {
			if !seen[c.Model] {
				seen[c.Model] = true
				models = append(models, c.Model)
			}
		}
		for _, run := range []func([]heteropim.Model) (*heteropim.Table, error){
			heteropim.ModelSummariesFor, heteropim.TableIFor, heteropim.Fig2ClassesFor} {
			t, err := run(models)
			if err != nil {
				fail(err)
			}
			fmt.Println(t.String())
		}
		st := heteropim.SimulationCacheStats()
		fmt.Printf("simcache: hits=%d misses=%d\n", st.Hits, st.Misses)
		return
	}

	if *dotModel != "" {
		if err := buildModel(*dotModel).WriteDOT(os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	if *traceModel != "" {
		if err := trace.Write(os.Stdout, trace.Generate(buildModel(*traceModel), 0)); err != nil {
			fail(err)
		}
		return
	}

	if *timelineModel != "" {
		kind, err := heteropim.ParseConfig(*config)
		if err != nil {
			fail(err)
		}
		buildModel(*timelineModel) // validate the name before the run
		_, m, err := heteropim.RunInstrumented(kind, heteropim.Model(*timelineModel))
		if err != nil {
			fail(err)
		}
		w := output(*out)
		if err := m.WriteTimeline(w); err != nil {
			fail(err)
		}
		if *out != "" {
			if err := w.Close(); err != nil {
				fail(err)
			}
		}
		return
	}

	for _, run := range []func() (*heteropim.Table, error){heteropim.ModelSummaries, heteropim.TableI, heteropim.Fig2Classes} {
		t, err := run()
		if err != nil {
			fail(err)
		}
		fmt.Println(t.String())
	}
	st := heteropim.SimulationCacheStats()
	fmt.Printf("simcache: hits=%d misses=%d\n", st.Hits, st.Misses)
}
