package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"heteropim"
	"heteropim/internal/core"
)

// benchEntry is one experiment's sequential-vs-parallel timing.
type benchEntry struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	SequentialS float64 `json:"sequential_s"`
	ParallelS   float64 `json:"parallel_s"`
	Speedup     float64 `json:"speedup"`
}

// benchReport is the BENCH_parallel.json shape. Wall-clock speedup is
// bounded by NumCPU: on a single-core host the pool degrades to ~1x
// regardless of the worker count.
type benchReport struct {
	GOMAXPROCS  int          `json:"gomaxprocs"`
	NumCPU      int          `json:"num_cpu"`
	Workers     int          `json:"workers"`
	Experiments []benchEntry `json:"experiments"`
	// Aggregate compares the summed sequential wall clock against the
	// summed parallel wall clock across all timed experiments.
	AggregateSequentialS float64 `json:"aggregate_sequential_s"`
	AggregateParallelS   float64 `json:"aggregate_parallel_s"`
	AggregateSpeedup     float64 `json:"aggregate_speedup"`
}

// timeExperiment runs e once at the given parallelism and reports the
// wall clock. The profile and result caches are cleared first so both
// modes pay the same simulation cost and the comparison isolates the
// worker pool.
func timeExperiment(e heteropim.Experiment, parallelism int) (float64, error) {
	prev := heteropim.SetParallelism(parallelism)
	defer heteropim.SetParallelism(prev)
	core.ResetProfileCache()
	heteropim.ResetSimulationCache()
	start := time.Now()
	if _, err := e.Run(); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}

// writeBenchJSON times every selected experiment sequentially
// (parallelism 1) and in parallel (the -workers setting), then writes
// the comparison to path.
func writeBenchJSON(path string, experiments []heteropim.Experiment, want map[string]bool, workers int) error {
	rep := benchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    heteropim.Parallelism(),
	}
	for _, e := range experiments {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		seq, err := timeExperiment(e, 1)
		if err != nil {
			return fmt.Errorf("%s (sequential): %w", e.ID, err)
		}
		par, err := timeExperiment(e, workers)
		if err != nil {
			return fmt.Errorf("%s (parallel): %w", e.ID, err)
		}
		entry := benchEntry{ID: e.ID, Title: e.Title, SequentialS: seq, ParallelS: par}
		if par > 0 {
			entry.Speedup = seq / par
		}
		rep.Experiments = append(rep.Experiments, entry)
		rep.AggregateSequentialS += seq
		rep.AggregateParallelS += par
		fmt.Fprintf(os.Stderr, "pimbench: %-4s seq=%.3fs par=%.3fs speedup=%.2fx\n",
			e.ID, seq, par, entry.Speedup)
	}
	if rep.AggregateParallelS > 0 {
		rep.AggregateSpeedup = rep.AggregateSequentialS / rep.AggregateParallelS
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
