package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"heteropim/internal/hw"
	"heteropim/internal/sim"
)

// The events microbenchmark isolates the engine's scheduling hot path:
// chains of events where each event reschedules its successor, the
// pattern the executor's device/section state machines produce. The
// closure side builds one fresh capturing closure per event (exactly
// what the executor did before the typed-event conversion); the typed
// side carries the same operands in a sim.Ev payload.

const (
	eventChains  = 16 // concurrent chains, so the heap holds real state
	kindTick     = sim.EventKind(1)
	eventDelay   = hw.Seconds(1e-9)
	benchEvents  = 400_000 // per timed run
	allocsEvents = 20_000  // per AllocsPerRun body
)

// tickHandler drives the typed chains: each event reschedules itself
// with the countdown and accumulator carried in the payload.
type tickHandler struct{ eng *sim.Engine }

func (h *tickHandler) HandleEvent(ev sim.Ev) {
	if ev.Kind != kindTick || ev.N == 0 {
		return
	}
	if err := h.eng.AfterEv(eventDelay, sim.Ev{Kind: kindTick, N: ev.N - 1, F1: ev.F1 + 1}); err != nil {
		panic(err)
	}
}

// runTypedEvents processes n events through the typed path and returns
// the engine's processed count delta.
func runTypedEvents(eng *sim.Engine, n int) uint64 {
	eng.Reset()
	eng.SetHandler(&tickHandler{eng: eng})
	before := eng.Processed()
	for c := 0; c < eventChains; c++ {
		if err := eng.AfterEv(eventDelay, sim.Ev{Kind: kindTick, N: int32(n / eventChains)}); err != nil {
			panic(err)
		}
	}
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return eng.Processed() - before
}

// runClosureEvents processes n events through the legacy closure path,
// allocating one capturing closure per event like the pre-conversion
// executor did.
func runClosureEvents(eng *sim.Engine, n int) uint64 {
	eng.Reset()
	before := eng.Processed()
	var schedule func(left int32, acc float64)
	schedule = func(left int32, acc float64) {
		if left == 0 {
			return
		}
		if err := eng.After(eventDelay, func() { schedule(left-1, acc+1) }); err != nil {
			panic(err)
		}
	}
	for c := 0; c < eventChains; c++ {
		schedule(int32(n/eventChains), 0)
	}
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return eng.Processed() - before
}

// eventsSide is one engine variant's measurements.
type eventsSide struct {
	Seconds        float64 `json:"seconds"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// shardedEvents measures the sharded engine path: multiStacks engines
// each chew through an equal slice of the event volume on the worker
// pool, the execution shape of a multi-stack training run.
type shardedEvents struct {
	Shards         int     `json:"shards"`
	EventsPerShard int     `json:"events_per_shard"`
	Seconds        float64 `json:"seconds"`
	// PerShard is each shard engine's events/sec over the run's wall
	// clock (shards share cores, so these sum to Aggregate).
	PerShard []float64 `json:"per_shard_events_per_sec"`
	// Aggregate is total events over wall-clock seconds across all
	// shard engines.
	Aggregate float64 `json:"aggregate_events_per_sec"`
}

// eventsReport is the BENCH_events.json shape.
type eventsReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	Events     int `json:"events"`
	// Closure is the legacy func()-per-event engine path; Typed is the
	// sim.Ev payload path the executor now uses.
	Closure eventsSide `json:"closure"`
	Typed   eventsSide `json:"typed"`
	// Speedup is typed events/sec over closure events/sec.
	Speedup float64 `json:"speedup"`
	// Sharded runs the typed path on per-stack engines in parallel.
	Sharded shardedEvents `json:"sharded"`
}

// measureSharded times multiStacks typed engines each processing an
// equal share of `total` events on the default worker pool (best of
// three), reporting per-shard and aggregate events/sec.
func measureSharded(total int) shardedEvents {
	engs := make([]*sim.Engine, multiStacks)
	for i := range engs {
		engs[i] = sim.New()
	}
	perShard := total / multiStacks
	runShardEngines(engs, perShard/4, 0) // warm
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if got := runShardEngines(engs, perShard, 0); got < uint64(multiStacks*perShard) {
			panic(fmt.Sprintf("shard engines processed %d events, want >= %d", got, multiStacks*perShard))
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	s := shardedEvents{
		Shards:         multiStacks,
		EventsPerShard: perShard,
		Seconds:        best.Seconds(),
		Aggregate:      float64(multiStacks*perShard) / best.Seconds(),
	}
	for i := 0; i < multiStacks; i++ {
		s.PerShard = append(s.PerShard, float64(perShard)/best.Seconds())
	}
	return s
}

// measureEvents times one variant (best of three runs) and measures its
// per-event allocation cost.
func measureEvents(run func(*sim.Engine, int) uint64) eventsSide {
	eng := sim.New()
	// Warm the heap slab and handler structures.
	run(eng, allocsEvents)

	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if got := run(eng, benchEvents); got < benchEvents {
			panic(fmt.Sprintf("processed %d events, want >= %d", got, benchEvents))
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	allocs := testing.AllocsPerRun(5, func() { run(eng, allocsEvents) })
	return eventsSide{
		Seconds:        best.Seconds(),
		EventsPerSec:   float64(benchEvents) / best.Seconds(),
		AllocsPerEvent: allocs / float64(allocsEvents),
	}
}

// writeEventsJSON benchmarks the closure vs typed event paths, writes
// the comparison to path, and fails if the typed path still allocates
// per event or its throughput gain is below minRatio. The gates live
// in-tool so CI only has to run the command.
func writeEventsJSON(path string, minRatio float64) error {
	rep := eventsReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Events:     benchEvents,
	}
	rep.Closure = measureEvents(runClosureEvents)
	rep.Typed = measureEvents(runTypedEvents)
	rep.Speedup = rep.Typed.EventsPerSec / rep.Closure.EventsPerSec
	rep.Sharded = measureSharded(benchEvents)
	fmt.Fprintf(os.Stderr,
		"pimbench: events closure=%.3gM/s (%.2f allocs/ev) typed=%.3gM/s (%.4f allocs/ev) speedup=%.2fx sharded=%.3gM/s aggregate over %d shards\n",
		rep.Closure.EventsPerSec/1e6, rep.Closure.AllocsPerEvent,
		rep.Typed.EventsPerSec/1e6, rep.Typed.AllocsPerEvent, rep.Speedup,
		rep.Sharded.Aggregate/1e6, rep.Sharded.Shards)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	// Allow sync.Pool / slab-growth noise, not a real per-event cost.
	if rep.Typed.AllocsPerEvent > 0.01 {
		return fmt.Errorf("typed path allocates %.4f objects/event, want 0 (see %s)",
			rep.Typed.AllocsPerEvent, path)
	}
	if rep.Speedup < minRatio {
		return fmt.Errorf("typed path speedup %.2fx below the %.2fx floor (see %s)",
			rep.Speedup, minRatio, path)
	}
	return nil
}
