// Command pimbench regenerates every table and figure of the paper's
// evaluation (Table I and Figs. 2, 8-17) and prints them in paper
// order. Individual experiments can be selected by id.
//
// Usage:
//
//	pimbench              # everything
//	pimbench -only F8,F9  # just those artifacts
//	pimbench -benchjson BENCH_parallel.json  # sequential-vs-parallel timing
//	pimbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"heteropim"
	"heteropim/internal/cliutil"
)

func main() {
	only := flag.String("only", "", "comma-separated experiment ids (e.g. T1,F8)")
	ext := flag.Bool("ext", false, "include the extension studies (E1, E2, E3)")
	asCSV := flag.Bool("csv", false, "emit tables as CSV instead of text")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	benchJSON := flag.String("benchjson", "", "time every experiment sequentially and in parallel, write the comparison to this JSON file")
	cacheJSON := flag.String("cachejson", "", "time cache-heavy experiments cold and warm, write the comparison to this JSON file (fails if warm output differs or speedup is below -cachemin)")
	cacheMin := flag.Float64("cachemin", 1.5, "minimum aggregate warm-cache speedup accepted by -cachejson")
	eventsJSON := flag.String("eventsjson", "", "benchmark the closure vs typed event engine paths, write the comparison to this JSON file (fails if the typed path allocates or its speedup is below -eventsmin)")
	eventsMin := flag.Float64("eventsmin", 1.3, "minimum typed-over-closure events/sec ratio accepted by -eventsjson")
	multistackJSON := flag.String("multistackjson", "", "benchmark sharded multi-stack engines vs a single engine, verify M=1 identity and worker-count determinism, write the report to this JSON file")
	loadScenario := cliutil.ScenarioFlag(flag.CommandLine)
	applyCache := cliutil.CacheFlags(flag.CommandLine)
	startProfile := cliutil.ProfileFlags(flag.CommandLine)
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	heteropim.SetParallelism(*workers)
	applyCache()
	defer startProfile()()

	// -scenario runs a compiled scenario plan instead of the paper's
	// experiment list: as sweep CSV with -csv (byte-identical to
	// pimsweep -scenario on the same file), or as a text table.
	if plan, err := loadScenario(); err != nil {
		fmt.Fprintf(os.Stderr, "pimbench: %v\n", err)
		os.Exit(1)
	} else if plan != nil {
		if err := runScenario(plan, *asCSV); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %v\n", err)
			os.Exit(1)
		}
		st := heteropim.SimulationCacheStats()
		fmt.Fprintf(os.Stderr, "simcache: hits=%d misses=%d\n", st.Hits, st.Misses)
		return
	}

	experiments := heteropim.Experiments()
	if *ext || *only != "" {
		experiments = append(experiments, heteropim.ExtensionExperiments()...)
	}
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, experiments, want, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cacheJSON != "" {
		if err := writeCacheJSON(*cacheJSON, *cacheMin); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *eventsJSON != "" {
		if err := writeEventsJSON(*eventsJSON, *eventsMin); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *multistackJSON != "" {
		if err := writeMultistackJSON(*multistackJSON); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	failed := false
	for _, e := range experiments {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		t, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: %s: %v\n", e.ID, err)
			failed = true
			continue
		}
		if *asCSV {
			fmt.Printf("# %s %s\n", e.ID, e.Title)
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "pimbench: %s: %v\n", e.ID, err)
				failed = true
			}
			continue
		}
		fmt.Printf("[%s] %s (%.1fs)\n", e.ID, e.Title, time.Since(start).Seconds())
		fmt.Println(t.String())
	}
	if failed {
		os.Exit(1)
	}
	// Stats go to stderr so table output stays diff-stable.
	st := heteropim.SimulationCacheStats()
	fmt.Fprintf(os.Stderr, "simcache: hits=%d misses=%d\n", st.Hits, st.Misses)
}
