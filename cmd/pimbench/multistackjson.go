package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"heteropim"
	"heteropim/internal/runner"
	"heteropim/internal/sim"
)

// The multistack benchmark measures the tentpole claim of the sharded
// executor: M per-stack event engines advanced in parallel on the
// worker pool beat one engine grinding through the same event volume,
// while the merged simulation results stay byte-identical whatever the
// worker count. The engine side reuses the eventsjson tick chains (the
// executor's real scheduling pattern); the identity and determinism
// gates run the full RunWithOptions pipeline.

const (
	multiStacks      = 8       // shard count of the throughput comparison
	multiShardEvents = 250_000 // events per shard engine
)

// runShardEngines advances `stacks` independent engines, each through n
// typed events, on `workers` pool workers. Returns the summed processed
// count. Engines are reused across timed runs (the executor pools its
// engines the same way).
func runShardEngines(engs []*sim.Engine, n, workers int) uint64 {
	counts, err := runner.Map(context.Background(), len(engs), workers,
		func(_ context.Context, i int) (uint64, error) {
			return runTypedEvents(engs[i], n), nil
		})
	if err != nil {
		panic(err)
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total
}

// multiPoint compares single-engine vs sharded throughput at one
// GOMAXPROCS setting. Both sides process stacks*events_per_shard events.
type multiPoint struct {
	GOMAXPROCS          int     `json:"gomaxprocs"`
	Workers             int     `json:"workers"`
	SingleSeconds       float64 `json:"single_seconds"`
	SingleEventsPerSec  float64 `json:"single_events_per_sec"`
	ShardedSeconds      float64 `json:"sharded_seconds"`
	ShardedEventsPerSec float64 `json:"sharded_events_per_sec"`
	// Speedup is sharded aggregate events/sec over single-engine.
	Speedup float64 `json:"speedup"`
}

// multistackReport is the BENCH_multistack.json shape.
type multistackReport struct {
	NumCPU         int `json:"num_cpu"`
	Stacks         int `json:"stacks"`
	EventsPerShard int `json:"events_per_shard"`
	TotalEvents    int `json:"total_events"`
	// M1Identical reports whether RunWithOptions{Stacks:1} reproduced
	// Run byte for byte (JSON of the public Result).
	M1Identical bool `json:"m1_identical"`
	// DeterministicAcrossWorkers reports whether an M=2 run produced the
	// same bytes under 1, 4 and 8 pool workers (cold cache each time).
	DeterministicAcrossWorkers bool `json:"deterministic_across_workers"`
	// SpeedupFloor is the gate applied to the widest point's Speedup;
	// 0 means the host has too few cores to gate on (see Note).
	SpeedupFloor float64      `json:"speedup_floor"`
	Note         string       `json:"note,omitempty"`
	Points       []multiPoint `json:"points"`
}

// measureMultiPoint times both sides (best of three) at the current
// GOMAXPROCS with the given pool width.
func measureMultiPoint(engs []*sim.Engine, workers int) multiPoint {
	p := multiPoint{GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: workers}
	total := uint64(multiStacks * multiShardEvents)
	single := engs[0]
	// Warm both sides.
	runTypedEvents(single, multiShardEvents)
	runShardEngines(engs, multiShardEvents/4, workers)

	bestS, bestM := time.Duration(1<<63-1), time.Duration(1<<63-1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if got := runTypedEvents(single, multiStacks*multiShardEvents); got < total {
			panic(fmt.Sprintf("single engine processed %d events, want >= %d", got, total))
		}
		if d := time.Since(start); d < bestS {
			bestS = d
		}
		start = time.Now()
		if got := runShardEngines(engs, multiShardEvents, workers); got < total {
			panic(fmt.Sprintf("shard engines processed %d events, want >= %d", got, total))
		}
		if d := time.Since(start); d < bestM {
			bestM = d
		}
	}
	p.SingleSeconds = bestS.Seconds()
	p.SingleEventsPerSec = float64(total) / p.SingleSeconds
	p.ShardedSeconds = bestM.Seconds()
	p.ShardedEventsPerSec = float64(total) / p.ShardedSeconds
	p.Speedup = p.ShardedEventsPerSec / p.SingleEventsPerSec
	return p
}

// resultBytes canonicalizes a public Result for byte comparison.
func resultBytes(r heteropim.Result) []byte {
	b, err := json.Marshal(r)
	if err != nil {
		panic(err)
	}
	return b
}

// checkM1Identity verifies the single-stack degenerate case: Stacks=1
// must route through the plain executor and reproduce Run exactly.
func checkM1Identity() (bool, error) {
	base, err := heteropim.Run(heteropim.ConfigHeteroPIM, heteropim.VGG19)
	if err != nil {
		return false, err
	}
	one, err := heteropim.RunWithOptions(heteropim.ConfigHeteroPIM, heteropim.VGG19,
		heteropim.Options{Stacks: 1})
	if err != nil {
		return false, err
	}
	return string(resultBytes(base)) == string(resultBytes(one)), nil
}

// checkWorkerDeterminism runs an M=2 training step under three pool
// widths with a cold cache each time and compares the bytes.
func checkWorkerDeterminism() (bool, error) {
	var ref []byte
	for _, w := range []int{1, 4, 8} {
		prev := heteropim.SetParallelism(w)
		heteropim.ResetSimulationCache()
		r, err := heteropim.RunWithOptions(heteropim.ConfigHeteroPIM, heteropim.VGG19,
			heteropim.Options{Stacks: 2, AllReduce: heteropim.AllReduceRing})
		heteropim.SetParallelism(prev)
		if err != nil {
			return false, err
		}
		b := resultBytes(r)
		if ref == nil {
			ref = b
		} else if string(ref) != string(b) {
			return false, nil
		}
	}
	return true, nil
}

// multistackFloor picks the sharded-over-single speedup gate for this
// host. Perfect scaling would be min(NumCPU, stacks)x; the floor leaves
// headroom for merge overhead and CI-runner noise. Hosts with a single
// core cannot demonstrate parallel speedup at all, so the gate is
// waived there (determinism and identity still gate).
func multistackFloor(ncpu int) (floor float64, note string) {
	switch {
	case ncpu >= 8:
		return 3.0, ""
	case ncpu >= 2:
		return 0.65 * float64(ncpu), fmt.Sprintf("reduced floor: host has %d cores", ncpu)
	default:
		return 0, "single-core host: parallel speedup gate skipped, identity/determinism gates still apply"
	}
}

// writeMultistackJSON benchmarks one engine vs multiStacks shard
// engines at GOMAXPROCS 1 and NumCPU, verifies the M=1 identity and
// M=2 worker-count determinism of the full pipeline, and writes
// BENCH_multistack.json. The gates live in-tool so CI only has to run
// the command.
func writeMultistackJSON(path string) error {
	ncpu := runtime.NumCPU()
	floor, note := multistackFloor(ncpu)
	rep := multistackReport{
		NumCPU:         ncpu,
		Stacks:         multiStacks,
		EventsPerShard: multiShardEvents,
		TotalEvents:    multiStacks * multiShardEvents,
		SpeedupFloor:   floor,
		Note:           note,
	}

	var err error
	if rep.M1Identical, err = checkM1Identity(); err != nil {
		return err
	}
	if rep.DeterministicAcrossWorkers, err = checkWorkerDeterminism(); err != nil {
		return err
	}

	engs := make([]*sim.Engine, multiStacks)
	for i := range engs {
		engs[i] = sim.New()
	}
	points := []int{1}
	if ncpu > 1 {
		points = append(points, ncpu)
	}
	orig := runtime.GOMAXPROCS(0)
	for _, p := range points {
		runtime.GOMAXPROCS(p)
		rep.Points = append(rep.Points, measureMultiPoint(engs, p))
	}
	runtime.GOMAXPROCS(orig)

	wide := rep.Points[len(rep.Points)-1]
	fmt.Fprintf(os.Stderr,
		"pimbench: multistack M=%d single=%.3gM/s sharded=%.3gM/s speedup=%.2fx (gomaxprocs=%d) m1_identical=%v deterministic=%v\n",
		multiStacks, wide.SingleEventsPerSec/1e6, wide.ShardedEventsPerSec/1e6,
		wide.Speedup, wide.GOMAXPROCS, rep.M1Identical, rep.DeterministicAcrossWorkers)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}

	if !rep.M1Identical {
		return fmt.Errorf("Stacks=1 result diverged from Run (see %s)", path)
	}
	if !rep.DeterministicAcrossWorkers {
		return fmt.Errorf("M=2 result depends on the worker count (see %s)", path)
	}
	if floor > 0 && wide.Speedup < floor {
		return fmt.Errorf("sharded speedup %.2fx below the %.2fx floor at %d cores (see %s)",
			wide.Speedup, floor, ncpu, path)
	}
	return nil
}
