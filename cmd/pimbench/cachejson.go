package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"heteropim"
	"heteropim/internal/metrics"
	"heteropim/internal/runner"
)

// cacheEntry is one experiment's cold-vs-warm cache timing. Identical
// reports whether the warm run's table was byte-identical to the cold
// run's — the cache's core correctness contract.
type cacheEntry struct {
	ID        string  `json:"id"`
	Title     string  `json:"title"`
	ColdS     float64 `json:"cold_s"`
	WarmS     float64 `json:"warm_s"`
	Speedup   float64 `json:"speedup"`
	Identical bool    `json:"identical"`
}

// cacheReport is the BENCH_cache.json shape.
type cacheReport struct {
	GOMAXPROCS  int          `json:"gomaxprocs"`
	NumCPU      int          `json:"num_cpu"`
	Workers     int          `json:"workers"`
	Experiments []cacheEntry `json:"experiments"`
	// Aggregate compares the summed cold wall clock against the summed
	// warm wall clock across all timed experiments.
	AggregateColdS   float64 `json:"aggregate_cold_s"`
	AggregateWarmS   float64 `json:"aggregate_warm_s"`
	AggregateSpeedup float64 `json:"aggregate_speedup"`
	// Cache holds the process-wide simulation-cache counters after the
	// final warm run; Metrics mirrors them through the observability
	// registry (cache.hits / cache.misses / cache.bytes).
	Cache   heteropim.CacheStats     `json:"cache"`
	Metrics metrics.RegistrySnapshot `json:"metrics"`
}

// trainAllExperiment is the pimtrain -model VGG-19 -config all
// workload as a timeable experiment: five platform simulations of one
// model, fanned out on the worker pool like the CLI does.
func trainAllExperiment() heteropim.Experiment {
	return heteropim.Experiment{
		ID:    "TRAIN",
		Title: "pimtrain -model VGG-19 -config all",
		Run: func() (*heteropim.Table, error) {
			configs := heteropim.Configs()
			t := &heteropim.Table{
				Title:   "VGG-19 across the five platforms",
				Columns: []string{"Config", "Step", "Energy"},
			}
			results, err := runner.Map(context.Background(), len(configs), 0,
				func(_ context.Context, i int) (heteropim.Result, error) {
					return heteropim.Run(configs[i], heteropim.VGG19)
				})
			if err != nil {
				return nil, err
			}
			for _, r := range results {
				t.AddRow(r.Config,
					fmt.Sprintf("%.6g", r.StepTime), fmt.Sprintf("%.6g", r.Energy))
			}
			return t, nil
		},
	}
}

// timeCacheRun runs e once and reports the wall clock plus the rendered
// table, so cold and warm outputs can be compared byte for byte.
func timeCacheRun(e heteropim.Experiment) (float64, string, error) {
	start := time.Now()
	t, err := e.Run()
	if err != nil {
		return 0, "", err
	}
	return time.Since(start).Seconds(), t.String(), nil
}

// writeCacheJSON times the cache-heavy experiments (Figs. 8-10 plus the
// pimtrain -config all workload) cold and warm, writes the comparison
// to path, and fails if any warm table differs from its cold run or the
// aggregate warm speedup is below minSpeedup. The gate lives in-tool so
// CI only has to run the command.
func writeCacheJSON(path string, minSpeedup float64) error {
	var selected []heteropim.Experiment
	want := map[string]bool{"F8": true, "F9": true, "F10": true}
	for _, e := range heteropim.Experiments() {
		if want[e.ID] {
			selected = append(selected, e)
		}
	}
	selected = append(selected, trainAllExperiment())

	rep := cacheReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    heteropim.Parallelism(),
	}
	heteropim.SetSimulationCache(true)
	heteropim.ResetSimulationCache()
	mismatch := false
	for _, e := range selected {
		// The cache stays primed across experiments on purpose: F9
		// revisits F8's grid, exactly the cross-figure reuse the cache
		// exists for. Only the first run of each experiment's pair can
		// pay for live simulations.
		cold, coldOut, err := timeCacheRun(e)
		if err != nil {
			return fmt.Errorf("%s (cold): %w", e.ID, err)
		}
		warm, warmOut, err := timeCacheRun(e)
		if err != nil {
			return fmt.Errorf("%s (warm): %w", e.ID, err)
		}
		entry := cacheEntry{
			ID: e.ID, Title: e.Title, ColdS: cold, WarmS: warm,
			Identical: coldOut == warmOut,
		}
		if warm > 0 {
			entry.Speedup = cold / warm
		}
		if !entry.Identical {
			mismatch = true
		}
		rep.Experiments = append(rep.Experiments, entry)
		rep.AggregateColdS += cold
		rep.AggregateWarmS += warm
		fmt.Fprintf(os.Stderr, "pimbench: %-5s cold=%.3fs warm=%.3fs speedup=%.2fx identical=%v\n",
			e.ID, cold, warm, entry.Speedup, entry.Identical)
	}
	if rep.AggregateWarmS > 0 {
		rep.AggregateSpeedup = rep.AggregateColdS / rep.AggregateWarmS
	}

	rep.Cache = heteropim.SimulationCacheStats()
	reg := metrics.NewRegistry()
	reg.Add("cache.hits", float64(rep.Cache.Hits))
	reg.Add("cache.misses", float64(rep.Cache.Misses))
	reg.Add("cache.bytes", float64(rep.Cache.Bytes))
	rep.Metrics = reg.Snapshot()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if mismatch {
		return fmt.Errorf("warm cache output differs from cold run (see %s)", path)
	}
	if rep.AggregateSpeedup < minSpeedup {
		return fmt.Errorf("aggregate warm-cache speedup %.2fx below the %.2fx floor (see %s)",
			rep.AggregateSpeedup, minSpeedup, path)
	}
	return nil
}
