package main

import (
	"encoding/csv"
	"fmt"
	"os"

	"heteropim"
	"heteropim/internal/cliutil"
	"heteropim/internal/report"
)

// runScenario renders a compiled scenario plan: with -csv the exact
// sweep CSV pimsweep -scenario emits for the same file (CI diffs the
// two), otherwise a text table in the house style.
func runScenario(plan *heteropim.ScenarioPlan, asCSV bool) error {
	if asCSV {
		w := csv.NewWriter(os.Stdout)
		defer w.Flush()
		return cliutil.WriteScenarioCSV(w, plan)
	}
	header, rows, err := cliutil.ScenarioRows(plan)
	if err != nil {
		return err
	}
	title := plan.Name
	if title == "" {
		title = "scenario"
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Scenario %s (%d cells, %d duplicates folded)", title, len(plan.Cells), plan.Duplicates),
		Columns: header,
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	fmt.Println(t.String())
	return nil
}
