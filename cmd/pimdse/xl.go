package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"

	"heteropim"
	"heteropim/internal/batch"
	"heteropim/internal/nn"
)

// The XL comparison cannot afford a full exhaustive leg (thousands of
// candidates per model), so it measures and verifies separately:
//
//   - speedup is measured against the shallow optimized mode that
//     shipped before the calibrated bound and deep checkpoints
//     (prune + surrogate + first-grant delta), on the full grid;
//   - winner correctness is verified exhaustively on a deterministic
//     subsample (every xlVerifyStride-th candidate) plus the optimized
//     winner itself. The subset contains the winner by construction, so
//     exhaustive search over it returns a strictly better candidate iff
//     the optimized run pruned incorrectly — byte-diffing the rendered
//     winner rows turns admissibility bugs into CI failures.

// xlGateMinCandidates is the scale contract of the XL grid.
const xlGateMinCandidates = 2000

// xlGates are the in-tool acceptance thresholds for the XL comparison.
const (
	xlGateMinPrunedFrac = 0.80
	xlGateMinSpeedup    = 2.0
	xlGateMaxPer100S    = 1.0
)

// xlEntry is one model's optimized-vs-baseline comparison plus its
// subsampled exhaustive verification.
type xlEntry struct {
	Model       string  `json:"model"`
	Winner      string  `json:"winner"`
	WinnerStepS float64 `json:"winner_step_s"`
	Candidates  int     `json:"candidates"`
	Pruned      int     `json:"pruned"`
	Simulated   int     `json:"simulated"`
	// CalibratedPruned counts candidates only the calibrated bound could
	// retire; DeltaBoundaries counts distinct deep-checkpoint captures.
	CalibratedPruned int     `json:"calibrated_pruned"`
	DeltaBoundaries  int     `json:"delta_boundaries"`
	DeltaCheckpoints int     `json:"delta_checkpoints"`
	DeltaReplays     int     `json:"delta_replays"`
	DeltaSharedEv    uint64  `json:"delta_shared_events"`
	SurrogateR2      float64 `json:"surrogate_r2"`
	SurrogateRank    float64 `json:"surrogate_rank"`
	// OptimizedS is the full-option wall clock, BaselineS the shallow
	// optimized mode's, Per100S the optimized seconds per 100 candidates.
	OptimizedS float64 `json:"optimized_s"`
	BaselineS  float64 `json:"baseline_s"`
	Speedup    float64 `json:"speedup"`
	Per100S    float64 `json:"per_100_candidates_s"`
	// VerifyIdentical reports whether exhaustive search over the
	// verification subset reproduced the optimized winner byte for byte.
	VerifyCandidates int  `json:"verify_candidates"`
	VerifyIdentical  bool `json:"verify_identical"`
}

// xlReport is the BENCH_dse.json shape for the xl grid.
type xlReport struct {
	Grid         string    `json:"grid"`
	GOMAXPROCS   int       `json:"gomaxprocs"`
	NumCPU       int       `json:"num_cpu"`
	Workers      int       `json:"workers"`
	Candidates   int       `json:"candidates"`
	VerifyStride int       `json:"verify_stride"`
	Models       []xlEntry `json:"models"`
	// Aggregates over all models; the gates apply to these.
	AggregateOptimizedS float64 `json:"aggregate_optimized_s"`
	AggregateBaselineS  float64 `json:"aggregate_baseline_s"`
	AggregateSpeedup    float64 `json:"aggregate_speedup"`
	PrunedFraction      float64 `json:"pruned_fraction"`
	MedianPer100S       float64 `json:"median_per_100_candidates_s"`
}

// writeXLDSEJSON times the full-option exploration against the shallow
// optimized baseline per CNN model on the XL grid, verifies each winner
// exhaustively on the subsampled set, and writes the comparison plus
// in-tool gates to path.
func writeXLDSEJSON(path string, dopts batch.DSEOptions) error {
	cands, err := xlCandidates()
	if err != nil {
		return err
	}
	if len(cands) < xlGateMinCandidates {
		return fmt.Errorf("xl grid holds %d candidates, contract is >= %d", len(cands), xlGateMinCandidates)
	}
	baseline := batch.DSEOptions{Prune: true, Surrogate: true, Delta: true,
		Stacks: dopts.Stacks, AllReduce: dopts.AllReduce}
	exhaustive := batch.DSEOptions{Stacks: dopts.Stacks, AllReduce: dopts.AllReduce}
	rep := xlReport{
		Grid:         "xl",
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		Workers:      heteropim.Parallelism(),
		Candidates:   len(cands),
		VerifyStride: xlVerifyStride,
	}
	totalPruned := 0
	mismatch := false
	var per100 []float64
	for _, model := range nn.CNNModelNames() {
		opt, optS, optOut, err := timeDSE(model, cands, dopts)
		if err != nil {
			return fmt.Errorf("%s (optimized): %w", model, err)
		}
		base, baseS, baseOut, err := timeDSE(model, cands, baseline)
		if err != nil {
			return fmt.Errorf("%s (baseline): %w", model, err)
		}
		if optOut != baseOut {
			mismatch = true
			fmt.Fprintf(os.Stderr, "pimdse: %s full-option winner diverged from baseline: %v vs %v\n",
				model, opt.Winner.Candidate, base.Winner.Candidate)
		}
		// Exhaustive verification on the subsample plus the winner.
		verify := make([]batch.Candidate, 0, len(cands)/xlVerifyStride+2)
		seenWinner := false
		for i := 0; i < len(cands); i += xlVerifyStride {
			verify = append(verify, cands[i])
			if cands[i] == opt.Winner.Candidate {
				seenWinner = true
			}
		}
		if !seenWinner {
			verify = append(verify, opt.Winner.Candidate)
		}
		exh, _, exhOut, err := timeDSE(model, verify, exhaustive)
		if err != nil {
			return fmt.Errorf("%s (verification): %w", model, err)
		}
		identical := exh.Winner.Candidate == opt.Winner.Candidate && exhOut == optOut
		if !identical {
			mismatch = true
			fmt.Fprintf(os.Stderr, "pimdse: %s subsampled exhaustive found %v, optimized chose %v\n",
				model, exh.Winner.Candidate, opt.Winner.Candidate)
		}
		p100 := optS / (float64(len(cands)) / 100)
		per100 = append(per100, p100)
		rep.Models = append(rep.Models, xlEntry{
			Model:            string(model),
			Winner:           opt.Winner.Candidate.String(),
			WinnerStepS:      float64(opt.Winner.Result.StepTime),
			Candidates:       len(cands),
			Pruned:           opt.Pruned,
			Simulated:        opt.Simulated,
			CalibratedPruned: opt.CalibratedPruned,
			DeltaBoundaries:  opt.DeltaBoundaries,
			DeltaCheckpoints: opt.DeltaCheckpoints,
			DeltaReplays:     opt.DeltaReplays,
			DeltaSharedEv:    opt.DeltaShared,
			SurrogateR2:      opt.SurrogateR2,
			SurrogateRank:    opt.SurrogateRank,
			OptimizedS:       optS,
			BaselineS:        baseS,
			Speedup:          baseS / optS,
			Per100S:          p100,
			VerifyCandidates: len(verify),
			VerifyIdentical:  identical,
		})
		totalPruned += opt.Pruned
		rep.AggregateOptimizedS += optS
		rep.AggregateBaselineS += baseS
		fmt.Fprintf(os.Stderr, "pimdse: %s winner %v pruned %d/%d (cal %d) %.2fs vs baseline %.2fs, verify %d ok=%v\n",
			model, opt.Winner.Candidate, opt.Pruned, len(cands), opt.CalibratedPruned,
			optS, baseS, len(verify), identical)
	}
	rep.AggregateSpeedup = rep.AggregateBaselineS / rep.AggregateOptimizedS
	rep.PrunedFraction = float64(totalPruned) / float64(len(cands)*len(rep.Models))
	sort.Float64s(per100)
	rep.MedianPer100S = per100[len(per100)/2]

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pimdse: wrote %s (grid xl, %d candidates, pruned %.0f%%, speedup %.2fx, median %.2fs/100)\n",
		path, rep.Candidates, rep.PrunedFraction*100, rep.AggregateSpeedup, rep.MedianPer100S)

	if mismatch {
		return fmt.Errorf("optimized exploration diverged on the verification set (see %s)", path)
	}
	if rep.PrunedFraction < xlGateMinPrunedFrac {
		return fmt.Errorf("pruned only %.0f%% of candidates, gate is %.0f%%",
			rep.PrunedFraction*100, xlGateMinPrunedFrac*100)
	}
	if rep.AggregateSpeedup < xlGateMinSpeedup {
		return fmt.Errorf("aggregate speedup over the shallow mode %.2fx below the %.2fx gate",
			rep.AggregateSpeedup, xlGateMinSpeedup)
	}
	if rep.MedianPer100S >= xlGateMaxPer100S {
		return fmt.Errorf("median %.2fs per model per 100 candidates breaks the sub-second gate",
			rep.MedianPer100S)
	}
	return nil
}
