package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"heteropim"
	"heteropim/internal/batch"
	"heteropim/internal/energy"
	"heteropim/internal/hmc"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/report"
	"heteropim/internal/thermal"
)

// defaultCandidates builds the thermally-constrained candidate space:
// at each PLL point the unit ladder starts from the thermal model's
// maximum budget under the DRAM cap and halves down, crossed with the
// two programmable-processor counts the paper's area study considers.
func defaultCandidates() ([]batch.Candidate, error) {
	stack, err := hmc.New(hw.PaperStack(1))
	if err != nil {
		return nil, err
	}
	var cands []batch.Candidate
	for _, scale := range []float64{1, 2, 4} {
		maxUnits, err := thermal.MaxUnitsUnderCap(stack, thermal.DRAMThermalCap, scale)
		if err != nil {
			return nil, err
		}
		for _, units := range []int{maxUnits, maxUnits / 2, maxUnits / 4, maxUnits / 8} {
			if units < 1 {
				continue
			}
			for _, procs := range []int{1, 4} {
				cands = append(cands, batch.Candidate{
					Units: units, FreqScale: scale, ProgProcessors: procs,
				})
			}
		}
	}
	return cands, nil
}

// largeGridFreqs/largeGridProcs/largeGridRungs shape the interactive-DSE
// grid: six PLL points (down-clocked energy designs through the 4x
// overdrive), a 24-rung geometric unit ladder per point spanning the
// thermal maximum down to 1/64th of it, and three processor counts.
var largeGridFreqs = []float64{0.5, 1, 1.5, 2, 3, 4}
var largeGridProcs = []int{1, 2, 4}

const (
	largeGridRungs = 24
	largeGridSpan  = 64
)

// largeCandidates builds the interactive-speed DSE grid: 6 x 24 x 3 =
// 432 thermally-capped candidates. The wide dynamic range is the point:
// the down-clocked small-budget corner is both expensive to simulate
// (more fixed-pool chunks per step) and analytically hopeless (its
// admissible bound exceeds any good incumbent), so branch-and-bound
// with surrogate ordering discards most of the space unsimulated while
// remaining provably winner-identical to exhaustive search.
func largeCandidates() ([]batch.Candidate, error) {
	stack, err := hmc.New(hw.PaperStack(1))
	if err != nil {
		return nil, err
	}
	var cands []batch.Candidate
	for _, scale := range largeGridFreqs {
		maxUnits, err := thermal.MaxUnitsUnderCap(stack, thermal.DRAMThermalCap, scale)
		if err != nil {
			return nil, err
		}
		prev := 0
		for r := 0; r < largeGridRungs; r++ {
			units := ladderRung(maxUnits, r)
			if units < 1 || units == prev {
				continue
			}
			prev = units
			for _, procs := range largeGridProcs {
				cands = append(cands, batch.Candidate{
					Units: units, FreqScale: scale, ProgProcessors: procs,
				})
			}
		}
	}
	return cands, nil
}

// ladderRung returns rung r of the geometric ladder from maxUnits down
// to maxUnits/largeGridSpan. math.Pow is fully determined by IEEE-754
// inputs, so the grid is identical everywhere.
func ladderRung(maxUnits, r int) int {
	v := float64(maxUnits) * math.Pow(1.0/largeGridSpan, float64(r)/float64(largeGridRungs-1))
	return int(v + 0.5)
}

// xlGridFreqs/xlGridRungs shape the XL grid: ten PLL points and a
// 96-rung ladder per point over the same 64x span, crossed with the
// three processor counts — thousands of candidates, the scale where the
// calibrated bound and deep delta checkpoints earn their keep.
var xlGridFreqs = []float64{0.5, 0.75, 1, 1.25, 1.5, 2, 2.5, 3, 3.5, 4}

const xlGridRungs = 96

// xlCandidates builds the XL interactive-DSE grid (>= 2000 thermally
// capped candidates after integer dedup of the dense ladders).
func xlCandidates() ([]batch.Candidate, error) {
	stack, err := hmc.New(hw.PaperStack(1))
	if err != nil {
		return nil, err
	}
	var cands []batch.Candidate
	for _, scale := range xlGridFreqs {
		maxUnits, err := thermal.MaxUnitsUnderCap(stack, thermal.DRAMThermalCap, scale)
		if err != nil {
			return nil, err
		}
		prev := 0
		for r := 0; r < xlGridRungs; r++ {
			v := float64(maxUnits) * math.Pow(1.0/largeGridSpan, float64(r)/float64(xlGridRungs-1))
			units := int(v + 0.5)
			if units < 1 || units == prev {
				continue
			}
			prev = units
			for _, procs := range largeGridProcs {
				cands = append(cands, batch.Candidate{
					Units: units, FreqScale: scale, ProgProcessors: procs,
				})
			}
		}
	}
	return cands, nil
}

// xlVerifyStride subsamples the XL grid for exhaustive verification:
// every ninth candidate in grid order (plus, in the JSON comparison,
// the optimized winner) is simulated exhaustively and must reproduce
// the optimized winner byte for byte.
const xlVerifyStride = 9

// xlVerifyCandidates is the deterministic verification subset, also
// exposed as its own grid so CI can byte-diff optimized vs exhaustive
// stdout on it.
func xlVerifyCandidates() ([]batch.Candidate, error) {
	xl, err := xlCandidates()
	if err != nil {
		return nil, err
	}
	var sub []batch.Candidate
	for i := 0; i < len(xl); i += xlVerifyStride {
		sub = append(sub, xl[i])
	}
	return sub, nil
}

// candidatesFor resolves a -grid flag value.
func candidatesFor(grid string) ([]batch.Candidate, error) {
	switch grid {
	case "paper":
		return defaultCandidates()
	case "large":
		return largeCandidates()
	case "xl":
		return xlCandidates()
	case "xl-verify":
		return xlVerifyCandidates()
	default:
		return nil, fmt.Errorf("unknown grid %q (want paper, large, xl, or xl-verify)", grid)
	}
}

// winnerRow renders one model's winning candidate. The rendering must
// depend only on the winner's simulated result so pruned and exhaustive
// runs emit byte-identical tables.
func winnerRow(t *report.Table, model nn.ModelName, ex batch.Exploration) {
	w := ex.Winner
	e := energy.Evaluate(w.Result)
	t.AddRow(string(model), w.Candidate.String(),
		report.Seconds(w.Result.StepTime), report.Joules(e.Dynamic),
		fmt.Sprintf("%.3g", e.EDP))
}

// runDSE explores a candidate grid for the given models (the five CNNs
// on the flag path, a scenario's models on -scenario) and prints the
// winner table. Only the winner table goes to stdout —
// pruned/simulated counts go to stderr — so `pimdse -dse` and
// `pimdse -dse -exhaustive` stdout can be diffed byte for byte (the
// winner is invariant under every DSEOptions combination).
func runDSE(grid string, models []nn.ModelName, dopts batch.DSEOptions) error {
	cands, err := candidatesFor(grid)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Design-space exploration winners (thermally-capped space)",
		Columns: []string{"Model", "Winner", "Step", "Energy", "EDP"},
	}
	t.Notes = append(t.Notes,
		"winner = units/freq/processors minimizing step time under the full Hetero PIM runtime")
	for _, model := range models {
		ex, err := batch.ExploreDSE(context.Background(), model, cands, dopts)
		if err != nil {
			return err
		}
		winnerRow(t, model, ex)
		fmt.Fprintf(os.Stderr, "dse: model=%s candidates=%d simulated=%d pruned=%d surrogate_r2=%.3f replays=%d\n",
			model, len(cands), ex.Simulated, ex.Pruned, ex.SurrogateR2, ex.DeltaReplays)
	}
	fmt.Println(t.String())
	return nil
}

// scenarioDSEInputs extracts the DSE inputs from a compiled scenario:
// the distinct models in plan order and the uniform stacks/allreduce
// pair. A DSE run evaluates every candidate under one sharding, so a
// plan mixing stacks or schedules is rejected rather than averaged.
func scenarioDSEInputs(plan *heteropim.ScenarioPlan) ([]nn.ModelName, int, nn.AllReduceKind, error) {
	var models []nn.ModelName
	seen := map[heteropim.Model]bool{}
	stacks, sched := 0, ""
	for i, c := range plan.Cells {
		if !seen[c.Model] {
			seen[c.Model] = true
			models = append(models, c.Model)
		}
		s := c.Stacks
		if s < 1 {
			s = 1
		}
		if i == 0 {
			stacks, sched = s, c.AllReduce
		} else if s != stacks || c.AllReduce != sched {
			return nil, 0, "", fmt.Errorf("scenario mixes stacks/allreduce axes (%d/%q vs %d/%q); DSE needs one sharding",
				stacks, sched, s, c.AllReduce)
		}
	}
	kind, err := nn.ParseAllReduceKind(sched)
	if err != nil {
		return nil, 0, "", err
	}
	return models, stacks, kind, nil
}

// dseEntry is one model's pruned-vs-exhaustive comparison.
type dseEntry struct {
	Model       string  `json:"model"`
	Winner      string  `json:"winner"`
	WinnerStepS float64 `json:"winner_step_s"`
	Candidates  int     `json:"candidates"`
	Pruned      int     `json:"pruned"`
	Simulated   int     `json:"simulated"`
	PrunedS     float64 `json:"pruned_s"`
	ExhaustiveS float64 `json:"exhaustive_s"`
	Speedup     float64 `json:"speedup"`
	// Identical reports whether the pruned run's winner and rendered
	// winner row matched the exhaustive run's byte for byte.
	Identical bool `json:"identical"`
	// Surrogate quality for the pruned run: in-sample R², Spearman rank
	// correlation between predictions and simulated step times, and the
	// observation counts behind the final fit.
	SurrogateR2     float64 `json:"surrogate_r2"`
	SurrogateRank   float64 `json:"surrogate_rank"`
	SurrogateObs    int     `json:"surrogate_obs"`
	SeededFromCache int     `json:"seeded_from_cache"`
	// Delta-simulation traffic for the pruned run.
	DeltaCheckpoints int    `json:"delta_checkpoints"`
	DeltaReplays     int    `json:"delta_replays"`
	DeltaSharedEv    uint64 `json:"delta_shared_events"`
}

// dseReport is the BENCH_dse.json shape.
type dseReport struct {
	Grid       string     `json:"grid"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	Workers    int        `json:"workers"`
	Candidates int        `json:"candidates"`
	Models     []dseEntry `json:"models"`
	// Aggregates compare summed wall clocks and candidate counts across
	// all models; the gates apply to these.
	AggregatePrunedS     float64 `json:"aggregate_pruned_s"`
	AggregateExhaustiveS float64 `json:"aggregate_exhaustive_s"`
	AggregateSpeedup     float64 `json:"aggregate_speedup"`
	PrunedFraction       float64 `json:"pruned_fraction"`
}

// timeDSE runs one exploration on a cold simulation cache and renders
// the winner row, so the two modes can be compared byte for byte.
func timeDSE(model nn.ModelName, cands []batch.Candidate, dopts batch.DSEOptions) (batch.Exploration, float64, string, error) {
	heteropim.ResetSimulationCache()
	start := time.Now()
	ex, err := batch.ExploreDSE(context.Background(), model, cands, dopts)
	if err != nil {
		return batch.Exploration{}, 0, "", err
	}
	secs := time.Since(start).Seconds()
	t := &report.Table{Columns: []string{"Model", "Winner", "Step", "Energy", "EDP"}}
	winnerRow(t, model, ex)
	return ex, secs, t.String(), nil
}

// dseGates are the in-tool acceptance thresholds per grid. The large
// grid is the interactive-DSE contract: at least a 10x aggregate
// wall-clock speedup over exhaustive search with byte-identical
// winners.
func dseGates(grid string) (minPrunedFrac, minSpeedup float64) {
	if grid == "large" {
		return 0.60, 10
	}
	return 0.30, 1.5
}

// writeDSEJSON times optimized vs exhaustive exploration per CNN model
// and writes the comparison to path. Gates live in-tool so CI only has
// to run the command: every model's winner must be identical (candidate
// and rendered row), the space-wide pruned fraction must reach
// minPrunedFrac, and the aggregate wall-clock speedup minSpeedup.
//
// The optimized run of each pair goes first: the exhaustive run then
// benefits from warm task-graph templates, so the measured speedup is
// conservative.
func writeDSEJSON(path, grid string, dopts batch.DSEOptions) error {
	cands, err := candidatesFor(grid)
	if err != nil {
		return err
	}
	minPrunedFrac, minSpeedup := dseGates(grid)
	rep := dseReport{
		Grid:       grid,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    heteropim.Parallelism(),
		Candidates: len(cands),
	}
	totalPruned, totalCands := 0, 0
	mismatch := false
	for _, model := range nn.CNNModelNames() {
		pru, pruS, pruOut, err := timeDSE(model, cands, dopts)
		if err != nil {
			return fmt.Errorf("%s (optimized): %w", model, err)
		}
		exh, exhS, exhOut, err := timeDSE(model, cands,
			batch.DSEOptions{Stacks: dopts.Stacks, AllReduce: dopts.AllReduce})
		if err != nil {
			return fmt.Errorf("%s (exhaustive): %w", model, err)
		}
		identical := pru.Winner.Candidate == exh.Winner.Candidate && pruOut == exhOut
		if !identical {
			mismatch = true
			fmt.Fprintf(os.Stderr, "pimdse: %s winner diverged: optimized %v vs exhaustive %v\n",
				model, pru.Winner.Candidate, exh.Winner.Candidate)
		}
		rep.Models = append(rep.Models, dseEntry{
			Model:            string(model),
			Winner:           pru.Winner.Candidate.String(),
			WinnerStepS:      float64(pru.Winner.Result.StepTime),
			Candidates:       len(cands),
			Pruned:           pru.Pruned,
			Simulated:        pru.Simulated,
			PrunedS:          pruS,
			ExhaustiveS:      exhS,
			Speedup:          exhS / pruS,
			Identical:        identical,
			SurrogateR2:      pru.SurrogateR2,
			SurrogateRank:    pru.SurrogateRank,
			SurrogateObs:     pru.SurrogateObs,
			SeededFromCache:  pru.SeededFromCache,
			DeltaCheckpoints: pru.DeltaCheckpoints,
			DeltaReplays:     pru.DeltaReplays,
			DeltaSharedEv:    pru.DeltaShared,
		})
		totalPruned += pru.Pruned
		totalCands += len(cands)
		rep.AggregatePrunedS += pruS
		rep.AggregateExhaustiveS += exhS
		fmt.Fprintf(os.Stderr, "pimdse: %s winner %v pruned %d/%d (%.2fs vs %.2fs, r2=%.3f, replays=%d)\n",
			model, pru.Winner.Candidate, pru.Pruned, len(cands), pruS, exhS, pru.SurrogateR2, pru.DeltaReplays)
	}
	rep.AggregateSpeedup = rep.AggregateExhaustiveS / rep.AggregatePrunedS
	rep.PrunedFraction = float64(totalPruned) / float64(totalCands)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pimdse: wrote %s (grid %s, pruned %.0f%%, speedup %.2fx)\n",
		path, grid, rep.PrunedFraction*100, rep.AggregateSpeedup)

	if mismatch {
		return fmt.Errorf("optimized exploration diverged from exhaustive (see %s)", path)
	}
	if rep.PrunedFraction < minPrunedFrac {
		return fmt.Errorf("pruned only %.0f%% of candidates, gate is %.0f%%",
			rep.PrunedFraction*100, minPrunedFrac*100)
	}
	if rep.AggregateSpeedup < minSpeedup {
		return fmt.Errorf("aggregate DSE speedup %.2fx below the %.2fx gate",
			rep.AggregateSpeedup, minSpeedup)
	}
	return nil
}
