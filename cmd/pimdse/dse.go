package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"heteropim"
	"heteropim/internal/batch"
	"heteropim/internal/energy"
	"heteropim/internal/hmc"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/report"
	"heteropim/internal/thermal"
)

// defaultCandidates builds the thermally-constrained candidate space:
// at each PLL point the unit ladder starts from the thermal model's
// maximum budget under the DRAM cap and halves down, crossed with the
// two programmable-processor counts the paper's area study considers.
func defaultCandidates() ([]batch.Candidate, error) {
	stack, err := hmc.New(hw.PaperStack(1))
	if err != nil {
		return nil, err
	}
	var cands []batch.Candidate
	for _, scale := range []float64{1, 2, 4} {
		maxUnits, err := thermal.MaxUnitsUnderCap(stack, thermal.DRAMThermalCap, scale)
		if err != nil {
			return nil, err
		}
		for _, units := range []int{maxUnits, maxUnits / 2, maxUnits / 4, maxUnits / 8} {
			if units < 1 {
				continue
			}
			for _, procs := range []int{1, 4} {
				cands = append(cands, batch.Candidate{
					Units: units, FreqScale: scale, ProgProcessors: procs,
				})
			}
		}
	}
	return cands, nil
}

// winnerRow renders one model's winning candidate. The rendering must
// depend only on the winner's simulated result so pruned and exhaustive
// runs emit byte-identical tables.
func winnerRow(t *report.Table, model nn.ModelName, ex batch.Exploration) {
	w := ex.Winner
	e := energy.Evaluate(w.Result)
	t.AddRow(string(model), w.Candidate.String(),
		report.Seconds(w.Result.StepTime), report.Joules(e.Dynamic),
		fmt.Sprintf("%.3g", e.EDP))
}

// runDSE explores the default candidate space for every CNN model and
// prints the winner table. Only the winner table goes to stdout —
// pruned/simulated counts go to stderr — so `pimdse -dse` and
// `pimdse -dse -exhaustive` stdout can be diffed byte for byte.
func runDSE(prune bool) error {
	cands, err := defaultCandidates()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Design-space exploration winners (thermally-capped space)",
		Columns: []string{"Model", "Winner", "Step", "Energy", "EDP"},
	}
	t.Notes = append(t.Notes,
		"winner = units/freq/processors minimizing step time under the full Hetero PIM runtime")
	for _, model := range nn.CNNModelNames() {
		ex, err := batch.ExploreDSE(context.Background(), model, cands, prune)
		if err != nil {
			return err
		}
		winnerRow(t, model, ex)
		fmt.Fprintf(os.Stderr, "dse: model=%s candidates=%d simulated=%d pruned=%d\n",
			model, len(cands), ex.Simulated, ex.Pruned)
	}
	fmt.Println(t.String())
	return nil
}

// dseEntry is one model's pruned-vs-exhaustive comparison.
type dseEntry struct {
	Model       string  `json:"model"`
	Winner      string  `json:"winner"`
	WinnerStepS float64 `json:"winner_step_s"`
	Candidates  int     `json:"candidates"`
	Pruned      int     `json:"pruned"`
	Simulated   int     `json:"simulated"`
	PrunedS     float64 `json:"pruned_s"`
	ExhaustiveS float64 `json:"exhaustive_s"`
	Speedup     float64 `json:"speedup"`
	// Identical reports whether the pruned run's winner and rendered
	// winner row matched the exhaustive run's byte for byte.
	Identical bool `json:"identical"`
}

// dseReport is the BENCH_dse.json shape.
type dseReport struct {
	GOMAXPROCS int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	Workers    int        `json:"workers"`
	Candidates int        `json:"candidates"`
	Models     []dseEntry `json:"models"`
	// Aggregates compare summed wall clocks and candidate counts across
	// all models; the gates apply to these.
	AggregatePrunedS     float64 `json:"aggregate_pruned_s"`
	AggregateExhaustiveS float64 `json:"aggregate_exhaustive_s"`
	AggregateSpeedup     float64 `json:"aggregate_speedup"`
	PrunedFraction       float64 `json:"pruned_fraction"`
}

// timeDSE runs one exploration on a cold simulation cache and renders
// the winner row, so the two modes can be compared byte for byte.
func timeDSE(model nn.ModelName, cands []batch.Candidate, prune bool) (batch.Exploration, float64, string, error) {
	heteropim.ResetSimulationCache()
	start := time.Now()
	ex, err := batch.ExploreDSE(context.Background(), model, cands, prune)
	if err != nil {
		return batch.Exploration{}, 0, "", err
	}
	secs := time.Since(start).Seconds()
	t := &report.Table{Columns: []string{"Model", "Winner", "Step", "Energy", "EDP"}}
	winnerRow(t, model, ex)
	return ex, secs, t.String(), nil
}

// writeDSEJSON times pruned vs exhaustive exploration per CNN model and
// writes the comparison to path. Gates live in-tool so CI only has to
// run the command: every model's winner must be identical (candidate
// and rendered row), the space-wide pruned fraction must reach
// minPrunedFrac, and the aggregate wall-clock speedup minSpeedup.
//
// The pruned run of each pair goes first: the exhaustive run then
// benefits from warm task-graph templates, so the measured speedup is
// conservative.
func writeDSEJSON(path string, minPrunedFrac, minSpeedup float64) error {
	cands, err := defaultCandidates()
	if err != nil {
		return err
	}
	rep := dseReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    heteropim.Parallelism(),
		Candidates: len(cands),
	}
	totalPruned, totalCands := 0, 0
	mismatch := false
	for _, model := range nn.CNNModelNames() {
		pru, pruS, pruOut, err := timeDSE(model, cands, true)
		if err != nil {
			return fmt.Errorf("%s (pruned): %w", model, err)
		}
		exh, exhS, exhOut, err := timeDSE(model, cands, false)
		if err != nil {
			return fmt.Errorf("%s (exhaustive): %w", model, err)
		}
		identical := pru.Winner.Candidate == exh.Winner.Candidate && pruOut == exhOut
		if !identical {
			mismatch = true
			fmt.Fprintf(os.Stderr, "pimdse: %s winner diverged: pruned %v vs exhaustive %v\n",
				model, pru.Winner.Candidate, exh.Winner.Candidate)
		}
		rep.Models = append(rep.Models, dseEntry{
			Model:       string(model),
			Winner:      pru.Winner.Candidate.String(),
			WinnerStepS: float64(pru.Winner.Result.StepTime),
			Candidates:  len(cands),
			Pruned:      pru.Pruned,
			Simulated:   pru.Simulated,
			PrunedS:     pruS,
			ExhaustiveS: exhS,
			Speedup:     exhS / pruS,
			Identical:   identical,
		})
		totalPruned += pru.Pruned
		totalCands += len(cands)
		rep.AggregatePrunedS += pruS
		rep.AggregateExhaustiveS += exhS
		fmt.Fprintf(os.Stderr, "pimdse: %s winner %v pruned %d/%d (%.2fs vs %.2fs)\n",
			model, pru.Winner.Candidate, pru.Pruned, len(cands), pruS, exhS)
	}
	rep.AggregateSpeedup = rep.AggregateExhaustiveS / rep.AggregatePrunedS
	rep.PrunedFraction = float64(totalPruned) / float64(totalCands)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "pimdse: wrote %s (pruned %.0f%%, speedup %.2fx)\n",
		path, rep.PrunedFraction*100, rep.AggregateSpeedup)

	if mismatch {
		return fmt.Errorf("pruned exploration diverged from exhaustive (see %s)", path)
	}
	if rep.PrunedFraction < minPrunedFrac {
		return fmt.Errorf("pruned only %.0f%% of candidates, gate is %.0f%%",
			rep.PrunedFraction*100, minPrunedFrac*100)
	}
	if rep.AggregateSpeedup < minSpeedup {
		return fmt.Errorf("aggregate DSE speedup %.2fx below the %.2fx gate",
			rep.AggregateSpeedup, minSpeedup)
	}
	return nil
}
