// Command pimdse runs the hardware design-space exploration that the
// paper performed with McPAT and HotSpot (Section IV-D): it derives the
// fixed-function unit budget from the thermal model, shows the
// placement policy's thermal margin, and sweeps the unit budget's
// performance effect on a chosen model.
//
// Usage:
//
//	pimdse                 # thermal exploration + VGG-19 unit sweep
//	pimdse -model AlexNet
//	pimdse -dse            # branch-and-bound winner search, all CNNs
//	pimdse -dse -exhaustive           # same space, no optimizations
//	pimdse -dse -grid large           # interactive-DSE grid (~400 candidates)
//	pimdse -dse -grid xl              # interactive-DSE at scale (>= 2000 candidates)
//	pimdse -dsejson BENCH_dse.json -grid large   # optimized-vs-exhaustive comparison
//	pimdse -dsejson BENCH_dse.json -grid xl      # optimized-vs-baseline + subsampled verification
//
// -surrogate, -delta, -deepdelta, -calibrate and -confidence (all default
// on) control the interactive-DSE optimizations: surrogate-guided
// candidate ordering, delta-simulation replay from per-group engine
// checkpoints (deep: from the deepest shared event boundary), the
// reference-calibrated admissible bound, and confidence-ordered rounds.
// Winners are identical under every flag combination — only the wall
// clock changes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"heteropim"
	"heteropim/internal/batch"
	"heteropim/internal/cliutil"
	"heteropim/internal/hmc"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/pim"
	"heteropim/internal/report"
	"heteropim/internal/runner"
	"heteropim/internal/thermal"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pimdse: %v\n", err)
	os.Exit(1)
}

func main() {
	model := flag.String("model", "VGG-19", "model for the unit-budget performance sweep")
	dse := flag.Bool("dse", false, "explore the thermally-capped candidate space for every CNN (branch-and-bound)")
	exhaustive := flag.Bool("exhaustive", false, "with -dse: simulate every candidate instead of pruning")
	grid := flag.String("grid", "paper", "candidate grid for -dse/-dsejson: paper, large, xl, or xl-verify")
	surrogateOn := flag.Bool("surrogate", true, "order candidates by a regression surrogate fitted on simulated results")
	deltaOn := flag.Bool("delta", true, "fork candidate groups from engine checkpoints instead of simulating from scratch")
	deepOn := flag.Bool("deepdelta", true, "fork from the deepest shared event boundary instead of the first fixed-pool grant")
	calibrateOn := flag.Bool("calibrate", true, "prune with the reference-calibrated admissible bound on top of the analytic one")
	confidenceOn := flag.Bool("confidence", true, "batch likely-prunable candidates last using the surrogate's residual spread")
	stacks := flag.Int("stacks", 1, "with -dse/-dsejson: evaluate candidates sharded across this many HMC stacks")
	allreduce := flag.String("allreduce", "ring", "gradient all-reduce schedule for -stacks > 1: ring|tree")
	dsejson := flag.String("dsejson", "", "write an optimized-vs-exhaustive DSE comparison to this file and exit")
	loadScenario := cliutil.ScenarioFlag(flag.CommandLine)
	applyCache := cliutil.CacheFlags(flag.CommandLine)
	startProfile := cliutil.ProfileFlags(flag.CommandLine)
	flag.Parse()

	applyCache()
	defer startProfile()()
	sched, err := nn.ParseAllReduceKind(*allreduce)
	if err != nil {
		fail(err)
	}

	// -scenario explores the candidate grid for the scenario's models,
	// under the scenario's (uniform) stacks/allreduce axes.
	if plan, err := loadScenario(); err != nil {
		fail(err)
	} else if plan != nil {
		models, planStacks, planSched, err := scenarioDSEInputs(plan)
		if err != nil {
			fail(err)
		}
		dopts := batch.DSEOptions{Prune: !*exhaustive, Surrogate: *surrogateOn && !*exhaustive,
			Delta: *deltaOn && !*exhaustive, DeepDelta: *deepOn && !*exhaustive,
			Calibrate: *calibrateOn && !*exhaustive, Confidence: *confidenceOn && !*exhaustive,
			Stacks: planStacks, AllReduce: planSched}
		if err := runDSE(*grid, models, dopts); err != nil {
			fail(err)
		}
		return
	}
	if *dsejson != "" {
		// The comparison's optimized leg always prunes; the optimization
		// flags choose what stacks on top. The baseline leg is built
		// in-tool: full exhaustive on the paper/large grids, the shallow
		// optimized mode plus a subsampled exhaustive verification on xl.
		dopts := batch.DSEOptions{Prune: true, Surrogate: *surrogateOn, Delta: *deltaOn,
			DeepDelta: *deepOn, Calibrate: *calibrateOn, Confidence: *confidenceOn,
			Stacks: *stacks, AllReduce: sched}
		if *grid == "xl" {
			if err := writeXLDSEJSON(*dsejson, dopts); err != nil {
				fail(err)
			}
			return
		}
		if err := writeDSEJSON(*dsejson, *grid, dopts); err != nil {
			fail(err)
		}
		return
	}
	dopts := batch.DSEOptions{Prune: !*exhaustive, Surrogate: *surrogateOn && !*exhaustive, Delta: *deltaOn && !*exhaustive,
		DeepDelta: *deepOn && !*exhaustive, Calibrate: *calibrateOn && !*exhaustive,
		Confidence: *confidenceOn && !*exhaustive,
		Stacks:     *stacks, AllReduce: sched}
	if *dse {
		if err := runDSE(*grid, nn.CNNModelNames(), dopts); err != nil {
			fail(err)
		}
		return
	}
	modelName, err := heteropim.ParseModel(*model)
	if err != nil {
		fail(err)
	}

	stack, err := hmc.New(hw.PaperStack(1))
	if err != nil {
		fail(err)
	}

	// 1. Thermal exploration: how many units fit under the DRAM cap?
	tt := &report.Table{
		Title:   "Thermal design-space exploration (HotSpot-substitute)",
		Columns: []string{"Freq", "Max units under 85C", "Paper budget"},
	}
	for _, scale := range []float64{1, 2, 4} {
		units, err := thermal.MaxUnitsUnderCap(stack, thermal.DRAMThermalCap, scale)
		if err != nil {
			fail(err)
		}
		note := ""
		if scale == 1 {
			note = "444"
		}
		tt.AddRow(fmt.Sprintf("%gx", scale), fmt.Sprintf("%d", units), note)
	}
	tt.Notes = append(tt.Notes,
		"at 1x the cap reproduces the paper's 444-unit budget; the 2x/4x PLL points need derating or better cooling")
	fmt.Println(tt.String())

	// 2. Placement policy margin.
	spec := hw.PaperFixedPIM(hw.PaperFixedUnits)
	thermalPl, err := pim.ThermalPlacement(stack, hw.PaperFixedUnits)
	if err != nil {
		fail(err)
	}
	uniformPl, err := pim.UniformPlacement(stack, hw.PaperFixedUnits)
	if err != nil {
		fail(err)
	}
	tThermal, err := thermal.PlacementMaxTemp(stack, thermalPl, spec, 1)
	if err != nil {
		fail(err)
	}
	tUniform, err := thermal.PlacementMaxTemp(stack, uniformPl, spec, 1)
	if err != nil {
		fail(err)
	}
	pt := &report.Table{
		Title:   "Placement policy thermal margin (444 units, 1x)",
		Columns: []string{"Placement", "Hottest bank"},
	}
	pt.AddRow("thermal-aware (paper)", fmt.Sprintf("%.1fC", tThermal))
	pt.AddRow("uniform", fmt.Sprintf("%.1fC", tUniform))
	fmt.Println(pt.String())

	// 3. Performance effect of the unit budget.
	st := &report.Table{
		Title:   fmt.Sprintf("Unit-budget performance sweep (%s)", modelName),
		Columns: []string{"Units", "Step", "Energy", "EDP", "Util"},
	}
	base := heteropim.DefaultHardware(heteropim.ConfigHeteroPIM)
	budgets := []int{111, 222, 444, 888}
	results, err := runner.Map(context.Background(), len(budgets), 0,
		func(_ context.Context, i int) (heteropim.Result, error) {
			hc, err := base.WithFixedUnits(budgets[i])
			if err != nil {
				return heteropim.Result{}, err
			}
			return heteropim.RunOnHardware(hc, modelName)
		})
	if err != nil {
		fail(err)
	}
	for i, units := range budgets {
		r := results[i]
		st.AddRow(fmt.Sprintf("%d", units),
			report.Seconds(r.StepTime), report.Joules(r.Energy),
			fmt.Sprintf("%.3g", r.EDP), report.Percent(r.FixedUtilization))
	}
	fmt.Println(st.String())
	cs := heteropim.SimulationCacheStats()
	fmt.Printf("simcache: hits=%d misses=%d\n", cs.Hits, cs.Misses)
}
