// Command pimtrain simulates steady-state NN training of one workload
// model on one platform configuration and prints the step time, the
// Fig. 8 breakdown, energy, and PIM utilization.
//
// Usage:
//
//	pimtrain -model VGG-19 -config hetero -freq 2
//	pimtrain -model ResNet-50 -config all
//	pimtrain -scenario grid.json            # declarative scenario file
//	pimtrain -model AlexNet -schedtrace     # dump scheduling decisions
//	pimtrain -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"heteropim"
	"heteropim/internal/cliutil"
	"heteropim/internal/core"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/report"
	"heteropim/internal/trace"
)

func fail(err error) {
	fmt.Fprintf(os.Stderr, "pimtrain: %v\n", err)
	os.Exit(1)
}

// runExplain prints where every op type landed and where the joules
// went for one Hetero PIM run.
func runExplain(model string, batch int, freq float64) {
	g, err := nn.BuildWithBatch(nn.ModelName(model), batch)
	if err != nil {
		fail(err)
	}
	opts := core.HeteroOptions()
	census := &core.PlacementCensus{Fixed: map[string]int{}, Prog: map[string]int{}, CPU: map[string]int{}}
	opts.Census = census
	r, err := core.RunPIM(g, hw.PaperConfigScaled(hw.ConfigHeteroPIM, freq), opts)
	if err != nil {
		fail(err)
	}
	ct := &report.Table{
		Title:   fmt.Sprintf("Placement census: %s on Hetero PIM (%d steps)", model, r.Steps),
		Columns: []string{"Op type", "Fixed", "Prog", "CPU"},
	}
	types := map[string]bool{}
	for t := range census.Fixed {
		types[t] = true
	}
	for t := range census.Prog {
		types[t] = true
	}
	for t := range census.CPU {
		types[t] = true
	}
	names := make([]string, 0, len(types))
	for t := range types {
		names = append(names, t)
	}
	sort.Strings(names)
	for _, t := range names {
		ct.AddRow(t,
			fmt.Sprintf("%d", census.Fixed[t]/r.Steps),
			fmt.Sprintf("%d", census.Prog[t]/r.Steps),
			fmt.Sprintf("%d", census.CPU[t]/r.Steps))
	}
	fmt.Println(ct.String())

	rep := heteropim.EnergyOf(r)
	et := &report.Table{
		Title:   "Energy itemization per step",
		Columns: []string{"Component", "Joules", "Share"},
	}
	parts := []struct {
		name string
		j    float64
	}{
		{"Host CPU", rep.Parts.CPU},
		{"Programmable PIM", rep.Parts.ProgPIM},
		{"Fixed-function PIMs", rep.Parts.FixedPIM},
		{"DRAM background", rep.Parts.DRAM},
		{"Data movement", rep.Parts.Traffic},
	}
	for _, p := range parts {
		et.AddRow(p.name, report.Joules(p.j), report.Percent(p.j/rep.Dynamic))
	}
	et.AddRow("TOTAL", report.Joules(rep.Dynamic), "100.0%")
	fmt.Println(et.String())
}

func main() {
	model := flag.String("model", "VGG-19", "workload model (see -list)")
	config := flag.String("config", "hetero", "platform: cpu|gpu|progr|fixed|hetero|all")
	freq := flag.Float64("freq", 1, "PIM/stack frequency scale (1, 2 or 4)")
	batch := flag.Int("batch", 0, "batch size override (0 = the paper's default)")
	stacks := flag.Int("stacks", 1, "HMC stacks to shard the minibatch across (data-parallel training; PIM configs only)")
	allreduce := flag.String("allreduce", "ring", "gradient all-reduce schedule for -stacks > 1: ring|tree")
	schedTrace := flag.Bool("schedtrace", false, "print every Hetero PIM scheduling decision to stderr")
	fromTrace := flag.String("fromtrace", "", "replay an instruction trace file (pimprof -trace output) instead of building a model")
	explain := flag.Bool("explain", false, "print the Hetero PIM placement census and energy itemization")
	metricsOut := flag.String("metrics", "", "run instrumented and write the metrics JSON dump to this file (\"-\" for stdout)")
	advise := flag.Bool("advise", false, "run instrumented and print the tfprof-style advisor reading")
	loadScenario := cliutil.ScenarioFlag(flag.CommandLine)
	applyCache := cliutil.CacheFlags(flag.CommandLine)
	startProfile := cliutil.ProfileFlags(flag.CommandLine)
	list := flag.Bool("list", false, "list models and configurations")
	flag.Parse()

	applyCache()
	defer startProfile()()

	if plan, err := loadScenario(); err != nil {
		fail(err)
	} else if plan != nil {
		runScenario(plan)
		return
	}

	if *fromTrace != "" {
		f, err := os.Open(*fromTrace)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		recs, err := trace.Read(f)
		if err != nil {
			fail(err)
		}
		g, err := trace.ToGraph(*fromTrace, recs)
		if err != nil {
			fail(err)
		}
		r, err := core.RunPIM(g, hw.PaperConfigScaled(hw.ConfigHeteroPIM, *freq), core.HeteroOptions())
		if err != nil {
			fail(err)
		}
		fmt.Printf("replayed %d ops: step=%s offloaded=%d util=%s\n",
			len(g.Ops), report.Seconds(r.StepTime), r.OffloadedOps,
			report.Percent(r.FixedUtilization))
		return
	}

	if *list {
		fmt.Println("models:")
		for _, m := range heteropim.AllModels() {
			fmt.Println("  ", m)
		}
		fmt.Println("configurations: cpu, gpu, progr, fixed, hetero, all")
		return
	}

	// Every remaining path consumes the model; resolve it once so an
	// unknown name fails fast with the valid list.
	modelName, err := heteropim.ParseModel(*model)
	if err != nil {
		fail(err)
	}

	if *schedTrace {
		g, err := nn.BuildWithBatch(modelName, *batch)
		if err != nil {
			fail(err)
		}
		opts := core.HeteroOptions()
		opts.Trace = os.Stderr
		opts.Steps = 1
		if _, err := core.RunPIM(g, hw.PaperConfigScaled(hw.ConfigHeteroPIM, *freq), opts); err != nil {
			fail(err)
		}
		return
	}

	if *explain {
		runExplain(string(modelName), *batch, *freq)
		return
	}

	var configs []heteropim.Config
	if strings.EqualFold(*config, "all") {
		configs = heteropim.Configs()
	} else {
		kind, err := heteropim.ParseConfig(*config)
		if err != nil {
			fail(err)
		}
		configs = []heteropim.Config{kind}
	}

	// -metrics / -advise run a single configuration instrumented.
	if *metricsOut != "" || *advise {
		if strings.EqualFold(*config, "all") {
			fail(fmt.Errorf("-metrics/-advise need a single -config, not \"all\""))
		}
		_, m, err := heteropim.RunInstrumentedScaled(configs[0], modelName, *freq)
		if err != nil {
			fail(err)
		}
		if *metricsOut != "" {
			w := os.Stdout
			if *metricsOut != "-" {
				f, err := os.Create(*metricsOut)
				if err != nil {
					fail(err)
				}
				defer f.Close()
				w = f
			}
			if err := m.WriteJSON(w); err != nil {
				fail(err)
			}
		}
		if *advise {
			fmt.Println(m.Advice())
		}
		return
	}

	// The table path is a one-group scenario plan: build the same
	// BatchCells a scenario file would compile and fan them out through
	// BatchRun (bit-identical to the per-cell Run* helpers).
	cells := make([]heteropim.BatchCell, len(configs))
	for i, cfg := range configs {
		bc := heteropim.BatchCell{Config: cfg, Model: modelName}
		switch {
		case *stacks > 1:
			bc.FreqScale = *freq
			bc.BatchSize = *batch
			bc.Stacks = *stacks
			bc.AllReduce = *allreduce
		case *batch > 0:
			// freq is ignored with -batch, as RunWithBatch always did.
			bc.BatchSize = *batch
		default:
			bc.FreqScale = *freq
		}
		cells[i] = bc
	}
	results, err := heteropim.BatchRun(cells)
	if err != nil {
		fail(err)
	}
	printTable(fmt.Sprintf("%s at %gx stack frequency", modelName, *freq), results)
	st := heteropim.SimulationCacheStats()
	fmt.Printf("simcache: hits=%d misses=%d\n", st.Hits, st.Misses)
}

// printTable renders one result table plus the multistack detail lines
// beneath it — shared by the flag path and the scenario path.
func printTable(title string, results []heteropim.Result) {
	t := &report.Table{
		Title: title,
		Columns: []string{"Config", "Step", "Operation", "DataMove", "Sync",
			"Energy", "Power", "Util", "Offloaded"},
	}
	for _, r := range results {
		t.AddRow(r.Config,
			report.Seconds(r.StepTime),
			report.Seconds(r.Breakdown.Operation),
			report.Seconds(r.Breakdown.DataMovement),
			report.Seconds(r.Breakdown.Sync),
			report.Joules(r.Energy),
			report.Watts(r.AvgPower),
			report.Percent(r.FixedUtilization),
			fmt.Sprintf("%d", r.OffloadedOps))
	}
	fmt.Print(t.String())
	for _, r := range results {
		if r.Stacks > 1 {
			line := fmt.Sprintf("multistack: %s: stacks=%d allreduce=%s stackstep=%s arstep=%s",
				r.Config, r.Stacks, r.AllReduce,
				report.Seconds(r.StackStepTime), report.Seconds(r.AllReduceTime))
			if r.StackMaxTemp > 0 {
				line += fmt.Sprintf(" stacktemp=%.1fC", r.StackMaxTemp)
			}
			fmt.Println(line)
		}
	}
}

// runScenario renders a compiled scenario plan as pimtrain tables: one
// table per (model, frequency) group in first-appearance order, with
// one row per cell, then the shared simcache line.
func runScenario(plan *heteropim.ScenarioPlan) {
	results, err := heteropim.BatchRun(plan.Cells)
	if err != nil {
		fail(err)
	}
	type groupKey struct {
		model heteropim.Model
		freq  float64
	}
	keyOf := func(c heteropim.BatchCell) groupKey {
		k := groupKey{model: c.Model, freq: c.FreqScale}
		if k.freq == 0 {
			k.freq = 1
		}
		return k
	}
	var order []groupKey
	grouped := map[groupKey][]heteropim.Result{}
	for i, c := range plan.Cells {
		k := keyOf(c)
		if _, ok := grouped[k]; !ok {
			order = append(order, k)
		}
		grouped[k] = append(grouped[k], results[i])
	}
	for _, k := range order {
		printTable(fmt.Sprintf("%s at %gx stack frequency", k.model, k.freq), grouped[k])
	}
	st := heteropim.SimulationCacheStats()
	fmt.Printf("simcache: hits=%d misses=%d\n", st.Hits, st.Misses)
}
