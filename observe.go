package heteropim

import (
	"io"

	"heteropim/internal/core"
	"heteropim/internal/hw"
	"heteropim/internal/metrics"
	"heteropim/internal/nn"
)

// Metrics holds the observability data of one instrumented run: the
// per-device timeline and the metrics registry (counters, gauges,
// histograms). It is safe for concurrent use.
type Metrics struct {
	c *metrics.Collector
}

// WriteTimeline writes the run's timeline in Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each
// device (cpu, gpu, prog, fixed, ...) gets its own track; overlapping
// spans on a multi-slot device split into numbered lanes; queue depths
// and busy-unit gauges become counter tracks.
func (m *Metrics) WriteTimeline(w io.Writer) error {
	return m.c.WriteChromeTrace(w)
}

// WriteJSON writes the machine-readable metrics dump: makespan,
// per-track busy time and share, top operations, and every counter,
// gauge series and histogram the run recorded.
func (m *Metrics) WriteJSON(w io.Writer) error {
	return m.c.Snapshot().WriteJSON(w)
}

// Advice renders the tfprof-style advisor reading: the bottleneck
// device, the most underutilized device, and the operation most
// responsible for time on the bottleneck.
func (m *Metrics) Advice() string {
	return metrics.Advise(m.c.Snapshot()).String()
}

// NewMetrics returns an empty Metrics ready to receive a run via
// RunObserved. Live readers (a serving daemon streaming progress, a
// dashboard) can poll CounterValue while the run is still executing.
func NewMetrics() *Metrics {
	return &Metrics{c: metrics.NewCollector()}
}

// CounterValue reads one registry counter (0 when absent). Counters of
// an in-flight RunObserved grow monotonically, so polling this is a
// cheap progress signal ("sim.events" counts processed engine events).
func (m *Metrics) CounterValue(name string) float64 {
	return m.c.Registry().CounterValue(name)
}

// RunObserved is RunScaled with the observability layer recording into
// the caller-supplied Metrics, which may be observed concurrently while
// the run executes. The Result is bit-identical to an uninstrumented
// Run. Instrumented runs always execute live (never the result cache):
// their purpose is the side effects.
func RunObserved(config Config, model Model, freqScale float64, m *Metrics) (Result, error) {
	g, err := nn.Build(model)
	if err != nil {
		return Result{}, err
	}
	r, err := core.RunOnWithCollector(config, g, hw.PaperConfigScaled(config, freqScale), m.c)
	if err != nil {
		return Result{}, err
	}
	return wrap(r), nil
}

// RunInstrumented is Run with the observability layer attached. The
// Result is bit-identical to an uninstrumented Run; the Metrics carry
// the run's per-device timeline and metrics registry.
func RunInstrumented(config Config, model Model) (Result, *Metrics, error) {
	return RunInstrumentedScaled(config, model, 1)
}

// RunInstrumentedScaled is RunInstrumented at a PIM/stack frequency
// multiplier (cf. RunScaled).
func RunInstrumentedScaled(config Config, model Model, freqScale float64) (Result, *Metrics, error) {
	m := NewMetrics()
	r, err := RunObserved(config, model, freqScale, m)
	if err != nil {
		return Result{}, nil, err
	}
	return r, m, nil
}

// ConfigNames lists the flag-style platform names ParseConfig accepts,
// sorted.
func ConfigNames() []string { return hw.ConfigFlagNames() }

// ParseConfig resolves a flag-style platform name (case-insensitive:
// cpu, gpu, progr, fixed, hetero) to its configuration kind. The error
// for an unknown name lists the valid ones. The scenario compiler and
// the serving POST body validate through the same table
// (hw.ParseConfigFlag), so every front door accepts the same spellings.
func ParseConfig(name string) (Config, error) { return hw.ParseConfigFlag(name) }

// ConfigName is the inverse of ParseConfig: the canonical flag-style
// name of a configuration ("" for an unknown kind). The serving layer
// uses it to render compiled scenario cells as wire requests.
func ConfigName(c Config) string { return hw.ConfigFlagName(c) }

// ModelNames lists the canonical model names ParseModel accepts,
// sorted (cf. ConfigNames).
func ModelNames() []string { return nn.ModelFlagNames() }

// ParseModel resolves a workload model name (case-insensitive:
// "vgg-19" and "VGG-19" both work) to its canonical Model. The error
// for an unknown name lists the valid ones (cf. ParseConfig).
func ParseModel(name string) (Model, error) { return nn.ParseModelName(name) }
