package hmc

import (
	"testing"
	"testing/quick"
)

func TestDecodeInterleavesSequentialBlocks(t *testing.T) {
	m := DefaultMapping()
	// Consecutive 32B blocks land on consecutive banks.
	for i := 0; i < 64; i++ {
		c, err := m.Decode(uint64(i * m.BlockBytes))
		if err != nil {
			t.Fatal(err)
		}
		if c.Bank != i%32 {
			t.Fatalf("block %d on bank %d, want %d", i, c.Bank, i%32)
		}
		if i < 32 && (c.Row != 0 || c.Col != 0) {
			t.Fatalf("block %d at row %d col %d, want 0/0", i, c.Row, c.Col)
		}
	}
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	m := DefaultMapping()
	f := func(raw uint32) bool {
		addr := uint64(raw) &^ uint64(m.BlockBytes-1) // block aligned
		c, err := m.Decode(addr)
		if err != nil {
			return false
		}
		back, err := m.Encode(c)
		if err != nil {
			return false
		}
		return back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBanksTouched(t *testing.T) {
	m := DefaultMapping()
	// One block: one bank.
	if n, _ := m.BanksTouched(0, 32); n != 1 {
		t.Fatalf("one block touches %d banks", n)
	}
	// A full stripe: all 32.
	if n, _ := m.BanksTouched(0, 32*32); n != 32 {
		t.Fatalf("full stripe touches %d banks", n)
	}
	// A large tensor: all banks regardless of alignment.
	if n, _ := m.BanksTouched(12345, 1<<20); n != 32 {
		t.Fatalf("1MB touches %d banks", n)
	}
	if n, _ := m.BanksTouched(0, 0); n != 0 {
		t.Fatalf("zero bytes touches %d banks", n)
	}
	// 4 blocks: 4 banks.
	if n, _ := m.BanksTouched(64, 4*32); n != 4 {
		t.Fatalf("4 blocks touch %d banks", n)
	}
}

func TestMappingValidate(t *testing.T) {
	bad := []AddressMapping{
		{BlockBytes: 0, Banks: 32, RowBytes: 8192},
		{BlockBytes: 33, Banks: 32, RowBytes: 8192},
		{BlockBytes: 32, Banks: 31, RowBytes: 8192},
		{BlockBytes: 32, Banks: 32, RowBytes: 16},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("mapping %d must fail validation", i)
		}
		if _, err := m.Decode(0); err == nil {
			t.Errorf("mapping %d Decode must fail", i)
		}
	}
	if err := DefaultMapping().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsBadCoords(t *testing.T) {
	m := DefaultMapping()
	for _, c := range []Coord{
		{Bank: -1}, {Bank: 32}, {Row: -1}, {Col: -1}, {Col: 8192 / 32},
	} {
		if _, err := m.Encode(c); err == nil {
			t.Errorf("coord %+v must be rejected", c)
		}
	}
}

func TestRowCrossing(t *testing.T) {
	m := DefaultMapping()
	// Block index banks*blocksPerRow lands on row 1 of bank 0.
	blocksPerRow := m.RowBytes / m.BlockBytes
	addr := uint64(m.Banks) * uint64(blocksPerRow) * uint64(m.BlockBytes)
	c, err := m.Decode(addr)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bank != 0 || c.Row != 1 || c.Col != 0 {
		t.Fatalf("coord = %+v, want bank0/row1/col0", c)
	}
}
