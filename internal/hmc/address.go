package hmc

import "fmt"

// AddressMapping decodes physical addresses into (bank, row, column)
// coordinates, HMC-style: the low-order block bits select the byte
// within a 32-byte access granule, the next bits interleave consecutive
// blocks across banks (so streaming accesses spread over the stack),
// and the remaining bits select column and row within a bank.
type AddressMapping struct {
	// BlockBytes is the access granule (HMC 2.0: 32-byte minimum).
	BlockBytes int
	// Banks must be a power of two for bit-sliced interleaving.
	Banks int
	// RowBytes is the DRAM row (page) size within one bank.
	RowBytes int
}

// DefaultMapping returns the mapping for the paper's 32-bank stack.
func DefaultMapping() AddressMapping {
	return AddressMapping{BlockBytes: 32, Banks: 32, RowBytes: 8192}
}

// Validate checks the power-of-two constraints.
func (m AddressMapping) Validate() error {
	for _, v := range []struct {
		name string
		val  int
	}{{"block bytes", m.BlockBytes}, {"banks", m.Banks}, {"row bytes", m.RowBytes}} {
		if v.val <= 0 || v.val&(v.val-1) != 0 {
			return fmt.Errorf("hmc: %s (%d) must be a positive power of two", v.name, v.val)
		}
	}
	if m.RowBytes < m.BlockBytes {
		return fmt.Errorf("hmc: row (%dB) smaller than a block (%dB)", m.RowBytes, m.BlockBytes)
	}
	return nil
}

// Coord is a decoded DRAM coordinate.
type Coord struct {
	Bank, Row, Col int
}

// Decode splits a physical address.
func (m AddressMapping) Decode(addr uint64) (Coord, error) {
	if err := m.Validate(); err != nil {
		return Coord{}, err
	}
	block := addr / uint64(m.BlockBytes)
	bank := int(block % uint64(m.Banks))
	inBank := block / uint64(m.Banks)
	blocksPerRow := uint64(m.RowBytes / m.BlockBytes)
	col := int(inBank % blocksPerRow)
	row := int(inBank / blocksPerRow)
	return Coord{Bank: bank, Row: row, Col: col}, nil
}

// Encode is the inverse of Decode (block-aligned address).
func (m AddressMapping) Encode(c Coord) (uint64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if c.Bank < 0 || c.Bank >= m.Banks || c.Row < 0 || c.Col < 0 {
		return 0, fmt.Errorf("hmc: bad coordinate %+v", c)
	}
	blocksPerRow := m.RowBytes / m.BlockBytes
	if c.Col >= blocksPerRow {
		return 0, fmt.Errorf("hmc: column %d beyond row (%d blocks)", c.Col, blocksPerRow)
	}
	inBank := uint64(c.Row)*uint64(blocksPerRow) + uint64(c.Col)
	block := inBank*uint64(m.Banks) + uint64(c.Bank)
	return block * uint64(m.BlockBytes), nil
}

// BanksTouched returns how many distinct banks a contiguous [addr,
// addr+bytes) range touches — the parallelism a streaming fixed-function
// kernel can exploit.
func (m AddressMapping) BanksTouched(addr, bytes uint64) (int, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if bytes == 0 {
		return 0, nil
	}
	first := addr / uint64(m.BlockBytes)
	last := (addr + bytes - 1) / uint64(m.BlockBytes)
	blocks := last - first + 1
	if blocks >= uint64(m.Banks) {
		return m.Banks, nil
	}
	seen := map[int]bool{}
	for b := first; b <= last; b++ {
		seen[int(b%uint64(m.Banks))] = true
	}
	return len(seen), nil
}
