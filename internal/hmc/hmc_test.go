package hmc

import (
	"math"
	"testing"
	"testing/quick"

	"heteropim/internal/hw"
)

func newPaperStack(t *testing.T) *Stack {
	t.Helper()
	s, err := New(hw.PaperStack(1))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsBadGeometry(t *testing.T) {
	spec := hw.PaperStack(1)
	spec.Banks = 0
	if _, err := New(spec); err == nil {
		t.Error("zero banks: want error")
	}
	spec = hw.PaperStack(1)
	spec.Rows = 5
	if _, err := New(spec); err == nil {
		t.Error("mismatched grid: want error")
	}
}

func TestClassCountsOn8x4Grid(t *testing.T) {
	s := newPaperStack(t)
	corner, edge, center := s.ClassCounts()
	// 4x8 grid: 4 corners, 2*(8-2)+2*(4-2)=16 edges, rest center.
	if corner != 4 || edge != 16 || center != 12 {
		t.Fatalf("class counts = (%d,%d,%d), want (4,16,12)", corner, edge, center)
	}
}

func TestClassOfSpecificBanks(t *testing.T) {
	s := newPaperStack(t) // 4 rows x 8 cols, row-major
	cases := map[int]BankClass{
		0:  Corner, // (0,0)
		7:  Corner, // (0,7)
		24: Corner, // (3,0)
		31: Corner, // (3,7)
		1:  Edge,   // (0,1)
		8:  Edge,   // (1,0)
		15: Edge,   // (1,7)
		9:  Center, // (1,1)
		18: Center, // (2,2)
	}
	for bank, want := range cases {
		if got := s.ClassOf(bank); got != want {
			t.Errorf("ClassOf(%d) = %v, want %v", bank, got, want)
		}
	}
}

func TestBankClassString(t *testing.T) {
	if Center.String() != "center" || Edge.String() != "edge" || Corner.String() != "corner" {
		t.Fatal("BankClass.String mismatch")
	}
	if BankClass(9).String() != "unknown" {
		t.Fatal("unknown class should stringify as unknown")
	}
}

func TestAccessAccounting(t *testing.T) {
	s := newPaperStack(t)
	s.Access(3, 1000, HostPath)
	s.Access(3, 500, PIMPath)
	s.Access(35, 200, PIMPath) // 35 mod 32 = 3
	if got := s.HostBytes(); got != 1000 {
		t.Errorf("host bytes = %g, want 1000", got)
	}
	if got := s.PIMBytes(); got != 700 {
		t.Errorf("pim bytes = %g, want 700", got)
	}
	b := s.BankStatsOf(3)
	if b.HostBytes != 1000 || b.PIMBytes != 700 {
		t.Errorf("bank 3 stats = %+v", b)
	}
	s.Access(0, -50, HostPath) // negative clamps to zero
	if got := s.HostBytes(); got != 1000 {
		t.Errorf("negative access changed counters: %g", got)
	}
	s.Reset()
	if s.HostBytes() != 0 || s.PIMBytes() != 0 || s.BankStatsOf(3).HostBytes != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestTransferTimes(t *testing.T) {
	s := newPaperStack(t)
	bytes := 320e9 // one second of internal bandwidth at 1x
	if got := s.PIMTransferTime(bytes); math.Abs(got-1) > 1e-9 {
		t.Errorf("PIM transfer time = %g, want 1", got)
	}
	if got := s.HostTransferTime(120e9); math.Abs(got-1) > 1e-9 {
		t.Errorf("host transfer time = %g, want 1", got)
	}
	if s.PIMTransferTime(0) != 0 || s.HostTransferTime(-4) != 0 {
		t.Error("degenerate byte volumes must cost zero time")
	}
}

func TestTransferTimeDoesNotScaleWithPLL(t *testing.T) {
	// The Section VI-D PLL scales PIM logic, not the DRAM arrays: both
	// transfer paths are array/link limited and frequency independent.
	s1, _ := New(hw.PaperStack(1))
	s4, _ := New(hw.PaperStack(4))
	b := 1e9
	if s1.PIMTransferTime(b) != s4.PIMTransferTime(b) {
		t.Fatal("PIM transfer time must stay array-limited under the PLL")
	}
	if s1.HostTransferTime(b) != s4.HostTransferTime(b) {
		t.Fatal("host transfer time must not scale with the stack PLL")
	}
}

func TestAccessEnergyAsymmetry(t *testing.T) {
	s := newPaperStack(t)
	bytes := 1e6
	host := s.AccessEnergy(bytes, HostPath)
	pim := s.AccessEnergy(bytes, PIMPath)
	if host <= pim {
		t.Fatalf("host access energy (%g) must exceed PIM access energy (%g)", host, pim)
	}
	spec := s.Spec
	wantHost := bytes * (spec.RowAccessEnergyPerByte + spec.LinkEnergyPerByte)
	wantPIM := bytes * (spec.RowAccessEnergyPerByte + spec.TSVEnergyPerByte)
	if math.Abs(host-wantHost) > 1e-15 || math.Abs(pim-wantPIM) > 1e-15 {
		t.Fatalf("energy = (%g,%g), want (%g,%g)", host, pim, wantHost, wantPIM)
	}
	if s.AccessEnergy(0, HostPath) != 0 {
		t.Error("zero bytes must cost zero energy")
	}
}

func TestBankForBlockQuick(t *testing.T) {
	s := newPaperStack(t)
	f := func(block int32) bool {
		b := s.BankForBlock(int(block))
		return b >= 0 && b < s.Banks()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccessConservationQuick(t *testing.T) {
	// Property: total traffic equals the sum over banks, for any access
	// pattern.
	f := func(banks []uint8, vols []uint16) bool {
		s, err := New(hw.PaperStack(1))
		if err != nil {
			return false
		}
		n := len(banks)
		if len(vols) < n {
			n = len(vols)
		}
		var want float64
		for i := 0; i < n; i++ {
			v := float64(vols[i])
			path := HostPath
			if banks[i]%2 == 0 {
				path = PIMPath
			}
			s.Access(int(banks[i]), v, path)
			want += v
		}
		var got float64
		for i := 0; i < s.Banks(); i++ {
			st := s.BankStatsOf(i)
			got += st.HostBytes + st.PIMBytes
		}
		return math.Abs(got-want) < 1e-6 &&
			math.Abs((s.HostBytes()+s.PIMBytes())-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
