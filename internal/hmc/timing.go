package hmc

import (
	"fmt"

	"heteropim/internal/hw"
)

// Timing holds the DRAM bank timing parameters in stack-clock cycles
// (HMC 2.0-class values at 312.5 MHz; Section V-A adopts the HMC 2.0
// timing parameters). The trace-driven simulator works with aggregate
// bandwidths; this finer model backs latency-sensitive questions (how
// expensive is a PIM-PIM synchronization through a DRAM variable, what
// does a row-buffer-hostile access pattern cost) and the unit tests
// that pin the constants.
type Timing struct {
	// TRCD is ACTIVATE-to-READ/WRITE delay.
	TRCD int
	// TRP is PRECHARGE time.
	TRP int
	// TCL is the CAS (read) latency.
	TCL int
	// TRAS is the minimum ACTIVATE-to-PRECHARGE interval.
	TRAS int
	// TWR is the write-recovery time.
	TWR int
	// TREFI is the average refresh interval; TRFC the refresh cycle.
	TREFI, TRFC int
	// BurstCycles is the data-burst length on the bank's TSV lane.
	BurstCycles int
}

// HMC2Timing returns HMC 2.0-class bank timings at the 312.5 MHz stack
// clock.
func HMC2Timing() Timing {
	return Timing{
		TRCD:        5,
		TRP:         5,
		TCL:         5,
		TRAS:        11,
		TWR:         6,
		TREFI:       2437, // 7.8us at 312.5 MHz
		TRFC:        82,   // 260ns
		BurstCycles: 4,
	}
}

// AccessKind distinguishes reads and writes.
type AccessKind int

// Read and Write access kinds.
const (
	Read AccessKind = iota
	Write
)

// RowState tracks one bank's row buffer.
type rowState struct {
	open    bool
	row     int
	openAt  int64 // cycle of the ACTIVATE
	readyAt int64 // cycle the bank is next usable
}

// BankTimingModel simulates a single bank's row-buffer behaviour under
// an open-row policy with periodic refresh.
type BankTimingModel struct {
	T Timing

	state       rowState
	nextRefresh int64

	// Stats.
	Accesses  int
	RowHits   int
	RowMisses int // empty-row activates
	Conflicts int // row-buffer conflicts (precharge + activate)
	Refreshes int
	totalLat  int64
}

// NewBankTimingModel builds a bank model.
func NewBankTimingModel(t Timing) *BankTimingModel {
	return &BankTimingModel{T: t, nextRefresh: int64(t.TREFI)}
}

// Access issues a read or write to a row at the given cycle and returns
// the cycle at which the data burst completes.
func (b *BankTimingModel) Access(row int, kind AccessKind, at int64) (done int64, err error) {
	if row < 0 {
		return 0, fmt.Errorf("hmc: negative row %d", row)
	}
	if at < 0 {
		return 0, fmt.Errorf("hmc: negative issue cycle %d", at)
	}
	t := b.T
	cycle := at
	if cycle < b.state.readyAt {
		cycle = b.state.readyAt
	}
	// Refresh steals the bank when due.
	for cycle >= b.nextRefresh {
		start := b.nextRefresh
		if cycle < start {
			cycle = start
		}
		cycle = max64(cycle, start) + int64(t.TRFC)
		b.nextRefresh += int64(t.TREFI)
		b.state.open = false
		b.Refreshes++
	}
	switch {
	case b.state.open && b.state.row == row:
		b.RowHits++
	case !b.state.open:
		// Row closed: ACTIVATE then access.
		b.RowMisses++
		cycle += int64(t.TRCD)
		b.state.open = true
		b.state.row = row
		b.state.openAt = cycle - int64(t.TRCD)
	default:
		// Conflict: respect tRAS, PRECHARGE, ACTIVATE.
		b.Conflicts++
		earliestPre := b.state.openAt + int64(t.TRAS)
		if cycle < earliestPre {
			cycle = earliestPre
		}
		cycle += int64(t.TRP) + int64(t.TRCD)
		b.state.row = row
		b.state.openAt = cycle - int64(t.TRCD)
	}
	// Column access + burst.
	switch kind {
	case Read:
		cycle += int64(t.TCL) + int64(t.BurstCycles)
	case Write:
		cycle += int64(t.TWR) + int64(t.BurstCycles)
	default:
		return 0, fmt.Errorf("hmc: bad access kind %d", kind)
	}
	b.state.readyAt = cycle
	b.Accesses++
	b.totalLat += cycle - at
	return cycle, nil
}

// AverageLatencyCycles returns the mean issue-to-burst-complete latency.
func (b *BankTimingModel) AverageLatencyCycles() float64 {
	if b.Accesses == 0 {
		return 0
	}
	return float64(b.totalLat) / float64(b.Accesses)
}

// HitRate returns the row-buffer hit rate.
func (b *BankTimingModel) HitRate() float64 {
	if b.Accesses == 0 {
		return 0
	}
	return float64(b.RowHits) / float64(b.Accesses)
}

// AverageLatency converts the mean latency to seconds at a stack clock.
func (b *BankTimingModel) AverageLatency(freq hw.Hz) hw.Seconds {
	if freq <= 0 {
		return 0
	}
	return b.AverageLatencyCycles() / freq
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// StreamLatency runs a synthetic access pattern through a fresh bank
// model and reports (avg latency cycles, row hit rate). Pattern rows
// are visited in order, one read per element.
func StreamLatency(t Timing, rows []int) (avg float64, hitRate float64, err error) {
	b := NewBankTimingModel(t)
	cycle := int64(0)
	for _, r := range rows {
		done, err := b.Access(r, Read, cycle)
		if err != nil {
			return 0, 0, err
		}
		cycle = done
	}
	return b.AverageLatencyCycles(), b.HitRate(), nil
}
