// Package hmc models the 3D die-stacked main memory the heterogeneous
// PIM lives in: an HMC 2.0-class stack with 32 vertical bank slices over
// a logic die (paper Sections III-A, IV-D, V-A).
//
// The model is deliberately analytic rather than cycle-accurate — the
// paper's own simulator is trace driven — but it tracks the quantities
// the runtime and the energy model need: per-bank traffic, host-side vs
// PIM-side access paths (external SerDes links vs internal TSVs), and
// per-byte access energy.
package hmc

import (
	"fmt"

	"heteropim/internal/hw"
)

// BankClass is the thermal position class of a bank on the logic die.
// Edge and corner banks have better heat-dissipation paths and therefore
// support higher compute density (paper Section IV-D, Fig. 3a).
type BankClass int

const (
	// Center banks sit in the interior of the grid.
	Center BankClass = iota
	// Edge banks sit on the perimeter but not in a corner.
	Edge
	// Corner banks occupy the four grid corners.
	Corner
)

// String implements fmt.Stringer.
func (c BankClass) String() string {
	switch c {
	case Center:
		return "center"
	case Edge:
		return "edge"
	case Corner:
		return "corner"
	default:
		return "unknown"
	}
}

// AccessPath distinguishes who touched memory; the two paths have very
// different bandwidth and energy (external links vs internal TSVs).
type AccessPath int

const (
	// HostPath is a CPU access through the external serial links.
	HostPath AccessPath = iota
	// PIMPath is a logic-layer access through the TSVs.
	PIMPath
)

// BankStats accumulates per-bank traffic.
type BankStats struct {
	HostBytes float64 // bytes read/written by the host
	PIMBytes  float64 // bytes read/written by PIM logic
}

// Stack is one 3D memory stack instance.
type Stack struct {
	Spec  hw.StackSpec
	banks []BankStats

	hostBytes float64
	pimBytes  float64
}

// New builds a stack from its specification.
func New(spec hw.StackSpec) (*Stack, error) {
	if spec.Banks <= 0 {
		return nil, fmt.Errorf("hmc: stack needs at least one bank, got %d", spec.Banks)
	}
	if spec.Rows*spec.Cols != spec.Banks {
		return nil, fmt.Errorf("hmc: %dx%d grid does not cover %d banks", spec.Rows, spec.Cols, spec.Banks)
	}
	return &Stack{Spec: spec, banks: make([]BankStats, spec.Banks)}, nil
}

// Banks returns the number of bank slices.
func (s *Stack) Banks() int { return len(s.banks) }

// ClassOf returns the thermal class of bank i in the Rows x Cols grid.
// Banks are numbered row-major.
func (s *Stack) ClassOf(i int) BankClass {
	r, c := i/s.Spec.Cols, i%s.Spec.Cols
	onRowEdge := r == 0 || r == s.Spec.Rows-1
	onColEdge := c == 0 || c == s.Spec.Cols-1
	switch {
	case onRowEdge && onColEdge:
		return Corner
	case onRowEdge || onColEdge:
		return Edge
	default:
		return Center
	}
}

// ClassCounts returns how many banks fall in each class.
func (s *Stack) ClassCounts() (corner, edge, center int) {
	for i := 0; i < len(s.banks); i++ {
		switch s.ClassOf(i) {
		case Corner:
			corner++
		case Edge:
			edge++
		default:
			center++
		}
	}
	return corner, edge, center
}

// Access records traffic of the given byte volume against a bank via the
// given path. Bank index is taken modulo the bank count so callers can
// hash tensors onto banks without bounds bookkeeping.
func (s *Stack) Access(bank int, bytes float64, path AccessPath) {
	if bytes < 0 {
		bytes = 0
	}
	b := ((bank % len(s.banks)) + len(s.banks)) % len(s.banks)
	switch path {
	case HostPath:
		s.banks[b].HostBytes += bytes
		s.hostBytes += bytes
	case PIMPath:
		s.banks[b].PIMBytes += bytes
		s.pimBytes += bytes
	}
}

// HostBytes returns total host-path traffic.
func (s *Stack) HostBytes() float64 { return s.hostBytes }

// PIMBytes returns total PIM-path traffic.
func (s *Stack) PIMBytes() float64 { return s.pimBytes }

// BankStatsOf returns a copy of bank i's counters.
func (s *Stack) BankStatsOf(i int) BankStats { return s.banks[i%len(s.banks)] }

// Reset clears all traffic counters.
func (s *Stack) Reset() {
	for i := range s.banks {
		s.banks[i] = BankStats{}
	}
	s.hostBytes, s.pimBytes = 0, 0
}

// HostTransferTime is the time to move the given bytes between the stack
// and the host over the external links.
func (s *Stack) HostTransferTime(bytes float64) hw.Seconds {
	if bytes <= 0 {
		return 0
	}
	return bytes / s.Spec.ExternalBandwidth
}

// PIMTransferTime is the time for PIM logic to stream the given bytes
// through the TSVs at the scaled internal bandwidth.
func (s *Stack) PIMTransferTime(bytes float64) hw.Seconds {
	if bytes <= 0 {
		return 0
	}
	return bytes / s.Spec.ScaledInternalBandwidth()
}

// AccessEnergy returns the DRAM-side energy of moving the given bytes via
// the given path: every access pays the array energy; host accesses add
// link energy, PIM accesses add (much cheaper) TSV energy. This energy
// asymmetry is the root of the paper's data-movement savings.
func (s *Stack) AccessEnergy(bytes float64, path AccessPath) hw.Joules {
	if bytes <= 0 {
		return 0
	}
	e := bytes * s.Spec.RowAccessEnergyPerByte
	switch path {
	case HostPath:
		e += bytes * s.Spec.LinkEnergyPerByte
	case PIMPath:
		e += bytes * s.Spec.TSVEnergyPerByte
	}
	return e
}

// BankForBlock maps a data block index onto a bank. Tensors are laid out
// block-interleaved across banks, which is how the low-level API can
// co-locate operations with their input data (Table III's
// pimQueryLocation).
func (s *Stack) BankForBlock(block int) int {
	return ((block % len(s.banks)) + len(s.banks)) % len(s.banks)
}
