package hmc

import (
	"math/rand"
	"testing"

	"heteropim/internal/hw"
)

func TestRowHitFasterThanMissFasterThanConflict(t *testing.T) {
	tm := HMC2Timing()
	// Hit: same row twice.
	b := NewBankTimingModel(tm)
	if _, err := b.Access(1, Read, 0); err != nil {
		t.Fatal(err)
	}
	start := b.state.readyAt
	done, err := b.Access(1, Read, start)
	if err != nil {
		t.Fatal(err)
	}
	hitLat := done - start
	// Miss: fresh bank.
	b2 := NewBankTimingModel(tm)
	done2, _ := b2.Access(1, Read, 0)
	missLat := done2
	// Conflict: different row while one is open.
	b3 := NewBankTimingModel(tm)
	d, _ := b3.Access(1, Read, 0)
	done3, _ := b3.Access(2, Read, d)
	confLat := done3 - d
	if !(hitLat < missLat && missLat < confLat) {
		t.Fatalf("latencies hit=%d miss=%d conflict=%d must be strictly ordered", hitLat, missLat, confLat)
	}
	// Hand-check the hit latency: tCL + burst.
	if want := int64(tm.TCL + tm.BurstCycles); hitLat != want {
		t.Fatalf("hit latency = %d, want %d", hitLat, want)
	}
	// Miss: tRCD + tCL + burst.
	if want := int64(tm.TRCD + tm.TCL + tm.BurstCycles); missLat != want {
		t.Fatalf("miss latency = %d, want %d", missLat, want)
	}
	if b3.Conflicts != 1 || b3.RowMisses != 1 {
		t.Fatalf("conflict accounting: %+v", b3)
	}
}

func TestWriteUsesWriteRecovery(t *testing.T) {
	tm := HMC2Timing()
	b := NewBankTimingModel(tm)
	done, err := b.Access(0, Write, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(tm.TRCD + tm.TWR + tm.BurstCycles); done != want {
		t.Fatalf("write latency = %d, want %d", done, want)
	}
}

func TestRefreshStealsTheBank(t *testing.T) {
	tm := HMC2Timing()
	b := NewBankTimingModel(tm)
	// Jump past several refresh intervals.
	at := int64(tm.TREFI)*3 + 10
	if _, err := b.Access(0, Read, at); err != nil {
		t.Fatal(err)
	}
	if b.Refreshes == 0 {
		t.Fatal("no refresh charged despite crossing tREFI")
	}
}

func TestSequentialStreamHasHighHitRate(t *testing.T) {
	tm := HMC2Timing()
	// 64 accesses per row, 16 rows: hit rate ~ 63/64.
	rows := make([]int, 0, 1024)
	for r := 0; r < 16; r++ {
		for i := 0; i < 64; i++ {
			rows = append(rows, r)
		}
	}
	avg, hit, err := StreamLatency(tm, rows)
	if err != nil {
		t.Fatal(err)
	}
	if hit < 0.95 {
		t.Fatalf("sequential hit rate = %.2f, want ~0.98", hit)
	}
	// Random rows: hit rate near zero, higher latency.
	rng := rand.New(rand.NewSource(1))
	rand0 := make([]int, 1024)
	for i := range rand0 {
		rand0[i] = rng.Intn(4096)
	}
	avgR, hitR, err := StreamLatency(tm, rand0)
	if err != nil {
		t.Fatal(err)
	}
	if hitR > 0.05 {
		t.Fatalf("random hit rate = %.2f, want ~0", hitR)
	}
	if avgR <= avg {
		t.Fatalf("random latency (%.1f) must exceed sequential (%.1f) — the Table I locality story", avgR, avg)
	}
}

func TestAverageLatencySeconds(t *testing.T) {
	tm := HMC2Timing()
	b := NewBankTimingModel(tm)
	if _, err := b.Access(0, Read, 0); err != nil {
		t.Fatal(err)
	}
	sec := b.AverageLatency(hw.PaperStackFreq)
	// One miss: 14 cycles at 312.5 MHz = 44.8ns.
	if sec < 40e-9 || sec > 50e-9 {
		t.Fatalf("first-access latency = %g s, want ~45ns", sec)
	}
	if b.AverageLatency(0) != 0 {
		t.Fatal("zero frequency must not divide by zero")
	}
}

func TestTimingErrors(t *testing.T) {
	b := NewBankTimingModel(HMC2Timing())
	if _, err := b.Access(-1, Read, 0); err == nil {
		t.Fatal("negative row must error")
	}
	if _, err := b.Access(0, Read, -5); err == nil {
		t.Fatal("negative cycle must error")
	}
	if _, err := b.Access(0, AccessKind(9), 0); err == nil {
		t.Fatal("bad kind must error")
	}
	if b.AverageLatencyCycles() != 0 || b.HitRate() != 0 {
		t.Fatal("stats on a fresh bank must be zero")
	}
}

func TestBankReadyAtSerializes(t *testing.T) {
	tm := HMC2Timing()
	b := NewBankTimingModel(tm)
	d1, _ := b.Access(0, Read, 0)
	// Issuing "in the past" must still serialize after the burst.
	d2, _ := b.Access(0, Read, 0)
	if d2 <= d1 {
		t.Fatalf("second access (%d) must complete after the first (%d)", d2, d1)
	}
}
