package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestAvgPoolKnown(t *testing.T) {
	x, _ := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4, 1)
	y, err := AvgPool(x, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("avg[%d]=%g want %g", i, y.Data[i], w)
		}
	}
	if _, err := AvgPool(x, 0, 1); err == nil {
		t.Fatal("bad window must error")
	}
	if _, err := AvgPool(x, 5, 1); err == nil {
		t.Fatal("oversized window must error")
	}
}

func TestAvgPoolGradConservesMass(t *testing.T) {
	dy, _ := FromSlice([]float32{4, 8, 12, 16}, 1, 2, 2, 1)
	dx, err := AvgPoolGrad([]int{1, 4, 4, 1}, dy, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sum float32
	for _, v := range dx.Data {
		sum += v
	}
	if sum != 40 {
		t.Fatalf("mass = %g, want 40", sum)
	}
	// Each window member gets dy/4.
	if dx.Data[0] != 1 || dx.Data[1] != 1 {
		t.Fatalf("grad = %v", dx.Data[:4])
	}
	if _, err := AvgPoolGrad([]int{4, 4}, dy, 2, 2); err == nil {
		t.Fatal("bad shape must error")
	}
}

func TestBatchNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 3, 4, 5, 5, 2)
	for i := range x.Data {
		x.Data[i] += 7 // strong offset the norm must remove
	}
	gamma, _ := FromSlice([]float32{1, 1}, 2)
	beta, _ := FromSlice([]float32{0, 0}, 2)
	y, st, err := BatchNorm(x, gamma, beta, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	// Per-channel mean ~0, variance ~1.
	C := 2
	n := float64(y.Size() / C)
	for c := 0; c < C; c++ {
		var mean, varr float64
		for i := c; i < y.Size(); i += C {
			mean += float64(y.Data[i])
		}
		mean /= n
		for i := c; i < y.Size(); i += C {
			d := float64(y.Data[i]) - mean
			varr += d * d
		}
		varr /= n
		if math.Abs(mean) > 1e-3 || math.Abs(varr-1) > 1e-2 {
			t.Fatalf("channel %d: mean=%g var=%g", c, mean, varr)
		}
	}
	if st.Mean == nil || st.XHat == nil {
		t.Fatal("state missing")
	}
	// gamma/beta applied.
	g2, _ := FromSlice([]float32{2, 2}, 2)
	b2, _ := FromSlice([]float32{5, 5}, 2)
	y2, _, err := BatchNorm(x, g2, b2, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(y2.Data[0])-(2*float64(y.Data[0])+5)) > 1e-4 {
		t.Fatal("gamma/beta not applied")
	}
	if _, _, err := BatchNorm(x, New(3), beta, 1e-5); err == nil {
		t.Fatal("bad gamma must error")
	}
}

func TestBatchNormGradMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := Randn(rng, 1, 2, 3, 3, 2)
	gamma, _ := FromSlice([]float32{1.5, 0.8}, 2)
	beta, _ := FromSlice([]float32{0.1, -0.2}, 2)
	const eps = 1e-5
	y, st, err := BatchNorm(x, gamma, beta, eps)
	if err != nil {
		t.Fatal(err)
	}
	dy := Randn(rng, 1, y.Shape...)
	dx, dGamma, dBeta, err := BatchNormGrad(dy, gamma, st, eps)
	if err != nil {
		t.Fatal(err)
	}
	loss := func() float64 {
		out, _, err := BatchNorm(x, gamma, beta, eps)
		if err != nil {
			t.Fatal(err)
		}
		var l float64
		for i := range out.Data {
			l += float64(out.Data[i] * dy.Data[i])
		}
		return l
	}
	const h = 1e-2
	// Check input gradient at a few positions.
	for _, i := range []int{0, 7, 17} {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := loss()
		x.Data[i] = orig - h
		lm := loss()
		x.Data[i] = orig
		want := (lp - lm) / (2 * h)
		if got := float64(dx.Data[i]); math.Abs(got-want) > 5e-2 {
			t.Errorf("dx[%d] = %g, numerical %g", i, got, want)
		}
	}
	// Check gamma and beta gradients.
	for c := 0; c < 2; c++ {
		orig := gamma.Data[c]
		gamma.Data[c] = orig + h
		lp := loss()
		gamma.Data[c] = orig - h
		lm := loss()
		gamma.Data[c] = orig
		want := (lp - lm) / (2 * h)
		if got := float64(dGamma.Data[c]); math.Abs(got-want) > 5e-2 {
			t.Errorf("dGamma[%d] = %g, numerical %g", c, got, want)
		}
		origB := beta.Data[c]
		beta.Data[c] = origB + h
		lp = loss()
		beta.Data[c] = origB - h
		lm = loss()
		beta.Data[c] = origB
		want = (lp - lm) / (2 * h)
		if got := float64(dBeta.Data[c]); math.Abs(got-want) > 5e-2 {
			t.Errorf("dBeta[%d] = %g, numerical %g", c, got, want)
		}
	}
	if _, _, _, err := BatchNormGrad(dy, gamma, nil, eps); err == nil {
		t.Fatal("nil state must error")
	}
}

func TestTanhAndGrad(t *testing.T) {
	x, _ := FromSlice([]float32{-1, 0, 1}, 3)
	y := Tanh(x)
	if math.Abs(float64(y.Data[1])) > 1e-7 || y.Data[2] <= 0.76 || y.Data[2] >= 0.77 {
		t.Fatalf("tanh = %v", y.Data)
	}
	dy, _ := FromSlice([]float32{1, 1, 1}, 3)
	dx, err := TanhGrad(y, dy)
	if err != nil {
		t.Fatal(err)
	}
	// d/dx tanh at 0 is 1.
	if math.Abs(float64(dx.Data[1])-1) > 1e-6 {
		t.Fatalf("tanh'(0) = %g", dx.Data[1])
	}
	if _, err := TanhGrad(y, New(4)); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestSigmoidAndGrad(t *testing.T) {
	x, _ := FromSlice([]float32{0}, 1)
	y := Sigmoid(x)
	if math.Abs(float64(y.Data[0])-0.5) > 1e-7 {
		t.Fatalf("sigmoid(0) = %g", y.Data[0])
	}
	dy, _ := FromSlice([]float32{1}, 1)
	dx, err := SigmoidGrad(y, dy)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(dx.Data[0])-0.25) > 1e-7 {
		t.Fatalf("sigmoid'(0) = %g", dx.Data[0])
	}
	if _, err := SigmoidGrad(y, New(2)); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := Randn(rng, 1, 1000)
	y, mask, err := Dropout(x, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for i := range y.Data {
		if mask.Data[i] == 0 {
			if y.Data[i] != 0 {
				t.Fatal("masked element not zeroed")
			}
			zeros++
		} else if math.Abs(float64(y.Data[i]-x.Data[i]*mask.Data[i])) > 1e-6 {
			t.Fatal("survivor not scaled by mask")
		}
	}
	if zeros < 300 || zeros > 500 {
		t.Fatalf("dropped %d of 1000 at p=0.4", zeros)
	}
	dy := Randn(rng, 1, 1000)
	dx, err := DropoutGrad(mask, dy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dx.Data {
		if mask.Data[i] == 0 && dx.Data[i] != 0 {
			t.Fatal("gradient leaked through dropped element")
		}
	}
	if _, _, err := Dropout(x, 1.0, rng); err == nil {
		t.Fatal("p=1 must error")
	}
	if _, _, err := Dropout(x, -0.1, rng); err == nil {
		t.Fatal("p<0 must error")
	}
}

func TestPad(t *testing.T) {
	x, _ := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2, 1)
	y, err := Pad(x, 1, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if y.Shape[1] != 3 || y.Shape[2] != 3 {
		t.Fatalf("padded shape %v", y.Shape)
	}
	if y.At4(0, 0, 0, 0) != 0 || y.At4(0, 1, 0, 0) != 1 || y.At4(0, 2, 1, 0) != 4 || y.At4(0, 1, 2, 0) != 0 {
		t.Fatalf("pad wrong: %v", y.Data)
	}
	if _, err := Pad(x, -1, 0, 0, 0); err == nil {
		t.Fatal("negative pad must error")
	}
}

func TestConcat(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2, 1)
	b, _ := FromSlice([]float32{5, 6, 7, 8}, 1, 2, 2, 1)
	y, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if y.Shape[3] != 2 {
		t.Fatalf("concat channels = %d", y.Shape[3])
	}
	if y.At4(0, 0, 0, 0) != 1 || y.At4(0, 0, 0, 1) != 5 || y.At4(0, 1, 1, 1) != 8 {
		t.Fatalf("concat data wrong: %v", y.Data)
	}
	if _, err := Concat(); err == nil {
		t.Fatal("empty concat must error")
	}
	c, _ := FromSlice([]float32{1, 2}, 1, 1, 2, 1)
	if _, err := Concat(a, c); err == nil {
		t.Fatal("spatial mismatch must error")
	}
}

func TestSumMean(t *testing.T) {
	x, _ := FromSlice([]float32{1, 2, 3, 4}, 4)
	if Sum(x) != 10 || Mean(x) != 2.5 {
		t.Fatalf("sum=%g mean=%g", Sum(x), Mean(x))
	}
	if Mean(&Tensor{}) != 0 {
		t.Fatal("empty mean must be 0")
	}
}

func TestConv2DGEMMEquivalentToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, cfg := range []struct {
		spec ConvSpec
		name string
	}{
		{ConvSpec{StrideH: 1, StrideW: 1, SamePadding: true}, "same-s1"},
		{ConvSpec{StrideH: 2, StrideW: 2, SamePadding: true}, "same-s2"},
		{ConvSpec{StrideH: 1, StrideW: 1}, "valid-s1"},
		{ConvSpec{StrideH: 2, StrideW: 1}, "valid-s2x1"},
	} {
		x := Randn(rng, 1, 2, 9, 8, 3)
		w := Randn(rng, 1, 3, 3, 3, 5)
		want, err := Conv2D(x, w, cfg.spec)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		got, err := Conv2DGEMM(x, w, cfg.spec)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if !want.SameShape(got) {
			t.Fatalf("%s: shapes %v vs %v", cfg.name, want.Shape, got.Shape)
		}
		if d := MaxAbsDiff(want, got); d > 1e-4 {
			t.Fatalf("%s: GEMM conv differs by %g", cfg.name, d)
		}
	}
}

func TestIm2colErrors(t *testing.T) {
	x := Randn(rand.New(rand.NewSource(1)), 1, 1, 4, 4, 1)
	if _, _, _, err := Im2col(x, 0, 3, ConvSpec{StrideH: 1, StrideW: 1}); err == nil {
		t.Fatal("bad filter must error")
	}
	if _, _, _, err := Im2col(x, 5, 5, ConvSpec{StrideH: 1, StrideW: 1}); err == nil {
		t.Fatal("oversized filter without padding must error")
	}
	if _, err := Conv2DGEMM(x, New(3, 3, 2, 4), ConvSpec{StrideH: 1, StrideW: 1}); err == nil {
		t.Fatal("channel mismatch must error")
	}
}

func BenchmarkConv2DNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 4, 16, 16, 8)
	w := Randn(rng, 1, 3, 3, 8, 16)
	spec := ConvSpec{StrideH: 1, StrideW: 1, SamePadding: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Conv2D(x, w, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConv2DGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 4, 16, 16, 8)
	w := Randn(rng, 1, 3, 3, 8, 16)
	spec := ConvSpec{StrideH: 1, StrideW: 1, SamePadding: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Conv2DGEMM(x, w, spec); err != nil {
			b.Fatal(err)
		}
	}
}
