package tensor

import (
	"fmt"
	"math"
)

// AdamState carries the first/second moment estimates for one parameter
// tensor, mirroring TensorFlow's ApplyAdam op — the first-order
// gradient-based optimization of stochastic objective functions the
// paper singles out as a programmable-PIM operation.
type AdamState struct {
	M, V *Tensor
	Step int
}

// AdamConfig holds the optimizer hyperparameters.
type AdamConfig struct {
	LR, Beta1, Beta2, Epsilon float64
}

// DefaultAdam returns the TensorFlow default hyperparameters.
func DefaultAdam() AdamConfig {
	return AdamConfig{LR: 1e-3, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// NewAdamState allocates moment buffers matching param.
func NewAdamState(param *Tensor) *AdamState {
	return &AdamState{M: New(param.Shape...), V: New(param.Shape...)}
}

// ApplyAdam performs one in-place Adam update of param given grad.
func ApplyAdam(param, grad *Tensor, st *AdamState, cfg AdamConfig) error {
	if !param.SameShape(grad) || !param.SameShape(st.M) || !param.SameShape(st.V) {
		return fmt.Errorf("tensor: ApplyAdam shape mismatch param=%v grad=%v", param.Shape, grad.Shape)
	}
	st.Step++
	b1 := cfg.Beta1
	b2 := cfg.Beta2
	correction1 := 1 - math.Pow(b1, float64(st.Step))
	correction2 := 1 - math.Pow(b2, float64(st.Step))
	lr := cfg.LR * math.Sqrt(correction2) / correction1
	for i := range param.Data {
		g := float64(grad.Data[i])
		m := b1*float64(st.M.Data[i]) + (1-b1)*g
		v := b2*float64(st.V.Data[i]) + (1-b2)*g*g
		st.M.Data[i] = float32(m)
		st.V.Data[i] = float32(v)
		param.Data[i] -= float32(lr * m / (math.Sqrt(v) + cfg.Epsilon))
	}
	return nil
}
