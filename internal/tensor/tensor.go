// Package tensor is a small dense FP32 tensor library implementing the
// NN training operations the paper profiles (Table I): MatMul, Conv2D
// and its two backprop operations, BiasAdd/BiasAddGrad, Relu/ReluGrad,
// MaxPool/MaxPoolGrad, Softmax + cross-entropy, elementwise Mul/Add,
// Slice, and the ApplyAdam optimizer update.
//
// The simulator proper works from analytic operation descriptors; this
// package exists so the examples and tests can run genuine training math
// end to end on small tensors (the functional path of DESIGN.md §2) and
// so kernel implementations offloaded through the OpenCL layer have real
// work to do.
//
// Layout: activations are NHWC, convolution filters are HWIO
// (height, width, in-channels, out-channels), matching TensorFlow's CPU
// defaults — the framework the paper instruments.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense FP32 tensor.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape (no copy).
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("tensor: shape %v needs %d elements, got %d", shape, n, len(data))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}, nil
}

// Randn fills a new tensor with pseudo-normal values (seeded, so tests
// and examples are deterministic).
func Randn(rng *rand.Rand, scale float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * scale)
	}
	return t
}

// Size returns the element count.
func (t *Tensor) Size() int { return len(t.Data) }

// Bytes returns the storage footprint in bytes (FP32).
func (t *Tensor) Bytes() int { return 4 * len(t.Data) }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Dim returns dimension i, treating missing leading dims as 1.
func (t *Tensor) Dim(i int) int {
	if i < 0 || i >= len(t.Shape) {
		return 1
	}
	return t.Shape[i]
}

// At4 indexes an NHWC tensor.
func (t *Tensor) At4(n, h, w, c int) float32 {
	_, H, W, C := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	return t.Data[((n*H+h)*W+w)*C+c]
}

// Set4 writes an NHWC element.
func (t *Tensor) Set4(n, h, w, c int, v float32) {
	_, H, W, C := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	t.Data[((n*H+h)*W+w)*C+c] = v
}

// Add4 accumulates into an NHWC element.
func (t *Tensor) Add4(n, h, w, c int, v float32) {
	_, H, W, C := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	t.Data[((n*H+h)*W+w)*C+c] += v
}

// MaxAbsDiff returns the largest absolute element difference; it is the
// workhorse of the numerical tests.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !a.SameShape(b) {
		return math.Inf(1)
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i] - b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// checkShape panics with a descriptive message on rank mismatch; the
// functional kernels are internal, so programming errors here are bugs,
// not user input.
func checkRank(name string, t *Tensor, rank int) {
	if len(t.Shape) != rank {
		panic(fmt.Sprintf("tensor: %s wants rank-%d input, got shape %v", name, rank, t.Shape))
	}
}
