package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndFromSlice(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 || x.Bytes() != 24 {
		t.Fatalf("size=%d bytes=%d", x.Size(), x.Bytes())
	}
	y, err := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if y.Data[5] != 6 {
		t.Fatal("FromSlice data not wired")
	}
	if _, err := FromSlice([]float32{1, 2}, 2, 3); err == nil {
		t.Fatal("mismatched FromSlice must error")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x, _ := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	c := x.Clone()
	c.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestDimAndSameShape(t *testing.T) {
	x := New(2, 3, 4)
	if x.Dim(0) != 2 || x.Dim(2) != 4 || x.Dim(5) != 1 || x.Dim(-1) != 1 {
		t.Fatal("Dim wrong")
	}
	if !x.SameShape(New(2, 3, 4)) || x.SameShape(New(2, 3)) || x.SameShape(New(2, 3, 5)) {
		t.Fatal("SameShape wrong")
	}
}

func TestMatMulKnown(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, _ := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("c[%d]=%g want %g", i, c.Data[i], v)
		}
	}
	if _, err := MatMul(a, New(2, 2)); err == nil {
		t.Fatal("inner-dim mismatch must error")
	}
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 4, 3)
	b := Randn(rng, 1, 4, 5)
	// Aᵀ x B via the explicit transpose.
	at := New(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Data[j*4+i] = a.Data[i*3+j]
		}
	}
	want, _ := MatMul(at, b)
	got, err := MatMulTransA(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(want, got); d > 1e-5 {
		t.Fatalf("MatMulTransA differs by %g", d)
	}
	// A x Bᵀ.
	c := Randn(rng, 1, 5, 3)
	ct := New(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			ct.Data[j*5+i] = c.Data[i*3+j]
		}
	}
	want2, _ := MatMul(at, ct) // (3,4)x... wrong dims; build fresh
	_ = want2
	x := Randn(rng, 1, 2, 3)
	want3, _ := MatMul(x, ct)
	got3, err := MatMulTransB(x, c)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(want3, got3); d > 1e-5 {
		t.Fatalf("MatMulTransB differs by %g", d)
	}
	if _, err := MatMulTransA(New(4, 3), New(5, 2)); err == nil {
		t.Fatal("TransA mismatch must error")
	}
	if _, err := MatMulTransB(New(4, 3), New(5, 2)); err == nil {
		t.Fatal("TransB mismatch must error")
	}
}

func TestConv2DIdentityFilter(t *testing.T) {
	// 1x1 identity filter reproduces the input.
	rng := rand.New(rand.NewSource(2))
	x := Randn(rng, 1, 2, 5, 5, 3)
	w := New(1, 1, 3, 3)
	for c := 0; c < 3; c++ {
		w.Data[c*3+c] = 1
	}
	y, err := Conv2D(x, w, ConvSpec{StrideH: 1, StrideW: 1, SamePadding: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(x, y); d > 1e-6 {
		t.Fatalf("identity conv differs by %g", d)
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 3x3 input, 2x2 ones filter, VALID: each output is the window sum.
	x, _ := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3, 1)
	w, _ := FromSlice([]float32{1, 1, 1, 1}, 2, 2, 1, 1)
	y, err := Conv2D(x, w, ConvSpec{StrideH: 1, StrideW: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{12, 16, 24, 28}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("y[%d]=%g want %g", i, y.Data[i], v)
		}
	}
}

func TestConv2DShapeErrors(t *testing.T) {
	if _, err := Conv2D(New(1, 4, 4, 3), New(2, 2, 5, 8), ConvSpec{StrideH: 1, StrideW: 1}); err == nil {
		t.Fatal("channel mismatch must error")
	}
	if _, err := Conv2D(New(1, 2, 2, 1), New(3, 3, 1, 1), ConvSpec{StrideH: 1, StrideW: 1}); err == nil {
		t.Fatal("filter bigger than input without padding must error")
	}
}

// numericalGrad estimates dLoss/dx[i] where loss = sum(f(x) * mask).
func numericalGrad(f func(*Tensor) *Tensor, x *Tensor, mask *Tensor, i int) float64 {
	const eps = 1e-2
	orig := x.Data[i]
	x.Data[i] = orig + eps
	plus := f(x)
	x.Data[i] = orig - eps
	minus := f(x)
	x.Data[i] = orig
	var lp, lm float64
	for j := range plus.Data {
		lp += float64(plus.Data[j] * mask.Data[j])
		lm += float64(minus.Data[j] * mask.Data[j])
	}
	return (lp - lm) / (2 * eps)
}

func TestConv2DBackpropInputMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	spec := ConvSpec{StrideH: 2, StrideW: 2, SamePadding: true}
	x := Randn(rng, 0.5, 1, 5, 5, 2)
	w := Randn(rng, 0.5, 3, 3, 2, 3)
	y, err := Conv2D(x, w, spec)
	if err != nil {
		t.Fatal(err)
	}
	dy := Randn(rng, 0.5, y.Shape...)
	dx, err := Conv2DBackpropInput(x.Shape, w, dy, spec)
	if err != nil {
		t.Fatal(err)
	}
	f := func(in *Tensor) *Tensor {
		out, err := Conv2D(in, w, spec)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, i := range []int{0, 7, 23, x.Size() - 1} {
		want := numericalGrad(f, x, dy, i)
		if got := float64(dx.Data[i]); math.Abs(got-want) > 2e-2 {
			t.Errorf("dx[%d] = %g, numerical %g", i, got, want)
		}
	}
}

func TestConv2DBackpropFilterMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	spec := ConvSpec{StrideH: 1, StrideW: 1, SamePadding: true}
	x := Randn(rng, 0.5, 2, 4, 4, 2)
	w := Randn(rng, 0.5, 3, 3, 2, 2)
	y, err := Conv2D(x, w, spec)
	if err != nil {
		t.Fatal(err)
	}
	dy := Randn(rng, 0.5, y.Shape...)
	dw, err := Conv2DBackpropFilter(x, w.Shape, dy, spec)
	if err != nil {
		t.Fatal(err)
	}
	f := func(filter *Tensor) *Tensor {
		out, err := Conv2D(x, filter, spec)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, i := range []int{0, 5, 17, w.Size() - 1} {
		want := numericalGrad(f, w, dy, i)
		if got := float64(dw.Data[i]); math.Abs(got-want) > 2e-2 {
			t.Errorf("dw[%d] = %g, numerical %g", i, got, want)
		}
	}
}

func TestBackpropShapeErrors(t *testing.T) {
	spec := ConvSpec{StrideH: 1, StrideW: 1}
	if _, err := Conv2DBackpropInput([]int{1, 4, 4, 9}, New(2, 2, 3, 1), New(1, 3, 3, 1), spec); err == nil {
		t.Fatal("channel mismatch must error")
	}
	if _, err := Conv2DBackpropFilter(New(1, 4, 4, 3), []int{2, 2, 3, 1}, New(2, 3, 3, 1), spec); err == nil {
		t.Fatal("batch mismatch must error")
	}
	if _, err := Conv2DBackpropInput([]int{4, 4}, New(2, 2, 3, 1), New(1, 3, 3, 1), spec); err == nil {
		t.Fatal("bad input shape must error")
	}
	if _, err := Conv2DBackpropFilter(New(1, 4, 4, 3), []int{2, 2}, New(1, 3, 3, 1), spec); err == nil {
		t.Fatal("bad filter shape must error")
	}
}

func TestBiasAddAndGrad(t *testing.T) {
	x, _ := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, _ := FromSlice([]float32{10, 20, 30}, 3)
	y, err := BiasAdd(x, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{11, 22, 33, 14, 25, 36}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("y[%d]=%g want %g", i, y.Data[i], v)
		}
	}
	db := BiasAddGrad(x)
	if db.Data[0] != 5 || db.Data[1] != 7 || db.Data[2] != 9 {
		t.Fatalf("db = %v", db.Data)
	}
	if _, err := BiasAdd(x, New(4)); err == nil {
		t.Fatal("bias size mismatch must error")
	}
}

func TestReluAndGrad(t *testing.T) {
	x, _ := FromSlice([]float32{-1, 0, 2}, 3)
	y := Relu(x)
	if y.Data[0] != 0 || y.Data[1] != 0 || y.Data[2] != 2 {
		t.Fatalf("relu = %v", y.Data)
	}
	dy, _ := FromSlice([]float32{5, 6, 7}, 3)
	dx, err := ReluGrad(x, dy)
	if err != nil {
		t.Fatal(err)
	}
	if dx.Data[0] != 0 || dx.Data[1] != 0 || dx.Data[2] != 7 {
		t.Fatalf("relu grad = %v", dx.Data)
	}
	if _, err := ReluGrad(x, New(4)); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestMaxPoolAndGrad(t *testing.T) {
	x, _ := FromSlice([]float32{
		1, 3, 2, 4,
		5, 6, 8, 7,
		9, 2, 1, 0,
		3, 4, 5, 6,
	}, 1, 4, 4, 1)
	y, arg, err := MaxPool(x, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 9, 6}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("pool[%d]=%g want %g", i, y.Data[i], v)
		}
	}
	dy, _ := FromSlice([]float32{10, 20, 30, 40}, 1, 2, 2, 1)
	dx, err := MaxPoolGrad(x.Shape, dy, arg)
	if err != nil {
		t.Fatal(err)
	}
	// Gradient lands exactly where the maxima were.
	if dx.Data[5] != 10 || dx.Data[6] != 20 || dx.Data[8] != 30 || dx.Data[15] != 40 {
		t.Fatalf("pool grad = %v", dx.Data)
	}
	var sum float32
	for _, v := range dx.Data {
		sum += v
	}
	if sum != 100 {
		t.Fatalf("pool grad should conserve mass, sum=%g", sum)
	}
	if _, _, err := MaxPool(x, 0, 1); err == nil {
		t.Fatal("bad window must error")
	}
	if _, err := MaxPoolGrad(x.Shape, dy, arg[:2]); err == nil {
		t.Fatal("short argmax must error")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := Randn(rng, 3, 4, 7)
	y := Softmax(x)
	for i := 0; i < 4; i++ {
		var s float64
		for j := 0; j < 7; j++ {
			v := float64(y.Data[i*7+j])
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %g", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-5 {
			t.Fatalf("row %d sums to %g", i, s)
		}
	}
}

func TestCrossEntropyGradientMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	logits := Randn(rng, 1, 3, 5)
	labels := []int{1, 4, 0}
	_, grad, err := CrossEntropyWithSoftmax(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-3
	for _, i := range []int{0, 7, 14} {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _, _ := CrossEntropyWithSoftmax(logits, labels)
		logits.Data[i] = orig - eps
		lm, _, _ := CrossEntropyWithSoftmax(logits, labels)
		logits.Data[i] = orig
		want := (lp - lm) / (2 * eps)
		if got := float64(grad.Data[i]); math.Abs(got-want) > 1e-3 {
			t.Errorf("dlogits[%d] = %g, numerical %g", i, got, want)
		}
	}
	if _, _, err := CrossEntropyWithSoftmax(logits, []int{0}); err == nil {
		t.Error("label count mismatch must error")
	}
	if _, _, err := CrossEntropyWithSoftmax(logits, []int{0, 9, 0}); err == nil {
		t.Error("label out of range must error")
	}
}

func TestElementwiseOps(t *testing.T) {
	a, _ := FromSlice([]float32{1, 2, 3}, 3)
	b, _ := FromSlice([]float32{4, 5, 6}, 3)
	m, err := Mul(a, b)
	if err != nil || m.Data[0] != 4 || m.Data[2] != 18 {
		t.Fatalf("mul = %v (%v)", m.Data, err)
	}
	s, err := Add(a, b)
	if err != nil || s.Data[0] != 5 || s.Data[2] != 9 {
		t.Fatalf("add = %v (%v)", s.Data, err)
	}
	if _, err := Mul(a, New(4)); err == nil {
		t.Fatal("mul shape mismatch must error")
	}
	if _, err := Add(a, New(4)); err == nil {
		t.Fatal("add shape mismatch must error")
	}
	Scale(a, 2)
	if a.Data[2] != 6 {
		t.Fatal("scale failed")
	}
}

func TestSlice(t *testing.T) {
	x, _ := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	s, err := Slice(x, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shape[0] != 2 || s.Data[0] != 3 || s.Data[3] != 6 {
		t.Fatalf("slice = %+v", s)
	}
	if _, err := Slice(x, 2, 2); err == nil {
		t.Fatal("empty slice must error")
	}
	if _, err := Slice(x, -1, 2); err == nil {
		t.Fatal("negative lo must error")
	}
	if _, err := Slice(&Tensor{}, 0, 1); err == nil {
		t.Fatal("slicing scalar must error")
	}
}

func TestApplyAdamConverges(t *testing.T) {
	// Minimize (p-3)^2 elementwise; Adam should drive p to 3.
	p, _ := FromSlice([]float32{0, 10}, 2)
	st := NewAdamState(p)
	cfg := DefaultAdam()
	cfg.LR = 0.1
	for i := 0; i < 2000; i++ {
		g := New(2)
		for j := range g.Data {
			g.Data[j] = 2 * (p.Data[j] - 3)
		}
		if err := ApplyAdam(p, g, st, cfg); err != nil {
			t.Fatal(err)
		}
	}
	for j, v := range p.Data {
		if math.Abs(float64(v)-3) > 0.05 {
			t.Errorf("p[%d] = %g, want ~3", j, v)
		}
	}
	if err := ApplyAdam(p, New(3), st, cfg); err == nil {
		t.Error("grad shape mismatch must error")
	}
}

func TestAdamBiasCorrectionFirstStep(t *testing.T) {
	// On the very first step Adam's bias-corrected update equals
	// lr * sign(g) (approximately, for epsilon << |g|).
	p, _ := FromSlice([]float32{0}, 1)
	g, _ := FromSlice([]float32{0.5}, 1)
	st := NewAdamState(p)
	cfg := DefaultAdam()
	if err := ApplyAdam(p, g, st, cfg); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(p.Data[0])+cfg.LR) > 1e-6 {
		t.Fatalf("first Adam step = %g, want ~%g", p.Data[0], -cfg.LR)
	}
}

func TestConvLinearityQuick(t *testing.T) {
	// Property: convolution is linear in the input.
	spec := ConvSpec{StrideH: 1, StrideW: 1, SamePadding: true}
	rng := rand.New(rand.NewSource(7))
	w := Randn(rng, 1, 3, 3, 1, 1)
	f := func(seed int64, alpha float32) bool {
		if alpha > 1e3 || alpha < -1e3 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		x := Randn(r, 1, 1, 4, 4, 1)
		ax := x.Clone()
		Scale(ax, alpha)
		y1, err1 := Conv2D(ax, w, spec)
		y2, err2 := Conv2D(x, w, spec)
		if err1 != nil || err2 != nil {
			return false
		}
		Scale(y2, alpha)
		return MaxAbsDiff(y1, y2) < 1e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReluIdempotentQuick(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		x, err := FromSlice(vals, len(vals))
		if err != nil {
			return false
		}
		once := Relu(x)
		twice := Relu(once)
		return MaxAbsDiff(once, twice) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
