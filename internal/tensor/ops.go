package tensor

import (
	"fmt"
	"math"
)

// MatMul computes C = A x B for rank-2 tensors.
func MatMul(a, b *Tensor) (*Tensor, error) {
	checkRank("MatMul a", a, 2)
	checkRank("MatMul b", b, 2)
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMul inner dims %d vs %d", k, k2)
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return c, nil
}

// MatMulTransA computes C = Aᵀ x B.
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	checkRank("MatMulTransA a", a, 2)
	checkRank("MatMulTransA b", b, 2)
	k, m := a.Shape[0], a.Shape[1]
	if k != b.Shape[0] {
		return nil, fmt.Errorf("tensor: MatMulTransA inner dims %d vs %d", k, b.Shape[0])
	}
	n := b.Shape[1]
	c := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			crow := c.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
	return c, nil
}

// MatMulTransB computes C = A x Bᵀ.
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	checkRank("MatMulTransB a", a, 2)
	checkRank("MatMulTransB b", b, 2)
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[0]
	if k != b.Shape[1] {
		return nil, fmt.Errorf("tensor: MatMulTransB inner dims %d vs %d", k, b.Shape[1])
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		crow := c.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float32
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			crow[j] = s
		}
	}
	return c, nil
}

// ConvSpec fixes the geometry of a 2D convolution: stride and SAME/VALID
// padding (TensorFlow semantics).
type ConvSpec struct {
	StrideH, StrideW int
	SamePadding      bool
}

// outDim computes the output extent for one spatial dimension.
func (s ConvSpec) outDim(in, filter, stride int) (out, padBefore int) {
	if s.SamePadding {
		out = (in + stride - 1) / stride
		padTotal := (out-1)*stride + filter - in
		if padTotal < 0 {
			padTotal = 0
		}
		return out, padTotal / 2
	}
	return (in-filter)/stride + 1, 0
}

// Conv2D computes a 2D convolution of NHWC input x with HWIO filter w.
func Conv2D(x, w *Tensor, spec ConvSpec) (*Tensor, error) {
	checkRank("Conv2D input", x, 4)
	checkRank("Conv2D filter", w, 4)
	N, H, W, C := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	FH, FW, FC, K := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if C != FC {
		return nil, fmt.Errorf("tensor: Conv2D channels %d vs filter %d", C, FC)
	}
	OH, padH := spec.outDim(H, FH, spec.StrideH)
	OW, padW := spec.outDim(W, FW, spec.StrideW)
	if OH <= 0 || OW <= 0 {
		return nil, fmt.Errorf("tensor: Conv2D degenerate output %dx%d", OH, OW)
	}
	y := New(N, OH, OW, K)
	for n := 0; n < N; n++ {
		for oh := 0; oh < OH; oh++ {
			for ow := 0; ow < OW; ow++ {
				for fh := 0; fh < FH; fh++ {
					ih := oh*spec.StrideH + fh - padH
					if ih < 0 || ih >= H {
						continue
					}
					for fw := 0; fw < FW; fw++ {
						iw := ow*spec.StrideW + fw - padW
						if iw < 0 || iw >= W {
							continue
						}
						for c := 0; c < C; c++ {
							xv := x.At4(n, ih, iw, c)
							if xv == 0 {
								continue
							}
							base := ((fh*FW+fw)*FC + c) * K
							for k := 0; k < K; k++ {
								y.Add4(n, oh, ow, k, xv*w.Data[base+k])
							}
						}
					}
				}
			}
		}
	}
	return y, nil
}

// Conv2DBackpropInput computes the gradient of a Conv2D with respect to
// its input, given dy of shape (N,OH,OW,K).
func Conv2DBackpropInput(inShape []int, w, dy *Tensor, spec ConvSpec) (*Tensor, error) {
	checkRank("Conv2DBackpropInput filter", w, 4)
	checkRank("Conv2DBackpropInput dy", dy, 4)
	if len(inShape) != 4 {
		return nil, fmt.Errorf("tensor: Conv2DBackpropInput wants rank-4 input shape, got %v", inShape)
	}
	N, H, W, C := inShape[0], inShape[1], inShape[2], inShape[3]
	FH, FW, FC, K := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if C != FC || K != dy.Shape[3] || N != dy.Shape[0] {
		return nil, fmt.Errorf("tensor: Conv2DBackpropInput shape mismatch in=%v filter=%v dy=%v", inShape, w.Shape, dy.Shape)
	}
	OH, OW := dy.Shape[1], dy.Shape[2]
	_, padH := spec.outDim(H, FH, spec.StrideH)
	_, padW := spec.outDim(W, FW, spec.StrideW)
	dx := New(N, H, W, C)
	for n := 0; n < N; n++ {
		for oh := 0; oh < OH; oh++ {
			for ow := 0; ow < OW; ow++ {
				for fh := 0; fh < FH; fh++ {
					ih := oh*spec.StrideH + fh - padH
					if ih < 0 || ih >= H {
						continue
					}
					for fw := 0; fw < FW; fw++ {
						iw := ow*spec.StrideW + fw - padW
						if iw < 0 || iw >= W {
							continue
						}
						for k := 0; k < K; k++ {
							g := dy.At4(n, oh, ow, k)
							if g == 0 {
								continue
							}
							for c := 0; c < C; c++ {
								dx.Add4(n, ih, iw, c, g*w.Data[((fh*FW+fw)*FC+c)*K+k])
							}
						}
					}
				}
			}
		}
	}
	return dx, nil
}

// Conv2DBackpropFilter computes the gradient of a Conv2D with respect to
// its filter.
func Conv2DBackpropFilter(x *Tensor, filterShape []int, dy *Tensor, spec ConvSpec) (*Tensor, error) {
	checkRank("Conv2DBackpropFilter input", x, 4)
	checkRank("Conv2DBackpropFilter dy", dy, 4)
	if len(filterShape) != 4 {
		return nil, fmt.Errorf("tensor: Conv2DBackpropFilter wants rank-4 filter shape, got %v", filterShape)
	}
	N, H, W, C := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	FH, FW, FC, K := filterShape[0], filterShape[1], filterShape[2], filterShape[3]
	if C != FC || K != dy.Shape[3] || N != dy.Shape[0] {
		return nil, fmt.Errorf("tensor: Conv2DBackpropFilter shape mismatch x=%v filter=%v dy=%v", x.Shape, filterShape, dy.Shape)
	}
	OH, OW := dy.Shape[1], dy.Shape[2]
	_, padH := spec.outDim(H, FH, spec.StrideH)
	_, padW := spec.outDim(W, FW, spec.StrideW)
	dw := New(FH, FW, FC, K)
	for n := 0; n < N; n++ {
		for oh := 0; oh < OH; oh++ {
			for ow := 0; ow < OW; ow++ {
				for fh := 0; fh < FH; fh++ {
					ih := oh*spec.StrideH + fh - padH
					if ih < 0 || ih >= H {
						continue
					}
					for fw := 0; fw < FW; fw++ {
						iw := ow*spec.StrideW + fw - padW
						if iw < 0 || iw >= W {
							continue
						}
						for k := 0; k < K; k++ {
							g := dy.At4(n, oh, ow, k)
							if g == 0 {
								continue
							}
							for c := 0; c < C; c++ {
								dw.Data[((fh*FW+fw)*FC+c)*K+k] += g * x.At4(n, ih, iw, c)
							}
						}
					}
				}
			}
		}
	}
	return dw, nil
}

// BiasAdd adds a per-channel bias (last dimension) to x.
func BiasAdd(x, b *Tensor) (*Tensor, error) {
	c := x.Shape[len(x.Shape)-1]
	if len(b.Shape) != 1 || b.Shape[0] != c {
		return nil, fmt.Errorf("tensor: BiasAdd bias shape %v vs channels %d", b.Shape, c)
	}
	y := x.Clone()
	for i := range y.Data {
		y.Data[i] += b.Data[i%c]
	}
	return y, nil
}

// BiasAddGrad reduces dy over all but the channel dimension.
func BiasAddGrad(dy *Tensor) *Tensor {
	c := dy.Shape[len(dy.Shape)-1]
	db := New(c)
	for i, v := range dy.Data {
		db.Data[i%c] += v
	}
	return db
}

// Relu applies max(0, x).
func Relu(x *Tensor) *Tensor {
	y := x.Clone()
	for i, v := range y.Data {
		if v < 0 {
			y.Data[i] = 0
		}
	}
	return y
}

// ReluGrad masks dy by the sign of the forward input.
func ReluGrad(x, dy *Tensor) (*Tensor, error) {
	if !x.SameShape(dy) {
		return nil, fmt.Errorf("tensor: ReluGrad shapes %v vs %v", x.Shape, dy.Shape)
	}
	dx := dy.Clone()
	for i, v := range x.Data {
		if v <= 0 {
			dx.Data[i] = 0
		}
	}
	return dx, nil
}

// MaxPool performs 2D max pooling with the given window and stride
// (VALID padding), returning the pooled tensor and the argmax indices
// needed by the backward pass.
func MaxPool(x *Tensor, window, stride int) (*Tensor, []int, error) {
	checkRank("MaxPool", x, 4)
	N, H, W, C := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if window <= 0 || stride <= 0 {
		return nil, nil, fmt.Errorf("tensor: MaxPool window=%d stride=%d", window, stride)
	}
	OH := (H-window)/stride + 1
	OW := (W-window)/stride + 1
	if OH <= 0 || OW <= 0 {
		return nil, nil, fmt.Errorf("tensor: MaxPool degenerate output %dx%d", OH, OW)
	}
	y := New(N, OH, OW, C)
	arg := make([]int, y.Size())
	idx := 0
	for n := 0; n < N; n++ {
		for oh := 0; oh < OH; oh++ {
			for ow := 0; ow < OW; ow++ {
				for c := 0; c < C; c++ {
					best := float32(math.Inf(-1))
					bestAt := -1
					for fh := 0; fh < window; fh++ {
						for fw := 0; fw < window; fw++ {
							ih, iw := oh*stride+fh, ow*stride+fw
							v := x.At4(n, ih, iw, c)
							if v > best {
								best = v
								bestAt = ((n*H+ih)*W+iw)*C + c
							}
						}
					}
					y.Data[idx] = best
					arg[idx] = bestAt
					idx++
				}
			}
		}
	}
	return y, arg, nil
}

// MaxPoolGrad routes dy back to the argmax positions.
func MaxPoolGrad(xShape []int, dy *Tensor, arg []int) (*Tensor, error) {
	if len(arg) != dy.Size() {
		return nil, fmt.Errorf("tensor: MaxPoolGrad argmax len %d vs dy %d", len(arg), dy.Size())
	}
	dx := New(xShape...)
	for i, a := range arg {
		if a < 0 || a >= dx.Size() {
			return nil, fmt.Errorf("tensor: MaxPoolGrad argmax %d out of range", a)
		}
		dx.Data[a] += dy.Data[i]
	}
	return dx, nil
}

// Softmax applies a row-wise softmax to a rank-2 tensor.
func Softmax(x *Tensor) *Tensor {
	checkRank("Softmax", x, 2)
	y := New(x.Shape...)
	n, c := x.Shape[0], x.Shape[1]
	for i := 0; i < n; i++ {
		row := x.Data[i*c : (i+1)*c]
		out := y.Data[i*c : (i+1)*c]
		max := row[0]
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - max))
			out[j] = float32(e)
			sum += e
		}
		for j := range out {
			out[j] = float32(float64(out[j]) / sum)
		}
	}
	return y
}

// CrossEntropyWithSoftmax returns the mean cross-entropy loss of logits
// against integer labels, plus the gradient w.r.t. the logits.
func CrossEntropyWithSoftmax(logits *Tensor, labels []int) (float64, *Tensor, error) {
	checkRank("CrossEntropyWithSoftmax", logits, 2)
	n, c := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		return 0, nil, fmt.Errorf("tensor: %d labels for batch %d", len(labels), n)
	}
	p := Softmax(logits)
	grad := p.Clone()
	var loss float64
	for i := 0; i < n; i++ {
		l := labels[i]
		if l < 0 || l >= c {
			return 0, nil, fmt.Errorf("tensor: label %d out of range [0,%d)", l, c)
		}
		pi := float64(p.Data[i*c+l])
		if pi < 1e-12 {
			pi = 1e-12
		}
		loss -= math.Log(pi)
		grad.Data[i*c+l] -= 1
	}
	inv := float32(1.0 / float64(n))
	for i := range grad.Data {
		grad.Data[i] *= inv
	}
	return loss / float64(n), grad, nil
}

// Mul returns the elementwise product.
func Mul(a, b *Tensor) (*Tensor, error) {
	if !a.SameShape(b) {
		return nil, fmt.Errorf("tensor: Mul shapes %v vs %v", a.Shape, b.Shape)
	}
	c := a.Clone()
	for i := range c.Data {
		c.Data[i] *= b.Data[i]
	}
	return c, nil
}

// Add returns the elementwise sum.
func Add(a, b *Tensor) (*Tensor, error) {
	if !a.SameShape(b) {
		return nil, fmt.Errorf("tensor: Add shapes %v vs %v", a.Shape, b.Shape)
	}
	c := a.Clone()
	for i := range c.Data {
		c.Data[i] += b.Data[i]
	}
	return c, nil
}

// Scale multiplies in place by a scalar and returns the tensor.
func Scale(a *Tensor, s float32) *Tensor {
	for i := range a.Data {
		a.Data[i] *= s
	}
	return a
}

// Slice extracts rows [lo,hi) of the leading dimension.
func Slice(x *Tensor, lo, hi int) (*Tensor, error) {
	if len(x.Shape) == 0 {
		return nil, fmt.Errorf("tensor: Slice of scalar")
	}
	n := x.Shape[0]
	if lo < 0 || hi > n || lo >= hi {
		return nil, fmt.Errorf("tensor: Slice [%d,%d) of leading dim %d", lo, hi, n)
	}
	inner := x.Size() / n
	shape := append([]int{hi - lo}, x.Shape[1:]...)
	out := New(shape...)
	copy(out.Data, x.Data[lo*inner:hi*inner])
	return out, nil
}
