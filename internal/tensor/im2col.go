package tensor

import "fmt"

// Im2col unrolls conv windows into a (N*OH*OW, FH*FW*C) matrix so a
// convolution becomes one GEMM — the classic TensorFlow CPU strategy
// whose cache behaviour is exactly why forward Conv2D barely touches
// main memory in Table I while the backward passes thrash it.
func Im2col(x *Tensor, fh, fw int, spec ConvSpec) (*Tensor, int, int, error) {
	checkRank("Im2col", x, 4)
	N, H, W, C := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if fh <= 0 || fw <= 0 || spec.StrideH <= 0 || spec.StrideW <= 0 {
		return nil, 0, 0, fmt.Errorf("tensor: Im2col bad geometry fh=%d fw=%d", fh, fw)
	}
	oh, padH := spec.outDim(H, fh, spec.StrideH)
	ow, padW := spec.outDim(W, fw, spec.StrideW)
	if oh <= 0 || ow <= 0 {
		return nil, 0, 0, fmt.Errorf("tensor: Im2col degenerate output %dx%d", oh, ow)
	}
	cols := New(N*oh*ow, fh*fw*C)
	row := 0
	for n := 0; n < N; n++ {
		for y := 0; y < oh; y++ {
			for xw := 0; xw < ow; xw++ {
				base := row * fh * fw * C
				for ky := 0; ky < fh; ky++ {
					iy := y*spec.StrideH + ky - padH
					for kx := 0; kx < fw; kx++ {
						ix := xw*spec.StrideW + kx - padW
						off := base + (ky*fw+kx)*C
						if iy < 0 || iy >= H || ix < 0 || ix >= W {
							continue // zero padding
						}
						src := ((n*H+iy)*W + ix) * C
						copy(cols.Data[off:off+C], x.Data[src:src+C])
					}
				}
				row++
			}
		}
	}
	return cols, oh, ow, nil
}

// Conv2DGEMM computes the same result as Conv2D via im2col + MatMul.
// It is the throughput path for the functional examples; the naive
// Conv2D remains the reference implementation.
func Conv2DGEMM(x, w *Tensor, spec ConvSpec) (*Tensor, error) {
	checkRank("Conv2DGEMM input", x, 4)
	checkRank("Conv2DGEMM filter", w, 4)
	if x.Shape[3] != w.Shape[2] {
		return nil, fmt.Errorf("tensor: Conv2DGEMM channels %d vs filter %d", x.Shape[3], w.Shape[2])
	}
	fh, fw, fc, k := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	cols, oh, ow, err := Im2col(x, fh, fw, spec)
	if err != nil {
		return nil, err
	}
	wm, err := FromSlice(w.Data, fh*fw*fc, k)
	if err != nil {
		return nil, err
	}
	y, err := MatMul(cols, wm)
	if err != nil {
		return nil, err
	}
	return FromSlice(y.Data, x.Shape[0], oh, ow, k)
}
