package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// AvgPool performs 2D average pooling with the given window and stride
// (VALID padding).
func AvgPool(x *Tensor, window, stride int) (*Tensor, error) {
	checkRank("AvgPool", x, 4)
	N, H, W, C := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if window <= 0 || stride <= 0 {
		return nil, fmt.Errorf("tensor: AvgPool window=%d stride=%d", window, stride)
	}
	OH := (H-window)/stride + 1
	OW := (W-window)/stride + 1
	if OH <= 0 || OW <= 0 {
		return nil, fmt.Errorf("tensor: AvgPool degenerate output %dx%d", OH, OW)
	}
	y := New(N, OH, OW, C)
	inv := float32(1.0 / float64(window*window))
	for n := 0; n < N; n++ {
		for oh := 0; oh < OH; oh++ {
			for ow := 0; ow < OW; ow++ {
				for c := 0; c < C; c++ {
					var s float32
					for fh := 0; fh < window; fh++ {
						for fw := 0; fw < window; fw++ {
							s += x.At4(n, oh*stride+fh, ow*stride+fw, c)
						}
					}
					y.Set4(n, oh, ow, c, s*inv)
				}
			}
		}
	}
	return y, nil
}

// AvgPoolGrad distributes dy uniformly back over each pooling window.
func AvgPoolGrad(xShape []int, dy *Tensor, window, stride int) (*Tensor, error) {
	checkRank("AvgPoolGrad", dy, 4)
	if len(xShape) != 4 {
		return nil, fmt.Errorf("tensor: AvgPoolGrad wants rank-4 input shape")
	}
	dx := New(xShape...)
	N, OH, OW, C := dy.Shape[0], dy.Shape[1], dy.Shape[2], dy.Shape[3]
	inv := float32(1.0 / float64(window*window))
	for n := 0; n < N; n++ {
		for oh := 0; oh < OH; oh++ {
			for ow := 0; ow < OW; ow++ {
				for c := 0; c < C; c++ {
					g := dy.At4(n, oh, ow, c) * inv
					for fh := 0; fh < window; fh++ {
						for fw := 0; fw < window; fw++ {
							ih, iw := oh*stride+fh, ow*stride+fw
							if ih < xShape[1] && iw < xShape[2] {
								dx.Add4(n, ih, iw, c, g)
							}
						}
					}
				}
			}
		}
	}
	return dx, nil
}

// BatchNormState carries the per-channel statistics of one forward pass
// needed by the backward pass.
type BatchNormState struct {
	Mean, Var *Tensor
	// XHat is the normalized input, cached for the backward pass.
	XHat *Tensor
}

// BatchNorm normalizes NHWC input per channel and applies scale gamma
// and shift beta: y = gamma * (x - mean)/sqrt(var + eps) + beta.
func BatchNorm(x, gamma, beta *Tensor, eps float64) (*Tensor, *BatchNormState, error) {
	checkRank("BatchNorm", x, 4)
	C := x.Shape[3]
	if len(gamma.Shape) != 1 || gamma.Shape[0] != C || len(beta.Shape) != 1 || beta.Shape[0] != C {
		return nil, nil, fmt.Errorf("tensor: BatchNorm gamma/beta must be [%d]", C)
	}
	n := float64(x.Size() / C)
	mean := New(C)
	variance := New(C)
	for i, v := range x.Data {
		mean.Data[i%C] += v
	}
	for c := 0; c < C; c++ {
		mean.Data[c] = float32(float64(mean.Data[c]) / n)
	}
	for i, v := range x.Data {
		d := float64(v - mean.Data[i%C])
		variance.Data[i%C] += float32(d * d / n)
	}
	y := New(x.Shape...)
	xhat := New(x.Shape...)
	for i, v := range x.Data {
		c := i % C
		h := float64(v-mean.Data[c]) / math.Sqrt(float64(variance.Data[c])+eps)
		xhat.Data[i] = float32(h)
		y.Data[i] = gamma.Data[c]*float32(h) + beta.Data[c]
	}
	return y, &BatchNormState{Mean: mean, Var: variance, XHat: xhat}, nil
}

// BatchNormGrad computes gradients for input, gamma and beta given the
// cached forward state.
func BatchNormGrad(dy, gamma *Tensor, st *BatchNormState, eps float64) (dx, dGamma, dBeta *Tensor, err error) {
	checkRank("BatchNormGrad", dy, 4)
	C := dy.Shape[3]
	if st == nil || st.XHat == nil || !st.XHat.SameShape(dy) {
		return nil, nil, nil, fmt.Errorf("tensor: BatchNormGrad state mismatch")
	}
	n := float64(dy.Size() / C)
	dGamma = New(C)
	dBeta = New(C)
	for i, g := range dy.Data {
		c := i % C
		dGamma.Data[c] += g * st.XHat.Data[i]
		dBeta.Data[c] += g
	}
	dx = New(dy.Shape...)
	for i, g := range dy.Data {
		c := i % C
		istd := 1 / math.Sqrt(float64(st.Var.Data[c])+eps)
		term := n*float64(g) - float64(dBeta.Data[c]) - float64(st.XHat.Data[i])*float64(dGamma.Data[c])
		dx.Data[i] = float32(float64(gamma.Data[c]) * istd / n * term)
	}
	return dx, dGamma, dBeta, nil
}

// Tanh applies the elementwise hyperbolic tangent.
func Tanh(x *Tensor) *Tensor {
	y := New(x.Shape...)
	for i, v := range x.Data {
		y.Data[i] = float32(math.Tanh(float64(v)))
	}
	return y
}

// TanhGrad computes dx = dy * (1 - tanh(x)^2) given the forward OUTPUT y.
func TanhGrad(y, dy *Tensor) (*Tensor, error) {
	if !y.SameShape(dy) {
		return nil, fmt.Errorf("tensor: TanhGrad shapes %v vs %v", y.Shape, dy.Shape)
	}
	dx := New(y.Shape...)
	for i := range dx.Data {
		dx.Data[i] = dy.Data[i] * (1 - y.Data[i]*y.Data[i])
	}
	return dx, nil
}

// Sigmoid applies the elementwise logistic function.
func Sigmoid(x *Tensor) *Tensor {
	y := New(x.Shape...)
	for i, v := range x.Data {
		y.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return y
}

// SigmoidGrad computes dx = dy * y * (1-y) given the forward OUTPUT y.
func SigmoidGrad(y, dy *Tensor) (*Tensor, error) {
	if !y.SameShape(dy) {
		return nil, fmt.Errorf("tensor: SigmoidGrad shapes %v vs %v", y.Shape, dy.Shape)
	}
	dx := New(y.Shape...)
	for i := range dx.Data {
		dx.Data[i] = dy.Data[i] * y.Data[i] * (1 - y.Data[i])
	}
	return dx, nil
}

// Dropout zeroes each element with probability p (seeded rng) and
// scales survivors by 1/(1-p); it returns the mask for the backward
// pass.
func Dropout(x *Tensor, p float64, rng *rand.Rand) (*Tensor, *Tensor, error) {
	if p < 0 || p >= 1 {
		return nil, nil, fmt.Errorf("tensor: Dropout p=%g out of [0,1)", p)
	}
	y := New(x.Shape...)
	mask := New(x.Shape...)
	scale := float32(1 / (1 - p))
	for i, v := range x.Data {
		if rng.Float64() >= p {
			mask.Data[i] = scale
			y.Data[i] = v * scale
		}
	}
	return y, mask, nil
}

// DropoutGrad masks dy with the forward mask.
func DropoutGrad(mask, dy *Tensor) (*Tensor, error) {
	return Mul(mask, dy)
}

// Pad zero-pads the two spatial dimensions of an NHWC tensor.
func Pad(x *Tensor, top, bottom, left, right int) (*Tensor, error) {
	checkRank("Pad", x, 4)
	if top < 0 || bottom < 0 || left < 0 || right < 0 {
		return nil, fmt.Errorf("tensor: negative padding")
	}
	N, H, W, C := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	y := New(N, H+top+bottom, W+left+right, C)
	for n := 0; n < N; n++ {
		for h := 0; h < H; h++ {
			for w := 0; w < W; w++ {
				for c := 0; c < C; c++ {
					y.Set4(n, h+top, w+left, c, x.At4(n, h, w, c))
				}
			}
		}
	}
	return y, nil
}

// Concat concatenates NHWC tensors along the channel axis.
func Concat(parts ...*Tensor) (*Tensor, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("tensor: Concat of nothing")
	}
	first := parts[0]
	checkRank("Concat", first, 4)
	N, H, W := first.Shape[0], first.Shape[1], first.Shape[2]
	totalC := 0
	for _, p := range parts {
		checkRank("Concat", p, 4)
		if p.Shape[0] != N || p.Shape[1] != H || p.Shape[2] != W {
			return nil, fmt.Errorf("tensor: Concat spatial mismatch %v vs %v", p.Shape, first.Shape)
		}
		totalC += p.Shape[3]
	}
	y := New(N, H, W, totalC)
	base := 0
	for _, p := range parts {
		C := p.Shape[3]
		for n := 0; n < N; n++ {
			for h := 0; h < H; h++ {
				for w := 0; w < W; w++ {
					for c := 0; c < C; c++ {
						y.Set4(n, h, w, base+c, p.At4(n, h, w, c))
					}
				}
			}
		}
		base += C
	}
	return y, nil
}

// Sum reduces a tensor to the scalar sum of its elements.
func Sum(x *Tensor) float64 {
	var s float64
	for _, v := range x.Data {
		s += float64(v)
	}
	return s
}

// Mean reduces a tensor to the mean of its elements.
func Mean(x *Tensor) float64 {
	if x.Size() == 0 {
		return 0
	}
	return Sum(x) / float64(x.Size())
}
