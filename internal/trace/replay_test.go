package trace

import (
	"bytes"
	"math"
	"testing"

	"heteropim/internal/nn"
)

func TestToGraphRoundTripPreservesCosts(t *testing.T) {
	src := nn.AlexNet()
	recs := Generate(src, 0)
	g, err := ToGraph("AlexNet-replayed", recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Ops) != len(src.Ops) {
		t.Fatalf("replay op count %d vs %d", len(g.Ops), len(src.Ops))
	}
	srcFlops, srcBytes := src.Totals()
	gotFlops, gotBytes := g.Totals()
	if math.Abs(srcFlops-gotFlops) > 1e-6*srcFlops {
		t.Fatalf("replay flops %g vs %g", gotFlops, srcFlops)
	}
	if math.Abs(srcBytes-gotBytes) > 1e-6*srcBytes {
		t.Fatalf("replay bytes %g vs %g", gotBytes, srcBytes)
	}
	// Dependency structure survives.
	for i, op := range src.Ops {
		if len(g.Ops[i].Inputs) != len(op.Inputs) {
			t.Fatalf("op %d deps %d vs %d", i, len(g.Ops[i].Inputs), len(op.Inputs))
		}
	}
}

func TestToGraphRoundTripThroughSerialization(t *testing.T) {
	src := nn.DCGAN()
	var buf bytes.Buffer
	if err := Write(&buf, Generate(src, 0)); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ToGraph("DCGAN-replayed", recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestToGraphErrors(t *testing.T) {
	if _, err := ToGraph("m", nil); err == nil {
		t.Fatal("empty trace must error")
	}
	if _, err := ToGraph("m", []Record{{Op: ""}}); err == nil {
		t.Fatal("nameless record must error")
	}
	if _, err := ToGraph("m", []Record{{Op: "a"}, {Op: "a"}}); err == nil {
		t.Fatal("duplicate names must error")
	}
	if _, err := ToGraph("m", []Record{{Op: "a", Deps: []string{"ghost"}}}); err == nil {
		t.Fatal("unknown dependency must error")
	}
}

func TestGranuleForCoversCatalog(t *testing.T) {
	for _, tp := range nn.KnownOpTypes() {
		if granuleFor(tp) < 1 {
			t.Errorf("%s: granule < 1", tp)
		}
	}
}
