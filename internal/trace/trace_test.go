package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"heteropim/internal/nn"
)

func TestGenerateCoversAllOps(t *testing.T) {
	g := nn.AlexNet()
	recs := Generate(g, 3)
	if len(recs) != len(g.Ops) {
		t.Fatalf("%d records for %d ops", len(recs), len(g.Ops))
	}
	for i, r := range recs {
		if r.Step != 3 {
			t.Fatalf("record %d step = %d", i, r.Step)
		}
		if r.Loads < 0 || r.Stores < 0 {
			t.Fatalf("record %d has negative memory counts", i)
		}
		op := g.Ops[i]
		wantLines := op.Bytes / cacheLine
		if math.Abs((r.Loads+r.Stores)-wantLines) > 1e-6*wantLines+1e-9 {
			t.Fatalf("record %d lines = %g, want %g", i, r.Loads+r.Stores, wantLines)
		}
		if len(r.Deps) != len(op.Inputs) {
			t.Fatalf("record %d deps = %d, want %d", i, len(r.Deps), len(op.Inputs))
		}
	}
}

func TestReductionsAreLoadHeavy(t *testing.T) {
	g := nn.VGG19()
	recs := Generate(g, 0)
	for _, r := range recs {
		if r.Type == nn.OpBiasAddGrad && r.Loads+r.Stores > 0 {
			if frac := r.Loads / (r.Loads + r.Stores); frac < 0.8 {
				t.Fatalf("BiasAddGrad load fraction %g, want >= 0.8", frac)
			}
			return
		}
	}
	t.Fatal("no BiasAddGrad record found")
}

func TestBranchDensityTracksDecomposability(t *testing.T) {
	// Relu (conditional, not decomposable) must be branchier than
	// Conv2D (pure multiply-add).
	if branchDensity(nn.OpRelu) <= branchDensity(nn.OpConv2D) {
		t.Fatal("Relu should be branchier than Conv2D")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := nn.DCGAN()
	recs := Generate(g, 1)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Op != recs[i].Op || got[i].Muls != recs[i].Muls || got[i].Loads != recs[i].Loads {
			t.Fatalf("record %d mutated in round trip", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage input must error")
	}
}

func TestSummarize(t *testing.T) {
	g := nn.AlexNet()
	recs := Generate(g, 0)
	s := Summarize(recs)
	if s.Records != len(recs) {
		t.Fatalf("summary records = %d", s.Records)
	}
	flops, bytesTotal := g.Totals()
	if math.Abs(s.TotalFlops-flops) > 1e-6*flops {
		t.Fatalf("summary flops = %g, graph says %g", s.TotalFlops, flops)
	}
	if math.Abs(s.TotalBytes-bytesTotal) > 1e-6*bytesTotal {
		t.Fatalf("summary bytes = %g, graph says %g", s.TotalBytes, bytesTotal)
	}
	if s.BranchyOps == 0 {
		t.Fatal("expected some branchy ops (Relu, MaxPool...)")
	}
}
