// Package trace is the Pin substitute of the simulation framework
// (paper Section V-A: "we employ a trace generator developed on Pin to
// collect instruction trace, when running our OpenCL kernel binaries on
// CPU"). It lowers a training-step graph into per-operation instruction
// mix records — the features the Python trace-driven simulator consumed
// — and can serialize them as JSON lines for external tooling.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"heteropim/internal/nn"
)

// Record is the instruction-mix summary of one operation invocation.
type Record struct {
	Op       string    `json:"op"`
	Type     nn.OpType `json:"type"`
	Step     int       `json:"step"`
	Muls     float64   `json:"muls"`
	Adds     float64   `json:"adds"`
	OtherALU float64   `json:"other_alu"`
	// Loads and Stores are main-memory access counts (64-byte lines).
	Loads  float64 `json:"loads"`
	Stores float64 `json:"stores"`
	// Branches approximates control-flow density; fixed-function PIMs
	// cannot execute branchy regions, which is what makes an op only
	// partially decomposable.
	Branches float64 `json:"branches"`
	// Deps lists the in-step dependency op names.
	Deps []string `json:"deps,omitempty"`
}

const cacheLine = 64

// loadStoreSplit apportions an op's main-memory traffic between loads
// and stores: reductions mostly read, scatter ops mostly write,
// everything else streams roughly 2:1.
func loadStoreSplit(t nn.OpType) (loadFrac float64) {
	switch t {
	case nn.OpBiasAddGrad, nn.OpSum, nn.OpMean, nn.OpSoftmax, nn.OpCrossEntropy:
		return 0.9
	case nn.OpEmbeddingGrad, nn.OpMaxPoolGrad, nn.OpAvgPoolGrad:
		return 0.45
	default:
		return 0.67
	}
}

// branchDensity estimates branches per ALU op for an op type from its
// non-decomposable fraction.
func branchDensity(t nn.OpType) float64 {
	p := nn.ProfileFor(t)
	return 0.02 + 0.3*(1-p.DecomposableFrac)
}

// Generate lowers one training step into trace records.
func Generate(g *nn.Graph, step int) []Record {
	out := make([]Record, 0, len(g.Ops))
	for _, op := range g.Ops {
		lines := op.Bytes / cacheLine
		lf := loadStoreSplit(op.Type)
		deps := make([]string, 0, len(op.Inputs))
		for _, in := range op.Inputs {
			deps = append(deps, g.Ops[in].Name)
		}
		out = append(out, Record{
			Op:       op.Name,
			Type:     op.Type,
			Step:     step,
			Muls:     op.Muls,
			Adds:     op.Adds,
			OtherALU: op.OtherFlops,
			Loads:    lines * lf,
			Stores:   lines * (1 - lf),
			Branches: (op.Muls + op.Adds + op.OtherFlops) * branchDensity(op.Type),
			Deps:     deps,
		})
	}
	return out
}

// Write serializes records as JSON lines.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("trace: encoding record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses JSON-line records back.
func Read(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// Summary aggregates a trace.
type Summary struct {
	Records     int
	TotalFlops  float64
	TotalLoads  float64
	TotalStores float64
	TotalBytes  float64
	BranchyOps  int // ops with branch density above 10%
}

// Summarize reduces a trace to totals.
func Summarize(recs []Record) Summary {
	var s Summary
	s.Records = len(recs)
	for _, r := range recs {
		alu := r.Muls + r.Adds + r.OtherALU
		s.TotalFlops += alu
		s.TotalLoads += r.Loads
		s.TotalStores += r.Stores
		s.TotalBytes += (r.Loads + r.Stores) * cacheLine
		if alu > 0 && r.Branches/alu > 0.1 {
			s.BranchyOps++
		}
	}
	return s
}
