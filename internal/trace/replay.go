package trace

import (
	"fmt"

	"heteropim/internal/nn"
)

// ToGraph reconstructs a training-step graph from a trace — the other
// half of the paper's flow: the Pin trace is what the Python simulator
// consumed, so a trace written with Write/Generate must replay into the
// simulator and produce the same schedule. Dependencies are rebuilt
// from the Deps name lists; costs from the instruction mix.
func ToGraph(model string, recs []Record) (*nn.Graph, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	g := &nn.Graph{Model: model, BatchSize: 1}
	idByName := make(map[string]int, len(recs))
	for i, r := range recs {
		if r.Op == "" {
			return nil, fmt.Errorf("trace: record %d has no op name", i)
		}
		if _, dup := idByName[r.Op]; dup {
			return nil, fmt.Errorf("trace: duplicate op name %q", r.Op)
		}
		op := nn.Op{
			Name:        r.Op,
			Type:        r.Type,
			Muls:        r.Muls,
			Adds:        r.Adds,
			OtherFlops:  r.OtherALU,
			Bytes:       (r.Loads + r.Stores) * cacheLine,
			UnitGranule: granuleFor(r.Type),
		}
		added := g.AddOp(op)
		idByName[r.Op] = added.ID
	}
	for i, r := range recs {
		for _, dep := range r.Deps {
			src, ok := idByName[dep]
			if !ok {
				return nil, fmt.Errorf("trace: record %d depends on unknown op %q", i, dep)
			}
			g.Ops[i].Inputs = append(g.Ops[i].Inputs, src)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("trace: replayed graph: %w", err)
	}
	return g, nil
}

// granuleFor recovers a plausible fixed-function granule for a replayed
// op type (the trace format does not carry filter geometry; the default
// granules match the op catalog's common shapes).
func granuleFor(t nn.OpType) int {
	switch t {
	case nn.OpConv2D, nn.OpConv2DBackpropFilter, nn.OpConv2DBackpropInput:
		return 17 // 3x3 dot-product tree
	case nn.OpMatMul, nn.OpLSTMCell, nn.OpLSTMCellGrad, nn.OpNCELoss:
		return 127
	case nn.OpBiasAddGrad:
		return 31
	case nn.OpApplyAdam:
		return 16
	case nn.OpBatchNorm, nn.OpBatchNormGrad:
		return 7
	default:
		return 1
	}
}
