// Package device holds the analytic (roofline) execution models of every
// compute resource the paper evaluates: the host CPU, the GPU baseline
// (with the per-model utilizations of Section V-D and the PCIe transfer
// model), the programmable PIM, the fixed-function PIM pool, and the
// Neurocube comparison point (Section VI-C).
//
// Each model reduces one operation to a Work{compute-limited, bandwidth-
// limited} pair; the executors in internal/core combine these with
// launch/synchronization overheads and, for the PIM pool, with dynamic
// unit grants inside the discrete-event simulator.
package device

import (
	"math"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// Work is the roofline decomposition of one operation (or one phase of
// an operation) on a device.
type Work struct {
	// Compute is the compute-limited execution time.
	Compute hw.Seconds
	// Memory is the bandwidth-limited execution time.
	Memory hw.Seconds
}

// Time is the roofline execution time: max of the two limits.
func (w Work) Time() hw.Seconds { return math.Max(w.Compute, w.Memory) }

// MemBound reports whether the op is bandwidth limited on this device.
func (w Work) MemBound() bool { return w.Memory > w.Compute }

// safeDiv guards the many rate divisions: zero or negative denominators
// mean "this device cannot do that work" and yield +Inf, which max()
// then surfaces loudly instead of silently returning 0.
func safeDiv(num, den float64) float64 {
	if num <= 0 {
		return 0
	}
	if den <= 0 {
		return math.Inf(1)
	}
	return num / den
}

// CPUOp models a whole operation on the host CPU.
func CPUOp(op *nn.Op, cpu hw.CPUSpec) Work {
	p := nn.ProfileFor(op.Type)
	return Work{
		Compute: safeDiv(op.TotalFlops(), cpu.Peak()*p.CPUComputeEff),
		Memory:  safeDiv(op.Bytes, cpu.MemBandwidth*p.CPUBwEff),
	}
}

// CPUResidual models only the non-decomposable phases of an op on the
// CPU (the Fixed-PIM-only baseline runs these phases host-side).
func CPUResidual(op *nn.Op, cpu hw.CPUSpec) Work {
	p := nn.ProfileFor(op.Type)
	return Work{
		Compute: safeDiv(op.ResidualFlops(), cpu.Peak()*p.CPUComputeEff),
		Memory:  safeDiv(op.Bytes*residualByteFrac, cpu.MemBandwidth*p.CPUBwEff),
	}
}

// GPUOp models a whole operation on the GPU. util is the model's average
// GPU utilization from Section V-D; the launch overhead is charged by
// the executor, and host<->device transfers are charged per step.
func GPUOp(op *nn.Op, gpu hw.GPUSpec, util float64) Work {
	p := nn.ProfileFor(op.Type)
	if util <= 0 {
		util = 1
	}
	return Work{
		Compute: safeDiv(op.TotalFlops(), gpu.Peak()*util*p.GPUComputeEff),
		Memory:  safeDiv(op.Bytes, gpu.MemBandwidth*p.GPUBwEff),
	}
}

// GPUStepTransferTime is the per-step host<->device transfer time that
// cannot be hidden behind compute: the minibatch itself plus the
// unhidden fraction of the activation working set (Section VI-A's
// data-movement bars; large-working-set models hide less).
func GPUStepTransferTime(g *nn.Graph, gpu hw.GPUSpec) hw.Seconds {
	bytes := g.InputBytes + g.GPUUnhiddenTransferFrac*g.ActivationBytes
	return safeDiv(bytes, gpu.HostLinkBandwidth)
}

// GPUStepTransferBytes returns the same volume in bytes (for energy).
func GPUStepTransferBytes(g *nn.Graph) float64 {
	return g.InputBytes + g.GPUUnhiddenTransferFrac*g.ActivationBytes
}

// residualByteFrac is the share of an op's traffic attributed to its
// non-decomposable phases when it is offloaded (the Fig. 6 phases touch
// index structures and a slice of the data, not the whole tensor).
const residualByteFrac = 0.10

// decomposableByteFrac is the complementary share streamed by the
// fixed-function units.
const decomposableByteFrac = 1 - residualByteFrac

// ProgOp models a whole operation on `processors` programmable-PIM
// processors (bounded by the op's intrinsic parallelism).
func ProgOp(op *nn.Op, spec hw.ProgPIMSpec, processors int, stack hw.StackSpec) Work {
	p := nn.ProfileFor(op.Type)
	usable := nn.ProgParallelismFor(op.Type)
	if processors < usable {
		usable = processors
	}
	if usable < 1 {
		usable = 1
	}
	perProc := float64(spec.CoresPerProcessor) * spec.Freq * spec.FlopsPerCycle
	return Work{
		Compute: safeDiv(op.TotalFlops(), float64(usable)*perProc*p.ProgComputeEff),
		Memory:  safeDiv(op.Bytes, stack.ScaledInternalBandwidth()*p.ProgBwEff),
	}
}

// ProgResidual models only the non-decomposable phases on one
// programmable-PIM processor (the recursive-kernel host side, Fig. 6).
// Residual phases are simple streaming loops, so they run at a higher
// sustained efficiency than whole complex ops.
func ProgResidual(op *nn.Op, spec hw.ProgPIMSpec, stack hw.StackSpec) Work {
	perProc := float64(spec.CoresPerProcessor) * spec.Freq * spec.FlopsPerCycle
	const residualEff = 0.5
	p := nn.ProfileFor(op.Type)
	return Work{
		Compute: safeDiv(op.ResidualFlops(), perProc*residualEff),
		Memory:  safeDiv(op.Bytes*residualByteFrac, stack.ScaledInternalBandwidth()*p.ProgBwEff),
	}
}

// FixedUnitRate is the per-unit FLOP rate of the fixed-function pool at
// the (possibly frequency-scaled) stack clock, after the op's sustained
// efficiency.
func FixedUnitRate(op *nn.Op, spec hw.FixedPIMSpec, stack hw.StackSpec) hw.FlopsPerSec {
	p := nn.ProfileFor(op.Type)
	if !p.FixedEligible {
		return 0
	}
	return spec.FlopsPerUnitCycle * stack.EffectiveFreq() * p.FixedComputeEff
}

// fixedStreamReuse estimates how many FLOPs the fixed-function units
// extract per operand byte fetched through the TSVs: the per-bank
// buffering (Section IV-D) reuses each loaded input across the filter
// taps, so reuse grows with the dot-product granule and is clamped to
// the buffer capacity.
func fixedStreamReuse(op *nn.Op) float64 {
	taps := float64(op.UnitGranule+1) / 2
	if taps < 6 {
		taps = 6
	}
	if taps > 32 {
		taps = 32
	}
	return taps
}

// FixedWork returns the decomposable work volume (flops, bytes) an
// offloaded op streams through the fixed-function units. The byte
// volume is the larger of the op's DRAM-traffic share and the PIM-side
// streaming traffic (4 bytes per FLOP divided by the tap reuse) — at
// high PLL multipliers the latter is what saturates the stack's
// internal bandwidth (Fig. 11).
func FixedWork(op *nn.Op) (flops, bytes float64) {
	flops = op.DecomposableFlops()
	bytes = op.Bytes * decomposableByteFrac
	if stream := flops * 4 / fixedStreamReuse(op); stream > bytes {
		bytes = stream
	}
	return flops, bytes
}

// FixedSectionTime is the duration of executing `flops` of decomposable
// work (with its share of `bytes`) on `units` granted units.
func FixedSectionTime(op *nn.Op, flops, bytes float64, units int, spec hw.FixedPIMSpec, stack hw.StackSpec) hw.Seconds {
	if units <= 0 {
		return math.Inf(1)
	}
	p := nn.ProfileFor(op.Type)
	rate := FixedUnitRate(op, spec, stack) * float64(units)
	w := Work{
		Compute: safeDiv(flops, rate),
		Memory:  safeDiv(bytes, stack.ScaledInternalBandwidth()*p.FixedBwEff),
	}
	return w.Time()
}

// NeurocubeSpec parameterizes the Neurocube comparison point
// (Kim et al., ISCA 2016): programmable MAC-array processing elements,
// one per vault, in the logic layer of a 3D stack — no fixed-function
// complement and no dynamic runtime scheduling.
type NeurocubeSpec struct {
	PEs            int
	Freq           hw.Hz
	MACsPerPECycle float64
	InternalBW     hw.BytesPerSec
	// ComputeEff is the sustained fraction of peak on training ops.
	ComputeEff float64
	// LaunchOverhead is charged per operation (host-driven execution).
	LaunchOverhead hw.Seconds
	// DynamicPower of the PE array (the host CPU is accounted
	// separately, as in the paper's whole-system methodology).
	DynamicPower hw.Watts
}

// DefaultNeurocube returns the published configuration scaled to the
// same HMC-class stack: 16 PEs at 300 MHz with 8-wide MAC arrays.
func DefaultNeurocube() NeurocubeSpec {
	return NeurocubeSpec{
		PEs:            16,
		Freq:           300 * hw.MHz,
		MACsPerPECycle: 8,
		InternalBW:     240 * hw.GBps,
		ComputeEff:     0.55,
		LaunchOverhead: 6e-6,
		DynamicPower:   6.5,
	}
}

// Peak returns Neurocube's aggregate FLOP rate (2 FLOPs per MAC).
func (n NeurocubeSpec) Peak() hw.FlopsPerSec {
	return float64(n.PEs) * n.Freq * n.MACsPerPECycle * 2
}

// NeurocubeOp models one operation on Neurocube. Non-MAC-friendly ops
// (conditionals, scatter) run at a fraction of the array's efficiency.
func NeurocubeOp(op *nn.Op, spec NeurocubeSpec) Work {
	p := nn.ProfileFor(op.Type)
	eff := spec.ComputeEff
	if !p.FixedEligible {
		// The MAC arrays stall on control-heavy work; the embedded
		// controller handles it at a crawl.
		eff *= 0.15
	}
	return Work{
		Compute: safeDiv(op.TotalFlops(), spec.Peak()*eff),
		Memory:  safeDiv(op.Bytes, spec.InternalBW*0.7),
	}
}
