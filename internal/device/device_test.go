package device

import (
	"math"
	"testing"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

func convOp() *nn.Op {
	// A VGG-ish conv backprop-filter instance: 100 GFLOP, 4 GB traffic.
	return &nn.Op{
		Name: "conv/Conv2DBackpropFilter", Type: nn.OpConv2DBackpropFilter,
		Muls: 50e9, Adds: 50e9, OtherFlops: 1e9, Bytes: 4e9, UnitGranule: 17,
	}
}

func reluOp() *nn.Op {
	return &nn.Op{Name: "relu", Type: nn.OpRelu, OtherFlops: 1e8, Bytes: 8e8, UnitGranule: 1}
}

func TestWorkTimeIsRoofline(t *testing.T) {
	w := Work{Compute: 2, Memory: 3}
	if w.Time() != 3 || !w.MemBound() {
		t.Fatal("roofline max broken")
	}
	w = Work{Compute: 5, Memory: 1}
	if w.Time() != 5 || w.MemBound() {
		t.Fatal("compute-bound case broken")
	}
}

func TestCPUOpMatchesHandRoofline(t *testing.T) {
	op := convOp()
	cpu := hw.PaperCPU()
	p := nn.ProfileFor(op.Type)
	w := CPUOp(op, cpu)
	wantC := op.TotalFlops() / (cpu.Peak() * p.CPUComputeEff)
	wantM := op.Bytes / (cpu.MemBandwidth * p.CPUBwEff)
	if math.Abs(w.Compute-wantC) > 1e-12*wantC || math.Abs(w.Memory-wantM) > 1e-12*wantM {
		t.Fatalf("CPU work = %+v, want (%g,%g)", w, wantC, wantM)
	}
}

func TestGPUFasterThanCPUOnConv(t *testing.T) {
	op := convOp()
	cpu := CPUOp(op, hw.PaperCPU()).Time()
	gpu := GPUOp(op, hw.PaperGPU(), 0.63).Time()
	if gpu >= cpu {
		t.Fatalf("GPU (%g) should beat CPU (%g) on conv backprop", gpu, cpu)
	}
}

func TestGPUUtilizationScalesCompute(t *testing.T) {
	op := convOp()
	lo := GPUOp(op, hw.PaperGPU(), 0.30)
	hi := GPUOp(op, hw.PaperGPU(), 0.60)
	if r := lo.Compute / hi.Compute; math.Abs(r-2) > 1e-9 {
		t.Fatalf("utilization scaling ratio = %g, want 2", r)
	}
	// Zero utilization falls back to 1 rather than dividing by zero.
	z := GPUOp(op, hw.PaperGPU(), 0)
	if math.IsInf(z.Compute, 1) || z.Compute <= 0 {
		t.Fatal("zero utilization must not produce Inf/0")
	}
}

func TestGPUStepTransfer(t *testing.T) {
	g := nn.VGG19()
	tt := GPUStepTransferTime(g, hw.PaperGPU())
	if tt <= 0 {
		t.Fatal("transfer time must be positive")
	}
	wantBytes := g.InputBytes + g.GPUUnhiddenTransferFrac*g.ActivationBytes
	if b := GPUStepTransferBytes(g); math.Abs(b-wantBytes) > 1 {
		t.Fatalf("transfer bytes = %g, want %g", b, wantBytes)
	}
}

func TestFixedUnitRate(t *testing.T) {
	op := convOp()
	spec := hw.PaperFixedPIM(444)
	r1 := FixedUnitRate(op, spec, hw.PaperStack(1))
	r4 := FixedUnitRate(op, spec, hw.PaperStack(4))
	if r1 <= 0 {
		t.Fatal("conv must be fixed-eligible")
	}
	if math.Abs(r4/r1-4) > 1e-9 {
		t.Fatalf("frequency scaling ratio = %g, want 4", r4/r1)
	}
	if FixedUnitRate(reluOp(), spec, hw.PaperStack(1)) != 0 {
		t.Fatal("Relu must not be fixed-eligible")
	}
}

func TestFixedSectionTimeScalesWithUnits(t *testing.T) {
	op := convOp()
	spec := hw.PaperFixedPIM(444)
	stack := hw.PaperStack(1)
	flops, bytes := FixedWork(op)
	if flops <= 0 || bytes <= 0 || flops > op.TotalFlops() {
		t.Fatalf("fixed work = (%g,%g)", flops, bytes)
	}
	t100 := FixedSectionTime(op, flops, 0, 100, spec, stack)
	t400 := FixedSectionTime(op, flops, 0, 400, spec, stack)
	if r := t100 / t400; math.Abs(r-4) > 1e-9 {
		t.Fatalf("unit scaling ratio = %g, want 4", r)
	}
	if !math.IsInf(FixedSectionTime(op, flops, bytes, 0, spec, stack), 1) {
		t.Fatal("zero units must be infinitely slow")
	}
	// With enough units the section becomes bandwidth bound.
	tBig := FixedSectionTime(op, flops, bytes, 100000, spec, stack)
	p := nn.ProfileFor(op.Type)
	wantMem := bytes / (stack.ScaledInternalBandwidth() * p.FixedBwEff)
	if math.Abs(tBig-wantMem) > 1e-9*wantMem {
		t.Fatalf("bandwidth floor = %g, want %g", tBig, wantMem)
	}
}

func TestProgOpParallelismCaps(t *testing.T) {
	op := convOp() // conv family: prog parallelism 16
	spec := hw.PaperProgPIM(64)
	stack := hw.PaperStack(1)
	w16 := ProgOp(op, spec, 16, stack)
	w64 := ProgOp(op, spec, 64, stack)
	if w16.Compute != w64.Compute {
		t.Fatal("beyond the parallelism cap extra processors must not help")
	}
	w1 := ProgOp(op, spec, 1, stack)
	if r := w1.Compute / w16.Compute; math.Abs(r-16) > 1e-9 {
		t.Fatalf("prog scaling = %g, want 16", r)
	}
	wz := ProgOp(op, spec, 0, stack)
	if math.IsInf(wz.Compute, 1) {
		t.Fatal("zero processors must clamp to 1, not Inf")
	}
}

func TestProgResidualSmallerThanWholeOp(t *testing.T) {
	op := convOp()
	spec := hw.PaperProgPIM(1)
	stack := hw.PaperStack(1)
	whole := ProgOp(op, spec, 1, stack).Time()
	resid := ProgResidual(op, spec, stack).Time()
	if resid >= whole {
		t.Fatalf("residual (%g) must be cheaper than the whole op (%g)", resid, whole)
	}
}

func TestResidualPlusDecomposableCoversAllFlops(t *testing.T) {
	op := convOp()
	if d := math.Abs(op.DecomposableFlops() + op.ResidualFlops() - op.TotalFlops()); d > 1e-3 {
		t.Fatalf("flop split leaks %g", d)
	}
}

func TestNeurocubeSlowerThanFixedPoolOnConv(t *testing.T) {
	op := convOp()
	ncube := DefaultNeurocube()
	w := NeurocubeOp(op, ncube)
	flops, bytes := FixedWork(op)
	fixed := FixedSectionTime(op, flops, bytes, 436, hw.PaperFixedPIM(436), hw.PaperStack(1))
	if w.Time() <= fixed {
		t.Fatalf("Neurocube (%g) should lose to the full fixed pool (%g) on conv", w.Time(), fixed)
	}
}

func TestNeurocubeControlHeavyPenalty(t *testing.T) {
	ncube := DefaultNeurocube()
	relu := reluOp()
	conv := convOp()
	// Normalize by flops: per-flop the control-heavy op must be slower.
	perFlopRelu := NeurocubeOp(relu, ncube).Compute / relu.TotalFlops()
	perFlopConv := NeurocubeOp(conv, ncube).Compute / conv.TotalFlops()
	if perFlopRelu <= perFlopConv {
		t.Fatal("control-heavy ops must be slower per flop on Neurocube")
	}
}

func TestSafeDiv(t *testing.T) {
	if safeDiv(0, 5) != 0 || safeDiv(-1, 5) != 0 {
		t.Fatal("non-positive numerators must give 0")
	}
	if !math.IsInf(safeDiv(5, 0), 1) {
		t.Fatal("zero denominator must give +Inf")
	}
	if safeDiv(10, 2) != 5 {
		t.Fatal("plain division broken")
	}
}
