package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "Demo",
		Columns: []string{"Name", "Value"},
	}
	tab.AddRow("alpha", "1.00x")
	tab.AddRow("beta-very-long-name", "2")
	tab.AddRow("short") // padded
	tab.Notes = append(tab.Notes, "a footnote")
	out := tab.String()
	for _, want := range []string{"Demo", "Name", "alpha", "beta-very-long-name", "note: a footnote"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, 3 rows, note.
	if len(lines) != 8 {
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestAddRowTruncatesExtraCells(t *testing.T) {
	tab := &Table{Columns: []string{"A"}}
	tab.AddRow("x", "overflow")
	if len(tab.Rows[0]) != 1 {
		t.Fatal("extra cells must be dropped")
	}
}

func TestAddRowVals(t *testing.T) {
	tab := &Table{Columns: []string{"A", "B"}}
	tab.AddRowVals(42, 3.5)
	if tab.Rows[0][0] != "42" || tab.Rows[0][1] != "3.5" {
		t.Fatalf("row = %v", tab.Rows[0])
	}
}

func TestNumericCellsRightJustified(t *testing.T) {
	tab := &Table{Columns: []string{"Name", "Value"}}
	tab.AddRow("something-long", "1.5x")
	out := tab.String()
	if !strings.Contains(out, "           1.5x") && !strings.Contains(out, " 1.5x") {
		t.Fatalf("numeric cell not right-justified:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	cases := map[string]string{
		Seconds(2.5):    "2.500s",
		Seconds(0.0025): "2.500ms",
		Seconds(25e-6):  "25.000us",
		Ratio(1.5):      "1.50x",
		Percent(0.42):   "42.0%",
		Joules(3.25):    "3.2J",
		Joules(0.004):   "4.0mJ",
		Watts(68):       "68.0W",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("formatter produced %q, want %q", got, want)
		}
	}
}

func TestLooksNumeric(t *testing.T) {
	for _, s := range []string{"1.50x", "42.0%", "3.2J", "68.0W", "-5", "2.500s"} {
		if !looksNumeric(s) {
			t.Errorf("%q should look numeric", s)
		}
	}
	for _, s := range []string{"", "VGG-19", "Hetero PIM"} {
		if looksNumeric(s) {
			t.Errorf("%q should not look numeric", s)
		}
	}
}

// TestPadTable pins pad's contract for reuse outside the renderer (the
// pimserve status page builds Tables from request-supplied strings):
// non-positive and too-small widths return the string unchanged, widths
// count bytes (multi-byte runes over-fill their column), and the
// numeric/text distinction picks the padding side.
func TestPadTable(t *testing.T) {
	cases := []struct {
		name string
		s    string
		w    int
		want string
	}{
		{"numeric right-justified", "1.5x", 6, "  1.5x"},
		{"text left-justified", "abc", 6, "abc   "},
		{"exact width unchanged", "abcd", 4, "abcd"},
		{"wider than column unchanged", "abcdef", 4, "abcdef"},
		{"zero width unchanged", "x", 0, "x"},
		{"negative width unchanged", "x", -3, "x"},
		{"empty cell fills column", "", 3, "   "},
		{"byte width: µ counts as two", "µs", 4, "µs "},
		{"exponent right-justified", "1.5e-3", 8, "  1.5e-3"},
		{"ms suffix is text", "2.500ms", 9, "2.500ms  "},
	}
	for _, c := range cases {
		if got := pad(c.s, c.w); got != c.want {
			t.Errorf("%s: pad(%q, %d) = %q, want %q", c.name, c.s, c.w, got, c.want)
		}
	}
}

// TestLooksNumericTable pins the classifier's exact character set.
// Quirks are load-bearing: the golden files fix column alignment, so
// "2.500ms"/"25.000us" staying left-justified (m and u are outside the
// set) and unit-bearing strings like "68.0W" counting as numeric must
// not change silently.
func TestLooksNumericTable(t *testing.T) {
	cases := []struct {
		s    string
		want bool
	}{
		{"", false},
		{"0", true},
		{"-5", true},
		{"+5", true},
		{"1.5e-3", true},
		{"1E6", false},   // only lowercase e is in the set
		{"2.500s", true}, // seconds suffix
		{"2.500ms", false},
		{"25.000us", false},
		{"1.50x", true},
		{"42.0%", true},
		{"3.2J", true},
		{"68.0W", true},
		{"0x12", true},  // x and digits are both in the set
		{"0xff", false}, // ...but f is not
		{"exes", true},  // all-letters-from-the-set false positive, pinned
		{" 1", false},   // leading space disqualifies
		{"1,000", false},
		{"µ", false},
		{"NaN", false},
	}
	for _, c := range cases {
		if got := looksNumeric(c.s); got != c.want {
			t.Errorf("looksNumeric(%q) = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tab := &Table{Columns: []string{"A", "B"}}
	tab.AddRow("x", "1")
	tab.AddRow("y, z", "2") // needs quoting
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "A,B\n") || !strings.Contains(out, `"y, z",2`) {
		t.Fatalf("csv output:\n%s", out)
	}
}
