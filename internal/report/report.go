// Package report renders experiment results as fixed-width text tables
// — the rows/series the paper's tables and figures report, printed by
// the benchmark harness and the CLIs.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are free-form footnotes (paper-vs-measured commentary).
	Notes []string
}

// AddRow appends a row, padding or truncating to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowVals appends a row, formatting each value with fmt.Sprint.
func (t *Table) AddRowVals(cells ...any) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		parts[i] = fmt.Sprint(c)
	}
	t.AddRow(parts...)
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(cell, widths[i]))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		total -= 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// pad left-justifies the first column style (strings) and right-
// justifies numeric-looking cells.
func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	if looksNumeric(s) {
		return strings.Repeat(" ", w-len(s)) + s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '.' || r == '-' || r == '+' || r == '%' || r == 'e' ||
			r == 'x' || r == 's' || r == 'J' || r == 'W':
		default:
			return false
		}
	}
	return true
}

// Seconds formats a duration compactly.
func Seconds(v float64) string {
	switch {
	case v >= 1:
		return fmt.Sprintf("%.3fs", v)
	case v >= 1e-3:
		return fmt.Sprintf("%.3fms", v*1e3)
	default:
		return fmt.Sprintf("%.3fus", v*1e6)
	}
}

// Ratio formats a speedup/factor.
func Ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Percent formats a fraction as a percentage.
func Percent(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Joules formats an energy.
func Joules(v float64) string {
	switch {
	case v >= 1:
		return fmt.Sprintf("%.1fJ", v)
	default:
		return fmt.Sprintf("%.1fmJ", v*1e3)
	}
}

// Watts formats a power.
func Watts(v float64) string { return fmt.Sprintf("%.1fW", v) }

// WriteCSV emits the table as CSV (header + rows); notes are skipped.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("report: csv header: %w", err)
	}
	for i, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
