package batch

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestEvalPreservesInputOrder checks results land at their cell index
// regardless of grouping and completion order.
func TestEvalPreservesInputOrder(t *testing.T) {
	ResetStats()
	cells := make([]Cell[int], 20)
	for i := range cells {
		i := i
		grp := GroupKey("m", 32, 4, true, 2)
		if i%3 == 0 {
			grp = GroupKey("n", 32, 4, true, 2)
		}
		cells[i] = Cell[int]{Group: grp, Run: func(context.Context) (int, error) {
			if i%2 == 0 { // stagger completion
				time.Sleep(time.Millisecond)
			}
			return i * i, nil
		}}
	}
	got, err := Eval(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("cell %d: got %d, want %d", i, v, i*i)
		}
	}
	st := ReadStats()
	if st.Cells != 20 || st.Groups != 2 || st.Leaders != 2 {
		t.Fatalf("stats %+v, want 20 cells, 2 groups, 2 leaders", st)
	}
}

// TestEvalLeaderRunsBeforeGroup checks the warm-up contract: the
// group's leader completes before any follower of that group starts.
func TestEvalLeaderRunsBeforeGroup(t *testing.T) {
	var leaderDone atomic.Bool
	grp := GroupKey("m", 8, 4, false, 1)
	cells := []Cell[int]{
		{Group: grp, Run: func(context.Context) (int, error) {
			time.Sleep(5 * time.Millisecond)
			leaderDone.Store(true)
			return 1, nil
		}},
	}
	for i := 0; i < 4; i++ {
		cells = append(cells, Cell[int]{Group: grp, Run: func(context.Context) (int, error) {
			if !leaderDone.Load() {
				return 0, errors.New("follower started before the group leader finished")
			}
			return 2, nil
		}})
	}
	if _, err := Eval(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
}

// TestEvalPropagatesErrors checks the first error cancels the batch.
func TestEvalPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	cells := []Cell[int]{
		{Run: func(context.Context) (int, error) { return 1, nil }},
		{Run: func(context.Context) (int, error) { return 0, boom }},
	}
	if _, err := Eval(context.Background(), cells); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the cell error", err)
	}
}

// TestGroupKeyDistinguishesTemplateInputs guards against key collisions
// between cells that must NOT share a warm-up.
func TestGroupKeyDistinguishesTemplateInputs(t *testing.T) {
	keys := map[string]bool{}
	for _, k := range []string{
		GroupKey("VGG-19", 32, 4, true, 2),
		GroupKey("VGG-19", 32, 4, false, 2),
		GroupKey("VGG-19", 32, 8, true, 2),
		GroupKey("VGG-19", 64, 4, true, 2),
		GroupKey("VGG-19", 32, 4, true, 3),
		GroupKey("AlexNet", 32, 4, true, 2),
	} {
		if keys[k] {
			t.Fatalf("duplicate group key %q", k)
		}
		keys[k] = true
	}
}

// TestEvalManyGroups smoke-tests a sweep-shaped workload (many groups,
// uneven sizes) against the runner pool.
func TestEvalManyGroups(t *testing.T) {
	var cells []Cell[string]
	want := []string{}
	for m := 0; m < 5; m++ {
		for c := 0; c <= m; c++ {
			m, c := m, c
			cells = append(cells, Cell[string]{
				Group: GroupKey(fmt.Sprintf("model%d", m), 32, 4, true, 2),
				Run:   func(context.Context) (string, error) { return fmt.Sprintf("%d/%d", m, c), nil },
			})
			want = append(want, fmt.Sprintf("%d/%d", m, c))
		}
	}
	got, err := Eval(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: %q, want %q", i, got[i], want[i])
		}
	}
}
