// Package batch is the sweep/DSE evaluation engine: it runs large sets
// of independent simulation cells on the shared worker pool, but
// exploits what the cells have in common before fanning out.
//
// Two mechanisms:
//
//   - Grouped evaluation (Eval): cells sharing a (model, batch-size,
//     steps, OP, pipeline-depth) key instantiate the same task-graph
//     template and, per configuration, the same step-1 profile. One
//     LEADER cell per group runs first and populates those caches, so
//     the group's remaining cells fan out against warm caches instead
//     of stacking up behind the per-entry build locks.
//
//   - Pruned design-space exploration (dse.go): candidates whose
//     admissible analytic lower bound already exceeds the incumbent's
//     simulated objective are discarded without simulating them.
//
// Both report their traffic through a metrics registry (batch.cells,
// batch.groups, batch.leaders, dse.candidates, dse.pruned,
// dse.simulated), surfaced by the CLIs next to the `simcache:` stats
// line.
package batch

import (
	"context"
	"fmt"
	"sync/atomic"

	"heteropim/internal/metrics"
	"heteropim/internal/runner"
)

// Cell is one independent simulation of a sweep.
type Cell[T any] struct {
	// Group keys cells that share a task-graph template and step-1
	// profile; see GroupKey. Empty groups get no leader (the cell goes
	// straight to the fan-out phase).
	Group string
	// Run executes the cell. It must be an independent, pure
	// computation (the runner.Map contract).
	Run func(ctx context.Context) (T, error)
}

// GroupKey builds the canonical grouping key: exactly the inputs that
// determine the task-graph template (model structure x steps x OP) plus
// the batch size (which changes the graph's content digest).
func GroupKey(model string, batchSize, steps int, op bool, pipelineDepth int) string {
	return fmt.Sprintf("%s|b%d|s%d|op%t|d%d", model, batchSize, steps, op, pipelineDepth)
}

// reg is the package's metrics registry; swapped wholesale by
// ResetStats, so loads go through the atomic pointer.
var reg atomic.Pointer[metrics.Registry]

func init() { reg.Store(metrics.NewRegistry()) }

// Registry returns the registry batch/DSE counters are reported to.
func Registry() *metrics.Registry { return reg.Load() }

// ResetStats zeroes every batch/DSE counter.
func ResetStats() { reg.Store(metrics.NewRegistry()) }

// Stats is a snapshot of the package counters.
type Stats struct {
	Cells, Groups, Leaders        int
	Candidates, Pruned, Simulated int
}

// ReadStats snapshots the counters accumulated since the last reset.
func ReadStats() Stats {
	r := Registry()
	return Stats{
		Cells:      int(r.CounterValue("batch.cells")),
		Groups:     int(r.CounterValue("batch.groups")),
		Leaders:    int(r.CounterValue("batch.leaders")),
		Candidates: int(r.CounterValue("dse.candidates")),
		Pruned:     int(r.CounterValue("dse.pruned")),
		Simulated:  int(r.CounterValue("dse.simulated")),
	}
}

// Eval runs the cells and returns their results in input order
// (bit-identical to a sequential loop). Grouped cells are evaluated in
// two phases: one leader per group first — warming the group's template
// and profile caches — then every remaining cell on the full worker
// pool. The first error cancels the remaining cells.
func Eval[T any](ctx context.Context, cells []Cell[T]) ([]T, error) {
	r := Registry()
	r.Add("batch.cells", float64(len(cells)))

	var leaders, rest []int
	seen := map[string]bool{}
	for i, c := range cells {
		if c.Group != "" && !seen[c.Group] {
			seen[c.Group] = true
			leaders = append(leaders, i)
		} else {
			rest = append(rest, i)
		}
	}
	r.Add("batch.groups", float64(len(seen)))
	r.Add("batch.leaders", float64(len(leaders)))

	results := make([]T, len(cells))
	runPhase := func(idx []int) error {
		if len(idx) == 0 {
			return nil
		}
		sub, err := runner.Map(ctx, len(idx), 0,
			func(ctx context.Context, k int) (T, error) { return cells[idx[k]].Run(ctx) })
		if err != nil {
			return err
		}
		for k, v := range sub {
			results[idx[k]] = v
		}
		return nil
	}
	if err := runPhase(leaders); err != nil {
		return nil, err
	}
	if err := runPhase(rest); err != nil {
		return nil, err
	}
	return results, nil
}
