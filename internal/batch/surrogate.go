package batch

import (
	"math"
	"sort"
)

// Surrogate model for DSE candidate ordering: a low-order regression
// over the design knobs (Units, FreqScale, ProgProcessors) predicting
// simulated step time. The basis mirrors the physics of the analytic
// bound — work splits into terms that scale with 1/U, 1/(U·F), 1/F and
// 1/P, plus a frequency-proportional overhead and a constant — so a
// handful of observed simulations is enough for a useful ranking.
//
// The surrogate ONLY reorders branch-and-bound candidates; it never
// decides anything. Pruning still requires the admissible analytic
// bound to strictly exceed the incumbent, so a surrogate that is wrong
// (or wildly mis-seeded) costs wasted simulations, never a wrong
// winner. dse_test.go pins winner identity with the surrogate on and
// off across the full candidate grid.

// surBasis is the feature dimension of the regression.
const surBasis = 6

// surMinObs is the smallest observation count worth fitting: below
// this, normal equations are under-determined in practice and ordering
// falls back to the analytic bound.
const surMinObs = 8

// surFeatures maps a candidate to its regression basis.
func surFeatures(c Candidate) [surBasis]float64 {
	u := float64(c.Units)
	f := c.FreqScale
	p := float64(c.ProgProcessors)
	if u < 1 {
		u = 1
	}
	if f <= 0 {
		f = 1
	}
	if p < 1 {
		p = 1
	}
	return [surBasis]float64{1, 1 / u, 1 / (u * f), 1 / f, 1 / p, f}
}

// surObs is one (candidate, simulated step time) observation.
type surObs struct {
	x [surBasis]float64
	y float64
}

// surrogate accumulates observations and fits ridge-regularized normal
// equations. The zero value is ready to use.
type surrogate struct {
	obs    []surObs
	coef   [surBasis]float64
	fitted bool
}

// add records one observation.
func (s *surrogate) add(c Candidate, stepTime float64) {
	if !(stepTime > 0) || math.IsInf(stepTime, 0) {
		return
	}
	s.obs = append(s.obs, surObs{x: surFeatures(c), y: stepTime})
}

// fit solves the normal equations (XᵀX + λI)β = Xᵀy. A tiny ridge term
// keeps the system well-posed when the observed grid is degenerate
// (e.g. every observation shares one frequency). Returns whether a
// usable fit exists.
func (s *surrogate) fit() bool {
	s.fitted = false
	if len(s.obs) < surMinObs {
		return false
	}
	var a [surBasis][surBasis + 1]float64
	for _, o := range s.obs {
		for i := 0; i < surBasis; i++ {
			for j := 0; j < surBasis; j++ {
				a[i][j] += o.x[i] * o.x[j]
			}
			a[i][surBasis] += o.x[i] * o.y
		}
	}
	// Ridge scaled to the diagonal's magnitude so it is dimensionless.
	trace := 0.0
	for i := 0; i < surBasis; i++ {
		trace += a[i][i]
	}
	lambda := 1e-9 * trace / surBasis
	if lambda <= 0 {
		lambda = 1e-12
	}
	for i := 0; i < surBasis; i++ {
		a[i][i] += lambda
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < surBasis; col++ {
		piv := col
		for r := col + 1; r < surBasis; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-300 {
			return false
		}
		a[col], a[piv] = a[piv], a[col]
		inv := 1 / a[col][col]
		for r := 0; r < surBasis; r++ {
			if r == col {
				continue
			}
			f := a[r][col] * inv
			for j := col; j <= surBasis; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	for i := 0; i < surBasis; i++ {
		v := a[i][surBasis] / a[i][i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
		s.coef[i] = v
	}
	s.fitted = true
	return true
}

// predict evaluates the fitted model; callers must check fitted.
func (s *surrogate) predict(c Candidate) float64 {
	x := surFeatures(c)
	v := 0.0
	for i := 0; i < surBasis; i++ {
		v += s.coef[i] * x[i]
	}
	return v
}

// residualSpread is the RMS residual of the fitted surrogate over its
// own observations — the confidence scale the exploration uses to
// decide which candidates are likely prunable (predicted well past the
// incumbent even after a 2-spread error allowance) and can be batched
// last.
func (s *surrogate) residualSpread() float64 {
	if !s.fitted || len(s.obs) == 0 {
		return 0
	}
	var ss float64
	for _, o := range s.obs {
		var p float64
		for k := 0; k < surBasis; k++ {
			p += s.coef[k] * o.x[k]
		}
		d := o.y - p
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s.obs)))
}

// r2 is the in-sample coefficient of determination of the current fit.
func (s *surrogate) r2() float64 {
	if !s.fitted || len(s.obs) == 0 {
		return 0
	}
	mean := 0.0
	for _, o := range s.obs {
		mean += o.y
	}
	mean /= float64(len(s.obs))
	ssTot, ssRes := 0.0, 0.0
	for _, o := range s.obs {
		pred := 0.0
		for i := 0; i < surBasis; i++ {
			pred += s.coef[i] * o.x[i]
		}
		ssTot += (o.y - mean) * (o.y - mean)
		ssRes += (o.y - pred) * (o.y - pred)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// spearman computes the rank correlation between two paired samples —
// the DSE reports it between surrogate predictions and simulated step
// times, the number that actually matters for an ordering heuristic.
func spearman(pred, actual []float64) float64 {
	n := len(pred)
	if n < 2 || n != len(actual) {
		return 0
	}
	rp := ranks(pred)
	ra := ranks(actual)
	mean := float64(n+1) / 2
	num, dp, da := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		num += (rp[i] - mean) * (ra[i] - mean)
		dp += (rp[i] - mean) * (rp[i] - mean)
		da += (ra[i] - mean) * (ra[i] - mean)
	}
	if dp == 0 || da == 0 {
		return 0
	}
	return num / math.Sqrt(dp*da)
}

// ranks assigns 1-based fractional ranks (ties share their average).
func ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}
