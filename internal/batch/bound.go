package batch

import (
	"math"

	"heteropim/internal/core"
	"heteropim/internal/device"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// StepTimeLowerBound returns an ADMISSIBLE analytic lower bound on the
// steady-state step time RunPIM(g, cfg, opts) reports: it never exceeds
// the simulated value. That property is what lets the branch-and-bound
// exploration in dse.go discard candidates without simulating them yet
// provably return the exhaustive winner.
//
// The bound is the max of two relaxations, each of which ignores every
// overhead the simulator charges (kernel launches, spawns, host/PIM
// synchronization, residual splitting, chunked grants, queueing):
//
//  1. Capacity (roofline): one step performs Σ TotalFlops of arithmetic
//     and moves Σ Bytes. Even with every resource perfectly busy in
//     parallel, arithmetic retires at most at the sum of the device
//     peaks, and traffic streams at most at the sum of the channel
//     peaks. Devices can only be slower than peak (roofline max,
//     efficiency factors, contention), so work/Σpeak is a floor.
//     The CPU contributes twice its peak (the executor's two host
//     slots each price work against the full socket), and the stack's
//     internal bandwidth twice (programmable and fixed complements are
//     modeled without mutual contention) — over-crediting the hardware
//     keeps the bound admissible.
//
//  2. Pipeline critical path: within one step the op DAG's Inputs
//     edges are always honored, and step s is only admitted once step
//     s-depth has fully completed (depth = 1 without OP). A chain of
//     ceil(Steps/depth) whole-step critical paths is therefore serial,
//     and every op on a chain needs at least its fastest device time:
//     CPU roofline, programmable-PIM roofline at FULL processor count,
//     or — when fixed-eligible — the fixed-function section time on
//     the ENTIRE pool plus the cheaper of the two residual devices.
//     Chunked grants can only be slower (max is superadditive:
//     Σᵢ max(aᵢ,bᵢ) ≥ max(Σaᵢ,Σbᵢ)) and partial grants only slower
//     than the whole pool, so the per-op floor is admissible too.
//
// Anything the bound leaves out only increases simulated time, so
// pruning on `bound > incumbent` can never discard a true winner (see
// the equivalence test across all models in dse_test.go).
func StepTimeLowerBound(g *nn.Graph, cfg hw.SystemConfig, opts core.Options) hw.Seconds {
	if opts.Stacks > 1 {
		return multiStackLowerBound(g, cfg, opts)
	}
	steps := opts.Steps
	if steps <= 0 {
		steps = 4
	}
	depth := 1
	if opts.OP {
		depth = opts.PipelineDepth
		if depth <= 0 {
			depth = 2
		}
	}

	// Relaxation 1: aggregate capacity.
	var flops, bytes float64
	for _, op := range g.Ops {
		flops += op.TotalFlops()
		bytes += op.Bytes
	}
	peak := 2*cfg.CPU.Peak() + cfg.ProgPIM.Peak() +
		float64(cfg.FixedPIM.Units)*cfg.FixedPIM.FlopsPerUnitCycle*cfg.Stack.EffectiveFreq()
	bw := 2*cfg.CPU.MemBandwidth + 2*cfg.Stack.ScaledInternalBandwidth()
	capacity := math.Max(flops/peak, bytes/bw)

	// Relaxation 2: critical path of per-op best-case durations.
	cp := criticalPath(g, cfg)
	pipelined := cp * hw.Seconds(ceilDiv(steps, depth)) / hw.Seconds(steps)

	return hw.Seconds(math.Max(capacity, float64(pipelined)))
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// multiStackLowerBound extends the bound to sharded data-parallel runs.
// The merged step time is exactly (slowest shard's compute step) +
// (all-reduce time), and the slowest shard is at least as slow as shard
// 0, whose own single-stack bound is admissible — so bound(shard 0) +
// allReduceTime is an admissible floor. The all-reduce leg uses the
// same per-phase arithmetic as the simulated schedule, in the same
// order, so it never exceeds (in fact equals) the simulated value.
// Every failure mode degrades toward zero, which is always admissible.
func multiStackLowerBound(g *nn.Graph, cfg hw.SystemConfig, opts core.Options) hw.Seconds {
	sched := opts.AllReduce
	if sched == "" {
		sched = core.ReduceRing
	}
	var ar hw.Seconds
	if t, _, err := core.AllReduceStepTime(sched, opts.Stacks, g.ParamBytes, cfg.Link); err == nil {
		ar = t
	}
	shards, err := nn.ShardBatches(g.BatchSize, opts.Stacks)
	if err != nil {
		return ar
	}
	sg, err := nn.BuildWithBatch(nn.ModelName(g.Model), shards[0])
	if err != nil {
		return ar
	}
	so := opts
	so.Stacks, so.AllReduce = 1, ""
	return StepTimeLowerBound(sg, cfg, so) + ar
}

// opFloor is the fastest any modeled path can execute op, excluding
// every overhead.
func opFloor(op *nn.Op, cfg hw.SystemConfig) hw.Seconds {
	best := device.CPUOp(op, cfg.CPU).Time()
	prof := nn.ProfileFor(op.Type)
	if prof.ProgEligible && cfg.ProgPIM.Processors > 0 {
		if t := device.ProgOp(op, cfg.ProgPIM, cfg.ProgPIM.Processors, cfg.Stack).Time(); t < best {
			best = t
		}
	}
	if prof.FixedEligible && cfg.FixedPIM.Units > 0 {
		df, db := device.FixedWork(op)
		sect := device.FixedSectionTime(op, df, db, cfg.FixedPIM.Units, cfg.FixedPIM, cfg.Stack)
		res := device.CPUResidual(op, cfg.CPU).Time()
		if cfg.ProgPIM.Processors > 0 {
			if t := device.ProgResidual(op, cfg.ProgPIM, cfg.Stack).Time(); t < res {
				res = t
			}
		}
		if t := sect + res; t < best {
			best = t
		}
	}
	return best
}

// criticalPath is the longest Inputs-edge chain of opFloor durations.
func criticalPath(g *nn.Graph, cfg hw.SystemConfig) hw.Seconds {
	order, err := g.TopoOrder()
	if err != nil {
		return 0 // cyclic graph: RunPIM will fail anyway; 0 is admissible
	}
	dist := make([]hw.Seconds, len(g.Ops))
	var cp hw.Seconds
	for _, id := range order {
		op := g.Ops[id]
		var in hw.Seconds
		for _, dep := range op.Inputs {
			if dist[dep] > in {
				in = dist[dep]
			}
		}
		dist[id] = in + opFloor(op, cfg)
		if dist[id] > cp {
			cp = dist[id]
		}
	}
	return cp
}
