package batch

import (
	"context"
	"math"
	"testing"

	"heteropim/internal/core"
	"heteropim/internal/hmc"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/thermal"
)

// testCandidates is a small but discriminating space: unit budgets
// spanning 8x and two PLL points.
func testCandidates() []Candidate {
	var cands []Candidate
	for _, freq := range []float64{1, 2} {
		for _, units := range []int{111, 222, 444, 888} {
			cands = append(cands, Candidate{Units: units, FreqScale: freq, ProgProcessors: 1})
		}
	}
	return cands
}

// TestLowerBoundAdmissibleAllModels is the load-bearing property: the
// analytic bound must never exceed the simulated step time, for every
// model and across the candidate space. If this fails, pruned DSE can
// silently drop true winners.
func TestLowerBoundAdmissibleAllModels(t *testing.T) {
	opts := core.HeteroOptions()
	for _, model := range nn.AllModelNames() {
		g, err := nn.Build(model)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range testCandidates() {
			cfg := c.Config()
			lb := StepTimeLowerBound(g, cfg, opts)
			if lb <= 0 {
				t.Errorf("%s %v: non-positive bound %g", model, c, lb)
			}
			r, err := core.RunPIM(g, cfg, opts)
			if err != nil {
				t.Fatalf("%s %v: %v", model, c, err)
			}
			if lb > r.StepTime {
				t.Errorf("%s %v: bound %.6g exceeds simulated step time %.6g (inadmissible)",
					model, c, lb, r.StepTime)
			}
		}
	}
}

// TestLowerBoundAdmissibleBaselineOptions re-checks admissibility under
// the non-hetero option sets RunPIM serves (Fixed-PIM baseline and the
// wide Progr-PIM baseline).
func TestLowerBoundAdmissibleBaselineOptions(t *testing.T) {
	g, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []core.Options{
		{},                                       // Fixed PIM baseline: no selection, no RC/OP
		{NoCPUFallback: true, WideProgOps: true}, // Progr PIM baseline
		{RC: true, OP: true, UseSelection: true, PipelineDepth: 3, Steps: 6},
	} {
		for _, c := range []Candidate{{444, 1, 1}, {888, 4, 4}} {
			cfg := c.Config()
			lb := StepTimeLowerBound(g, cfg, opts)
			r, err := core.RunPIM(g, cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			if lb > r.StepTime {
				t.Errorf("opts %+v %v: bound %.6g > simulated %.6g", opts, c, lb, r.StepTime)
			}
		}
	}
}

// TestExploreEquivalenceAllModels pins the tentpole guarantee: pruned
// branch-and-bound returns the identical winning configuration and
// winner result as exhaustive evaluation, for every CNN model.
func TestExploreEquivalenceAllModels(t *testing.T) {
	ctx := context.Background()
	cands := testCandidates()
	for _, model := range nn.CNNModelNames() {
		exh, err := ExploreDSE(ctx, model, cands, DSEOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pru, err := ExploreDSE(ctx, model, cands, DSEOptions{Prune: true})
		if err != nil {
			t.Fatal(err)
		}
		if exh.Winner.Candidate != pru.Winner.Candidate {
			t.Errorf("%s: pruned winner %v != exhaustive winner %v",
				model, pru.Winner.Candidate, exh.Winner.Candidate)
		}
		if exh.Winner.Result.StepTime != pru.Winner.Result.StepTime {
			t.Errorf("%s: winner step time diverged: %.9g vs %.9g",
				model, pru.Winner.Result.StepTime, exh.Winner.Result.StepTime)
		}
		if exh.Simulated != len(cands) || exh.Pruned != 0 {
			t.Errorf("%s: exhaustive run simulated %d/pruned %d, want %d/0",
				model, exh.Simulated, exh.Pruned, len(cands))
		}
		if pru.Simulated+pru.Pruned != len(cands) {
			t.Errorf("%s: pruned run accounts for %d candidates, want %d",
				model, pru.Simulated+pru.Pruned, len(cands))
		}
		t.Logf("%s: winner %v, pruned %d/%d", model, pru.Winner.Candidate, pru.Pruned, len(cands))
	}
}

// TestExplorePrunesMeaningfully checks the perf side: on the
// discriminating space the bound must actually cut a sizable share of
// simulations, or branch-and-bound buys nothing.
func TestExplorePrunesMeaningfully(t *testing.T) {
	ResetStats()
	ex, err := ExploreDSE(context.Background(), nn.VGG19Name, testCandidates(), DSEOptions{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(ex.Pruned) / float64(len(testCandidates())); frac < 0.3 {
		t.Errorf("pruned only %d of %d candidates (%.0f%%), want >= 30%%",
			ex.Pruned, len(testCandidates()), frac*100)
	}
	st := ReadStats()
	if st.Pruned != ex.Pruned || st.Simulated != ex.Simulated ||
		st.Candidates != len(testCandidates()) {
		t.Errorf("registry counters %+v disagree with exploration %d/%d", st, ex.Pruned, ex.Simulated)
	}
}

// TestExploreRejectsEmptySpace covers the error path.
func TestExploreRejectsEmptySpace(t *testing.T) {
	if _, err := ExploreDSE(context.Background(), nn.AlexNetName, nil, DSEOptions{Prune: true}); err == nil {
		t.Fatal("empty candidate set accepted")
	}
}

// gridCandidates mirrors the pimdse large grid's shape at test scale:
// per PLL point, a geometric unit ladder from the thermal maximum down
// to an eighth of it, crossed with the processor counts.
func gridCandidates(t *testing.T) []Candidate {
	t.Helper()
	stack, err := hmc.New(hw.PaperStack(1))
	if err != nil {
		t.Fatal(err)
	}
	var cands []Candidate
	for _, freq := range []float64{0.5, 1, 2, 4} {
		maxUnits, err := thermal.MaxUnitsUnderCap(stack, thermal.DRAMThermalCap, freq)
		if err != nil {
			t.Fatal(err)
		}
		prev := 0
		for r := 0; r < 6; r++ {
			units := int(float64(maxUnits)*math.Pow(1.0/8, float64(r)/5) + 0.5)
			if units < 1 || units == prev {
				continue
			}
			prev = units
			for _, procs := range []int{1, 4} {
				cands = append(cands, Candidate{Units: units, FreqScale: freq, ProgProcessors: procs})
			}
		}
	}
	return cands
}

// TestExploreSurrogateWinnerInvariance pins the interactive-DSE
// guarantee across the full grid shape for every CNN model: stacking
// surrogate ordering and delta replays on top of pruning changes how
// the winner is found, never which candidate wins or its result.
func TestExploreSurrogateWinnerInvariance(t *testing.T) {
	ctx := context.Background()
	cands := gridCandidates(t)
	modes := []DSEOptions{
		{Prune: true},
		{Prune: true, Surrogate: true},
		{Prune: true, Surrogate: true, Delta: true},
		{Prune: true, Surrogate: true, DeepDelta: true},
		{Prune: true, Surrogate: true, Delta: true, Calibrate: true},
		{Prune: true, Surrogate: true, DeepDelta: true, Calibrate: true, Confidence: true},
	}
	for _, model := range nn.CNNModelNames() {
		base, err := ExploreDSE(ctx, model, cands, DSEOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range modes {
			got, err := ExploreDSE(ctx, model, cands, mode)
			if err != nil {
				t.Fatalf("%s %+v: %v", model, mode, err)
			}
			if got.Winner.Candidate != base.Winner.Candidate {
				t.Errorf("%s %+v: winner %v != exhaustive %v",
					model, mode, got.Winner.Candidate, base.Winner.Candidate)
			}
			if got.Winner.Result.StepTime != base.Winner.Result.StepTime {
				t.Errorf("%s %+v: winner step time %.12g != exhaustive %.12g",
					model, mode, got.Winner.Result.StepTime, base.Winner.Result.StepTime)
			}
			if got.Simulated+got.Pruned != len(cands) {
				t.Errorf("%s %+v: %d simulated + %d pruned != %d candidates",
					model, mode, got.Simulated, got.Pruned, len(cands))
			}
		}
	}
}

// TestExplorePinnedCounts pins the pruned/simulated split on a cold
// cache: the split depends only on the deterministic simulation
// results and the (first block = 1, then 8) round structure, so it must
// be identical on every machine and across surrogate on/off reruns.
func TestExplorePinnedCounts(t *testing.T) {
	defer core.EnableResultCache(core.EnableResultCache(false))
	var cands []Candidate
	for _, freq := range []float64{1, 2, 4} {
		for _, units := range []int{888, 444, 222, 111, 55, 27} {
			for _, procs := range []int{1, 4} {
				cands = append(cands, Candidate{Units: units, FreqScale: freq, ProgProcessors: procs})
			}
		}
	}
	for _, tc := range []struct {
		mode                      DSEOptions
		wantPruned, wantSimulated int
	}{
		{DSEOptions{Prune: true}, 24, 12},
		{DSEOptions{Prune: true, Surrogate: true}, 24, 12},
		// Calibration changes the visit order (references first) but on
		// this sparse space retires the same set — pinning that the
		// reordering itself is deterministic.
		{DSEOptions{Prune: true, Surrogate: true, Calibrate: true}, 24, 12},
	} {
		ex, err := ExploreDSE(context.Background(), nn.AlexNetName, cands, tc.mode)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Pruned != tc.wantPruned || ex.Simulated != tc.wantSimulated {
			t.Errorf("%+v: pruned/simulated = %d/%d, want %d/%d",
				tc.mode, ex.Pruned, ex.Simulated, tc.wantPruned, tc.wantSimulated)
		}
	}
}
