package batch

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"heteropim/internal/core"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// Candidate is one point of the hardware design space: a fixed-function
// unit budget, a PLL frequency multiplier and a programmable-processor
// count, all on the Hetero PIM platform.
type Candidate struct {
	Units          int
	FreqScale      float64
	ProgProcessors int
}

// Config materializes the candidate as a full platform description.
func (c Candidate) Config() hw.SystemConfig {
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, c.FreqScale)
	cfg.ProgPIM = hw.PaperProgPIM(c.ProgProcessors)
	cfg.FixedPIM = hw.PaperFixedPIM(c.Units)
	cfg.Name = fmt.Sprintf("Hetero PIM(%du,%gx,%dP)", c.Units, c.FreqScale, c.ProgProcessors)
	return cfg
}

func (c Candidate) String() string {
	return fmt.Sprintf("%du/%gx/%dP", c.Units, c.FreqScale, c.ProgProcessors)
}

// Explored is one explored candidate. Result is only valid when Simulated
// is true; a pruned candidate carries just its bound.
type Explored struct {
	Candidate Candidate
	Bound     hw.Seconds
	Simulated bool
	Result    core.Result
}

// Exploration is the outcome of one DSE run.
type Exploration struct {
	// Winner is the candidate with the smallest simulated step time
	// (ties broken by input position). Identical between pruned and
	// exhaustive runs — the equivalence the admissible bound buys — and
	// identical with the surrogate on or off, since the surrogate only
	// reorders work.
	Winner Explored
	// Evals holds one entry per candidate, in input order.
	Evals []Explored
	// Pruned and Simulated partition the candidate set.
	Pruned, Simulated int

	// Surrogate telemetry (zero when the surrogate was off).
	SurrogateFitted bool
	SurrogateObs    int
	SeededFromCache int
	SurrogateR2     float64
	SurrogateRank   float64

	// Delta-simulation telemetry (zero when delta was off).
	DeltaCheckpoints int
	DeltaReplays     int
	DeltaShared      uint64
	// DeltaBoundaries counts the distinct deep-checkpoint boundaries
	// captured (zero unless DeepDelta; budgets in one quotient window
	// share a boundary).
	DeltaBoundaries int

	// CalibratedPruned counts prunes the analytic bound alone would NOT
	// have made — the calibrated bound's contribution (zero when
	// calibration was off).
	CalibratedPruned int
}

// DSEOptions selects the exploration strategy. Every combination
// produces the identical winner; the options only change how much work
// finding it costs.
type DSEOptions struct {
	// Prune enables branch-and-bound pruning against the admissible
	// analytic lower bound.
	Prune bool
	// Surrogate orders candidates by a regression fitted on simulated
	// results (seeded from the cross-run result cache when warm), so the
	// true incumbent tends to be simulated in the very first block and
	// the bound prunes maximally early.
	Surrogate bool
	// Delta forks each (FreqScale, ProgProcessors) group from one
	// checkpointed base run, replaying only the unit-budget-dependent
	// suffix per candidate (core.CheckpointRun/Replay). Ignored when
	// Stacks > 1: a sharded run has no single engine to checkpoint
	// (the per-shard result cache already dedups the compute legs).
	Delta bool
	// DeepDelta upgrades the delta layer to deep checkpoints
	// (core.DeltaPlan): instead of stopping at the first fixed-pool
	// grant, each group's probe records its full grant-quotient
	// narrowing history and every sibling forks from the DEEPEST event
	// boundary its unit budget shares with the base. Implies the delta
	// layer even when Delta is false; same Stacks restriction.
	DeepDelta bool
	// Calibrate derives a second admissible bound per (FreqScale,
	// ProgProcessors) group from simulated siblings (calibrate.go):
	// group references — the largest unit budget of each group — are
	// ordered first, and the pruner takes max(analytic, calibrated).
	Calibrate bool
	// Confidence batches likely-prunable candidates last: once the
	// surrogate is fitted, candidates whose prediction exceeds the
	// incumbent by more than twice the fit's residual spread are
	// deferred, so they are usually pruned before ever being reached.
	// No effect without Surrogate.
	Confidence bool
	// Stacks evaluates every candidate as an M-stack data-parallel
	// system (0/1 = the single-stack paper system); AllReduce picks its
	// gradient schedule (default ring). The bound stays admissible —
	// the exploration still provably returns the exhaustive winner.
	Stacks    int
	AllReduce core.ReduceSchedule
}

// dseBlockSize is how many candidates one branch-and-bound round
// simulates in parallel before re-checking the incumbent. A constant
// (rather than the worker count) keeps pruned/simulated counts
// machine-independent.
const dseBlockSize = 8

// deltaGroup is one (FreqScale, ProgProcessors) family sharing a
// checkpointed base run; once gives the checkpoint singleflight. In
// deep mode the group carries a DeltaPlan instead of the single
// first-grant checkpoint.
type deltaGroup struct {
	once      sync.Once
	cp        *core.RunCheckpoint
	plan      *core.DeltaPlan
	base      core.Result
	baseUnits int
	err       error
}

// deltaManager owns the per-group checkpoints of one exploration.
type deltaManager struct {
	deep   bool
	mu     sync.Mutex
	groups map[string]*deltaGroup

	checkpoints atomic.Int64
	replays     atomic.Int64
	shared      atomic.Uint64
}

func (m *deltaManager) group(key string) *deltaGroup {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.groups == nil {
		m.groups = make(map[string]*deltaGroup)
	}
	e := m.groups[key]
	if e == nil {
		e = &deltaGroup{}
		m.groups[key] = e
	}
	return e
}

// run evaluates one candidate through the delta layer: the first
// candidate of a group runs in full and leaves a checkpoint; siblings
// replay its suffix. Every failure mode degrades to a plain full
// simulation — replays are a pure optimization, bit-identical when they
// apply (core/checkpoint_test.go).
func (m *deltaManager) run(model nn.ModelName, c Candidate) (core.Result, error) {
	cg, err := nn.Build(model)
	if err != nil {
		return core.Result{}, err
	}
	cfg := c.Config()
	opts := core.HeteroOptions()
	e := m.group(calKey(c))
	e.once.Do(func() {
		e.baseUnits = c.Units
		if m.deep {
			e.plan, e.base, e.err = core.NewDeltaPlan(cg, cfg, opts)
			if e.err == nil && e.plan != nil {
				m.checkpoints.Add(1)
			}
		} else {
			e.cp, e.base, e.err = core.CheckpointRun(cg, cfg, opts)
			if e.err == nil && e.cp != nil {
				m.checkpoints.Add(1)
			}
		}
	})
	if e.err == nil && c.Units == e.baseUnits {
		return e.base, nil
	}
	if e.err == nil && e.plan != nil {
		if res, shared, rerr := e.plan.Replay(cfg); rerr == nil {
			m.replays.Add(1)
			m.shared.Add(shared)
			return res, nil
		}
	}
	if e.err == nil && e.cp != nil && e.cp.Compatible(cfg) == nil {
		if res, rerr := e.cp.Replay(cfg); rerr == nil {
			m.replays.Add(1)
			m.shared.Add(e.cp.SharedEvents())
			return res, nil
		}
	}
	return core.RunPIM(cg, cfg, opts)
}

// boundaries sums the distinct deep boundaries captured across groups.
func (m *deltaManager) boundaries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.groups {
		if e.plan != nil {
			n += e.plan.Boundaries()
		}
	}
	return n
}

// ExploreDSE finds the candidate minimizing simulated step time for the
// model, under the full Hetero PIM runtime (core.HeteroOptions).
//
// With every option off, each candidate is simulated. With Prune the
// exploration is branch-and-bound: once a candidate's admissible
// StepTimeLowerBound strictly exceeds the incumbent's simulated step
// time, it is discarded unsimulated. Surrogate and Delta stack on top
// (see DSEOptions).
//
// Equivalence argument: the incumbent is a min over simulated
// candidates, so incumbent ≥ the global minimum objective at all
// times. A pruned candidate c has obj(c) ≥ bound(c) > incumbent ≥
// obj(winner) — strictly worse than the winner, so it can neither win
// nor tie. Every mode therefore sees every potentially-winning
// candidate, and the winner is the (objective, input position) minimum
// over the simulated set — a quantity independent of the order the set
// was visited in. The surrogate changes only that order; delta replays
// are bit-identical to full simulations. The winners — and every table
// derived from the winner's Result — are identical across all modes.
func ExploreDSE(ctx context.Context, model nn.ModelName, cands []Candidate, dopts DSEOptions) (Exploration, error) {
	if len(cands) == 0 {
		return Exploration{}, fmt.Errorf("batch: empty candidate set")
	}
	g, err := nn.Build(model)
	if err != nil {
		return Exploration{}, err
	}
	opts := core.HeteroOptions()
	if dopts.Stacks > 1 {
		opts.Stacks = dopts.Stacks
		opts.AllReduce = dopts.AllReduce
		if opts.AllReduce == "" {
			opts.AllReduce = core.ReduceRing
		}
		dopts.Delta = false
		dopts.DeepDelta = false
	}
	r := Registry()
	r.Add("dse.candidates", float64(len(cands)))

	ex := Exploration{Evals: make([]Explored, len(cands))}
	for i, c := range cands {
		ex.Evals[i] = Explored{Candidate: c, Bound: StepTimeLowerBound(g, c.Config(), opts)}
	}
	// Group references for the calibrated bound: the LARGEST unit budget
	// of each (FreqScale, ProgProcessors) group (ties to the earliest
	// input position). Simulating a reference certifies a calibrated
	// bound for its whole group, so references go first in every round.
	var cal *calibrator
	isRef := make([]bool, len(cands))
	if dopts.Calibrate {
		cal = newCalibrator()
		refIdx := map[string]int{}
		for i, c := range cands {
			k := calKey(c)
			if j, ok := refIdx[k]; !ok || c.Units > cands[j].Units {
				refIdx[k] = i
			}
		}
		for _, i := range refIdx {
			isRef[i] = true
		}
	}
	// Canonical order: references first (when calibrating), then bound
	// ascending, input position breaking ties.
	remaining := make([]int, len(cands))
	for i := range remaining {
		remaining[i] = i
	}
	sort.SliceStable(remaining, func(a, b int) bool {
		ia, ib := remaining[a], remaining[b]
		if isRef[ia] != isRef[ib] {
			return isRef[ia]
		}
		if ex.Evals[ia].Bound != ex.Evals[ib].Bound {
			return ex.Evals[ia].Bound < ex.Evals[ib].Bound
		}
		return ia < ib
	})

	// Seed the surrogate from the cross-run result corpus: cells this
	// process (or a previous run, via the disk tier) already simulated
	// are free ordering information. Seeding never touches the
	// incumbent — cached cells still count as simulations when reached.
	sur := &surrogate{}
	if dopts.Surrogate {
		for i, c := range cands {
			if res, ok := core.PeekPIMResult(g, c.Config(), opts); ok {
				sur.add(cands[i], res.StepTime)
				ex.SeededFromCache++
			}
		}
		sur.fit()
	}
	var mgr *deltaManager
	if dopts.Delta || dopts.DeepDelta {
		mgr = &deltaManager{deep: dopts.DeepDelta}
	}

	incumbent := math.Inf(1)
	winner := -1
	group := GroupKey(g.Model, g.BatchSize, opts.Steps, opts.OP, opts.PipelineDepth)
	firstBlock := true
	for len(remaining) > 0 {
		// Order this round's work. Fitted surrogate: predicted step time,
		// with (bound, input position) tie-breaks. Otherwise the
		// (bound, position) order built above is maintained by the
		// in-place filtering below.
		if sur.fitted {
			pred := make(map[int]float64, len(remaining))
			for _, idx := range remaining {
				pred[idx] = sur.predict(cands[idx])
			}
			// Confidence ordering: candidates whose prediction clears the
			// incumbent even after a 2-spread error allowance are LIKELY
			// prunable — every simulation before them can only tighten the
			// incumbent or the calibration, so batching them last
			// maximizes the chance they are pruned instead of simulated.
			// Ordering only; admissibility still gates the actual prune.
			likelyPrunable := func(int) bool { return false }
			if dopts.Confidence && !math.IsInf(incumbent, 1) {
				spread := sur.residualSpread()
				likelyPrunable = func(idx int) bool {
					return pred[idx]-2*spread > incumbent
				}
			}
			sort.SliceStable(remaining, func(a, b int) bool {
				ia, ib := remaining[a], remaining[b]
				if isRef[ia] != isRef[ib] {
					return isRef[ia]
				}
				if pa, pb := likelyPrunable(ia), likelyPrunable(ib); pa != pb {
					return pb
				}
				if pred[ia] != pred[ib] {
					return pred[ia] < pred[ib]
				}
				if ex.Evals[ia].Bound != ex.Evals[ib].Bound {
					return ex.Evals[ia].Bound < ex.Evals[ib].Bound
				}
				return ia < ib
			})
		}
		// The first block is a single candidate: it warms the model's
		// template/profile caches (the Eval leader mechanism) and — being
		// the most promising point under the current ordering — sets a
		// tight incumbent before any parallel fan-out.
		size := 1
		if !firstBlock {
			size = dseBlockSize
		}
		var block []int
		rest := remaining[:0]
		for _, idx := range remaining {
			b := ex.Evals[idx].Bound
			if cal != nil {
				if cb := cal.bound(cands[idx]); cb > b {
					b = cb
				}
			}
			switch {
			case dopts.Prune && b > incumbent:
				// Strictly beaten by the incumbent: can neither win nor tie.
				ex.Pruned++
				if cal != nil && ex.Evals[idx].Bound <= incumbent {
					// The analytic bound alone would not have pruned it.
					ex.CalibratedPruned++
				}
			case len(block) < size:
				block = append(block, idx)
			default:
				rest = append(rest, idx)
			}
		}
		remaining = rest
		if len(block) == 0 {
			break
		}
		cells := make([]Cell[core.Result], len(block))
		for k, idx := range block {
			c := cands[idx]
			grp := group
			if !firstBlock {
				grp = "" // caches are warm; skip the leader phase
			}
			cells[k] = Cell[core.Result]{Group: grp, Run: func(ctx context.Context) (core.Result, error) {
				if mgr != nil {
					return mgr.run(model, c)
				}
				// Each cell builds its own graph: cells must be
				// independent, and the result cache is content-keyed so
				// rebuilt graphs still hit.
				cg, err := nn.Build(model)
				if err != nil {
					return core.Result{}, err
				}
				return core.RunPIM(cg, c.Config(), opts)
			}}
		}
		results, err := Eval(ctx, cells)
		if err != nil {
			return Exploration{}, err
		}
		for k, idx := range block {
			ev := &ex.Evals[idx]
			ev.Simulated = true
			ev.Result = results[k]
			ex.Simulated++
			obj := results[k].StepTime
			if obj < incumbent || (obj == incumbent && idx < winner) {
				incumbent = obj
				winner = idx
			}
			if dopts.Surrogate {
				sur.add(cands[idx], obj)
			}
			if cal != nil {
				cal.observe(cands[idx], obj)
			}
		}
		if dopts.Surrogate {
			sur.fit()
		}
		firstBlock = false
	}
	r.Add("dse.pruned", float64(ex.Pruned))
	r.Add("dse.simulated", float64(ex.Simulated))
	if dopts.Surrogate {
		ex.SurrogateFitted = sur.fitted
		ex.SurrogateObs = len(sur.obs)
		ex.SurrogateR2 = sur.r2()
		if sur.fitted {
			var pred, act []float64
			for i := range ex.Evals {
				if ex.Evals[i].Simulated {
					pred = append(pred, sur.predict(cands[i]))
					act = append(act, ex.Evals[i].Result.StepTime)
				}
			}
			ex.SurrogateRank = spearman(pred, act)
		}
		r.Add("dse.surrogate.obs", float64(ex.SurrogateObs))
		r.Add("dse.surrogate.seeded", float64(ex.SeededFromCache))
		r.Set("dse.surrogate.r2", 0, ex.SurrogateR2)
		r.Set("dse.surrogate.rank", 0, ex.SurrogateRank)
	}
	if mgr != nil {
		ex.DeltaCheckpoints = int(mgr.checkpoints.Load())
		ex.DeltaReplays = int(mgr.replays.Load())
		ex.DeltaShared = mgr.shared.Load()
		r.Add("dse.delta.checkpoints", float64(ex.DeltaCheckpoints))
		r.Add("dse.delta.replays", float64(ex.DeltaReplays))
		r.Add("dse.delta.shared_events", float64(ex.DeltaShared))
		if mgr.deep {
			ex.DeltaBoundaries = mgr.boundaries()
			r.Add("dse.delta.boundaries", float64(ex.DeltaBoundaries))
		}
	}
	if cal != nil {
		r.Add("dse.calibrated.pruned", float64(ex.CalibratedPruned))
	}
	ex.Winner = ex.Evals[winner]
	return ex, nil
}
