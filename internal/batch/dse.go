package batch

import (
	"context"
	"fmt"
	"math"
	"sort"

	"heteropim/internal/core"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// Candidate is one point of the hardware design space: a fixed-function
// unit budget, a PLL frequency multiplier and a programmable-processor
// count, all on the Hetero PIM platform.
type Candidate struct {
	Units          int
	FreqScale      float64
	ProgProcessors int
}

// Config materializes the candidate as a full platform description.
func (c Candidate) Config() hw.SystemConfig {
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, c.FreqScale)
	cfg.ProgPIM = hw.PaperProgPIM(c.ProgProcessors)
	cfg.FixedPIM = hw.PaperFixedPIM(c.Units)
	cfg.Name = fmt.Sprintf("Hetero PIM(%du,%gx,%dP)", c.Units, c.FreqScale, c.ProgProcessors)
	return cfg
}

func (c Candidate) String() string {
	return fmt.Sprintf("%du/%gx/%dP", c.Units, c.FreqScale, c.ProgProcessors)
}

// Explored is one explored candidate. Result is only valid when Simulated
// is true; a pruned candidate carries just its bound.
type Explored struct {
	Candidate Candidate
	Bound     hw.Seconds
	Simulated bool
	Result    core.Result
}

// Exploration is the outcome of one DSE run.
type Exploration struct {
	// Winner is the candidate with the smallest simulated step time
	// (ties broken by input position). Identical between pruned and
	// exhaustive runs — the equivalence the admissible bound buys.
	Winner Explored
	// Evals holds one entry per candidate, in input order.
	Evals []Explored
	// Pruned and Simulated partition the candidate set.
	Pruned, Simulated int
}

// dseBlockSize is how many candidates one branch-and-bound round
// simulates in parallel before re-checking the incumbent. A constant
// (rather than the worker count) keeps pruned/simulated counts
// machine-independent.
const dseBlockSize = 8

// ExploreDSE finds the candidate minimizing simulated step time for the
// model, under the full Hetero PIM runtime (core.HeteroOptions).
//
// With prune=false every candidate is simulated. With prune=true the
// exploration is branch-and-bound: candidates are simulated in blocks
// of ascending StepTimeLowerBound, and once a candidate's bound
// strictly exceeds the incumbent's simulated step time, it — and every
// candidate after it in bound order — is discarded unsimulated.
//
// Equivalence argument: the incumbent is a min over simulated
// candidates, so incumbent ≥ the global minimum objective at all
// times. A pruned candidate c has obj(c) ≥ bound(c) > incumbent ≥
// obj(winner) — strictly worse than the winner, so it can neither win
// nor tie. Both modes therefore see every potentially-winning
// candidate and apply the same (objective, input position) tie-break:
// the winners are identical, and so is every table derived from the
// winner's Result (simulations are deterministic and cached by
// content).
func ExploreDSE(ctx context.Context, model nn.ModelName, cands []Candidate, prune bool) (Exploration, error) {
	if len(cands) == 0 {
		return Exploration{}, fmt.Errorf("batch: empty candidate set")
	}
	g, err := nn.Build(model)
	if err != nil {
		return Exploration{}, err
	}
	opts := core.HeteroOptions()
	r := Registry()
	r.Add("dse.candidates", float64(len(cands)))

	ex := Exploration{Evals: make([]Explored, len(cands))}
	for i, c := range cands {
		ex.Evals[i] = Explored{Candidate: c, Bound: StepTimeLowerBound(g, c.Config(), opts)}
	}
	// Canonical order: bound ascending, input position breaking ties.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ex.Evals[order[a]].Bound < ex.Evals[order[b]].Bound
	})

	incumbent := math.Inf(1)
	winner := -1
	group := GroupKey(g.Model, g.BatchSize, opts.Steps, opts.OP, opts.PipelineDepth)
	pos := 0
	for pos < len(order) {
		if prune && ex.Evals[order[pos]].Bound > incumbent {
			// Bounds are sorted: everything from here on is beaten.
			ex.Pruned += len(order) - pos
			break
		}
		// The first block is the single lowest-bound candidate: it warms
		// the model's template/profile caches (the Eval leader mechanism)
		// and, being the most promising point, sets a tight incumbent
		// before any parallel fan-out.
		size := 1
		if pos > 0 {
			size = dseBlockSize
		}
		end := min(pos+size, len(order))
		for prune && end > pos && ex.Evals[order[end-1]].Bound > incumbent {
			end-- // bounds are sorted: trim the beaten tail of the block
		}
		block := order[pos:end]
		cells := make([]Cell[core.Result], len(block))
		for k, idx := range block {
			cfg := cands[idx].Config()
			grp := group
			if pos > 0 {
				grp = "" // caches are warm; skip the leader phase
			}
			cells[k] = Cell[core.Result]{Group: grp, Run: func(ctx context.Context) (core.Result, error) {
				// Each cell builds its own graph: cells must be
				// independent, and the result cache is content-keyed so
				// rebuilt graphs still hit.
				cg, err := nn.Build(model)
				if err != nil {
					return core.Result{}, err
				}
				return core.RunPIM(cg, cfg, core.HeteroOptions())
			}}
		}
		results, err := Eval(ctx, cells)
		if err != nil {
			return Exploration{}, err
		}
		for k, idx := range block {
			ev := &ex.Evals[idx]
			ev.Simulated = true
			ev.Result = results[k]
			ex.Simulated++
			obj := results[k].StepTime
			if obj < incumbent || (obj == incumbent && idx < winner) {
				incumbent = obj
				winner = idx
			}
		}
		pos += len(block)
	}
	r.Add("dse.pruned", float64(ex.Pruned))
	r.Add("dse.simulated", float64(ex.Simulated))
	ex.Winner = ex.Evals[winner]
	return ex, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
