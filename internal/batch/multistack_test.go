package batch

import (
	"context"
	"testing"

	"heteropim/internal/core"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// The multi-stack bound must stay admissible: bound(shard 0) + analytic
// all-reduce can never exceed the simulated sharded step, because shard
// 0 carries the largest batch slice and the event-driven all-reduce
// equals the analytic one exactly.
func TestMultiStackLowerBoundAdmissible(t *testing.T) {
	for _, model := range []nn.ModelName{nn.AlexNetName, nn.VGG19Name} {
		g, err := nn.Build(model)
		if err != nil {
			t.Fatal(err)
		}
		for _, stacks := range []int{2, 4} {
			for _, sched := range []core.ReduceSchedule{core.ReduceRing, core.ReduceTree} {
				opts := core.HeteroOptions()
				opts.Stacks, opts.AllReduce = stacks, sched
				cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
				lb := StepTimeLowerBound(g, cfg, opts)
				if lb <= 0 {
					t.Fatalf("%s m=%d %s: non-positive bound %g", model, stacks, sched, lb)
				}
				r, err := core.RunPIM(g, cfg, opts)
				if err != nil {
					t.Fatal(err)
				}
				if lb > r.StepTime {
					t.Errorf("%s m=%d %s: bound %.6g exceeds simulated step %.6g (inadmissible)",
						model, stacks, sched, lb, r.StepTime)
				}
				// The bound must include the all-reduce leg, so it has to
				// exceed the pure synchronization time.
				ar, _, err := core.AllReduceStepTime(sched, stacks, g.ParamBytes, cfg.Link)
				if err != nil {
					t.Fatal(err)
				}
				if lb <= ar {
					t.Errorf("%s m=%d %s: bound %.6g not above the all-reduce time %.6g",
						model, stacks, sched, lb, ar)
				}
			}
		}
	}
}

// Pruned and exhaustive DSE must agree on the winner when candidates
// are evaluated as multi-stack systems (delta replay is force-disabled
// for sharded runs, so this also covers that degradation path).
func TestExploreEquivalenceMultiStack(t *testing.T) {
	ctx := context.Background()
	cands := testCandidates()
	for _, dopts := range []DSEOptions{
		{Stacks: 2},
		{Stacks: 2, Prune: true},
		{Stacks: 2, Prune: true, Surrogate: true, Delta: true},
	} {
		dopts.AllReduce = core.ReduceRing
		ex, err := ExploreDSE(ctx, nn.AlexNetName, cands, dopts)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Winner.Result.Stacks != 2 {
			t.Fatalf("winner simulated with %d stacks, want 2", ex.Winner.Result.Stacks)
		}
		if dopts.Prune {
			base, err := ExploreDSE(ctx, nn.AlexNetName, cands, DSEOptions{Stacks: 2, AllReduce: core.ReduceRing})
			if err != nil {
				t.Fatal(err)
			}
			if ex.Winner.Candidate != base.Winner.Candidate {
				t.Errorf("pruned multi-stack winner %v != exhaustive %v", ex.Winner.Candidate, base.Winner.Candidate)
			}
			if ex.Winner.Result.StepTime != base.Winner.Result.StepTime {
				t.Errorf("winner step time diverged: %.9g vs %.9g",
					ex.Winner.Result.StepTime, base.Winner.Result.StepTime)
			}
		}
	}
}
