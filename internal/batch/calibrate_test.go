package batch

import (
	"context"
	"math"
	"testing"

	"heteropim/internal/core"
	"heteropim/internal/hmc"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/thermal"
)

// TestDominanceSlackProperty is the measurement dominanceSlack rests
// on: across every model and a frequency x unit-ladder grid, the step
// time of a LARGER unit budget never exceeds dominanceSlack times the
// step time of a smaller one in the same (FreqScale, ProgProcessors)
// group. Strict monotone dominance is deliberately NOT asserted — the
// opportunistic-offload rule makes it false (a Graham-style anomaly) —
// but the calibrated bound is admissible exactly as long as this
// slacked form holds. The test demands headroom below the constant so
// drift in the scheduler shows up before correctness is at risk.
func TestDominanceSlackProperty(t *testing.T) {
	stack, err := hmc.New(hw.PaperStack(1))
	if err != nil {
		t.Fatal(err)
	}
	opts := core.HeteroOptions()
	worst := 0.0
	worstAt := ""
	for _, model := range nn.AllModelNames() {
		g, err := nn.Build(model)
		if err != nil {
			t.Fatal(err)
		}
		for _, freq := range []float64{0.5, 1, 2, 4} {
			maxUnits, err := thermal.MaxUnitsUnderCap(stack, thermal.DRAMThermalCap, freq)
			if err != nil {
				t.Fatal(err)
			}
			// Geometric ladder down from the thermal max: the densest
			// region real grids sample.
			var ladder []int
			for u := maxUnits; u >= 1 && len(ladder) < 8; u = u * 4 / 5 {
				if len(ladder) > 0 && ladder[len(ladder)-1] == u {
					break
				}
				ladder = append(ladder, u)
			}
			objs := make([]float64, len(ladder))
			for i, u := range ladder {
				c := Candidate{Units: u, FreqScale: freq, ProgProcessors: 1}
				r, err := core.RunPIM(g, c.Config(), opts)
				if err != nil {
					t.Fatal(err)
				}
				objs[i] = r.StepTime
			}
			// ladder is descending: i < j means ladder[i] > ladder[j].
			for i := 0; i < len(ladder); i++ {
				for j := i + 1; j < len(ladder); j++ {
					if objs[j] <= 0 {
						t.Fatalf("%s f=%g u=%d: non-positive step time", model, freq, ladder[j])
					}
					ratio := objs[i] / objs[j]
					if ratio > worst {
						worst = ratio
						worstAt = string(model)
					}
					if ratio >= dominanceSlack {
						t.Errorf("%s f=%g: obj(%d)=%.9g vs obj(%d)=%.9g, ratio %.4f >= slack %.2f",
							model, freq, ladder[i], objs[i], ladder[j], objs[j], ratio, dominanceSlack)
					}
				}
			}
		}
	}
	t.Logf("worst larger/smaller-budget ratio %.6f (model %s), slack %.2f", worst, worstAt, dominanceSlack)
	if worst > dominanceSlack*0.95 {
		t.Errorf("worst ratio %.4f within 5%% of dominanceSlack %.2f — re-measure and widen the constant",
			worst, dominanceSlack)
	}
}

// TestCalibratorBoundSemantics pins the calibrator's unit behavior,
// including the degenerate groups the exploration can produce.
func TestCalibratorBoundSemantics(t *testing.T) {
	cal := newCalibrator()
	c := Candidate{Units: 100, FreqScale: 1, ProgProcessors: 1}

	// No observation at all (an all-pruned group, or one not yet
	// reached): no constraint — analytic fallback.
	if b := cal.bound(c); b != 0 {
		t.Fatalf("empty group bound = %g, want 0", b)
	}

	// A SMALLER same-group budget certifies nothing for a larger one.
	cal.observe(Candidate{Units: 50, FreqScale: 1, ProgProcessors: 1}, 8)
	if b := cal.bound(c); b != 0 {
		t.Fatalf("smaller-budget observation bounded a larger budget: %g", b)
	}

	// A larger budget certifies obj/slack.
	cal.observe(Candidate{Units: 200, FreqScale: 1, ProgProcessors: 1}, 4.8)
	if b := cal.bound(c); b != hw.Seconds(4.8)/dominanceSlack {
		t.Fatalf("bound = %g, want %g", b, hw.Seconds(4.8)/dominanceSlack)
	}

	// Multiple qualifying observations: the tightest (largest) wins.
	cal.observe(Candidate{Units: 150, FreqScale: 1, ProgProcessors: 1}, 6.4)
	if b := cal.bound(c); b != hw.Seconds(6.4)/dominanceSlack {
		t.Fatalf("bound = %g, want the tighter %g", b, hw.Seconds(6.4)/dominanceSlack)
	}

	// Other groups are invisible: same units, different frequency.
	other := Candidate{Units: 100, FreqScale: 2, ProgProcessors: 1}
	if b := cal.bound(other); b != 0 {
		t.Fatalf("cross-group leak: bound = %g, want 0", b)
	}

	// A single-member group observes itself; its own bound is then
	// obj/slack — harmless, since it is already simulated.
	solo := Candidate{Units: 7, FreqScale: 3, ProgProcessors: 2}
	cal.observe(solo, 1.6)
	if b := cal.bound(solo); b != hw.Seconds(1.6)/dominanceSlack {
		t.Fatalf("single-member bound = %g, want %g", b, hw.Seconds(1.6)/dominanceSlack)
	}
}

// TestExploreCalibrateDegenerateGroups runs calibrated exploration on a
// space of single-member groups (every candidate its own group): the
// calibrated bound can never fire, the winner must still match
// exhaustive, and the accounting must stay exact.
func TestExploreCalibrateDegenerateGroups(t *testing.T) {
	ctx := context.Background()
	var cands []Candidate
	for i, freq := range []float64{0.5, 0.75, 1, 1.25, 1.5, 2, 3, 4} {
		cands = append(cands, Candidate{Units: 100 + 50*i, FreqScale: freq, ProgProcessors: 1})
	}
	base, err := ExploreDSE(ctx, nn.AlexNetName, cands, DSEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExploreDSE(ctx, nn.AlexNetName, cands, DSEOptions{Prune: true, Calibrate: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Winner.Candidate != base.Winner.Candidate {
		t.Errorf("winner %v != exhaustive %v", got.Winner.Candidate, base.Winner.Candidate)
	}
	if got.CalibratedPruned != 0 {
		t.Errorf("calibrated bound pruned %d candidates in single-member groups", got.CalibratedPruned)
	}
	if got.Simulated+got.Pruned != len(cands) {
		t.Errorf("%d simulated + %d pruned != %d", got.Simulated, got.Pruned, len(cands))
	}
}

// TestExploreCalibratePrunesBeyondAnalytic checks the perf claim on a
// dense unit ladder: the calibrated bound must retire candidates the
// analytic bound alone could not.
func TestExploreCalibratePrunesBeyondAnalytic(t *testing.T) {
	ctx := context.Background()
	stack, err := hmc.New(hw.PaperStack(1))
	if err != nil {
		t.Fatal(err)
	}
	var cands []Candidate
	for _, freq := range []float64{0.5, 1, 2, 4} {
		maxUnits, err := thermal.MaxUnitsUnderCap(stack, thermal.DRAMThermalCap, freq)
		if err != nil {
			t.Fatal(err)
		}
		for u := maxUnits; u >= maxUnits/16 && u >= 1; u = u * 4 / 5 {
			cands = append(cands, Candidate{Units: u, FreqScale: freq, ProgProcessors: 1})
		}
	}
	base, err := ExploreDSE(ctx, nn.VGG19Name, cands, DSEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExploreDSE(ctx, nn.VGG19Name, cands,
		DSEOptions{Prune: true, Surrogate: true, Calibrate: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Winner.Candidate != base.Winner.Candidate {
		t.Errorf("winner %v != exhaustive %v", got.Winner.Candidate, base.Winner.Candidate)
	}
	if got.CalibratedPruned == 0 {
		t.Errorf("calibrated bound retired no candidates on a dense ladder (pruned %d/%d total)",
			got.Pruned, len(cands))
	}
	t.Logf("pruned %d/%d, %d by calibration alone", got.Pruned, len(cands), got.CalibratedPruned)
}

// TestExploreDeepDeltaTelemetry checks the deep layer end to end inside
// an exploration: boundaries are captured, replays happen, and shared
// depth exceeds what the shallow layer reports on the same space.
func TestExploreDeepDeltaTelemetry(t *testing.T) {
	defer core.EnableResultCache(core.EnableResultCache(false))
	ctx := context.Background()
	var cands []Candidate
	for _, units := range []int{507, 506, 505, 480, 440, 400, 380} {
		cands = append(cands, Candidate{Units: units, FreqScale: 1, ProgProcessors: 1})
	}
	shallow, err := ExploreDSE(ctx, nn.DCGANName, cands,
		DSEOptions{Surrogate: true, Delta: true})
	if err != nil {
		t.Fatal(err)
	}
	core.EnableResultCache(core.EnableResultCache(false)) // drop cached cells between modes
	deep, err := ExploreDSE(ctx, nn.DCGANName, cands,
		DSEOptions{Surrogate: true, DeepDelta: true})
	if err != nil {
		t.Fatal(err)
	}
	if deep.Winner.Candidate != shallow.Winner.Candidate ||
		deep.Winner.Result.StepTime != shallow.Winner.Result.StepTime {
		t.Errorf("deep winner %v (%.12g) != shallow %v (%.12g)",
			deep.Winner.Candidate, deep.Winner.Result.StepTime,
			shallow.Winner.Candidate, shallow.Winner.Result.StepTime)
	}
	if deep.DeltaBoundaries < 1 {
		t.Errorf("deep exploration captured %d boundaries, want >= 1", deep.DeltaBoundaries)
	}
	if shallow.DeltaBoundaries != 0 {
		t.Errorf("shallow exploration reported %d deep boundaries", shallow.DeltaBoundaries)
	}
	if deep.DeltaReplays == 0 {
		t.Error("deep exploration replayed nothing")
	}
	if deep.DeltaShared <= shallow.DeltaShared {
		t.Errorf("deep shared %d events, shallow %d — deep must share strictly more",
			deep.DeltaShared, shallow.DeltaShared)
	}
	t.Logf("shared events: deep %d vs shallow %d (%d boundaries, %d replays)",
		deep.DeltaShared, shallow.DeltaShared, deep.DeltaBoundaries, deep.DeltaReplays)
}

// TestExploreConfidenceOrderingInvariance pins that confidence
// ordering — like the surrogate it extends — is ordering only: the
// winner and the simulated+pruned accounting are unchanged even when
// the residual spread is degenerate (zero observations of error).
func TestExploreConfidenceOrderingInvariance(t *testing.T) {
	ctx := context.Background()
	cands := testCandidates()
	base, err := ExploreDSE(ctx, nn.Word2VecName, cands, DSEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExploreDSE(ctx, nn.Word2VecName, cands,
		DSEOptions{Prune: true, Surrogate: true, Confidence: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Winner.Candidate != base.Winner.Candidate {
		t.Errorf("winner %v != exhaustive %v", got.Winner.Candidate, base.Winner.Candidate)
	}
	if got.Winner.Result.StepTime != base.Winner.Result.StepTime {
		t.Errorf("winner step time %.12g != exhaustive %.12g",
			got.Winner.Result.StepTime, base.Winner.Result.StepTime)
	}
	if got.Simulated+got.Pruned != len(cands) {
		t.Errorf("%d simulated + %d pruned != %d", got.Simulated, got.Pruned, len(cands))
	}
	if math.IsInf(got.Winner.Result.StepTime, 0) {
		t.Error("degenerate winner")
	}
}
