package batch

import (
	"math"
	"testing"
)

// TestSurrogateRecoversPlantedModel: observations generated exactly from
// the basis must be fit (near-)exactly, and predictions must rank any
// candidate set perfectly.
func TestSurrogateRecoversPlantedModel(t *testing.T) {
	truth := [surBasis]float64{0.3, 40, 120, 0.9, 2.5, 0.01}
	eval := func(c Candidate) float64 {
		x := surFeatures(c)
		v := 0.0
		for i := 0; i < surBasis; i++ {
			v += truth[i] * x[i]
		}
		return v
	}
	s := &surrogate{}
	var train []Candidate
	for _, f := range []float64{0.5, 1, 2, 4} {
		for _, u := range []int{50, 100, 400, 900} {
			for _, p := range []int{1, 4} {
				train = append(train, Candidate{Units: u, FreqScale: f, ProgProcessors: p})
			}
		}
	}
	for _, c := range train {
		s.add(c, eval(c))
	}
	if !s.fit() {
		t.Fatal("fit failed on a well-conditioned planted model")
	}
	if r2 := s.r2(); r2 < 0.999999 {
		t.Errorf("planted model r2 = %v, want ~1", r2)
	}
	var pred, act []float64
	for _, c := range []Candidate{{33, 1.5, 2}, {700, 0.5, 1}, {120, 4, 4}, {250, 2, 1}} {
		pred = append(pred, s.predict(c))
		act = append(act, eval(c))
	}
	if rho := spearman(pred, act); rho != 1 {
		t.Errorf("held-out rank correlation = %v, want 1", rho)
	}
}

// TestSurrogateRefusesDegenerateInputs: too few observations, and
// non-finite or non-positive targets, must never produce a fit marked
// usable.
func TestSurrogateRefusesDegenerateInputs(t *testing.T) {
	s := &surrogate{}
	for i := 0; i < surMinObs-1; i++ {
		s.add(Candidate{Units: 100 + i, FreqScale: 1, ProgProcessors: 1}, 1)
	}
	if s.fit() {
		t.Error("fit succeeded below surMinObs")
	}
	s.add(Candidate{Units: 500, FreqScale: 1, ProgProcessors: 1}, math.Inf(1))
	s.add(Candidate{Units: 501, FreqScale: 1, ProgProcessors: 1}, math.NaN())
	s.add(Candidate{Units: 502, FreqScale: 1, ProgProcessors: 1}, -1)
	if len(s.obs) != surMinObs-1 {
		t.Errorf("degenerate observations were recorded: %d obs", len(s.obs))
	}
}

// TestSpearmanTies exercises the fractional tied-rank path.
func TestSpearmanTies(t *testing.T) {
	if rho := spearman([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40}); rho != 1 {
		t.Errorf("monotone rho = %v, want 1", rho)
	}
	if rho := spearman([]float64{1, 2, 3, 4}, []float64{40, 30, 20, 10}); rho != -1 {
		t.Errorf("reversed rho = %v, want -1", rho)
	}
	if rho := spearman([]float64{1, 1, 1, 1}, []float64{1, 2, 3, 4}); rho != 0 {
		t.Errorf("constant-input rho = %v, want 0", rho)
	}
	// Ties share their average rank: {1, 2, 2, 3} ranks as {1, 2.5, 2.5, 4}.
	r := ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range r {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}
