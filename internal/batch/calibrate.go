package batch

import (
	"fmt"

	"heteropim/internal/hw"
)

// Reference-calibrated admissible bound. Within one (FreqScale,
// ProgProcessors) group the only knob left is the fixed-function unit
// budget, and a larger budget can only help: every grant's quotient is
// at least as large, so sections run at least as wide. The simulator's
// greedy scheduler makes that dominance APPROXIMATE rather than strict
// — the opportunistic-offload rule can flip an op's placement when the
// budget changes, a Graham-style scheduling anomaly — so the calibrated
// bound divides the reference objective by a measured slack:
//
//	obj(c) >= obj(s) / dominanceSlack   for any same-group s with
//	                                    s.Units >= c.Units
//
// The slack is property-tested (dse_test.go): across every model and a
// frequency x unit-ladder grid, the worst measured pairwise violation
// of strict dominance is ~1.35x, comfortably under 1.6. A simulated
// sibling s therefore certifies the admissible lower bound
// obj(s)/dominanceSlack for every smaller-or-equal budget in its group,
// and the pruner takes max(analytic, calibrated). The group reference —
// simulated first under calibrated ordering — is the LARGEST budget, so
// one reference bounds the whole group; every further simulation can
// only tighten the calibration. The equivalence argument of ExploreDSE
// is unchanged: a pruned candidate has
// obj(c) >= obj(s)/dominanceSlack = calibrated(c) > incumbent >=
// obj(winner), so it can neither win nor tie.
const dominanceSlack = 1.6

// calObs is one simulated group member.
type calObs struct {
	units int
	obj   hw.Seconds
}

// calibrator accumulates simulated objectives per (FreqScale,
// ProgProcessors) group and serves calibrated bounds. It is only
// touched from the exploration's sequential sections (between Eval
// barriers), so it needs no locking.
type calibrator struct {
	groups map[string][]calObs
}

func newCalibrator() *calibrator {
	return &calibrator{groups: map[string][]calObs{}}
}

// calKey buckets a candidate into its calibration group — the same key
// the delta layer shares checkpoints under.
func calKey(c Candidate) string {
	return fmt.Sprintf("%g|%d", c.FreqScale, c.ProgProcessors)
}

// observe records a simulated objective.
func (cal *calibrator) observe(c Candidate, obj hw.Seconds) {
	k := calKey(c)
	cal.groups[k] = append(cal.groups[k], calObs{units: c.Units, obj: obj})
}

// bound returns the tightest calibrated admissible bound for c: the
// best slack-discounted objective among simulated same-group members
// with at least c's unit budget. Zero (no constraint) when the group
// has no usable observation — degenerate groups (single member, or a
// reference that was itself pruned) simply fall back to the analytic
// bound.
func (cal *calibrator) bound(c Candidate) hw.Seconds {
	var b hw.Seconds
	for _, o := range cal.groups[calKey(c)] {
		if o.units >= c.Units {
			if v := o.obj / dominanceSlack; v > b {
				b = v
			}
		}
	}
	return b
}
