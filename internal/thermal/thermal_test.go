package thermal

import (
	"math"
	"testing"

	"heteropim/internal/hmc"
	"heteropim/internal/hw"
	"heteropim/internal/pim"
)

func TestZeroPowerSitsAtAmbient(t *testing.T) {
	g := DefaultGrid(4, 8)
	temps, err := g.Solve(make([]float64, 32))
	if err != nil {
		t.Fatal(err)
	}
	for i, temp := range temps {
		if math.Abs(temp-g.Ambient) > 1e-6 {
			t.Fatalf("cell %d at %g with zero power (ambient %g)", i, temp, g.Ambient)
		}
	}
}

func TestExtraPowerIsCheaperOnACorner(t *testing.T) {
	// The paper's premise, in the regime that matters: on a die whose
	// banks are all active, adding extra compute to a corner bank heats
	// the die less than adding it to a central bank — corner banks "can
	// support higher computation density" (Section IV-D).
	g := DefaultGrid(4, 8)
	baseline := make([]float64, 32)
	for i := range baseline {
		baseline[i] = 0.2
	}
	centerPow := append([]float64(nil), baseline...)
	centerPow[1*8+3] += 1 // (1,3): interior
	cornerPow := append([]float64(nil), baseline...)
	cornerPow[0] += 1 // (0,0): corner
	tc, err := g.Solve(centerPow)
	if err != nil {
		t.Fatal(err)
	}
	tk, err := g.Solve(cornerPow)
	if err != nil {
		t.Fatal(err)
	}
	if MaxTemp(tc) <= MaxTemp(tk) {
		t.Fatalf("center hot spot %g <= corner hot spot %g — dissipation paths inverted",
			MaxTemp(tc), MaxTemp(tk))
	}
}

func TestEnergyBalance(t *testing.T) {
	// At steady state, injected power equals heat flowing to the sink
	// and out the edges.
	g := DefaultGrid(4, 8)
	power := make([]float64, 32)
	var total float64
	for i := range power {
		power[i] = 0.1 * float64(i%5)
		total += power[i]
	}
	temps, err := g.Solve(power)
	if err != nil {
		t.Fatal(err)
	}
	var out float64
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			i := r*g.Cols + c
			exposed := 0
			if r == 0 {
				exposed++
			}
			if r == g.Rows-1 {
				exposed++
			}
			if c == 0 {
				exposed++
			}
			if c == g.Cols-1 {
				exposed++
			}
			gOut := g.GSink + g.GEdgeExtra*float64(exposed)
			out += gOut * (temps[i] - g.Ambient)
		}
	}
	if math.Abs(out-total) > 1e-5*total {
		t.Fatalf("energy balance violated: in=%g out=%g", total, out)
	}
}

func TestThermalPlacementCoolerThanUniform(t *testing.T) {
	// The policy test: at the full 444-unit budget, the paper's
	// edge/corner-weighted placement yields a lower peak die
	// temperature than uniform placement — the justification for both
	// the policy and the executor's uniform-placement derate.
	stack, err := hmc.New(hw.PaperStack(1))
	if err != nil {
		t.Fatal(err)
	}
	spec := hw.PaperFixedPIM(hw.PaperFixedUnits)
	thermalPl, err := pim.ThermalPlacement(stack, hw.PaperFixedUnits)
	if err != nil {
		t.Fatal(err)
	}
	uniformPl, err := pim.UniformPlacement(stack, hw.PaperFixedUnits)
	if err != nil {
		t.Fatal(err)
	}
	tThermal, err := PlacementMaxTemp(stack, thermalPl, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	tUniform, err := PlacementMaxTemp(stack, uniformPl, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tThermal >= tUniform {
		t.Fatalf("thermal placement peak %gC >= uniform %gC — the policy buys nothing", tThermal, tUniform)
	}
}

func TestHigherFrequencyRunsHotter(t *testing.T) {
	stack, _ := hmc.New(hw.PaperStack(1))
	spec := hw.PaperFixedPIM(hw.PaperFixedUnits)
	pl, _ := pim.ThermalPlacement(stack, hw.PaperFixedUnits)
	t1, err := PlacementMaxTemp(stack, pl, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := PlacementMaxTemp(stack, pl, spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if t4 <= t1 {
		t.Fatalf("4x clock (%gC) must run hotter than 1x (%gC)", t4, t1)
	}
}

func TestSolveErrors(t *testing.T) {
	g := DefaultGrid(2, 2)
	if _, err := g.Solve(make([]float64, 3)); err == nil {
		t.Fatal("wrong power length must error")
	}
	if _, err := g.Solve([]float64{1, -1, 0, 0}); err == nil {
		t.Fatal("negative power must error")
	}
	bad := g
	bad.GSink = 0
	if _, err := bad.Solve(make([]float64, 4)); err == nil {
		t.Fatal("zero sink conductance must error")
	}
}

func TestPlacementPower(t *testing.T) {
	pl := pim.Placement{Units: []int{10, 0, 5}}
	spec := hw.PaperFixedPIM(15)
	p := PlacementPower(pl, spec, 2, 0.1)
	if math.Abs(p[0]-(10*spec.DynamicPowerPerUnit*2+0.1)) > 1e-12 {
		t.Fatalf("power[0] = %g", p[0])
	}
	if math.Abs(p[1]-0.1) > 1e-12 {
		t.Fatalf("power[1] = %g", p[1])
	}
	// Zero scale clamps to 1.
	p0 := PlacementPower(pl, spec, 0, 0)
	if math.Abs(p0[2]-5*spec.DynamicPowerPerUnit) > 1e-12 {
		t.Fatalf("power at clamped scale = %g", p0[2])
	}
}

func TestDesignSpaceExplorationRediscoversThePaperBudget(t *testing.T) {
	// The closed loop of Section IV-D: pushing units onto the die until
	// the hottest bank hits the DRAM cap lands near the paper's 444.
	stack, err := hmc.New(hw.PaperStack(1))
	if err != nil {
		t.Fatal(err)
	}
	units, err := MaxUnitsUnderCap(stack, DRAMThermalCap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if units < 380 || units > 520 {
		t.Fatalf("thermal DSE yields %d units, want ~444", units)
	}
}

func TestDesignSpaceShrinksAtHigherFrequency(t *testing.T) {
	// At 4x the PLL, per-unit dynamic power quadruples: far fewer units
	// fit under the cap — the thermal cost of the Fig. 17 sweet spot.
	stack, _ := hmc.New(hw.PaperStack(1))
	u1, err := MaxUnitsUnderCap(stack, DRAMThermalCap, 1)
	if err != nil {
		t.Fatal(err)
	}
	u4, err := MaxUnitsUnderCap(stack, DRAMThermalCap, 4)
	if err != nil {
		t.Fatal(err)
	}
	if u4 >= u1/2 {
		t.Fatalf("4x budget (%d) should be far below 1x (%d)", u4, u1)
	}
}

func TestMaxUnitsUnderCapErrors(t *testing.T) {
	stack, _ := hmc.New(hw.PaperStack(1))
	if _, err := MaxUnitsUnderCap(stack, 20, 1); err == nil {
		t.Fatal("cap below ambient must error")
	}
}
