// Package thermal is the HotSpot substitute: a steady-state 2D thermal
// model of the logic die's bank grid. The paper uses HotSpot to justify
// its placement policy — "banks at the edge and corner have better
// thermal dissipation paths than central banks ... these banks can
// support higher computation density" (Section IV-D). This model makes
// that statement checkable: each bank cell conducts laterally to its
// neighbors, vertically to the heat sink, and boundary cells get extra
// conductance per exposed edge (the package boundary dissipation path).
package thermal

import (
	"fmt"
	"math"

	"heteropim/internal/hmc"
	"heteropim/internal/hw"
	"heteropim/internal/pim"
)

// Grid describes the die's thermal network.
type Grid struct {
	Rows, Cols int
	// GLateral is the cell-to-cell conductance (W/K).
	GLateral float64
	// GSink is each cell's vertical conductance to the heat sink (W/K).
	GSink float64
	// GEdgeExtra is the additional conductance per exposed die edge of
	// a boundary cell — the better dissipation path of edge/corner
	// banks.
	GEdgeExtra float64
	// Ambient is the sink/ambient temperature (deg C).
	Ambient float64
}

// DefaultGrid returns a logic-die thermal network for the given bank
// grid, with conductances in the range HotSpot reports for a die of
// this class under a passive server heatsink.
func DefaultGrid(rows, cols int) Grid {
	return Grid{
		Rows:     rows,
		Cols:     cols,
		GLateral: 0.05,
		// The stack's vertical path to the sink is poor — the DRAM dies
		// above the logic layer insulate it (Eckert et al., WoNDP 2014) —
		// which is exactly why compute density on the logic die is
		// thermally bounded.
		GSink: 0.0022,
		// The package boundary is a comparatively strong dissipation
		// path: side walls and the board carry boundary-cell heat out,
		// giving edge/corner banks their thermal headroom (Fig. 3a).
		GEdgeExtra: 0.0078,
		Ambient:    45,
	}
	// With these conductances the paper's 444-unit budget lands within
	// half a degree of the 85C DRAM cap (see MaxUnitsUnderCap).
}

// Solve computes steady-state cell temperatures for the given per-cell
// power (watts), using Gauss-Seidel iteration on the conductance
// network.
func (g Grid) Solve(power []float64) ([]float64, error) {
	n := g.Rows * g.Cols
	if len(power) != n {
		return nil, fmt.Errorf("thermal: %d power entries for a %dx%d grid", len(power), g.Rows, g.Cols)
	}
	if g.GLateral <= 0 || g.GSink <= 0 {
		return nil, fmt.Errorf("thermal: non-positive conductances")
	}
	for i, p := range power {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			return nil, fmt.Errorf("thermal: bad power %g at cell %d", p, i)
		}
	}
	temp := make([]float64, n)
	for i := range temp {
		temp[i] = g.Ambient
	}
	idx := func(r, c int) int { return r*g.Cols + c }
	const (
		maxIters = 20000
		tol      = 1e-9
	)
	for iter := 0; iter < maxIters; iter++ {
		var maxDelta float64
		for r := 0; r < g.Rows; r++ {
			for c := 0; c < g.Cols; c++ {
				i := idx(r, c)
				gSum := g.GSink
				flow := g.GSink * g.Ambient
				exposed := 0
				if r == 0 {
					exposed++
				} else {
					gSum += g.GLateral
					flow += g.GLateral * temp[idx(r-1, c)]
				}
				if r == g.Rows-1 {
					exposed++
				} else {
					gSum += g.GLateral
					flow += g.GLateral * temp[idx(r+1, c)]
				}
				if c == 0 {
					exposed++
				} else {
					gSum += g.GLateral
					flow += g.GLateral * temp[idx(r, c-1)]
				}
				if c == g.Cols-1 {
					exposed++
				} else {
					gSum += g.GLateral
					flow += g.GLateral * temp[idx(r, c+1)]
				}
				gEdge := g.GEdgeExtra * float64(exposed)
				gSum += gEdge
				flow += gEdge * g.Ambient
				next := (flow + power[i]) / gSum
				if d := math.Abs(next - temp[i]); d > maxDelta {
					maxDelta = d
				}
				temp[i] = next
			}
		}
		if maxDelta < tol {
			return temp, nil
		}
	}
	return nil, fmt.Errorf("thermal: Gauss-Seidel did not converge in %d iterations", maxIters)
}

// MaxTemp returns the hottest cell temperature.
func MaxTemp(temps []float64) float64 {
	m := math.Inf(-1)
	for _, t := range temps {
		if t > m {
			m = t
		}
	}
	return m
}

// PlacementPower converts a fixed-function placement to per-bank power:
// units x per-unit dynamic power (at the stack frequency scale) plus a
// uniform background (bank peripheral + TSV drivers).
func PlacementPower(placement pim.Placement, spec hw.FixedPIMSpec, freqScale, background float64) []float64 {
	if freqScale <= 0 {
		freqScale = 1
	}
	out := make([]float64, len(placement.Units))
	for i, u := range placement.Units {
		out[i] = float64(u)*spec.DynamicPowerPerUnit*freqScale + background
	}
	return out
}

// PlacementMaxTemp solves the die temperature for a placement on a
// stack and returns the hottest bank.
func PlacementMaxTemp(stack *hmc.Stack, placement pim.Placement, spec hw.FixedPIMSpec, freqScale float64) (float64, error) {
	grid := DefaultGrid(stack.Spec.Rows, stack.Spec.Cols)
	power := PlacementPower(placement, spec, freqScale, 0.05)
	temps, err := grid.Solve(power)
	if err != nil {
		return 0, err
	}
	return MaxTemp(temps), nil
}
