package thermal

import (
	"fmt"

	"heteropim/internal/hmc"
	"heteropim/internal/hw"
	"heteropim/internal/pim"
)

// DRAMThermalCap is the JEDEC-class die temperature limit that bounds
// logic-layer compute density (85C; beyond it the DRAM retention window
// collapses and refresh must double).
const DRAMThermalCap = 85.0

// MaxUnitsUnderCap reproduces the Section IV-D design-space
// exploration: the largest fixed-function unit budget whose
// thermal-aware placement keeps the hottest bank under the temperature
// cap. The paper's McPAT/HotSpot flow produced 444 for the baseline
// stack; this function derives the same class of answer from the
// thermal model.
func MaxUnitsUnderCap(stack *hmc.Stack, cap float64, freqScale float64) (int, error) {
	if cap <= DefaultGrid(stack.Spec.Rows, stack.Spec.Cols).Ambient {
		return 0, fmt.Errorf("thermal: cap %gC at or below ambient", cap)
	}
	fits := func(units int) (bool, error) {
		if units == 0 {
			return true, nil
		}
		placement, err := pim.ThermalPlacement(stack, units)
		if err != nil {
			return false, err
		}
		spec := hw.PaperFixedPIM(units)
		maxT, err := PlacementMaxTemp(stack, placement, spec, freqScale)
		if err != nil {
			return false, err
		}
		return maxT <= cap, nil
	}
	// Exponential probe then binary search.
	lo, hi := 0, 64
	for {
		ok, err := fits(hi)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		lo = hi
		hi *= 2
		if hi > 1<<20 {
			return 0, fmt.Errorf("thermal: cap %gC never binds below %d units", cap, hi)
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		ok, err := fits(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
