package hw

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteConfig serializes a system configuration as indented JSON, for
// design-space exploration with custom hardware descriptions.
func WriteConfig(w io.Writer, cfg SystemConfig) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(cfg); err != nil {
		return fmt.Errorf("hw: encoding config %q: %w", cfg.Name, err)
	}
	return nil
}

// ReadConfig parses and validates a system configuration from JSON.
func ReadConfig(r io.Reader) (SystemConfig, error) {
	var cfg SystemConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return SystemConfig{}, fmt.Errorf("hw: decoding config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return SystemConfig{}, err
	}
	return cfg, nil
}
