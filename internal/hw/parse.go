package hw

import (
	"fmt"
	"sort"
	"strings"
)

// configByFlagName maps the flag-style lowercase platform names used by
// every cmd/ tool (and the serving/scenario layers) to configuration
// kinds. The public heteropim.ParseConfig delegates here so the CLI
// flags, the POST body and the scenario schema all accept exactly the
// same spellings.
var configByFlagName = map[string]ConfigKind{
	"cpu":    ConfigCPU,
	"gpu":    ConfigGPU,
	"progr":  ConfigProgrPIM,
	"fixed":  ConfigFixedPIM,
	"hetero": ConfigHeteroPIM,
}

// ConfigFlagNames lists the flag-style platform names ParseConfigFlag
// accepts, sorted.
func ConfigFlagNames() []string {
	names := make([]string, 0, len(configByFlagName))
	for n := range configByFlagName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseConfigFlag resolves a flag-style platform name
// (case-insensitive: cpu, gpu, progr, fixed, hetero) to its
// configuration kind. The error for an unknown name lists the valid
// ones.
func ParseConfigFlag(name string) (ConfigKind, error) {
	if kind, ok := configByFlagName[strings.ToLower(name)]; ok {
		return kind, nil
	}
	return 0, fmt.Errorf("heteropim: unknown configuration %q (valid: %s)",
		name, strings.Join(ConfigFlagNames(), ", "))
}

// ConfigFlagName is the inverse of ParseConfigFlag: the canonical
// flag-style name of a configuration kind ("" for an unknown kind).
func ConfigFlagName(kind ConfigKind) string {
	switch kind {
	case ConfigCPU:
		return "cpu"
	case ConfigGPU:
		return "gpu"
	case ConfigProgrPIM:
		return "progr"
	case ConfigFixedPIM:
		return "fixed"
	case ConfigHeteroPIM:
		return "hetero"
	default:
		return ""
	}
}
