// Package hw defines the hardware description types shared by every
// substrate in the heterogeneous-PIM simulator: clock frequencies,
// processor and memory specifications, and the concrete configurations
// evaluated in the MICRO 2018 paper (Table IV and Section IV-D).
//
// All times are float64 seconds, all energies float64 joules, all powers
// float64 watts, all rates float64 per-second quantities. Using plain SI
// float64 units keeps the roofline arithmetic in the device models free
// of conversion bugs.
package hw

import "fmt"

// Hz is a clock or event frequency in cycles per second.
type Hz = float64

// Common frequency multiples.
const (
	KHz Hz = 1e3
	MHz Hz = 1e6
	GHz Hz = 1e9
)

// BytesPerSec is a bandwidth in bytes per second.
type BytesPerSec = float64

// Convenience bandwidth multiples (SI, matching vendor datasheets).
const (
	KBps BytesPerSec = 1e3
	MBps BytesPerSec = 1e6
	GBps BytesPerSec = 1e9
)

// FlopsPerSec is arithmetic throughput in FP32 operations per second.
type FlopsPerSec = float64

// Seconds is a duration or point in simulated time.
type Seconds = float64

// Joules is an amount of energy.
type Joules = float64

// Watts is a power draw.
type Watts = float64

// CPUSpec describes the host processor (paper Table IV: Intel Xeon
// E5-2630 v3, 8 cores at 2.4 GHz, 16 GB DDR4).
type CPUSpec struct {
	Name  string
	Cores int
	Freq  Hz
	// FlopsPerCycle is the per-core FP32 throughput per cycle assuming
	// the vector units are busy (AVX2 FMA: 16 FP32 FLOPs/cycle).
	FlopsPerCycle float64
	// MemBandwidth is the sustained main-memory bandwidth available to
	// the cores (4-channel DDR4-1866 on the E5-2630 v3 platform).
	MemBandwidth BytesPerSec
	// DynamicPower is the package dynamic power when training
	// (measured with VTune in the paper; we adopt a TDP-derived value).
	DynamicPower Watts
}

// Peak returns the aggregate peak FP32 throughput of the CPU.
func (c CPUSpec) Peak() FlopsPerSec {
	return float64(c.Cores) * c.Freq * c.FlopsPerCycle
}

// GPUSpec describes the discrete GPU baseline (paper Table IV: NVIDIA
// GeForce GTX 1080 Ti, 28 SMs x 128 CUDA cores at 1.5 GHz, 11 GB GDDR5X).
type GPUSpec struct {
	Name       string
	SMs        int
	CoresPerSM int
	Freq       Hz
	// MemBandwidth is device-memory bandwidth (GDDR5X, 484 GB/s).
	MemBandwidth BytesPerSec
	// HostLinkBandwidth is the PCIe 3.0 x16 host link used for
	// minibatch and parameter transfers.
	HostLinkBandwidth BytesPerSec
	// DynamicPower is the board dynamic power while training.
	DynamicPower Watts
	// KernelLaunchOverhead is the fixed host-side cost of dispatching
	// one kernel/operation to the GPU.
	KernelLaunchOverhead Seconds
}

// Peak returns aggregate peak FP32 throughput (2 FLOPs/core/cycle FMA).
func (g GPUSpec) Peak() FlopsPerSec {
	return float64(g.SMs*g.CoresPerSM) * g.Freq * 2
}

// StackSpec describes the 3D die-stacked memory (HMC 2.0; Section V-A:
// 312.5 MHz baseline frequency, 32 banks where a bank is a vertical slice
// of the stack).
type StackSpec struct {
	Name string
	// Banks is the number of vertical bank slices (32 in the paper).
	Banks int
	// Rows and Cols give the logical 2D arrangement of the banks on the
	// logic die, used by the thermal-aware placement policy (8x4).
	Rows, Cols int
	// Freq is the stack working frequency, also the frequency of the
	// heterogeneous PIM logic (312.5 MHz at 1x).
	Freq Hz
	// FreqScale multiplies Freq for the frequency-scaling studies
	// (Section VI-D: 1x, 2x, 4x via a PLL).
	FreqScale float64
	// InternalBandwidth is the aggregate bandwidth the logic layer sees
	// from the DRAM dies through the TSVs (HMC 2.0 internal: 320 GB/s).
	InternalBandwidth BytesPerSec
	// ExternalBandwidth is what the host CPU sees over the serial links.
	ExternalBandwidth BytesPerSec
	// RowAccessEnergyPerByte is DRAM array access energy (pJ/byte scale).
	RowAccessEnergyPerByte Joules
	// TSVEnergyPerByte is the cost of moving a byte through the stack
	// to the logic layer (PIM-side accesses pay this only).
	TSVEnergyPerByte Joules
	// LinkEnergyPerByte is the cost of moving a byte over the external
	// SerDes links to the host (host-side accesses pay this too).
	LinkEnergyPerByte Joules
}

// EffectiveFreq returns the scaled stack/PIM frequency.
func (s StackSpec) EffectiveFreq() Hz {
	scale := s.FreqScale
	if scale == 0 {
		scale = 1
	}
	return s.Freq * scale
}

// ScaledInternalBandwidth returns the bandwidth PIM logic sees from the
// DRAM dies. The Section VI-D PLL scales the logic and TSV clocks, but
// the DRAM array timings do not follow it, so sustained internal
// bandwidth stays at the array limit — this is what makes the Fig. 11
// frequency-scaling gains saturate for bandwidth-hungry models.
func (s StackSpec) ScaledInternalBandwidth() BytesPerSec {
	return s.InternalBandwidth
}

// FixedPIMSpec describes the pool of fixed-function PIMs: pairs of 32-bit
// floating-point multipliers and adders on the logic die (Section IV-D:
// 444 pairs across 32 banks, more on edge/corner banks).
type FixedPIMSpec struct {
	// Units is the total number of multiplier+adder pairs (444).
	Units int
	// FlopsPerUnitCycle: each pair retires one multiply and one add per
	// cycle when streaming (2 FLOPs/cycle/unit).
	FlopsPerUnitCycle float64
	// SpawnOverhead is the cost of launching one small kernel onto a
	// group of fixed-function PIMs from the host.
	SpawnOverhead Seconds
	// HostSyncOverhead is one host<->PIM synchronization (completion
	// check driven through the programmable PIM, Section III-B).
	HostSyncOverhead Seconds
	// PIMSyncOverhead is one PIM<->PIM synchronization through global
	// variables in main memory (much cheaper than involving the host).
	PIMSyncOverhead Seconds
	// DynamicPowerPerUnit is the active power of one mul+add pair at 1x.
	DynamicPowerPerUnit Watts
}

// ProgPIMSpec describes the programmable PIM (Section IV-D: one ARM
// Cortex-A9-class processor, four 2 GHz in-order cores).
type ProgPIMSpec struct {
	// Processors is the number of programmable PIM processors (1 in the
	// baseline; 1/4/16 in the Fig. 12 scaling study).
	Processors        int
	CoresPerProcessor int
	Freq              Hz
	// FlopsPerCycle per core: in-order dual-issue with a simple FPU.
	FlopsPerCycle float64
	// KernelLaunchOverhead is the host-side cost of offloading a kernel
	// to the programmable PIM.
	KernelLaunchOverhead Seconds
	// DynamicPowerPerProcessor is active power of one 4-core processor.
	DynamicPowerPerProcessor Watts
}

// Peak returns aggregate peak FP32 throughput of all programmable PIMs.
func (p ProgPIMSpec) Peak() FlopsPerSec {
	return float64(p.Processors*p.CoresPerProcessor) * p.Freq * p.FlopsPerCycle
}

// InterStackLinkSpec describes the point-to-point link between HMC
// stacks in a multi-stack system (NeuroTrainer-style arrays of memory
// modules). Each stack trains on a shard of the minibatch and the
// gradients cross these links during the all-reduce, so the link's
// bandwidth and latency bound the synchronization phase of every
// training step.
type InterStackLinkSpec struct {
	// Bandwidth is the sustained per-direction bandwidth of one link
	// (SerDes/NVLink-class).
	Bandwidth BytesPerSec
	// Latency is the fixed per-message cost of a transfer over the link
	// (serialization + hop latency).
	Latency Seconds
	// EnergyPerByte is the cost of moving one byte across the link.
	EnergyPerByte Joules
}

// SystemConfig is a full simulated platform: the host, the optional GPU,
// the memory stack and the PIM complement.
type SystemConfig struct {
	Name     string
	CPU      CPUSpec
	GPU      GPUSpec
	Stack    StackSpec
	FixedPIM FixedPIMSpec
	ProgPIM  ProgPIMSpec
	// Link is the inter-stack interconnect used when a run shards the
	// minibatch across multiple stacks (Options.Stacks > 1). Single-stack
	// runs never touch it.
	Link InterStackLinkSpec
	// DRAMBackgroundPower is the static+refresh power of the stack.
	DRAMBackgroundPower Watts
}

// Validate reports configuration errors early rather than letting them
// surface as NaNs deep inside the simulator.
func (c SystemConfig) Validate() error {
	if c.CPU.Cores <= 0 || c.CPU.Freq <= 0 {
		return fmt.Errorf("hw: config %q: CPU must have positive cores and frequency", c.Name)
	}
	if c.Stack.Banks <= 0 {
		return fmt.Errorf("hw: config %q: stack must have banks", c.Name)
	}
	if c.Stack.Rows*c.Stack.Cols != c.Stack.Banks {
		return fmt.Errorf("hw: config %q: bank grid %dx%d does not cover %d banks",
			c.Name, c.Stack.Rows, c.Stack.Cols, c.Stack.Banks)
	}
	if c.FixedPIM.Units < 0 {
		return fmt.Errorf("hw: config %q: negative fixed-function PIM units", c.Name)
	}
	if c.ProgPIM.Processors < 0 {
		return fmt.Errorf("hw: config %q: negative programmable PIM processors", c.Name)
	}
	if c.Link.Bandwidth < 0 || c.Link.Latency < 0 || c.Link.EnergyPerByte < 0 {
		return fmt.Errorf("hw: config %q: inter-stack link parameters must be non-negative", c.Name)
	}
	return nil
}

// ValidateMultiStack checks the pieces a sharded multi-stack run needs
// on top of Validate: a usable inter-stack link.
func (c SystemConfig) ValidateMultiStack() error {
	if err := c.Validate(); err != nil {
		return err
	}
	if c.Link.Bandwidth <= 0 {
		return fmt.Errorf("hw: config %q: multi-stack run needs a positive inter-stack link bandwidth", c.Name)
	}
	return nil
}
