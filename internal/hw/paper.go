package hw

// This file pins down the concrete hardware the MICRO 2018 paper
// evaluates (Table IV, Sections IV-D and V) plus the calibration
// constants our analytic models need. Every number either comes straight
// from the paper / the referenced datasheets (core counts, frequencies,
// bandwidths, unit budget) or is a standard published figure for the
// part (power, per-byte energies, launch overheads).

// Paper constants (Sections IV-D, V-A).
const (
	// PaperFixedUnits is the total fixed-function PIM budget the paper's
	// McPAT/HotSpot design-space exploration allows on the logic die.
	PaperFixedUnits = 444
	// PaperBanks is the number of vertical bank slices in the stack.
	PaperBanks = 32
	// PaperBankRows x PaperBankCols is the logic-die bank grid (Fig. 3a).
	PaperBankRows = 4
	PaperBankCols = 8
	// PaperStackFreq is the HMC 2.0 working frequency.
	PaperStackFreq Hz = 312.5 * MHz
	// ProgPIMAreaInFixedUnits is the logic-die area of one 4-core
	// programmable PIM processor expressed in fixed-function unit
	// equivalents. Chosen so the Fig. 12 study (1P -> 16P at constant
	// area) costs 60 fixed units at 16P, reproducing the paper's
	// observed 12%-14% slowdown on fixed-function-bound workloads.
	ProgPIMAreaInFixedUnits = 4
)

// PaperCPU returns the host processor model: Intel Xeon E5-2630 v3
// (8 cores, 2.4 GHz, AVX2) with 4-channel DDR4.
func PaperCPU() CPUSpec {
	return CPUSpec{
		Name:          "Intel Xeon E5-2630 v3",
		Cores:         8,
		Freq:          2.4 * GHz,
		FlopsPerCycle: 16, // AVX2: 2x 8-wide FMA
		MemBandwidth:  50 * GBps,
		DynamicPower:  68,
	}
}

// PaperGPU returns the GPU baseline: NVIDIA GeForce GTX 1080 Ti.
func PaperGPU() GPUSpec {
	return GPUSpec{
		Name:                 "NVIDIA GeForce GTX 1080 Ti",
		SMs:                  28,
		CoresPerSM:           128,
		Freq:                 1.5 * GHz,
		MemBandwidth:         484 * GBps,
		HostLinkBandwidth:    12 * GBps, // sustained PCIe 3.0 x16
		DynamicPower:         231,
		KernelLaunchOverhead: 8e-6,
	}
}

// PaperStack returns the HMC 2.0 memory stack at the given frequency
// scale (1, 2 or 4; Section VI-D drives the PIM logic and TSV interface
// with a PLL).
func PaperStack(freqScale float64) StackSpec {
	if freqScale <= 0 {
		freqScale = 1
	}
	return StackSpec{
		Name:                   "HMC 2.0 stack",
		Banks:                  PaperBanks,
		Rows:                   PaperBankRows,
		Cols:                   PaperBankCols,
		Freq:                   PaperStackFreq,
		FreqScale:              freqScale,
		InternalBandwidth:      320 * GBps,
		ExternalBandwidth:      120 * GBps,
		RowAccessEnergyPerByte: 30e-12,
		TSVEnergyPerByte:       8e-12,
		LinkEnergyPerByte:      40e-12,
	}
}

// PaperFixedPIM returns the fixed-function PIM pool with the given unit
// count (444 in the baseline; fewer when programmable PIMs eat die area).
func PaperFixedPIM(units int) FixedPIMSpec {
	return FixedPIMSpec{
		Units:               units,
		FlopsPerUnitCycle:   2, // one multiply + one add per cycle
		SpawnOverhead:       2e-6,
		HostSyncOverhead:    5e-6,
		PIMSyncOverhead:     0.3e-6,
		DynamicPowerPerUnit: 0.017,
	}
}

// PaperProgPIM returns the programmable PIM complement with the given
// number of 4-core ARM Cortex-A9-class processors.
func PaperProgPIM(processors int) ProgPIMSpec {
	return ProgPIMSpec{
		Processors:               processors,
		CoresPerProcessor:        4,
		Freq:                     2 * GHz,
		FlopsPerCycle:            2, // in-order core with a simple FPU
		KernelLaunchOverhead:     3e-6,
		DynamicPowerPerProcessor: 1.8,
	}
}

// PaperInterStackLink returns the default stack-to-stack interconnect
// for multi-stack systems: an NVLink-class SerDes link (25 GB/s per
// direction, sub-microsecond hop latency) at the same per-byte energy
// as the stack's external SerDes links. NeuroTrainer (PAPERS.md) is the
// precedent for this class of memory-module array.
func PaperInterStackLink() InterStackLinkSpec {
	return InterStackLinkSpec{
		Bandwidth:     25 * GBps,
		Latency:       0.5e-6,
		EnergyPerByte: 40e-12,
	}
}

// ConfigKind enumerates the five platforms of Section VI.
type ConfigKind int

const (
	// ConfigCPU executes all training operations on the host CPU.
	ConfigCPU ConfigKind = iota
	// ConfigGPU executes all training operations on the GPU.
	ConfigGPU
	// ConfigProgrPIM uses programmable PIMs only (no runtime scheduling):
	// the logic die is filled with ARM processors.
	ConfigProgrPIM
	// ConfigFixedPIM uses fixed-function PIMs only; non-offloadable
	// operations run on the CPU (no runtime scheduling).
	ConfigFixedPIM
	// ConfigHeteroPIM is the paper's design: fixed-function + programmable
	// PIMs with the profiling/scheduling runtime.
	ConfigHeteroPIM
)

// String implements fmt.Stringer with the labels used in the figures.
func (k ConfigKind) String() string {
	switch k {
	case ConfigCPU:
		return "CPU"
	case ConfigGPU:
		return "GPU"
	case ConfigProgrPIM:
		return "Progr PIM"
	case ConfigFixedPIM:
		return "Fixed PIM"
	case ConfigHeteroPIM:
		return "Hetero PIM"
	default:
		return "unknown"
	}
}

// AllConfigKinds lists the five evaluated platforms in figure order.
func AllConfigKinds() []ConfigKind {
	return []ConfigKind{ConfigCPU, ConfigGPU, ConfigProgrPIM, ConfigFixedPIM, ConfigHeteroPIM}
}

// PaperConfig assembles the full SystemConfig for one of the five
// evaluated platforms at frequency scale 1.
func PaperConfig(kind ConfigKind) SystemConfig {
	return PaperConfigScaled(kind, 1)
}

// PaperConfigScaled assembles a platform at the given PIM/stack frequency
// scale. The CPU and GPU platforms ignore the scale (their silicon is not
// behind the PLL).
func PaperConfigScaled(kind ConfigKind, freqScale float64) SystemConfig {
	cfg := SystemConfig{
		Name:                kind.String(),
		CPU:                 PaperCPU(),
		Stack:               PaperStack(freqScale),
		Link:                PaperInterStackLink(),
		DRAMBackgroundPower: 9,
	}
	switch kind {
	case ConfigCPU:
		cfg.Stack = PaperStack(1)
	case ConfigGPU:
		cfg.GPU = PaperGPU()
		cfg.Stack = PaperStack(1)
	case ConfigProgrPIM:
		// Fill the logic die with programmable processors: the paper's
		// "as many ARM-based programmable cores as needed by workloads".
		cfg.ProgPIM = PaperProgPIM(PaperFixedUnits / ProgPIMAreaInFixedUnits)
	case ConfigFixedPIM:
		cfg.FixedPIM = PaperFixedPIM(PaperFixedUnits)
	case ConfigHeteroPIM:
		cfg.ProgPIM = PaperProgPIM(1)
		cfg.FixedPIM = PaperFixedPIM(PaperFixedUnits - ProgPIMAreaInFixedUnits)
	}
	return cfg
}

// GPUHostHeteroConfig returns the heterogeneous PIM attached to a GPU
// system (Section II-D: the PIM logic is "generally applicable to both
// CPU or GPU systems"; the paper chose CPU because of GPU scheduling
// constraints — this configuration exists for the extension study).
func GPUHostHeteroConfig(freqScale float64) SystemConfig {
	cfg := PaperConfigScaled(ConfigHeteroPIM, freqScale)
	cfg.GPU = PaperGPU()
	cfg.Name = "Hetero PIM (GPU host)"
	return cfg
}

// HeteroConfigWithProcessors returns the Hetero PIM platform with n
// programmable processors, shrinking the fixed-function pool to keep the
// logic-die area constant (Fig. 12: 1P, 4P, 16P).
func HeteroConfigWithProcessors(n int, freqScale float64) SystemConfig {
	cfg := PaperConfigScaled(ConfigHeteroPIM, freqScale)
	cfg.ProgPIM = PaperProgPIM(n)
	units := PaperFixedUnits - n*ProgPIMAreaInFixedUnits
	if units < 0 {
		units = 0
	}
	cfg.FixedPIM = PaperFixedPIM(units)
	cfg.Name = cfg.Name + "-" + itoa(n) + "P"
	return cfg
}

// itoa avoids importing strconv for one tiny use.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
