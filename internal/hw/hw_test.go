package hw

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCPUPeak(t *testing.T) {
	c := PaperCPU()
	want := 8 * 2.4e9 * 16.0
	if got := c.Peak(); math.Abs(got-want) > 1 {
		t.Fatalf("CPU peak = %g, want %g", got, want)
	}
}

func TestGPUPeak(t *testing.T) {
	g := PaperGPU()
	// 28 SMs x 128 cores x 1.5 GHz x 2 FLOPs = 10.752 TFLOPS.
	want := 28.0 * 128 * 1.5e9 * 2
	if got := g.Peak(); math.Abs(got-want) > 1 {
		t.Fatalf("GPU peak = %g, want %g", got, want)
	}
}

func TestStackEffectiveFreq(t *testing.T) {
	for _, scale := range []float64{1, 2, 4} {
		s := PaperStack(scale)
		want := 312.5e6 * scale
		if got := s.EffectiveFreq(); math.Abs(got-want) > 1 {
			t.Errorf("scale %g: effective freq = %g, want %g", scale, got, want)
		}
		if got := s.ScaledInternalBandwidth(); math.Abs(got-320e9) > 1 {
			t.Errorf("scale %g: internal bandwidth = %g, want %g (array-limited)", scale, got, 320e9)
		}
	}
}

func TestStackZeroScaleDefaultsToOne(t *testing.T) {
	s := PaperStack(1)
	s.FreqScale = 0
	if got := s.EffectiveFreq(); got != s.Freq {
		t.Fatalf("zero FreqScale: effective freq = %g, want %g", got, s.Freq)
	}
}

func TestPaperConfigsValidate(t *testing.T) {
	for _, kind := range AllConfigKinds() {
		cfg := PaperConfig(kind)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
		if cfg.Name != kind.String() {
			t.Errorf("%v: name = %q", kind, cfg.Name)
		}
	}
}

func TestConfigKindStrings(t *testing.T) {
	want := map[ConfigKind]string{
		ConfigCPU:       "CPU",
		ConfigGPU:       "GPU",
		ConfigProgrPIM:  "Progr PIM",
		ConfigFixedPIM:  "Fixed PIM",
		ConfigHeteroPIM: "Hetero PIM",
		ConfigKind(99):  "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*SystemConfig){
		func(c *SystemConfig) { c.CPU.Cores = 0 },
		func(c *SystemConfig) { c.CPU.Freq = 0 },
		func(c *SystemConfig) { c.Stack.Banks = 0 },
		func(c *SystemConfig) { c.Stack.Rows = 3 },
		func(c *SystemConfig) { c.FixedPIM.Units = -1 },
		func(c *SystemConfig) { c.ProgPIM.Processors = -1 },
	}
	for i, mutate := range cases {
		cfg := PaperConfig(ConfigHeteroPIM)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: want validation error, got nil", i)
		}
	}
}

func TestHeteroConfigAreaConstraint(t *testing.T) {
	for _, n := range []int{1, 4, 16} {
		cfg := HeteroConfigWithProcessors(n, 1)
		wantUnits := PaperFixedUnits - n*ProgPIMAreaInFixedUnits
		if cfg.FixedPIM.Units != wantUnits {
			t.Errorf("%dP: fixed units = %d, want %d", n, cfg.FixedPIM.Units, wantUnits)
		}
		if cfg.ProgPIM.Processors != n {
			t.Errorf("%dP: processors = %d", n, cfg.ProgPIM.Processors)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%dP: %v", n, err)
		}
	}
}

func TestHeteroConfigNeverNegativeUnits(t *testing.T) {
	cfg := HeteroConfigWithProcessors(1000, 1)
	if cfg.FixedPIM.Units != 0 {
		t.Fatalf("oversized processor count should clamp units to 0, got %d", cfg.FixedPIM.Units)
	}
}

func TestBaselineFixedPoolBiggerThanHetero(t *testing.T) {
	fixed := PaperConfig(ConfigFixedPIM)
	het := PaperConfig(ConfigHeteroPIM)
	if fixed.FixedPIM.Units <= het.FixedPIM.Units {
		t.Fatalf("Fixed PIM baseline (%d units) should have more units than Hetero (%d)",
			fixed.FixedPIM.Units, het.FixedPIM.Units)
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 1: "1", -7: "-7", 444: "444", 12034: "12034"}
	for n, want := range cases {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestItoaQuick(t *testing.T) {
	f := func(n int16) bool {
		want := ""
		m := int(n)
		if m == 0 {
			want = "0"
		} else {
			neg := m < 0
			v := m
			if neg {
				v = -v
			}
			for v > 0 {
				want = string(rune('0'+v%10)) + want
				v /= 10
			}
			if neg {
				want = "-" + want
			}
		}
		return itoa(m) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	cfg := PaperConfig(ConfigHeteroPIM)
	if err := WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != cfg {
		t.Fatalf("round trip changed the config:\n%+v\nvs\n%+v", got, cfg)
	}
}

func TestReadConfigRejectsGarbageAndInvalid(t *testing.T) {
	if _, err := ReadConfig(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage JSON must error")
	}
	if _, err := ReadConfig(strings.NewReader(`{"Unknown": 1}`)); err == nil {
		t.Fatal("unknown fields must error")
	}
	// Valid JSON, invalid hardware.
	bad := PaperConfig(ConfigHeteroPIM)
	bad.CPU.Cores = 0
	var buf bytes.Buffer
	if err := WriteConfig(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadConfig(&buf); err == nil {
		t.Fatal("invalid hardware must fail validation")
	}
}
