// Package energy implements the paper's power/energy methodology
// (Section V-B): whole-system power — the host CPU is charged in every
// configuration, including the PIM ones — dynamic energy per training
// step, and energy-delay product (EDP, Section VI-G).
package energy

import (
	"heteropim/internal/core"
	"heteropim/internal/device"
	"heteropim/internal/hw"
)

// Idle-power fractions: a device that is powered but not executing still
// burns a share of its dynamic power (clocks, uncore, leakage).
const (
	cpuIdleFrac   = 0.35
	gpuIdleFloor  = 0.45 // GPU board power floor as a fraction of peak dynamic
	progIdleFrac  = 0.50
	fixedIdleFrac = 0.10
)

// Per-byte energies not covered by the stack spec.
const (
	gddrEnergyPerByte hw.Joules = 20e-12
	pcieEnergyPerByte hw.Joules = 30e-12
)

// Report is the energy outcome of one steady-state training step.
type Report struct {
	// Dynamic is the whole-system dynamic energy of one step.
	Dynamic hw.Joules
	// AvgPower is Dynamic / step time.
	AvgPower hw.Watts
	// EDP is the energy-delay product (J*s) of one step.
	EDP float64
	// Parts itemizes the energy for analysis.
	Parts Parts
}

// Parts itemizes a step's energy.
type Parts struct {
	CPU, GPU, ProgPIM, FixedPIM, Neurocube, DRAM, Traffic hw.Joules
}

// Evaluate computes the whole-system dynamic energy of a simulation
// result under its configuration.
func Evaluate(r core.Result) Report {
	cfg := r.Config
	step := r.StepTime
	u := r.Usage
	var p Parts

	// A multi-stack run charges M copies of every per-node baseline
	// (host, PIM complement, stack background): Usage busy-seconds are
	// already summed over the stacks, so only the installed capacity
	// behind the idle terms needs scaling. stacks == 1 reproduces the
	// single-stack arithmetic exactly.
	stacks := float64(r.Stacks)
	if stacks < 1 {
		stacks = 1
	}

	// Host CPU: busy at full dynamic power, idle at the uncore floor.
	idle := stacks*step - u.CPUBusy
	if idle < 0 {
		idle = 0
	}
	p.CPU = cfg.CPU.DynamicPower*u.CPUBusy + cpuIdleFrac*cfg.CPU.DynamicPower*idle

	// GPU board: measured training power scales with utilization above
	// a board floor (nvidia-smi-style accounting, Section V-B).
	if cfg.GPU.SMs > 0 && u.GPUBusy > 0 {
		util := r.GPUUtilization
		if util <= 0 {
			util = 1
		}
		boardPower := cfg.GPU.DynamicPower * (gpuIdleFloor + (1-gpuIdleFloor)*util)
		p.GPU = boardPower * u.GPUBusy
	}

	// Programmable PIM: busy processors at full power, the rest of the
	// complement at the idle fraction.
	if cfg.ProgPIM.Processors > 0 {
		full := stacks * float64(cfg.ProgPIM.Processors) * cfg.ProgPIM.DynamicPowerPerProcessor
		p.ProgPIM = cfg.ProgPIM.DynamicPowerPerProcessor*u.ProgBusy +
			progIdleFrac*(full*step-cfg.ProgPIM.DynamicPowerPerProcessor*u.ProgBusy)
		if p.ProgPIM < 0 {
			p.ProgPIM = 0
		}
	}

	// Fixed-function PIM pool: dynamic power scales with the PLL.
	if cfg.FixedPIM.Units > 0 {
		scale := cfg.Stack.FreqScale
		if scale <= 0 {
			scale = 1
		}
		perUnit := cfg.FixedPIM.DynamicPowerPerUnit * scale
		idleUnitSeconds := stacks*float64(cfg.FixedPIM.Units)*step - u.FixedBusyUnitSeconds
		if idleUnitSeconds < 0 {
			idleUnitSeconds = 0
		}
		p.FixedPIM = perUnit*u.FixedBusyUnitSeconds + fixedIdleFrac*perUnit*idleUnitSeconds
	}

	// Neurocube PE array (comparison runs only).
	if u.NeurocubeBusy > 0 {
		p.Neurocube = device.DefaultNeurocube().DynamicPower * u.NeurocubeBusy
	}

	// Stack background (refresh + SerDes idle), one stack per node.
	p.DRAM = cfg.DRAMBackgroundPower * step * stacks

	// Data movement: per-byte energies by path (the core of the
	// paper's energy argument — PIM-side bytes skip the link energy).
	// Gradient bytes crossing the stack-to-stack links during the
	// all-reduce pay the inter-stack SerDes energy.
	p.Traffic = u.HostBytes*(cfg.Stack.RowAccessEnergyPerByte+cfg.Stack.LinkEnergyPerByte) +
		u.PIMBytes*(cfg.Stack.RowAccessEnergyPerByte+cfg.Stack.TSVEnergyPerByte) +
		u.GPUBytes*gddrEnergyPerByte +
		u.LinkBytes*pcieEnergyPerByte +
		u.InterStackBytes*cfg.Link.EnergyPerByte

	total := p.CPU + p.GPU + p.ProgPIM + p.FixedPIM + p.Neurocube + p.DRAM + p.Traffic
	rep := Report{Dynamic: total, Parts: p, EDP: total * step}
	if step > 0 {
		rep.AvgPower = total / step
	}
	return rep
}

// Normalize returns each report's dynamic energy divided by the
// baseline's (Fig. 9 normalizes to Hetero PIM).
func Normalize(reports []Report, baseline Report) []float64 {
	out := make([]float64, len(reports))
	for i, r := range reports {
		if baseline.Dynamic > 0 {
			out[i] = r.Dynamic / baseline.Dynamic
		}
	}
	return out
}
