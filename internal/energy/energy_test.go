package energy

import (
	"math"
	"testing"

	"heteropim/internal/core"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

func run(t testing.TB, kind hw.ConfigKind, m nn.ModelName) core.Result {
	t.Helper()
	r, err := core.BuildAndRun(kind, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEnergyPartsSumToTotal(t *testing.T) {
	r := run(t, hw.ConfigHeteroPIM, nn.AlexNetName)
	rep := Evaluate(r)
	p := rep.Parts
	sum := p.CPU + p.GPU + p.ProgPIM + p.FixedPIM + p.Neurocube + p.DRAM + p.Traffic
	if math.Abs(sum-rep.Dynamic) > 1e-9*rep.Dynamic {
		t.Fatalf("parts sum %g != total %g", sum, rep.Dynamic)
	}
	if rep.Dynamic <= 0 || rep.AvgPower <= 0 || rep.EDP <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if math.Abs(rep.EDP-rep.Dynamic*r.StepTime) > 1e-9*rep.EDP {
		t.Fatalf("EDP %g != E*T %g", rep.EDP, rep.Dynamic*r.StepTime)
	}
	if math.Abs(rep.AvgPower-rep.Dynamic/r.StepTime) > 1e-9*rep.AvgPower {
		t.Fatal("AvgPower != E/T")
	}
}

func TestPaperEnergyBands(t *testing.T) {
	// Fig. 9: CPU 3-24x and GPU 1.3-5x above Hetero; Progr PIM highest
	// or near-highest; Fixed between Hetero and GPU.
	for _, m := range nn.CNNModelNames() {
		het := Evaluate(run(t, hw.ConfigHeteroPIM, m)).Dynamic
		cpu := Evaluate(run(t, hw.ConfigCPU, m)).Dynamic
		gpu := Evaluate(run(t, hw.ConfigGPU, m)).Dynamic
		fixed := Evaluate(run(t, hw.ConfigFixedPIM, m)).Dynamic
		prog := Evaluate(run(t, hw.ConfigProgrPIM, m)).Dynamic
		if r := cpu / het; r < 3 || r > 24 {
			t.Errorf("%s: CPU/Hetero energy = %.2f, want 3-24", m, r)
		}
		if r := gpu / het; r < 1.3 || r > 6 {
			t.Errorf("%s: GPU/Hetero energy = %.2f, want ~1.3-5", m, r)
		}
		if fixed <= het {
			t.Errorf("%s: Fixed energy (%.1f) should exceed Hetero (%.1f)", m, fixed, het)
		}
		if prog < cpu*0.8 {
			t.Errorf("%s: Progr PIM energy (%.1f) should be near the top (CPU %.1f)", m, prog, cpu)
		}
	}
}

func TestGPUPowerRatioAtHighFrequency(t *testing.T) {
	// Fig. 17(b): GPU draws 1.5-2.6x more power than Hetero PIM at 4x.
	for _, m := range nn.CNNModelNames() {
		gpu := Evaluate(run(t, hw.ConfigGPU, m))
		het4, err := core.BuildAndRun(hw.ConfigHeteroPIM, m, 4)
		if err != nil {
			t.Fatal(err)
		}
		hetRep := Evaluate(het4)
		if r := gpu.AvgPower / hetRep.AvgPower; r < 1.5 || r > 3.0 {
			t.Errorf("%s: GPU/Hetero power at 4x = %.2f, want ~1.5-2.6", m, r)
		}
	}
}

func TestEDPBestAtHighFrequency(t *testing.T) {
	// Fig. 17(a): the 4x point is the most energy-efficient (allowing a
	// statistical tie within 2%).
	for _, m := range nn.CNNModelNames() {
		edp := map[float64]float64{}
		for _, f := range []float64{1, 2, 4} {
			r, err := core.BuildAndRun(hw.ConfigHeteroPIM, m, f)
			if err != nil {
				t.Fatal(err)
			}
			edp[f] = Evaluate(r).EDP
		}
		if edp[4] > edp[1] {
			t.Errorf("%s: EDP at 4x (%.3g) worse than 1x (%.3g)", m, edp[4], edp[1])
		}
		if edp[4] > edp[2]*1.02 {
			t.Errorf("%s: EDP at 4x (%.3g) worse than 2x (%.3g) beyond tie tolerance", m, edp[4], edp[2])
		}
	}
}

func TestRCAndOPReduceEnergy(t *testing.T) {
	// Fig. 14: the runtime techniques reduce energy.
	g := nn.VGG19()
	base, err := core.RunHeteroVariant(g, false, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := core.RunHeteroVariant(g, true, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	eBase := Evaluate(base).Dynamic
	eFull := Evaluate(full).Dynamic
	if eFull >= eBase {
		t.Fatalf("RC+OP energy (%.1f) should be below no-RC/no-OP (%.1f)", eFull, eBase)
	}
}

func TestPIMTrafficCheaperThanHostTraffic(t *testing.T) {
	// The core energy asymmetry: the same result with its bytes moved
	// host-side must cost more.
	r := run(t, hw.ConfigHeteroPIM, nn.AlexNetName)
	base := Evaluate(r).Dynamic
	swapped := r
	swapped.Usage.HostBytes, swapped.Usage.PIMBytes = r.Usage.PIMBytes+r.Usage.HostBytes, 0
	if Evaluate(swapped).Dynamic <= base {
		t.Fatal("moving PIM bytes to the host path must increase energy")
	}
}

func TestNeurocubeEnergyAccounted(t *testing.T) {
	g := nn.AlexNet()
	nc := core.RunNeurocubeDefault(g)
	rep := Evaluate(nc)
	if rep.Parts.Neurocube <= 0 {
		t.Fatal("Neurocube part missing from its own energy report")
	}
}

func TestNormalize(t *testing.T) {
	reps := []Report{{Dynamic: 10}, {Dynamic: 20}}
	out := Normalize(reps, Report{Dynamic: 10})
	if out[0] != 1 || out[1] != 2 {
		t.Fatalf("normalize = %v", out)
	}
	out = Normalize(reps, Report{})
	if out[0] != 0 || out[1] != 0 {
		t.Fatal("zero baseline must yield zeros, not Inf")
	}
}

func TestZeroStepTimeSafe(t *testing.T) {
	rep := Evaluate(core.Result{Config: hw.PaperConfig(hw.ConfigCPU)})
	if math.IsNaN(rep.AvgPower) || math.IsInf(rep.AvgPower, 0) {
		t.Fatal("zero step time must not produce NaN/Inf power")
	}
}
