package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"heteropim"
)

// The built-in load generator: N concurrent clients hammer a running
// daemon with a mixed-model cell set over real HTTP, and the outcome
// (throughput, latency percentiles, dedup ratio, byte-identity against
// direct Run output) joins the bench trajectory as BENCH_serve.json.

// LoadCell is one (config, model) target of the generator.
type LoadCell struct {
	Config string `json:"config"`
	Model  string `json:"model"`
}

// DefaultLoadCells is the selfcheck's 8-cell mix: four models on the
// hetero platform, the same four on the GPU baseline.
func DefaultLoadCells() []LoadCell {
	models := []string{"VGG-19", "AlexNet", "DCGAN", "ResNet-50"}
	cells := make([]LoadCell, 0, 2*len(models))
	for _, cfg := range []string{"hetero", "gpu"} {
		for _, m := range models {
			cells = append(cells, LoadCell{Config: cfg, Model: m})
		}
	}
	return cells
}

// LoadReport is the BENCH_serve.json shape.
type LoadReport struct {
	Clients       int        `json:"clients"`
	Cells         []LoadCell `json:"cells"`
	Requests      int64      `json:"requests"`
	Errors        int64      `json:"errors"`
	LiveRuns      int64      `json:"live_runs"`
	DedupHits     int64      `json:"dedup_hits"`
	DedupRatio    float64    `json:"dedup_ratio"`
	ByteIdentical bool       `json:"byte_identical"`
	WallSeconds   float64    `json:"wall_seconds"`
	ThroughputRPS float64    `json:"throughput_rps"`
	LatencyP50Ms  float64    `json:"latency_p50_ms"`
	LatencyP99Ms  float64    `json:"latency_p99_ms"`
	DrainClean    bool       `json:"drain_clean"`
}

// percentile reads the p-th percentile (0..1) from sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// LoadGen runs `clients` concurrent clients against the daemon at
// baseURL, client i targeting cells[i%len(cells)]: POST the job, then
// long-poll its result and compare the bytes against the expected
// direct-Run encoding. The server's Stats() fills the dedup figures.
func LoadGen(baseURL string, clients int, cells []LoadCell, s *Server) (LoadReport, error) {
	rep := LoadReport{Clients: clients, Cells: cells}

	// Expected canonical bytes per cell, from direct public-API runs.
	expected := make([][]byte, len(cells))
	for i, c := range cells {
		cfg, err := heteropim.ParseConfig(c.Config)
		if err != nil {
			return rep, err
		}
		model, err := heteropim.ParseModel(c.Model)
		if err != nil {
			return rep, err
		}
		r, err := heteropim.Run(cfg, model)
		if err != nil {
			return rep, err
		}
		expected[i] = EncodeResult(r)
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	latencies := make([]float64, clients)
	identical := make([]bool, clients)
	var errs int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cell := cells[i%len(cells)]
			start := time.Now()
			got, err := SubmitAndFetch(client, baseURL, cell)
			latencies[i] = time.Since(start).Seconds()
			if err != nil {
				mu.Lock()
				errs++
				fmt.Fprintf(os.Stderr, "loadgen client %d (%s/%s): %v\n", i, cell.Config, cell.Model, err)
				mu.Unlock()
				return
			}
			identical[i] = bytes.Equal(got, expected[i%len(cells)])
		}(i)
	}
	wg.Wait()
	rep.WallSeconds = time.Since(t0).Seconds()

	rep.Errors = errs
	rep.ByteIdentical = true
	for i := range identical {
		if !identical[i] {
			rep.ByteIdentical = false
		}
	}
	sort.Float64s(latencies)
	rep.LatencyP50Ms = percentile(latencies, 0.50) * 1e3
	rep.LatencyP99Ms = percentile(latencies, 0.99) * 1e3
	if rep.WallSeconds > 0 {
		rep.ThroughputRPS = float64(clients) / rep.WallSeconds
	}

	st := s.Stats()
	rep.Requests = st.Requests
	rep.DedupHits = st.DedupHits
	rep.LiveRuns = st.JobsRun
	if st.JobsRun > 0 {
		rep.DedupRatio = float64(st.Requests) / float64(st.JobsRun)
	}
	return rep, nil
}

// SubmitAndFetch POSTs one job and long-polls its result bytes — one
// whole client interaction. The selfcheck load generator and the
// cluster check's wave runner share it, so a routed request exercises
// exactly the client path a direct one does.
func SubmitAndFetch(client *http.Client, baseURL string, cell LoadCell) ([]byte, error) {
	body, _ := json.Marshal(JobRequest{Config: cell.Config, Model: cell.Model})
	var id string
	// A 429 is the admission controller doing its job; honor the
	// Retry-After budget a few times before giving up.
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 50 {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("POST /v1/jobs: %s: %s", resp.Status, data)
		}
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, err
		}
		id = st.ID
		break
	}
	resp, err := client.Get(baseURL + "/v1/jobs/" + id + "/result?wait=90s")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET result: %s: %s", resp.Status, data)
	}
	return data, nil
}

// WriteJSON writes the report as indented JSON plus newline.
func (r LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
