package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"heteropim"
	"heteropim/internal/scenario"
)

// The built-in load generator: a scenario document describes the cell
// mix and the arrival process (closed-loop N clients, or open-loop
// Poisson/diurnal/burst offsets), the shared scenario.Drive driver
// fires the requests over real HTTP, and the outcome (throughput,
// latency percentiles, dedup ratio, byte-identity against direct Run
// output) joins the bench trajectory as BENCH_serve.json.

// LoadCell is one (config, model) target of the generator.
type LoadCell struct {
	Config string `json:"config"`
	Model  string `json:"model"`
}

// defaultSelfcheckScenario is the embedded scenario behind the
// selfcheck's default 8-cell mix: four models on the hetero platform,
// the same four on the GPU baseline. `pimserve -selfcheck -scenario
// file.json` swaps in any other document with the same machinery.
const defaultSelfcheckScenario = `{
  "scenario": 1,
  "name": "selfcheck-default",
  "cells": [
    {"models": ["VGG-19", "AlexNet", "DCGAN", "ResNet-50"], "configs": ["hetero"]},
    {"models": ["VGG-19", "AlexNet", "DCGAN", "ResNet-50"], "configs": ["gpu"]}
  ]
}`

// DefaultSelfcheckPlan compiles the embedded selfcheck scenario.
func DefaultSelfcheckPlan() (*heteropim.ScenarioPlan, error) {
	return heteropim.CompileScenario([]byte(defaultSelfcheckScenario))
}

// DefaultLoadCells is the selfcheck's 8-cell mix, derived from the
// embedded scenario so the document stays the single source of truth
// for both the selfcheck and the cluster check.
func DefaultLoadCells() []LoadCell {
	plan, err := DefaultSelfcheckPlan()
	if err != nil {
		// The scenario is an embedded constant; failing to compile it is
		// a build defect, not a runtime condition.
		panic(err)
	}
	cells := make([]LoadCell, len(plan.Cells))
	for i, bc := range plan.Cells {
		cells[i] = LoadCell{Config: heteropim.ConfigName(bc.Config), Model: string(bc.Model)}
	}
	return cells
}

// LoadReport is the BENCH_serve.json shape.
type LoadReport struct {
	Scenario      string     `json:"scenario,omitempty"`
	Arrival       string     `json:"arrival,omitempty"`
	Clients       int        `json:"clients"`
	Cells         []LoadCell `json:"cells"`
	Requests      int64      `json:"requests"`
	Errors        int64      `json:"errors"`
	LiveRuns      int64      `json:"live_runs"`
	DedupHits     int64      `json:"dedup_hits"`
	DedupRatio    float64    `json:"dedup_ratio"`
	ByteIdentical bool       `json:"byte_identical"`
	WallSeconds   float64    `json:"wall_seconds"`
	ThroughputRPS float64    `json:"throughput_rps"`
	LatencyP50Ms  float64    `json:"latency_p50_ms"`
	LatencyP99Ms  float64    `json:"latency_p99_ms"`
	DrainClean    bool       `json:"drain_clean"`
}

// percentile reads the p-th percentile (0..1) from sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// driveLoad fires len(offsets) requests at baseURL through the shared
// scenario driver — request i departs at offsets[i] seconds and
// targets reqs[i%len(reqs)] — and verifies each body against expected.
func driveLoad(baseURL string, offsets []float64, reqs []JobRequest, expected [][]byte) (errs int64, identical bool, lats []float64, wall float64) {
	client := &http.Client{Timeout: 2 * time.Minute}
	identical = true
	var mu sync.Mutex
	res := scenario.Drive(offsets, func(i int) error {
		k := i % len(reqs)
		got, err := SubmitAndFetchRequest(client, baseURL, reqs[k])
		if err != nil {
			mu.Lock()
			fmt.Fprintf(os.Stderr, "loadgen request %d (%s/%s): %v\n", i, reqs[k].Config, reqs[k].Model, err)
			mu.Unlock()
			return err
		}
		if !bytes.Equal(got, expected[k]) {
			mu.Lock()
			identical = false
			mu.Unlock()
		}
		return nil
	})
	lats = make([]float64, len(res.Latencies))
	for i, d := range res.Latencies {
		lats[i] = d.Seconds()
	}
	return int64(res.Errors), identical, lats, res.Wall.Seconds()
}

// finishReport folds the drive outcome and the server's counters into
// the report (latencies must be sorted; scenario.Drive sorts them).
func (r *LoadReport) finish(errs int64, identical bool, lats []float64, wall float64, s *Server) {
	r.Errors = errs
	r.ByteIdentical = identical
	r.WallSeconds = wall
	r.LatencyP50Ms = percentile(lats, 0.50) * 1e3
	r.LatencyP99Ms = percentile(lats, 0.99) * 1e3
	if wall > 0 {
		r.ThroughputRPS = float64(len(lats)) / wall
	}
	st := s.Stats()
	r.Requests = st.Requests
	r.DedupHits = st.DedupHits
	r.LiveRuns = st.JobsRun
	if st.JobsRun > 0 {
		r.DedupRatio = float64(st.Requests) / float64(st.JobsRun)
	}
}

// LoadGen runs `clients` concurrent closed-loop clients against the
// daemon at baseURL, client i targeting cells[i%len(cells)]: POST the
// job, then long-poll its result and compare the bytes against the
// expected direct-Run encoding. The server's Stats() fills the dedup
// figures.
func LoadGen(baseURL string, clients int, cells []LoadCell, s *Server) (LoadReport, error) {
	rep := LoadReport{Clients: clients, Cells: cells}

	// Expected canonical bytes per cell, from direct public-API runs.
	reqs := make([]JobRequest, len(cells))
	expected := make([][]byte, len(cells))
	for i, c := range cells {
		cfg, err := heteropim.ParseConfig(c.Config)
		if err != nil {
			return rep, err
		}
		model, err := heteropim.ParseModel(c.Model)
		if err != nil {
			return rep, err
		}
		r, err := heteropim.Run(cfg, model)
		if err != nil {
			return rep, err
		}
		reqs[i] = JobRequest{Config: c.Config, Model: c.Model}
		expected[i] = EncodeResult(r)
	}

	errs, identical, lats, wall := driveLoad(baseURL, make([]float64, clients), reqs, expected)
	rep.finish(errs, identical, lats, wall, s)
	return rep, nil
}

// ScenarioLoadGen drives a compiled scenario plan against the daemon
// at baseURL. A closed-loop plan (no arrival, or process "closed")
// fires `clients` concurrent requests at once, exactly like LoadGen; an
// open-loop plan derives its departure offsets from the arrival
// process under the scenario's seed, so the request count and timing
// come from the document, not the flag. Request i targets plan cell
// i%len(cells); every body is verified against the BatchRun encoding
// of its cell.
func ScenarioLoadGen(baseURL string, plan *heteropim.ScenarioPlan, clients int, s *Server) (LoadReport, error) {
	arr := heteropim.Arrival{}
	if plan.Arrival != nil {
		arr = *plan.Arrival
	}
	rep := LoadReport{Scenario: plan.Name, Arrival: arr.Normalized()}
	if len(plan.Cells) == 0 {
		return rep, fmt.Errorf("serve: scenario %q compiled to no cells", plan.Name)
	}

	reqs := make([]JobRequest, len(plan.Cells))
	for i, bc := range plan.Cells {
		reqs[i] = RequestFromBatch(bc)
		c, err := normalize(reqs[i])
		if err != nil {
			return rep, fmt.Errorf("serve: scenario cell %d: %w", i, err)
		}
		rep.Cells = append(rep.Cells, LoadCell{Config: c.configName, Model: string(c.model)})
	}
	// Ground truth straight from the public batch API — documented (and
	// tested) to be bit-identical to the per-cell Run* entry points.
	results, err := heteropim.BatchRun(plan.Cells)
	if err != nil {
		return rep, err
	}
	expected := make([][]byte, len(results))
	for i, r := range results {
		expected[i] = EncodeResult(r)
	}

	var offsets []float64
	if arr.Open() {
		if offsets, err = arr.Schedule(plan.Seed); err != nil {
			return rep, err
		}
	} else {
		n := clients
		if arr.Clients > 0 {
			n = arr.Clients
		}
		offsets = make([]float64, n)
	}
	rep.Clients = len(offsets)

	errs, identical, lats, wall := driveLoad(baseURL, offsets, reqs, expected)
	rep.finish(errs, identical, lats, wall, s)
	return rep, nil
}

// SubmitAndFetch POSTs one job and long-polls its result bytes — one
// whole client interaction. The selfcheck load generator and the
// cluster check's wave runner share it, so a routed request exercises
// exactly the client path a direct one does.
func SubmitAndFetch(client *http.Client, baseURL string, cell LoadCell) ([]byte, error) {
	return SubmitAndFetchRequest(client, baseURL, JobRequest{Config: cell.Config, Model: cell.Model})
}

// SubmitAndFetchRequest is SubmitAndFetch over a full wire request, so
// scenario cells with extended axes (batch, stacks, variant,
// processors) ride the same submit-poll path.
func SubmitAndFetchRequest(client *http.Client, baseURL string, req JobRequest) ([]byte, error) {
	body, _ := json.Marshal(req)
	var id string
	// A 429 is the admission controller doing its job; honor the
	// Retry-After budget a few times before giving up.
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(baseURL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 50 {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("POST /v1/jobs: %s: %s", resp.Status, data)
		}
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			return nil, err
		}
		id = st.ID
		break
	}
	resp, err := client.Get(baseURL + "/v1/jobs/" + id + "/result?wait=90s")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET result: %s: %s", resp.Status, data)
	}
	return data, nil
}

// WriteJSON writes the report as indented JSON plus newline.
func (r LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
