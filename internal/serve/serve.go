// Package serve is the simulation-as-a-service layer: an HTTP JSON
// daemon that accepts simulation cells as jobs, runs them on a bounded
// worker pool (internal/runner.Pool) behind a fixed-capacity admission
// queue, deduplicates identical requests onto one job (which itself
// rides the content-addressed result cache), and exposes polling, SSE
// progress streaming, Prometheus metrics and health endpoints.
//
// Admission control: a full queue sheds load with 429 + Retry-After
// instead of queueing unboundedly — the client, not the server, owns
// the retry budget. Dedup: a job's ID is the content address of its
// cell, so a thundering herd of identical requests collapses onto one
// record and at most one live simulation. Drain: Drain stops admission
// (readyz flips to 503), finishes every accepted job, and leaves every
// result readable until shutdown.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"heteropim"
	"heteropim/internal/metrics"
	"heteropim/internal/report"
	"heteropim/internal/runner"
)

// Options configures a Server.
type Options struct {
	// Workers is the simulation pool width (<= 0: runner.Workers()).
	Workers int
	// QueueCapacity bounds the admission queue (<= 0: 64).
	QueueCapacity int
	// JobTimeout bounds a job's queue wait: jobs still queued when it
	// expires fail instead of running (a discrete-event simulation is
	// not preemptible once started). <= 0: 2 minutes.
	JobTimeout time.Duration
	// CoalesceWindow batches near-simultaneous admissions: jobs
	// accepted within one window of each other are evaluated as a
	// single heteropim.BatchRun, so distinct cells sharing a task-graph
	// template split one template/profile warm-up instead of racing the
	// build locks. 0 disables coalescing (every job goes straight to
	// the pool, exactly the pre-cluster behavior).
	CoalesceWindow time.Duration
	// PeerAsk, when set, is consulted before simulating a locally-new
	// job: given the job id it may return the canonical result bytes
	// another replica already computed (cross-replica dedup). The
	// cluster layer wires this to HTTP asks against the fleet.
	PeerAsk func(ctx context.Context, jobID string) ([]byte, bool)
}

// Server is one simulation-serving daemon instance.
type Server struct {
	pool       *runner.Pool
	reg        *metrics.Registry
	mux        *http.ServeMux
	jobTimeout time.Duration
	start      time.Time
	co         *coalescer // nil when CoalesceWindow == 0
	peerAsk    func(ctx context.Context, jobID string) ([]byte, bool)

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order for the status page
	draining bool
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	if opts.QueueCapacity <= 0 {
		opts.QueueCapacity = 64
	}
	if opts.JobTimeout <= 0 {
		opts.JobTimeout = 2 * time.Minute
	}
	s := &Server{
		pool:       runner.NewPool(opts.Workers, opts.QueueCapacity),
		reg:        metrics.NewRegistry(),
		mux:        http.NewServeMux(),
		jobTimeout: opts.JobTimeout,
		start:      time.Now(),
		peerAsk:    opts.PeerAsk,
		jobs:       map[string]*Job{},
	}
	if opts.CoalesceWindow > 0 {
		s.co = newCoalescer(s, opts.CoalesceWindow)
	}
	// Expose the runner's process-wide pool gauges (workers busy, queue
	// depth) through this server's /metrics. The gauges are global to
	// the process, so with several in-process replicas (the cluster
	// harness) the most recent server's registry receives them — each
	// replica still reports the same process-wide truth.
	runner.SetMetricsRegistry(s.reg)
	s.mux.HandleFunc("POST /v1/jobs", s.route("post_jobs", s.handleSubmit))
	s.mux.HandleFunc("POST /v1/scenarios", s.route("post_scenarios", s.handleScenarios))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.route("get_job", s.handleJob))
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.route("get_result", s.handleResult))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents) // streams; no latency histogram
	s.mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.route("readyz", s.handleReadyz))
	s.mux.HandleFunc("GET /{$}", s.route("status_page", s.handleStatusPage))
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// route wraps a handler with the per-endpoint latency histogram and
// request counter.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		s.reg.Add("http.requests."+name, 1)
		s.reg.Observe("http.seconds."+name, time.Since(t0).Seconds())
	}
}

// writeJSON writes v as a JSON response with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errorBody is the JSON error shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// handleSubmit admits one simulation cell: validate, dedup onto an
// existing job, or enqueue a new one. A full queue is 429 +
// Retry-After; a draining server is 503.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.reg.Add("serve.requests", 1)
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.reg.Add("serve.bad_requests", 1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad job body: %w", err))
		return
	}
	c, err := normalize(req)
	if err != nil {
		s.reg.Add("serve.bad_requests", 1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, code, err := s.admit(c)
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, code, st)
}

// admit dedups or enqueues one validated cell — the shared admission
// path of the single-job and scenario endpoints. On success the
// returned code is 200 (deduplicated onto an existing job) or 202
// (newly enqueued); on failure it is the HTTP status to write.
func (s *Server) admit(c cell) (JobStatus, int, error) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.reg.Add("serve.rejected_draining", 1)
		return JobStatus{}, http.StatusServiceUnavailable, errors.New("serve: draining, not admitting jobs")
	}
	if j, ok := s.jobs[c.id()]; ok {
		s.mu.Unlock()
		j.addRequest()
		s.reg.Add("serve.dedup_hits", 1)
		return j.Status(), http.StatusOK, nil
	}
	j := newJob(c)
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()

	deadline := time.Now().Add(s.jobTimeout)
	submit := func() error {
		// Instrumented jobs always run solo (they carry a live metrics
		// collector the batch path cannot attach); everything else joins
		// the admission-coalescing window when one is configured.
		if s.co != nil && !c.instrument {
			return s.co.add(j, deadline)
		}
		return s.pool.Submit(func(context.Context) { s.execute(j, deadline) })
	}
	if err := submit(); err != nil {
		// A transient admission failure must not poison the cell: drop
		// the record (a resubmit gets a fresh job) and unblock any
		// dedup waiter that raced onto it.
		s.remove(j.ID)
		j.fail(fmt.Errorf("serve: not admitted: %w", err))
		if errors.Is(err, runner.ErrQueueFull) {
			s.reg.Add("serve.rejected_full", 1)
			return JobStatus{}, http.StatusTooManyRequests, errors.New("serve: admission queue full, retry later")
		}
		s.reg.Add("serve.rejected_draining", 1)
		return JobStatus{}, http.StatusServiceUnavailable, err
	}
	s.reg.Set("serve.queue_depth", 0, float64(s.pool.QueueDepth()))
	return j.Status(), http.StatusAccepted, nil
}

// ScenarioResponse is the POST /v1/scenarios body: the compiled plan's
// accounting plus one job status per unique cell, in plan order.
type ScenarioResponse struct {
	Scenario   string      `json:"scenario"`
	Requested  int         `json:"requested"`
	Duplicates int         `json:"duplicates"`
	Jobs       []JobStatus `json:"jobs"`
}

// handleScenarios accepts a scenario document as the POST body,
// compiles it with the same strict compiler the CLIs use, and fans the
// plan out to content-addressed jobs through the shared admission path
// (dedup, coalescing, queue limits all apply per cell). The plan's
// cells must fit the admission queue; split larger scenarios.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	s.reg.Add("serve.scenario_requests", 1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.reg.Add("serve.bad_requests", 1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad scenario body: %w", err))
		return
	}
	plan, err := heteropim.CompileScenario(body)
	if err != nil {
		s.reg.Add("serve.bad_requests", 1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := ScenarioResponse{
		Scenario:   plan.Name,
		Requested:  plan.Requested,
		Duplicates: plan.Duplicates,
	}
	for _, bc := range plan.Cells {
		// Each fanned-out cell counts as one logical submission, so
		// dedup ratios read the same whichever endpoint carried it.
		s.reg.Add("serve.requests", 1)
		st, code, err := s.admit(cellFromBatch(bc))
		if err != nil {
			if code == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			writeError(w, code, fmt.Errorf("serve: scenario cell %d of %d: %w",
				len(resp.Jobs)+1, len(plan.Cells), err))
			return
		}
		resp.Jobs = append(resp.Jobs, st)
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// remove drops a job record (transient failures only: completed and
// deterministically-failed jobs stay, and keep deduplicating).
func (s *Server) remove(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// execute runs one job on a pool worker.
func (s *Server) execute(j *Job, deadline time.Time) {
	s.reg.Set("serve.queue_depth", 0, float64(s.pool.QueueDepth()))
	if time.Now().After(deadline) {
		// Queue-wait timeouts are transient: drop the record so a
		// resubmission is not deduplicated onto this failure.
		s.reg.Add("serve.jobs_timed_out", 1)
		s.remove(j.ID)
		j.fail(fmt.Errorf("serve: job %s spent over %s in queue", j.ID, s.jobTimeout))
		return
	}
	if s.adoptFromPeer(j) {
		return
	}
	j.setRunning()
	s.reg.Add("serve.jobs_run", 1)
	res, err := j.cell.run(j.metrics)
	if err != nil {
		s.reg.Add("serve.jobs_failed", 1)
		j.fail(err)
		return
	}
	j.complete(EncodeResult(res))
}

// adoptFromPeer resolves a job by cross-replica dedup: ask the fleet
// (via the injected PeerAsk) whether another replica already holds the
// finished job, and adopt its canonical bytes instead of simulating.
// Result bodies are byte-deterministic, so adopted bytes are exactly
// what a local run would have produced. Instrumented jobs never adopt:
// their purpose is the local collector side effects.
func (s *Server) adoptFromPeer(j *Job) bool {
	if s.peerAsk == nil || j.metrics != nil {
		return false
	}
	s.reg.Add("serve.peer_asks", 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	b, ok := s.peerAsk(ctx, j.ID)
	if !ok {
		return false
	}
	s.reg.Add("serve.peer_hits", 1)
	j.setRunning()
	j.complete(b)
	return true
}

// lookup resolves the {id} path value.
func (s *Server) lookup(r *http.Request) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

// handleJob is the polling endpoint: the job's status document,
// including the result once done.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleResult long-polls for the job's canonical result bytes: it
// waits up to ?wait= (default 30s) for completion, then writes exactly
// the bytes EncodeResult produced — byte-identical to a direct Run.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", r.PathValue("id")))
		return
	}
	wait := 30 * time.Second
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad wait duration %q", v))
			return
		}
		wait = d
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-j.Done():
	case <-timer.C:
		writeError(w, http.StatusRequestTimeout, fmt.Errorf("serve: job %s not done after %s", j.ID, wait))
		return
	case <-r.Context().Done():
		return
	}
	result, errText, done := j.Result()
	if !done {
		writeError(w, http.StatusInternalServerError, errors.New(errText))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(result)
}

// handleEvents streams the job's lifecycle as server-sent events: an
// initial status snapshot, every transition, and — for instrumented
// jobs — periodic progress samples from the attached collector
// ("sim.events" processed so far). The stream ends after the terminal
// event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("serve: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	events, cancel := j.subscribe()
	defer cancel()

	writeEvent := func(ev Event) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data)
		flusher.Flush()
	}
	writeEvent(j.statusEvent())

	var ticker *time.Ticker
	var tick <-chan time.Time
	if j.metrics != nil {
		ticker = time.NewTicker(100 * time.Millisecond)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case ev := <-events:
			writeEvent(ev)
		case <-tick:
			writeEvent(Event{Type: "progress", Data: []byte(fmt.Sprintf(
				`{"sim_events":%g}`, j.metrics.CounterValue("sim.events")))})
		case <-j.Done():
			// Drain any queued transition, then emit the terminal state.
			for {
				select {
				case ev := <-events:
					writeEvent(ev)
					continue
				default:
				}
				break
			}
			writeEvent(Event{Type: "end", Data: j.statusEvent().Data})
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleMetrics serves the registry in Prometheus text format, folding
// in point-in-time gauges (queue depth, job states, uptime) and the
// process-wide simulation-cache counters so the cache hit ratio is
// scrapeable.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	var queued, running, done, failed int
	for _, j := range s.jobs {
		switch j.Status().Status {
		case StatusQueued:
			queued++
		case StatusRunning:
			running++
		case StatusDone:
			done++
		case StatusFailed:
			failed++
		}
	}
	s.mu.Unlock()
	s.reg.Set("serve.queue_depth", 0, float64(s.pool.QueueDepth()))
	s.reg.Set("serve.queue_capacity", 0, float64(s.pool.Capacity()))
	s.reg.Set("serve.workers", 0, float64(s.pool.NumWorkers()))
	s.reg.Set("serve.jobs_queued", 0, float64(queued))
	s.reg.Set("serve.jobs_running", 0, float64(running))
	s.reg.Set("serve.jobs_done", 0, float64(done))
	s.reg.Set("serve.jobs_failed_state", 0, float64(failed))
	s.reg.Set("serve.uptime_seconds", 0, time.Since(s.start).Seconds())
	// Runner-level pool utilization (process-wide): refreshed at scrape
	// time on top of the transition-driven updates, so a scrape always
	// sees the current occupancy.
	s.reg.Set(runner.MetricWorkersBusy, 0, float64(runner.BusyWorkers()))
	s.reg.Set(runner.MetricQueueDepth, 0, float64(runner.QueuedJobs()))
	st := heteropim.SimulationCacheStats()
	s.reg.Set("simcache.hits", 0, float64(st.Hits))
	s.reg.Set("simcache.misses", 0, float64(st.Misses))
	s.reg.Set("simcache.disk_hits", 0, float64(st.DiskHits))
	s.reg.Set("simcache.bytes", 0, float64(st.Bytes))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.Snapshot().WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports readiness: 503 once draining so load balancers
// stop routing new work here while in-flight jobs finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleStatusPage renders the human text status page (report.Table).
func (s *Server) handleStatusPage(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		statuses = append(statuses, s.jobs[id].Status())
	}
	draining := s.draining
	s.mu.Unlock()

	t := &report.Table{
		Title:   "pimserve jobs",
		Columns: []string{"Job", "Cell", "Status", "Requests", "Queue", "Run"},
	}
	for _, st := range statuses {
		t.AddRow(st.ID,
			fmt.Sprintf("%s/%s@%gx", st.Config, st.Model, st.FreqScale),
			st.Status,
			fmt.Sprintf("%d", st.Requests),
			report.Seconds(st.QueueMs/1e3),
			report.Seconds(st.RunMs/1e3))
	}
	state := "serving"
	if draining {
		state = "draining"
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%s; workers=%d queue=%d/%d; up %s",
		state, s.pool.NumWorkers(), s.pool.QueueDepth(), s.pool.Capacity(),
		time.Since(s.start).Round(time.Second)))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, t.String())
}

// Stats summarizes serving-layer traffic (the selfcheck and the
// clustercheck gate on it). JobsRun counts only jobs that executed a
// simulation locally; peer-adopted and deduplicated jobs do not.
type Stats struct {
	Requests        int64 `json:"requests"`
	DedupHits       int64 `json:"dedup_hits"`
	JobsRun         int64 `json:"jobs_run"`
	Rejected        int64 `json:"rejected"`
	PeerHits        int64 `json:"peer_hits"`
	CoalesceBatches int64 `json:"coalesce_batches"`
}

// Stats reads the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:  int64(s.reg.CounterValue("serve.requests")),
		DedupHits: int64(s.reg.CounterValue("serve.dedup_hits")),
		JobsRun:   int64(s.reg.CounterValue("serve.jobs_run")),
		Rejected: int64(s.reg.CounterValue("serve.rejected_full") +
			s.reg.CounterValue("serve.rejected_draining")),
		PeerHits:        int64(s.reg.CounterValue("serve.peer_hits")),
		CoalesceBatches: int64(s.reg.CounterValue("serve.coalesce_batches")),
	}
}

// Drain gracefully quiesces the server: stop admitting (readyz flips
// to 503, POST returns 503), finish every accepted job, keep results
// readable. It returns ctx.Err() if the pool cannot finish in time.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	// An armed coalescing window may still hold accepted jobs; flush it
	// now (instead of waiting out the timer) and wait for any batch that
	// had to run inline because the pool was already closing.
	if s.co != nil {
		s.co.flush()
		defer s.co.wait()
	}
	return s.pool.Drain(ctx)
}

// Jobs snapshots every job's status in admission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].Status())
	}
	return out
}
