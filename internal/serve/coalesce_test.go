package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"heteropim"
)

// waitDone polls a job until it leaves the queued/running states.
func waitDone(t *testing.T, baseURL, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, data := get(t, baseURL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job = %s: %s", resp.Status, data)
		}
		var st JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == StatusDone || st.Status == StatusFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCoalesceZeroWindowIsDirectPath checks the window is genuinely
// opt-in: with CoalesceWindow zero the server must behave exactly like
// the pre-coalescing daemon — jobs run through the per-job path and no
// batch is ever formed.
func TestCoalesceZeroWindowIsDirectPath(t *testing.T) {
	s, ts := start(t, Options{Workers: 2})
	resp, data := post(t, ts.URL, `{"config":"hetero","model":"AlexNet"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %s: %s", resp.Status, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, ts.URL, st.ID); got.Status != StatusDone {
		t.Fatalf("job failed: %+v", got)
	}
	stats := s.Stats()
	if stats.CoalesceBatches != 0 {
		t.Fatalf("zero-width window still formed %d batches", stats.CoalesceBatches)
	}
	if stats.JobsRun != 1 {
		t.Fatalf("jobs_run = %d, want 1", stats.JobsRun)
	}
}

// TestCoalesceDuplicateIDsCollapse fires a herd of identical posts
// inside one window and checks the jobs-map dedup still runs before
// admission: one job, one live run, one batch.
func TestCoalesceDuplicateIDsCollapse(t *testing.T) {
	s, ts := start(t, Options{Workers: 2, CoalesceWindow: 40 * time.Millisecond})
	const herd = 12
	ids := make([]string, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, data := post(t, ts.URL, `{"config":"hetero","model":"AlexNet"}`)
			var st JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("duplicate posts produced distinct jobs: %s vs %s", id, ids[0])
		}
	}
	if got := waitDone(t, ts.URL, ids[0]); got.Status != StatusDone {
		t.Fatalf("job failed: %+v", got)
	}
	stats := s.Stats()
	if stats.JobsRun != 1 {
		t.Fatalf("jobs_run = %d, want 1 (duplicates must collapse before the window)", stats.JobsRun)
	}
	if stats.CoalesceBatches != 1 {
		t.Fatalf("coalesce_batches = %d, want 1", stats.CoalesceBatches)
	}
	if stats.DedupHits != herd-1 {
		t.Fatalf("dedup_hits = %d, want %d", stats.DedupHits, herd-1)
	}
}

// TestCoalesceDistinctCellsOneBatch submits distinct cells inside one
// window and checks they ride a single BatchRun whose results are
// byte-identical to direct runs.
func TestCoalesceDistinctCellsOneBatch(t *testing.T) {
	s, ts := start(t, Options{Workers: 2, CoalesceWindow: 40 * time.Millisecond})
	cells := []struct {
		body   string
		config heteropim.Config
		model  heteropim.Model
	}{
		{`{"config":"hetero","model":"AlexNet"}`, heteropim.ConfigHeteroPIM, heteropim.AlexNet},
		{`{"config":"gpu","model":"AlexNet"}`, heteropim.ConfigGPU, heteropim.AlexNet},
		{`{"config":"hetero","model":"DCGAN"}`, heteropim.ConfigHeteroPIM, heteropim.DCGAN},
	}
	ids := make([]string, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			_, data := post(t, ts.URL, body)
			var st JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i, c.body)
	}
	wg.Wait()
	for i, c := range cells {
		if waitDone(t, ts.URL, ids[i]).Status != StatusDone {
			t.Fatalf("cell %d failed", i)
		}
		_, got := get(t, ts.URL+"/v1/jobs/"+ids[i]+"/result")
		direct, err := heteropim.Run(c.config, c.model)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, EncodeResult(direct)) {
			t.Fatalf("coalesced result %d differs from direct run", i)
		}
	}
	stats := s.Stats()
	if stats.JobsRun != int64(len(cells)) {
		t.Fatalf("jobs_run = %d, want %d", stats.JobsRun, len(cells))
	}
	if stats.CoalesceBatches != 1 {
		t.Fatalf("coalesce_batches = %d, want 1 (distinct cells should share the window)", stats.CoalesceBatches)
	}
}

// TestCoalesceClientCancelDoesNotPoisonBatch cancels one client's
// context while its window is still open and checks the batch is
// unharmed: the canceled client's job still completes server-side and
// its batchmate's result is correct. The invariant under test is that
// a batch depends only on the server's lifecycle, never on any
// client's.
func TestCoalesceClientCancelDoesNotPoisonBatch(t *testing.T) {
	s, ts := start(t, Options{Workers: 2, CoalesceWindow: 60 * time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"config":"hetero","model":"AlexNet"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var doomed JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&doomed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The window is still open: the job is pending in the coalescer.
	// Kill the client's context now.
	cancel()

	// A second client joins the same window with a different cell.
	_, data := post(t, ts.URL, `{"config":"gpu","model":"AlexNet"}`)
	var mate JobStatus
	if err := json.Unmarshal(data, &mate); err != nil {
		t.Fatal(err)
	}

	if waitDone(t, ts.URL, mate.ID).Status != StatusDone {
		t.Fatal("batchmate failed after a sibling client canceled")
	}
	if waitDone(t, ts.URL, doomed.ID).Status != StatusDone {
		t.Fatal("canceled client's job did not complete server-side")
	}
	_, got := get(t, ts.URL+"/v1/jobs/"+mate.ID+"/result")
	direct, err := heteropim.Run(heteropim.ConfigGPU, heteropim.AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, EncodeResult(direct)) {
		t.Fatal("batchmate's result corrupted by sibling cancellation")
	}
	if s.Stats().JobsRun != 2 {
		t.Fatalf("jobs_run = %d, want 2", s.Stats().JobsRun)
	}
}

// TestCoalescePeerAdoption wires a stub PeerAsk and checks a window
// job whose bytes the "fleet" already has is adopted instead of
// simulated: peer_hits counts it, jobs_run does not.
func TestCoalescePeerAdoption(t *testing.T) {
	direct, err := heteropim.Run(heteropim.ConfigHeteroPIM, heteropim.AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	want := EncodeResult(direct)
	s, ts := start(t, Options{
		Workers:        2,
		CoalesceWindow: 20 * time.Millisecond,
		PeerAsk: func(ctx context.Context, jobID string) ([]byte, bool) {
			return want, true
		},
	})
	_, data := post(t, ts.URL, `{"config":"hetero","model":"AlexNet"}`)
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if waitDone(t, ts.URL, st.ID).Status != StatusDone {
		t.Fatal("adopted job did not complete")
	}
	_, got := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if !bytes.Equal(got, want) {
		t.Fatal("adopted bytes differ from the peer's answer")
	}
	stats := s.Stats()
	if stats.PeerHits != 1 {
		t.Fatalf("peer_hits = %d, want 1", stats.PeerHits)
	}
	if stats.JobsRun != 0 {
		t.Fatalf("jobs_run = %d, want 0 (adoption must replace the local simulation)", stats.JobsRun)
	}
}
