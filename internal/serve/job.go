package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"

	"heteropim"
)

// Job lifecycle states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// VariantSpec mirrors heteropim.Variant on the wire (Section VI-E
// runtime-technique toggles; Hetero PIM only).
type VariantSpec struct {
	RecursiveKernels  bool `json:"recursive_kernels"`
	OperationPipeline bool `json:"operation_pipeline"`
}

// JobRequest is the POST /v1/jobs body: one simulation cell. The
// optional axes mirror heteropim.BatchCell, so any cell a scenario can
// compile is also addressable as a single wire request.
type JobRequest struct {
	// Config is a flag-style platform name (heteropim.ParseConfig).
	Config string `json:"config"`
	// Model is a workload model name (heteropim.ParseModel).
	Model string `json:"model"`
	// FreqScale is the PIM/stack frequency multiplier (0 means 1).
	FreqScale float64 `json:"freq_scale,omitempty"`
	// Variant toggles RC/OP; requires the hetero config.
	Variant *VariantSpec `json:"variant,omitempty"`
	// BatchSize overrides the model's paper batch size when > 0.
	BatchSize int `json:"batch_size,omitempty"`
	// Stacks shards the minibatch across that many stacks when > 1;
	// AllReduce picks the gradient schedule ("ring", "tree", "" = ring).
	Stacks    int    `json:"stacks,omitempty"`
	AllReduce string `json:"allreduce,omitempty"`
	// Processors runs Hetero PIM with that many programmable processors
	// at constant logic-die area when > 0 (requires the hetero config).
	Processors int `json:"processors,omitempty"`
	// Instrument runs the job live with a metrics collector attached
	// (never the result cache) so the SSE stream can carry progress.
	Instrument bool `json:"instrument,omitempty"`
}

// cell is a validated, canonicalized JobRequest — the unit of dedup.
type cell struct {
	config     heteropim.Config
	configName string
	model      heteropim.Model
	freqScale  float64
	variant    *VariantSpec
	batchSize  int
	stacks     int    // always >= 1
	allReduce  string // "" exactly when stacks == 1
	processors int
	instrument bool
}

// normalize validates a request against the public parsers and
// canonicalizes it (case-insensitive names, default frequency,
// collapsed single-stack allreduce), so every spelling of the same
// cell shares one job.
func normalize(req JobRequest) (cell, error) {
	cfg, err := heteropim.ParseConfig(req.Config)
	if err != nil {
		return cell{}, err
	}
	model, err := heteropim.ParseModel(req.Model)
	if err != nil {
		return cell{}, err
	}
	fs := req.FreqScale
	if fs == 0 {
		fs = 1
	}
	if fs < 0 {
		return cell{}, fmt.Errorf("serve: freq_scale must be positive, got %g", fs)
	}
	if req.Variant != nil {
		if !strings.EqualFold(req.Config, "hetero") {
			return cell{}, fmt.Errorf("serve: variant toggles need the hetero config, got %q", req.Config)
		}
		if req.Processors > 0 {
			return cell{}, fmt.Errorf("serve: variant and processors are mutually exclusive")
		}
	}
	if req.Processors < 0 {
		return cell{}, fmt.Errorf("serve: processors must be >= 0, got %d", req.Processors)
	}
	if req.Processors > 0 && !strings.EqualFold(req.Config, "hetero") {
		return cell{}, fmt.Errorf("serve: processors need the hetero config, got %q", req.Config)
	}
	if req.BatchSize < 0 {
		return cell{}, fmt.Errorf("serve: batch_size must be >= 0, got %d", req.BatchSize)
	}
	if req.BatchSize > 0 && (req.Variant != nil || req.Processors > 0) {
		return cell{}, fmt.Errorf("serve: batch_size does not combine with variant/processors")
	}
	stacks := req.Stacks
	if stacks < 0 {
		return cell{}, fmt.Errorf("serve: stacks must be >= 0, got %d", req.Stacks)
	}
	if stacks == 0 {
		stacks = 1
	}
	allReduce := ""
	if stacks > 1 {
		switch req.AllReduce {
		case "":
			allReduce = "ring"
		case "ring", "tree":
			allReduce = req.AllReduce
		default:
			return cell{}, fmt.Errorf("serve: unknown allreduce %q (valid: ring, tree)", req.AllReduce)
		}
	}
	if req.Instrument && (req.BatchSize > 0 || stacks > 1 || req.Processors > 0 || req.Variant != nil) {
		return cell{}, fmt.Errorf("serve: instrument needs a plain config/model/freq_scale cell")
	}
	return cell{
		config:     cfg,
		configName: strings.ToLower(req.Config),
		model:      model,
		freqScale:  fs,
		variant:    req.Variant,
		batchSize:  req.BatchSize,
		stacks:     stacks,
		allReduce:  allReduce,
		processors: req.Processors,
		instrument: req.Instrument,
	}, nil
}

// JobID computes the content-addressed id the server assigns to req's
// cell. Identical cells produce identical ids on every replica, which
// makes the id double as the cluster router's shard key: the ring can
// pick a job's owner from the request body alone.
func JobID(req JobRequest) (string, error) {
	c, err := normalize(req)
	if err != nil {
		return "", err
	}
	return c.id(), nil
}

// id derives the job's content-addressed identifier: identical cells
// map to the same job, which is the request-dedup mechanism. Extended
// axes append only when non-default, so the ids of plain cells are
// byte-stable across releases (a pinned test holds them to that).
func (c cell) id() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%g|", c.configName, c.model, c.freqScale)
	if c.variant != nil {
		fmt.Fprintf(h, "rc=%t,op=%t|", c.variant.RecursiveKernels, c.variant.OperationPipeline)
	}
	fmt.Fprintf(h, "ins=%t", c.instrument)
	if c.batchSize > 0 {
		fmt.Fprintf(h, "|batch=%d", c.batchSize)
	}
	if c.stacks > 1 {
		fmt.Fprintf(h, "|stacks=%d,%s", c.stacks, c.allReduce)
	}
	if c.processors > 0 {
		fmt.Fprintf(h, "|procs=%d", c.processors)
	}
	return fmt.Sprintf("j%016x", h.Sum64())
}

// batchCell renders the cell in heteropim.BatchRun's input shape (both
// `run` and the admission-coalescing window execute through BatchRun,
// whose results are documented — and tested — to be bit-identical to
// the per-cell Run* calls).
func (c cell) batchCell() heteropim.BatchCell {
	bc := heteropim.BatchCell{Config: c.config, Model: c.model, FreqScale: c.freqScale,
		BatchSize: c.batchSize, Processors: c.processors}
	if c.variant != nil {
		bc.Variant = &heteropim.Variant{
			RecursiveKernels:  c.variant.RecursiveKernels,
			OperationPipeline: c.variant.OperationPipeline,
		}
	}
	if c.stacks > 1 {
		bc.Stacks, bc.AllReduce = c.stacks, c.allReduce
	}
	return bc
}

// cellFromBatch builds the serving cell for one compiled scenario cell
// (the POST /v1/scenarios fan-out). Variant and processor cells run on
// the hetero platform by construction, so they canonicalize onto the
// same job a direct hetero-config POST would.
func cellFromBatch(bc heteropim.BatchCell) cell {
	cfg := bc.Config
	name := heteropim.ConfigName(cfg)
	if bc.Variant != nil || bc.Processors > 0 {
		cfg = heteropim.ConfigHeteroPIM
		name = "hetero"
	}
	fs := bc.FreqScale
	if fs == 0 {
		fs = 1
	}
	c := cell{
		config:     cfg,
		configName: name,
		model:      bc.Model,
		freqScale:  fs,
		batchSize:  bc.BatchSize,
		stacks:     1,
		processors: bc.Processors,
	}
	if bc.Variant != nil {
		c.variant = &VariantSpec{
			RecursiveKernels:  bc.Variant.RecursiveKernels,
			OperationPipeline: bc.Variant.OperationPipeline,
		}
	}
	if bc.Stacks > 1 {
		c.stacks, c.allReduce = bc.Stacks, bc.AllReduce
	}
	return c
}

// RequestFromBatch renders one compiled scenario cell as the wire
// request a client would POST for it — the scenario-driven load
// generator submits these, so its traffic exercises exactly the public
// job API (and dedups onto the same content-addressed ids).
func RequestFromBatch(bc heteropim.BatchCell) JobRequest {
	req := JobRequest{Config: heteropim.ConfigName(bc.Config), Model: string(bc.Model),
		BatchSize: bc.BatchSize, Processors: bc.Processors}
	if bc.Variant != nil || bc.Processors > 0 {
		req.Config = "hetero"
	}
	if bc.Variant != nil {
		req.Variant = &VariantSpec{
			RecursiveKernels:  bc.Variant.RecursiveKernels,
			OperationPipeline: bc.Variant.OperationPipeline,
		}
	}
	if bc.FreqScale != 0 && bc.FreqScale != 1 {
		req.FreqScale = bc.FreqScale
	}
	if bc.Stacks > 1 {
		req.Stacks, req.AllReduce = bc.Stacks, bc.AllReduce
	}
	return req
}

// run executes the cell through the public API. Uninstrumented runs go
// through BatchRun — bit-identical to the per-cell Run* entry points,
// and riding the PR-3 result cache (and its singleflight); instrumented
// runs record into m and always execute live.
func (c cell) run(m *heteropim.Metrics) (heteropim.Result, error) {
	if c.instrument {
		return heteropim.RunObserved(c.config, c.model, c.freqScale, m)
	}
	results, err := heteropim.BatchRun([]heteropim.BatchCell{c.batchCell()})
	if err != nil {
		return heteropim.Result{}, err
	}
	return results[0], nil
}

// EncodeResult renders the canonical wire form of one result: compact
// JSON plus a trailing newline. encoding/json emits struct fields in
// declaration order and round-trips float64 exactly, so identical
// results serialize to identical bytes — the CI smoke job diffs these
// against a direct heteropim.Run.
func EncodeResult(r heteropim.Result) []byte {
	b, err := json.Marshal(r)
	if err != nil {
		// Result is a plain value struct; Marshal cannot fail on it.
		panic(err)
	}
	return append(b, '\n')
}

// Event is one server-sent event on a job's stream.
type Event struct {
	Type string
	Data []byte
}

// Job is one admitted simulation cell and its lifecycle.
type Job struct {
	ID string

	mu       sync.Mutex
	cell     cell
	status   string
	err      string
	result   []byte // canonical EncodeResult bytes when done
	requests int64  // submissions collapsed onto this job
	created  time.Time
	started  time.Time
	finished time.Time
	subs     []chan Event
	done     chan struct{}
	metrics  *heteropim.Metrics // instrumented jobs only
}

func newJob(c cell) *Job {
	j := &Job{
		ID:       c.id(),
		cell:     c,
		status:   StatusQueued,
		requests: 1,
		created:  time.Now(),
		done:     make(chan struct{}),
	}
	if c.instrument {
		j.metrics = heteropim.NewMetrics()
	}
	return j
}

// JobStatus is the GET /v1/jobs/{id} body (and the SSE status payload).
type JobStatus struct {
	ID         string          `json:"id"`
	Status     string          `json:"status"`
	Config     string          `json:"config"`
	Model      string          `json:"model"`
	FreqScale  float64         `json:"freq_scale"`
	Variant    *VariantSpec    `json:"variant,omitempty"`
	BatchSize  int             `json:"batch_size,omitempty"`
	Stacks     int             `json:"stacks,omitempty"`
	AllReduce  string          `json:"allreduce,omitempty"`
	Processors int             `json:"processors,omitempty"`
	Instrument bool            `json:"instrument,omitempty"`
	Requests   int64           `json:"requests"`
	QueueMs    float64         `json:"queue_ms"`
	RunMs      float64         `json:"run_ms"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// Status snapshots the job for clients.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobStatus{
		ID:         j.ID,
		Status:     j.status,
		Config:     j.cell.configName,
		Model:      string(j.cell.model),
		AllReduce:  j.cell.allReduce,
		FreqScale:  j.cell.freqScale,
		Variant:    j.cell.variant,
		BatchSize:  j.cell.batchSize,
		Processors: j.cell.processors,
		Instrument: j.cell.instrument,
		Requests:   j.requests,
		Error:      j.err,
	}
	if j.cell.stacks > 1 {
		s.Stacks = j.cell.stacks
	}
	switch j.status {
	case StatusQueued:
		// no timings yet
	case StatusRunning:
		s.QueueMs = j.started.Sub(j.created).Seconds() * 1e3
	default:
		s.QueueMs = j.started.Sub(j.created).Seconds() * 1e3
		s.RunMs = j.finished.Sub(j.started).Seconds() * 1e3
	}
	if j.status == StatusDone {
		// The stored bytes end in '\n'; RawMessage must not, so trim.
		s.Result = json.RawMessage(strings.TrimRight(string(j.result), "\n"))
	}
	return s
}

// Result returns the canonical result bytes once done.
func (j *Job) Result() ([]byte, string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err, j.status == StatusDone
}

// Done exposes the completion channel (closed on done or failed).
func (j *Job) Done() <-chan struct{} { return j.done }

// addRequest counts one deduplicated submission.
func (j *Job) addRequest() {
	j.mu.Lock()
	j.requests++
	j.mu.Unlock()
}

// subscribe registers an SSE listener; the returned cancel function
// unregisters it. Buffered so a slow listener drops events rather than
// stalling the job.
func (j *Job) subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 16)
	j.mu.Lock()
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
		j.mu.Unlock()
	}
	return ch, cancel
}

// broadcast sends an event to every subscriber, dropping to any whose
// buffer is full (progress events are advisory; terminal state is
// always available via Done/Status).
func (j *Job) broadcast(ev Event) {
	j.mu.Lock()
	subs := append([]chan Event(nil), j.subs...)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// statusEvent renders the job's current status as an SSE event.
func (j *Job) statusEvent() Event {
	b, _ := json.Marshal(j.Status())
	return Event{Type: "status", Data: b}
}

// setRunning transitions queued -> running.
func (j *Job) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.broadcast(j.statusEvent())
}

// complete transitions to done with the canonical result bytes.
func (j *Job) complete(result []byte) {
	j.mu.Lock()
	j.status = StatusDone
	j.result = result
	j.finished = time.Now()
	j.mu.Unlock()
	j.broadcast(j.statusEvent())
	close(j.done)
}

// fail transitions to failed.
func (j *Job) fail(err error) {
	j.mu.Lock()
	j.status = StatusFailed
	j.err = err.Error()
	if j.started.IsZero() {
		j.started = j.created
	}
	j.finished = time.Now()
	j.mu.Unlock()
	j.broadcast(j.statusEvent())
	close(j.done)
}
