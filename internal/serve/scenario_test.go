package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"testing"
	"time"

	"heteropim"
)

// TestJobIDsPinned holds the content-addressed ids of pre-scenario
// cells to their historical values: the id doubles as the cluster
// router's shard key and the cross-replica dedup address, so changing
// it for existing cells would orphan every cached result in a rolling
// upgrade. Extended axes may only append to the id when non-default.
func TestJobIDsPinned(t *testing.T) {
	cases := []struct {
		req  JobRequest
		want string
	}{
		{JobRequest{Config: "hetero", Model: "VGG-19"}, "j7935cf3adec7a1fe"},
		{JobRequest{Config: "gpu", Model: "AlexNet", FreqScale: 2}, "j6303732d495b5432"},
		{JobRequest{Config: "hetero", Model: "DCGAN",
			Variant: &VariantSpec{RecursiveKernels: true, OperationPipeline: true}}, "j2bf455a25124bcae"},
		{JobRequest{Config: "cpu", Model: "LSTM"}, "j523680b548e70fa8"},
		{JobRequest{Config: "hetero", Model: "VGG-19", Instrument: true}, "j7a2f6e6503d28993"},
		// Extended cells: not historical, but pinned from here on.
		{JobRequest{Config: "hetero", Model: "VGG-19", BatchSize: 32}, "j38b37da55593d708"},
		{JobRequest{Config: "hetero", Model: "VGG-19", Stacks: 4, AllReduce: "tree"}, "j6b38bc70ecd78852"},
		{JobRequest{Config: "hetero", Model: "VGG-19", Processors: 32}, "jcb126f08b913f0d3"},
	}
	for _, tc := range cases {
		id, err := JobID(tc.req)
		if err != nil {
			t.Fatalf("JobID(%+v): %v", tc.req, err)
		}
		if id != tc.want {
			t.Errorf("JobID(%+v) = %s, want %s", tc.req, id, tc.want)
		}
	}
	// Defaulted extended axes must not perturb the legacy id.
	for _, req := range []JobRequest{
		{Config: "hetero", Model: "VGG-19", Stacks: 1},
		{Config: "hetero", Model: "VGG-19", FreqScale: 1},
	} {
		if id, _ := JobID(req); id != "j7935cf3adec7a1fe" {
			t.Errorf("defaulted request %+v got id %s, want the plain cell's", req, id)
		}
	}
}

// TestRequestFromBatchRoundTrip: rendering a compiled scenario cell to
// the wire and normalizing it back must land on exactly the cell the
// server-side fan-out builds — same dedup id from either path.
func TestRequestFromBatchRoundTrip(t *testing.T) {
	cells := []heteropim.BatchCell{
		{Config: heteropim.ConfigHeteroPIM, Model: "VGG-19", FreqScale: 1},
		{Config: heteropim.ConfigGPU, Model: "AlexNet", FreqScale: 2},
		{Config: heteropim.ConfigHeteroPIM, Model: "DCGAN", BatchSize: 64},
		{Config: heteropim.ConfigHeteroPIM, Model: "ResNet-50", Stacks: 4, AllReduce: heteropim.AllReduceTree},
		{Model: "VGG-19", Variant: &heteropim.Variant{RecursiveKernels: true}},
		{Model: "VGG-19", Processors: 32},
	}
	for _, bc := range cells {
		got, err := normalize(RequestFromBatch(bc))
		if err != nil {
			t.Fatalf("normalize(RequestFromBatch(%+v)): %v", bc, err)
		}
		want := cellFromBatch(bc)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("cell mismatch for %+v:\n wire: %+v\n fanout: %+v", bc, got, want)
		}
		if got.id() != want.id() {
			t.Errorf("id mismatch for %+v: %s vs %s", bc, got.id(), want.id())
		}
	}
}

const testScenario = `{
  "scenario": 1,
  "name": "serve-test",
  "cells": [{"models": ["VGG-19", "AlexNet"], "configs": ["hetero"]}]
}`

// TestScenarioEndpoint covers the fan-out path end to end: one POST
// /v1/scenarios becomes one job per unique cell, each job's result is
// byte-identical to the direct public-API run, and resubmitting the
// scenario dedups onto the existing jobs.
func TestScenarioEndpoint(t *testing.T) {
	s := New(Options{Workers: 2, QueueCapacity: 16, JobTimeout: time.Minute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func() ScenarioResponse {
		resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", bytes.NewReader([]byte(testScenario)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /v1/scenarios: %s", resp.Status)
		}
		var sr ScenarioResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		return sr
	}

	sr := post()
	if sr.Scenario != "serve-test" || sr.Requested != 2 || sr.Duplicates != 0 || len(sr.Jobs) != 2 {
		t.Fatalf("unexpected response: %+v", sr)
	}
	client := &http.Client{Timeout: time.Minute}
	for i, model := range []heteropim.Model{"VGG-19", "AlexNet"} {
		if sr.Jobs[i].Model != string(model) || sr.Jobs[i].Config != "hetero" {
			t.Fatalf("job %d is %s/%s, want hetero/%s", i, sr.Jobs[i].Config, sr.Jobs[i].Model, model)
		}
		resp, err := client.Get(ts.URL + "/v1/jobs/" + sr.Jobs[i].ID + "/result?wait=30s")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 0)
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		got = buf.Bytes()
		r, err := heteropim.Run(heteropim.ConfigHeteroPIM, model)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, EncodeResult(r)) {
			t.Errorf("job %d result differs from the direct run", i)
		}
	}

	again := post()
	for i := range again.Jobs {
		if again.Jobs[i].ID != sr.Jobs[i].ID {
			t.Errorf("resubmit job %d got id %s, want %s", i, again.Jobs[i].ID, sr.Jobs[i].ID)
		}
		if again.Jobs[i].Requests != 2 {
			t.Errorf("resubmit job %d has %d requests, want 2", i, again.Jobs[i].Requests)
		}
	}

	for name, body := range map[string]string{
		"bad version":  `{"scenario": 9, "cells": [{"models": ["VGG-19"]}]}`,
		"empty cells":  `{"scenario": 1, "cells": []}`,
		"unknown name": `{"scenario": 1, "cells": [{"models": ["NoSuchNet"]}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/scenarios", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", name, resp.Status)
		}
	}
}

// TestScenarioLoadGenPoisson drives the committed open-loop selfcheck
// scenario against a live daemon: the Poisson schedule's request count
// comes from the document, every body matches the BatchRun encoding,
// and the 64-requests-over-8-cells mix preserves the dedup floor.
func TestScenarioLoadGenPoisson(t *testing.T) {
	data, err := os.ReadFile("../../testdata/scenarios/selfcheck_poisson.json")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := heteropim.CompileScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Workers: 2, QueueCapacity: 64, JobTimeout: time.Minute})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rep, err := ScenarioLoadGen(ts.URL, plan, 0, s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scenario != "selfcheck-poisson" || rep.Arrival != "poisson" {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Clients != 64 {
		t.Fatalf("open-loop request count %d, want 64 from the document", rep.Clients)
	}
	if rep.Errors != 0 || !rep.ByteIdentical {
		t.Fatalf("errors=%d identical=%t", rep.Errors, rep.ByteIdentical)
	}
	if rep.LiveRuns != 8 {
		t.Fatalf("live_runs=%d, want 8 unique cells", rep.LiveRuns)
	}
	if rep.DedupRatio < 4 {
		t.Fatalf("dedup ratio %.2f below the selfcheck floor of 4", rep.DedupRatio)
	}
}

// TestDefaultSelfcheckPlanMatchesLoadCells keeps the embedded scenario
// and the legacy cell list in lockstep — the scenario document is the
// single source of truth for the selfcheck mix.
func TestDefaultSelfcheckPlanMatchesLoadCells(t *testing.T) {
	plan, err := DefaultSelfcheckPlan()
	if err != nil {
		t.Fatal(err)
	}
	cells := DefaultLoadCells()
	if len(plan.Cells) != 8 || len(cells) != 8 {
		t.Fatalf("plan %d cells, list %d cells, want 8/8", len(plan.Cells), len(cells))
	}
	for i, bc := range plan.Cells {
		if heteropim.ConfigName(bc.Config) != cells[i].Config || string(bc.Model) != cells[i].Model {
			t.Errorf("cell %d: plan %s/%s vs list %s/%s", i,
				heteropim.ConfigName(bc.Config), bc.Model, cells[i].Config, cells[i].Model)
		}
	}
}
