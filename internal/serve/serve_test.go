package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"heteropim"
)

// start spins up a test server; the cleanup drains it.
func start(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
		ts.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestSubmitPollResult is the core serving path: POST a job, poll its
// status until done, and check the result bytes are identical to a
// direct public-API run.
func TestSubmitPollResult(t *testing.T) {
	_, ts := start(t, Options{Workers: 2})
	resp, data := post(t, ts.URL, `{"config":"hetero","model":"AlexNet"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %s: %s", resp.Status, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Config != "hetero" || st.Model != "AlexNet" || st.FreqScale != 1 {
		t.Fatalf("bad status document: %+v", st)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, data = get(t, ts.URL+"/v1/jobs/"+st.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job = %s: %s", resp.Status, data)
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == StatusDone || st.Status == StatusFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.Status != StatusDone || len(st.Result) == 0 {
		t.Fatalf("job did not complete: %+v", st)
	}

	resp, got := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result = %s: %s", resp.Status, got)
	}
	direct, err := heteropim.Run(heteropim.ConfigHeteroPIM, heteropim.AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, EncodeResult(direct)) {
		t.Fatalf("served result differs from direct run:\n%s\nvs\n%s", got, EncodeResult(direct))
	}
}

// TestDedupCollapsesIdenticalRequests fires a herd of identical posts
// and checks they collapse onto one job (one live run).
func TestDedupCollapsesIdenticalRequests(t *testing.T) {
	s, ts := start(t, Options{Workers: 2})
	const herd = 16
	ids := make([]string, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := post(t, ts.URL, `{"config":"gpu","model":"DCGAN"}`)
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("POST %d = %s: %s", i, resp.Status, data)
				return
			}
			var st JobStatus
			if err := json.Unmarshal(data, &st); err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < herd; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("identical requests got different jobs: %q vs %q", ids[i], ids[0])
		}
	}
	resp, _ := get(t, ts.URL+"/v1/jobs/"+ids[0]+"/result?wait=60s")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %s", resp.Status)
	}
	st := s.Stats()
	if st.JobsRun != 1 {
		t.Fatalf("herd of %d caused %d live runs, want 1", herd, st.JobsRun)
	}
	if st.DedupHits != herd-1 {
		t.Fatalf("dedup hits = %d, want %d", st.DedupHits, herd-1)
	}
}

// TestAdmissionControl saturates a 1-worker/1-slot server (by parking
// blockers on its pool directly — deterministic, unlike racing real
// simulations) and checks the excess is shed with 429 + Retry-After;
// once the pool frees up, admission resumes.
func TestAdmissionControl(t *testing.T) {
	s, ts := start(t, Options{Workers: 1, QueueCapacity: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	if err := s.pool.Submit(func(context.Context) { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started // worker occupied; now fill the single queue slot
	if err := s.pool.Submit(func(context.Context) { <-release }); err != nil {
		t.Fatal(err)
	}

	resp, data := post(t, ts.URL, `{"config":"cpu","model":"AlexNet"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST on a full queue = %s (%s), want 429", resp.Status, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 responses must carry Retry-After")
	}

	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, data = post(t, ts.URL, `{"config":"cpu","model":"AlexNet"}`)
		if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
			break
		}
		if resp.StatusCode != http.StatusTooManyRequests || time.Now().After(deadline) {
			t.Fatalf("POST after release = %s (%s)", resp.Status, data)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestValidationErrors pins the 400 paths: unknown config, unknown
// model, variant on a non-hetero config, unknown JSON field.
func TestValidationErrors(t *testing.T) {
	_, ts := start(t, Options{Workers: 1})
	for _, body := range []string{
		`{"config":"tpu","model":"AlexNet"}`,
		`{"config":"cpu","model":"GPT-2"}`,
		`{"config":"cpu","model":"AlexNet","variant":{"recursive_kernels":true}}`,
		`{"config":"cpu","model":"AlexNet","bogus":1}`,
		`{"config":"cpu","model":"AlexNet","freq_scale":-1}`,
	} {
		resp, data := post(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s = %s, want 400 (%s)", body, resp.Status, data)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Fatalf("400 body must be a JSON error, got %s", data)
		}
	}
	resp, _ := get(t, ts.URL+"/v1/jobs/nosuchjob")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %s, want 404", resp.Status)
	}
}

// TestVariantJob checks a hetero variant cell runs and matches the
// direct RunVariant encoding.
func TestVariantJob(t *testing.T) {
	_, ts := start(t, Options{Workers: 2})
	resp, data := post(t, ts.URL,
		`{"config":"hetero","model":"AlexNet","variant":{"recursive_kernels":true,"operation_pipeline":false}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %s: %s", resp.Status, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	resp, got := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result?wait=60s")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %s: %s", resp.Status, got)
	}
	direct, err := heteropim.RunVariant(heteropim.AlexNet, heteropim.Variant{RecursiveKernels: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, EncodeResult(direct)) {
		t.Fatal("served variant result differs from direct RunVariant")
	}
}

// TestMetricsHealthReady checks the Prometheus scrape and the health
// endpoints, including readyz flipping to 503 on drain.
func TestMetricsHealthReady(t *testing.T) {
	s, ts := start(t, Options{Workers: 1})
	post(t, ts.URL, `{"config":"cpu","model":"AlexNet"}`)

	resp, data := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %s", resp.Status)
	}
	for _, want := range []string{
		"heteropim_serve_requests 1",
		"# TYPE heteropim_serve_queue_depth gauge",
		"heteropim_http_seconds_post_jobs_count",
		"heteropim_simcache_hits",
		// Runner pool gauges, refreshed at scrape time; the server is
		// idle between requests so both must read 0.
		"heteropim_runner_workers_busy 0",
		"heteropim_runner_queue_depth 0",
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("metrics scrape missing %q:\n%s", want, data)
		}
	}

	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %s", resp.Status)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %s", resp.Status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %s, want 503", resp.Status)
	}
	if resp, _ := post(t, ts.URL, `{"config":"cpu","model":"DCGAN"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %s, want 503", resp.Status)
	}
	// Results stay readable after the drain.
	jobs := s.Jobs()
	if len(jobs) != 1 || jobs[0].Status != StatusDone {
		t.Fatalf("drained server lost its jobs: %+v", jobs)
	}
}

// TestStatusPage checks the text status page renders the jobs table.
func TestStatusPage(t *testing.T) {
	_, ts := start(t, Options{Workers: 1})
	post(t, ts.URL, `{"config":"fixed","model":"AlexNet"}`)
	resp, data := get(t, ts.URL+"/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status page = %s", resp.Status)
	}
	for _, want := range []string{"pimserve jobs", "fixed/AlexNet@1x", "workers="} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("status page missing %q:\n%s", want, data)
		}
	}
}

// TestSSEEvents checks the event stream delivers a status snapshot and
// a terminal end event; an instrumented job also reports progress.
func TestSSEEvents(t *testing.T) {
	_, ts := start(t, Options{Workers: 1})
	resp, data := post(t, ts.URL, `{"config":"hetero","model":"DCGAN","instrument":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %s: %s", resp.Status, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	stream, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	types := map[string]int{}
	scanner := bufio.NewScanner(stream.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "event: ") {
			types[strings.TrimPrefix(line, "event: ")]++
		}
	}
	if types["status"] == 0 || types["end"] == 0 {
		t.Fatalf("stream missing status/end events: %v", types)
	}
}

// TestInstrumentedResultMatchesPlain checks an instrumented job's
// served bytes still match the uninstrumented direct run (PR-2
// bit-identity carried through the wire).
func TestInstrumentedResultMatchesPlain(t *testing.T) {
	_, ts := start(t, Options{Workers: 1})
	resp, data := post(t, ts.URL, `{"config":"gpu","model":"AlexNet","instrument":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %s: %s", resp.Status, data)
	}
	var st JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	resp, got := get(t, ts.URL+"/v1/jobs/"+st.ID+"/result?wait=60s")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %s: %s", resp.Status, got)
	}
	direct, err := heteropim.Run(heteropim.ConfigGPU, heteropim.AlexNet)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, EncodeResult(direct)) {
		t.Fatal("instrumented served result differs from plain direct run")
	}
}

// TestLoadGenSelfcheck runs the built-in load generator end to end
// against an in-process server: zero errors, dedup ratio over the 4x
// gate, byte-identical results.
func TestLoadGenSelfcheck(t *testing.T) {
	if testing.Short() {
		t.Skip("load generator is a heavy end-to-end check")
	}
	s, ts := start(t, Options{Workers: 4, QueueCapacity: 64})
	rep, err := LoadGen(ts.URL, 32, DefaultLoadCells(), s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("loadgen saw %d errors", rep.Errors)
	}
	if !rep.ByteIdentical {
		t.Fatal("served results not byte-identical to direct runs")
	}
	if rep.DedupRatio < 4 {
		t.Fatalf("dedup ratio = %.2f, want >= 4", rep.DedupRatio)
	}
}
