package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"heteropim"
	"heteropim/internal/runner"
)

// The admission-coalescing window: a burst of near-simultaneous
// distinct cells is almost as cacheable as a burst of identical ones —
// cells sharing a model instantiate the same task-graph template and
// step-1 profile, but when each rides its own pool slot they race the
// per-entry build locks instead of sharing the warm-up. The coalescer
// holds admitted jobs for one short window and evaluates the whole
// window as a single heteropim.BatchRun, whose grouped-leader phase
// warms each template exactly once.
//
// Semantics preserved from the direct path: duplicate ids inside one
// window still collapse onto one job (the jobs-map dedup runs before
// admission), per-job queue-wait deadlines still apply, a full window
// still sheds load, and client disconnects never poison the batch —
// the POST handler returns before the window closes, so a batch only
// ever depends on the server's own lifecycle, not on any client's.
type coalescer struct {
	s      *Server
	window time.Duration

	mu      sync.Mutex
	pending []pendingJob
	armed   bool
	inline  sync.WaitGroup // batches run inline when the pool is closing
}

// pendingJob is one admitted job waiting out the window.
type pendingJob struct {
	j        *Job
	deadline time.Time
}

func newCoalescer(s *Server, window time.Duration) *coalescer {
	return &coalescer{s: s, window: window}
}

// add admits j into the open window; the first job of a window arms
// the flush timer. The pending window counts against the pool's queue
// capacity so coalescing cannot turn admission control off.
func (c *coalescer) add(j *Job, deadline time.Time) error {
	c.mu.Lock()
	if len(c.pending) >= c.s.pool.Capacity() {
		c.mu.Unlock()
		return runner.ErrQueueFull
	}
	c.pending = append(c.pending, pendingJob{j: j, deadline: deadline})
	arm := !c.armed
	c.armed = true
	c.mu.Unlock()
	if arm {
		time.AfterFunc(c.window, c.flush)
	}
	return nil
}

// flush closes the current window and hands its jobs to the pool as
// one batch. If the pool refuses (closing under Drain), the batch runs
// inline: the jobs were accepted, so they must finish.
func (c *coalescer) flush() {
	c.mu.Lock()
	batch := c.pending
	c.pending = nil
	c.armed = false
	c.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	if err := c.s.pool.Submit(func(context.Context) { c.s.executeBatch(batch) }); err != nil {
		c.inline.Add(1)
		go func() {
			defer c.inline.Done()
			c.s.executeBatch(batch)
		}()
	}
}

// wait blocks until every inline batch has finished (Drain calls this
// after the pool itself is dry).
func (c *coalescer) wait() { c.inline.Wait() }

// executeBatch runs one coalesced window: expire overdue jobs, resolve
// what the fleet already computed (cross-replica dedup), then evaluate
// the remainder as a single grouped BatchRun.
func (s *Server) executeBatch(batch []pendingJob) {
	s.reg.Add("serve.coalesce_batches", 1)
	s.reg.Add("serve.coalesce_jobs", float64(len(batch)))
	now := time.Now()
	live := make([]*Job, 0, len(batch))
	for _, p := range batch {
		if now.After(p.deadline) {
			s.reg.Add("serve.jobs_timed_out", 1)
			s.remove(p.j.ID)
			p.j.fail(fmt.Errorf("serve: job %s spent over %s in queue", p.j.ID, s.jobTimeout))
			continue
		}
		if s.adoptFromPeer(p.j) {
			continue
		}
		live = append(live, p.j)
	}
	if len(live) == 0 {
		return
	}
	cells := make([]heteropim.BatchCell, len(live))
	for i, j := range live {
		j.setRunning()
		cells[i] = j.cell.batchCell()
	}
	s.reg.Add("serve.jobs_run", float64(len(live)))
	results, err := heteropim.BatchRun(cells)
	if err != nil {
		// BatchRun fails as a whole on the first bad cell; degrade to
		// per-job runs so one poisoned cell cannot fail its batchmates.
		for _, j := range live {
			res, rerr := j.cell.run(nil)
			if rerr != nil {
				s.reg.Add("serve.jobs_failed", 1)
				j.fail(rerr)
				continue
			}
			j.complete(EncodeResult(res))
		}
		return
	}
	for i, j := range live {
		j.complete(EncodeResult(results[i]))
	}
}
