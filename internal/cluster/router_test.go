package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"heteropim/internal/serve"
)

// stubReplica is a fake pimserve backend: it remembers which ids were
// POSTed to it, serves results for the ids it was seeded with, and can
// flip into the draining state (503 on submit and readyz), all without
// running a single simulation.
type stubReplica struct {
	ts       *httptest.Server
	draining atomic.Bool
	mu       sync.Mutex
	submits  []string
	results  map[string][]byte
}

func newStubReplica(t *testing.T) *stubReplica {
	t.Helper()
	s := &stubReplica{results: map[string][]byte{}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		var req serve.JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id, err := serve.JobID(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.submits = append(s.submits, id)
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "{\"id\":%q}\n", id)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		body, ok := s.results[r.PathValue("id")]
		s.mu.Unlock()
		if !ok {
			http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	s.ts = httptest.NewServer(mux)
	t.Cleanup(s.ts.Close)
	return s
}

func (s *stubReplica) submitted() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.submits...)
}

// startRouter wires a router over the stubs with a slow health loop so
// tests exercise the forward-failure path deterministically, not the
// probe race.
func startRouter(t *testing.T, stubs ...*stubReplica) (*Router, *httptest.Server) {
	t.Helper()
	members := make([]Replica, len(stubs))
	for i, s := range stubs {
		members[i] = Replica{Name: fmt.Sprintf("replica-%d", i), BaseURL: s.ts.URL}
	}
	rt := NewRouter(RouterOptions{Replicas: members, HealthInterval: time.Hour})
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { rt.Close(); ts.Close() })
	return rt, ts
}

func submitCell(t *testing.T, routerURL, model string) string {
	t.Helper()
	body := fmt.Sprintf(`{"config":"hetero","model":%q}`, model)
	resp, err := http.Post(routerURL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST %s via router = %s", model, resp.Status)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// TestRouterRoutesByJobID checks that every duplicate of a cell lands
// on the same replica (so it deduplicates there) and that the landing
// spot matches the ring's own Owner answer.
func TestRouterRoutesByJobID(t *testing.T) {
	stubs := []*stubReplica{newStubReplica(t), newStubReplica(t), newStubReplica(t)}
	rt, ts := startRouter(t, stubs...)

	models := []string{"AlexNet", "VGG-19", "DCGAN", "ResNet-50"}
	for _, m := range models {
		var id string
		for rep := 0; rep < 3; rep++ {
			id = submitCell(t, ts.URL, m)
		}
		owner, ok := rt.Owner(id)
		if !ok {
			t.Fatalf("no owner for %s", id)
		}
		var idx int
		fmt.Sscanf(owner, "replica-%d", &idx)
		n := 0
		for _, got := range stubs[idx].submitted() {
			if got == id {
				n++
			}
		}
		if n != 3 {
			t.Fatalf("owner %s of %s saw %d submissions, want all 3", owner, m, n)
		}
		for i, s := range stubs {
			if i == idx {
				continue
			}
			for _, got := range s.submitted() {
				if got == id {
					t.Fatalf("replica-%d also received %s owned by %s", i, id, owner)
				}
			}
		}
	}
}

// TestRouterRetriesDrainingOwner flips a job's owner into the draining
// state and checks the in-flight submission is rehashed and retried on
// a survivor instead of failing back to the client.
func TestRouterRetriesDrainingOwner(t *testing.T) {
	stubs := []*stubReplica{newStubReplica(t), newStubReplica(t), newStubReplica(t)}
	rt, ts := startRouter(t, stubs...)

	id := submitCell(t, ts.URL, "AlexNet")
	owner, _ := rt.Owner(id)
	var idx int
	fmt.Sscanf(owner, "replica-%d", &idx)
	stubs[idx].draining.Store(true)

	// The same cell again: first attempt 503s on the draining owner,
	// the retry must land on a survivor.
	id2 := submitCell(t, ts.URL, "AlexNet")
	if id2 != id {
		t.Fatalf("job id changed across submissions: %s vs %s", id2, id)
	}
	if rt.Registry().CounterValue("cluster.retries") < 1 {
		t.Fatal("draining owner did not bump cluster.retries")
	}
	if rt.ring.Has(owner) {
		t.Fatalf("draining owner %s still in the ring", owner)
	}
	newOwner, ok := rt.Owner(id)
	if !ok || newOwner == owner {
		t.Fatalf("range did not rehash: owner still %q", newOwner)
	}
	var nidx int
	fmt.Sscanf(newOwner, "replica-%d", &nidx)
	found := false
	for _, got := range stubs[nidx].submitted() {
		if got == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("retried submission never reached new owner %s", newOwner)
	}
}

// TestRouterReadFanOut strands a finished job on a non-owner (as a
// rehash would) and checks a read through the router still finds it via
// the fan-out fallback.
func TestRouterReadFanOut(t *testing.T) {
	stubs := []*stubReplica{newStubReplica(t), newStubReplica(t), newStubReplica(t)}
	rt, ts := startRouter(t, stubs...)

	const id = "deadbeefdeadbeefdeadbeefdeadbeef"
	owner, _ := rt.Owner(id)
	var idx int
	fmt.Sscanf(owner, "replica-%d", &idx)
	holder := (idx + 1) % len(stubs)
	want := []byte(`{"stranded":true}`)
	stubs[holder].mu.Lock()
	stubs[holder].results[id] = want
	stubs[holder].mu.Unlock()

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fan-out read = %s", resp.Status)
	}
	var got struct {
		Stranded bool `json:"stranded"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil || !got.Stranded {
		t.Fatalf("fan-out returned wrong body (err=%v, got=%+v)", err, got)
	}
	if rt.Registry().CounterValue("cluster.reroutes") < 1 {
		t.Fatal("stranded read did not bump cluster.reroutes")
	}
}

// TestRouterMetricsAndReadyz checks the router's own observability: the
// Prometheus exposition carries heteropim_cluster_* series and /readyz
// tracks whether any replica is left in the ring.
func TestRouterMetricsAndReadyz(t *testing.T) {
	stubs := []*stubReplica{newStubReplica(t), newStubReplica(t)}
	rt, ts := startRouter(t, stubs...)
	submitCell(t, ts.URL, "AlexNet")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, series := range []string{
		"heteropim_cluster_requests",
		"heteropim_cluster_replicas 2",
		"heteropim_cluster_replicas_ready 2",
		"heteropim_cluster_forwarded_replica_",
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("metrics exposition missing %q:\n%s", series, text)
		}
	}

	if resp, _ := http.Get(ts.URL + "/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with ready replicas = %s", resp.Status)
	} else {
		resp.Body.Close()
	}
	rt.RemoveReplica("replica-0")
	rt.RemoveReplica("replica-1")
	resp2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with empty ring = %s, want 503", resp2.Status)
	}
}

// TestReplicaAnnounce covers self-registration: a router that starts
// with an empty fleet accepts POST /v1/replicas (the `pimserve
// -announce` payload), lists the member on GET, routes to it, and
// rejects malformed announcements.
func TestReplicaAnnounce(t *testing.T) {
	rt := NewRouter(RouterOptions{HealthInterval: time.Hour})
	defer rt.Close()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Empty fleet: not ready, nothing listed.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty-fleet readyz = %s, want 503", resp.Status)
	}

	stub := newStubReplica(t)
	defer stub.ts.Close()
	if err := Announce(nil, ts.URL, Replica{Name: "worker-a", BaseURL: stub.ts.URL}); err != nil {
		t.Fatalf("Announce: %v", err)
	}

	resp, err = http.Get(ts.URL + "/v1/replicas")
	if err != nil {
		t.Fatal(err)
	}
	var listed []ReplicaStatus
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed) != 1 || listed[0].Name != "worker-a" || listed[0].BaseURL != stub.ts.URL || !listed[0].Ready {
		t.Fatalf("replica list: %+v", listed)
	}
	if nodes := rt.ReadyReplicas(); len(nodes) != 1 || nodes[0] != "worker-a" {
		t.Fatalf("ring members: %v", nodes)
	}

	// A routed submit now lands on the announced replica.
	body := `{"config":"hetero","model":"VGG-19"}`
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("routed submit = %s, want 202", resp.Status)
	}
	if got := stub.submitted(); len(got) != 1 {
		t.Fatalf("stub saw %d submits, want 1", len(got))
	}

	// Malformed announcements are rejected.
	for name, bad := range map[string]string{
		"no name":       `{"base_url":"http://127.0.0.1:1"}`,
		"no url":        `{"name":"x"}`,
		"not a url":     `{"name":"x","base_url":"127.0.0.1:1"}`,
		"unknown field": `{"name":"x","base_url":"http://127.0.0.1:1","extra":true}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/replicas", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", name, resp.Status)
		}
	}
}

// TestReplicaDepart covers the graceful-drain announcement: DELETE
// /v1/replicas/{name} pulls the replica's range out of the ring at
// once (counted as a departure rehash), leaves it a fleet member so a
// recovery restores its range, and 404s unknown names.
func TestReplicaDepart(t *testing.T) {
	rt := NewRouter(RouterOptions{HealthInterval: time.Hour})
	defer rt.Close()
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	stub := newStubReplica(t)
	defer stub.ts.Close()
	if err := Announce(nil, ts.URL, Replica{Name: "worker-a", BaseURL: stub.ts.URL}); err != nil {
		t.Fatalf("Announce: %v", err)
	}
	if nodes := rt.ReadyReplicas(); len(nodes) != 1 {
		t.Fatalf("ring members before depart: %v", nodes)
	}

	if err := Depart(nil, ts.URL, "worker-a"); err != nil {
		t.Fatalf("Depart: %v", err)
	}
	if nodes := rt.ReadyReplicas(); len(nodes) != 0 {
		t.Fatalf("ring members after depart: %v", nodes)
	}
	reg := rt.Registry()
	if got := reg.CounterValue("cluster.departures"); got != 1 {
		t.Fatalf("cluster.departures = %.0f, want 1", got)
	}
	if got := reg.CounterValue("cluster.unready.depart"); got != 1 {
		t.Fatalf("cluster.unready.depart = %.0f, want 1", got)
	}

	// Still a fleet member: listed unready, and a re-announce (or a
	// /readyz recovery) brings the same range back.
	resp, err := http.Get(ts.URL + "/v1/replicas")
	if err != nil {
		t.Fatal(err)
	}
	var listed []ReplicaStatus
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed) != 1 || listed[0].Name != "worker-a" || listed[0].Ready {
		t.Fatalf("replica list after depart: %+v", listed)
	}
	if err := Announce(nil, ts.URL, Replica{Name: "worker-a", BaseURL: stub.ts.URL}); err != nil {
		t.Fatalf("re-announce: %v", err)
	}
	if nodes := rt.ReadyReplicas(); len(nodes) != 1 || nodes[0] != "worker-a" {
		t.Fatalf("ring members after re-announce: %v", nodes)
	}

	// A departure for a name the router never met is a 404, not a
	// silent success.
	if err := Depart(nil, ts.URL, "stranger"); err == nil {
		t.Fatal("depart of an unknown replica succeeded")
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/replicas/stranger", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown depart = %s, want 404", resp2.Status)
	}
}
