package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"heteropim"
	"heteropim/internal/scenario"
	"heteropim/internal/serve"
)

// The clustercheck: the serving fleet's acceptance harness. It builds
// a real cluster in one process — N replicas on real TCP listeners, a
// consistent-hash router in front — drives three client waves through
// the router, SIGTERM-equivalently drains one replica between waves 1
// and 2 (exercising the rehash-and-retry path), fully kills and then
// recovers it between waves 2 and 3 (exercising recovery and
// cross-replica dedup from an empty replica), and gates on:
//
//   - zero client errors across every wave,
//   - every result body byte-identical to a direct single-process run,
//   - cluster-wide dedup (client submissions per local simulation,
//     summed fleet-wide) at least the single-node baseline's,
//   - the kill actually happened: >= 1 rehash, >= 1 retried
//     submission, >= 1 cross-replica adoption, and the recovered
//     replica back in the ring.

// CheckOptions configures RunCheck.
type CheckOptions struct {
	// Replicas is the fleet size (<= 0: 3; the gate requires >= 3).
	Replicas int
	// Clients is the total client count, split over three waves
	// (<= 0: 96). Each wave covers every cell.
	Clients int
	// Window is the replicas' admission-coalescing window (<= 0: 2ms).
	Window time.Duration
	// Cells overrides the load mix (nil: serve.DefaultLoadCells()).
	Cells []serve.LoadCell
	// Arrival is the per-wave arrival process (nil: open-loop Poisson
	// at 600 req/s — the router's rehash and dedup machinery is gated
	// under load that keeps arriving while a replica dies, not a
	// closed loop that self-throttles). Rate-driven processes are
	// resized to each wave's request count; a burst trace must have
	// exactly one offset per wave request.
	Arrival *scenario.Arrival
	// Seed drives the arrival schedules (0: 1). Each wave offsets the
	// seed so the waves differ but the whole check replays identically.
	Seed int64
	// Workers / Queue / JobTimeout are passed through to each replica.
	Workers    int
	Queue      int
	JobTimeout time.Duration
	// HealthInterval is the router's probe period (<= 0: 100ms).
	HealthInterval time.Duration
	// Log receives progress lines (nil: os.Stderr).
	Log io.Writer
}

// PhaseStats summarizes one phase's serving-layer traffic. Requests
// counts client submissions (the wave sizes), LiveRuns the jobs that
// executed a simulation locally — peer-adopted and deduplicated jobs
// excluded — so Dedup is directly comparable between the single-node
// and cluster phases.
type PhaseStats struct {
	Requests  int64   `json:"requests"`
	LiveRuns  int64   `json:"live_runs"`
	DedupHits int64   `json:"dedup_hits"`
	PeerHits  int64   `json:"peer_hits"`
	Batches   int64   `json:"coalesce_batches"`
	Dedup     float64 `json:"dedup_ratio"`
}

// CheckReport is the BENCH_cluster.json shape.
type CheckReport struct {
	Replicas      int              `json:"replicas"`
	Clients       int              `json:"clients"`
	Arrival       string           `json:"arrival"`
	Cells         []serve.LoadCell `json:"cells"`
	Single        PhaseStats       `json:"single"`
	Cluster       PhaseStats       `json:"cluster"`
	Killed        string           `json:"killed_replica"`
	Recovered     bool             `json:"recovered_in_ring"`
	Announces     float64          `json:"replica_announces"`
	Departures    float64          `json:"replica_departures"`
	Rehashes      float64          `json:"rehashes"`
	Retries       float64          `json:"retried_submissions"`
	Reroutes      float64          `json:"read_reroutes"`
	Errors        int64            `json:"errors"`
	ByteIdentical bool             `json:"byte_identical"`
	DedupOK       bool             `json:"cluster_dedup_ge_single"`
	WallSeconds   float64          `json:"wall_seconds"`
	ThroughputRPS float64          `json:"throughput_rps"`
	LatencyP50Ms  float64          `json:"latency_p50_ms"`
	LatencyP99Ms  float64          `json:"latency_p99_ms"`
}

// WriteJSON writes the report as indented JSON plus newline.
func (r CheckReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// replicaProc is one in-process replica behind a real TCP listener —
// the same serve.Server + http.Server pair the standalone daemon runs.
type replicaProc struct {
	name string
	url  string
	srv  *serve.Server
	hs   *http.Server
}

func startReplica(name string, fleet *Fleet, opts serve.Options) (*replicaProc, error) {
	opts.PeerAsk = PeerAsk(fleet, name, nil)
	srv := serve.New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	p := &replicaProc{name: name, url: "http://" + ln.Addr().String(), srv: srv, hs: hs}
	fleet.Set(name, p.url)
	return p, nil
}

// drain is the SIGTERM-equivalent: stop admitting (readyz flips to
// 503 — the router's cue to rehash), finish in-flight jobs, keep every
// result readable.
func (p *replicaProc) drain(ctx context.Context) error { return p.srv.Drain(ctx) }

// shutdown closes the listener and leaves the fleet: the replica is
// dead, its results are gone.
func (p *replicaProc) shutdown(ctx context.Context, fleet *Fleet) error {
	fleet.Remove(p.name)
	return p.hs.Shutdown(ctx)
}

// waveOffsets builds one wave's arrival schedule: n requests through
// the configured process. Rate-driven open-loop processes are resized
// to exactly n requests; closed-loop waves fire everything at once
// (all-zero offsets) — the pre-scenario behavior.
func waveOffsets(arr *scenario.Arrival, n int, seed int64) ([]float64, error) {
	if !arr.Open() {
		return make([]float64, n), nil
	}
	a := *arr
	if a.Process != scenario.ArrivalBurst {
		a.Requests = n
	}
	offsets, err := a.Schedule(seed)
	if err != nil {
		return nil, err
	}
	if len(offsets) != n {
		return nil, fmt.Errorf("clustercheck: %s arrival produced %d offsets for a %d-request wave (raise duration_sec or fix the trace length)",
			a.Normalized(), len(offsets), n)
	}
	return offsets, nil
}

// runWave fires one request per arrival offset at baseURL — request i
// targeting cells[i%len(cells)] — through the shared open-loop driver,
// and verifies each body against expected. Requests fire on schedule
// even when earlier ones are still in flight.
func runWave(baseURL string, offsets []float64, cells []serve.LoadCell, expected [][]byte) (errs int64, identical bool, lats []float64) {
	client := &http.Client{Timeout: 2 * time.Minute}
	identical = true
	var mu sync.Mutex
	res := scenario.Drive(offsets, func(i int) error {
		cell := cells[i%len(cells)]
		got, err := serve.SubmitAndFetch(client, baseURL, cell)
		if err != nil {
			fmt.Fprintf(os.Stderr, "clustercheck client %d (%s/%s): %v\n", i, cell.Config, cell.Model, err)
			return err
		}
		if !sameBytes(got, expected[i%len(cells)]) {
			mu.Lock()
			identical = false
			mu.Unlock()
		}
		return nil
	})
	lats = make([]float64, 0, len(res.Latencies))
	for _, d := range res.Latencies {
		lats = append(lats, d.Seconds())
	}
	return int64(res.Errors), identical, lats
}

func sameBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func percentileMs(lats []float64, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	return sorted[int(p*float64(len(sorted)-1))] * 1e3
}

// sumStats folds the fleet's serving counters into one PhaseStats
// (Requests is filled by the caller from the client side).
func sumStats(servers []*serve.Server) PhaseStats {
	var ps PhaseStats
	for _, s := range servers {
		st := s.Stats()
		ps.LiveRuns += st.JobsRun
		ps.DedupHits += st.DedupHits
		ps.PeerHits += st.PeerHits
		ps.Batches += st.CoalesceBatches
	}
	return ps
}

// RunCheck builds the cluster, drives the kill-and-recover load, and
// returns the report plus the first gate violation (the report is
// valid — and worth writing — either way).
func RunCheck(opts CheckOptions) (CheckReport, error) {
	nrep := opts.Replicas
	if nrep <= 0 {
		nrep = 3
	}
	clients := opts.Clients
	if clients <= 0 {
		clients = 96
	}
	window := opts.Window
	if window <= 0 {
		window = 2 * time.Millisecond
	}
	cells := opts.Cells
	if cells == nil {
		cells = serve.DefaultLoadCells()
	}
	health := opts.HealthInterval
	if health <= 0 {
		health = 100 * time.Millisecond
	}
	logw := opts.Log
	if logw == nil {
		logw = os.Stderr
	}
	arr := opts.Arrival
	if arr == nil {
		arr = &scenario.Arrival{Process: scenario.ArrivalPoisson, RatePerSec: 600}
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	rep := CheckReport{Replicas: nrep, Clients: clients, Arrival: arr.Normalized(), Cells: cells}

	// Ground truth: the canonical bytes of each cell from direct
	// public-API runs — what `pimserve -print` emits.
	expected := make([][]byte, len(cells))
	jobIDs := make([]string, len(cells))
	for i, c := range cells {
		cfg, err := heteropim.ParseConfig(c.Config)
		if err != nil {
			return rep, err
		}
		model, err := heteropim.ParseModel(c.Model)
		if err != nil {
			return rep, err
		}
		r, err := heteropim.Run(cfg, model)
		if err != nil {
			return rep, err
		}
		expected[i] = serve.EncodeResult(r)
		if jobIDs[i], err = serve.JobID(serve.JobRequest{Config: c.Config, Model: c.Model}); err != nil {
			return rep, err
		}
	}

	sopts := serve.Options{Workers: opts.Workers, QueueCapacity: opts.Queue, JobTimeout: opts.JobTimeout}
	dctx, dcancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer dcancel()

	// Both phases serve exactly the same client total — 3 waves' worth —
	// so the dedup ratios compare like for like.
	wave := (clients + 2) / 3
	if wave < len(cells) {
		wave = len(cells) // every wave must cover every cell
	}
	totalClients := 3 * wave
	rep.Clients = totalClients

	// ---- Phase 1: single-node baseline (the PR-4 shape: no window, no
	// peers) over the same client count.
	single, err := startReplica("single", NewFleet(), sopts)
	if err != nil {
		return rep, err
	}
	fmt.Fprintf(logw, "pimserve: clustercheck baseline: 1 node, %d requests (%s arrivals), %d cells\n",
		totalClients, arr.Normalized(), len(cells))
	baseOffsets, err := waveOffsets(arr, totalClients, seed)
	if err != nil {
		return rep, err
	}
	sErrs, sIdent, _ := runWave(single.url, baseOffsets, cells, expected)
	st := single.srv.Stats()
	rep.Single = PhaseStats{
		Requests: int64(totalClients), LiveRuns: st.JobsRun,
		DedupHits: st.DedupHits, PeerHits: st.PeerHits, Batches: st.CoalesceBatches,
	}
	if st.JobsRun > 0 {
		rep.Single.Dedup = float64(totalClients) / float64(st.JobsRun)
	}
	if err := single.drain(dctx); err != nil {
		return rep, fmt.Errorf("clustercheck: baseline drain: %w", err)
	}
	if err := single.hs.Shutdown(dctx); err != nil {
		return rep, fmt.Errorf("clustercheck: baseline shutdown: %w", err)
	}
	if sErrs > 0 || !sIdent {
		return rep, fmt.Errorf("clustercheck: baseline phase failed (%d errors, identical=%t)", sErrs, sIdent)
	}

	// The baseline warmed the process-wide memory cache; drop it so the
	// cluster phase re-earns every result through its own dedup
	// machinery (and the shared L2 disk tier when HETEROPIM_CACHE_DIR
	// is set), the way separate replica processes would.
	heteropim.DropSimulationCacheMemory()

	// ---- Phase 2: the fleet.
	copts := sopts
	copts.CoalesceWindow = window
	fleet := NewFleet()
	replicas := make([]*replicaProc, nrep)
	for i := range replicas {
		if replicas[i], err = startReplica(fmt.Sprintf("replica-%d", i), fleet, copts); err != nil {
			return rep, err
		}
	}
	members := make([]Replica, nrep)
	for i, p := range replicas {
		members[i] = Replica{Name: p.name, BaseURL: p.url}
	}
	router := NewRouter(RouterOptions{Replicas: members, HealthInterval: health})
	defer router.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	rhs := &http.Server{Handler: router.Handler()}
	go func() { _ = rhs.Serve(rln) }()
	routerURL := "http://" + rln.Addr().String()
	defer rhs.Shutdown(context.Background())

	fmt.Fprintf(logw, "pimserve: clustercheck cluster: %d replicas behind %s, 3 waves x %d requests (%s arrivals)\n",
		nrep, routerURL, wave, arr.Normalized())

	// One schedule per wave, seeded apart so the waves differ while the
	// whole check replays deterministically from (arrival, seed).
	waves := make([][]float64, 3)
	for w := range waves {
		if waves[w], err = waveOffsets(arr, wave, seed+int64(w)+1); err != nil {
			return rep, err
		}
	}

	t0 := time.Now()
	e1, i1, l1 := runWave(routerURL, waves[0], cells, expected)

	// Kill: pick the replica owning the most job ids and drain it — the
	// SIGTERM path. Its readyz flips to 503 immediately, so wave 2's
	// first submissions to it are rejected, rehashed and retried by the
	// router while the drained replica's results stay readable for
	// cross-replica adoption.
	owned := map[string]int{}
	for _, id := range jobIDs {
		if o, ok := router.Owner(id); ok {
			owned[o]++
		}
	}
	victim := replicas[0]
	for _, p := range replicas {
		if owned[p.name] > owned[victim.name] {
			victim = p
		}
	}
	rep.Killed = victim.name
	fmt.Fprintf(logw, "pimserve: clustercheck: draining %s (owns %d/%d job ids)\n",
		victim.name, owned[victim.name], len(jobIDs))
	// The drain is deliberately silent — no departure announcement — so
	// wave 2 exercises the lost-announcement path: the router discovers
	// the drain from a 503'd submission and retries it on the new owner.
	if err := victim.drain(dctx); err != nil {
		return rep, fmt.Errorf("clustercheck: victim drain: %w", err)
	}

	e2, i2, l2 := runWave(routerURL, waves[1], cells, expected)

	// Full kill, then recovery under the same name (same shard range)
	// on a fresh port with empty state. The recovered replica rejoins by
	// announcing itself over the wire — the same POST /v1/replicas a
	// `pimserve -announce` replica sends — not by the harness reaching
	// into the router, so the check covers self-registration end to end.
	// This time the victim announces its departure over the wire first —
	// the same DELETE /v1/replicas/{name} a SIGTERM'd `pimserve
	// -announce` sends — so the graceful-exit path is covered end to end
	// alongside wave 2's unannounced drain.
	if err := Depart(nil, routerURL, victim.name); err != nil {
		return rep, fmt.Errorf("clustercheck: victim depart: %w", err)
	}
	if err := victim.shutdown(dctx, fleet); err != nil {
		return rep, fmt.Errorf("clustercheck: victim shutdown: %w", err)
	}
	router.RemoveReplica(victim.name)
	recovered, err := startReplica(victim.name, fleet, copts)
	if err != nil {
		return rep, err
	}
	if err := Announce(nil, routerURL, Replica{Name: recovered.name, BaseURL: recovered.url}); err != nil {
		return rep, fmt.Errorf("clustercheck: recovery announce: %w", err)
	}
	fmt.Fprintf(logw, "pimserve: clustercheck: recovered %s at %s (self-announced)\n", recovered.name, recovered.url)

	e3, i3, l3 := runWave(routerURL, waves[2], cells, expected)
	rep.WallSeconds = time.Since(t0).Seconds()

	// Collect before draining the fleet (counters survive drain anyway).
	servers := []*serve.Server{victim.srv, recovered.srv}
	for _, p := range replicas {
		if p != victim {
			servers = append(servers, p.srv)
		}
	}
	rep.Cluster = sumStats(servers)
	rep.Cluster.Requests = int64(totalClients)
	if rep.Cluster.LiveRuns > 0 {
		rep.Cluster.Dedup = float64(totalClients) / float64(rep.Cluster.LiveRuns)
	}
	rep.Errors = e1 + e2 + e3
	rep.ByteIdentical = i1 && i2 && i3
	rep.Announces = router.Registry().CounterValue("cluster.announces")
	rep.Departures = router.Registry().CounterValue("cluster.departures")
	rep.Rehashes = router.Registry().CounterValue("cluster.rehashes")
	rep.Retries = router.Registry().CounterValue("cluster.retries")
	rep.Reroutes = router.Registry().CounterValue("cluster.reroutes")
	rep.DedupOK = rep.Cluster.Dedup >= rep.Single.Dedup-1e-9
	for _, n := range router.ReadyReplicas() {
		if n == victim.name {
			rep.Recovered = true
		}
	}
	lats := append(append(l1, l2...), l3...)
	rep.LatencyP50Ms = percentileMs(lats, 0.50)
	rep.LatencyP99Ms = percentileMs(lats, 0.99)
	if rep.WallSeconds > 0 {
		rep.ThroughputRPS = float64(totalClients) / rep.WallSeconds
	}

	// Tear the fleet down cleanly.
	for _, p := range append([]*replicaProc{recovered}, replicas...) {
		if p == victim {
			continue
		}
		if err := p.drain(dctx); err != nil {
			return rep, fmt.Errorf("clustercheck: drain %s: %w", p.name, err)
		}
		if err := p.hs.Shutdown(dctx); err != nil {
			return rep, fmt.Errorf("clustercheck: shutdown %s: %w", p.name, err)
		}
	}

	// ---- Gates.
	switch {
	case nrep < 3:
		return rep, fmt.Errorf("clustercheck: %d replicas; the gate needs >= 3", nrep)
	case rep.Errors > 0:
		return rep, fmt.Errorf("clustercheck: %d client errors", rep.Errors)
	case !rep.ByteIdentical:
		return rep, fmt.Errorf("clustercheck: routed results not byte-identical to single-node runs")
	case !rep.DedupOK:
		return rep, fmt.Errorf("clustercheck: cluster dedup %.2fx below single-node %.2fx",
			rep.Cluster.Dedup, rep.Single.Dedup)
	case rep.Rehashes < 1:
		return rep, fmt.Errorf("clustercheck: the kill never caused a rehash")
	case rep.Retries < 1:
		return rep, fmt.Errorf("clustercheck: no in-flight submission was retried across the kill")
	case rep.Cluster.PeerHits < 1:
		return rep, fmt.Errorf("clustercheck: no cross-replica dedup adoption happened")
	case rep.Announces < 1:
		return rep, fmt.Errorf("clustercheck: recovery never went through POST /v1/replicas")
	case rep.Departures < 1:
		return rep, fmt.Errorf("clustercheck: the drain never went through DELETE /v1/replicas/{name}")
	case !rep.Recovered:
		return rep, fmt.Errorf("clustercheck: %s never rejoined the ring", victim.name)
	}
	return rep, nil
}
