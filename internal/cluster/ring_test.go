package cluster

import (
	"fmt"
	"testing"
)

// ringKeys is a workload of content-addressed-looking keys. Real job
// ids are hex FNV fingerprints — uniformly spread — so the test keys
// are scrambled the same way rather than being sequential strings
// (whose trailing-byte-only differences FNV maps to one tight arc).
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x%016x",
			ringHash(fmt.Sprintf("key-%d", i)), ringHash(fmt.Sprintf("yek-%d", i)))
	}
	return keys
}

// TestRingOwnerDeterministic checks that two independently-built rings
// over the same membership agree on every key — the property that lets
// routers and replicas route without coordination.
func TestRingOwnerDeterministic(t *testing.T) {
	a, b := NewRing(0), NewRing(0)
	for _, n := range []string{"replica-0", "replica-1", "replica-2"} {
		a.Add(n)
	}
	// Insertion order must not matter either.
	for _, n := range []string{"replica-2", "replica-0", "replica-1"} {
		b.Add(n)
	}
	for _, k := range ringKeys(512) {
		oa, oka := a.Owner(k)
		ob, okb := b.Owner(k)
		if !oka || !okb || oa != ob {
			t.Fatalf("rings disagree on %q: %q vs %q", k, oa, ob)
		}
	}
}

// TestRingRemoveMovesOnlyVictimKeys checks the consistent-hash
// contract: removing one node reassigns exactly that node's keys, and
// adding it back restores the original assignment bit for bit.
func TestRingRemoveMovesOnlyVictimKeys(t *testing.T) {
	r := NewRing(0)
	nodes := []string{"replica-0", "replica-1", "replica-2", "replica-3"}
	for _, n := range nodes {
		r.Add(n)
	}
	keys := ringKeys(2048)
	before := make(map[string]string, len(keys))
	perNode := map[string]int{}
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatalf("no owner for %q on a populated ring", k)
		}
		before[k] = o
		perNode[o]++
	}
	for _, n := range nodes {
		if perNode[n] == 0 {
			t.Fatalf("node %s owns zero of %d keys; ring badly unbalanced: %v", n, len(keys), perNode)
		}
	}

	const victim = "replica-1"
	r.Remove(victim)
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			t.Fatalf("no owner for %q after removal", k)
		}
		if o == victim {
			t.Fatalf("removed node still owns %q", k)
		}
		if before[k] != victim && o != before[k] {
			t.Fatalf("key %q moved %q -> %q though its owner was not removed", k, before[k], o)
		}
	}

	r.Add(victim)
	for _, k := range keys {
		if o, _ := r.Owner(k); o != before[k] {
			t.Fatalf("re-adding %s did not restore %q: %q vs %q", victim, k, o, before[k])
		}
	}
}

// TestRingEmptyAndIdempotent covers the edges: an empty ring owns
// nothing, double-add and double-remove are no-ops.
func TestRingEmptyAndIdempotent(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("anything"); ok {
		t.Fatal("empty ring reported an owner")
	}
	r.Add("a")
	r.Add("a")
	if r.Len() != 1 {
		t.Fatalf("double Add: Len = %d, want 1", r.Len())
	}
	r.Remove("a")
	r.Remove("a")
	r.Remove("never-added")
	if r.Len() != 0 {
		t.Fatalf("Len after removals = %d, want 0", r.Len())
	}
	if _, ok := r.Owner("anything"); ok {
		t.Fatal("drained ring reported an owner")
	}
}
