package cluster

import (
	"context"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Fleet tracks the live replica base URLs for cross-replica dedup: a
// replica that misses locally asks its siblings for the finished job
// before simulating. Membership follows the actual fleet lifecycle —
// a replica leaves when it is shut down (a merely-draining replica
// stays: its results remain readable until shutdown, which is exactly
// when a rehashed-away shard range still wants to adopt them).
type Fleet struct {
	mu   sync.RWMutex
	urls map[string]string // name -> baseURL
}

// NewFleet returns an empty fleet.
func NewFleet() *Fleet {
	return &Fleet{urls: map[string]string{}}
}

// Set registers (or re-registers) a member.
func (f *Fleet) Set(name, baseURL string) {
	f.mu.Lock()
	f.urls[name] = baseURL
	f.mu.Unlock()
}

// Remove unregisters a member.
func (f *Fleet) Remove(name string) {
	f.mu.Lock()
	delete(f.urls, name)
	f.mu.Unlock()
}

// Peers lists every member's base URL except self, in deterministic
// name order.
func (f *Fleet) Peers(self string) []string {
	f.mu.RLock()
	names := make([]string, 0, len(f.urls))
	for n := range f.urls {
		if n != self {
			names = append(names, n)
		}
	}
	f.mu.RUnlock()
	sort.Strings(names)
	out := make([]string, len(names))
	f.mu.RLock()
	for i, n := range names {
		out[i] = f.urls[n]
	}
	f.mu.RUnlock()
	return out
}

// PeerAsk builds a serve.Options.PeerAsk implementation over the
// fleet: ask each sibling for the finished job's canonical bytes (GET
// /v1/jobs/{id}/result with a tiny wait) and adopt the first hit. A
// missing job 404s immediately and an in-flight one times out after
// the small wait, so a fleet-wide miss costs little; a hit replaces an
// entire simulation with one HTTP round trip. Result bodies are
// byte-deterministic, so adopted bytes equal what a local run would
// produce.
func PeerAsk(f *Fleet, self string, client *http.Client) func(ctx context.Context, jobID string) ([]byte, bool) {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	return func(ctx context.Context, jobID string) ([]byte, bool) {
		for _, peer := range f.Peers(self) {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet,
				peer+"/v1/jobs/"+jobID+"/result?wait=50ms", nil)
			if err != nil {
				continue
			}
			resp, err := client.Do(req)
			if err != nil {
				continue
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil || resp.StatusCode != http.StatusOK {
				continue
			}
			return body, true
		}
		return nil, false
	}
}
