package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"
	"time"

	"heteropim/internal/serve"
)

// TestRunCheckSmall drives the full kill-and-recover choreography on a
// light two-cell mix: three replicas plus router, a victim drained and
// recovered mid-load, and every production gate (zero errors,
// byte-identical results, cluster dedup >= single-node, at least one
// rehash / retried submission / peer adoption).
func TestRunCheckSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full cluster choreography is too heavy for -short")
	}
	rep, err := RunCheck(CheckOptions{
		Replicas: 3,
		Clients:  12,
		Window:   2 * time.Millisecond,
		Cells: []serve.LoadCell{
			{Config: "hetero", Model: "AlexNet"},
			{Config: "gpu", Model: "AlexNet"},
		},
		Workers:        2,
		HealthInterval: 50 * time.Millisecond,
		Log:            io.Discard,
	})
	if err != nil {
		t.Fatalf("RunCheck gates failed: %v (report: %+v)", err, rep)
	}

	if rep.Errors != 0 {
		t.Fatalf("client errors = %d, want 0", rep.Errors)
	}
	if !rep.ByteIdentical {
		t.Fatal("routed results were not byte-identical to direct runs")
	}
	if rep.Cluster.Dedup < rep.Single.Dedup-1e-9 {
		t.Fatalf("cluster dedup %.2fx below single-node %.2fx", rep.Cluster.Dedup, rep.Single.Dedup)
	}
	if rep.Single.Requests != rep.Cluster.Requests {
		t.Fatalf("phases served different client counts: %d vs %d — dedup ratios not comparable",
			rep.Single.Requests, rep.Cluster.Requests)
	}
	if rep.Rehashes < 1 || rep.Retries < 1 {
		t.Fatalf("kill path not exercised: rehashes=%.0f retries=%.0f", rep.Rehashes, rep.Retries)
	}
	if rep.Cluster.PeerHits < 1 {
		t.Fatal("no cross-replica adoptions: PeerAsk path not exercised")
	}
	if rep.Killed == "" || !rep.Recovered {
		t.Fatalf("kill-and-recover incomplete: killed=%q recovered=%t", rep.Killed, rep.Recovered)
	}

	// The report must serialize into the BENCH_cluster.json shape CI
	// uploads, and round-trip its gate fields.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("BENCH_cluster.json is not valid JSON: %v", err)
	}
	for _, key := range []string{"replicas", "single", "cluster", "killed_replica", "byte_identical", "cluster_dedup_ge_single"} {
		if _, ok := back[key]; !ok {
			t.Fatalf("BENCH_cluster.json missing %q:\n%s", key, buf.String())
		}
	}
}
