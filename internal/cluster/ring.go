// Package cluster grows the single-process pimserve daemon into a
// fleet: a consistent-hash router shards content-addressed job ids
// across N replicas, replicas cross-deduplicate finished jobs over
// HTTP before simulating, and a kill-and-recover check harness gates
// the whole assembly (zero client errors, byte-identical results,
// cluster-wide dedup no worse than single-node).
//
// The job id already is the shard key: serve.JobID is a pure function
// of the request body, so every router instance — and every replica —
// agrees on a job's owner without any coordination state beyond the
// ring membership itself.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring over named nodes. Each node projects
// `vnodes` points onto the 64-bit hash circle; a key is owned by the
// first point clockwise of the key's hash. Removing a node hands
// exactly its own arcs to the survivors and adding it back restores
// them — the property that makes kill-and-recover cheap: only the dead
// replica's shard range ever moves.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	nodes  map[string]bool
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring with `vnodes` points per node
// (<= 0: 64).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, nodes: map[string]bool{}}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts node's points (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit collision across nodes is vanishingly rare but
		// must still order deterministically on every router instance.
		return r.points[i].node < r.points[j].node
	})
}

// Remove drops node's points (idempotent).
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Owner returns the node owning key, or false when the ring is empty.
func (r *Ring) Owner(key string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, true
}

// Has reports node membership.
func (r *Ring) Has(node string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nodes[node]
}

// Nodes lists the members in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}
