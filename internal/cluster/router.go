package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"heteropim/internal/metrics"
	"heteropim/internal/report"
	"heteropim/internal/serve"
)

// Replica names one pimserve backend.
type Replica struct {
	Name    string `json:"name"`
	BaseURL string `json:"base_url"`
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// Replicas is the initial fleet (all assumed ready until a health
	// probe or a forward failure says otherwise).
	Replicas []Replica
	// Vnodes is the ring's points-per-replica (<= 0: 64).
	Vnodes int
	// HealthInterval is the readiness-probe period (<= 0: 500ms). A
	// replica whose /readyz stops returning 200 — a SIGTERM'd replica
	// flips it to 503 the moment it starts draining — is marked
	// unready and its shard range is re-hashed to the survivors; when
	// it comes back, its range comes back with it.
	HealthInterval time.Duration
	// Client issues the proxied requests (nil: 2-minute timeout).
	Client *http.Client
}

// replicaState is one fleet member as the router sees it.
type replicaState struct {
	name    string
	baseURL string
	ready   bool
}

// Router is the pimserve fleet front door: it owns no simulation state
// at all, only the ring. Jobs are routed to the replica owning their
// content-addressed id, so every duplicate of a cell lands on the same
// replica and deduplicates there; reads follow the same route, with a
// fan-out fallback for jobs stranded on a previous owner by a rehash.
type Router struct {
	ring     *Ring
	reg      *metrics.Registry
	client   *http.Client
	probe    *http.Client
	mux      *http.ServeMux
	interval time.Duration
	start    time.Time

	mu       sync.Mutex
	replicas map[string]*replicaState

	stop     chan struct{}
	stopOnce sync.Once
}

// NewRouter builds a router over the given fleet and starts its health
// loop.
func NewRouter(opts RouterOptions) *Router {
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	interval := opts.HealthInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	rt := &Router{
		ring:     NewRing(opts.Vnodes),
		reg:      metrics.NewRegistry(),
		client:   client,
		probe:    &http.Client{Timeout: 2 * time.Second},
		mux:      http.NewServeMux(),
		interval: interval,
		start:    time.Now(),
		replicas: map[string]*replicaState{},
		stop:     make(chan struct{}),
	}
	for _, r := range opts.Replicas {
		rt.AddReplica(r)
	}
	rt.mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	rt.mux.HandleFunc("POST /v1/replicas", rt.handleReplicaAnnounce)
	rt.mux.HandleFunc("GET /v1/replicas", rt.handleReplicaList)
	rt.mux.HandleFunc("DELETE /v1/replicas/{name}", rt.handleReplicaDepart)
	rt.mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJobGet)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/{rest...}", rt.handleJobGet)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /{$}", rt.handleStatusPage)
	go rt.healthLoop()
	return rt
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Registry exposes the router's metrics registry (heteropim_cluster_*
// once rendered to Prometheus text).
func (rt *Router) Registry() *metrics.Registry { return rt.reg }

// Close stops the health loop. In-flight proxied requests finish.
func (rt *Router) Close() { rt.stopOnce.Do(func() { close(rt.stop) }) }

// AddReplica registers (or re-registers) a fleet member, optimistically
// ready so traffic can flow before the first probe; a failing forward
// or probe demotes it. Recovering a replica under its old name on a
// new address restores exactly its old shard range.
func (rt *Router) AddReplica(r Replica) {
	rt.mu.Lock()
	rt.replicas[r.Name] = &replicaState{name: r.Name, baseURL: r.BaseURL, ready: true}
	rt.mu.Unlock()
	rt.ring.Add(r.Name)
	rt.reg.Set("cluster.replica_ready."+r.Name, 0, 1)
}

// RemoveReplica unregisters a fleet member entirely (scale-down, as
// opposed to the unready state a draining replica enters).
func (rt *Router) RemoveReplica(name string) {
	rt.mu.Lock()
	delete(rt.replicas, name)
	rt.mu.Unlock()
	rt.ring.Remove(name)
	rt.reg.Set("cluster.replica_ready."+name, 0, 0)
}

// ReadyReplicas lists the members currently in the ring.
func (rt *Router) ReadyReplicas() []string { return rt.ring.Nodes() }

// Owner reports which replica currently owns a job id (false when the
// ring is empty) — the clustercheck uses it to pick a victim that
// actually owns live shard ranges.
func (rt *Router) Owner(jobID string) (string, bool) { return rt.ring.Owner(jobID) }

// lookup resolves a replica name to its state.
func (rt *Router) lookup(name string) (replicaState, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	s, ok := rt.replicas[name]
	if !ok {
		return replicaState{}, false
	}
	return *s, true
}

// markUnready pulls a replica's shard range out of the ring (it stays
// a fleet member; the health loop re-adds it when /readyz recovers).
func (rt *Router) markUnready(name, why string) {
	rt.mu.Lock()
	s, ok := rt.replicas[name]
	changed := ok && s.ready
	if changed {
		s.ready = false
	}
	rt.mu.Unlock()
	if changed {
		rt.ring.Remove(name)
		rt.reg.Add("cluster.rehashes", 1)
		rt.reg.Add("cluster.unready."+why, 1)
		rt.reg.Set("cluster.replica_ready."+name, 0, 0)
	}
}

// markReady restores a replica's shard range.
func (rt *Router) markReady(name string) {
	rt.mu.Lock()
	s, ok := rt.replicas[name]
	changed := ok && !s.ready
	if changed {
		s.ready = true
	}
	rt.mu.Unlock()
	if changed {
		rt.ring.Add(name)
		rt.reg.Add("cluster.recoveries", 1)
		rt.reg.Set("cluster.replica_ready."+name, 0, 1)
	}
}

// healthLoop probes every member's /readyz each interval and keeps the
// ring in sync: a draining or dead replica leaves the ring (rehash), a
// recovered one rejoins it.
func (rt *Router) healthLoop() {
	t := time.NewTicker(rt.interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
		}
		rt.mu.Lock()
		members := make([]replicaState, 0, len(rt.replicas))
		for _, s := range rt.replicas {
			members = append(members, *s)
		}
		rt.mu.Unlock()
		for _, m := range members {
			resp, err := rt.probe.Get(m.baseURL + "/readyz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if err != nil || resp.StatusCode != http.StatusOK {
				rt.markUnready(m.name, "probe")
			} else {
				rt.markReady(m.name)
			}
		}
	}
}

// writeError mirrors the replicas' JSON error shape.
func (rt *Router) writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
}

// flushWriter flushes after every write so proxied SSE streams stay
// live end to end.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

// relay copies a backend response to the client, streaming (SSE) when
// the backend streams.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After", "Cache-Control"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	out := io.Writer(w)
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		f, _ := w.(http.Flusher)
		out = flushWriter{w: w, f: f}
	}
	io.Copy(out, resp.Body)
}

// handleSubmit routes one job submission to the shard owner of its
// content-addressed id, re-hashing and retrying when the owner is
// draining (503) or unreachable — the autoscale-friendly path: a
// SIGTERM'd replica stops being an owner after its first rejection,
// and the in-flight submission lands on the range's new owner instead
// of failing back to the client.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	rt.reg.Add("cluster.requests", 1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		rt.reg.Add("cluster.bad_requests", 1)
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: read body: %w", err))
		return
	}
	var req serve.JobRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.reg.Add("cluster.bad_requests", 1)
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad job body: %w", err))
		return
	}
	id, err := serve.JobID(req)
	if err != nil {
		rt.reg.Add("cluster.bad_requests", 1)
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}

	// One attempt per fleet member is enough: every retry removes the
	// failed owner from the ring first.
	attempts := rt.ring.Len() + 1
	for attempt := 0; attempt < attempts; attempt++ {
		owner, ok := rt.ring.Owner(id)
		if !ok {
			break
		}
		rep, ok := rt.lookup(owner)
		if !ok {
			rt.ring.Remove(owner)
			continue
		}
		preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
			rep.baseURL+"/v1/jobs", strings.NewReader(string(body)))
		if err != nil {
			rt.writeError(w, http.StatusInternalServerError, err)
			return
		}
		preq.Header.Set("Content-Type", "application/json")
		resp, err := rt.client.Do(preq)
		if err != nil {
			rt.markUnready(owner, "unreachable")
			rt.reg.Add("cluster.retries", 1)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// The owner is draining: rehash its range and retry the
			// in-flight submission on the new owner.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			rt.markUnready(owner, "draining")
			rt.reg.Add("cluster.retries", 1)
			continue
		}
		rt.reg.Add("cluster.forwarded."+owner, 1)
		rt.relay(w, resp)
		return
	}
	rt.reg.Add("cluster.unroutable", 1)
	rt.writeError(w, http.StatusServiceUnavailable, errors.New("cluster: no ready replica"))
}

// handleJobGet routes job reads by id. The owner is asked first; a 404
// or an unreachable owner falls back to a fan-out over the rest of the
// fleet, because a rehash (or a recovery) may have moved the id's
// range after the job was placed.
func (rt *Router) handleJobGet(w http.ResponseWriter, r *http.Request) {
	rt.reg.Add("cluster.requests", 1)
	id := r.PathValue("id")
	ordered := make([]string, 0, rt.ring.Len())
	if owner, ok := rt.ring.Owner(id); ok {
		ordered = append(ordered, owner)
	}
	for _, n := range rt.ring.Nodes() {
		if len(ordered) == 0 || n != ordered[0] {
			ordered = append(ordered, n)
		}
	}
	for i, name := range ordered {
		rep, ok := rt.lookup(name)
		if !ok {
			continue
		}
		url := rep.baseURL + r.URL.Path
		if r.URL.RawQuery != "" {
			url += "?" + r.URL.RawQuery
		}
		preq, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
		if err != nil {
			rt.writeError(w, http.StatusInternalServerError, err)
			return
		}
		resp, err := rt.client.Do(preq)
		if err != nil {
			rt.markUnready(name, "unreachable")
			continue
		}
		if resp.StatusCode == http.StatusNotFound && i+1 < len(ordered) {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		if i > 0 {
			rt.reg.Add("cluster.reroutes", 1)
		}
		rt.reg.Add("cluster.forwarded."+name, 1)
		rt.relay(w, resp)
		return
	}
	rt.reg.Add("cluster.unroutable", 1)
	rt.writeError(w, http.StatusNotFound, fmt.Errorf("cluster: no replica holds job %q", id))
}

// handleReplicaAnnounce lets a replica register itself: `pimserve
// -announce <router>` POSTs {"name","base_url"} here on startup, so a
// recovered or scaled-up replica joins the ring without the router
// being restarted with a new -backends list. Re-announcing an existing
// name (recovery on a fresh port) restores exactly its old shard range.
func (rt *Router) handleReplicaAnnounce(w http.ResponseWriter, r *http.Request) {
	rt.reg.Add("cluster.requests", 1)
	var rep Replica
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		rt.reg.Add("cluster.bad_requests", 1)
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad replica body: %w", err))
		return
	}
	if rep.Name == "" || rep.BaseURL == "" {
		rt.reg.Add("cluster.bad_requests", 1)
		rt.writeError(w, http.StatusBadRequest, errors.New("cluster: replica needs both name and base_url"))
		return
	}
	if !strings.HasPrefix(rep.BaseURL, "http://") && !strings.HasPrefix(rep.BaseURL, "https://") {
		rt.reg.Add("cluster.bad_requests", 1)
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: replica base_url %q is not an http(s) URL", rep.BaseURL))
		return
	}
	rt.AddReplica(rep)
	rt.reg.Add("cluster.announces", 1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(struct {
		Replica Replica `json:"replica"`
		Ring    int     `json:"ring"`
	}{Replica: rep, Ring: rt.ring.Len()})
}

// handleReplicaDepart is the graceful-drain announcement: a SIGTERM'd
// replica DELETEs itself here before serving out its drain window, so
// the router rehashes its shard range immediately instead of waiting
// for the next health probe (or a 503'd submission) to notice. The
// replica stays a fleet member — if it comes back up and re-announces
// (or its /readyz recovers), its old range is restored.
func (rt *Router) handleReplicaDepart(w http.ResponseWriter, r *http.Request) {
	rt.reg.Add("cluster.requests", 1)
	name := r.PathValue("name")
	if _, ok := rt.lookup(name); !ok {
		rt.reg.Add("cluster.bad_requests", 1)
		rt.writeError(w, http.StatusNotFound, fmt.Errorf("cluster: unknown replica %q", name))
		return
	}
	rt.markUnready(name, "depart")
	rt.reg.Add("cluster.departures", 1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(struct {
		Replica string `json:"replica"`
		Ring    int    `json:"ring"`
	}{Replica: name, Ring: rt.ring.Len()})
}

// ReplicaStatus is one GET /v1/replicas entry.
type ReplicaStatus struct {
	Name    string `json:"name"`
	BaseURL string `json:"base_url"`
	Ready   bool   `json:"ready"`
}

// handleReplicaList reports the fleet as the router sees it, sorted by
// name.
func (rt *Router) handleReplicaList(w http.ResponseWriter, r *http.Request) {
	rt.reg.Add("cluster.requests", 1)
	rt.mu.Lock()
	out := make([]ReplicaStatus, 0, len(rt.replicas))
	for _, s := range rt.replicas {
		out = append(out, ReplicaStatus{Name: s.name, BaseURL: s.baseURL, Ready: s.ready})
	}
	rt.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// Announce registers a replica with a router over the wire — one POST
// to /v1/replicas. The caller owns the retry budget (startup
// announcement races the router's own listener coming up).
func Announce(client *http.Client, routerURL string, rep Replica) error {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	body, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	resp, err := client.Post(routerURL+"/v1/replicas", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: announce to %s: %s: %s", routerURL, resp.Status, strings.TrimSpace(string(data)))
	}
	return nil
}

// Depart announces a graceful drain to a router over the wire — one
// DELETE to /v1/replicas/{name}. Best-effort by design: a dead router
// just means the drain is discovered by probe instead.
func Depart(client *http.Client, routerURL, name string) error {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	req, err := http.NewRequest(http.MethodDelete, routerURL+"/v1/replicas/"+name, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: depart from %s: %s: %s", routerURL, resp.Status, strings.TrimSpace(string(data)))
	}
	return nil
}

// handleMetrics serves the router's own registry (the cluster.* series
// become heteropim_cluster_* in the exposition) — per-replica forward
// counters and readiness gauges, rehash/retry/reroute counters, fleet
// size and uptime.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	total, ready := len(rt.replicas), 0
	for _, s := range rt.replicas {
		if s.ready {
			ready++
		}
	}
	rt.mu.Unlock()
	rt.reg.Set("cluster.replicas", 0, float64(total))
	rt.reg.Set("cluster.replicas_ready", 0, float64(ready))
	rt.reg.Set("cluster.uptime_seconds", 0, time.Since(rt.start).Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.reg.Snapshot().WritePrometheus(w)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports router readiness: at least one replica in the
// ring.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if rt.ring.Len() == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no ready replicas")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleStatusPage renders the fleet as a text table.
func (rt *Router) handleStatusPage(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	members := make([]replicaState, 0, len(rt.replicas))
	for _, s := range rt.replicas {
		members = append(members, *s)
	}
	rt.mu.Unlock()
	sort.Slice(members, func(i, j int) bool { return members[i].name < members[j].name })

	t := &report.Table{
		Title:   "pimserve cluster",
		Columns: []string{"Replica", "Address", "Ready", "Forwarded"},
	}
	for _, m := range members {
		t.AddRow(m.name, m.baseURL,
			fmt.Sprintf("%t", m.ready),
			fmt.Sprintf("%.0f", rt.reg.CounterValue("cluster.forwarded."+m.name)))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"ring=%d rehashes=%.0f retries=%.0f reroutes=%.0f; up %s",
		rt.ring.Len(),
		rt.reg.CounterValue("cluster.rehashes"),
		rt.reg.CounterValue("cluster.retries"),
		rt.reg.CounterValue("cluster.reroutes"),
		time.Since(rt.start).Round(time.Second)))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, t.String())
}
