// Package cliutil holds flag wiring shared by every cmd/ tool, so the
// tools stay consistent (same flag names, same help text, same
// semantics) without five copies of the same four lines.
package cliutil

import (
	"flag"
	"os"

	"heteropim/internal/core"
)

// CacheFlags registers the shared -nocache / -cachedir flags on fs and
// returns the apply function to call after fs.Parse: it pushes the
// parsed values into the simulation result cache. Every CLI calls this
// once before parsing.
func CacheFlags(fs *flag.FlagSet) func() {
	noCache := fs.Bool("nocache", false, "disable the cross-run simulation result cache")
	cacheDir := fs.String("cachedir", os.Getenv(core.EnvCacheDir),
		"on-disk simulation cache directory (default $HETEROPIM_CACHE_DIR; empty = memory-only cache)")
	return func() {
		core.EnableResultCache(!*noCache)
		core.SetResultCacheDir(*cacheDir)
	}
}
