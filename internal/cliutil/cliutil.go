// Package cliutil holds flag wiring shared by every cmd/ tool, so the
// tools stay consistent (same flag names, same help text, same
// semantics) without five copies of the same four lines.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"heteropim/internal/core"
)

// CacheFlags registers the shared -nocache / -cachedir flags on fs and
// returns the apply function to call after fs.Parse: it pushes the
// parsed values into the simulation result cache. Every CLI calls this
// once before parsing.
func CacheFlags(fs *flag.FlagSet) func() {
	noCache := fs.Bool("nocache", false, "disable the cross-run simulation result cache")
	cacheDir := fs.String("cachedir", os.Getenv(core.EnvCacheDir),
		"on-disk simulation cache directory (default $HETEROPIM_CACHE_DIR; empty = memory-only cache)")
	return func() {
		core.EnableResultCache(!*noCache)
		core.SetResultCacheDir(*cacheDir)
	}
}

// ProfileFlags registers the shared -cpuprofile / -memprofile flags on
// fs and returns the start function to call after fs.Parse. Start
// begins CPU profiling (if requested) and returns the stop function the
// caller must defer: it stops the CPU profile and writes the heap
// profile. Errors are fatal — a profiling run with a silently missing
// profile is worse than no run.
func ProfileFlags(fs *flag.FlagSet) func() func() {
	cpuProf := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fatal := func(err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", fs.Name(), err)
		os.Exit(1)
	}
	return func() func() {
		var cpuFile *os.File
		if *cpuProf != "" {
			f, err := os.Create(*cpuProf)
			if err != nil {
				fatal(err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fatal(err)
			}
			cpuFile = f
		}
		return func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fatal(err)
				}
			}
			if *memProf != "" {
				f, err := os.Create(*memProf)
				if err != nil {
					fatal(err)
				}
				runtime.GC() // settle allocations so the heap profile is meaningful
				if err := pprof.WriteHeapProfile(f); err != nil {
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}
		}
	}
}
