package cliutil

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"heteropim"
)

// ScenarioFlag registers the shared -scenario flag on fs and returns
// the load function to call after fs.Parse: it reads and compiles the
// scenario file, or returns (nil, nil) when the flag was not given.
// Every CLI exposes the same flag name and semantics through this.
func ScenarioFlag(fs *flag.FlagSet) func() (*heteropim.ScenarioPlan, error) {
	path := fs.String("scenario", "", "run a declarative scenario file (JSON, see README \"Scenarios\") instead of flag-driven cells")
	return func() (*heteropim.ScenarioPlan, error) {
		if *path == "" {
			return nil, nil
		}
		return LoadScenario(*path)
	}
}

// LoadScenario reads and compiles a scenario file.
func LoadScenario(path string) (*heteropim.ScenarioPlan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	plan, err := heteropim.CompileScenario(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return plan, nil
}

// FormatSweepFloat renders a float the way every sweep CSV does.
func FormatSweepFloat(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// scenarioAxes are the prefix columns a compiled plan can need, in
// fixed order: option axes first, platform last (matching the legacy
// sweeps' model,...,config layout).
var scenarioAxes = []struct {
	name  string
	value func(c heteropim.BatchCell) string
}{
	{"freq_scale", func(c heteropim.BatchCell) string {
		s := c.FreqScale
		if s == 0 {
			s = 1
		}
		return FormatSweepFloat(s)
	}},
	{"batch", func(c heteropim.BatchCell) string {
		if c.BatchSize == 0 {
			return "-"
		}
		return strconv.Itoa(c.BatchSize)
	}},
	{"stacks", func(c heteropim.BatchCell) string {
		if c.Stacks < 1 {
			return "1"
		}
		return strconv.Itoa(c.Stacks)
	}},
	{"allreduce", func(c heteropim.BatchCell) string {
		if c.Stacks > 1 {
			return c.AllReduce
		}
		return "-" // no gradient exchange on one stack
	}},
	{"rc", func(c heteropim.BatchCell) string {
		if c.Variant == nil {
			return "-"
		}
		return strconv.FormatBool(c.Variant.RecursiveKernels)
	}},
	{"op", func(c heteropim.BatchCell) string {
		if c.Variant == nil {
			return "-"
		}
		return strconv.FormatBool(c.Variant.OperationPipeline)
	}},
	{"processors", func(c heteropim.BatchCell) string {
		if c.Processors == 0 {
			return "-"
		}
		return strconv.Itoa(c.Processors)
	}},
	{"config", func(c heteropim.BatchCell) string {
		if c.Variant != nil || c.Processors > 0 {
			return "-" // variant/processor cells are Hetero PIM by construction
		}
		return c.Config.String()
	}},
}

var scenarioResultCols = []string{"step_s", "operation_s", "datamove_s", "sync_s",
	"energy_j", "power_w", "edp_js", "fixed_util"}

// ScenarioRows runs a compiled plan through BatchRun and builds the
// adaptive sweep rows: the model column, then every axis column with
// more than one distinct value across the plan, then the result
// columns (plus the multi-stack split columns when any cell shards
// across stacks). Both the CSV form (pimsweep, pimbench -csv) and the
// text-table form (pimbench) render these rows.
func ScenarioRows(plan *heteropim.ScenarioPlan) (header []string, rows [][]string, err error) {
	var active []int
	for ai, axis := range scenarioAxes {
		distinct := map[string]bool{}
		for _, c := range plan.Cells {
			distinct[axis.value(c)] = true
			if len(distinct) > 1 {
				active = append(active, ai)
				break
			}
		}
	}
	multiStack := false
	for _, c := range plan.Cells {
		if c.Stacks > 1 {
			multiStack = true
			break
		}
	}

	header = []string{"model"}
	for _, ai := range active {
		header = append(header, scenarioAxes[ai].name)
	}
	header = append(header, scenarioResultCols...)
	if multiStack {
		header = append(header, "stack_step_s", "allreduce_s")
	}

	results, err := heteropim.BatchRun(plan.Cells)
	if err != nil {
		return nil, nil, err
	}
	f := FormatSweepFloat
	for i, r := range results {
		c := plan.Cells[i]
		row := []string{string(c.Model)}
		for _, ai := range active {
			row = append(row, scenarioAxes[ai].value(c))
		}
		row = append(row,
			f(r.StepTime), f(r.Breakdown.Operation), f(r.Breakdown.DataMovement),
			f(r.Breakdown.Sync), f(r.Energy), f(r.AvgPower), f(r.EDP),
			f(r.FixedUtilization))
		if multiStack {
			row = append(row, f(r.StackStepTime), f(r.AllReduceTime))
		}
		rows = append(rows, row)
	}
	return header, rows, nil
}

// WriteScenarioCSV writes a compiled plan as the adaptive sweep CSV
// (see ScenarioRows). For the builtin sweep scenarios this reproduces
// the legacy flag-driven pimsweep output byte for byte — the CI
// scenario-smoke diff holds it to that.
func WriteScenarioCSV(w *csv.Writer, plan *heteropim.ScenarioPlan) error {
	header, rows, err := ScenarioRows(plan)
	if err != nil {
		return err
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}
