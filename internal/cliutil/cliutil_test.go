package cliutil

import (
	"flag"
	"testing"

	"heteropim/internal/core"
)

// TestCacheFlags checks the registered flags parse and apply to the
// result-cache knobs, and that defaults restore the enabled state.
func TestCacheFlags(t *testing.T) {
	defer func() {
		core.EnableResultCache(true)
		core.SetResultCacheDir("")
	}()

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	apply := CacheFlags(fs)
	if err := fs.Parse([]string{"-nocache", "-cachedir", "/tmp/heteropim-cliutil-test"}); err != nil {
		t.Fatal(err)
	}
	apply()
	if core.EnableResultCache(true) { // returns previous state
		t.Fatal("-nocache did not disable the result cache")
	}
	if got := core.SetResultCacheDir(""); got != "/tmp/heteropim-cliutil-test" {
		t.Fatalf("cache dir = %q, want /tmp/heteropim-cliutil-test", got)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	apply = CacheFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	apply()
	if !core.EnableResultCache(true) {
		t.Fatal("default flags must leave the cache enabled")
	}
}
