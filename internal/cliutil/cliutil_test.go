package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"heteropim/internal/core"
)

// TestCacheFlags checks the registered flags parse and apply to the
// result-cache knobs, and that defaults restore the enabled state.
func TestCacheFlags(t *testing.T) {
	defer func() {
		core.EnableResultCache(true)
		core.SetResultCacheDir("")
	}()

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	apply := CacheFlags(fs)
	if err := fs.Parse([]string{"-nocache", "-cachedir", "/tmp/heteropim-cliutil-test"}); err != nil {
		t.Fatal(err)
	}
	apply()
	if core.EnableResultCache(true) { // returns previous state
		t.Fatal("-nocache did not disable the result cache")
	}
	if got := core.SetResultCacheDir(""); got != "/tmp/heteropim-cliutil-test" {
		t.Fatalf("cache dir = %q, want /tmp/heteropim-cliutil-test", got)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	apply = CacheFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	apply()
	if !core.EnableResultCache(true) {
		t.Fatal("default flags must leave the cache enabled")
	}
}

// TestProfileFlags checks the profile files are created and non-empty,
// and that the default (no flags) run is a no-op.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	start := ProfileFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	stop := start()
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	stop()
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	start = ProfileFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	start()() // no flags: both phases are no-ops
}
