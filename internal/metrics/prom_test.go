package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// TestWritePrometheus pins the exposition format: sanitized names,
// counter/gauge/histogram sections, cumulative buckets ending at +Inf,
// and byte-determinism across identical registries.
func TestWritePrometheus(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Add("serve.requests", 3)
		r.Set("serve.queue_depth", 0, 2)
		r.Observe("http.seconds.post-jobs", 5e-7) // first bucket <= 1e-6
		r.Observe("http.seconds.post-jobs", 0.5)  // bucket <= 1
		r.Observe("http.seconds.post-jobs", 100)  // +Inf bucket
		return r
	}
	var buf bytes.Buffer
	if err := build().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE heteropim_serve_requests counter",
		"heteropim_serve_requests 3",
		"# TYPE heteropim_serve_queue_depth gauge",
		"heteropim_serve_queue_depth 2",
		"# TYPE heteropim_http_seconds_post_jobs histogram",
		`heteropim_http_seconds_post_jobs_bucket{le="1e-06"} 1`,
		`heteropim_http_seconds_post_jobs_bucket{le="1"} 2`,
		`heteropim_http_seconds_post_jobs_bucket{le="+Inf"} 3`,
		"heteropim_http_seconds_post_jobs_sum 100.5",
		"heteropim_http_seconds_post_jobs_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}

	var again bytes.Buffer
	if err := build().Snapshot().WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("identical registries must serialize to identical bytes")
	}
}

// TestPromName pins the name sanitization rules.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sim.events":       "heteropim_sim_events",
		"busy_seconds.a:b": "heteropim_busy_seconds_a:b",
		"odd name-9":       "heteropim_odd_name_9",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
