package metrics

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"heteropim/internal/hw"
	"heteropim/internal/sim"
)

// Collector implements sim.Collector: it records task spans into a
// timeline, folds durations and counts into a Registry, and keeps gauge
// time series for counter tracks. Every method takes the collector
// lock, so one Collector may be shared across concurrent simulation
// runs (the parallel-sweep race test does exactly that); spans from
// different runs land in emission order.
type Collector struct {
	mu     sync.Mutex
	reg    *Registry
	spans  []Span
	series map[string][]SamplePoint
	// maxEnd tracks the observed makespan for busy-share derivation.
	maxEnd float64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{reg: NewRegistry(), series: map[string][]SamplePoint{}}
}

// TaskStart counts span starts per track.
func (c *Collector) TaskStart(t sim.Task) {
	c.reg.Add("starts."+t.Track, 1)
}

// TaskEnd records the completed span and aggregates its duration.
func (c *Collector) TaskEnd(t sim.Task) {
	dur := float64(t.End - t.Start)
	c.mu.Lock()
	c.spans = append(c.spans, Span{
		Track: t.Track, Name: t.Name, Kind: t.Kind, Step: t.Step,
		Start: float64(t.Start), End: float64(t.End),
	})
	if float64(t.End) > c.maxEnd {
		c.maxEnd = float64(t.End)
	}
	c.mu.Unlock()
	c.reg.Add("busy_seconds."+t.Track, dur)
	c.reg.Observe("span_seconds."+t.Track, dur)
}

// Sample appends to the gauge's time series and updates its last value.
func (c *Collector) Sample(name string, at hw.Seconds, v float64) {
	c.mu.Lock()
	c.series[name] = append(c.series[name], SamplePoint{At: float64(at), Value: v})
	c.mu.Unlock()
	c.reg.Set(name, float64(at), v)
}

// Count accumulates a registry counter.
func (c *Collector) Count(name string, delta float64) { c.reg.Add(name, delta) }

// Registry exposes the underlying registry (shared, concurrency-safe).
func (c *Collector) Registry() *Registry { return c.reg }

// Timeline copies the recorded spans and series.
func (c *Collector) Timeline() *Timeline {
	c.mu.Lock()
	defer c.mu.Unlock()
	tl := &Timeline{Spans: append([]Span(nil), c.spans...)}
	if len(c.series) > 0 {
		tl.Series = make(map[string][]SamplePoint, len(c.series))
		for name, pts := range c.series {
			tl.Series[name] = append([]SamplePoint(nil), pts...)
		}
	}
	return tl
}

// WriteChromeTrace exports the recorded timeline in Chrome trace-event
// JSON (Perfetto / chrome://tracing).
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	return c.Timeline().WriteChromeTrace(w)
}

// TrackStat summarizes one device track over the run.
type TrackStat struct {
	Track string `json:"track"`
	// BusySeconds is the summed span time on the track (unit-seconds
	// when lanes overlap).
	BusySeconds float64 `json:"busy_seconds"`
	// BusyShare is BusySeconds / makespan; > 1 means the track ran
	// more than one lane in parallel on average.
	BusyShare float64 `json:"busy_share"`
	Spans     int     `json:"spans"`
	// TopOp is the operation with the most summed span time on this
	// track (the advisor's stall attribution).
	TopOp        string  `json:"top_op,omitempty"`
	TopOpSeconds float64 `json:"top_op_seconds,omitempty"`
}

// OpStat aggregates span time per operation name.
type OpStat struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Spans   int     `json:"spans"`
}

// Snapshot is the machine-readable metrics dump of one instrumented
// run: the registry plus derived per-track and per-op aggregates.
type Snapshot struct {
	// Makespan is the latest span end observed (simulated seconds).
	Makespan float64     `json:"makespan"`
	Tracks   []TrackStat `json:"tracks"`
	// TopOps are the operations with the most summed span time,
	// descending, capped at 15.
	TopOps []OpStat `json:"top_ops"`
	RegistrySnapshot
}

// maxTopOps caps the per-op aggregate list in a snapshot.
const maxTopOps = 15

// Snapshot derives the metrics dump from the recorded state.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	type agg struct {
		secs  float64
		spans int
	}
	accumulate := func(m map[string]*agg, key string, dur float64) {
		a, ok := m[key]
		if !ok {
			a = &agg{}
			m[key] = a
		}
		a.secs += dur
		a.spans++
	}
	tracks := map[string]*agg{}
	ops := map[string]*agg{}
	trackOps := map[string]map[string]*agg{}
	for _, s := range c.spans {
		dur := s.End - s.Start
		accumulate(tracks, s.Track, dur)
		accumulate(ops, s.Name, dur)
		to, ok := trackOps[s.Track]
		if !ok {
			to = map[string]*agg{}
			trackOps[s.Track] = to
		}
		accumulate(to, s.Name, dur)
	}
	makespan := c.maxEnd
	c.mu.Unlock()

	snap := Snapshot{Makespan: makespan, RegistrySnapshot: c.reg.Snapshot()}
	for name, a := range tracks {
		ts := TrackStat{Track: name, BusySeconds: a.secs, Spans: a.spans}
		if makespan > 0 {
			ts.BusyShare = a.secs / makespan
		}
		for op, oa := range trackOps[name] {
			if oa.secs > ts.TopOpSeconds || (oa.secs == ts.TopOpSeconds && (ts.TopOp == "" || op < ts.TopOp)) {
				ts.TopOp, ts.TopOpSeconds = op, oa.secs
			}
		}
		snap.Tracks = append(snap.Tracks, ts)
	}
	sort.Slice(snap.Tracks, func(i, j int) bool { return snap.Tracks[i].Track < snap.Tracks[j].Track })
	for name, a := range ops {
		snap.TopOps = append(snap.TopOps, OpStat{Name: name, Seconds: a.secs, Spans: a.spans})
	}
	sort.Slice(snap.TopOps, func(i, j int) bool {
		if snap.TopOps[i].Seconds != snap.TopOps[j].Seconds {
			return snap.TopOps[i].Seconds > snap.TopOps[j].Seconds
		}
		return snap.TopOps[i].Name < snap.TopOps[j].Name
	})
	if len(snap.TopOps) > maxTopOps {
		snap.TopOps = snap.TopOps[:maxTopOps]
	}
	return snap
}

// WriteJSON writes the full metrics dump (snapshot) as indented JSON.
func (c *Collector) WriteJSON(w io.Writer) error {
	return c.Snapshot().WriteJSON(w)
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
