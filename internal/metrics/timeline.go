package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Span is one completed interval of device work on a named track.
type Span struct {
	// Track is the device lane: "cpu", "prog", "fixed", "residual.prog", ...
	Track string `json:"track"`
	// Name is the operation (or kernel section) the span executed.
	Name string `json:"name"`
	// Kind is the lifecycle phase: "op", "section", "residual".
	Kind string `json:"kind,omitempty"`
	// Step is the training step the work belongs to.
	Step int `json:"step"`
	// Start and End are simulated seconds.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// SamplePoint is one gauge observation in a time series.
type SamplePoint struct {
	At    float64 `json:"at"`
	Value float64 `json:"value"`
}

// Timeline holds the spans and gauge series of one (or several merged)
// instrumented runs.
type Timeline struct {
	Spans []Span `json:"spans"`
	// Series maps a gauge name (queue depth, busy units, pipeline
	// occupancy) to its samples in emission order.
	Series map[string][]SamplePoint `json:"series,omitempty"`
}

// TraceEvent is one Chrome trace-event object (the subset of the
// trace-event format the exporter emits: "X" complete events, "C"
// counter events, and "M" metadata).
type TraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object form of the trace-event format, which
// both Perfetto and chrome://tracing load directly.
type ChromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// tracePID is the single "process" all simulator tracks live under.
const tracePID = 1

// usec converts simulated seconds to trace-event microseconds.
func usec(s float64) float64 { return s * 1e6 }

// ChromeTrace renders the timeline as trace events: one named thread
// per track (with extra lanes where spans overlap, since trace threads
// must nest), plus one counter track per gauge series. Output is
// deterministic: tracks sort by name, spans by (start, end, name, step).
func (tl *Timeline) ChromeTrace() ChromeTrace {
	byTrack := map[string][]Span{}
	for _, s := range tl.Spans {
		byTrack[s.Track] = append(byTrack[s.Track], s)
	}
	tracks := make([]string, 0, len(byTrack))
	for t := range byTrack {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)

	out := ChromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents, TraceEvent{
		Name: "process_name", Phase: "M", PID: tracePID, TID: 0,
		Args: map[string]any{"name": "heteropim simulation"},
	})
	tid := 0
	for _, track := range tracks {
		spans := byTrack[track]
		sort.Slice(spans, func(i, j int) bool {
			a, b := spans[i], spans[j]
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			if a.End != b.End {
				return a.End < b.End
			}
			if a.Name != b.Name {
				return a.Name < b.Name
			}
			return a.Step < b.Step
		})
		// Overlapping spans go to separate lanes (trace-event threads
		// require properly nested intervals): greedy first-free-lane
		// assignment over the start-sorted spans.
		var laneEnd []float64
		laneOf := make([]int, len(spans))
		for i, s := range spans {
			lane := -1
			for l, end := range laneEnd {
				if end <= s.Start {
					lane = l
					break
				}
			}
			if lane < 0 {
				lane = len(laneEnd)
				laneEnd = append(laneEnd, 0)
			}
			laneEnd[lane] = s.End
			laneOf[i] = lane
		}
		laneTID := make([]int, len(laneEnd))
		for l := range laneEnd {
			tid++
			laneTID[l] = tid
			name := track
			if l > 0 {
				name = fmt.Sprintf("%s #%d", track, l+1)
			}
			out.TraceEvents = append(out.TraceEvents, TraceEvent{
				Name: "thread_name", Phase: "M", PID: tracePID, TID: tid,
				Args: map[string]any{"name": name},
			})
		}
		for i, s := range spans {
			out.TraceEvents = append(out.TraceEvents, TraceEvent{
				Name: s.Name, Phase: "X", Cat: s.Kind,
				TS: usec(s.Start), Dur: usec(s.End - s.Start),
				PID: tracePID, TID: laneTID[laneOf[i]],
				Args: map[string]any{"step": s.Step},
			})
		}
	}
	series := make([]string, 0, len(tl.Series))
	for name := range tl.Series {
		series = append(series, name)
	}
	sort.Strings(series)
	for _, name := range series {
		for _, p := range tl.Series[name] {
			out.TraceEvents = append(out.TraceEvents, TraceEvent{
				Name: name, Phase: "C", TS: usec(p.At),
				PID: tracePID, TID: 0,
				Args: map[string]any{"value": p.Value},
			})
		}
	}
	return out
}

// WriteChromeTrace writes the timeline in Chrome trace-event JSON.
func (tl *Timeline) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(tl.ChromeTrace())
}

// Validate checks structural invariants of an exported trace: known
// phases, non-negative timestamps and durations, named events, a
// thread_name for every tid that carries spans. It is the same check
// the schema round-trip test applies to CLI output.
func (ct ChromeTrace) Validate() error {
	named := map[int]bool{}
	for _, ev := range ct.TraceEvents {
		if ev.Phase == "M" && ev.Name == "thread_name" {
			named[ev.TID] = true
		}
	}
	for i, ev := range ct.TraceEvents {
		switch ev.Phase {
		case "X":
			if ev.Name == "" {
				return fmt.Errorf("metrics: event %d: empty span name", i)
			}
			if ev.TS < 0 || ev.Dur < 0 {
				return fmt.Errorf("metrics: event %d (%s): negative ts/dur", i, ev.Name)
			}
			if !named[ev.TID] {
				return fmt.Errorf("metrics: event %d (%s): tid %d has no thread_name metadata", i, ev.Name, ev.TID)
			}
		case "C":
			if ev.Name == "" {
				return fmt.Errorf("metrics: event %d: empty counter name", i)
			}
			if ev.TS < 0 {
				return fmt.Errorf("metrics: event %d (%s): negative ts", i, ev.Name)
			}
			if _, ok := ev.Args["value"]; !ok {
				return fmt.Errorf("metrics: event %d (%s): counter without value", i, ev.Name)
			}
		case "M":
			// metadata
		default:
			return fmt.Errorf("metrics: event %d (%s): unexpected phase %q", i, ev.Name, ev.Phase)
		}
		if ev.PID != tracePID {
			return fmt.Errorf("metrics: event %d (%s): pid %d != %d", i, ev.Name, ev.PID, tracePID)
		}
	}
	return nil
}
