// Package metrics is the simulator's observability layer: a registry of
// named counters, gauges and histograms, a per-device span timeline, a
// Chrome trace-event exporter (loadable in Perfetto / chrome://tracing),
// a machine-readable JSON metrics dump, and a tfprof-style advisor.
//
// The package plays the role tfprof's timeline/scalar infrastructure
// plays for TensorFlow: every simulation can explain where its time went
// on which device, bank or pipeline stage. Collectors observe, never
// steer — attaching one must not change any simulation outcome.
package metrics

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
)

// defaultBuckets are decade buckets over seconds: they cover the span
// durations the simulator produces (microsecond kernels to multi-second
// macro operations). The last implicit bucket is +Inf.
var defaultBuckets = []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// histogram accumulates observations into fixed buckets.
type histogram struct {
	bounds []float64
	counts []int64
	sum    float64
	min    float64
	max    float64
	n      int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]int64, len(bounds)+1), min: math.Inf(1), max: math.Inf(-1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// gauge keeps the last set value and when it was set.
type gauge struct {
	at, v float64
}

// Registry is a mutex-protected collection of named metrics. One
// registry may be shared by concurrent simulation runs (every method is
// atomic under the registry lock); snapshots are deterministic — all
// series are emitted in sorted name order.
type Registry struct {
	mu       sync.Mutex
	counters map[string]float64
	gauges   map[string]gauge
	hists    map[string]*histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]float64{},
		gauges:   map[string]gauge{},
		hists:    map[string]*histogram{},
	}
}

// Add accumulates delta into the named counter.
func (r *Registry) Add(name string, delta float64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Set records the named gauge's value at time `at`.
func (r *Registry) Set(name string, at, v float64) {
	r.mu.Lock()
	r.gauges[name] = gauge{at: at, v: v}
	r.mu.Unlock()
}

// Observe adds one observation to the named histogram (decade buckets
// over seconds).
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(defaultBuckets)
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// CounterValue reads one counter (0 when absent).
func (r *Registry) CounterValue(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// GaugeValue reads one gauge's last set value (0 when absent). The
// cluster router uses it to read per-replica readiness gauges back out
// of its own registry for the status page and the clustercheck gates.
func (r *Registry) GaugeValue(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name].v
}

// NamedValue is one counter or gauge in a snapshot.
type NamedValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramSnapshot is one histogram in a snapshot. Buckets[i] counts
// observations <= Bounds[i]; the final bucket counts the rest.
type HistogramSnapshot struct {
	Name    string    `json:"name"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// RegistrySnapshot is a point-in-time copy of a registry, ordered by
// metric name so identical runs serialize to identical bytes.
type RegistrySnapshot struct {
	Counters   []NamedValue        `json:"counters"`
	Gauges     []NamedValue        `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s RegistrySnapshot
	for name, v := range r.counters {
		s.Counters = append(s.Counters, NamedValue{Name: name, Value: v})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedValue{Name: name, Value: g.v})
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Name: name, Count: h.n, Sum: h.sum, Min: h.min, Max: h.max,
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: append([]int64(nil), h.counts...),
		}
		if h.n == 0 {
			hs.Min, hs.Max = 0, 0
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s RegistrySnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
