package metrics

import (
	"fmt"
	"strings"
)

// Advice is the tfprof-style advisor's reading of one metrics snapshot:
// which device the run wasted, and which operation gated it.
type Advice struct {
	// Bottleneck is the device track with the highest busy share.
	Bottleneck string
	// Underutilized is the device track with the lowest busy share.
	Underutilized string
	// StallOp is the operation most responsible for stalls: the op with
	// the largest summed span time on the bottleneck device.
	StallOp string
	// Lines is the rendered report.
	Lines []string
}

// deviceTrack reports whether a track is a primary device lane (as
// opposed to a derived lane like "residual.prog").
func deviceTrack(name string) bool { return !strings.Contains(name, ".") }

// Advise reads a snapshot and produces the advisor report. It returns
// a zero-value Advice (with one explanatory line) when the snapshot
// has no device spans to reason about.
func Advise(s Snapshot) Advice {
	var a Advice
	var devices []TrackStat
	for _, t := range s.Tracks {
		if deviceTrack(t.Track) {
			devices = append(devices, t)
		}
	}
	if len(devices) == 0 || s.Makespan <= 0 {
		a.Lines = []string{"advisor: no device spans recorded (was the run instrumented?)"}
		return a
	}
	lo, hi := devices[0], devices[0]
	for _, d := range devices[1:] {
		if d.BusyShare < lo.BusyShare {
			lo = d
		}
		if d.BusyShare > hi.BusyShare {
			hi = d
		}
	}
	a.Bottleneck, a.Underutilized = hi.Track, lo.Track
	// The op gating the run: whatever dominates the bottleneck device
	// gates the makespan.
	a.StallOp = hi.TopOp

	a.Lines = append(a.Lines,
		fmt.Sprintf("advisor: bottleneck device is %q: busy %.1f%% of the %.3fs makespan (%.3fs over %d spans)",
			hi.Track, 100*hi.BusyShare, s.Makespan, hi.BusySeconds, hi.Spans),
		fmt.Sprintf("advisor: top underutilized device is %q: idle %.1f%% of the makespan (busy %.3fs)",
			lo.Track, 100*(1-min1(lo.BusyShare)), lo.BusySeconds))
	if a.StallOp != "" {
		a.Lines = append(a.Lines,
			fmt.Sprintf("advisor: op most responsible for stalls is %q: %.3fs on %q (%.1f%% of the makespan)",
				a.StallOp, hi.TopOpSeconds, hi.Track, 100*hi.TopOpSeconds/s.Makespan))
	}
	if fb := counterValue(s.RegistrySnapshot, "sched.cpu_fallback"); fb > 0 {
		a.Lines = append(a.Lines,
			fmt.Sprintf("advisor: %d operations fell back to the CPU because programmable PIMs were busy — more processors or deeper pipelining may help", int(fb)))
	}
	if lo.BusyShare < 0.5 {
		a.Lines = append(a.Lines,
			fmt.Sprintf("advisor: consider steering more work to %q (e.g. lower the selection x%% threshold or enable OP) to close its idle window", lo.Track))
	}
	return a
}

// String renders the advice report.
func (a Advice) String() string { return strings.Join(a.Lines, "\n") }

// counterValue finds a counter in a snapshot (0 when absent).
func counterValue(s RegistrySnapshot, name string) float64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// min1 clamps a share to 1 (multi-lane tracks can exceed it).
func min1(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}
