package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition of a registry snapshot — the format every
// scraper (Prometheus, VictoriaMetrics, Grafana Agent) ingests without
// client libraries. Emission order follows the snapshot's sorted name
// order, so identical registries serialize to identical bytes.

// promNamePrefix namespaces every exported series.
const promNamePrefix = "heteropim_"

// promName maps a registry metric name ("serve.queue_depth",
// "span_seconds.fixed") to a legal Prometheus metric name: characters
// outside [a-zA-Z0-9_:] become underscores.
func promName(name string) string {
	var b strings.Builder
	b.WriteString(promNamePrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value; Prometheus spells infinities as
// +Inf/-Inf.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket series plus _sum and _count.
func (s RegistrySnapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, c := range s.Counters {
		name := promName(c.Name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %s\n", name, name, promFloat(c.Value))
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", name, name, promFloat(g.Value))
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", name)
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum)
		}
		if n := len(h.Bounds); n < len(h.Buckets) {
			cum += h.Buckets[n]
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(&b, "%s_sum %s\n", name, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
