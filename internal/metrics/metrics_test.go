package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"heteropim/internal/sim"
)

// TestRegistrySnapshotDeterminism checks two identically-fed registries
// serialize to identical bytes (sorted series, stable buckets).
func TestRegistrySnapshotDeterminism(t *testing.T) {
	feed := func() *Registry {
		r := NewRegistry()
		r.Add("zeta", 2)
		r.Add("alpha", 1)
		r.Set("gauge.b", 1, 4)
		r.Set("gauge.a", 2, 7)
		r.Observe("hist.x", 1e-5)
		r.Observe("hist.x", 3)
		return r
	}
	var a, b bytes.Buffer
	if err := feed().Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := feed().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), `"alpha"`) {
		t.Fatal("snapshot lost a counter")
	}
}

// TestHistogramBuckets checks observations land in the right buckets.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	r.Observe("dur", 5e-6) // <= 1e-5 bucket (index 2)
	r.Observe("dur", 100)  // overflow bucket
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("got %d histograms, want 1", len(s.Histograms))
	}
	h := s.Histograms[0]
	if h.Count != 2 || h.Min != 5e-6 || h.Max != 100 {
		t.Fatalf("histogram stats wrong: %+v", h)
	}
	if h.Buckets[2] != 1 || h.Buckets[len(h.Buckets)-1] != 1 {
		t.Fatalf("bucket placement wrong: %v", h.Buckets)
	}
	if len(h.Buckets) != len(h.Bounds)+1 {
		t.Fatalf("bucket/bound count mismatch: %d vs %d", len(h.Buckets), len(h.Bounds))
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines;
// meaningful under -race, and the totals must still add up.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Add("n", 1)
				r.Observe("h", 0.5)
				r.Set("g", float64(i), float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.CounterValue("n"); got != workers*per {
		t.Fatalf("counter = %v, want %d", got, workers*per)
	}
}

// span is a test shorthand.
func span(track, name string, step int, start, end float64) sim.Task {
	return sim.Task{Track: track, Name: name, Kind: "op", Step: step, Start: start, End: end}
}

// TestChromeTraceRoundTrip builds a timeline with overlapping spans,
// exports it, re-parses the JSON, and validates the schema: lane
// metadata present, spans non-overlapping per tid, counters carried.
func TestChromeTraceRoundTrip(t *testing.T) {
	c := NewCollector()
	c.TaskEnd(span("cpu", "Conv2D", 0, 0, 2))
	c.TaskEnd(span("cpu", "MatMul", 0, 1, 3)) // overlaps Conv2D -> second lane
	c.TaskEnd(span("prog", "ReLU", 1, 0.5, 0.75))
	c.Sample("queue.cpu", 0.25, 2)
	c.Sample("queue.cpu", 1.5, 1)
	c.Count("sched.path.cpu", 2)

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if err := ct.Validate(); err != nil {
		t.Fatal(err)
	}

	// The overlapping cpu spans must land on distinct tids, and both
	// tids must be named for the cpu track.
	byTID := map[int][][2]float64{}
	names := map[int]string{}
	var counters int
	for _, ev := range ct.TraceEvents {
		switch {
		case ev.Phase == "M" && ev.Name == "thread_name":
			names[ev.TID] = ev.Args["name"].(string)
		case ev.Phase == "X":
			byTID[ev.TID] = append(byTID[ev.TID], [2]float64{ev.TS, ev.TS + ev.Dur})
		case ev.Phase == "C":
			counters++
		}
	}
	if counters != 2 {
		t.Fatalf("got %d counter events, want 2", counters)
	}
	cpuLanes := 0
	for tid, name := range names {
		if strings.HasPrefix(name, "cpu") {
			cpuLanes++
		}
		spans := byTID[tid]
		for i := 1; i < len(spans); i++ {
			if spans[i][0] < spans[i-1][1] {
				t.Fatalf("tid %d (%s): overlapping spans %v", tid, name, spans)
			}
		}
	}
	if cpuLanes != 2 {
		t.Fatalf("cpu track used %d lanes, want 2 (overlap must split)", cpuLanes)
	}
}

// TestChromeTraceDeterminism checks identical timelines export to
// identical bytes.
func TestChromeTraceDeterminism(t *testing.T) {
	build := func() *Collector {
		c := NewCollector()
		c.TaskEnd(span("fixed", "Conv2DBackpropFilter", 2, 0, 1))
		c.TaskEnd(span("cpu", "BiasAdd", 0, 0, 0.1))
		c.Sample("fixed.busy_units", 0.5, 128)
		return c
	}
	var a, b bytes.Buffer
	if err := build().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("exports differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestSnapshotAndAdvisor checks the derived aggregates and the advisor
// report on a hand-built scenario: cpu busy 90%, prog busy 10%, Conv2D
// dominating the cpu.
func TestSnapshotAndAdvisor(t *testing.T) {
	c := NewCollector()
	c.TaskEnd(span("cpu", "Conv2D", 0, 0, 6))
	c.TaskEnd(span("cpu", "MatMul", 0, 6, 9))
	c.TaskEnd(span("prog", "ReLU", 0, 0, 1))
	c.TaskEnd(span("residual.prog", "Conv2D", 0, 9, 10))
	c.Count("sched.cpu_fallback", 3)

	s := c.Snapshot()
	if s.Makespan != 10 {
		t.Fatalf("makespan = %v, want 10", s.Makespan)
	}
	if len(s.Tracks) != 3 {
		t.Fatalf("got %d tracks, want 3: %+v", len(s.Tracks), s.Tracks)
	}
	cpu := s.Tracks[0]
	if cpu.Track != "cpu" || cpu.BusySeconds != 9 || cpu.BusyShare != 0.9 || cpu.TopOp != "Conv2D" {
		t.Fatalf("cpu track stats wrong: %+v", cpu)
	}
	if s.TopOps[0].Name != "Conv2D" || s.TopOps[0].Seconds != 7 {
		t.Fatalf("top op wrong: %+v", s.TopOps[0])
	}

	a := Advise(s)
	if a.Bottleneck != "cpu" || a.Underutilized != "prog" || a.StallOp != "Conv2D" {
		t.Fatalf("advice wrong: %+v", a)
	}
	text := a.String()
	for _, want := range []string{"bottleneck", "underutilized", "Conv2D", "fell back"} {
		if !strings.Contains(text, want) {
			t.Fatalf("advice text missing %q:\n%s", want, text)
		}
	}
}

// TestAdvisorEmpty checks the advisor degrades gracefully.
func TestAdvisorEmpty(t *testing.T) {
	a := Advise(NewCollector().Snapshot())
	if len(a.Lines) != 1 || !strings.Contains(a.Lines[0], "no device spans") {
		t.Fatalf("empty-snapshot advice wrong: %+v", a)
	}
}

// TestCollectorIsSimCollector pins the interface contract.
var _ sim.Collector = (*Collector)(nil)
