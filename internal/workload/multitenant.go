package workload

import (
	"fmt"

	"heteropim/internal/core"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// TenantSpec describes one job in a multi-tenant co-run: its model and
// whether it is host-restricted (the non-CNN placement policy of
// Section VI-F).
type TenantSpec struct {
	Model nn.ModelName
	// HostOnly restricts the job to the CPU and programmable PIM.
	HostOnly bool
}

// MultiTenantResult is the outcome of co-running N jobs.
type MultiTenantResult struct {
	Tenants []TenantSpec
	// Standalone holds each job's standalone wall-clock on the system
	// (host-restricted jobs measured under their restriction).
	Standalone []hw.Seconds
	// Sequential is the sum of standalone times.
	Sequential hw.Seconds
	// CoRun is the makespan of the combined schedule.
	CoRun hw.Seconds
	// Improvement is Sequential/CoRun - 1.
	Improvement float64
	// Slowdowns[i] is CoRun / Standalone[i]: how much longer tenant i
	// waits for its work versus having the machine to itself — the
	// fairness price of sharing.
	Slowdowns []float64
}

// RunMultiTenant co-schedules N training jobs on one heterogeneous PIM
// system — the generalization of Fig. 16 to more than two tenants
// (multi-tenancy per the paper's Section II motivation). PIM-scheduled
// jobs share the fixed-function pool; host-restricted jobs fill the CPU
// and programmable PIM.
func RunMultiTenant(tenants []TenantSpec) (MultiTenantResult, error) {
	if len(tenants) < 2 {
		return MultiTenantResult{}, fmt.Errorf("workload: multi-tenant run needs at least 2 jobs, got %d", len(tenants))
	}
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	res := MultiTenantResult{Tenants: tenants}

	// Measure each job standalone, then scale every job to the longest
	// one so the tenants hold comparable shares (continuous training,
	// as in Fig. 16's steady state).
	graphs := make([]*nn.Graph, len(tenants))
	base := make([]hw.Seconds, len(tenants))
	longest := hw.Seconds(0)
	for i, t := range tenants {
		g, err := nn.Build(t.Model)
		if err != nil {
			return res, err
		}
		graphs[i] = g
		opts := core.HeteroOptions()
		if t.HostOnly {
			opts.HostOnlyOps = restrictAll(g)
		}
		r, err := core.RunPIM(g, cfg, opts)
		if err != nil {
			return res, err
		}
		base[i] = r.StepTime
		if r.StepTime > longest {
			longest = r.StepTime
		}
	}
	for i := range graphs {
		if k := 0.9 * longest / base[i]; k > 1 {
			graphs[i] = ScaleGraph(graphs[i], k)
		}
		opts := core.HeteroOptions()
		if tenants[i].HostOnly {
			opts.HostOnlyOps = restrictAll(graphs[i])
		}
		r, err := core.RunPIM(graphs[i], cfg, opts)
		if err != nil {
			return res, err
		}
		res.Standalone = append(res.Standalone, r.StepTime)
		res.Sequential += r.StepTime
	}

	// Merge all jobs into one graph; op-ID offsets track restriction.
	combined := &nn.Graph{Model: "multi-tenant", BatchSize: graphs[0].BatchSize,
		GPUUtilization: graphs[0].GPUUtilization, InputBytes: graphs[0].InputBytes}
	restricted := map[int]bool{}
	for i, g := range graphs {
		base := len(combined.Ops)
		for _, op := range g.Ops {
			c := *op
			c.Inputs = make([]int, len(op.Inputs))
			for j, in := range op.Inputs {
				c.Inputs[j] = base + in
			}
			c.CrossStep = nil
			added := combined.AddOp(c)
			if tenants[i].HostOnly {
				restricted[added.ID] = true
			}
		}
		combined.ParamBytes += g.ParamBytes
		combined.ActivationBytes += g.ActivationBytes
	}
	if err := combined.Validate(); err != nil {
		return res, fmt.Errorf("workload: multi-tenant graph: %w", err)
	}
	opts := core.HeteroOptions()
	opts.HostOnlyOps = restricted
	opts.Steps = 2
	r, err := core.RunPIM(combined, cfg, opts)
	if err != nil {
		return res, err
	}
	res.CoRun = r.StepTime
	if res.CoRun > 0 {
		res.Improvement = res.Sequential/res.CoRun - 1
	}
	for _, s := range res.Standalone {
		if s > 0 {
			res.Slowdowns = append(res.Slowdowns, res.CoRun/s)
		} else {
			res.Slowdowns = append(res.Slowdowns, 0)
		}
	}
	return res, nil
}
