// Package workload builds the experiment workloads that go beyond a
// single model: the Section VI-F mixed-workload study, where a CNN
// training model co-runs with a non-CNN model on the same heterogeneous
// PIM system.
package workload

import (
	"context"
	"fmt"

	"heteropim/internal/core"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/runner"
)

// MixedCase is one co-run pairing of Section VI-F.
type MixedCase struct {
	CNN    nn.ModelName
	NonCNN nn.ModelName
}

// Name renders "VGG-19 + LSTM".
func (c MixedCase) Name() string { return string(c.CNN) + " + " + string(c.NonCNN) }

// MixedCases returns the six co-run cases of Fig. 16.
func MixedCases() []MixedCase {
	cnns := []nn.ModelName{nn.VGG19Name, nn.AlexNetName, nn.ResNet50Name}
	nonCNNs := []nn.ModelName{nn.LSTMName, nn.Word2VecName}
	out := make([]MixedCase, 0, len(cnns)*len(nonCNNs))
	for _, c := range cnns {
		for _, n := range nonCNNs {
			out = append(out, MixedCase{CNN: c, NonCNN: n})
		}
	}
	return out
}

// MixedResult is the outcome of one co-run case.
type MixedResult struct {
	Case MixedCase
	// NonCNNSteps is how many non-CNN training steps run per CNN step.
	NonCNNSteps int
	// Sequential is the wall-clock of training the two models one after
	// the other on the heterogeneous PIM system.
	Sequential hw.Seconds
	// CoRun is the wall-clock of the co-scheduled execution: the CNN
	// under the full runtime, the non-CNN restricted to CPU and the
	// programmable PIM.
	CoRun hw.Seconds
	// Improvement is Sequential/CoRun - 1 (the Fig. 16 metric).
	Improvement float64
}

// Combine merges graph a (scheduled normally) with `copies` sequential
// steps of graph b (restricted to host-side devices) into one step
// graph, returning the combined graph and the restricted op-ID set.
func Combine(a, b *nn.Graph, copies int) (*nn.Graph, map[int]bool, error) {
	if copies < 1 {
		return nil, nil, fmt.Errorf("workload: need at least one copy of %s", b.Model)
	}
	g := &nn.Graph{
		Model:                   a.Model + "+" + b.Model,
		BatchSize:               a.BatchSize,
		InputBytes:              a.InputBytes,
		ParamBytes:              a.ParamBytes + b.ParamBytes,
		ActivationBytes:         a.ActivationBytes + b.ActivationBytes,
		GPUUnhiddenTransferFrac: a.GPUUnhiddenTransferFrac,
		GPUUtilization:          a.GPUUtilization,
		GPUEffFactor:            a.GPUEffFactor,
	}
	for _, op := range a.Ops {
		c := *op
		c.Inputs = append([]int(nil), op.Inputs...)
		c.CrossStep = append([]int(nil), op.CrossStep...)
		g.AddOp(c)
	}
	restricted := map[int]bool{}
	prevSinks := []int(nil)
	for copy := 0; copy < copies; copy++ {
		base := len(g.Ops)
		// Track which ops of b have in-copy dependents so copy chaining
		// can hang the next copy off this copy's sinks.
		hasDependent := make([]bool, len(b.Ops))
		for _, op := range b.Ops {
			for _, in := range op.Inputs {
				hasDependent[in] = true
			}
		}
		for _, op := range b.Ops {
			c := *op
			c.Inputs = make([]int, 0, len(op.Inputs)+len(prevSinks))
			for _, in := range op.Inputs {
				c.Inputs = append(c.Inputs, base+in)
			}
			// Sources of copy k>0 wait for copy k-1's sinks (steps of
			// the non-CNN model are sequential).
			if len(op.Inputs) == 0 {
				c.Inputs = append(c.Inputs, prevSinks...)
			}
			c.CrossStep = nil
			added := g.AddOp(c)
			restricted[added.ID] = true
		}
		prevSinks = prevSinks[:0]
		for i := range b.Ops {
			if !hasDependent[i] {
				prevSinks = append(prevSinks, base+i)
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, nil, fmt.Errorf("workload: combined graph: %w", err)
	}
	return g, restricted, nil
}

// ScaleGraph multiplies every operation's work by k, modelling k
// back-to-back training steps of the model as one macro-step (the
// non-CNN job trains continuously; its internal step pipeline amortizes
// per-step dependences).
func ScaleGraph(g *nn.Graph, k float64) *nn.Graph {
	if k < 1 {
		k = 1
	}
	out := &nn.Graph{
		Model:                   g.Model,
		BatchSize:               g.BatchSize,
		InputBytes:              g.InputBytes * k,
		ParamBytes:              g.ParamBytes,
		ActivationBytes:         g.ActivationBytes,
		GPUUnhiddenTransferFrac: g.GPUUnhiddenTransferFrac,
		GPUUtilization:          g.GPUUtilization,
		GPUEffFactor:            g.GPUEffFactor,
	}
	for _, op := range g.Ops {
		c := *op
		c.Muls *= k
		c.Adds *= k
		c.OtherFlops *= k
		c.Bytes *= k
		c.Inputs = append([]int(nil), op.Inputs...)
		c.CrossStep = append([]int(nil), op.CrossStep...)
		out.AddOp(c)
	}
	return out
}

// restrictAll marks every op of a graph host-only.
func restrictAll(g *nn.Graph) map[int]bool {
	out := make(map[int]bool, len(g.Ops))
	for _, op := range g.Ops {
		out[op.ID] = true
	}
	return out
}

// RunMixed simulates one co-run case on the Hetero PIM platform and its
// sequential-execution baseline. In both modes the non-CNN model runs
// on the CPU and the programmable PIM only (its Section VI-F placement
// policy); the co-run overlaps it with the CNN's PIM execution instead
// of running it afterwards.
func RunMixed(c MixedCase) (MixedResult, error) {
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	cnn, err := nn.Build(c.CNN)
	if err != nil {
		return MixedResult{}, err
	}
	non, err := nn.Build(c.NonCNN)
	if err != nil {
		return MixedResult{}, err
	}
	// Standalone CNN step time under the full runtime.
	cnnRes, err := core.RunPIM(cnn, cfg, core.HeteroOptions())
	if err != nil {
		return MixedResult{}, err
	}
	// Standalone non-CNN step time under its host-only policy.
	nonOpts := core.HeteroOptions()
	nonOpts.HostOnlyOps = restrictAll(non)
	nonRes, err := core.RunPIM(non, cfg, nonOpts)
	if err != nil {
		return MixedResult{}, err
	}
	// Scale the non-CNN job so both trainings have comparable
	// standalone durations (both jobs train continuously; Fig. 16
	// measures steady state). The scale is split between a per-op
	// factor (capped so no single operation becomes a multi-second
	// atomic block the host scheduler cannot interleave) and chained
	// copies of the step graph.
	k := cnnRes.StepTime / nonRes.StepTime
	if k < 1 {
		k = 1
	}
	const maxPerOpScale = 64
	perOp := k
	copies := 1
	if perOp > maxPerOpScale {
		copies = int(k/maxPerOpScale + 0.5)
		if copies < 1 {
			copies = 1
		}
		perOp = k / float64(copies)
	}
	scaled := ScaleGraph(non, perOp)
	singleOpts := core.HeteroOptions()
	singleOpts.HostOnlyOps = restrictAll(scaled)
	singleRes, err := core.RunPIM(scaled, cfg, singleOpts)
	if err != nil {
		return MixedResult{}, err
	}
	sequential := cnnRes.StepTime + float64(copies)*singleRes.StepTime

	combined, restricted, err := Combine(cnn, scaled, copies)
	if err != nil {
		return MixedResult{}, err
	}
	opts := core.HeteroOptions()
	opts.HostOnlyOps = restricted
	opts.Steps = 2 // combined graphs are large; two steady-state steps suffice
	coRes, err := core.RunPIM(combined, cfg, opts)
	if err != nil {
		return MixedResult{}, err
	}
	res := MixedResult{
		Case:        c,
		NonCNNSteps: int(perOp*float64(copies) + 0.5),
		Sequential:  sequential,
		CoRun:       coRes.StepTime,
	}
	if res.CoRun > 0 {
		res.Improvement = res.Sequential/res.CoRun - 1
	}
	return res, nil
}

// RunAllMixed runs the six cases of Fig. 16, fanning the independent
// cases out on the worker pool (results stay in case order).
func RunAllMixed() ([]MixedResult, error) {
	cases := MixedCases()
	out, err := runner.Map(context.Background(), len(cases), 0,
		func(_ context.Context, i int) (MixedResult, error) {
			r, err := RunMixed(cases[i])
			if err != nil {
				return MixedResult{}, fmt.Errorf("workload: %s: %w", cases[i].Name(), err)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}
