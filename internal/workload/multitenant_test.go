package workload

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"heteropim/internal/nn"
	"heteropim/internal/runner"
)

// TestMultiTenantDeterminism checks repeated runs of the same tenant
// list are bit-identical, and that per-tenant outputs follow the input
// order (reversing the tenants reverses Standalone/Slowdowns).
func TestMultiTenantDeterminism(t *testing.T) {
	spec := []TenantSpec{
		{Model: nn.AlexNetName},
		{Model: nn.DCGANName, HostOnly: true},
	}
	a, err := RunMultiTenant(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMultiTenant(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated multi-tenant runs differ:\n%+v\nvs\n%+v", a, b)
	}

	rev, err := RunMultiTenant([]TenantSpec{spec[1], spec[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(rev.Standalone) != 2 || len(a.Standalone) != 2 {
		t.Fatalf("expected 2 standalone entries, got %d and %d", len(a.Standalone), len(rev.Standalone))
	}
	if rev.Standalone[0] != a.Standalone[1] || rev.Standalone[1] != a.Standalone[0] {
		t.Fatalf("Standalone does not follow tenant order: %v vs reversed %v", a.Standalone, rev.Standalone)
	}
	if rev.Sequential != a.Sequential {
		t.Fatalf("Sequential must be order-independent: %v vs %v", a.Sequential, rev.Sequential)
	}
}

// TestMultiTenantSingleTenantError pins the under-populated error path:
// zero or one tenant is rejected with a count-carrying message, and the
// zero-value result comes back.
func TestMultiTenantSingleTenantError(t *testing.T) {
	for _, tenants := range [][]TenantSpec{nil, {{Model: nn.AlexNetName}}} {
		res, err := RunMultiTenant(tenants)
		if err == nil {
			t.Fatalf("RunMultiTenant(%d tenants) must fail", len(tenants))
		}
		if !strings.Contains(err.Error(), "at least 2") {
			t.Fatalf("error must explain the 2-job minimum, got: %v", err)
		}
		if res.CoRun != 0 || len(res.Standalone) != 0 {
			t.Fatalf("failed run must not carry partial results: %+v", res)
		}
	}
}

// TestMultiTenantParallelBitIdentity co-runs the same tenant mix on
// several runner.Map workers at once and checks every cell is
// bit-identical to the sequential baseline — the multi-tenant path is
// what pimserve fans out, so it must stay pure under concurrency.
func TestMultiTenantParallelBitIdentity(t *testing.T) {
	spec := []TenantSpec{
		{Model: nn.DCGANName},
		{Model: nn.Word2VecName, HostOnly: true},
	}
	want, err := RunMultiTenant(spec)
	if err != nil {
		t.Fatal(err)
	}
	const cells = 4
	got, err := runner.Map(context.Background(), cells, 4,
		func(context.Context, int) (MultiTenantResult, error) {
			return RunMultiTenant(spec)
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if !reflect.DeepEqual(r, want) {
			t.Fatalf("parallel cell %d differs from sequential baseline:\n%+v\nvs\n%+v", i, r, want)
		}
	}
}
