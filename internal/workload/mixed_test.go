package workload

import (
	"testing"

	"heteropim/internal/nn"
)

func TestMixedCasesAreSix(t *testing.T) {
	cases := MixedCases()
	if len(cases) != 6 {
		t.Fatalf("Fig. 16 has six co-run cases, got %d", len(cases))
	}
	seen := map[string]bool{}
	for _, c := range cases {
		if seen[c.Name()] {
			t.Fatalf("duplicate case %s", c.Name())
		}
		seen[c.Name()] = true
		if c.NonCNN != nn.LSTMName && c.NonCNN != nn.Word2VecName {
			t.Errorf("%s: non-CNN side must be LSTM or Word2vec", c.Name())
		}
	}
}

func TestCombineMergesGraphs(t *testing.T) {
	a := nn.AlexNet()
	b := nn.Word2Vec()
	g, restricted, err := Combine(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Ops) != len(a.Ops)+3*len(b.Ops) {
		t.Fatalf("combined ops = %d, want %d", len(g.Ops), len(a.Ops)+3*len(b.Ops))
	}
	if len(restricted) != 3*len(b.Ops) {
		t.Fatalf("restricted = %d, want %d", len(restricted), 3*len(b.Ops))
	}
	// Only the b side is restricted.
	for i := 0; i < len(a.Ops); i++ {
		if restricted[i] {
			t.Fatalf("CNN op %d restricted", i)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Copies are chained: copy 1's sources depend on copy 0 ops.
	base1 := len(a.Ops) + len(b.Ops)
	foundChain := false
	for i := base1; i < base1+len(b.Ops); i++ {
		for _, in := range g.Ops[i].Inputs {
			if in >= len(a.Ops) && in < base1 {
				foundChain = true
			}
		}
	}
	if !foundChain {
		t.Fatal("second copy not chained to the first")
	}
}

func TestCombineRejectsZeroCopies(t *testing.T) {
	a := nn.AlexNet()
	if _, _, err := Combine(a, a, 0); err == nil {
		t.Fatal("zero copies must error")
	}
}

func TestScaleGraph(t *testing.T) {
	g := nn.Word2Vec()
	s := ScaleGraph(g, 10)
	if len(s.Ops) != len(g.Ops) {
		t.Fatal("scaling must not change op count")
	}
	for i, op := range s.Ops {
		if op.Muls != 10*g.Ops[i].Muls || op.Bytes != 10*g.Ops[i].Bytes {
			t.Fatalf("op %d not scaled", i)
		}
	}
	// k < 1 clamps.
	s2 := ScaleGraph(g, 0.5)
	if s2.Ops[0].Bytes != g.Ops[0].Bytes {
		t.Fatal("k<1 must clamp to 1")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunMixedImprovesOverSequential(t *testing.T) {
	// One fast case end to end; the full six run in the benchmark
	// harness.
	r, err := RunMixed(MixedCase{CNN: nn.AlexNetName, NonCNN: nn.LSTMName})
	if err != nil {
		t.Fatal(err)
	}
	if r.CoRun <= 0 || r.Sequential <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if r.CoRun >= r.Sequential {
		t.Fatalf("co-run (%g) must beat sequential (%g)", r.CoRun, r.Sequential)
	}
	// Fig. 16 band is 69-83%; allow a loose floor for this reproduction.
	if r.Improvement < 0.4 {
		t.Errorf("improvement %.0f%%, want substantial (paper: 69-83%%)", r.Improvement*100)
	}
	if r.NonCNNSteps < 1 {
		t.Error("non-CNN share missing")
	}
}

func TestRunMixedWord2vecCase(t *testing.T) {
	r, err := RunMixed(MixedCase{CNN: nn.AlexNetName, NonCNN: nn.Word2VecName})
	if err != nil {
		t.Fatal(err)
	}
	if r.Improvement < 0.3 {
		t.Errorf("improvement %.0f%%, want substantial", r.Improvement*100)
	}
}

func TestMultiTenantCoRun(t *testing.T) {
	res, err := RunMultiTenant([]TenantSpec{
		{Model: nn.AlexNetName},
		{Model: nn.DCGANName},
		{Model: nn.Word2VecName, HostOnly: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Standalone) != 3 {
		t.Fatalf("standalone entries = %d", len(res.Standalone))
	}
	if res.CoRun >= res.Sequential {
		t.Fatalf("co-run (%g) must beat sequential (%g)", res.CoRun, res.Sequential)
	}
	if res.Improvement <= 0.1 {
		t.Errorf("multi-tenant improvement %.0f%%, want substantial", res.Improvement*100)
	}
	// Co-run can never beat the longest single job.
	longest := 0.0
	for _, s := range res.Standalone {
		if s > longest {
			longest = s
		}
	}
	if res.CoRun < longest*0.99 {
		t.Fatalf("co-run (%g) faster than the longest job (%g) — impossible", res.CoRun, longest)
	}
}

func TestMultiTenantNeedsTwoJobs(t *testing.T) {
	if _, err := RunMultiTenant([]TenantSpec{{Model: nn.AlexNetName}}); err == nil {
		t.Fatal("single tenant must error")
	}
}

func TestMultiTenantSlowdowns(t *testing.T) {
	res, err := RunMultiTenant([]TenantSpec{
		{Model: nn.AlexNetName},
		{Model: nn.Word2VecName, HostOnly: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slowdowns) != 2 {
		t.Fatalf("slowdowns = %v", res.Slowdowns)
	}
	for i, s := range res.Slowdowns {
		// Sharing can never make a tenant faster than solo, and the
		// whole point is that it costs far less than 2x.
		if s < 0.99 || s > 2.2 {
			t.Errorf("tenant %d slowdown %.2f out of the plausible band", i, s)
		}
	}
}
