package pimvm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual assembly of a programmable-PIM kernel
// into a Program.
//
// Syntax, one instruction per line:
//
//	; comment                         (also # and // comments)
//	label:
//	  li    r1, 3.5
//	  ld    r2, r0, 4                 ; r2 = mem[int(r0)+4]
//	  st    r2, r0, 8                 ; mem[int(r0)+8] = r2
//	  add   r3, r1, r2
//	  addi  r0, r0, 1
//	  blt   r0, r4, label
//	  callfixed 2                     ; invoke fixed-function kernel 2
//	  halt
func Assemble(name, src string) (*Program, error) {
	type pending struct {
		instr int
		label string
		line  int
	}
	p := &Program{Name: name, Labels: map[string]int{}}
	var fixups []pending

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			if i := strings.Index(line, ":"); i >= 0 && isIdent(strings.TrimSpace(line[:i])) {
				label := strings.TrimSpace(line[:i])
				if _, dup := p.Labels[label]; dup {
					return nil, fmt.Errorf("pimvm: %s:%d: duplicate label %q", name, lineNo+1, label)
				}
				p.Labels[label] = len(p.Instrs)
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
		if len(fields) == 0 {
			// Stray separators with no instruction (e.g. ",," after
			// comment stripping) — found by the fuzzer.
			continue
		}
		mnemonic := strings.ToLower(fields[0])
		args := fields[1:]
		ins, labelRef, err := parseInstr(mnemonic, args)
		if err != nil {
			return nil, fmt.Errorf("pimvm: %s:%d: %v", name, lineNo+1, err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{instr: len(p.Instrs), label: labelRef, line: lineNo + 1})
		}
		p.Instrs = append(p.Instrs, ins)
	}
	for _, f := range fixups {
		target, ok := p.Labels[f.label]
		if !ok {
			return nil, fmt.Errorf("pimvm: %s:%d: undefined label %q", name, f.line, f.label)
		}
		p.Instrs[f.instr].Off = target
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustAssemble panics on assembly errors; for the built-in kernel
// library whose sources are compile-time constants.
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(s string) string {
	for _, marker := range []string{";", "#", "//"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

func parseInt(s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad offset %q", s)
	}
	return v, nil
}

// parseInstr decodes one mnemonic + operands; returns a label reference
// for branch fixups when needed.
func parseInstr(m string, args []string) (Instr, string, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operands, got %d", m, n, len(args))
		}
		return nil
	}
	switch m {
	case "nop":
		return Instr{Op: Nop}, "", need(0)
	case "halt":
		return Instr{Op: Halt}, "", need(0)
	case "li":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: Li, Dst: d, Imm: imm}, "", nil
	case "mov", "sqrt":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		a, err := parseReg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		op := Mov
		if m == "sqrt" {
			op = Sqrt
		}
		return Instr{Op: op, Dst: d, A: a}, "", nil
	case "ld", "st":
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		r1, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		r2, err := parseReg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		off, err := parseInt(args[2])
		if err != nil {
			return Instr{}, "", err
		}
		if m == "ld" {
			return Instr{Op: Ld, Dst: r1, A: r2, Off: off}, "", nil
		}
		return Instr{Op: St, A: r1, B: r2, Off: off}, "", nil
	case "add", "sub", "mul", "div", "max", "min":
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		a, err := parseReg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		b, err := parseReg(args[2])
		if err != nil {
			return Instr{}, "", err
		}
		ops := map[string]Opcode{"add": Add, "sub": Sub, "mul": Mul, "div": Div, "max": Max, "min": Min}
		return Instr{Op: ops[m], Dst: d, A: a, B: b}, "", nil
	case "addi", "muli":
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		d, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		a, err := parseReg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return Instr{}, "", err
		}
		op := Addi
		if m == "muli" {
			op = Muli
		}
		return Instr{Op: op, Dst: d, A: a, Imm: imm}, "", nil
	case "beq", "bne", "blt", "bge":
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		a, err := parseReg(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		b, err := parseReg(args[1])
		if err != nil {
			return Instr{}, "", err
		}
		ops := map[string]Opcode{"beq": Beq, "bne": Bne, "blt": Blt, "bge": Bge}
		return Instr{Op: ops[m], A: a, B: b}, args[2], nil
	case "jmp":
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: Jmp}, args[0], nil
	case "callfixed":
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		imm, err := parseImm(args[0])
		if err != nil {
			return Instr{}, "", err
		}
		return Instr{Op: CallFixed, Imm: imm}, "", nil
	default:
		return Instr{}, "", fmt.Errorf("unknown mnemonic %q", m)
	}
}
