// Package pimvm is an executable model of the programmable PIM: a small
// in-order RISC-style virtual machine with an assembler, cycle
// accounting at the ARM core's 2 GHz clock, and — the paper's Fig. 6
// mechanism — a CALLFIXED instruction that recursively invokes
// fixed-function PIM kernels from inside a programmable kernel.
//
// The trace-driven simulator models programmable-PIM timing
// analytically; this package exists to make binaries #2 and #4 of the
// Fig. 4 compilation flow *concrete*: a kernel is a real program that
// loads from the shared global memory, computes, stores back, and may
// hand its multiply/add inner sections to the fixed-function units.
package pimvm

import "fmt"

// Opcode enumerates the instruction set.
type Opcode uint8

// The ISA. Operands are registers r0..r31 holding float64 values;
// memory addresses are register values truncated to int.
const (
	// Nop does nothing (1 cycle).
	Nop Opcode = iota
	// Li loads an immediate: rD = imm.
	Li
	// Mov copies: rD = rA.
	Mov
	// Ld loads from shared memory: rD = mem[int(rA)+off].
	Ld
	// St stores to shared memory: mem[int(rB)+off] = rA.
	St
	// Add computes rD = rA + rB.
	Add
	// Sub computes rD = rA - rB.
	Sub
	// Mul computes rD = rA * rB.
	Mul
	// Div computes rD = rA / rB.
	Div
	// Max computes rD = max(rA, rB).
	Max
	// Min computes rD = min(rA, rB).
	Min
	// Sqrt computes rD = sqrt(rA).
	Sqrt
	// Addi computes rD = rA + imm.
	Addi
	// Muli computes rD = rA * imm.
	Muli
	// Beq branches to Off when rA == rB.
	Beq
	// Bne branches to Off when rA != rB.
	Bne
	// Blt branches to Off when rA < rB.
	Blt
	// Bge branches to Off when rA >= rB.
	Bge
	// Jmp branches unconditionally.
	Jmp
	// CallFixed invokes the registered fixed-function kernel imm
	// (truncated): the Fig. 6 recursive PIM kernel call. Costs the
	// handler's cycles plus the in-stack synchronization.
	CallFixed
	// Halt stops execution.
	Halt
)

// String implements fmt.Stringer.
func (o Opcode) String() string {
	names := [...]string{"nop", "li", "mov", "ld", "st", "add", "sub", "mul",
		"div", "max", "min", "sqrt", "addi", "muli", "beq", "bne", "blt",
		"bge", "jmp", "callfixed", "halt"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// NumRegs is the architectural register count.
const NumRegs = 32

// Instr is one decoded instruction.
type Instr struct {
	Op        Opcode
	Dst, A, B uint8
	Imm       float64
	// Off is the branch target (instruction index, resolved by the
	// assembler) or the load/store displacement.
	Off int
}

// cycles returns the issue cost of an instruction on the in-order core.
// Memory operations hit the near-bank buffers (Section IV-D), branches
// pay the short pipeline, divide/sqrt iterate.
func (i Instr) cycles() uint64 {
	switch i.Op {
	case Ld, St:
		return 4
	case Mul, Muli:
		return 2
	case Div:
		return 10
	case Sqrt:
		return 15
	case Beq, Bne, Blt, Bge, Jmp:
		return 2
	case CallFixed:
		return 0 // charged by the handler + sync cost
	default:
		return 1
	}
}

// Program is an assembled kernel binary.
type Program struct {
	Name   string
	Instrs []Instr
	// Labels maps label names to instruction indices (for disassembly
	// and tests).
	Labels map[string]int
}

// Validate checks branch targets and register indices.
func (p *Program) Validate() error {
	n := len(p.Instrs)
	for idx, ins := range p.Instrs {
		if ins.Dst >= NumRegs || ins.A >= NumRegs || ins.B >= NumRegs {
			return fmt.Errorf("pimvm: %s: instr %d: register out of range", p.Name, idx)
		}
		switch ins.Op {
		case Beq, Bne, Blt, Bge, Jmp:
			if ins.Off < 0 || ins.Off >= n {
				return fmt.Errorf("pimvm: %s: instr %d: branch target %d out of range", p.Name, idx, ins.Off)
			}
		}
	}
	return nil
}

// Disassemble renders one instruction in assembler syntax.
func (i Instr) Disassemble() string {
	r := func(n uint8) string { return "r" + itoa(int(n)) }
	switch i.Op {
	case Nop, Halt:
		return i.Op.String()
	case Li:
		return fmt.Sprintf("li   %s, %g", r(i.Dst), i.Imm)
	case Mov, Sqrt:
		return fmt.Sprintf("%-4s %s, %s", i.Op, r(i.Dst), r(i.A))
	case Ld:
		return fmt.Sprintf("ld   %s, %s, %d", r(i.Dst), r(i.A), i.Off)
	case St:
		return fmt.Sprintf("st   %s, %s, %d", r(i.A), r(i.B), i.Off)
	case Add, Sub, Mul, Div, Max, Min:
		return fmt.Sprintf("%-4s %s, %s, %s", i.Op, r(i.Dst), r(i.A), r(i.B))
	case Addi, Muli:
		return fmt.Sprintf("%-4s %s, %s, %g", i.Op, r(i.Dst), r(i.A), i.Imm)
	case Beq, Bne, Blt, Bge:
		return fmt.Sprintf("%-4s %s, %s, @%d", i.Op, r(i.A), r(i.B), i.Off)
	case Jmp:
		return fmt.Sprintf("jmp  @%d", i.Off)
	case CallFixed:
		return fmt.Sprintf("callfixed %d", int(i.Imm))
	default:
		return i.Op.String()
	}
}

// String renders the whole program with instruction indices and labels.
func (p *Program) String() string {
	labelAt := map[int][]string{}
	for name, idx := range p.Labels {
		labelAt[idx] = append(labelAt[idx], name)
	}
	var sb []byte
	for idx, ins := range p.Instrs {
		for _, l := range labelAt[idx] {
			sb = append(sb, (l + ":\n")...)
		}
		sb = append(sb, fmt.Sprintf("%4d  %s\n", idx, ins.Disassemble())...)
	}
	return string(sb)
}

// itoa avoids strconv for tiny register numbers.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
