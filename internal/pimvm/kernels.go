package pimvm

// The built-in kernel library: the programmable-PIM side of the
// operations the paper assigns to the ARM cores (Relu, MaxPool-style
// reductions, ApplyAdam), plus the recursive-kernel skeleton of Fig. 6.
//
// Calling convention: arguments arrive in r0..r7 (set by the host
// before Run); r0-r2 are usually base addresses into the shared memory
// and r3 an element count. Registers r8+ are scratch.

// VAddSrc adds two vectors: dst[i] = a[i] + b[i].
// Args: r0=a, r1=b, r2=dst, r3=n.
const VAddSrc = `
        li   r4, 0          ; i = 0
loop:   bge  r4, r3, done
        add  r5, r0, r4
        ld   r6, r5, 0      ; a[i]
        add  r5, r1, r4
        ld   r7, r5, 0      ; b[i]
        add  r6, r6, r7
        add  r5, r2, r4
        st   r6, r5, 0      ; dst[i]
        addi r4, r4, 1
        jmp  loop
done:   halt
`

// VMulSrc multiplies two vectors elementwise.
// Args: r0=a, r1=b, r2=dst, r3=n.
const VMulSrc = `
        li   r4, 0
loop:   bge  r4, r3, done
        add  r5, r0, r4
        ld   r6, r5, 0
        add  r5, r1, r4
        ld   r7, r5, 0
        mul  r6, r6, r7
        add  r5, r2, r4
        st   r6, r5, 0
        addi r4, r4, 1
        jmp  loop
done:   halt
`

// ReluSrc applies dst[i] = max(0, x[i]) — the conditional operation the
// fixed-function PIMs cannot execute (Section II-A).
// Args: r0=x, r1=dst, r2=n.
const ReluSrc = `
        li   r3, 0
        li   r8, 0          ; the zero constant
loop:   bge  r3, r2, done
        add  r5, r0, r3
        ld   r6, r5, 0
        max  r6, r6, r8
        add  r5, r1, r3
        st   r6, r5, 0
        addi r3, r3, 1
        jmp  loop
done:   halt
`

// DotSrc computes mem[int(r2)] = sum_i a[i]*b[i].
// Args: r0=a, r1=b, r2=dst (single element), r3=n.
const DotSrc = `
        li   r4, 0
        li   r9, 0          ; acc
loop:   bge  r4, r3, done
        add  r5, r0, r4
        ld   r6, r5, 0
        add  r5, r1, r4
        ld   r7, r5, 0
        mul  r6, r6, r7
        add  r9, r9, r6
        addi r4, r4, 1
        jmp  loop
done:   st   r9, r2, 0
        halt
`

// AdamSrc performs one bias-uncorrected Adam update over a parameter
// vector — the ApplyAdam op the paper offloads to the programmable PIM
// (it needs sqrt and division):
//
//	m[i] = b1*m[i] + (1-b1)*g[i]
//	v[i] = b2*v[i] + (1-b2)*g[i]^2
//	w[i] -= lr * m[i] / (sqrt(v[i]) + eps)
//
// Args: r0=w, r1=g, r2=m, r3=v, r4=n, r5=lr, r6=b1, r7=b2.
// (epsilon fixed at 1e-8.)
const AdamSrc = `
        li   r8, 0           ; i
        li   r9, 1
        sub  r10, r9, r6     ; 1-b1
        sub  r11, r9, r7     ; 1-b2
        li   r12, 1e-8       ; eps
loop:   bge  r8, r4, done
        add  r13, r1, r8
        ld   r14, r13, 0     ; g
        add  r13, r2, r8
        ld   r15, r13, 0     ; m
        mul  r15, r15, r6
        mul  r16, r14, r10
        add  r15, r15, r16   ; m'
        st   r15, r13, 0
        add  r13, r3, r8
        ld   r17, r13, 0     ; v
        mul  r17, r17, r7
        mul  r16, r14, r14
        mul  r16, r16, r11
        add  r17, r17, r16   ; v'
        st   r17, r13, 0
        sqrt r18, r17
        add  r18, r18, r12
        mul  r19, r15, r5    ; lr*m
        div  r19, r19, r18
        add  r13, r0, r8
        ld   r20, r13, 0     ; w
        sub  r20, r20, r19
        st   r20, r13, 0
        addi r8, r8, 1
        jmp  loop
done:   halt
`

// RecursiveConvSrc is the Fig. 6 skeleton: a Conv2DBackpropFilter-style
// kernel whose programmable phases bracket recursive calls to the
// fixed-function convolution kernel (id 0). Phase 1 zeroes the output
// slice, then the convolution runs on the fixed units, then phase 2
// scales the result (e.g. by 1/batch).
//
// Args: r0=dst base, r1=n (output elements), r2=scale.
const RecursiveConvSrc = `
        ; phase 1: clear the accumulator slice (programmable work)
        li   r4, 0
        li   r8, 0
p1:     bge  r4, r1, conv
        add  r5, r0, r4
        st   r8, r5, 0
        addi r4, r4, 1
        jmp  p1
conv:   callfixed 0         ; offload the convolution to fixed PIMs
        callfixed 0         ; second tile
        ; phase 2: scale the accumulated output (programmable work)
        li   r4, 0
p2:     bge  r4, r1, done
        add  r5, r0, r4
        ld   r6, r5, 0
        mul  r6, r6, r2
        st   r6, r5, 0
        addi r4, r4, 1
        jmp  p2
done:   halt
`

// Library returns the built-in kernels, freshly assembled.
func Library() map[string]*Program {
	return map[string]*Program{
		"vadd":           MustAssemble("vadd", VAddSrc),
		"vmul":           MustAssemble("vmul", VMulSrc),
		"relu":           MustAssemble("relu", ReluSrc),
		"dot":            MustAssemble("dot", DotSrc),
		"adam":           MustAssemble("adam", AdamSrc),
		"recursive_conv": MustAssemble("recursive_conv", RecursiveConvSrc),
		"conv2d":         MustAssemble("conv2d", Conv2DSrc),
	}
}

// Conv2DSrc is a complete single-channel, stride-1, VALID 2D
// convolution in PIM assembly — the proof that the ISA suffices for the
// paper's headline operation when run as binary #2 (no fixed-function
// help).
//
// Args: r0=x base (HxW), r1=w base (FHxFW), r2=y base, r3=H, r4=W,
// r5=FH, r6=FW.
const Conv2DSrc = `
        sub  r13, r3, r5
        addi r13, r13, 1     ; OH = H-FH+1
        sub  r14, r4, r6
        addi r14, r14, 1     ; OW = W-FW+1
        li   r8, 0           ; oh
oh:     bge  r8, r13, done
        li   r9, 0           ; ow
ow:     bge  r9, r14, ohnext
        li   r12, 0          ; acc
        li   r10, 0          ; fh
fh:     bge  r10, r5, store
        li   r11, 0          ; fw
fw:     bge  r11, r6, fhnext
        add  r15, r8, r10    ; ih
        mul  r15, r15, r4    ; ih*W
        add  r16, r9, r11    ; iw
        add  r15, r15, r16
        add  r15, r15, r0
        ld   r17, r15, 0     ; x[ih*W+iw]
        mov  r18, r10
        mul  r18, r18, r6
        add  r18, r18, r11
        add  r18, r18, r1
        ld   r19, r18, 0     ; w[fh*FW+fw]
        mul  r17, r17, r19
        add  r12, r12, r17
        addi r11, r11, 1
        jmp  fw
fhnext: addi r10, r10, 1
        jmp  fh
store:  mov  r15, r8
        mul  r15, r15, r14
        add  r15, r15, r9
        add  r15, r15, r2
        st   r12, r15, 0
        addi r9, r9, 1
        jmp  ow
ohnext: addi r8, r8, 1
        jmp  oh
done:   halt
`
