package pimvm

import (
	"fmt"
	"math"

	"heteropim/internal/hw"
)

// FixedHandler implements one registered fixed-function kernel that a
// programmable kernel may invoke recursively (Fig. 6). It operates on
// the same shared memory and reports how many fixed-function unit
// cycles it consumed.
type FixedHandler func(mem []float32, args [8]float64) (unitCycles uint64, err error)

// VM executes programmable-PIM kernel binaries against the shared
// global memory.
type VM struct {
	// Mem is the (slice of) shared global memory the kernel addresses.
	Mem []float32
	// Regs are the architectural registers.
	Regs [NumRegs]float64
	// Freq is the core clock (the paper's 2 GHz ARM cores).
	Freq hw.Hz
	// SyncCyclesPerCall is the in-stack PIM<->PIM synchronization cost
	// of one recursive fixed-function call, in core cycles.
	SyncCyclesPerCall uint64
	// MaxInstructions guards against runaway kernels (0 = default).
	MaxInstructions uint64

	fixed map[int]FixedHandler

	// Statistics.
	Cycles          uint64
	Executed        uint64
	FixedCalls      int
	FixedUnitCycles uint64
}

// DefaultMaxInstructions bounds one Run.
const DefaultMaxInstructions = 50_000_000

// New creates a VM over a shared memory slice.
func New(mem []float32) *VM {
	return &VM{
		Mem:               mem,
		Freq:              2 * hw.GHz,
		SyncCyclesPerCall: 600, // 0.3us at 2 GHz — the PIM-PIM sync cost
		fixed:             map[int]FixedHandler{},
	}
}

// RegisterFixed installs the fixed-function kernel with the given id.
func (vm *VM) RegisterFixed(id int, h FixedHandler) {
	vm.fixed[id] = h
}

// Reset clears registers and statistics (memory is preserved).
func (vm *VM) Reset() {
	vm.Regs = [NumRegs]float64{}
	vm.Cycles, vm.Executed = 0, 0
	vm.FixedCalls, vm.FixedUnitCycles = 0, 0
}

// Run executes a program to completion (Halt or falling off the end).
func (vm *VM) Run(p *Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	max := vm.MaxInstructions
	if max == 0 {
		max = DefaultMaxInstructions
	}
	pc := 0
	for pc < len(p.Instrs) {
		if vm.Executed >= max {
			return fmt.Errorf("pimvm: %s: instruction budget (%d) exhausted at pc=%d", p.Name, max, pc)
		}
		ins := p.Instrs[pc]
		vm.Executed++
		vm.Cycles += ins.cycles()
		switch ins.Op {
		case Nop:
		case Li:
			vm.Regs[ins.Dst] = ins.Imm
		case Mov:
			vm.Regs[ins.Dst] = vm.Regs[ins.A]
		case Ld:
			addr := int(vm.Regs[ins.A]) + ins.Off
			if addr < 0 || addr >= len(vm.Mem) {
				return fmt.Errorf("pimvm: %s: pc=%d: load address %d out of range [0,%d)", p.Name, pc, addr, len(vm.Mem))
			}
			vm.Regs[ins.Dst] = float64(vm.Mem[addr])
		case St:
			addr := int(vm.Regs[ins.B]) + ins.Off
			if addr < 0 || addr >= len(vm.Mem) {
				return fmt.Errorf("pimvm: %s: pc=%d: store address %d out of range [0,%d)", p.Name, pc, addr, len(vm.Mem))
			}
			vm.Mem[addr] = float32(vm.Regs[ins.A])
		case Add:
			vm.Regs[ins.Dst] = vm.Regs[ins.A] + vm.Regs[ins.B]
		case Sub:
			vm.Regs[ins.Dst] = vm.Regs[ins.A] - vm.Regs[ins.B]
		case Mul:
			vm.Regs[ins.Dst] = vm.Regs[ins.A] * vm.Regs[ins.B]
		case Div:
			vm.Regs[ins.Dst] = vm.Regs[ins.A] / vm.Regs[ins.B]
		case Max:
			vm.Regs[ins.Dst] = math.Max(vm.Regs[ins.A], vm.Regs[ins.B])
		case Min:
			vm.Regs[ins.Dst] = math.Min(vm.Regs[ins.A], vm.Regs[ins.B])
		case Sqrt:
			vm.Regs[ins.Dst] = math.Sqrt(vm.Regs[ins.A])
		case Addi:
			vm.Regs[ins.Dst] = vm.Regs[ins.A] + ins.Imm
		case Muli:
			vm.Regs[ins.Dst] = vm.Regs[ins.A] * ins.Imm
		case Beq:
			if vm.Regs[ins.A] == vm.Regs[ins.B] {
				pc = ins.Off
				continue
			}
		case Bne:
			if vm.Regs[ins.A] != vm.Regs[ins.B] {
				pc = ins.Off
				continue
			}
		case Blt:
			if vm.Regs[ins.A] < vm.Regs[ins.B] {
				pc = ins.Off
				continue
			}
		case Bge:
			if vm.Regs[ins.A] >= vm.Regs[ins.B] {
				pc = ins.Off
				continue
			}
		case Jmp:
			pc = ins.Off
			continue
		case CallFixed:
			id := int(ins.Imm)
			h, ok := vm.fixed[id]
			if !ok {
				return fmt.Errorf("pimvm: %s: pc=%d: no fixed-function kernel %d registered", p.Name, pc, id)
			}
			var args [8]float64
			copy(args[:], vm.Regs[:8])
			unitCycles, err := h(vm.Mem, args)
			if err != nil {
				return fmt.Errorf("pimvm: %s: fixed kernel %d: %w", p.Name, id, err)
			}
			vm.FixedCalls++
			vm.FixedUnitCycles += unitCycles
			vm.Cycles += vm.SyncCyclesPerCall
		case Halt:
			return nil
		default:
			return fmt.Errorf("pimvm: %s: pc=%d: bad opcode %v", p.Name, pc, ins.Op)
		}
		pc++
	}
	return nil
}

// Time converts the consumed core cycles to seconds at the core clock.
func (vm *VM) Time() hw.Seconds {
	if vm.Freq <= 0 {
		return 0
	}
	return float64(vm.Cycles) / vm.Freq
}
