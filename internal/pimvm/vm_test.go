package pimvm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"heteropim/internal/tensor"
)

func runKernel(t *testing.T, name string, mem []float32, args ...float64) *VM {
	t.Helper()
	vm := New(mem)
	for i, a := range args {
		vm.Regs[i] = a
	}
	p, ok := Library()[name]
	if !ok {
		t.Fatalf("no kernel %q", name)
	}
	if err := vm.Run(p); err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestVAddMatchesTensorAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	mem := make([]float32, 3*n)
	for i := 0; i < 2*n; i++ {
		mem[i] = float32(rng.NormFloat64())
	}
	vm := runKernel(t, "vadd", mem, 0, float64(n), float64(2*n), float64(n))
	a, _ := tensor.FromSlice(append([]float32(nil), mem[:n]...), n)
	b, _ := tensor.FromSlice(append([]float32(nil), mem[n:2*n]...), n)
	want, _ := tensor.Add(a, b)
	for i := 0; i < n; i++ {
		if mem[2*n+i] != want.Data[i] {
			t.Fatalf("dst[%d] = %g, want %g", i, mem[2*n+i], want.Data[i])
		}
	}
	if vm.Cycles == 0 || vm.Time() <= 0 {
		t.Fatal("no cycle accounting")
	}
}

func TestVMulAndDot(t *testing.T) {
	mem := []float32{1, 2, 3, 4, 5, 6, 0, 0, 0, 0}
	runKernel(t, "vmul", mem, 0, 3, 6, 3)
	if mem[6] != 4 || mem[7] != 10 || mem[8] != 18 {
		t.Fatalf("vmul = %v", mem[6:9])
	}
	mem2 := []float32{1, 2, 3, 4, 5, 6, 0}
	runKernel(t, "dot", mem2, 0, 3, 6, 3)
	if mem2[6] != 32 {
		t.Fatalf("dot = %g, want 32", mem2[6])
	}
}

func TestReluKernel(t *testing.T) {
	mem := []float32{-1, 0, 2, -3, 5, 0, 0, 0, 0, 0}
	runKernel(t, "relu", mem, 0, 5, 5)
	want := []float32{0, 0, 2, 0, 5}
	for i, w := range want {
		if mem[5+i] != w {
			t.Fatalf("relu[%d] = %g, want %g", i, mem[5+i], w)
		}
	}
}

func TestAdamKernelMatchesTensorAdam(t *testing.T) {
	// One uncorrected Adam step in the VM vs the tensor implementation
	// with bias correction disabled (step chosen so corrections ~1 is
	// not possible; instead replicate the raw update by hand).
	n := 8
	rng := rand.New(rand.NewSource(2))
	w := make([]float32, n)
	g := make([]float32, n)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
		g[i] = float32(rng.NormFloat64())
	}
	const lr, b1, b2, eps = 0.01, 0.9, 0.999, 1e-8
	// Expected raw update from zero moments.
	want := make([]float64, n)
	for i := range w {
		m := (1 - b1) * float64(g[i])
		v := (1 - b2) * float64(g[i]) * float64(g[i])
		want[i] = float64(w[i]) - lr*m/(math.Sqrt(v)+eps)
	}
	mem := make([]float32, 4*n)
	copy(mem[:n], w)
	copy(mem[n:2*n], g)
	runKernel(t, "adam", mem, 0, float64(n), float64(2*n), float64(3*n), float64(n), lr, b1, b2)
	for i := 0; i < n; i++ {
		if d := math.Abs(float64(mem[i]) - want[i]); d > 1e-5 {
			t.Fatalf("w[%d] = %g, want %g", i, mem[i], want[i])
		}
	}
}

func TestRecursiveKernelFig6(t *testing.T) {
	// The Fig. 6 flow: phase 1 (clear) -> two fixed-function conv calls
	// -> phase 2 (scale). The fixed handler accumulates ones.
	n := 6
	mem := make([]float32, n)
	for i := range mem {
		mem[i] = 99 // garbage that phase 1 must clear
	}
	vm := New(mem)
	vm.Regs[0] = 0          // dst base
	vm.Regs[1] = float64(n) // elements
	vm.Regs[2] = 0.5        // phase-2 scale
	vm.RegisterFixed(0, func(m []float32, args [8]float64) (uint64, error) {
		for i := 0; i < n; i++ {
			m[i] += 2
		}
		return 1000, nil
	})
	p := Library()["recursive_conv"]
	if err := vm.Run(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if mem[i] != 2 { // (0 + 2 + 2) * 0.5
			t.Fatalf("dst[%d] = %g, want 2", i, mem[i])
		}
	}
	if vm.FixedCalls != 2 {
		t.Fatalf("fixed calls = %d, want 2", vm.FixedCalls)
	}
	if vm.FixedUnitCycles != 2000 {
		t.Fatalf("fixed unit cycles = %d, want 2000", vm.FixedUnitCycles)
	}
	// Each recursive call costs a cheap in-stack sync, not a host
	// round-trip.
	if vm.Cycles < 2*vm.SyncCyclesPerCall {
		t.Fatal("sync cycles not charged")
	}
}

func TestCallFixedUnregistered(t *testing.T) {
	vm := New(make([]float32, 4))
	p := MustAssemble("t", "callfixed 3\nhalt")
	if err := vm.Run(p); err == nil || !strings.Contains(err.Error(), "no fixed-function kernel") {
		t.Fatalf("want unregistered-kernel error, got %v", err)
	}
}

func TestMemoryBoundsChecked(t *testing.T) {
	vm := New(make([]float32, 2))
	if err := vm.Run(MustAssemble("oob-load", "li r0, 10\nld r1, r0, 0\nhalt")); err == nil {
		t.Fatal("out-of-range load must error")
	}
	vm.Reset()
	if err := vm.Run(MustAssemble("oob-store", "li r0, -1\nst r0, r0, 0\nhalt")); err == nil {
		t.Fatal("out-of-range store must error")
	}
}

func TestInstructionBudget(t *testing.T) {
	vm := New(nil)
	vm.MaxInstructions = 100
	if err := vm.Run(MustAssemble("spin", "loop: jmp loop")); err == nil {
		t.Fatal("infinite loop must hit the budget")
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"li r99, 1",
		"li r1",
		"jmp nowhere",
		"ld r1, r2, xyz",
		"add r1, r2",
		"li r1, notanumber",
		"dup: nop\ndup: nop",
		"beq r1, r2, missing",
	}
	for _, src := range cases {
		if _, err := Assemble("bad", src); err == nil {
			t.Errorf("source %q must fail to assemble", src)
		}
	}
}

func TestAssemblerLabelsAndComments(t *testing.T) {
	p, err := Assemble("demo", `
        ; leading comment
        li r1, 5        # trailing comment
start:  addi r1, r1, -1 // another
        bne r1, r0, start
        halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Labels["start"] != 1 {
		t.Fatalf("label start = %d, want 1", p.Labels["start"])
	}
	vm := New(nil)
	if err := vm.Run(p); err != nil {
		t.Fatal(err)
	}
	if vm.Regs[1] != 0 {
		t.Fatalf("countdown ended at %g", vm.Regs[1])
	}
}

func TestOpcodeStrings(t *testing.T) {
	if Add.String() != "add" || CallFixed.String() != "callfixed" {
		t.Fatal("opcode names wrong")
	}
	if !strings.Contains(Opcode(200).String(), "200") {
		t.Fatal("unknown opcode should render its number")
	}
}

func TestProgramValidate(t *testing.T) {
	p := &Program{Name: "bad", Instrs: []Instr{{Op: Jmp, Off: 9}}}
	if err := p.Validate(); err == nil {
		t.Fatal("branch out of range must be caught")
	}
	p2 := &Program{Name: "bad2", Instrs: []Instr{{Op: Add, Dst: 40}}}
	if err := p2.Validate(); err == nil {
		t.Fatal("register out of range must be caught")
	}
}

func TestVAddQuick(t *testing.T) {
	// Property: the vadd kernel agrees with Go addition on arbitrary
	// inputs.
	f := func(a, b []float32) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		if n > 32 {
			n = 32
		}
		mem := make([]float32, 3*n)
		copy(mem[:n], a[:n])
		copy(mem[n:2*n], b[:n])
		vm := New(mem)
		vm.Regs[0], vm.Regs[1], vm.Regs[2], vm.Regs[3] = 0, float64(n), float64(2*n), float64(n)
		if err := vm.Run(Library()["vadd"]); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			want := a[i] + b[i]
			got := mem[2*n+i]
			if got != want && !(isNaN32(got) && isNaN32(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func isNaN32(f float32) bool { return f != f }

func TestTimeAtClock(t *testing.T) {
	vm := New(nil)
	vm.Cycles = 2_000_000_000
	if got := vm.Time(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("2G cycles at 2GHz = %gs, want 1s", got)
	}
	vm.Freq = 0
	if vm.Time() != 0 {
		t.Fatal("zero frequency must not divide by zero")
	}
}

func TestConv2DKernelMatchesTensorMath(t *testing.T) {
	// The full assembly convolution against the reference FP32 kernel.
	rng := rand.New(rand.NewSource(11))
	H, W, FH, FW := 6, 7, 3, 2
	OH, OW := H-FH+1, W-FW+1
	x := tensor.Randn(rng, 1, 1, H, W, 1)
	w := tensor.Randn(rng, 1, FH, FW, 1, 1)
	want, err := tensor.Conv2D(x, w, tensor.ConvSpec{StrideH: 1, StrideW: 1})
	if err != nil {
		t.Fatal(err)
	}
	mem := make([]float32, H*W+FH*FW+OH*OW)
	copy(mem[:H*W], x.Data)
	copy(mem[H*W:H*W+FH*FW], w.Data)
	vm := New(mem)
	vm.Regs[0] = 0
	vm.Regs[1] = float64(H * W)
	vm.Regs[2] = float64(H*W + FH*FW)
	vm.Regs[3] = float64(H)
	vm.Regs[4] = float64(W)
	vm.Regs[5] = float64(FH)
	vm.Regs[6] = float64(FW)
	if err := vm.Run(Library()["conv2d"]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < OH*OW; i++ {
		got := mem[H*W+FH*FW+i]
		if d := math.Abs(float64(got - want.Data[i])); d > 1e-4 {
			t.Fatalf("y[%d] = %g, want %g", i, got, want.Data[i])
		}
	}
	// The VM charges cycles proportional to the MAC count.
	if vm.Cycles < uint64(OH*OW*FH*FW) {
		t.Fatalf("cycles %d implausibly low for %d MACs", vm.Cycles, OH*OW*FH*FW)
	}
}

func TestDisassembleRoundTrips(t *testing.T) {
	// Disassembling every library kernel and re-assembling the plain
	// (label-free, branch-by-index is not re-assemblable) forms must at
	// least render every opcode without panicking; spot-check syntax.
	for name, p := range Library() {
		out := p.String()
		if out == "" {
			t.Fatalf("%s: empty disassembly", name)
		}
		if !strings.Contains(out, "halt") {
			t.Fatalf("%s: disassembly missing halt:\n%s", name, out)
		}
	}
	one := MustAssemble("d", "start: li r1, 2\nblt r0, r1, start\nhalt")
	out := one.String()
	for _, want := range []string{"start:", "li   r1, 2", "blt  r0, r1, @0", "halt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, out)
		}
	}
}
