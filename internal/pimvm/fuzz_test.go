package pimvm

import (
	"strings"
	"testing"
)

// FuzzAssemble throws arbitrary text at the assembler: it must either
// return an error or produce a validated program whose execution (on a
// small memory, with a tight budget) never panics.
func FuzzAssemble(f *testing.F) {
	f.Add(VAddSrc)
	f.Add(ReluSrc)
	f.Add(AdamSrc)
	f.Add(Conv2DSrc)
	f.Add("li r1, 1\nhalt")
	f.Add("loop: jmp loop")
	f.Add("ld r0, r0, -3")
	f.Add("callfixed 0\nhalt")
	f.Add("a:b:c: nop")
	f.Add("; only a comment")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Assemble returned an invalid program: %v", verr)
		}
		vm := New(make([]float32, 64))
		vm.MaxInstructions = 10_000
		vm.RegisterFixed(0, func(mem []float32, args [8]float64) (uint64, error) { return 1, nil })
		// Execution may fail (OOB access, budget, unregistered fixed
		// kernels) but must never panic.
		_ = vm.Run(p)
	})
}

// FuzzStraightLine checks that any successfully assembled branch-free
// program terminates within its instruction count.
func FuzzStraightLine(f *testing.F) {
	f.Add("li r1, 2\nmul r2, r1, r1\nsqrt r3, r2\nst r3, r0, 1\nhalt")
	f.Fuzz(func(t *testing.T, src string) {
		if strings.Contains(src, "jmp") || strings.Contains(src, "b") {
			return // only straight-line programs in this harness
		}
		p, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		vm := New(make([]float32, 16))
		vm.MaxInstructions = uint64(len(p.Instrs) + 1)
		if err := vm.Run(p); err != nil && strings.Contains(err.Error(), "budget") {
			t.Fatalf("straight-line program hit the budget: %v", err)
		}
	})
}
