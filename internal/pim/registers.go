package pim

import (
	"fmt"
	"sync"

	"heteropim/internal/hw"
)

// Registers models the hardware status registers of Fig. 7: one register
// per bank of fixed-function PIMs plus one per programmable PIM
// processor. Each register exposes whether the corresponding hardware is
// idle, and a completion epoch the runtime can poll. The registers are
// what make the paper's software-driven scheduling cheap: the runtime on
// the CPU or on the programmable PIM queries them instead of
// interrupting anyone.
//
// Storage is sized by the number of IN-FLIGHT operations, not the total
// ever offloaded: completed entries release their slab slot and map
// cell for reuse. Tokens are still issued from a monotonic sequence, so
// a completed token stays distinguishable from a never-issued one (the
// hardware keeps one completion bit per epoch, not a location history).
// This is what keeps a steady-state run's offload traffic free of
// per-operation allocations.
type Registers struct {
	mu       sync.Mutex
	bankBusy []int // busy kernel count per bank
	progBusy []int // busy kernel count per programmable processor
	// inflight maps live tokens to their slab slot; completed tokens are
	// deleted, so the map's size is bounded by the in-flight count and
	// its cells are recycled.
	inflight map[OpToken]int32
	slab     []Location
	free     []int32 // free slab slots
	lastTok  OpToken // highest token issued
}

// OpToken identifies one offloaded operation in the low-level API.
type OpToken int

// Location answers the paper's pimQueryLocation: which compute resource
// runs an operation and which DRAM banks hold its input/output data.
type Location struct {
	// OnProgrammable is true when the op was offloaded to a programmable
	// PIM processor (identified by Processor); otherwise it runs on the
	// fixed-function units of Banks.
	OnProgrammable bool
	Processor      int
	// Banks lists the bank slices holding the op's data (and, for
	// fixed-function execution, its compute units).
	Banks []int
}

// NewRegisters builds the register file for a stack with the given
// number of banks and programmable processors.
func NewRegisters(banks, processors int) *Registers {
	return &Registers{
		bankBusy: make([]int, banks),
		progBusy: make([]int, processors),
		inflight: map[OpToken]int32{},
	}
}

// Offload registers an operation at a location and returns its token
// (the paper's pimOffload). It marks the target hardware busy.
func (r *Registers) Offload(loc Location) (OpToken, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if loc.OnProgrammable {
		if loc.Processor < 0 || loc.Processor >= len(r.progBusy) {
			return 0, fmt.Errorf("pim: no programmable processor %d", loc.Processor)
		}
		r.progBusy[loc.Processor]++
	} else {
		for _, b := range loc.Banks {
			if b < 0 || b >= len(r.bankBusy) {
				return 0, fmt.Errorf("pim: no bank %d", b)
			}
			r.bankBusy[b]++
		}
	}
	r.lastTok++
	tok := r.lastTok
	var slot int32
	if n := len(r.free); n > 0 {
		slot = r.free[n-1]
		r.free = r.free[:n-1]
	} else {
		r.slab = append(r.slab, Location{})
		slot = int32(len(r.slab) - 1)
	}
	r.slab[slot] = loc
	r.inflight[tok] = slot
	return tok, nil
}

// Complete marks an operation finished and frees its hardware (the
// hardware side of the programmable PIM checking completion and
// reporting to the CPU, Section III-B).
func (r *Registers) Complete(tok OpToken) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	slot, ok := r.inflight[tok]
	if !ok {
		if tok >= 1 && tok <= r.lastTok {
			return fmt.Errorf("pim: op token %d already completed", tok)
		}
		return fmt.Errorf("pim: unknown op token %d", tok)
	}
	loc := r.slab[slot]
	if loc.OnProgrammable {
		r.progBusy[loc.Processor]--
	} else {
		for _, b := range loc.Banks {
			r.bankBusy[b]--
		}
	}
	delete(r.inflight, tok)
	r.slab[slot] = Location{}
	r.free = append(r.free, slot)
	return nil
}

// IsBankBusy answers the paper's pimIsBusy for a bank of fixed-function
// PIMs.
func (r *Registers) IsBankBusy(bank int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if bank < 0 || bank >= len(r.bankBusy) {
		return false
	}
	return r.bankBusy[bank] > 0
}

// IsProcessorBusy answers pimIsBusy for a programmable PIM processor.
func (r *Registers) IsProcessorBusy(p int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p < 0 || p >= len(r.progBusy) {
		return false
	}
	return r.progBusy[p] > 0
}

// QueryCompletion answers pimQueryCompletion: false while the op is in
// flight, true once it completed. Tokens never issued are an error.
func (r *Registers) QueryCompletion(tok OpToken) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.inflight[tok]; ok {
		return false, nil
	}
	if tok >= 1 && tok <= r.lastTok {
		return true, nil
	}
	return false, fmt.Errorf("pim: unknown op token %d", tok)
}

// QueryLocation answers pimQueryLocation for an in-flight op; a
// completed op's register has been recycled, so its location is gone.
func (r *Registers) QueryLocation(tok OpToken) (Location, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	slot, ok := r.inflight[tok]
	if !ok {
		if tok >= 1 && tok <= r.lastTok {
			return Location{}, fmt.Errorf("pim: op token %d already completed", tok)
		}
		return Location{}, fmt.Errorf("pim: unknown op token %d", tok)
	}
	return r.slab[slot], nil
}

// IdleProcessor returns the index of an idle programmable processor, or
// -1 if all are busy.
func (r *Registers) IdleProcessor() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, busy := range r.progBusy {
		if busy == 0 {
			return i
		}
	}
	return -1
}

// ProgPIM models the programmable PIM complement as a set of processors;
// the simulator treats each 4-core processor as one schedulable device.
type ProgPIM struct {
	Spec hw.ProgPIMSpec

	busy         []bool
	busyTime     []float64
	lastAdvance  hw.Seconds
	totalKernels int
}

// NewProgPIM builds the programmable PIM complement.
func NewProgPIM(spec hw.ProgPIMSpec) *ProgPIM {
	return &ProgPIM{
		Spec:     spec,
		busy:     make([]bool, spec.Processors),
		busyTime: make([]float64, spec.Processors),
	}
}

// Processors returns the processor count.
func (p *ProgPIM) Processors() int { return len(p.busy) }

// Advance moves the clock, integrating per-processor busy time.
func (p *ProgPIM) Advance(now hw.Seconds) {
	dt := now - p.lastAdvance
	if dt <= 0 {
		return
	}
	for i, b := range p.busy {
		if b {
			p.busyTime[i] += dt
		}
	}
	p.lastAdvance = now
}

// Acquire reserves an idle processor and returns its index, or -1.
func (p *ProgPIM) Acquire() int {
	for i, b := range p.busy {
		if !b {
			p.busy[i] = true
			p.totalKernels++
			return i
		}
	}
	return -1
}

// Release frees processor i.
func (p *ProgPIM) Release(i int) error {
	if i < 0 || i >= len(p.busy) || !p.busy[i] {
		return fmt.Errorf("pim: release of processor %d which is not acquired", i)
	}
	p.busy[i] = false
	return nil
}

// BusySeconds returns the total busy time across processors (for energy).
func (p *ProgPIM) BusySeconds() float64 {
	var t float64
	for _, b := range p.busyTime {
		t += b
	}
	return t
}

// Kernels returns how many kernels were admitted.
func (p *ProgPIM) Kernels() int { return p.totalKernels }

// PerProcessorFlops is the FP32 throughput of a single 4-core processor.
func (p *ProgPIM) PerProcessorFlops() hw.FlopsPerSec {
	return float64(p.Spec.CoresPerProcessor) * p.Spec.Freq * p.Spec.FlopsPerCycle
}
