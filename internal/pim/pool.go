package pim

import (
	"fmt"

	"heteropim/internal/hw"
)

// Pool is the runtime-visible state of the fixed-function PIM complement:
// how many units exist, how many are granted to in-flight kernels, and
// the integral of busy units over time (for the Fig. 15 utilization
// study). The pool is the hardware side of the paper's "registers that
// indicate the idling of a bank of fixed-function PIMs" (Fig. 7); the
// discrete-event simulator advances its clock.
type Pool struct {
	Spec      hw.FixedPIMSpec
	Placement Placement

	total int
	busy  int

	lastAdvance   hw.Seconds
	busyUnitTime  float64 // integral of busy units dt
	totalUnitTime float64 // integral of total units dt
	grants        int     // number of Grant calls (kernel spawns served)

	// advances, when non-nil, records every clock-moving Advance as a
	// (timestamp, busy-level) pair so a delta-simulation fork can replay
	// the integral piecewise (snapshot.go); nil keeps Advance
	// allocation-free.
	advances []PoolAdvance
}

// NewPool builds a pool over a placement.
func NewPool(spec hw.FixedPIMSpec, placement Placement) *Pool {
	return &Pool{Spec: spec, Placement: placement, total: placement.Total()}
}

// Total returns the unit budget.
func (p *Pool) Total() int { return p.total }

// Busy returns the units currently granted.
func (p *Pool) Busy() int { return p.busy }

// Available returns the units currently idle.
func (p *Pool) Available() int { return p.total - p.busy }

// Advance moves the pool clock to now, integrating utilization. Calls
// with a timestamp in the past are ignored (events at identical times).
func (p *Pool) Advance(now hw.Seconds) {
	dt := now - p.lastAdvance
	if dt <= 0 {
		return
	}
	p.busyUnitTime += float64(p.busy) * dt
	p.totalUnitTime += float64(p.total) * dt
	p.lastAdvance = now
	if p.advances != nil {
		p.advances = append(p.advances, PoolAdvance{At: now, Busy: int32(p.busy)})
	}
}

// Grant allocates up to want units (but no more than available) and
// returns the granted count. A zero grant is legal and means the caller
// must wait for a release. Grant does not advance time; callers advance
// the clock first.
func (p *Pool) Grant(want int) int {
	if want <= 0 {
		return 0
	}
	got := want
	if avail := p.Available(); got > avail {
		got = avail
	}
	p.busy += got
	if got > 0 {
		p.grants++
	}
	return got
}

// Release returns units to the pool.
func (p *Pool) Release(n int) error {
	if n < 0 || n > p.busy {
		return fmt.Errorf("pim: release %d with %d busy", n, p.busy)
	}
	p.busy -= n
	return nil
}

// Utilization returns busy-unit-time / total-unit-time over the advanced
// interval; 0 if no time has passed.
func (p *Pool) Utilization() float64 {
	if p.totalUnitTime == 0 {
		return 0
	}
	return p.busyUnitTime / p.totalUnitTime
}

// BusyUnitSeconds returns the utilization integral itself; the energy
// model multiplies it by per-unit power.
func (p *Pool) BusyUnitSeconds() float64 { return p.busyUnitTime }

// Grants returns how many non-empty grants were served (a proxy for
// kernel spawns onto the fixed-function PIMs).
func (p *Pool) Grants() int { return p.grants }

// Now returns the pool's clock.
func (p *Pool) Now() hw.Seconds { return p.lastAdvance }
