package pim

import (
	"fmt"

	"heteropim/internal/hw"
)

// Snapshot support for the delta-simulation layer (internal/core): a
// forked design-space candidate resumes from a checkpointed prefix of a
// base run, so the PIM-side state the executor carries — the Fig. 7
// status registers and the fixed-pool utilization integrals — must be
// reproducible in the fork exactly as a from-scratch run would have
// built them.

// RegistersSnapshot is a frozen deep copy of a register file. It is
// immutable once taken: one snapshot may instantiate any number of
// forked register files concurrently.
type RegistersSnapshot struct {
	bankBusy []int
	progBusy []int
	inflight map[OpToken]int32
	slab     []Location
	free     []int32
	lastTok  OpToken
}

// Snapshot deep-copies the register file's current state, including the
// per-entry bank lists (which may alias caller storage in the live
// file).
func (r *Registers) Snapshot() *RegistersSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &RegistersSnapshot{
		bankBusy: append([]int(nil), r.bankBusy...),
		progBusy: append([]int(nil), r.progBusy...),
		inflight: make(map[OpToken]int32, len(r.inflight)),
		slab:     make([]Location, len(r.slab)),
		free:     append([]int32(nil), r.free...),
		lastTok:  r.lastTok,
	}
	for tok, slot := range r.inflight {
		s.inflight[tok] = slot
	}
	for i, loc := range r.slab {
		loc.Banks = append([]int(nil), loc.Banks...)
		s.slab[i] = loc
	}
	return s
}

// NewRegisters instantiates a fresh register file at the snapshot's
// state. Token numbering continues from the snapshot's sequence, so a
// fork issues exactly the tokens the source run would have.
func (s *RegistersSnapshot) NewRegisters() *Registers {
	r := &Registers{
		bankBusy: append([]int(nil), s.bankBusy...),
		progBusy: append([]int(nil), s.progBusy...),
		inflight: make(map[OpToken]int32, len(s.inflight)),
		slab:     make([]Location, len(s.slab)),
		free:     append([]int32(nil), s.free...),
		lastTok:  s.lastTok,
	}
	for tok, slot := range s.inflight {
		r.inflight[tok] = slot
	}
	for i, loc := range s.slab {
		loc.Banks = append([]int(nil), loc.Banks...)
		r.slab[i] = loc
	}
	return r
}

// InFlight returns how many offloaded operations the snapshot holds
// open (their Complete calls happen in the forked suffix).
func (s *RegistersSnapshot) InFlight() int { return len(s.inflight) }

// PoolAdvance is one recorded clock move: the timestamp the pool
// advanced to and the busy level it integrated over the interval ending
// there. A history of these pairs lets a fork reproduce the busy
// integral bit for bit even when the checkpointed prefix held grants
// open, because the per-interval float sums are re-accumulated in the
// exact order the base run accumulated them.
type PoolAdvance struct {
	At   hw.Seconds
	Busy int32
}

// RecordAdvances switches the pool's advance history on or off. With
// recording on, every Advance call that moves the clock appends a
// (timestamp, busy) pair, so a fork can integrate the same piecewise
// utilization sums — bit for bit — under a DIFFERENT unit budget (the
// integral is a float accumulation; one fused total*elapsed product
// would differ in the last bits from the per-interval sum a scratch run
// accumulates).
func (p *Pool) RecordAdvances(on bool) {
	if on {
		if p.advances == nil {
			p.advances = []PoolAdvance{}
		}
		return
	}
	p.advances = nil
}

// AdvanceHistory returns the recorded advance history (nil when
// recording is off). The slice is a copy.
func (p *Pool) AdvanceHistory() []PoolAdvance {
	if p.advances == nil {
		return nil
	}
	return append([]PoolAdvance(nil), p.advances...)
}

// ReplayHistory drives a fresh pool through a recorded advance history
// and then installs the checkpoint's final busy level and grant count.
// The pool must be untouched (no grants, no prior advances): replaying
// onto a used pool would interleave with real history and is rejected.
// The busy integral re-accumulates the recorded per-interval levels —
// identical across every unit budget the checkpoint is valid for, since
// a valid budget range by construction produced the same grant sizes —
// while the total integral accumulates the fork's OWN unit budget over
// the same intervals.
func (p *Pool) ReplayHistory(history []PoolAdvance, busy, grants int) error {
	if p.busy != 0 || p.grants != 0 || p.lastAdvance != 0 || p.totalUnitTime != 0 {
		return fmt.Errorf("pim: ReplayHistory on a pool already in use (busy=%d grants=%d t=%.9g)",
			p.busy, p.grants, p.lastAdvance)
	}
	if busy < 0 || busy > p.total || grants < 0 {
		return fmt.Errorf("pim: ReplayHistory busy=%d grants=%d on a %d-unit pool", busy, grants, p.total)
	}
	for _, adv := range history {
		dt := adv.At - p.lastAdvance
		if dt <= 0 {
			continue
		}
		p.busyUnitTime += float64(adv.Busy) * dt
		p.totalUnitTime += float64(p.total) * dt
		p.lastAdvance = adv.At
	}
	p.busy = busy
	p.grants = grants
	return nil
}
