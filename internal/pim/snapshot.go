package pim

import (
	"fmt"

	"heteropim/internal/hw"
)

// Snapshot support for the delta-simulation layer (internal/core): a
// forked design-space candidate resumes from a checkpointed prefix of a
// base run, so the PIM-side state the executor carries — the Fig. 7
// status registers and the fixed-pool utilization integrals — must be
// reproducible in the fork exactly as a from-scratch run would have
// built them.

// RegistersSnapshot is a frozen deep copy of a register file. It is
// immutable once taken: one snapshot may instantiate any number of
// forked register files concurrently.
type RegistersSnapshot struct {
	bankBusy []int
	progBusy []int
	inflight map[OpToken]int32
	slab     []Location
	free     []int32
	lastTok  OpToken
}

// Snapshot deep-copies the register file's current state, including the
// per-entry bank lists (which may alias caller storage in the live
// file).
func (r *Registers) Snapshot() *RegistersSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &RegistersSnapshot{
		bankBusy: append([]int(nil), r.bankBusy...),
		progBusy: append([]int(nil), r.progBusy...),
		inflight: make(map[OpToken]int32, len(r.inflight)),
		slab:     make([]Location, len(r.slab)),
		free:     append([]int32(nil), r.free...),
		lastTok:  r.lastTok,
	}
	for tok, slot := range r.inflight {
		s.inflight[tok] = slot
	}
	for i, loc := range r.slab {
		loc.Banks = append([]int(nil), loc.Banks...)
		s.slab[i] = loc
	}
	return s
}

// NewRegisters instantiates a fresh register file at the snapshot's
// state. Token numbering continues from the snapshot's sequence, so a
// fork issues exactly the tokens the source run would have.
func (s *RegistersSnapshot) NewRegisters() *Registers {
	r := &Registers{
		bankBusy: append([]int(nil), s.bankBusy...),
		progBusy: append([]int(nil), s.progBusy...),
		inflight: make(map[OpToken]int32, len(s.inflight)),
		slab:     make([]Location, len(s.slab)),
		free:     append([]int32(nil), s.free...),
		lastTok:  s.lastTok,
	}
	for tok, slot := range s.inflight {
		r.inflight[tok] = slot
	}
	for i, loc := range s.slab {
		loc.Banks = append([]int(nil), loc.Banks...)
		r.slab[i] = loc
	}
	return r
}

// InFlight returns how many offloaded operations the snapshot holds
// open (their Complete calls happen in the forked suffix).
func (s *RegistersSnapshot) InFlight() int { return len(s.inflight) }

// RecordAdvances switches the pool's advance history on or off. With
// recording on, every Advance call that moves the clock appends its
// timestamp, so a fork can integrate the same piecewise utilization
// sums — bit for bit — under a DIFFERENT unit budget (the integral is a
// float accumulation; one fused total*elapsed product would differ in
// the last bits from the per-interval sum a scratch run accumulates).
func (p *Pool) RecordAdvances(on bool) {
	if on {
		if p.advances == nil {
			p.advances = []hw.Seconds{}
		}
		return
	}
	p.advances = nil
}

// AdvanceHistory returns the recorded advance timestamps (nil when
// recording is off). The slice is a copy.
func (p *Pool) AdvanceHistory() []hw.Seconds {
	if p.advances == nil {
		return nil
	}
	return append([]hw.Seconds(nil), p.advances...)
}

// ReplayAdvances drives a fresh pool's clock through a recorded advance
// history. The pool must be untouched (no grants, no prior advances):
// replaying onto a used pool would interleave with real history and is
// rejected. Because the pool is idle throughout a replayed prefix, the
// busy integral stays exactly zero and the total integral accumulates
// the fork's OWN unit budget over the same intervals.
func (p *Pool) ReplayAdvances(history []hw.Seconds) error {
	if p.busy != 0 || p.grants != 0 || p.lastAdvance != 0 || p.totalUnitTime != 0 {
		return fmt.Errorf("pim: ReplayAdvances on a pool already in use (busy=%d grants=%d t=%.9g)",
			p.busy, p.grants, p.lastAdvance)
	}
	for _, t := range history {
		p.Advance(t)
	}
	return nil
}
