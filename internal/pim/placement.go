// Package pim models the heterogeneous PIM hardware on the logic die of
// the 3D memory stack: the pool of fixed-function PIMs (32-bit FP
// multiplier+adder pairs) with their thermal-aware bank placement, the
// programmable PIM processors, and the hardware status registers the
// runtime scheduler queries (paper Sections III-A, IV-D, Fig. 7).
package pim

import (
	"fmt"
	"sort"

	"heteropim/internal/hmc"
	"heteropim/internal/hw"
)

// Thermal weights for the placement policy: banks with better heat
// dissipation paths (corners, then edges) can support higher compute
// density (Section IV-D).
const (
	cornerWeight = 1.5
	edgeWeight   = 1.25
	centerWeight = 1.0
)

// Placement assigns a number of fixed-function units to every bank.
type Placement struct {
	// Units[i] is the number of multiplier+adder pairs in bank i.
	Units []int
}

// Total returns the summed unit count.
func (p Placement) Total() int {
	t := 0
	for _, u := range p.Units {
		t += u
	}
	return t
}

// ThermalPlacement distributes total units across the stack's banks in
// proportion to their thermal weight, using the largest-remainder method
// so the counts sum exactly to total. This implements the paper's policy
// of placing more fixed-function PIMs on edge and corner banks.
func ThermalPlacement(stack *hmc.Stack, total int) (Placement, error) {
	if total < 0 {
		return Placement{}, fmt.Errorf("pim: negative unit budget %d", total)
	}
	n := stack.Banks()
	weights := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		switch stack.ClassOf(i) {
		case hmc.Corner:
			weights[i] = cornerWeight
		case hmc.Edge:
			weights[i] = edgeWeight
		default:
			weights[i] = centerWeight
		}
		sum += weights[i]
	}
	return apportion(weights, sum, total), nil
}

// UniformPlacement spreads units as evenly as possible across banks; it
// exists for the placement ablation study.
func UniformPlacement(stack *hmc.Stack, total int) (Placement, error) {
	if total < 0 {
		return Placement{}, fmt.Errorf("pim: negative unit budget %d", total)
	}
	n := stack.Banks()
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	return apportion(weights, float64(n), total), nil
}

// apportion performs largest-remainder apportionment of total units over
// the given weights.
func apportion(weights []float64, weightSum float64, total int) Placement {
	n := len(weights)
	units := make([]int, n)
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, 0, n)
	assigned := 0
	for i, w := range weights {
		exact := float64(total) * w / weightSum
		units[i] = int(exact)
		assigned += units[i]
		fracs = append(fracs, frac{i, exact - float64(units[i])})
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].rem != fracs[b].rem {
			return fracs[a].rem > fracs[b].rem
		}
		return fracs[a].idx < fracs[b].idx
	})
	for i := 0; assigned < total; i++ {
		units[fracs[i%n].idx]++
		assigned++
	}
	return Placement{Units: units}
}

// Verify checks a placement against the stack it was built for: the
// thermal policy must be monotone (corner banks hold at least as many
// units as edge banks, which hold at least as many as center banks).
func (p Placement) Verify(stack *hmc.Stack) error {
	if len(p.Units) != stack.Banks() {
		return fmt.Errorf("pim: placement covers %d banks, stack has %d", len(p.Units), stack.Banks())
	}
	minByClass := map[hmc.BankClass]int{}
	maxByClass := map[hmc.BankClass]int{}
	for i, u := range p.Units {
		if u < 0 {
			return fmt.Errorf("pim: bank %d has negative units", i)
		}
		c := stack.ClassOf(i)
		if cur, ok := minByClass[c]; !ok || u < cur {
			minByClass[c] = u
		}
		if cur, ok := maxByClass[c]; !ok || u > cur {
			maxByClass[c] = u
		}
	}
	if minByClass[hmc.Corner] < maxByClass[hmc.Edge]-1 {
		return fmt.Errorf("pim: corner banks (%d min) hold fewer units than edge banks (%d max)",
			minByClass[hmc.Corner], maxByClass[hmc.Edge])
	}
	if minByClass[hmc.Edge] < maxByClass[hmc.Center]-1 {
		return fmt.Errorf("pim: edge banks (%d min) hold fewer units than center banks (%d max)",
			minByClass[hmc.Edge], maxByClass[hmc.Center])
	}
	return nil
}

// PeakFlops returns the aggregate FP32 throughput of the placed units at
// the stack's effective frequency.
func (p Placement) PeakFlops(spec hw.FixedPIMSpec, stack hw.StackSpec) hw.FlopsPerSec {
	return float64(p.Total()) * spec.FlopsPerUnitCycle * stack.EffectiveFreq()
}
