package pim

import (
	"math"
	"testing"
	"testing/quick"

	"heteropim/internal/hmc"
	"heteropim/internal/hw"
)

func paperStack(t testing.TB) *hmc.Stack {
	t.Helper()
	s, err := hmc.New(hw.PaperStack(1))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestThermalPlacementTotals(t *testing.T) {
	s := paperStack(t)
	for _, total := range []int{0, 1, 31, 32, 444, 1000} {
		p, err := ThermalPlacement(s, total)
		if err != nil {
			t.Fatalf("total %d: %v", total, err)
		}
		if got := p.Total(); got != total {
			t.Errorf("total %d: placement sums to %d", total, got)
		}
	}
	if _, err := ThermalPlacement(s, -1); err == nil {
		t.Error("negative budget: want error")
	}
}

func TestThermalPlacementFavorsCornersAndEdges(t *testing.T) {
	s := paperStack(t)
	p, err := ThermalPlacement(s, hw.PaperFixedUnits)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(s); err != nil {
		t.Fatal(err)
	}
	// Aggregate per class: per-bank average must be strictly ordered.
	sum := map[hmc.BankClass]float64{}
	cnt := map[hmc.BankClass]float64{}
	for i, u := range p.Units {
		c := s.ClassOf(i)
		sum[c] += float64(u)
		cnt[c]++
	}
	corner := sum[hmc.Corner] / cnt[hmc.Corner]
	edge := sum[hmc.Edge] / cnt[hmc.Edge]
	center := sum[hmc.Center] / cnt[hmc.Center]
	if !(corner > edge && edge > center) {
		t.Fatalf("thermal ordering violated: corner=%.2f edge=%.2f center=%.2f", corner, edge, center)
	}
}

func TestUniformPlacement(t *testing.T) {
	s := paperStack(t)
	p, err := UniformPlacement(s, 444)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total() != 444 {
		t.Fatalf("uniform placement sums to %d", p.Total())
	}
	min, max := p.Units[0], p.Units[0]
	for _, u := range p.Units {
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	if max-min > 1 {
		t.Fatalf("uniform placement spread %d..%d", min, max)
	}
	if _, err := UniformPlacement(s, -3); err == nil {
		t.Error("negative budget: want error")
	}
}

func TestPlacementTotalQuick(t *testing.T) {
	s := paperStack(t)
	f := func(n uint16) bool {
		total := int(n % 2048)
		pt, err1 := ThermalPlacement(s, total)
		pu, err2 := UniformPlacement(s, total)
		return err1 == nil && err2 == nil && pt.Total() == total && pu.Total() == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementVerifyCatchesBadPlacements(t *testing.T) {
	s := paperStack(t)
	p, _ := ThermalPlacement(s, 444)
	bad := Placement{Units: p.Units[:10]}
	if err := bad.Verify(s); err == nil {
		t.Error("short placement: want error")
	}
	inverted := Placement{Units: make([]int, s.Banks())}
	for i := range inverted.Units {
		if s.ClassOf(i) == hmc.Center {
			inverted.Units[i] = 20
		} else {
			inverted.Units[i] = 1
		}
	}
	if err := inverted.Verify(s); err == nil {
		t.Error("inverted thermal placement: want error")
	}
	neg := Placement{Units: make([]int, s.Banks())}
	neg.Units[0] = -1
	if err := neg.Verify(s); err == nil {
		t.Error("negative units: want error")
	}
}

func TestPlacementPeakFlops(t *testing.T) {
	s := paperStack(t)
	p, _ := ThermalPlacement(s, 444)
	spec := hw.PaperFixedPIM(444)
	got := p.PeakFlops(spec, hw.PaperStack(1))
	want := 444 * 2 * 312.5e6
	if math.Abs(got-want) > 1 {
		t.Fatalf("peak = %g, want %g", got, want)
	}
	if got4 := p.PeakFlops(spec, hw.PaperStack(4)); math.Abs(got4-4*want) > 1 {
		t.Fatalf("4x peak = %g, want %g", got4, 4*want)
	}
}

func TestPoolGrantRelease(t *testing.T) {
	s := paperStack(t)
	pl, _ := ThermalPlacement(s, 100)
	pool := NewPool(hw.PaperFixedPIM(100), pl)
	if pool.Total() != 100 || pool.Available() != 100 {
		t.Fatal("fresh pool must be fully available")
	}
	if got := pool.Grant(60); got != 60 {
		t.Fatalf("grant = %d, want 60", got)
	}
	if got := pool.Grant(60); got != 40 {
		t.Fatalf("over-grant = %d, want 40 (clamped)", got)
	}
	if got := pool.Grant(5); got != 0 {
		t.Fatalf("empty pool grant = %d, want 0", got)
	}
	if pool.Grants() != 2 {
		t.Fatalf("grants = %d, want 2 (zero grants don't count)", pool.Grants())
	}
	if err := pool.Release(100); err != nil {
		t.Fatal(err)
	}
	if err := pool.Release(1); err == nil {
		t.Fatal("releasing more than busy must error")
	}
	if pool.Grant(0) != 0 || pool.Grant(-5) != 0 {
		t.Fatal("non-positive grant wants must return 0")
	}
}

func TestPoolUtilizationIntegral(t *testing.T) {
	s := paperStack(t)
	pl, _ := ThermalPlacement(s, 100)
	pool := NewPool(hw.PaperFixedPIM(100), pl)
	pool.Grant(50)
	pool.Advance(1.0) // 50 busy units for 1s
	if err := pool.Release(50); err != nil {
		t.Fatal(err)
	}
	pool.Advance(2.0) // 0 busy for 1s
	if got := pool.Utilization(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("utilization = %g, want 0.25", got)
	}
	if got := pool.BusyUnitSeconds(); math.Abs(got-50) > 1e-12 {
		t.Fatalf("busy unit-seconds = %g, want 50", got)
	}
	pool.Advance(1.5) // going backwards is a no-op
	if pool.Now() != 2.0 {
		t.Fatalf("clock moved backwards to %g", pool.Now())
	}
}

func TestPoolUtilizationEmpty(t *testing.T) {
	pool := NewPool(hw.PaperFixedPIM(10), Placement{Units: []int{10}})
	if pool.Utilization() != 0 {
		t.Fatal("utilization before any time passes must be 0")
	}
}

func TestRegistersLifecycle(t *testing.T) {
	r := NewRegisters(32, 2)
	tok, err := r.Offload(Location{Banks: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsBankBusy(0) || !r.IsBankBusy(1) || r.IsBankBusy(2) {
		t.Fatal("bank busy bits wrong after offload")
	}
	done, err := r.QueryCompletion(tok)
	if err != nil || done {
		t.Fatalf("completion before Complete: %v %v", done, err)
	}
	loc, err := r.QueryLocation(tok)
	if err != nil || loc.OnProgrammable || len(loc.Banks) != 2 {
		t.Fatalf("location = %+v, %v", loc, err)
	}
	if err := r.Complete(tok); err != nil {
		t.Fatal(err)
	}
	if r.IsBankBusy(0) || r.IsBankBusy(1) {
		t.Fatal("banks still busy after completion")
	}
	if done, _ := r.QueryCompletion(tok); !done {
		t.Fatal("op not marked complete")
	}
	if err := r.Complete(tok); err == nil {
		t.Fatal("double completion must error")
	}
}

func TestRegistersProgrammable(t *testing.T) {
	r := NewRegisters(32, 2)
	if r.IdleProcessor() != 0 {
		t.Fatal("fresh registers: processor 0 should be idle")
	}
	tok, err := r.Offload(Location{OnProgrammable: true, Processor: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsProcessorBusy(0) || r.IsProcessorBusy(1) {
		t.Fatal("processor busy bits wrong")
	}
	if r.IdleProcessor() != 1 {
		t.Fatal("processor 1 should be the idle one")
	}
	if err := r.Complete(tok); err != nil {
		t.Fatal(err)
	}
	if r.IsProcessorBusy(0) {
		t.Fatal("processor 0 still busy after completion")
	}
}

func TestRegistersErrors(t *testing.T) {
	r := NewRegisters(4, 1)
	if _, err := r.Offload(Location{Banks: []int{7}}); err == nil {
		t.Error("offload to missing bank: want error")
	}
	if _, err := r.Offload(Location{OnProgrammable: true, Processor: 3}); err == nil {
		t.Error("offload to missing processor: want error")
	}
	if err := r.Complete(99); err == nil {
		t.Error("completing unknown token: want error")
	}
	if _, err := r.QueryCompletion(99); err == nil {
		t.Error("querying unknown token: want error")
	}
	if _, err := r.QueryLocation(99); err == nil {
		t.Error("locating unknown token: want error")
	}
	if r.IsBankBusy(-1) || r.IsProcessorBusy(-1) {
		t.Error("out-of-range queries must read idle")
	}
}

func TestProgPIMAcquireRelease(t *testing.T) {
	p := NewProgPIM(hw.PaperProgPIM(2))
	i := p.Acquire()
	j := p.Acquire()
	if i == j || i < 0 || j < 0 {
		t.Fatalf("acquired %d,%d", i, j)
	}
	if p.Acquire() != -1 {
		t.Fatal("third acquire should fail")
	}
	p.Advance(2.0)
	if got := p.BusySeconds(); math.Abs(got-4.0) > 1e-12 {
		t.Fatalf("busy seconds = %g, want 4", got)
	}
	if err := p.Release(i); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(i); err == nil {
		t.Fatal("double release must error")
	}
	if err := p.Release(99); err == nil {
		t.Fatal("bogus release must error")
	}
	p.Advance(3.0)
	if got := p.BusySeconds(); math.Abs(got-5.0) > 1e-12 {
		t.Fatalf("busy seconds = %g, want 5", got)
	}
	if p.Kernels() != 2 {
		t.Fatalf("kernels = %d, want 2", p.Kernels())
	}
}

func TestProgPIMPerProcessorFlops(t *testing.T) {
	p := NewProgPIM(hw.PaperProgPIM(1))
	want := 4 * 2e9 * 2.0
	if got := p.PerProcessorFlops(); math.Abs(got-want) > 1 {
		t.Fatalf("per-processor flops = %g, want %g", got, want)
	}
}
