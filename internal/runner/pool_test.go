package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsEverythingAccepted submits more jobs than workers and
// checks every accepted job ran exactly once after Drain.
func TestPoolRunsEverythingAccepted(t *testing.T) {
	p := NewPool(4, 64)
	var ran atomic.Int64
	accepted := 0
	for i := 0; i < 50; i++ {
		err := p.Submit(func(context.Context) { ran.Add(1) })
		if err == nil {
			accepted++
		} else if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if int(ran.Load()) != accepted {
		t.Fatalf("ran %d of %d accepted jobs", ran.Load(), accepted)
	}
}

// TestPoolShedsLoadWhenFull fills the queue with blocked jobs and
// checks the next Submit returns ErrQueueFull instead of blocking.
func TestPoolShedsLoadWhenFull(t *testing.T) {
	p := NewPool(1, 2)
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	blocker := func(context.Context) { <-release }
	wg.Add(1)
	if err := p.Submit(func(ctx context.Context) { close(started); blocker(ctx); wg.Done() }); err != nil {
		t.Fatal(err)
	}
	<-started // the worker is now occupied; the queue is empty
	for i := 0; i < 2; i++ {
		wg.Add(1)
		if err := p.Submit(func(ctx context.Context) { blocker(ctx); wg.Done() }); err != nil {
			t.Fatalf("fill submit %d: %v", i, err)
		}
	}
	if got := p.QueueDepth(); got != 2 {
		t.Fatalf("QueueDepth = %d, want 2", got)
	}
	if err := p.Submit(blocker); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity submit = %v, want ErrQueueFull", err)
	}
	close(release)
	wg.Wait()
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPoolDrainStopsAdmission checks Submit after Drain fails with
// ErrPoolDraining and that Drain is idempotent.
func TestPoolDrainStopsAdmission(t *testing.T) {
	p := NewPool(2, 4)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(func(context.Context) {}); !errors.Is(err, ErrPoolDraining) {
		t.Fatalf("post-drain submit = %v, want ErrPoolDraining", err)
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestPoolDrainTimeout checks an expired context surfaces instead of
// waiting forever on a stuck job.
func TestPoolDrainTimeout(t *testing.T) {
	p := NewPool(1, 1)
	release := make(chan struct{})
	if err := p.Submit(func(context.Context) { <-release }); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain = %v, want DeadlineExceeded", err)
	}
	close(release)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPoolCloseCancelsContext checks Close cancels the context jobs
// receive.
func TestPoolCloseCancelsContext(t *testing.T) {
	p := NewPool(1, 1)
	canceled := make(chan struct{})
	if err := p.Submit(func(ctx context.Context) {
		<-ctx.Done()
		close(canceled)
	}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	select {
	case <-canceled:
	default:
		t.Fatal("Close returned before the job observed cancellation")
	}
}

// TestPoolConcurrentSubmitDrain races submitters against a drain under
// the race detector: no panics (send-on-closed) and every accepted job
// runs.
func TestPoolConcurrentSubmitDrain(t *testing.T) {
	p := NewPool(4, 16)
	var accepted, ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if p.Submit(func(context.Context) { ran.Add(1) }) == nil {
					accepted.Add(1)
				}
			}
		}()
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// Jobs accepted before the queue closed may still be finishing.
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != accepted.Load() {
		t.Fatalf("ran %d of %d accepted jobs", ran.Load(), accepted.Load())
	}
}
