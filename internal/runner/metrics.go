package runner

import (
	"sync/atomic"
	"time"

	"heteropim/internal/metrics"
)

// Pool utilization gauges: how many workers are executing cells right
// now and how many accepted jobs are waiting for one. The serving
// daemon wires its /metrics registry here at startup so shard
// scheduling (e.g. the per-stack engines of a multi-stack run fanned
// out through Map) is observable alongside the simulation timelines;
// with no registry attached the accounting cost is one atomic add per
// transition.
//
// The counts aggregate across every Map call and Pool in the process —
// the package-level view matches how the process actually loads its
// CPUs, which is the question the gauges answer.

// Gauge names exported to the metrics registry.
const (
	// MetricWorkersBusy is the number of runner workers (Map worker
	// goroutines plus Pool workers executing a job) currently busy.
	MetricWorkersBusy = "runner.workers_busy"
	// MetricQueueDepth is the number of accepted Pool jobs waiting for
	// a worker.
	MetricQueueDepth = "runner.queue_depth"
)

var (
	gaugeReg    atomic.Pointer[metrics.Registry]
	busyWorkers atomic.Int64
	queuedJobs  atomic.Int64
	gaugeEpoch  = time.Now()
)

// SetMetricsRegistry attaches (or with nil detaches) the registry that
// receives the runner gauges, publishing the current values immediately
// so the series exist even on an idle process. It returns the previous
// registry.
func SetMetricsRegistry(r *metrics.Registry) *metrics.Registry {
	prev := gaugeReg.Swap(r)
	if r != nil {
		r.Set(MetricWorkersBusy, wallSeconds(), float64(busyWorkers.Load()))
		r.Set(MetricQueueDepth, wallSeconds(), float64(queuedJobs.Load()))
	}
	return prev
}

// BusyWorkers reports the current busy-worker count.
func BusyWorkers() int { return int(busyWorkers.Load()) }

// QueuedJobs reports the current queued-job count across pools.
func QueuedJobs() int { return int(queuedJobs.Load()) }

// wallSeconds is the gauge timestamp: wall-clock seconds since process
// start (runner work is real time, not simulated time).
func wallSeconds() float64 { return time.Since(gaugeEpoch).Seconds() }

func workerDelta(d int64) {
	v := busyWorkers.Add(d)
	if r := gaugeReg.Load(); r != nil {
		r.Set(MetricWorkersBusy, wallSeconds(), float64(v))
	}
}

func queueDelta(d int64) {
	v := queuedJobs.Add(d)
	if r := gaugeReg.Load(); r != nil {
		r.Set(MetricQueueDepth, wallSeconds(), float64(v))
	}
}
