package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := Map(context.Background(), 50, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 50 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Fatalf("got (%v, %v), want (nil, nil)", out, err)
	}
}

func TestMapReportsLowestIndexError(t *testing.T) {
	wantErr := errors.New("cell 3 failed")
	_, err := Map(context.Background(), 20, 4, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			return 0, wantErr
		}
		if i > 10 {
			return 0, fmt.Errorf("later failure at %d", i)
		}
		return i, nil
	})
	// The lowest-index error must win regardless of completion order:
	// cell 3 always runs (workers start at the front), so even if a
	// later cell fails first, its error is superseded.
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want %v", err, wantErr)
	}
}

func TestMapSequentialFailsFast(t *testing.T) {
	wantErr := errors.New("boom")
	var calls atomic.Int64
	_, err := Map(context.Background(), 10, 1, func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		if i == 2 {
			return 0, wantErr
		}
		return i, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want %v", err, wantErr)
	}
	if calls.Load() != 3 {
		t.Fatalf("sequential mode ran %d cells after the failure, want 3 total", calls.Load())
	}
}

func TestMapHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 10, 4, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(context.Background(), 100, 8, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}

func TestSetWorkers(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(0)
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d with default setting", got)
	}
}
