package runner

import (
	"context"
	"sync"
	"testing"

	"heteropim/internal/metrics"
)

// The pool gauges must rise while work is in flight and return to zero
// once it drains, both in the package counters and in an attached
// metrics registry.
func TestWorkerGaugesRiseAndFall(t *testing.T) {
	reg := metrics.NewRegistry()
	prev := SetMetricsRegistry(reg)
	defer SetMetricsRegistry(prev)

	if v := reg.GaugeValue(MetricWorkersBusy); v != float64(BusyWorkers()) {
		t.Fatalf("attach did not publish workers_busy: registry %g, package %d", v, BusyWorkers())
	}

	release := make(chan struct{})
	var peak int
	var mu sync.Mutex
	done := make(chan error, 1)
	go func() {
		_, err := Map(context.Background(), 4, 4, func(context.Context, int) (int, error) {
			mu.Lock()
			if b := BusyWorkers(); b > peak {
				peak = b
			}
			mu.Unlock()
			<-release
			return 0, nil
		})
		done <- err
	}()
	// All four cells block until released, so the gauge observed inside
	// the cells must reach the worker count.
	for i := 0; i < 4; i++ {
		release <- struct{}{}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := peak
	mu.Unlock()
	if got < 1 {
		t.Fatalf("busy-worker peak %d, want >= 1", got)
	}
	if b := BusyWorkers(); b != 0 {
		t.Errorf("workers still busy after Map returned: %d", b)
	}
	if v := reg.GaugeValue(MetricWorkersBusy); v != 0 {
		t.Errorf("registry workers_busy %g after drain, want 0", v)
	}
}

func TestQueueDepthGauge(t *testing.T) {
	reg := metrics.NewRegistry()
	prev := SetMetricsRegistry(reg)
	defer SetMetricsRegistry(prev)

	p := NewPool(1, 8)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(func(context.Context) { close(started); <-block }); err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now occupied
	for i := 0; i < 3; i++ {
		if err := p.Submit(func(context.Context) {}); err != nil {
			t.Fatal(err)
		}
	}
	if q := QueuedJobs(); q < 3 {
		t.Errorf("queued jobs %d with a blocked worker, want >= 3", q)
	}
	if v := reg.GaugeValue(MetricQueueDepth); v < 3 {
		t.Errorf("registry queue_depth %g, want >= 3", v)
	}
	close(block)
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if q := QueuedJobs(); q != 0 {
		t.Errorf("queued jobs %d after drain, want 0", q)
	}
	if v := reg.GaugeValue(MetricQueueDepth); v != 0 {
		t.Errorf("registry queue_depth %g after drain, want 0", v)
	}
}
