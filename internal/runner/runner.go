// Package runner is the parallel experiment-execution layer: a bounded,
// context-aware worker pool that fans independent simulation cells
// (model x configuration, model x frequency, ...) out across goroutines
// and reassembles their results in deterministic input order.
//
// Every cell must be an independent, pure computation: the pool never
// parallelizes WITHIN one discrete-event simulation (the engine's
// (time, seq) determinism is per-run), only ACROSS runs. Because each
// cell's result lands at its input index, a parallel sweep produces
// bit-identical tables to the sequential one.
package runner

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable that overrides the default
// worker count (0 or unset means GOMAXPROCS).
const EnvWorkers = "HETEROPIM_WORKERS"

// configured holds the SetWorkers override; 0 means "resolve from the
// environment or GOMAXPROCS".
var configured atomic.Int64

func init() {
	if v, err := strconv.Atoi(os.Getenv(EnvWorkers)); err == nil && v > 0 {
		configured.Store(int64(v))
	}
}

// SetWorkers fixes the default pool width for subsequent sweeps;
// n <= 0 restores the GOMAXPROCS default. It returns the previous
// setting so callers can restore it.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(configured.Swap(int64(n)))
}

// Workers resolves the default pool width: SetWorkers override first,
// then HETEROPIM_WORKERS, then GOMAXPROCS capped at NumCPU. The cap
// matters on constrained hosts (containers, CI runners) where
// GOMAXPROCS exceeds the physical cores: extra workers for CPU-bound
// simulation cells only add scheduler churn — the small-cell
// regressions BENCH_parallel.json recorded on a one-core host. An
// explicit SetWorkers/HETEROPIM_WORKERS setting is honored as given.
func Workers() int {
	if n := int(configured.Load()); n > 0 {
		return n
	}
	n := runtime.GOMAXPROCS(0)
	if c := runtime.NumCPU(); c < n {
		n = c
	}
	return n
}

// InlineCellCost is the per-cell estimated cost (seconds) below which
// Map runs cells inline on the calling goroutine: dispatching a
// sub-threshold cell to a worker costs more in wakeups and cache
// traffic than the cell itself.
const InlineCellCost = 500e-6

// mapConfig collects Map's per-call options.
type mapConfig struct {
	cellCost float64
}

// Option tunes one Map/ForEach call.
type Option func(*mapConfig)

// WithCellCost supplies an estimated per-cell cost in seconds. Cells
// estimated below InlineCellCost run inline on the calling goroutine
// (identical to a one-worker pool, so output order and determinism are
// unchanged); at or above the threshold the hint has no effect.
func WithCellCost(seconds float64) Option {
	return func(c *mapConfig) { c.cellCost = seconds }
}

// Map runs fn(ctx, i) for i in [0, n) on at most `workers` goroutines
// (Workers() when workers <= 0) and returns the results in input order.
//
// The first error (by lowest index) cancels the pool: in-flight cells
// finish, unstarted cells are skipped, and that error is returned. A
// canceled ctx stops issue of new cells the same way. With one worker
// the cells run on the calling goroutine in input order — the
// sequential baseline the determinism tests compare against; a
// WithCellCost hint below InlineCellCost forces that inline path.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error), opts ...Option) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	var cfg mapConfig
	for _, o := range opts {
		o(&cfg)
	}
	if workers <= 0 {
		workers = Workers()
	}
	if cfg.cellCost > 0 && cfg.cellCost < InlineCellCost {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		workerDelta(1)
		defer workerDelta(-1)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		errIdx   int
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// One busy-gauge transition per worker lifetime, not per
			// cell: Map workers exit as soon as the cells run out, so
			// the gauge tracks real occupancy without putting a
			// registry update on the per-cell hot path.
			workerDelta(1)
			defer workerDelta(-1)
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(ctx, i)
				if err != nil {
					mu.Lock()
					if firstErr == nil || i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
					cancel()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return out, firstErr
	}
	if err := parent.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// ForEach is Map for side-effecting cells with no result value.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error, opts ...Option) error {
	_, err := Map(ctx, n, workers, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	}, opts...)
	return err
}
