package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// Map/ForEach fan a *known* batch of cells out and return; a serving
// daemon instead needs a pool that outlives any one request. Pool is
// that long-lived counterpart: a fixed number of workers draining a
// fixed-capacity queue, with explicit admission (Submit never blocks —
// a full queue is the caller's signal to shed load) and a graceful
// drain (stop admitting, finish everything already accepted).

// ErrQueueFull is returned by Submit when the admission queue is at
// capacity; callers shed load (HTTP 429) instead of blocking.
var ErrQueueFull = errors.New("runner: pool queue full")

// ErrPoolDraining is returned by Submit once Drain has begun.
var ErrPoolDraining = errors.New("runner: pool draining")

// Pool is a persistent bounded worker pool with a fixed-capacity
// admission queue. All methods are safe for concurrent use.
type Pool struct {
	queue    chan func(context.Context)
	capacity int
	workers  int
	depth    atomic.Int64
	running  atomic.Int64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// mu serializes Submit against Drain's close(queue): a send on a
	// closed channel would panic, so draining flips under the write
	// lock while submitters hold the read lock.
	mu       sync.RWMutex
	draining bool
}

// NewPool starts a pool of `workers` goroutines (Workers() when
// workers <= 0) behind a queue holding up to `capacity` pending jobs
// (capacity <= 0 defaults to 4x the worker count).
func NewPool(workers, capacity int) *Pool {
	if workers <= 0 {
		workers = Workers()
	}
	if capacity <= 0 {
		capacity = 4 * workers
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		queue:    make(chan func(context.Context), capacity),
		capacity: capacity,
		workers:  workers,
		ctx:      ctx,
		cancel:   cancel,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.queue {
				p.depth.Add(-1)
				queueDelta(-1)
				p.running.Add(1)
				workerDelta(1)
				job(p.ctx)
				p.running.Add(-1)
				workerDelta(-1)
			}
		}()
	}
	return p
}

// Submit enqueues a job for execution, never blocking: a full queue
// returns ErrQueueFull, a draining pool ErrPoolDraining. The job
// receives the pool's context, which is canceled by Close.
func (p *Pool) Submit(job func(context.Context)) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.draining {
		return ErrPoolDraining
	}
	select {
	case p.queue <- job:
		p.depth.Add(1)
		queueDelta(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// QueueDepth reports how many accepted jobs are waiting for a worker.
func (p *Pool) QueueDepth() int { return int(p.depth.Load()) }

// Running reports how many jobs are executing right now.
func (p *Pool) Running() int { return int(p.running.Load()) }

// Capacity reports the admission queue's size.
func (p *Pool) Capacity() int { return p.capacity }

// NumWorkers reports the pool width.
func (p *Pool) NumWorkers() int { return p.workers }

// Drain stops admission and waits until every accepted job (queued and
// in-flight) has finished, or ctx expires — in which case the workers
// keep finishing in the background and ctx.Err() is returned. Drain is
// idempotent; concurrent calls all wait.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		close(p.queue)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels the pool context (signaling in-flight jobs to stop)
// and then drains. Jobs that ignore their context still run to
// completion before Close returns.
func (p *Pool) Close() {
	p.cancel()
	_ = p.Drain(context.Background())
}
