package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// The result cache: a simulation run is a pure function of (graph
// content, hardware configuration, effective options), and the paper's
// evaluation repeats the same cells across figures — Figs. 8 and 9 share
// one 5x5 grid, Fig. 10 re-runs the Hetero column, `pimtrain -config
// all` re-runs single cells of it. Memoizing whole Results by a
// content-addressed fingerprint collapses every duplicate cell to one
// live run:
//
//   - in-memory tier: a process-wide sync.Map with per-entry singleflight
//     (sync.Once), shared by the internal/runner workers, so concurrent
//     requests for the same cell block on one computation instead of
//     racing duplicates;
//   - disk tier (optional): JSON entries under HETEROPIM_CACHE_DIR in a
//     directory versioned by a schema hash of the Result type, so a
//     struct change invalidates the whole tier rather than decoding into
//     the wrong shape. Corrupted, truncated or mismatched entries are
//     treated as misses, never as errors.
//
// Cache hits return value copies of the stored Result — bit-identical to
// the cold run (Result is all value types; Go's JSON float encoding
// round-trips exactly, so the disk tier preserves bit identity too).
//
// Instrumented runs — a Collector, Trace writer or Census attached —
// bypass the cache entirely (no lookup, no store): their purpose is the
// side effects, and a cached Result would silently skip them.

// Fingerprint is the 128-bit content address of one simulation cell.
type Fingerprint struct{ Hi, Lo uint64 }

// String renders the fingerprint as 32 hex digits (the disk file name).
func (f Fingerprint) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

// fpHash is a two-lane FNV-1a accumulator; the lanes mix the same input
// stream with different seeds and a per-word permutation, which is
// plenty of independence for a 128-bit cache address.
type fpHash struct{ hi, lo uint64 }

func newFpHash() fpHash {
	return fpHash{hi: fnvOffset, lo: fnvOffset ^ 0x9e3779b97f4a7c15}
}

func (h *fpHash) u64(v uint64) {
	h.hi = fnvMix(h.hi, v)
	h.lo = fnvMix(h.lo, v*0x9e3779b97f4a7c15+1)
}

func (h *fpHash) i(v int)     { h.u64(uint64(int64(v))) }
func (h *fpHash) f(v float64) { h.u64(math.Float64bits(v)) }
func (h *fpHash) b(v bool) {
	if v {
		h.u64(1)
	} else {
		h.u64(0)
	}
}
func (h *fpHash) str(s string) {
	h.i(len(s))
	h.hi = fnvMixString(h.hi, s)
	h.lo = fnvMixString(h.lo, s)
}
func (h *fpHash) bytes(b []byte) {
	h.i(len(b))
	for _, c := range b {
		h.u64(uint64(c))
	}
}

func (h *fpHash) sum() Fingerprint { return Fingerprint{Hi: h.hi, Lo: h.lo} }

// resultCacheUsable reports whether a RunPIM call may go through the
// cache: the cache must be enabled and the run uninstrumented.
func resultCacheUsable(opts Options) bool {
	return !resultCacheOff.Load() && opts.Collector == nil && opts.Trace == nil && opts.Census == nil
}

// fingerprintRun computes the content address of one simulation cell.
// mode tags the executor ("pim", "cpu", "gpu", "neurocube"), extra is
// executor-specific input (the Neurocube spec); opts must already be
// normalized so default and explicit option spellings share an address.
func fingerprintRun(mode string, g *nn.Graph, cfg hw.SystemConfig, opts Options, extra []byte) Fingerprint {
	h := newFpHash()
	h.str("heteropim-result/" + mode)
	// The hardware configuration, via its JSON form: field order is the
	// declaration order, and a new SystemConfig field changes the bytes —
	// automatic invalidation instead of a silently incomplete hash.
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		// Unreachable for the plain-value SystemConfig; keep the address
		// well-defined anyway.
		h.str("cfg-marshal-error")
	}
	h.bytes(cfgJSON)
	h.bytes(extra)
	// Effective options (the instrumentation fields are nil by
	// resultCacheUsable). HostOnlyOps hashes as its sorted true IDs.
	// The multi-stack axis (Stacks, AllReduce) must be part of the
	// address: an M-stack run of the same graph on the same config is a
	// different cell than the single-stack run (the link parameters ride
	// in via the cfg JSON above).
	h.i(opts.Stacks)
	h.str(string(opts.AllReduce))
	h.b(opts.RC)
	h.b(opts.OP)
	h.i(opts.PipelineDepth)
	h.i(opts.Steps)
	h.b(opts.UseSelection)
	h.f(opts.XPercent)
	h.b(opts.NoCPUFallback)
	h.b(opts.WideProgOps)
	h.b(opts.UniformPlacement)
	h.b(opts.GPUHost)
	h.b(opts.DisableOpportunistic)
	if len(opts.HostOnlyOps) > 0 {
		ids := make([]int, 0, len(opts.HostOnlyOps))
		for id, on := range opts.HostOnlyOps {
			if on {
				ids = append(ids, id)
			}
		}
		sort.Ints(ids)
		h.i(len(ids))
		for _, id := range ids {
			h.i(id)
		}
	} else {
		h.i(0)
	}
	// Full graph content: every field the executors read.
	h.str(g.Model)
	h.i(g.BatchSize)
	h.f(g.InputBytes)
	h.f(g.ParamBytes)
	h.f(g.ActivationBytes)
	h.f(g.GPUUnhiddenTransferFrac)
	h.f(g.GPUUtilization)
	h.f(g.GPUEffFactor)
	h.i(len(g.Ops))
	for _, op := range g.Ops {
		h.str(op.Name)
		h.str(string(op.Type))
		h.f(op.Muls)
		h.f(op.Adds)
		h.f(op.OtherFlops)
		h.f(op.Bytes)
		h.i(op.UnitGranule)
		h.b(op.Params)
		h.i(len(op.Inputs))
		for _, in := range op.Inputs {
			h.i(in)
		}
		h.i(len(op.CrossStep))
		for _, cs := range op.CrossStep {
			h.i(cs)
		}
	}
	return h.sum()
}

// resultEntry is one in-memory cache slot; once gives singleflight
// semantics — concurrent requests for the same fingerprint share one
// live run. done flips to true after once's body finishes, so a
// non-blocking peek can tell a populated entry from an in-flight one.
type resultEntry struct {
	once sync.Once
	done atomic.Bool
	res  Result
	err  error
}

var resultCache sync.Map // Fingerprint -> *resultEntry

// resultCacheOff disables the cache when set (CLI -nocache).
var resultCacheOff atomic.Bool

// resultCacheDir holds the disk-tier directory ("" = memory only).
var resultCacheDir atomic.Value // string

// EnvCacheDir names the on-disk cache directory; empty or unset keeps
// the cache in memory only.
const EnvCacheDir = "HETEROPIM_CACHE_DIR"

func init() {
	resultCacheDir.Store(os.Getenv(EnvCacheDir))
}

// EnableResultCache turns the result cache on or off, returning the
// previous state.
func EnableResultCache(on bool) bool {
	return !resultCacheOff.Swap(!on)
}

// SetResultCacheDir sets the disk-tier directory ("" disables the disk
// tier) and returns the previous one.
func SetResultCacheDir(dir string) string {
	prev, _ := resultCacheDir.Load().(string)
	resultCacheDir.Store(dir)
	return prev
}

// Cache counters (process lifetime; ResetResultCache zeroes them).
var (
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	cacheDiskHits atomic.Int64
	cacheBytes    atomic.Int64
)

// CacheStats is a snapshot of the result-cache counters.
type CacheStats struct {
	// Hits counts lookups served without a live simulation (the memory
	// tier, the disk tier, or a singleflight wait on an in-flight run).
	Hits int64 `json:"hits"`
	// Misses counts live simulations executed on behalf of the cache.
	Misses int64 `json:"misses"`
	// DiskHits is the subset of Hits satisfied from the disk tier.
	DiskHits int64 `json:"disk_hits"`
	// Bytes is the cumulative serialized size of stored results.
	Bytes int64 `json:"bytes"`
}

// ResultCacheStats reads the current counters.
func ResultCacheStats() CacheStats {
	return CacheStats{
		Hits:     cacheHits.Load(),
		Misses:   cacheMisses.Load(),
		DiskHits: cacheDiskHits.Load(),
		Bytes:    cacheBytes.Load(),
	}
}

// ResetResultCache drops every memoized result and zeroes the counters
// (benchmarks isolating cold-path timing, tests).
func ResetResultCache() {
	resultCache.Range(func(k, _ any) bool {
		resultCache.Delete(k)
		return true
	})
	cacheHits.Store(0)
	cacheMisses.Store(0)
	cacheDiskHits.Store(0)
	cacheBytes.Store(0)
}

// DropResultCacheMemory evicts every in-memory result entry while
// leaving the disk tier and the counters untouched. A subsequent
// lookup behaves exactly like a fresh process pointed at the same
// HETEROPIM_CACHE_DIR: disk entries are re-read (counted as DiskHits),
// everything else re-simulates. The cluster harness uses this between
// phases so in-process replicas exercise the shared L2 disk tier the
// way separate replica processes would, instead of inheriting the
// previous phase's process-wide memory tier. Goroutines already
// waiting on an evicted in-flight entry keep their reference and still
// complete normally.
func DropResultCacheMemory() {
	resultCache.Range(func(k, _ any) bool {
		resultCache.Delete(k)
		return true
	})
}

// cachedResult serves fp from the cache, running `run` at most once per
// fingerprint across all goroutines. Deterministic errors are cached in
// memory (repeating a failing cell re-fails identically) but never
// written to disk.
func cachedResult(fp Fingerprint, run func() (Result, error)) (Result, error) {
	v, _ := resultCache.LoadOrStore(fp, &resultEntry{})
	e := v.(*resultEntry)
	ran := false
	e.once.Do(func() {
		defer e.done.Store(true)
		if res, ok := loadDiskResult(fp); ok {
			e.res = res
			cacheDiskHits.Add(1)
			return
		}
		ran = true
		cacheMisses.Add(1)
		e.res, e.err = run()
		if e.err == nil {
			if enc, err := json.Marshal(e.res); err == nil {
				cacheBytes.Add(int64(len(enc)))
				storeDiskResult(fp, e.res)
			}
		}
	})
	if !ran {
		cacheHits.Add(1)
	}
	return e.res, e.err
}

// storeResult inserts an already-computed result under fp — the path by
// which the delta-simulation layer (checkpoint.go) publishes its probe
// and replay results, which are bit-identical to live runs of the same
// cell. A lost LoadOrStore race or an already-populated entry is fine:
// whoever populated it computed the same bits.
func storeResult(fp Fingerprint, res Result) {
	v, _ := resultCache.LoadOrStore(fp, &resultEntry{})
	e := v.(*resultEntry)
	e.once.Do(func() {
		defer e.done.Store(true)
		e.res = res
		if enc, err := json.Marshal(res); err == nil {
			cacheBytes.Add(int64(len(enc)))
			storeDiskResult(fp, res)
		}
	})
}

// PeekPIMResult reports whether the result cache already holds the
// outcome of RunPIM(g, cfg, opts), without running anything and without
// blocking on in-flight computations. A disk-tier hit is promoted into
// the memory tier so the eventual RunPIM for the same cell is a memory
// hit. The design-space explorer uses this to seed its surrogate model
// from the cross-run corpus — ordering information only, so a miss is
// never worth a simulation.
func PeekPIMResult(g *nn.Graph, cfg hw.SystemConfig, opts Options) (Result, bool) {
	opts = opts.withDefaults()
	if !resultCacheUsable(opts) {
		return Result{}, false
	}
	fp := fingerprintRun("pim", g, cfg, opts, nil)
	if v, ok := resultCache.Load(fp); ok {
		e := v.(*resultEntry)
		if e.done.Load() && e.err == nil {
			return e.res, true
		}
		return Result{}, false
	}
	res, ok := loadDiskResult(fp)
	if !ok {
		return Result{}, false
	}
	v, _ := resultCache.LoadOrStore(fp, &resultEntry{})
	e := v.(*resultEntry)
	e.once.Do(func() {
		defer e.done.Store(true)
		e.res = res
		cacheDiskHits.Add(1)
	})
	if e.done.Load() && e.err == nil {
		return e.res, true
	}
	return Result{}, false
}

// ---- disk tier ----

// resultSchemaVersion bumps manually for semantic changes the Result
// type shape does not capture (e.g. a reinterpretation of a field).
const resultSchemaVersion = "1"

// resultSchemaHash versions the disk tier: the manual version plus a
// reflected signature of the Result type, so adding, removing, renaming
// or retyping any (nested) field moves the tier to a fresh directory.
var resultSchemaHash = fmt.Sprintf("%016x",
	fnvMixString(fnvOffset, resultSchemaVersion+":"+typeSig(reflect.TypeOf(Result{}), 0)))

// typeSig renders a type's structural signature.
func typeSig(t reflect.Type, depth int) string {
	if depth > 8 {
		return "..."
	}
	switch t.Kind() {
	case reflect.Struct:
		var b strings.Builder
		b.WriteString("struct{")
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			b.WriteString(f.Name)
			b.WriteByte(':')
			b.WriteString(typeSig(f.Type, depth+1))
			b.WriteByte(';')
		}
		b.WriteString("}")
		return b.String()
	case reflect.Slice, reflect.Array, reflect.Ptr:
		return t.Kind().String() + "[" + typeSig(t.Elem(), depth+1) + "]"
	case reflect.Map:
		return "map[" + typeSig(t.Key(), depth+1) + "]" + typeSig(t.Elem(), depth+1)
	default:
		return t.Kind().String()
	}
}

// diskEntry is the on-disk JSON shape; schema and fingerprint are
// verified on load so a stale or misplaced file reads as a miss.
type diskEntry struct {
	Schema      string `json:"schema"`
	Fingerprint string `json:"fingerprint"`
	Result      Result `json:"result"`
}

// cachePath returns fp's file under the schema-versioned subdirectory,
// or "" when the disk tier is off.
func cachePath(fp Fingerprint) string {
	dir, _ := resultCacheDir.Load().(string)
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, "heteropim-"+resultSchemaHash, fp.String()+".json")
}

// loadDiskResult reads one disk-tier entry; every failure mode
// (missing, unreadable, corrupted, schema or fingerprint mismatch) is a
// plain miss.
func loadDiskResult(fp Fingerprint) (Result, bool) {
	path := cachePath(fp)
	if path == "" {
		return Result{}, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Result{}, false
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return Result{}, false
	}
	if e.Schema != resultSchemaHash || e.Fingerprint != fp.String() {
		return Result{}, false
	}
	cacheBytes.Add(int64(len(data)))
	return e.Result, true
}

// storeDiskResult writes one entry atomically (temp file + rename);
// failures are silent — the disk tier is an optimization, never a
// correctness dependency.
func storeDiskResult(fp Fingerprint, res Result) {
	path := cachePath(fp)
	if path == "" {
		return
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(diskEntry{Schema: resultSchemaHash, Fingerprint: fp.String(), Result: res})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, fp.String()+".*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
	}
}
