package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// randomGraph builds a random but well-formed training-step DAG: random
// op types, random costs, random forward edges, a few cross-step gates.
func randomGraph(rng *rand.Rand, nOps int) *nn.Graph {
	types := []nn.OpType{
		nn.OpConv2D, nn.OpConv2DBackpropFilter, nn.OpConv2DBackpropInput,
		nn.OpMatMul, nn.OpBiasAdd, nn.OpBiasAddGrad, nn.OpRelu, nn.OpReluGrad,
		nn.OpMaxPool, nn.OpMaxPoolGrad, nn.OpApplyAdam, nn.OpMul, nn.OpAdd,
		nn.OpSlice, nn.OpReshape, nn.OpSum, nn.OpBatchNorm, nn.OpSoftmax,
	}
	granules := []int{1, 7, 16, 17, 31, 49, 127, 241}
	g := &nn.Graph{
		Model:          fmt.Sprintf("random-%d", nOps),
		BatchSize:      8,
		InputBytes:     1e6,
		GPUUtilization: 0.5,
	}
	for i := 0; i < nOps; i++ {
		op := nn.Op{
			Name:        fmt.Sprintf("op%d", i),
			Type:        types[rng.Intn(len(types))],
			Muls:        math.Floor(rng.Float64() * 1e9),
			Adds:        math.Floor(rng.Float64() * 1e9),
			OtherFlops:  math.Floor(rng.Float64() * 1e7),
			Bytes:       math.Floor(rng.Float64()*1e8) + 1,
			UnitGranule: granules[rng.Intn(len(granules))],
		}
		// Random backward edges keep the graph acyclic.
		for j := 0; j < i && len(op.Inputs) < 3; j++ {
			if rng.Float64() < 2.0/float64(i+1) {
				op.Inputs = append(op.Inputs, rng.Intn(i))
			}
		}
		if op.Type == nn.OpApplyAdam {
			op.Params = true
		}
		g.AddOp(op)
	}
	// Wire a few cross-step gates from early ops to late Adam ops.
	for _, op := range g.Ops {
		if op.Params && rng.Float64() < 0.5 {
			target := g.Ops[rng.Intn(len(g.Ops))]
			if target.ID != op.ID {
				target.CrossStep = append(target.CrossStep, op.ID)
			}
		}
	}
	return g
}

// TestRandomGraphsNeverDeadlock drives the DES executor over many random
// DAGs under every option combination and checks the global invariants:
// completion, positive step time, exact breakdown accounting, bounded
// utilization.
func TestRandomGraphsNeverDeadlock(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	kinds := []hw.ConfigKind{hw.ConfigProgrPIM, hw.ConfigFixedPIM, hw.ConfigHeteroPIM}
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 5+rng.Intn(60))
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced an invalid graph: %v", trial, err)
		}
		for _, kind := range kinds {
			r, err := Run(kind, g, 1)
			if err != nil {
				t.Fatalf("trial %d on %v: %v", trial, kind, err)
			}
			if r.StepTime <= 0 || math.IsNaN(r.StepTime) || math.IsInf(r.StepTime, 0) {
				t.Fatalf("trial %d on %v: step time %v", trial, kind, r.StepTime)
			}
			if d := math.Abs(r.Breakdown.Total() - r.StepTime); d > 1e-6*r.StepTime {
				t.Fatalf("trial %d on %v: breakdown %g != step %g", trial, kind, r.Breakdown.Total(), r.StepTime)
			}
			if r.FixedUtilization < 0 || r.FixedUtilization > 1+1e-9 {
				t.Fatalf("trial %d on %v: utilization %g out of [0,1]", trial, kind, r.FixedUtilization)
			}
			if r.Usage.CPUBusy < 0 || r.Usage.ProgBusy < 0 || r.Usage.FixedBusyUnitSeconds < 0 {
				t.Fatalf("trial %d on %v: negative usage %+v", trial, kind, r.Usage)
			}
		}
	}
}

// TestRandomGraphsOptionMatrix exercises RC/OP/selection/host-only
// combinations on random graphs.
func TestRandomGraphsOptionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := hw.PaperConfig(hw.ConfigHeteroPIM)
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 30)
		for _, rc := range []bool{false, true} {
			for _, op := range []bool{false, true} {
				opts := Options{RC: rc, OP: op, UseSelection: trial%2 == 0, Steps: 3}
				if trial%3 == 0 {
					opts.HostOnlyOps = map[int]bool{0: true, 1: true}
				}
				r, err := RunPIM(g, cfg, opts)
				if err != nil {
					t.Fatalf("trial %d RC=%v OP=%v: %v", trial, rc, op, err)
				}
				if r.StepTime <= 0 {
					t.Fatalf("trial %d RC=%v OP=%v: degenerate step", trial, rc, op)
				}
			}
		}
	}
}

// TestRandomGraphsWorkConservation: summed device busy time can never
// exceed capacity x makespan.
func TestRandomGraphsWorkConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := hw.PaperConfig(hw.ConfigHeteroPIM)
	for trial := 0; trial < 15; trial++ {
		g := randomGraph(rng, 40)
		opts := HeteroOptions()
		opts.Steps = 2
		r, err := RunPIM(g, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		makespan := r.StepTime * float64(r.Steps)
		// The host has 2 op-level slots; prog has its processor count;
		// the pool has its unit count.
		if r.Usage.CPUBusy*float64(r.Steps) > 2*makespan*(1+1e-9) {
			t.Fatalf("trial %d: CPU busy %g exceeds capacity over %g", trial, r.Usage.CPUBusy, makespan)
		}
		// Note: ProgBusy is energy-attributed time and may exceed slot
		// capacity — residual phases are overlapped delays whose busy
		// time is charged without occupying a slot (see runResidual).
		if r.Usage.FixedBusyUnitSeconds*float64(r.Steps) > float64(cfg.FixedPIM.Units)*makespan*(1+1e-9) {
			t.Fatalf("trial %d: fixed busy %g exceeds capacity", trial, r.Usage.FixedBusyUnitSeconds)
		}
	}
}

// TestRandomGraphsDeterministic: identical inputs give identical
// results.
func TestRandomGraphsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 50)
	a, err := Run(hw.ConfigHeteroPIM, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(hw.ConfigHeteroPIM, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.StepTime != b.StepTime || a.Usage != b.Usage {
		t.Fatal("random-graph simulation not deterministic")
	}
}

// TestZeroCostOpsComplete: degenerate graphs (zero flops, zero bytes)
// must still terminate.
func TestZeroCostOpsComplete(t *testing.T) {
	g := &nn.Graph{Model: "zero", BatchSize: 1, GPUUtilization: 0.5}
	prev := -1
	for i := 0; i < 10; i++ {
		op := nn.Op{Name: fmt.Sprintf("z%d", i), Type: nn.OpAdd, UnitGranule: 1}
		if prev >= 0 {
			op.Inputs = []int{prev}
		}
		added := g.AddOp(op)
		prev = added.ID
	}
	for _, kind := range []hw.ConfigKind{hw.ConfigCPU, hw.ConfigGPU, hw.ConfigProgrPIM, hw.ConfigFixedPIM, hw.ConfigHeteroPIM} {
		r, err := Run(kind, g, 1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if math.IsNaN(r.StepTime) {
			t.Fatalf("%v: NaN step time", kind)
		}
	}
}
