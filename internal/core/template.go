package core

import (
	"sync"
	"sync/atomic"

	"heteropim/internal/nn"
)

// Task-graph templates: the op x step task DAG RunPIM executes depends
// only on the graph's STRUCTURE (op count, Inputs, CrossStep edges) and
// two options (Steps, OP — cross-step edges are only wired without the
// operation pipeline). Every cell of a sweep that re-simulates the same
// model therefore rebuilds an identical DAG. A template captures that
// structure once — initial dependency counts and a prefix-compressed
// out-edge list — and instantiation clones it into a pooled arena of
// slab-allocated tasks, resetting only the per-run mutable fields.
//
// Determinism contract: an instantiated arena is wired in exactly the
// order buildTasksScratch wires a fresh graph (per source: same-step
// dependents in (step, op, input) iteration order, then cross-step
// dependents), so template and scratch runs are bit-identical — an
// invariant the core tests assert.

// templateKey identifies one task-graph shape. Structure is keyed by
// content (like the profile cache): model/batch/op-count plus an FNV-1a
// digest of the dependency lists, so rebuilt and synthetic graphs with
// identical structure share one template.
type templateKey struct {
	model  string
	batch  int
	ops    int
	steps  int
	op     bool
	digest uint64
}

// structDigest hashes the graph fields that determine task-DAG shape.
func structDigest(g *nn.Graph) uint64 {
	h := uint64(fnvOffset)
	for _, op := range g.Ops {
		h = fnvMix(h, uint64(len(op.Inputs)))
		for _, in := range op.Inputs {
			h = fnvMix(h, uint64(in))
		}
		h = fnvMix(h, uint64(len(op.CrossStep)))
		for _, cs := range op.CrossStep {
			h = fnvMix(h, uint64(cs))
		}
	}
	return h
}

// taskTemplate is the immutable per-(structure, steps, OP) blueprint:
// initial dep counts and out-edges as slab indices (index = step*n+opID),
// plus a pool of ready-to-reset arenas.
type taskTemplate struct {
	n, steps int
	// deps[i] is task i's initial dependency count.
	deps []int32
	// outIdx[outStart[i]:outStart[i+1]] are the slab indices of task i's
	// dependents, in scratch wiring order.
	outStart []int32
	outIdx   []int32
	pool     sync.Pool // *taskArena
}

// taskArena is one instantiation: a task slab with outs wired as
// pointers into the same slab, and the executor's per-step bookkeeping.
// The pointer wiring is stable across reuse (the slab never moves), so
// re-acquiring an arena only resets scalar fields.
type taskArena struct {
	slab     []task
	byStep   [][]*task // [step][opID], aliasing one ptrs slab
	stepLeft []int
	heldBack [][]*task
}

// templateEntry is one cache slot; once guards the single build.
type templateEntry struct {
	once sync.Once
	tpl  *taskTemplate
}

var templateCache sync.Map // templateKey -> *templateEntry

// templatesOff disables the template path (tests compare against the
// from-scratch builder; 0 = enabled).
var templatesOff atomic.Bool

// setTaskTemplates toggles the template fast path, returning the
// previous state (true = enabled).
func setTaskTemplates(on bool) bool {
	return !templatesOff.Swap(!on)
}

// ResetTaskTemplates drops every cached template and its pooled arenas
// (tests and servers churning through many synthetic graphs).
func ResetTaskTemplates() {
	templateCache.Range(func(k, _ any) bool {
		templateCache.Delete(k)
		return true
	})
}

// templateFor returns the memoized template for (g's structure, steps,
// op), building it at most once across goroutines.
func templateFor(g *nn.Graph, steps int, op bool) *taskTemplate {
	key := templateKey{
		model:  g.Model,
		batch:  g.BatchSize,
		ops:    len(g.Ops),
		steps:  steps,
		op:     op,
		digest: structDigest(g),
	}
	v, _ := templateCache.LoadOrStore(key, &templateEntry{})
	e := v.(*templateEntry)
	e.once.Do(func() { e.tpl = buildTemplate(g, steps, op) })
	return e.tpl
}

// buildTemplate records dep counts and out-edges in the exact order
// buildTasksScratch would wire them.
func buildTemplate(g *nn.Graph, steps int, op bool) *taskTemplate {
	n := len(g.Ops)
	slabLen := steps * n
	deps := make([]int32, slabLen)
	outs := make([][]int32, slabLen)
	total := 0
	for s := 0; s < steps; s++ {
		for _, o := range g.Ops {
			dst := int32(s*n + o.ID)
			for _, in := range o.Inputs {
				src := s*n + in
				outs[src] = append(outs[src], dst)
				deps[dst]++
				total++
			}
			// Cross-step edges only without OP (see buildTasksScratch).
			if s > 0 && !op {
				for _, cs := range o.CrossStep {
					src := (s-1)*n + cs
					outs[src] = append(outs[src], dst)
					deps[dst]++
					total++
				}
			}
		}
	}
	tpl := &taskTemplate{
		n:        n,
		steps:    steps,
		deps:     deps,
		outStart: make([]int32, slabLen+1),
		outIdx:   make([]int32, 0, total),
	}
	for i, l := range outs {
		tpl.outStart[i] = int32(len(tpl.outIdx))
		tpl.outIdx = append(tpl.outIdx, l...)
	}
	tpl.outStart[slabLen] = int32(len(tpl.outIdx))
	return tpl
}

// newArena clones the template into fresh slabs: one task slab, one
// pointer slab (shared by every byStep row) and one edge slab every
// task's outs alias.
func (tpl *taskTemplate) newArena() *taskArena {
	slabLen := tpl.steps * tpl.n
	a := &taskArena{
		slab:     make([]task, slabLen),
		byStep:   make([][]*task, tpl.steps),
		stepLeft: make([]int, tpl.steps),
		heldBack: make([][]*task, tpl.steps),
	}
	ptrs := make([]*task, slabLen)
	for i := range a.slab {
		ptrs[i] = &a.slab[i]
	}
	edges := make([]*task, len(tpl.outIdx))
	for i, d := range tpl.outIdx {
		edges[i] = ptrs[d]
	}
	for i := range a.slab {
		t := &a.slab[i]
		t.step = i / tpl.n
		t.outs = edges[tpl.outStart[i]:tpl.outStart[i+1]]
	}
	for s := 0; s < tpl.steps; s++ {
		a.byStep[s] = ptrs[s*tpl.n : (s+1)*tpl.n]
	}
	return a
}

// acquire returns an arena wired for g, pooled when available. Only the
// per-run mutable fields are reset; step, outs and byStep survive reuse.
func (tpl *taskTemplate) acquire(g *nn.Graph) *taskArena {
	a, _ := tpl.pool.Get().(*taskArena)
	if a == nil {
		a = tpl.newArena()
	}
	for i := range a.slab {
		t := &a.slab[i]
		t.op = g.Ops[i%tpl.n]
		t.deps = int(tpl.deps[i])
		t.token = 0
		t.path = 0
		t.remFlops = 0
		t.remBytes = 0
		t.syncPerFlop = 0
	}
	for s := range a.stepLeft {
		a.stepLeft[s] = tpl.n
		a.heldBack[s] = a.heldBack[s][:0]
	}
	return a
}

// release drops the arena's graph references and returns it to the pool.
func (tpl *taskTemplate) release(a *taskArena) {
	if a == nil {
		return
	}
	for i := range a.slab {
		a.slab[i].op = nil
	}
	tpl.pool.Put(a)
}
