package core

import (
	"encoding/json"
	"math"

	"heteropim/internal/device"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/sim"
)

// emitSerialSpan feeds one serially-executed op to a collector as a
// completed span (the serial executors have no event engine; their
// clock is the running sum of op durations).
func emitSerialSpan(c sim.Collector, track, name string, start, dur hw.Seconds) {
	if c == nil {
		return
	}
	c.TaskStart(sim.Task{Track: track, Name: name, Kind: "op", Start: start})
	c.TaskEnd(sim.Task{Track: track, Name: name, Kind: "op", Start: start, End: start + dur})
}

// Per-operation framework dispatch overhead on the host (TensorFlow
// executor bookkeeping), charged by the serial executors.
const cpuDispatchOverhead hw.Seconds = 2e-6

// splitWork attributes an op's roofline time: the compute-limited part
// is "operation time", the bandwidth-stall excess is "data movement".
func splitWork(w device.Work) (operation, dataMove hw.Seconds) {
	t := w.Time()
	op := math.Min(w.Compute, t)
	return op, t - op
}

// RunCPU executes every training operation on the host CPU, one
// training step, serially (the paper's CPU baseline).
func RunCPU(g *nn.Graph, cfg hw.SystemConfig) Result {
	return RunCPUWithCollector(g, cfg, nil)
}

// RunCPUWithCollector is RunCPU with instrumentation: each op becomes a
// span on the "cpu" track at its serial position in the step.
// Uninstrumented calls go through the result cache; instrumented ones
// bypass it (see RunPIM).
func RunCPUWithCollector(g *nn.Graph, cfg hw.SystemConfig, c sim.Collector) Result {
	if c == nil && !resultCacheOff.Load() {
		fp := fingerprintRun("cpu", g, cfg, Options{}, nil)
		res, _ := cachedResult(fp, func() (Result, error) { return runCPUSerial(g, cfg, nil), nil })
		return res
	}
	return runCPUSerial(g, cfg, c)
}

// runCPUSerial is the live run behind RunCPU/RunCPUWithCollector.
func runCPUSerial(g *nn.Graph, cfg hw.SystemConfig, c sim.Collector) Result {
	res := Result{Config: cfg, Model: g.Model, Steps: 1}
	var clock hw.Seconds
	for _, op := range g.Ops {
		w := device.CPUOp(op, cfg.CPU)
		opT, dmT := splitWork(w)
		res.Breakdown.Operation += opT
		res.Breakdown.DataMovement += dmT
		res.Breakdown.Sync += cpuDispatchOverhead
		res.Usage.CPUBusy += w.Time()
		res.Usage.HostBytes += op.Bytes
		res.CPUOps++
		dur := w.Time() + cpuDispatchOverhead
		emitSerialSpan(c, "cpu", op.Name, clock, dur)
		clock += dur
	}
	res.StepTime = res.Breakdown.Total()
	return res
}

// gpuEff combines the paper's reported per-model GPU utilization with
// the per-model calibration factor (DESIGN.md §2).
func gpuEff(g *nn.Graph) float64 {
	f := g.GPUEffFactor
	if f == 0 {
		f = 1
	}
	return g.GPUUtilization * f
}

// RunGPU executes every training operation on the GPU, one training
// step, serially, charging kernel launches and the unhidden host<->GPU
// transfer (the paper's GPU baseline; Section VI-A's data-movement bars
// for GPU are exactly the unhidden transfer time).
func RunGPU(g *nn.Graph, cfg hw.SystemConfig) Result {
	return RunGPUWithCollector(g, cfg, nil)
}

// RunGPUWithCollector is RunGPU with instrumentation: kernels become
// spans on the "gpu" track, the unhidden host<->GPU transfer one span
// on the "pcie" track. Uninstrumented calls go through the result
// cache; instrumented ones bypass it (see RunPIM).
func RunGPUWithCollector(g *nn.Graph, cfg hw.SystemConfig, c sim.Collector) Result {
	if c == nil && !resultCacheOff.Load() {
		fp := fingerprintRun("gpu", g, cfg, Options{}, nil)
		res, _ := cachedResult(fp, func() (Result, error) { return runGPUSerial(g, cfg, nil), nil })
		return res
	}
	return runGPUSerial(g, cfg, c)
}

// runGPUSerial is the live run behind RunGPU/RunGPUWithCollector.
func runGPUSerial(g *nn.Graph, cfg hw.SystemConfig, c sim.Collector) Result {
	res := Result{Config: cfg, Model: g.Model, Steps: 1}
	var clock hw.Seconds
	for _, op := range g.Ops {
		w := device.GPUOp(op, cfg.GPU, gpuEff(g))
		res.Breakdown.Operation += w.Time()
		res.Breakdown.Sync += cfg.GPU.KernelLaunchOverhead
		res.Usage.GPUBusy += w.Time()
		res.Usage.GPUBytes += op.Bytes
		dur := w.Time() + cfg.GPU.KernelLaunchOverhead
		emitSerialSpan(c, "gpu", op.Name, clock, dur)
		clock += dur
	}
	res.GPUUtilization = g.GPUUtilization
	transfer := device.GPUStepTransferTime(g, cfg.GPU)
	res.Breakdown.DataMovement = transfer
	res.Usage.LinkBytes = device.GPUStepTransferBytes(g)
	res.Usage.CPUBusy = transfer // the host drives the transfers
	if c != nil && transfer > 0 {
		c.TaskStart(sim.Task{Track: "pcie", Name: "host<->gpu transfer", Kind: "transfer", Start: clock})
		c.TaskEnd(sim.Task{Track: "pcie", Name: "host<->gpu transfer", Kind: "transfer", Start: clock, End: clock + transfer})
	}
	res.StepTime = res.Breakdown.Total()
	return res
}

// RunNeurocube executes every training operation on the Neurocube PE
// array, serially with a per-op launch (its execution model is static:
// no dynamic runtime scheduling — Section VI-C). Runs go through the
// result cache, with the spec folded into the fingerprint.
func RunNeurocube(g *nn.Graph, spec device.NeurocubeSpec, cfg hw.SystemConfig) Result {
	if !resultCacheOff.Load() {
		if specJSON, err := json.Marshal(spec); err == nil {
			fp := fingerprintRun("neurocube", g, cfg, Options{}, specJSON)
			res, _ := cachedResult(fp, func() (Result, error) { return runNeurocubeSerial(g, spec, cfg), nil })
			return res
		}
	}
	return runNeurocubeSerial(g, spec, cfg)
}

// runNeurocubeSerial is the live run behind RunNeurocube.
func runNeurocubeSerial(g *nn.Graph, spec device.NeurocubeSpec, cfg hw.SystemConfig) Result {
	res := Result{Config: cfg, Model: g.Model, Steps: 1}
	res.Config.Name = "Neurocube"
	for _, op := range g.Ops {
		w := device.NeurocubeOp(op, spec)
		opT, dmT := splitWork(w)
		res.Breakdown.Operation += opT
		res.Breakdown.DataMovement += dmT
		res.Breakdown.Sync += spec.LaunchOverhead
		res.Usage.NeurocubeBusy += w.Time()
		res.Usage.PIMBytes += op.Bytes
		res.OffloadedOps++
	}
	res.StepTime = res.Breakdown.Total()
	return res
}
