package core

import "heteropim/internal/hw"

// Breakdown splits a step's wall-clock time the way Fig. 8 does.
type Breakdown struct {
	// Operation is computation time on CPU, GPU or PIMs.
	Operation hw.Seconds
	// DataMovement is time stalled moving data (bandwidth-bound excess,
	// plus host<->GPU transfers for the GPU platform).
	DataMovement hw.Seconds
	// Sync is synchronization and kernel launch/spawn time.
	Sync hw.Seconds
}

// Total returns the summed breakdown.
func (b Breakdown) Total() hw.Seconds { return b.Operation + b.DataMovement + b.Sync }

// scale multiplies every component by f.
func (b Breakdown) scale(f float64) Breakdown {
	return Breakdown{Operation: b.Operation * f, DataMovement: b.DataMovement * f, Sync: b.Sync * f}
}

// Usage captures the resource consumption the energy model needs.
type Usage struct {
	// CPUBusy / GPUBusy are busy seconds of the host and GPU.
	CPUBusy, GPUBusy hw.Seconds
	// ProgBusy is the summed busy time over programmable PIM processors.
	ProgBusy hw.Seconds
	// FixedBusyUnitSeconds integrates busy fixed-function units over time.
	FixedBusyUnitSeconds float64
	// NeurocubeBusy is busy time of the Neurocube PE array.
	NeurocubeBusy hw.Seconds
	// HostBytes is DRAM traffic over the external links (CPU path).
	HostBytes float64
	// PIMBytes is DRAM traffic through the TSVs (PIM path).
	PIMBytes float64
	// GPUBytes is GDDR traffic on the GPU board.
	GPUBytes float64
	// LinkBytes is host<->GPU PCIe traffic.
	LinkBytes float64
	// InterStackBytes is gradient traffic over the stack-to-stack links
	// during the all-reduce (multi-stack runs only).
	InterStackBytes float64
}

// add accumulates another usage.
func (u *Usage) add(o Usage) {
	u.CPUBusy += o.CPUBusy
	u.GPUBusy += o.GPUBusy
	u.ProgBusy += o.ProgBusy
	u.FixedBusyUnitSeconds += o.FixedBusyUnitSeconds
	u.NeurocubeBusy += o.NeurocubeBusy
	u.HostBytes += o.HostBytes
	u.PIMBytes += o.PIMBytes
	u.GPUBytes += o.GPUBytes
	u.LinkBytes += o.LinkBytes
	u.InterStackBytes += o.InterStackBytes
}

// Result is the outcome of simulating steady-state training of one model
// on one platform configuration.
type Result struct {
	Config hw.SystemConfig
	Model  string
	// StepTime is the steady-state wall-clock time of one training step.
	StepTime hw.Seconds
	// Breakdown attributes StepTime to Fig. 8's three categories
	// (components sum to StepTime).
	Breakdown Breakdown
	// Usage is per-step resource consumption (averaged over steps).
	Usage Usage
	// FixedUtilization is the fixed-function pool's busy-unit share of
	// the makespan (Fig. 15).
	FixedUtilization float64
	// OffloadedOps counts operations placed on PIMs per step.
	OffloadedOps int
	// CPUOps counts operations that ran on the host per step.
	CPUOps int
	// Steps is how many steady-state steps were simulated.
	Steps int
	// GPUUtilization is the model's §V-D utilization (GPU runs only);
	// the energy model scales board power with it.
	GPUUtilization float64
	// Stacks is the number of HMC stacks the step was sharded across.
	// Zero (the single-stack executor leaves it unset) and 1 both mean
	// the paper's single-stack system.
	Stacks int
	// AllReduce is the gradient synchronization schedule of a
	// multi-stack run ("ring" or "tree"; empty for single-stack).
	AllReduce string
	// AllReduceTime is the per-step gradient all-reduce time included
	// in StepTime (multi-stack runs only).
	AllReduceTime hw.Seconds
	// StackStepTime is the slowest stack's compute step time before the
	// all-reduce (multi-stack runs only; StepTime = StackStepTime +
	// AllReduceTime).
	StackStepTime hw.Seconds
	// StackMaxTemp is the hottest-bank steady-state temperature of one
	// stack under the run's placement, in deg C (multi-stack runs with
	// a fixed-function pool; every stack is identical so one number
	// covers all of them).
	StackMaxTemp float64
}

// Throughput returns training steps per second.
func (r Result) Throughput() float64 {
	if r.StepTime <= 0 {
		return 0
	}
	return 1 / r.StepTime
}

// PlacementCensus counts operations per (type, path) for one run; the
// executor fills it when Options.Census is set.
type PlacementCensus struct {
	// Fixed, Prog, CPU map op-type name to per-step counts.
	Fixed, Prog, CPU map[string]int
}

// newCensus allocates the maps.
func newCensus() *PlacementCensus {
	return &PlacementCensus{Fixed: map[string]int{}, Prog: map[string]int{}, CPU: map[string]int{}}
}
