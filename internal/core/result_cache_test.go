package core

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/runner"
)

// withCleanCache gives the test an enabled, empty, memory-only result
// cache and restores the process-wide state afterwards.
func withCleanCache(t *testing.T) {
	t.Helper()
	prevOn := EnableResultCache(true)
	prevDir := SetResultCacheDir("")
	ResetResultCache()
	t.Cleanup(func() {
		ResetResultCache()
		EnableResultCache(prevOn)
		SetResultCacheDir(prevDir)
	})
}

// TestResultCacheHitsAreBitIdentical checks the cache's core contract
// over the full evaluation matrix: for every model and platform, a warm
// lookup returns a Result equal field-for-field (Result is all value
// types, so == is bit comparison) to the cold run that populated it.
func TestResultCacheHitsAreBitIdentical(t *testing.T) {
	withCleanCache(t)
	for _, m := range nn.CNNModelNames() {
		for _, kind := range hw.AllConfigKinds() {
			ResetResultCache()
			cold, err := BuildAndRun(kind, m, 1)
			if err != nil {
				t.Fatalf("%s on %v (cold): %v", m, kind, err)
			}
			if st := ResultCacheStats(); st.Misses != 1 || st.Hits != 0 {
				t.Fatalf("%s on %v: cold stats %+v, want exactly one miss", m, kind, st)
			}
			warm, err := BuildAndRun(kind, m, 1)
			if err != nil {
				t.Fatalf("%s on %v (warm): %v", m, kind, err)
			}
			if warm != cold {
				t.Errorf("%s on %v: warm result differs from cold run", m, kind)
			}
			if st := ResultCacheStats(); st.Misses != 1 || st.Hits != 1 {
				t.Errorf("%s on %v: warm stats %+v, want one miss + one hit", m, kind, st)
			}
		}
	}
}

// TestResultCacheDistinguishesInputs guards against fingerprint
// collisions between neighbouring cells: different models, frequency
// scales and option toggles must all run live.
func TestResultCacheDistinguishesInputs(t *testing.T) {
	withCleanCache(t)
	if _, err := BuildAndRun(hw.ConfigHeteroPIM, nn.AlexNetName, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildAndRun(hw.ConfigHeteroPIM, nn.VGG19Name, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildAndRun(hw.ConfigHeteroPIM, nn.AlexNetName, 2); err != nil {
		t.Fatal(err)
	}
	g, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunHeteroVariant(g, false, true, 1); err != nil {
		t.Fatal(err)
	}
	if st := ResultCacheStats(); st.Misses != 4 || st.Hits != 0 {
		t.Errorf("4 distinct cells gave stats %+v, want 4 misses and no hits", st)
	}
}

// TestInstrumentedRunsBypassCache checks that runs with a Census (and by
// the same gate: a Collector or Trace writer) neither read nor populate
// the cache — their side effects must happen on every call.
func TestInstrumentedRunsBypassCache(t *testing.T) {
	withCleanCache(t)
	g, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hw.PaperConfig(hw.ConfigHeteroPIM)
	for i := 0; i < 2; i++ {
		opts := HeteroOptions()
		opts.Census = newCensus()
		if _, err := RunPIM(g, cfg, opts); err != nil {
			t.Fatal(err)
		}
		if len(opts.Census.Fixed)+len(opts.Census.Prog)+len(opts.Census.CPU) == 0 {
			t.Fatalf("run %d: census not filled — instrumented run was skipped", i)
		}
	}
	if st := ResultCacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("instrumented runs touched the cache: %+v", st)
	}
	// The instrumented runs must not have polluted the cache either: the
	// next uninstrumented call is a miss.
	if _, err := RunPIM(g, cfg, HeteroOptions()); err != nil {
		t.Fatal(err)
	}
	if st := ResultCacheStats(); st.Misses != 1 {
		t.Errorf("uninstrumented run after instrumented ones: stats %+v, want one miss", st)
	}
}

// TestDiskTier covers the persistent tier: a stored entry survives an
// in-memory reset, and corrupted or wrong-schema files degrade to live
// runs instead of errors.
func TestDiskTier(t *testing.T) {
	withCleanCache(t)
	SetResultCacheDir(t.TempDir())
	g, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hw.PaperConfig(hw.ConfigHeteroPIM)
	cold, err := RunPIM(g, cfg, HeteroOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir, _ := resultCacheDir.Load().(string)
	files, err := filepath.Glob(filepath.Join(dir, "heteropim-*", "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("disk tier holds %d entries (%v), want 1", len(files), err)
	}

	// Hit from disk after the memory tier is dropped.
	ResetResultCache()
	warm, err := RunPIM(g, cfg, HeteroOptions())
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Errorf("disk-tier hit differs from cold run")
	}
	if st := ResultCacheStats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Errorf("disk-hit stats %+v, want one disk hit and no misses", st)
	}

	// A corrupted entry is a miss, never an error; the live run rewrites it.
	if err := os.WriteFile(files[0], []byte("{definitely not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	ResetResultCache()
	live, err := RunPIM(g, cfg, HeteroOptions())
	if err != nil {
		t.Fatalf("corrupted disk entry surfaced as error: %v", err)
	}
	if live != cold {
		t.Errorf("live run after corruption differs from original")
	}
	if st := ResultCacheStats(); st.Misses != 1 || st.DiskHits != 0 {
		t.Errorf("corrupted-entry stats %+v, want one miss", st)
	}

	// A wrong-schema entry (stale tier contents) is ignored the same way.
	stale, err := json.Marshal(diskEntry{Schema: "stale", Fingerprint: "bogus", Result: cold})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], stale, 0o644); err != nil {
		t.Fatal(err)
	}
	ResetResultCache()
	if _, err := RunPIM(g, cfg, HeteroOptions()); err != nil {
		t.Fatalf("stale disk entry surfaced as error: %v", err)
	}
	if st := ResultCacheStats(); st.Misses != 1 || st.DiskHits != 0 {
		t.Errorf("stale-entry stats %+v, want one miss", st)
	}
}

// TestDropMemoryKeepsDiskTierAndCounters covers the fleet-replica
// eviction primitive: DropResultCacheMemory must forget only the
// memory tier — a shared disk tier still answers (the L2 behind every
// replica's L1) and the running counters survive, unlike the full
// ResetResultCache.
func TestDropMemoryKeepsDiskTierAndCounters(t *testing.T) {
	withCleanCache(t)
	SetResultCacheDir(t.TempDir())
	g, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hw.PaperConfig(hw.ConfigHeteroPIM)
	cold, err := RunPIM(g, cfg, HeteroOptions())
	if err != nil {
		t.Fatal(err)
	}

	DropResultCacheMemory()
	warm, err := RunPIM(g, cfg, HeteroOptions())
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Errorf("post-drop disk hit differs from cold run")
	}
	// One cold miss, then one disk hit (which also counts as a served
	// hit): Drop preserved both the disk tier and the miss counter.
	if st := ResultCacheStats(); st.Misses != 1 || st.DiskHits != 1 {
		t.Errorf("stats after drop+rerun %+v, want 1 miss + 1 disk hit", st)
	}

	// Without a disk tier the drop means a genuine re-simulation.
	SetResultCacheDir("")
	DropResultCacheMemory()
	again, err := RunPIM(g, cfg, HeteroOptions())
	if err != nil {
		t.Fatal(err)
	}
	if again != cold {
		t.Errorf("re-simulated result differs from cold run")
	}
	if st := ResultCacheStats(); st.Misses != 2 {
		t.Errorf("memory-only drop stats %+v, want a second miss", st)
	}
}

// TestSharedCacheUnderParallelRunner hammers one fingerprint from the
// worker pool (run under -race in `make verify`): singleflight must
// execute exactly one live simulation and hand every other caller the
// identical Result.
func TestSharedCacheUnderParallelRunner(t *testing.T) {
	withCleanCache(t)
	g, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hw.PaperConfig(hw.ConfigHeteroPIM)
	const n = 24
	results, err := runner.Map(context.Background(), n, 8,
		func(_ context.Context, i int) (Result, error) {
			return RunPIM(g, cfg, HeteroOptions())
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Errorf("result %d differs from result 0", i)
		}
	}
	if st := ResultCacheStats(); st.Misses != 1 || st.Hits != n-1 {
		t.Errorf("stats %+v, want 1 miss and %d hits", st, n-1)
	}
}
