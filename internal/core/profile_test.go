package core

import (
	"math"
	"testing"
	"testing/quick"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

func TestProfileStepCoversEveryOp(t *testing.T) {
	g := nn.VGG19()
	prof := ProfileStep(g, hw.PaperCPU())
	if len(prof.Entries) != len(g.Ops) {
		t.Fatalf("%d entries for %d ops", len(prof.Entries), len(g.Ops))
	}
	var sumT hw.Seconds
	var sumA float64
	for _, e := range prof.Entries {
		if e.Time < 0 || e.MemAccesses < 0 {
			t.Fatalf("negative profile entry: %+v", e)
		}
		sumT += e.Time
		sumA += e.MemAccesses
	}
	if math.Abs(sumT-prof.TotalTime) > 1e-9*sumT {
		t.Fatalf("total time %g != sum %g", prof.TotalTime, sumT)
	}
	if math.Abs(sumA-prof.TotalAccesses) > 1e-6 {
		t.Fatalf("total accesses %g != sum %g", prof.TotalAccesses, sumA)
	}
}

func TestSelectCandidatesCoversXPercent(t *testing.T) {
	g := nn.VGG19()
	prof := ProfileStep(g, hw.PaperCPU())
	cand := SelectCandidates(prof, 90)
	var covered hw.Seconds
	for _, e := range prof.Entries {
		if cand[e.OpID] {
			covered += e.Time
		}
	}
	frac := covered / prof.TotalTime
	if frac < 0.90 {
		t.Fatalf("candidates cover only %.1f%% of step time", frac*100)
	}
	// The selection must be frugal: dropping the candidate property for
	// ~10% of time means far fewer ops than the whole graph.
	if len(cand) == len(g.Ops) {
		t.Fatal("selection picked every op; the x% threshold did nothing")
	}
}

func TestSelectCandidatesPrefersTimeAndMemoryIntensive(t *testing.T) {
	// Build a synthetic profile: op 0 dominates both time and memory;
	// op 2 is hot in neither.
	prof := StepProfile{
		Entries: []ProfileEntry{
			{OpID: 0, Time: 10, MemAccesses: 1000},
			{OpID: 1, Time: 5, MemAccesses: 2000},
			{OpID: 2, Time: 0.1, MemAccesses: 1},
			{OpID: 3, Time: 4, MemAccesses: 500},
		},
	}
	for _, e := range prof.Entries {
		prof.TotalTime += e.Time
		prof.TotalAccesses += e.MemAccesses
	}
	cand := SelectCandidates(prof, 70)
	if !cand[0] {
		t.Fatal("op 0 (top time, #2 memory) must be selected first")
	}
	if cand[2] {
		t.Fatal("op 2 (cold) must not be selected at 70%")
	}
}

func TestSelectCandidatesDualIndexBeatsPureTime(t *testing.T) {
	// An op with middling time but massive memory outranks an op with
	// slightly more time and no memory traffic — the global (summed)
	// index decides, as in Section III-C.
	prof := StepProfile{
		Entries: []ProfileEntry{
			{OpID: 0, Time: 6, MemAccesses: 0},     // time rank 0, mem rank 2 -> 2
			{OpID: 1, Time: 5, MemAccesses: 10000}, // time rank 1, mem rank 0 -> 1
			{OpID: 2, Time: 1, MemAccesses: 100},   // time rank 2, mem rank 1 -> 3
		},
	}
	for _, e := range prof.Entries {
		prof.TotalTime += e.Time
	}
	// Select just enough for one op (<= 5/12 of time).
	cand := SelectCandidates(prof, 40)
	if !cand[1] || cand[0] {
		t.Fatalf("dual-index rank violated: cand=%v", cand)
	}
}

func TestSelectCandidatesEdgeCases(t *testing.T) {
	if c := SelectCandidates(StepProfile{}, 90); len(c) != 0 {
		t.Fatal("empty profile must select nothing")
	}
	prof := StepProfile{Entries: []ProfileEntry{{OpID: 0, Time: 1}}, TotalTime: 1}
	if c := SelectCandidates(prof, 0); len(c) != 0 {
		t.Fatal("0%% must select nothing")
	}
	if c := SelectCandidates(prof, 150); !c[0] {
		t.Fatal(">100%% clamps to everything")
	}
}

func TestSelectCandidatesMonotoneQuick(t *testing.T) {
	// Property: raising x% never shrinks the candidate set's time
	// coverage.
	g := nn.AlexNet()
	prof := ProfileStep(g, hw.PaperCPU())
	coverage := func(x float64) float64 {
		cand := SelectCandidates(prof, x)
		var c hw.Seconds
		for _, e := range prof.Entries {
			if cand[e.OpID] {
				c += e.Time
			}
		}
		return c
	}
	f := func(a, b uint8) bool {
		lo := float64(a % 101)
		hi := float64(b % 101)
		if lo > hi {
			lo, hi = hi, lo
		}
		return coverage(lo) <= coverage(hi)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAllOpsCandidates(t *testing.T) {
	g := nn.DCGAN()
	c := AllOpsCandidates(g)
	if len(c) != len(g.Ops) {
		t.Fatalf("%d candidates for %d ops", len(c), len(g.Ops))
	}
}
