package core

import (
	"math"
	"strings"
	"testing"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/runner"
)

// multiGraph builds a small named-model graph; multi-stack runs rebuild
// shard graphs from the model name, so hand-made toy graphs don't
// qualify.
func multiGraph(t *testing.T, batch int) *nn.Graph {
	t.Helper()
	g, err := nn.BuildWithBatch(nn.AlexNetName, batch)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func heteroMultiOpts(stacks int, sched ReduceSchedule) Options {
	opts := HeteroOptions()
	opts.Stacks, opts.AllReduce = stacks, sched
	return opts
}

func TestRunMultiSingleStackIsRunOn(t *testing.T) {
	g := multiGraph(t, 8)
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	base, err := RunOn(hw.ConfigHeteroPIM, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunMulti(hw.ConfigHeteroPIM, g, cfg, 1, ReduceRing)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, base) != resultJSON(t, one) {
		t.Error("RunMulti with one stack diverged from RunOn")
	}
}

func TestRunMultiRejectsSerialPlatforms(t *testing.T) {
	g := multiGraph(t, 8)
	for _, kind := range []hw.ConfigKind{hw.ConfigCPU, hw.ConfigGPU} {
		_, err := RunMulti(kind, g, hw.PaperConfigScaled(kind, 1), 2, ReduceRing)
		if err == nil || !strings.Contains(err.Error(), "PIM platform") {
			t.Errorf("%v: want a PIM-platform error, got %v", kind, err)
		}
	}
}

func TestMultiStackMergeRules(t *testing.T) {
	g := multiGraph(t, 10)
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	r, err := RunPIM(g, cfg, heteroMultiOpts(2, ReduceRing))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stacks != 2 || r.AllReduce != string(ReduceRing) {
		t.Fatalf("merged result labels: stacks=%d allreduce=%q", r.Stacks, r.AllReduce)
	}
	if !strings.HasSuffix(r.Config.Name, " x2") {
		t.Errorf("config name %q lacks the x2 suffix", r.Config.Name)
	}
	if r.AllReduceTime <= 0 || r.StackStepTime <= 0 {
		t.Fatalf("non-positive split: stack=%g ar=%g", r.StackStepTime, r.AllReduceTime)
	}
	if got := r.StackStepTime + r.AllReduceTime; got != r.StepTime {
		t.Errorf("StepTime %g != StackStepTime+AllReduceTime %g", r.StepTime, got)
	}
	if d := math.Abs(float64(r.Breakdown.Total() - r.StepTime)); d > 1e-9*float64(r.StepTime) {
		t.Errorf("breakdown %g != step time %g", r.Breakdown.Total(), r.StepTime)
	}
	ar, bytes, err := AllReduceStepTime(ReduceRing, 2, g.ParamBytes, cfg.Link)
	if err != nil {
		t.Fatal(err)
	}
	if r.AllReduceTime != ar {
		t.Errorf("merged AllReduceTime %g != analytic %g", r.AllReduceTime, ar)
	}
	if r.Usage.InterStackBytes != bytes {
		t.Errorf("InterStackBytes %g != analytic %g", r.Usage.InterStackBytes, bytes)
	}
	if r.StackMaxTemp <= 0 {
		t.Errorf("StackMaxTemp %g, want > 0 for a fixed-pool platform", r.StackMaxTemp)
	}
	// The slowest shard paces the step: it must be at least as slow as
	// every shard run individually.
	shards, err := nn.ShardBatches(g.BatchSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range shards {
		sg := multiGraph(t, b)
		sr, err := RunPIM(sg, cfg, HeteroOptions())
		if err != nil {
			t.Fatal(err)
		}
		if sr.StepTime > r.StackStepTime {
			t.Errorf("shard batch %d step %g exceeds merged StackStepTime %g", b, sr.StepTime, r.StackStepTime)
		}
	}
}

func TestMultiStackRejectsModifiedGraphs(t *testing.T) {
	g := multiGraph(t, 8)
	g.Ops[0].Muls *= 2 // no longer the named model
	_, err := RunPIM(g, hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1), heteroMultiOpts(2, ReduceRing))
	if err == nil || !strings.Contains(err.Error(), "differs from the named model") {
		t.Errorf("want a modified-graph error, got %v", err)
	}
}

func TestMultiStackRejectsTinyBatches(t *testing.T) {
	g := multiGraph(t, 2)
	_, err := RunPIM(g, hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1), heteroMultiOpts(4, ReduceRing))
	if err == nil {
		t.Error("want an error for batch 2 across 4 stacks")
	}
}

// The merged bytes must not depend on the pool width or on shard
// completion order. Unequal shard batches (10 across 3 stacks -> 4,3,3)
// make the shards genuinely different simulations.
func TestMultiStackDeterministicAcrossWorkers(t *testing.T) {
	g := multiGraph(t, 10)
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	var ref string
	for _, w := range []int{1, 4, 8} {
		prev := runner.SetWorkers(w)
		for rep := 0; rep < 3; rep++ { // repeats reshuffle completion order
			ResetResultCache()
			r, err := RunPIM(g, cfg, heteroMultiOpts(3, ReduceTree))
			if err != nil {
				runner.SetWorkers(prev)
				t.Fatal(err)
			}
			got := resultJSON(t, r)
			if ref == "" {
				ref = got
			} else if got != ref {
				runner.SetWorkers(prev)
				t.Fatalf("workers=%d rep=%d: merged result diverged", w, rep)
			}
		}
		runner.SetWorkers(prev)
	}
}

// The analytic all-reduce time must equal the event-simulated one bit
// for bit — it doubles as the DSE bound's synchronization leg.
func TestAllReduceAnalyticMatchesSimulated(t *testing.T) {
	link := hw.PaperInterStackLink()
	const gradBytes = 576e6
	for _, sched := range []ReduceSchedule{ReduceRing, ReduceTree} {
		for _, m := range []int{2, 3, 4, 8} {
			at, abytes, err := AllReduceStepTime(sched, m, gradBytes, link)
			if err != nil {
				t.Fatal(err)
			}
			st, sbytes, events, err := simulateAllReduce(sched, m, gradBytes, link, nil)
			if err != nil {
				t.Fatal(err)
			}
			if at != st {
				t.Errorf("%s m=%d: analytic %.17g != simulated %.17g", sched, m, at, st)
			}
			if abytes != sbytes {
				t.Errorf("%s m=%d: analytic bytes %g != simulated %g", sched, m, abytes, sbytes)
			}
			if events == 0 {
				t.Errorf("%s m=%d: all-reduce processed no events", sched, m)
			}
		}
	}
}

// Satellite 1: the result-cache fingerprint must discriminate stack
// count, all-reduce schedule and link parameters — an M=1 and an M=2
// run may never collide.
func TestFingerprintDiscriminatesMultiStack(t *testing.T) {
	g := multiGraph(t, 8)
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	base := HeteroOptions()
	fps := map[Fingerprint]string{}
	add := func(label string, cfg hw.SystemConfig, opts Options) {
		fp := fingerprintRun("pim", g, cfg, opts, nil)
		if prev, dup := fps[fp]; dup {
			t.Errorf("fingerprint collision: %s vs %s", label, prev)
		}
		fps[fp] = label
	}
	add("m1", cfg, base)
	add("m2-ring", cfg, heteroMultiOpts(2, ReduceRing))
	add("m2-tree", cfg, heteroMultiOpts(2, ReduceTree))
	add("m4-ring", cfg, heteroMultiOpts(4, ReduceRing))
	slow := cfg
	slow.Link.Bandwidth /= 2
	add("m2-ring-slowlink", slow, heteroMultiOpts(2, ReduceRing))
	lat := cfg
	lat.Link.Latency *= 2
	add("m2-ring-latlink", lat, heteroMultiOpts(2, ReduceRing))
}

// Multi-stack runs land in the result cache like any other: the second
// identical call must be a hit with byte-identical bytes.
func TestMultiStackResultsAreCached(t *testing.T) {
	g := multiGraph(t, 8)
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	ResetResultCache()
	cold, err := RunPIM(g, cfg, heteroMultiOpts(2, ReduceRing))
	if err != nil {
		t.Fatal(err)
	}
	before := ResultCacheStats()
	warm, err := RunPIM(g, cfg, heteroMultiOpts(2, ReduceRing))
	if err != nil {
		t.Fatal(err)
	}
	after := ResultCacheStats()
	if after.Hits != before.Hits+1 {
		t.Errorf("second multi-stack run was not a cache hit: %+v -> %+v", before, after)
	}
	if resultJSON(t, cold) != resultJSON(t, warm) {
		t.Error("cache hit bytes differ from the cold run")
	}
}
