package core

import (
	"fmt"
	"io"
	"math"

	"heteropim/internal/device"
	"heteropim/internal/hmc"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/pim"
	"heteropim/internal/sim"
)

// Options parameterizes the PIM executors (Hetero PIM and the two
// PIM-only baselines run through the same discrete-event machinery).
//
// Concurrency contract: an Options value is bound to ONE RunPIM call.
// Independent simulations may run concurrently (the parallel sweep
// layer in internal/runner does exactly that), but each run must get
// its own Options value — in particular its own Census, which is
// written without synchronization. A Trace writer shared between
// concurrent runs must itself be safe for concurrent use (wrap it with
// SyncWriter); os.Stderr-style single-run tracing needs nothing extra.
type Options struct {
	// Stacks is the number of HMC stacks the run shards the minibatch
	// across (data-parallel training with a gradient all-reduce per
	// step). 0 or 1 means the paper's single-stack system; M > 1
	// requires a named, unmodified model graph (the shards are rebuilt
	// per stack) and a config with a positive inter-stack link
	// bandwidth.
	Stacks int
	// AllReduce selects the gradient all-reduce schedule for Stacks > 1
	// (ring or tree; default ring). Ignored — and normalized away — for
	// single-stack runs.
	AllReduce ReduceSchedule
	// RC enables recursive PIM kernels (Fig. 6): residual phases run on
	// the programmable PIM and per-section synchronization stays inside
	// the stack instead of round-tripping to the host.
	RC bool
	// OP enables the operation pipeline: operations of the next
	// training step may use idle fixed-function units when data
	// dependences allow (Section III-C).
	OP bool
	// PipelineDepth is how many training steps may be in flight under
	// OP (default 2: current + next, as in the paper's description).
	PipelineDepth int
	// Steps is the number of steady-state steps to simulate (default 4).
	Steps int
	// UseSelection runs the profiling + dual-index candidate selection;
	// when false every op is a candidate (the no-runtime baselines).
	UseSelection bool
	// XPercent is the selection threshold (default 90, Section III-C).
	XPercent float64
	// NoCPUFallback disables principle 2's CPU fallback; the Progr PIM
	// baseline runs every operation on the programmable cores.
	NoCPUFallback bool
	// WideProgOps lets one operation span multiple programmable
	// processors (up to its intrinsic parallelism) — the Progr PIM
	// baseline's "as many ARM-based programmable cores as needed".
	WideProgOps bool
	// UniformPlacement switches the fixed-function placement from the
	// thermal-aware policy to uniform. Central banks then throttle to
	// respect the thermal envelope, derating the pool's sustained
	// frequency (the placement ablation of DESIGN.md §6).
	UniformPlacement bool
	// HostOnlyOps restricts the listed op IDs to the CPU and the
	// programmable PIM (never the fixed-function pool). The
	// mixed-workload study runs the non-CNN model this way
	// (Section VI-F: "the non-CNN model executes on CPU or the
	// programmable PIM, when they are idle").
	HostOnlyOps map[int]bool
	// GPUHost attaches the heterogeneous PIM to a GPU system instead of
	// a CPU one (the Section II-D discussion, built here as an
	// extension study): non-offloaded operations execute on the GPU at
	// its kernel-launch granularity.
	GPUHost bool
	// Trace, when non-nil, receives one line per scheduling decision:
	// "t=<sim time> step=<n> op=<name> path=<cpu|prog|fixed>". The
	// writer is used from the run's own goroutine only; to share one
	// writer across concurrent runs, wrap it with SyncWriter.
	Trace io.Writer
	// DisableOpportunistic turns off the Fig. 2 class-1 rule (offload
	// non-candidate compute ops when units idle) — an ablation that
	// shows the rule is load-bearing for deep serial networks.
	DisableOpportunistic bool
	// Census, when non-nil, is filled with per-op-type placement counts.
	// It is written without synchronization: never share one Census
	// between concurrent runs.
	Census *PlacementCensus
	// Collector, when non-nil, receives the run's instrumentation
	// events: per-device task spans, queue depths, fixed-pool busy
	// units, pipeline occupancy and scheduling counters (the
	// observability layer; metrics.Collector records and exports them).
	// Like every Options field it binds this value to one run — but a
	// collector that is itself safe for concurrent use (metrics.Collector
	// is) may be SHARED by the Options values of concurrent runs. The
	// uninstrumented path pays one nil check per hook. Attaching a
	// collector never changes simulation results.
	Collector sim.Collector
}

// withDefaults normalizes option values.
func (o Options) withDefaults() Options {
	if o.PipelineDepth <= 0 {
		o.PipelineDepth = 2
	}
	if o.Steps <= 0 {
		o.Steps = 4
	}
	if o.XPercent <= 0 {
		o.XPercent = 90
	}
	// Normalize the multi-stack axis so every single-stack Options value
	// fingerprints identically: Stacks 0 and 1 are the same system, and
	// a schedule without stacks to run on is meaningless.
	if o.Stacks < 1 {
		o.Stacks = 1
	}
	if o.Stacks == 1 {
		o.AllReduce = ""
	} else if o.AllReduce == "" {
		o.AllReduce = ReduceRing
	}
	return o
}

// uniformPlacementDerate is the sustained-frequency penalty of ignoring
// the thermal placement policy (hot central banks throttle).
const uniformPlacementDerate = 0.92

// pathKind is where the scheduler placed an operation.
type pathKind int

const (
	pathCPU pathKind = iota
	pathProg
	pathFixed
)

// fixedKernelQuantumFlops is the work of ONE small kernel loadable on a
// group of fixed-function PIMs (one extracted code section instance,
// Section IV-B). Without recursive kernels the host pays a spawn and a
// completion synchronization for every one of them — the "frequent
// operation-spawning and host-PIM synchronization" overhead of
// Section II-C that RC exists to remove.
const fixedKernelQuantumFlops = 1e6

// fixedTimeQuantum bounds how long one unit grant is held before the
// runtime re-evaluates it. This implements the paper's dynamic usage:
// "an operation can dynamically change its usage of PIMs, depending on
// the availability of PIMs" — a starved operation regains units at the
// next quantum, and a newly released pool is redistributed quickly.
const fixedTimeQuantum hw.Seconds = 2e-3

// Typed event kinds of the PIM executor (sim.KindFunc = 0 is reserved
// for legacy closure events). Every kind carries its *task in Ptr; the
// scalar operands are documented per kind. Scheduling these allocates
// nothing — the payload travels by value inside the engine's heap slab —
// which is what makes the steady-state inner loop closure- and
// allocation-free (the AllocsPerRun pin in exec_alloc_test.go).
const (
	// evItemDone: a serial-device work item finished. A = device index
	// (devCPU/devProg), N = slots to release, Start = span start.
	evItemDone sim.EventKind = iota + 1
	// evStartResidual: begin one residual half. Flag = before-sections.
	evStartResidual
	// evResidualDone: a residual half finished. Flag = before-sections,
	// Start = span start.
	evResidualDone
	// evSectionDone: one fixed-pool chunk finished. N = granted units,
	// F1/F2 = chunk flops/bytes, F3 = sync-gap duration, Start = span
	// start.
	evSectionDone
	// evSyncGap: the post-chunk synchronization gap elapsed; request the
	// next chunk or finish the op.
	evSyncGap
)

// Serial-device indexes for evItemDone's A operand.
const (
	devCPU uint8 = iota
	devProg
)

// task is one operation instance (op x step) in flight.
type task struct {
	op   *nn.Op
	step int
	deps int
	outs []*task

	// token is the op's handle in the Fig. 7 status registers.
	token pim.OpToken

	path pathKind
	// remFlops/remBytes is the remaining decomposable work streamed
	// through the fixed-function units.
	remFlops, remBytes float64
	// syncPerFlop spreads the op's total per-kernel synchronization
	// cost over its decomposable flops.
	syncPerFlop float64
}

// workItem is a unit of queued device work.
type workItem struct {
	dur   hw.Seconds
	opT   hw.Seconds // operation-time share
	dmT   hw.Seconds // data-movement share
	slots int        // device slots occupied (defaults to 1)
	// bypassed counts how many shorter items jumped ahead (SJF aging:
	// after maxBypass jumps the item cannot be overtaken again).
	bypassed int
	// t is the task this item executes. The completion action is derived
	// from t.path when the item's evItemDone fires (prog items clear
	// their status register before waking dependents), so the item needs
	// no callback.
	t *task
}

// maxBypass bounds SJF queue jumping so long operations cannot starve.
const maxBypass = 8

// serialDevice is a multi-slot resource (the host, or the set of
// programmable PIM processors). The host runs shortest-job-first: the
// 8-core machine timeslices, so a small framework op is never stuck
// behind a long-running macro operation.
//
// The queue is head-indexed: pops advance head instead of re-slicing,
// so one backing array serves the whole run (the old `queue[1:]`
// re-slice leaked the array head and forced append to re-grow it
// continuously — the hottest allocation site of the scheduling loop).
type serialDevice struct {
	// idx is the device's evItemDone operand (devCPU or devProg).
	idx   uint8
	slots int
	busy  int
	sjf   bool
	queue []workItem
	head  int
	// busySeconds integrates slot occupancy for the energy model.
	busySeconds float64
	// name is the device's timeline track ("cpu", "prog", "gpu");
	// queueMetric is the precomputed gauge name for its queue depth.
	name        string
	queueMetric string
}

// pending returns the number of queued items.
func (d *serialDevice) pending() int { return len(d.queue) - d.head }

// pop removes and returns the head item, recycling the backing array
// when the queue drains.
func (d *serialDevice) pop() workItem {
	w := d.queue[d.head]
	d.queue[d.head] = workItem{} // drop the task reference for the GC
	d.head++
	switch {
	case d.head == len(d.queue):
		d.queue = d.queue[:0]
		d.head = 0
	case d.head > 32 && d.head*2 > len(d.queue):
		// Compact a mostly-consumed queue so a long run that never
		// fully drains still reuses the front of the array.
		n := copy(d.queue, d.queue[d.head:])
		clearTail := d.queue[n:]
		for i := range clearTail {
			clearTail[i] = workItem{}
		}
		d.queue = d.queue[:n]
		d.head = 0
	}
	return w
}

// exec is the discrete-event executor state.
type exec struct {
	eng  *sim.Engine
	cfg  hw.SystemConfig
	g    *nn.Graph
	opts Options
	cand map[int]bool

	pool *pim.Pool
	regs *pim.Registers
	cpu  *serialDevice
	prog *serialDevice

	// fixedBanks caches the (static) bank list reported to the Fig. 7
	// status registers for fixed-function offloads.
	fixedBanks []int

	// fixedPending is the FIFO of tasks waiting for fixed units. It is
	// head-indexed like the device queues: pops advance fixedHead so the
	// backing array is reused instead of re-sliced away.
	fixedPending []*task
	fixedHead    int

	tasks     [][]*task // [step][opID]
	stepLeft  []int
	heldBack  [][]*task // dep-free tasks awaiting step admission
	firstOpen int       // smallest step with unfinished tasks

	// tpl/arena are set when the task DAG came from the template cache
	// (template.go); the arena returns to the template's pool after the
	// run.
	tpl   *taskTemplate
	arena *taskArena

	bk      Breakdown // serial attribution sums
	usage   Usage
	offload int
	cpuOps  int
	err     error

	// watch, when non-nil, records the run's unit-budget-sensitive
	// decisions for the delta-simulation layer (checkpoint.go): replay
	// constraints before the first fixed-pool grant, and the event index
	// of that grant (where the shareable timeline prefix ends).
	watch *capWatch
}

// RunPIM simulates steady-state training on a PIM-equipped platform.
// It covers Hetero PIM (with/without RC and OP), the Fixed PIM baseline
// (no programmable processors in cfg) and the Progr PIM baseline (no
// fixed units in cfg).
//
// Uninstrumented runs are served through the cross-run result cache
// (result_cache.go): identical (graph, config, options) cells collapse
// to a single live simulation. Instrumented runs — any run with a
// Collector, Trace writer or Census attached — bypass the cache in both
// directions, because their value is the side effects.
func RunPIM(g *nn.Graph, cfg hw.SystemConfig, opts Options) (Result, error) {
	opts = opts.withDefaults()
	run := func() (Result, error) { return runPIM(g, cfg, opts) }
	if opts.Stacks > 1 {
		run = func() (Result, error) { return runMultiPIM(g, cfg, opts) }
	}
	if resultCacheUsable(opts) {
		fp := fingerprintRun("pim", g, cfg, opts, nil)
		return cachedResult(fp, run)
	}
	return run()
}

// runPIM is the live (uncached) simulation behind RunPIM; opts must
// already be normalized by withDefaults.
func runPIM(g *nn.Graph, cfg hw.SystemConfig, opts Options) (Result, error) {
	x, err := newExec(g, cfg, opts)
	if err != nil {
		return Result{}, err
	}
	defer x.teardown()
	x.seed()
	return x.drainRun()
}

// newExec assembles a ready-to-seed executor: validated configuration,
// unit placement, a pooled engine with the executor attached as its
// typed-event handler, the candidate set and the instantiated task DAG.
// Everything through here is shared verbatim between a normal run
// (runPIM), a checkpoint capture and a delta replay; only what happens
// after — seed + drain vs. state restore + drain — differs. opts must
// already be normalized by withDefaults.
func newExec(g *nn.Graph, cfg hw.SystemConfig, opts Options) (*exec, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.GPUHost && cfg.GPU.SMs <= 0 {
		return nil, fmt.Errorf("core: GPU-host execution needs a GPU in the configuration")
	}
	stack, err := hmc.New(cfg.Stack)
	if err != nil {
		return nil, err
	}
	var placement pim.Placement
	if cfg.FixedPIM.Units > 0 {
		if opts.UniformPlacement {
			placement, err = pim.UniformPlacement(stack, cfg.FixedPIM.Units)
		} else {
			placement, err = pim.ThermalPlacement(stack, cfg.FixedPIM.Units)
		}
		if err != nil {
			return nil, err
		}
	}
	eng := sim.Acquire()
	// Attach the collector before any scheduling happens; Release's
	// Reset detaches it, so the pooled engine cannot leak it.
	eng.SetCollector(opts.Collector)
	hostTrack := "cpu"
	if opts.GPUHost {
		hostTrack = "gpu"
	}
	x := &exec{
		eng:  eng,
		cfg:  cfg,
		g:    g,
		opts: opts,
		pool: pim.NewPool(cfg.FixedPIM, placement),
		regs: pim.NewRegisters(cfg.Stack.Banks, cfg.ProgPIM.Processors),
		// The host is modelled with two op-level slots: TensorFlow's
		// inter-op thread pool keeps multiple operations in flight on
		// the 8-core machine, which is what lets a co-running job use
		// idle host cycles (Section VI-F).
		cpu:  &serialDevice{idx: devCPU, slots: 2, sjf: true, name: hostTrack, queueMetric: "queue." + hostTrack},
		prog: &serialDevice{idx: devProg, slots: cfg.ProgPIM.Processors, name: "prog", queueMetric: "queue.prog"},
	}
	// The executor is the engine's typed-event dispatcher; Release's
	// Reset detaches it along with the collector.
	eng.SetHandler(x)
	// The placement is static, so the bank list reported to the status
	// registers is too: compute it once instead of per offloaded op.
	for b, u := range placement.Units {
		if u > 0 {
			x.fixedBanks = append(x.fixedBanks, b)
			if len(x.fixedBanks) == 4 {
				break
			}
		}
	}
	if opts.UseSelection {
		prof := CachedProfileStep(g, cfg.CPU)
		if len(opts.HostOnlyOps) > 0 {
			// Host-pinned operations (the Section VI-F non-CNN job) are
			// not offload candidates: drop them from the profile so
			// they cannot eat the x% selection budget. The cached
			// profile is shared — filter into a fresh slice.
			filtered := StepProfile{Entries: make([]ProfileEntry, 0, len(prof.Entries))}
			for _, e := range prof.Entries {
				if opts.HostOnlyOps[e.OpID] {
					continue
				}
				filtered.Entries = append(filtered.Entries, e)
				filtered.TotalTime += e.Time
				filtered.TotalAccesses += e.MemAccesses
			}
			prof = filtered
		}
		x.cand = SelectCandidates(prof, opts.XPercent)
	} else {
		x.cand = AllOpsCandidates(g)
	}
	// Selection-rank decisions, for the metrics dump: how many ops the
	// dual-index rank admitted to the candidate set.
	eng.EmitCount("sched.ops", float64(len(g.Ops)))
	eng.EmitCount("sched.candidates", float64(len(x.cand)))
	x.buildTasks()
	return x, nil
}

// teardown returns the executor's pooled resources: the task arena to
// its template's pool first, then the engine (whose Reset clears any
// stale handler/collector references) — the same order the deferred
// cleanups ran in before runPIM was split. Idempotent.
func (x *exec) teardown() {
	if x.tpl != nil {
		x.tpl.release(x.arena)
		x.tpl, x.arena = nil, nil
	}
	if x.eng != nil {
		sim.Release(x.eng)
		x.eng = nil
	}
}

// drainRun executes the scheduled events to completion and folds the
// executor's accumulated state into a Result. The caller must have
// either seeded the run (seed) or restored a checkpoint into the
// engine beforehand.
func (x *exec) drainRun() (Result, error) {
	if err := x.eng.Run(); err != nil {
		return Result{}, err
	}
	x.eng.EmitCount("sim.events", float64(x.eng.Processed()))
	if x.err != nil {
		return Result{}, x.err
	}
	// Hardware/software contract: every pimOffload must have been
	// matched by a completion — the Fig. 7 registers read all-idle.
	for b := 0; b < x.cfg.Stack.Banks; b++ {
		if x.regs.IsBankBusy(b) {
			return Result{}, fmt.Errorf("core: bank %d status register still busy at end of simulation", b)
		}
	}
	for pidx := 0; pidx < x.cfg.ProgPIM.Processors; pidx++ {
		if x.regs.IsProcessorBusy(pidx) {
			return Result{}, fmt.Errorf("core: processor %d status register still busy at end of simulation", pidx)
		}
	}
	return x.finish(), nil
}

// effStack returns the stack spec, derated under uniform placement.
func (x *exec) effStack() hw.StackSpec {
	s := x.cfg.Stack
	if x.opts.UniformPlacement {
		if s.FreqScale == 0 {
			s.FreqScale = 1
		}
		s.FreqScale *= uniformPlacementDerate
	}
	return s
}

// max0 clamps a count to zero.
func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// buildTasks instantiates op x step tasks and wires dependencies. The
// fast path clones a memoized per-(structure, steps, OP) template from
// a pooled arena (template.go); the from-scratch path below remains as
// the reference builder the template path is tested against (and the
// fallback when templates are disabled).
func (x *exec) buildTasks() {
	if !templatesOff.Load() {
		x.tpl = templateFor(x.g, x.opts.Steps, x.opts.OP)
		x.arena = x.tpl.acquire(x.g)
		x.tasks = x.arena.byStep
		x.stepLeft = x.arena.stepLeft
		x.heldBack = x.arena.heldBack
		return
	}
	x.buildTasksScratch()
}

// buildTasksScratch builds the task DAG from scratch. All tasks live in
// one contiguous slab and all dependency-edge slices are carved from a
// second slab sized by a degree-counting pre-pass, so the whole graph
// costs a handful of allocations instead of one per task plus repeated
// append growth per edge.
func (x *exec) buildTasksScratch() {
	steps := x.opts.Steps
	n := len(x.g.Ops)
	// Out-degrees: same-step dependents, and (no-OP mode only)
	// cross-step dependents of the previous step's instance.
	outDeg := make([]int, n)
	crossDeg := make([]int, n)
	sameEdges, crossEdges := 0, 0
	for _, op := range x.g.Ops {
		for _, in := range op.Inputs {
			outDeg[in]++
			sameEdges++
		}
		if !x.opts.OP {
			for _, cs := range op.CrossStep {
				crossDeg[cs]++
				crossEdges++
			}
		}
	}
	slab := make([]task, steps*n)
	ptrs := make([]*task, steps*n)
	edgeSlab := make([]*task, steps*sameEdges+max0(steps-1)*crossEdges)
	x.tasks = make([][]*task, steps)
	x.stepLeft = make([]int, steps)
	x.heldBack = make([][]*task, steps)
	off := 0
	for s := 0; s < steps; s++ {
		x.tasks[s] = ptrs[s*n : (s+1)*n]
		x.stepLeft[s] = n
		for _, op := range x.g.Ops {
			t := &slab[s*n+op.ID]
			t.op, t.step = op, s
			// Carve the outs slice at its exact final capacity.
			deg := outDeg[op.ID]
			if s < steps-1 && !x.opts.OP {
				deg += crossDeg[op.ID]
			}
			t.outs = edgeSlab[off : off : off+deg]
			off += deg
			x.tasks[s][op.ID] = t
		}
	}
	for s := 0; s < steps; s++ {
		for _, op := range x.g.Ops {
			t := x.tasks[s][op.ID]
			for _, in := range op.Inputs {
				src := x.tasks[s][in]
				src.outs = append(src.outs, t)
				t.deps++
			}
			// Cross-step weight gates: under OP the runtime
			// double-buffers parameter updates so next-step forward
			// work can start on in-flight weights (the paper's
			// next-step partial execution, Section III-C); without OP
			// the step barrier subsumes the gates, so the explicit
			// edges are only wired for the strict (no-OP) mode.
			if s > 0 && !x.opts.OP {
				for _, cs := range op.CrossStep {
					src := x.tasks[s-1][cs]
					src.outs = append(src.outs, t)
					t.deps++
				}
			}
		}
	}
}

// admitted reports whether tasks of the given step may start.
func (x *exec) admitted(step int) bool {
	if !x.opts.OP {
		return step == x.firstOpen
	}
	return step < x.firstOpen+x.opts.PipelineDepth
}

// seed dispatches every dependency-free task of admissible steps.
func (x *exec) seed() {
	for s := range x.tasks {
		for _, t := range x.tasks[s] {
			if t.deps == 0 {
				x.maybeDispatch(t)
			}
		}
	}
}

// maybeDispatch starts a dep-free task now or holds it for admission.
func (x *exec) maybeDispatch(t *task) {
	if !x.admitted(t.step) {
		x.heldBack[t.step] = append(x.heldBack[t.step], t)
		return
	}
	x.dispatch(t)
}

// dispatch applies the three scheduling principles to place a task.
func (x *exec) dispatch(t *task) {
	prof := nn.ProfileFor(t.op.Type)
	isCand := x.cand[t.op.ID]
	if x.opts.HostOnlyOps[t.op.ID] {
		// Section VI-F policy: the non-CNN model "executes on CPU or
		// the programmable PIM, when they are idle". Pick the idle
		// device only when it is not grossly slower for this op.
		cpuDur := device.CPUOp(t.op, x.cfg.CPU).Time()
		progDur := math.Inf(1)
		if prof.ProgEligible && x.prog.slots > 0 {
			progDur = device.ProgOp(t.op, x.cfg.ProgPIM, 1, x.effStack()).Time()
		}
		if x.cpu.busy >= x.cpu.slots && x.prog.busy < x.prog.slots && progDur <= 2*cpuDur {
			x.startProg(t)
			return
		}
		x.startCPU(t)
		return
	}
	fixedOK := prof.FixedEligible && x.poolHasUnits() && t.op.DecomposableFlops() > 0
	// Fig. 2 / class 1: compute-intensive ops outside the candidate set
	// "do not have to be offloaded to PIMs, but we can offload them when
	// there are idling hardware units in PIMs" — opportunistic offload
	// when units are free right now (candidates may queue instead).
	granule := t.op.UnitGranule
	if granule <= 0 {
		granule = 1
	}
	x.pool.Advance(x.eng.Now())
	// Offload opportunistically when units are idle right now, or when
	// the host is itself saturated (waiting for units beats queueing on
	// a busy CPU).
	opportunistic := fixedOK && !isCand && !x.opts.DisableOpportunistic &&
		(x.availAtLeast(granule) || x.cpu.busy >= x.cpu.slots)
	switch {
	// Principle 1: fixed-function PIMs first.
	case fixedOK && (isCand || opportunistic):
		x.startFixed(t)
	// Principle 2: PIMs over CPU; fall back to CPU when busy.
	case isCand && prof.ProgEligible && x.prog.slots > 0:
		x.startProg(t)
	default:
		x.startCPU(t)
	}
}

// trace emits one scheduling-decision line when tracing is enabled and
// feeds the placement census.
func (x *exec) trace(t *task) {
	if c := x.opts.Census; c != nil {
		switch t.path {
		case pathFixed:
			c.Fixed[string(t.op.Type)]++
		case pathProg:
			c.Prog[string(t.op.Type)]++
		default:
			c.CPU[string(t.op.Type)]++
		}
	}
	if x.eng.Observing() {
		counters := [...]string{"sched.path.cpu", "sched.path.prog", "sched.path.fixed"}
		x.eng.EmitCount(counters[t.path], 1)
		// Pipeline occupancy: how many steps are in flight when this
		// placement happens (1 without OP, up to PipelineDepth with).
		x.eng.EmitSample("pipeline.steps_in_flight", float64(t.step-x.firstOpen+1))
	}
	if x.opts.Trace == nil {
		return
	}
	names := [...]string{"cpu", "prog", "fixed"}
	fmt.Fprintf(x.opts.Trace, "t=%.9f step=%d op=%s path=%s\n",
		x.eng.Now(), t.step, t.op.Name, names[t.path])
}

// complete marks a task done and wakes its dependents; when a step
// drains it may open admission for held-back steps.
func (x *exec) complete(t *task) {
	x.stepLeft[t.step]--
	for _, d := range t.outs {
		d.deps--
		if d.deps == 0 {
			x.maybeDispatch(d)
		}
	}
	for x.firstOpen < len(x.stepLeft) && x.stepLeft[x.firstOpen] == 0 {
		x.firstOpen++
		// Admission horizon moved: release everything now admissible.
		for s := 0; s < len(x.heldBack); s++ {
			if !x.admitted(s) {
				continue
			}
			held := x.heldBack[s]
			// Keep the backing array (the pooled arena reuses it); no
			// append can land on heldBack[s] while held is walked —
			// dispatch never re-holds a task synchronously.
			x.heldBack[s] = held[:0]
			for _, ht := range held {
				x.dispatch(ht)
			}
		}
	}
}

// ---- device execution ----

// enqueue schedules a work item on a serial device (FIFO, head-of-line
// blocking for multi-slot items).
func (x *exec) enqueue(d *serialDevice, w workItem) {
	if w.slots < 1 {
		w.slots = 1
	}
	if w.slots > d.slots {
		w.slots = d.slots
	}
	x.bk.Operation += w.opT
	x.bk.DataMovement += w.dmT
	if d.sjf {
		// SJF insertion within the live window [head, len).
		at := len(d.queue)
		for at > d.head && d.queue[at-1].dur > w.dur && d.queue[at-1].bypassed < maxBypass {
			at--
		}
		d.queue = append(d.queue, workItem{})
		copy(d.queue[at+1:], d.queue[at:])
		d.queue[at] = w
		for i := at + 1; i < len(d.queue); i++ {
			d.queue[i].bypassed++
		}
	} else {
		d.queue = append(d.queue, w)
	}
	x.eng.EmitSample(d.queueMetric, float64(d.pending()))
	x.pumpDevice(d)
}

// pumpDevice starts queued items while slots are free.
func (x *exec) pumpDevice(d *serialDevice) {
	for d.pending() > 0 && d.busy+d.queue[d.head].slots <= d.slots {
		w := d.pop()
		d.busy += w.slots
		d.busySeconds += w.dur * float64(w.slots)
		if x.eng.Observing() {
			x.eng.EmitSample(d.queueMetric, float64(d.pending()))
			x.eng.EmitTaskStart(sim.Task{Track: d.name, Name: w.t.op.Name, Kind: "op", Step: w.t.step})
		}
		if err := x.eng.AfterEv(w.dur, sim.Ev{
			Kind: evItemDone, A: d.idx, N: int32(w.slots), Start: x.eng.Now(), Ptr: w.t,
		}); err != nil {
			x.err = err
		}
	}
}

// delayEv schedules a typed event after a pure synchronization delay.
func (x *exec) delayEv(dur hw.Seconds, ev sim.Ev) {
	x.bk.Sync += dur
	if err := x.eng.AfterEv(dur, ev); err != nil {
		x.err = err
	}
}

// residualTrack names the timeline lane residual halves run on; fixed
// for the whole run by the RC option and the processor count.
func (x *exec) residualTrack() string {
	if x.opts.RC && x.prog.slots > 0 {
		return "residual.prog"
	}
	return "residual.cpu"
}

// HandleEvent dispatches the executor's typed events (the closure-free
// replacements of the old scheduled callbacks). Each case preserves the
// exact statement order of the closure it replaced — the golden tables
// are bit-sensitive to it.
func (x *exec) HandleEvent(ev sim.Ev) {
	t := ev.Ptr.(*task)
	switch ev.Kind {
	case evItemDone:
		d := x.cpu
		if ev.A == devProg {
			d = x.prog
		}
		d.busy -= int(ev.N)
		if x.eng.Observing() {
			x.eng.EmitTaskEnd(sim.Task{Track: d.name, Name: t.op.Name, Kind: "op", Step: t.step, Start: ev.Start})
		}
		x.pumpDevice(d)
		if t.path == pathProg {
			x.completeOffload(t)
		}
		x.complete(t)
	case evStartResidual:
		x.runResidual(t, ev.Flag)
	case evResidualDone:
		if x.eng.Observing() {
			x.eng.EmitTaskEnd(sim.Task{Track: x.residualTrack(), Name: t.op.Name, Kind: "residual", Step: t.step, Start: ev.Start})
		}
		if ev.Flag {
			x.requestSection(t)
		} else {
			x.completeOffload(t)
			x.complete(t)
		}
	case evSectionDone:
		x.sectionDone(t, ev)
	case evSyncGap:
		if t.remFlops > 0 {
			x.requestSection(t)
			return
		}
		// Completion: with RC the programmable PIM notifies the host
		// once; without RC the host already synchronized per kernel.
		if x.opts.RC {
			x.delayEv(x.cfg.FixedPIM.HostSyncOverhead, sim.Ev{Kind: evStartResidual, Flag: false, Ptr: t})
		} else {
			x.runResidual(t, false)
		}
	}
}

// startCPU runs the whole op on the host (CPU, or the GPU in the
// GPU-attached extension).
func (x *exec) startCPU(t *task) {
	t.path = pathCPU
	x.cpuOps++
	x.trace(t)
	var w device.Work
	var overhead hw.Seconds
	if x.opts.GPUHost {
		w = device.GPUOp(t.op, x.cfg.GPU, gpuEff(x.g))
		overhead = x.cfg.GPU.KernelLaunchOverhead
		x.usage.GPUBytes += t.op.Bytes
	} else {
		w = device.CPUOp(t.op, x.cfg.CPU)
		overhead = cpuDispatchOverhead
		x.usage.HostBytes += t.op.Bytes
	}
	opT, dmT := splitWork(w)
	x.bk.Sync += overhead
	x.enqueue(x.cpu, workItem{dur: w.Time() + overhead, opT: opT, dmT: dmT, t: t})
}

// startProg runs the whole op on programmable PIM processors. If all
// processors are busy and the host is idle, principle 2's fallback
// sends it to the CPU instead (unless disabled for the Progr PIM
// baseline).
func (x *exec) startProg(t *task) {
	if !x.opts.NoCPUFallback && x.prog.busy >= x.prog.slots && x.cpu.busy < x.cpu.slots {
		x.eng.EmitCount("sched.cpu_fallback", 1)
		x.startCPU(t)
		return
	}
	t.path = pathProg
	x.offload++
	x.trace(t)
	// Track the op in the status registers (pimOffload on the
	// programmable processor); completion clears it.
	x.registerOffload(t, pim.Location{OnProgrammable: true, Processor: 0})
	procs := 1
	if x.opts.WideProgOps {
		procs = nn.ProgParallelismFor(t.op.Type)
		if procs > x.prog.slots {
			procs = x.prog.slots
		}
	}
	w := device.ProgOp(t.op, x.cfg.ProgPIM, procs, x.effStack())
	opT, dmT := splitWork(w)
	x.usage.PIMBytes += t.op.Bytes
	launch := x.cfg.ProgPIM.KernelLaunchOverhead + x.cfg.FixedPIM.HostSyncOverhead
	x.bk.Sync += launch
	procs2 := 1
	if x.opts.WideProgOps {
		procs2 = nn.ProgParallelismFor(t.op.Type)
	}
	x.enqueue(x.prog, workItem{dur: w.Time() + launch, opT: opT, dmT: dmT, slots: procs2, t: t})
}

// registerOffload records the op in the hardware status registers
// (Table III's pimOffload) so the runtime can poll pimQueryCompletion;
// the simulator itself schedules by events, but keeping the registers
// live lets tests assert the hardware/software contract.
func (x *exec) registerOffload(t *task, loc pim.Location) {
	tok, err := x.regs.Offload(loc)
	if err != nil {
		x.err = err
		return
	}
	t.token = tok
}

// completeOffload marks the op finished in the status registers.
func (x *exec) completeOffload(t *task) {
	if t.token == 0 {
		return
	}
	if err := x.regs.Complete(t.token); err != nil {
		x.err = err
	}
	t.token = 0
}

// startFixed begins the offloaded lifecycle of Fig. 6:
//
//	phase1 (residual, prog with RC / CPU without) ->
//	chunked execution on dynamically granted fixed units, paying the
//	per-kernel synchronization as it goes ->
//	phase2 (residual) -> done.
func (x *exec) startFixed(t *task) {
	t.path = pathFixed
	x.offload++
	x.trace(t)
	df, db := device.FixedWork(t.op)
	t.remFlops, t.remBytes = df, db
	kernels := math.Ceil(df / fixedKernelQuantumFlops)
	if kernels < 1 {
		kernels = 1
	}
	var perKernel hw.Seconds
	if x.opts.RC {
		// In-stack synchronization rides the (PLL-scaled) logic clock,
		// which is why Fig. 11's sync bars shrink at 2x and 4x.
		scale := x.effStack().FreqScale
		if scale <= 0 {
			scale = 1
		}
		perKernel = x.cfg.FixedPIM.PIMSyncOverhead / scale
	} else {
		perKernel = x.cfg.FixedPIM.SpawnOverhead + x.cfg.FixedPIM.HostSyncOverhead
	}
	if df > 0 {
		t.syncPerFlop = kernels * perKernel / df
	}
	x.usage.PIMBytes += db
	// Track the op in the status registers on the banks holding units
	// (pimQueryLocation's answer for this op).
	x.registerOffload(t, pim.Location{Banks: x.fixedBanks})
	// Kernel arrival overhead: with RC one host launch starts the
	// recursive kernel on the programmable PIM; without RC the host
	// drives every small kernel itself (charged per kernel, below).
	if x.opts.RC {
		x.delayEv(x.cfg.ProgPIM.KernelLaunchOverhead, sim.Ev{Kind: evStartResidual, Flag: true, Ptr: t})
	} else {
		x.runResidual(t, true)
	}
}

// runResidual executes half of the op's residual phases (before or
// after the sections). The phases are fine-grained bookkeeping that the
// programmable-PIM runtime (or the 8-core host, without RC) overlaps
// across in-flight operations, so they delay the op's own lifecycle but
// do not monopolize a device slot; their busy time still reaches the
// energy model.
func (x *exec) runResidual(t *task, before bool) {
	var w device.Work
	if x.opts.RC && x.prog.slots > 0 {
		w = device.ProgResidual(t.op, x.cfg.ProgPIM, x.effStack())
		x.usage.PIMBytes += t.op.Bytes * 0.10 / 2
	} else {
		w = device.CPUResidual(t.op, x.cfg.CPU)
		x.usage.HostBytes += t.op.Bytes * 0.10 / 2
	}
	half := device.Work{Compute: w.Compute / 2, Memory: w.Memory / 2}
	opT, dmT := splitWork(half)
	x.bk.Operation += opT
	x.bk.DataMovement += dmT
	if x.opts.RC && x.prog.slots > 0 {
		x.prog.busySeconds += half.Time()
	} else {
		x.cpu.busySeconds += half.Time()
	}
	if x.eng.Observing() {
		x.eng.EmitTaskStart(sim.Task{Track: x.residualTrack(), Name: t.op.Name, Kind: "residual", Step: t.step})
	}
	if err := x.eng.AfterEv(half.Time(), sim.Ev{
		Kind: evResidualDone, Flag: before, Start: x.eng.Now(), Ptr: t,
	}); err != nil {
		x.err = err
	}
}

// requestSection tries to grant fixed units for the task's next chunk.
func (x *exec) requestSection(t *task) {
	x.markGrant()
	granule := t.op.UnitGranule
	if granule <= 0 {
		granule = 1
	}
	granule = x.watchClampGranule(granule)
	x.pool.Advance(x.eng.Now())
	avail := x.pool.Available()
	granules := avail / granule
	x.watchQuotient(x.pool.Busy(), granule, granules)
	if granules == 0 {
		x.fixedPending = append(x.fixedPending, t)
		return
	}
	granted := x.pool.Grant(granules * granule)
	x.runSection(t, granted)
}

// popFixedPending removes the head of the fixed-pool wait queue.
func (x *exec) popFixedPending() *task {
	t := x.fixedPending[x.fixedHead]
	x.fixedPending[x.fixedHead] = nil // drop the task reference for the GC
	x.fixedHead++
	if x.fixedHead == len(x.fixedPending) {
		x.fixedPending = x.fixedPending[:0]
		x.fixedHead = 0
	}
	return t
}

// runSection executes one time-quantum chunk on granted units.
func (x *exec) runSection(t *task, granted int) {
	spec := x.cfg.FixedPIM
	full := device.FixedSectionTime(t.op, t.remFlops, t.remBytes, granted, spec, x.effStack())
	if math.IsInf(full, 1) || math.IsNaN(full) {
		x.err = fmt.Errorf("core: op %s: non-finite section time with %d units", t.op.Name, granted)
		return
	}
	frac := 1.0
	dur := full
	if full > fixedTimeQuantum {
		frac = fixedTimeQuantum / full
		dur = fixedTimeQuantum
	}
	chunkFlops := t.remFlops * frac
	chunkBytes := t.remBytes * frac
	// Per-kernel synchronization for this chunk's kernels: cheap
	// in-stack syncs with RC, host spawns + completion syncs without
	// (Section III-B). The units are RELEASED during the gap — that
	// idle time is precisely the utilization loss Fig. 15 shows for
	// the no-RC configurations.
	syncCost := t.syncPerFlop * chunkFlops
	x.bk.Sync += syncCost
	// Breakdown attribution follows the roofline split.
	rate := device.FixedUnitRate(t.op, spec, x.effStack()) * float64(granted)
	compT := chunkFlops / rate
	opT := math.Min(compT, dur)
	x.bk.Operation += opT
	x.bk.DataMovement += dur - opT
	if x.eng.Observing() {
		// One span per granted chunk: the per-bank utilization signal of
		// the Fig. 15 study, as both a timeline lane and a busy-units
		// counter track.
		x.eng.EmitSample("fixed.busy_units", float64(x.pool.Busy()))
		x.eng.EmitTaskStart(sim.Task{Track: "fixed", Name: t.op.Name, Kind: "section", Step: t.step})
	}
	if err := x.eng.AfterEv(dur, sim.Ev{
		Kind: evSectionDone, N: int32(granted),
		F1: chunkFlops, F2: chunkBytes, F3: syncCost,
		Start: x.eng.Now(), Ptr: t,
	}); err != nil {
		x.err = err
	}
}

// sectionDone finishes one granted chunk (the evSectionDone case):
// release the units, account the chunk, hand freed units to waiters,
// and schedule the synchronization gap.
func (x *exec) sectionDone(t *task, ev sim.Ev) {
	granted := int(ev.N)
	x.pool.Advance(x.eng.Now())
	if err := x.pool.Release(granted); err != nil {
		x.err = err
		return
	}
	if x.eng.Observing() {
		x.eng.EmitTaskEnd(sim.Task{Track: "fixed", Name: t.op.Name, Kind: "section", Step: t.step, Start: ev.Start})
		x.eng.EmitSample("fixed.busy_units", float64(x.pool.Busy()))
	}
	t.remFlops -= ev.F1
	t.remBytes -= ev.F2
	if t.remFlops < 1 {
		t.remFlops = 0
	}
	x.pumpFixedPending()
	// The synchronization gap runs with the units already released.
	if err := x.eng.AfterEv(ev.F3, sim.Ev{Kind: evSyncGap, Ptr: t}); err != nil {
		x.err = err
	}
}

// pumpFixedPending hands freed units to waiting sections (the paper's
// "partially executed operations immediately utilize newly released
// fixed-function PIMs").
func (x *exec) pumpFixedPending() {
	for x.fixedHead < len(x.fixedPending) {
		x.markGrant()
		t := x.fixedPending[x.fixedHead]
		granule := t.op.UnitGranule
		if granule <= 0 {
			granule = 1
		}
		granule = x.watchClampGranule(granule)
		granules := x.pool.Available() / granule
		x.watchQuotient(x.pool.Busy(), granule, granules)
		if granules == 0 {
			return
		}
		x.popFixedPending()
		granted := x.pool.Grant(granules * granule)
		x.runSection(t, granted)
	}
}

// finish assembles the Result, scaling the serial breakdown sums onto
// the wall-clock makespan.
func (x *exec) finish() Result {
	makespan := x.eng.Now()
	x.pool.Advance(makespan)
	x.eng.EmitSample("fixed.utilization", x.pool.Utilization())
	steps := float64(x.opts.Steps)
	res := Result{
		Config:   x.cfg,
		Model:    x.g.Model,
		StepTime: makespan / steps,
		Steps:    x.opts.Steps,
	}
	serial := x.bk.Total()
	if serial > 0 {
		res.Breakdown = x.bk.scale(res.StepTime / serial)
	}
	res.Usage = x.usage
	if x.opts.GPUHost {
		res.Usage.GPUBusy = x.cpu.busySeconds
		res.GPUUtilization = x.g.GPUUtilization
	} else {
		res.Usage.CPUBusy = x.cpu.busySeconds
	}
	res.Usage.ProgBusy = x.prog.busySeconds
	res.Usage.FixedBusyUnitSeconds = x.pool.BusyUnitSeconds()
	// Per-step averaging of usage.
	res.Usage.CPUBusy /= steps
	res.Usage.GPUBusy /= steps
	res.Usage.GPUBytes /= steps
	res.Usage.ProgBusy /= steps
	res.Usage.FixedBusyUnitSeconds /= steps
	res.Usage.HostBytes /= steps
	res.Usage.PIMBytes /= steps
	res.FixedUtilization = x.pool.Utilization()
	res.OffloadedOps = x.offload / x.opts.Steps
	res.CPUOps = x.cpuOps / x.opts.Steps
	return res
}
