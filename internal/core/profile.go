// Package core implements the paper's primary contribution: the
// heterogeneous-PIM runtime system (Section III-C / IV-C). It contains
// the step-1 CPU profiler, the dual-index offload-candidate selection,
// the three-principle scheduler with its two key techniques — recursive
// PIM kernels (RC) and the cross-step operation pipeline (OP) — and the
// trace-driven executors for all five evaluated platform configurations.
package core

import (
	"sort"

	"heteropim/internal/device"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// ProfileEntry is what the runtime learns about one operation during
// the profiling step: execution time on the CPU and the number of
// main-memory accesses (LLC-miss-driven), collected with hardware
// counters (Section III-C, Step 1).
type ProfileEntry struct {
	OpID int
	Time hw.Seconds
	// MemAccesses counts 64-byte main-memory accesses.
	MemAccesses float64
}

// StepProfile is the result of profiling one full training step on CPU.
type StepProfile struct {
	Entries []ProfileEntry
	// TotalTime is the summed (serial) execution time of the step.
	TotalTime hw.Seconds
	// TotalAccesses is the summed main-memory access count.
	TotalAccesses float64
}

// ProfileStep executes every operation of the step, one by one, on the
// CPU model, "collecting execution time and the number of main memory
// access level cache misses of each operation". Inter-operation
// parallelism is disabled for accuracy, exactly as in Section II-A.
func ProfileStep(g *nn.Graph, cpu hw.CPUSpec) StepProfile {
	const cacheLine = 64
	prof := StepProfile{Entries: make([]ProfileEntry, 0, len(g.Ops))}
	for _, op := range g.Ops {
		w := device.CPUOp(op, cpu)
		e := ProfileEntry{OpID: op.ID, Time: w.Time(), MemAccesses: op.Bytes / cacheLine}
		prof.Entries = append(prof.Entries, e)
		prof.TotalTime += e.Time
		prof.TotalAccesses += e.MemAccesses
	}
	return prof
}

// SelectCandidates implements the paper's candidate-selection algorithm
// verbatim: sort the operations into two descending lists (by execution
// time and by main-memory accesses); each operation gets an index in
// each list; the global index is the sum of the two; sort ascending by
// global index (top = both time-consuming AND memory-intensive, the
// feature-selection-inspired rank); finally take top operations until
// they account for x% of the step's execution time (x = 90 in the
// paper's evaluation).
func SelectCandidates(prof StepProfile, xPercent float64) map[int]bool {
	n := len(prof.Entries)
	if n == 0 {
		return map[int]bool{}
	}
	if xPercent <= 0 {
		return map[int]bool{}
	}
	if xPercent > 100 {
		xPercent = 100
	}
	byTime := make([]int, n) // positions into prof.Entries
	byMem := make([]int, n)
	for i := range byTime {
		byTime[i], byMem[i] = i, i
	}
	sort.SliceStable(byTime, func(a, b int) bool {
		return prof.Entries[byTime[a]].Time > prof.Entries[byTime[b]].Time
	})
	sort.SliceStable(byMem, func(a, b int) bool {
		return prof.Entries[byMem[a]].MemAccesses > prof.Entries[byMem[b]].MemAccesses
	})
	globalIdx := make([]int, n)
	for rank, pos := range byTime {
		globalIdx[pos] += rank
	}
	for rank, pos := range byMem {
		globalIdx[pos] += rank
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if globalIdx[order[a]] != globalIdx[order[b]] {
			return globalIdx[order[a]] < globalIdx[order[b]]
		}
		// Deterministic tie-break: the more time-consuming op first.
		return prof.Entries[order[a]].Time > prof.Entries[order[b]].Time
	})
	candidates := map[int]bool{}
	target := prof.TotalTime * xPercent / 100
	var acc hw.Seconds
	for _, pos := range order {
		if acc >= target {
			break
		}
		e := prof.Entries[pos]
		candidates[e.OpID] = true
		acc += e.Time
	}
	return candidates
}

// CandidateSet derives the offload candidates for a graph at the
// paper's x = 90 threshold.
func CandidateSet(g *nn.Graph, cpu hw.CPUSpec) map[int]bool {
	return SelectCandidates(ProfileStep(g, cpu), 90)
}

// AllOpsCandidates marks every op a candidate; the Fixed PIM and Progr
// PIM baselines have no runtime selection — eligibility alone decides
// placement.
func AllOpsCandidates(g *nn.Graph) map[int]bool {
	out := make(map[int]bool, len(g.Ops))
	for _, op := range g.Ops {
		out[op.ID] = true
	}
	return out
}
