package core

import (
	"testing"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// TestTemplateRunsMatchScratch checks the task-graph template contract:
// a run whose tasks were instantiated from the cached per-(model,
// pipeline-depth) template is bit-identical to one whose tasks were
// built from scratch, across every model and every PIM platform (the
// three executors that go through buildTasks).
func TestTemplateRunsMatchScratch(t *testing.T) {
	prevCache := EnableResultCache(false)
	t.Cleanup(func() { EnableResultCache(prevCache) })
	ResetTaskTemplates()
	for _, m := range nn.CNNModelNames() {
		g, err := nn.Build(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []hw.ConfigKind{hw.ConfigProgrPIM, hw.ConfigFixedPIM, hw.ConfigHeteroPIM} {
			templated, err := Run(kind, g, 1)
			if err != nil {
				t.Fatalf("%s on %v (templates): %v", m, kind, err)
			}
			prev := setTaskTemplates(false)
			scratch, err := Run(kind, g, 1)
			setTaskTemplates(prev)
			if err != nil {
				t.Fatalf("%s on %v (scratch): %v", m, kind, err)
			}
			if templated != scratch {
				t.Errorf("%s on %v: template-instantiated run differs from scratch build", m, kind)
			}
		}
	}
}

// TestTemplateArenaReuse checks that repeated runs of the same model
// reuse one template (and produce identical results while doing so) —
// the pooling path, where an arena is released and re-acquired.
func TestTemplateArenaReuse(t *testing.T) {
	prevCache := EnableResultCache(false)
	t.Cleanup(func() { EnableResultCache(prevCache) })
	ResetTaskTemplates()
	g, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(hw.ConfigHeteroPIM, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(hw.ConfigHeteroPIM, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Errorf("run %d on a reused arena differs from the first run", i)
		}
	}
}
