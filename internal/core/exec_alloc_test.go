package core

import (
	"testing"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/sim"
)

// countingCollector records only counters (used here to read the
// "sim.events" count a run emits).
type countingCollector struct{ counts map[string]float64 }

func (c *countingCollector) TaskStart(sim.Task)                 {}
func (c *countingCollector) TaskEnd(sim.Task)                   {}
func (c *countingCollector) Sample(string, hw.Seconds, float64) {}
func (c *countingCollector) Count(name string, delta float64)   { c.counts[name] += delta }

// TestSteadyStateZeroAllocsPerEvent pins the tentpole property of the
// typed-event conversion end to end: in steady state the simulator
// schedules and dispatches events without per-event heap allocations.
//
// Direct AllocsPerRun on a whole run would count per-run setup (system
// model, placement, pool, registers), so the test measures the MARGINAL
// allocations between a 4-step and a 12-step run of the same cell: the
// setup is identical and cancels, leaving only what the extra eight
// steps of event traffic allocated. That marginal cost, divided by the
// marginal event count, must be ~0 (the closure-based engine paid one
// closure — and before PR 3 one boxing — per event).
func TestSteadyStateZeroAllocsPerEvent(t *testing.T) {
	g, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	prev := EnableResultCache(false)
	defer EnableResultCache(prev)

	optsFor := func(steps int) Options {
		o := HeteroOptions()
		o.Steps = steps
		return o
	}
	events := func(steps int) float64 {
		c := &countingCollector{counts: map[string]float64{}}
		o := optsFor(steps)
		o.Collector = c
		if _, err := RunPIM(g, cfg, o); err != nil {
			t.Fatal(err)
		}
		return c.counts["sim.events"]
	}
	// Warm every pooled structure (templates, arenas, engine heap,
	// profile cache) for both step counts before measuring.
	for _, s := range []int{4, 12} {
		if _, err := RunPIM(g, cfg, optsFor(s)); err != nil {
			t.Fatal(err)
		}
	}
	allocs := func(steps int) float64 {
		o := optsFor(steps)
		return testing.AllocsPerRun(20, func() {
			if _, err := RunPIM(g, cfg, o); err != nil {
				t.Fatal(err)
			}
		})
	}
	e4, e12 := events(4), events(12)
	if e12-e4 < 500 {
		t.Fatalf("marginal events %g too small to measure (e4=%g e12=%g)", e12-e4, e4, e12)
	}
	a4, a12 := allocs(4), allocs(12)
	perEvent := (a12 - a4) / (e12 - e4)
	t.Logf("allocs: steps=4 %.1f, steps=12 %.1f; events: %g vs %g; marginal %.4f allocs/event",
		a4, a12, e4, e12, perEvent)
	// Zero with headroom for sync.Pool evictions under AllocsPerRun's
	// GC pressure; a single closure per event would read ~1.0 here.
	if perEvent > 0.01 {
		t.Fatalf("steady state allocates %.4f objects/event, want 0", perEvent)
	}
}
