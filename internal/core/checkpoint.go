package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/pim"
	"heteropim/internal/sim"
)

// Delta simulation: the event timeline of a PIM run is independent of
// the fixed-function unit budget until the first capacity grant — every
// earlier scheduling decision reads the pool only through predicates
// ("are there units at all?", "are at least `granule` units idle?")
// whose outcomes a watch records as replay constraints. A design-space
// sweep that varies ONLY the unit budget can therefore simulate the
// shared prefix once, freeze the complete executor state at the event
// boundary before the first grant, and fork each sibling candidate from
// the checkpoint, replaying just the suffix. The fork is bit-identical
// to a from-scratch run of the same candidate (checkpoint_test.go pins
// this across platforms and models):
//
//   - the engine restores its heap slab verbatim and continues the
//     sequence counter, so event order and tie-breaks match exactly
//     (sim.Checkpoint);
//   - the task DAG is rebuilt by the same template path and its mutable
//     scalars overwritten from the snapshot; event payload pointers are
//     remapped through slab indices;
//   - the register file resumes from a deep copy with token numbering
//     continued (pim.RegistersSnapshot);
//   - the pool's utilization integral is replayed advance-by-advance so
//     the fork accumulates its OWN unit budget over the same piecewise
//     intervals, reproducing the float sum a scratch run computes
//     (pim.Pool.ReplayHistory — the recorded busy levels are identical
//     for every budget the checkpoint covers).
//
// The watch's constraints make the reuse sound rather than hopeful: a
// fork whose unit budget would have flipped any recorded predicate is
// refused (Compatible) and must simulate from scratch.
//
// The watch has two modes. The shallow mode (the original delta layer)
// stops at the first capacity grant: everything after it is treated as
// budget-specific. The deep mode keeps watching THROUGH grants: a grant
// computes quotient = available/granule, and every budget that yields
// the same quotient produces the same granted size — so the timeline
// stays shared for the whole quotient window [busy + q*granule,
// busy + (q+1)*granule - 1] and only narrows as further grants observe
// the budget. The watch records each narrowing with the event index it
// happened at; DeltaPlan turns that history into per-budget deepest
// checkpoints.

// watchStep is one range-narrowing: during the 1-based event index
// `processed`, the set of unit budgets indistinguishable from the
// watched run shrank to [min, max].
type watchStep struct {
	processed uint64
	min, max  int
}

// capWatch records a run's unit-budget-sensitive decisions.
type capWatch struct {
	// minUnits/maxUnits bound the unit budgets whose timeline so far is
	// identical to the watched run's.
	minUnits int
	maxUnits int
	// horizon is the 1-based processed index of the event that computed
	// the first capacity grant; 0 while no grant has happened. Shallow
	// hooks are no-ops once it is set.
	horizon uint64
	// deep keeps the watch narrowing through grants instead of stopping
	// at the horizon, appending each narrowing to steps.
	deep  bool
	steps []watchStep
}

// watchNarrow intersects the watch's budget window with [lo, hi]
// (lo <= 0 / hi == math.MaxInt mean unconstrained on that side). In
// deep mode every effective narrowing is stamped with the current event
// index; in shallow mode narrowing stops at the horizon.
func (x *exec) watchNarrow(lo, hi int) {
	w := x.watch
	if w == nil || (!w.deep && w.horizon != 0) {
		return
	}
	changed := false
	if lo > w.minUnits {
		w.minUnits = lo
		changed = true
	}
	if hi < w.maxUnits {
		w.maxUnits = hi
		changed = true
	}
	if changed && w.deep {
		w.steps = append(w.steps, watchStep{processed: x.eng.Processed(), min: w.minUnits, max: w.maxUnits})
	}
}

// watchCollapse pins the window to the run's own budget — used when a
// decision reads the exact Total() (the granule clamp), which no other
// budget reproduces.
func (x *exec) watchCollapse() {
	u := x.pool.Total()
	x.watchNarrow(u, u)
}

// poolHasUnits reports Total() > 0 for dispatch's fixed-eligibility
// check, recording the predicate's outcome as a replay constraint.
func (x *exec) poolHasUnits() bool {
	ok := x.pool.Total() > 0
	if ok {
		x.watchNarrow(1, math.MaxInt)
	} else {
		x.watchNarrow(0, 0)
	}
	return ok
}

// availAtLeast reports Available() >= n for dispatch's opportunistic
// check. Available is Total - busy, and busy is identical for every
// budget still in the watch window (their grant sizes have all matched
// so far), so the comparison resolves the same way for another budget
// exactly when that budget is on the same side of busy + n — recorded
// as a replay constraint.
func (x *exec) availAtLeast(n int) bool {
	ok := x.pool.Available() >= n
	busy := x.pool.Busy()
	if ok {
		x.watchNarrow(busy+n, math.MaxInt)
	} else {
		x.watchNarrow(0, busy+n-1)
	}
	return ok
}

// watchClampGranule applies the pool-size clamp to a section's granule,
// recording the clamp comparison: budgets at or above the granule keep
// the op's own granule; a budget below it substitutes the exact Total,
// which only the run's own budget reproduces.
func (x *exec) watchClampGranule(granule int) int {
	if granule > x.pool.Total() {
		x.watchCollapse()
		return x.pool.Total()
	}
	x.watchNarrow(granule, math.MaxInt)
	return granule
}

// watchQuotient records a grant computation: quotient = avail/granule
// with busy units already held. Every budget in [busy + q*granule,
// busy + (q+1)*granule - 1] computes the same quotient — and therefore
// the same granted size — so the window narrows to exactly that
// interval (a zero quotient pins the budget below busy + granule).
func (x *exec) watchQuotient(busy, granule, quotient int) {
	if quotient == 0 {
		x.watchNarrow(0, busy+granule-1)
		return
	}
	x.watchNarrow(busy+quotient*granule, busy+(quotient+1)*granule-1)
}

// markGrant flags the first capacity-grant computation: in shallow mode
// the event executing right now is where the shareable timeline prefix
// ends. Deep watches keep going — the grant's quotient window is
// recorded by watchQuotient instead.
func (x *exec) markGrant() {
	if w := x.watch; w != nil && !w.deep && w.horizon == 0 {
		w.horizon = x.eng.Processed()
	}
}

// taskSnap is the mutable per-task state at the checkpoint; the
// structural fields (op, step, outs) are rebuilt by the fork's own
// template instantiation.
type taskSnap struct {
	deps               int
	token              pim.OpToken
	path               pathKind
	remFlops, remBytes float64
	syncPerFlop        float64
}

// itemSnap is one queued device work item, its task as a slab index.
type itemSnap struct {
	dur      hw.Seconds
	opT, dmT hw.Seconds
	slots    int
	bypassed int
	task     int32
}

// devSnap freezes a serial device: occupancy, energy integral and the
// live queue window.
type devSnap struct {
	busy        int
	busySeconds float64
	items       []itemSnap
}

// RunCheckpoint is a frozen executor prefix, reusable across the unit
// budgets in [UnitRange]. It is immutable once captured: one checkpoint
// may be replayed concurrently by any number of goroutines.
type RunCheckpoint struct {
	g    *nn.Graph
	opts Options // normalized
	// maskedCfg is the base configuration with the replay-variable
	// fields (Name, FixedPIM.Units) zeroed — the compatibility contract
	// in canonical bytes.
	maskedCfg []byte

	minUnits, maxUnits int

	eng       sim.Checkpoint
	tasks     []taskSnap // [step*n + opID]
	stepLeft  []int
	heldBack  [][]int32
	firstOpen int
	cpu, prog devSnap
	regs      *pim.RegistersSnapshot
	poolAdv   []pim.PoolAdvance
	poolBusy  int
	poolGrant int
	fixedWait []int32 // tasks queued on the fixed pool, as slab indices

	bk      Breakdown
	usage   Usage
	offload int
	cpuOps  int
}

// UnitRange returns the inclusive bounds of fixed-unit budgets the
// checkpoint replays exactly.
func (c *RunCheckpoint) UnitRange() (min, max int) { return c.minUnits, c.maxUnits }

// SharedEvents returns how many events the checkpointed prefix covers —
// the per-fork event savings of a replay.
func (c *RunCheckpoint) SharedEvents() uint64 { return c.eng.Processed() }

// maskedConfigJSON canonicalizes a configuration for the compatibility
// check, zeroing the fields a replay is allowed to vary.
func maskedConfigJSON(cfg hw.SystemConfig) []byte {
	cfg.Name = ""
	cfg.FixedPIM.Units = 0
	b, err := json.Marshal(cfg)
	if err != nil {
		return nil
	}
	return b
}

// taskIdx flattens a task to its slab index (the template slab is laid
// out step-major, opID-minor).
func taskIdx(t *task, n int) int32 { return int32(t.step*n + t.op.ID) }

// taskAt resolves a slab index in this executor's DAG.
func (x *exec) taskAt(idx int32) *task {
	n := len(x.g.Ops)
	return x.tasks[int(idx)/n][int(idx)%n]
}

// snapDevice freezes a serial device's live state.
func snapDevice(d *serialDevice, n int) devSnap {
	s := devSnap{busy: d.busy, busySeconds: d.busySeconds}
	if live := len(d.queue) - d.head; live > 0 {
		s.items = make([]itemSnap, 0, live)
	}
	for k := d.head; k < len(d.queue); k++ {
		w := d.queue[k]
		s.items = append(s.items, itemSnap{
			dur: w.dur, opT: w.opT, dmT: w.dmT,
			slots: w.slots, bypassed: w.bypassed, task: taskIdx(w.t, n),
		})
	}
	return s
}

// restoreDevice loads a device snapshot into a fresh device.
func (x *exec) restoreDevice(d *serialDevice, s devSnap) {
	d.busy = s.busy
	d.busySeconds = s.busySeconds
	d.queue = d.queue[:0]
	d.head = 0
	for _, it := range s.items {
		d.queue = append(d.queue, workItem{
			dur: it.dur, opT: it.opT, dmT: it.dmT,
			slots: it.slots, bypassed: it.bypassed, t: x.taskAt(it.task),
		})
	}
}

// CheckpointRun simulates (g, cfg, opts) to completion while watching
// for the first unit-budget-dependent event, then re-runs the shared
// prefix and freezes it. It returns the full run's result (published to
// the result cache, bit-identical to RunPIM's) and, when the run has a
// divergence point with a non-trivial prefix, a checkpoint for forking
// sibling candidates. A nil checkpoint with a nil error means the run
// offers nothing to share — callers fall back to full simulations.
// Instrumented options are refused: a replayed prefix cannot re-emit
// side effects.
func CheckpointRun(g *nn.Graph, cfg hw.SystemConfig, opts Options) (*RunCheckpoint, Result, error) {
	opts = opts.withDefaults()
	if opts.Collector != nil || opts.Trace != nil || opts.Census != nil {
		return nil, Result{}, fmt.Errorf("core: delta simulation requires an uninstrumented run")
	}
	if opts.Stacks > 1 {
		// A sharded multi-stack run has no single engine to checkpoint.
		// Degrade gracefully: run it (cached) with no shareable
		// checkpoint, so DSE sweeps fall back to full simulations.
		res, err := RunPIM(g, cfg, opts)
		return nil, res, err
	}
	x, err := newExec(g, cfg, opts)
	if err != nil {
		return nil, Result{}, err
	}
	w := &capWatch{maxUnits: math.MaxInt}
	x.watch = w
	x.seed()
	res, err := x.drainRun()
	x.teardown()
	if err != nil {
		return nil, Result{}, err
	}
	if resultCacheUsable(opts) {
		storeResult(fingerprintRun("pim", g, cfg, opts, nil), res)
	}
	if w.horizon <= 1 {
		// The budget diverges at the very first event (or never grants
		// while still constraining); nothing worth sharing.
		return nil, res, nil
	}
	cp, cerr := captureAt(g, cfg, opts, w.horizon-1, false)
	if cerr != nil {
		// Degrade gracefully: the sweep falls back to full simulations.
		return nil, res, nil
	}
	return cp, res, nil
}

// captureAt re-runs the prefix and freezes the executor after exactly
// stopAfter events. The capture run carries its own watch, so the
// recorded constraints cover precisely the frozen prefix. A shallow
// capture refuses a point at or past the first grant — under the
// shallow contract that state is already budget-specific. A deep
// capture may freeze held grants and a non-empty fixed-pool wait queue
// (both reproduced verbatim by Replay), but refuses a point whose watch
// window has narrowed to the base budget alone: no sibling could ever
// replay it.
func captureAt(g *nn.Graph, cfg hw.SystemConfig, opts Options, stopAfter uint64, deep bool) (*RunCheckpoint, error) {
	x, err := newExec(g, cfg, opts)
	if err != nil {
		return nil, err
	}
	defer x.teardown()
	w := &capWatch{maxUnits: math.MaxInt, deep: deep}
	x.watch = w
	x.pool.RecordAdvances(true)
	x.seed()
	if err := x.eng.RunUntil(stopAfter); err != nil {
		return nil, err
	}
	if x.err != nil {
		return nil, x.err
	}
	if !deep {
		if x.pool.Grants() != 0 || x.pool.Busy() != 0 {
			return nil, fmt.Errorf("core: checkpoint point is past the first fixed-pool grant")
		}
		if x.fixedHead != len(x.fixedPending) {
			return nil, fmt.Errorf("core: checkpoint with tasks waiting on the fixed pool")
		}
	} else if w.minUnits >= w.maxUnits {
		return nil, fmt.Errorf("core: checkpoint point is budget-specific (window [%d, %d])",
			w.minUnits, w.maxUnits)
	}
	engCp, err := x.eng.Checkpoint()
	if err != nil {
		return nil, err
	}
	n := len(g.Ops)
	// Detach payload pointers from this run's (pooled, about to be
	// released) arena: slab indices survive the teardown.
	engCp = engCp.Remap(func(ev sim.Ev) sim.Ev {
		if t, ok := ev.Ptr.(*task); ok {
			ev.Ptr = taskIdx(t, n)
		}
		return ev
	})
	cp := &RunCheckpoint{
		g:         g,
		opts:      opts,
		maskedCfg: maskedConfigJSON(cfg),
		minUnits:  w.minUnits,
		maxUnits:  w.maxUnits,
		eng:       engCp,
		tasks:     make([]taskSnap, opts.Steps*n),
		stepLeft:  append([]int(nil), x.stepLeft...),
		heldBack:  make([][]int32, len(x.heldBack)),
		firstOpen: x.firstOpen,
		cpu:       snapDevice(x.cpu, n),
		prog:      snapDevice(x.prog, n),
		regs:      x.regs.Snapshot(),
		poolAdv:   x.pool.AdvanceHistory(),
		poolBusy:  x.pool.Busy(),
		poolGrant: x.pool.Grants(),
		bk:        x.bk,
		usage:     x.usage,
		offload:   x.offload,
		cpuOps:    x.cpuOps,
	}
	for s := 0; s < opts.Steps; s++ {
		for id := 0; id < n; id++ {
			t := x.tasks[s][id]
			cp.tasks[s*n+id] = taskSnap{
				deps: t.deps, token: t.token, path: t.path,
				remFlops: t.remFlops, remBytes: t.remBytes,
				syncPerFlop: t.syncPerFlop,
			}
		}
	}
	for s, held := range x.heldBack {
		for _, t := range held {
			cp.heldBack[s] = append(cp.heldBack[s], taskIdx(t, n))
		}
	}
	for k := x.fixedHead; k < len(x.fixedPending); k++ {
		cp.fixedWait = append(cp.fixedWait, taskIdx(x.fixedPending[k], n))
	}
	return cp, nil
}

// Compatible reports whether cfg2 may be replayed from this checkpoint:
// identical to the base configuration except for the name and a fixed
// unit budget inside the watched range.
func (c *RunCheckpoint) Compatible(cfg2 hw.SystemConfig) error {
	if u := cfg2.FixedPIM.Units; u < c.minUnits || u > c.maxUnits {
		return fmt.Errorf("core: unit budget %d outside the checkpoint's replay range [%d, %d]",
			u, c.minUnits, c.maxUnits)
	}
	if !bytes.Equal(maskedConfigJSON(cfg2), c.maskedCfg) {
		return fmt.Errorf("core: configuration differs from the checkpoint base beyond the fixed unit budget")
	}
	return nil
}

// Replay resumes the checkpoint under cfg2 and simulates the suffix to
// completion. The result is bit-identical to RunPIM(g, cfg2, opts) run
// from scratch, and is published to the result cache under that cell's
// fingerprint.
func (c *RunCheckpoint) Replay(cfg2 hw.SystemConfig) (Result, error) {
	if err := c.Compatible(cfg2); err != nil {
		return Result{}, err
	}
	x, err := newExec(c.g, cfg2, c.opts)
	if err != nil {
		return Result{}, err
	}
	defer x.teardown()
	n := len(c.g.Ops)
	for s := 0; s < c.opts.Steps; s++ {
		row := x.tasks[s]
		for id := 0; id < n; id++ {
			sn := c.tasks[s*n+id]
			t := row[id]
			t.deps = sn.deps
			t.token = sn.token
			t.path = sn.path
			t.remFlops, t.remBytes = sn.remFlops, sn.remBytes
			t.syncPerFlop = sn.syncPerFlop
		}
	}
	copy(x.stepLeft, c.stepLeft)
	for s := range x.heldBack {
		hb := x.heldBack[s][:0]
		for _, idx := range c.heldBack[s] {
			hb = append(hb, x.taskAt(idx))
		}
		x.heldBack[s] = hb
	}
	x.firstOpen = c.firstOpen
	x.restoreDevice(x.cpu, c.cpu)
	x.restoreDevice(x.prog, c.prog)
	x.regs = c.regs.NewRegisters()
	if err := x.pool.ReplayHistory(c.poolAdv, c.poolBusy, c.poolGrant); err != nil {
		return Result{}, err
	}
	x.fixedPending = x.fixedPending[:0]
	x.fixedHead = 0
	for _, idx := range c.fixedWait {
		x.fixedPending = append(x.fixedPending, x.taskAt(idx))
	}
	x.bk = c.bk
	x.usage = c.usage
	x.offload = c.offload
	x.cpuOps = c.cpuOps
	if err := x.eng.Restore(c.eng, func(ev sim.Ev) sim.Ev {
		if idx, ok := ev.Ptr.(int32); ok {
			ev.Ptr = x.taskAt(idx)
		}
		return ev
	}); err != nil {
		return Result{}, err
	}
	res, err := x.drainRun()
	if err == nil && resultCacheUsable(c.opts) {
		storeResult(fingerprintRun("pim", c.g, cfg2, c.opts, nil), res)
	}
	return res, err
}
