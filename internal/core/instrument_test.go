package core

import (
	"context"
	"reflect"
	"testing"

	"heteropim/internal/hw"
	"heteropim/internal/metrics"
	"heteropim/internal/nn"
	"heteropim/internal/runner"
)

// TestInstrumentedRunIdentical is the observability overhead contract:
// attaching a collector must not change ANY simulation outcome. Every
// platform configuration is run with and without a collector and the
// full Result structs must be deeply (bit-)identical.
func TestInstrumentedRunIdentical(t *testing.T) {
	g, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range hw.AllConfigKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := hw.PaperConfigScaled(kind, 1)
			plain, err := RunOn(kind, g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			c := metrics.NewCollector()
			instrumented, err := RunOnWithCollector(kind, g, cfg, c)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, instrumented) {
				t.Fatalf("instrumented result differs from plain result:\n%+v\nvs\n%+v", plain, instrumented)
			}
			if len(c.Timeline().Spans) == 0 {
				t.Fatal("collector recorded no spans")
			}
		})
	}
}

// TestHeteroCollectorContent checks the Hetero PIM run populates the
// taxonomy the observability layer promises: spans on every device
// track, queue-depth and busy-unit gauges, scheduling counters.
func TestHeteroCollectorContent(t *testing.T) {
	g, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	c := metrics.NewCollector()
	opts := HeteroOptions()
	opts.Collector = c
	if _, err := RunPIM(g, hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1), opts); err != nil {
		t.Fatal(err)
	}
	tl := c.Timeline()
	tracks := map[string]bool{}
	for _, s := range tl.Spans {
		tracks[s.Track] = true
		if s.End < s.Start {
			t.Fatalf("span ends before it starts: %+v", s)
		}
		if s.Name == "" {
			t.Fatalf("unnamed span: %+v", s)
		}
	}
	// With RC every offloaded op's residual phases run on the
	// programmable PIM ("residual.prog"); whole-op prog placements only
	// appear when the fixed pool rejects a candidate, so they are not
	// required here.
	for _, want := range []string{"cpu", "fixed", "residual.prog"} {
		if !tracks[want] {
			t.Errorf("no spans on track %q (got %v)", want, tracks)
		}
	}
	for _, series := range []string{"queue.cpu", "fixed.busy_units", "pipeline.steps_in_flight"} {
		if len(tl.Series[series]) == 0 {
			t.Errorf("no samples in series %q", series)
		}
	}
	reg := c.Registry()
	if reg.CounterValue("sched.path.fixed") == 0 {
		t.Error("no fixed-path scheduling decisions counted")
	}
	if reg.CounterValue("sched.candidates") == 0 || reg.CounterValue("sched.ops") == 0 {
		t.Error("selection-rank counters missing")
	}
	if reg.CounterValue("sim.events") == 0 {
		t.Error("engine event count missing")
	}
	snap := c.Snapshot()
	if snap.Makespan <= 0 {
		t.Fatal("snapshot has no makespan")
	}
	if a := metrics.Advise(snap); len(a.Lines) == 0 || a.Bottleneck == "" {
		t.Fatalf("advisor produced no reading: %+v", a)
	}
}

// TestSharedCollectorAcrossParallelRuns shares ONE collector between
// concurrent sweep cells — the supported sharing mode (the collector is
// internally synchronized even though each Options value is
// single-run). Meaningful under -race.
func TestSharedCollectorAcrossParallelRuns(t *testing.T) {
	g, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	shared := metrics.NewCollector()
	const cells = 4
	_, err = runner.Map(context.Background(), cells, cells,
		func(_ context.Context, i int) (Result, error) {
			opts := HeteroOptions() // fresh Options per run, shared collector
			opts.Collector = shared
			return RunPIM(g, hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1), opts)
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := shared.Registry().CounterValue("sched.path.fixed"); got == 0 {
		t.Fatal("shared collector saw no fixed placements")
	}
	snap := shared.Snapshot()
	if len(snap.Tracks) == 0 {
		t.Fatal("shared collector derived no track stats")
	}
}
