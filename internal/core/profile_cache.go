package core

import (
	"math"
	"sync"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// The profile cache: profiling one training step (Section III-C, Step 1)
// is a pure function of the graph's op descriptors and the CPU spec, and
// nearly every figure of the evaluation repeats it for the same handful
// of models. Memoizing it lets a parallel sweep profile each
// (model, CPU) pair exactly once, with concurrent requests for the same
// key sharing one computation (singleflight via a per-entry sync.Once).
//
// Cached profiles are shared and must be treated as IMMUTABLE by all
// callers; anything that needs a filtered or modified profile (e.g. the
// HostOnlyOps path in RunPIM) must build its own copy.

// profileKey identifies one profiling input. Graphs are rebuilt per
// experiment cell, so identity is by content: the model name, batch
// size, op count and a 64-bit FNV-1a digest of every descriptor field
// the profiler reads (op type, flop counts, bytes). Synthetic graphs
// (combined co-run steps, scaled or replayed traces) hash to their own
// keys and simply occupy extra entries.
type profileKey struct {
	model  string
	batch  int
	ops    int
	digest uint64
	cpu    hw.CPUSpec
}

// profileEntry is one cache slot; once guards the single computation.
type profileEntry struct {
	once sync.Once
	prof StepProfile
}

var profileCache sync.Map // profileKey -> *profileEntry

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func fnvMixFloat(h uint64, f float64) uint64 { return fnvMix(h, math.Float64bits(f)) }

func fnvMixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// graphDigest hashes the descriptor fields ProfileStep depends on.
func graphDigest(g *nn.Graph) uint64 {
	h := uint64(fnvOffset)
	for _, op := range g.Ops {
		h = fnvMix(h, uint64(op.ID))
		h = fnvMixString(h, string(op.Type))
		h = fnvMixFloat(h, op.Muls)
		h = fnvMixFloat(h, op.Adds)
		h = fnvMixFloat(h, op.OtherFlops)
		h = fnvMixFloat(h, op.Bytes)
	}
	return h
}

// CachedProfileStep returns the memoized step profile for (g, cpu),
// computing it at most once per distinct input across all goroutines.
// The returned profile is shared: callers must not modify it or its
// Entries. Use ProfileStep directly for a private copy.
func CachedProfileStep(g *nn.Graph, cpu hw.CPUSpec) StepProfile {
	key := profileKey{
		model:  g.Model,
		batch:  g.BatchSize,
		ops:    len(g.Ops),
		digest: graphDigest(g),
		cpu:    cpu,
	}
	v, _ := profileCache.LoadOrStore(key, &profileEntry{})
	e := v.(*profileEntry)
	e.once.Do(func() { e.prof = ProfileStep(g, cpu) })
	return e.prof
}

// ResetProfileCache drops every memoized profile (tests and
// long-running servers that churn through many synthetic graphs).
func ResetProfileCache() {
	profileCache.Range(func(k, _ any) bool {
		profileCache.Delete(k)
		return true
	})
}
