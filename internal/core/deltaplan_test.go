package core

import (
	"encoding/json"
	"math"
	"sync"
	"testing"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// deepProbe runs one deep-watched probe and returns the watch plus the
// probe's processed-event total and unit budget.
func deepProbe(t *testing.T, g *nn.Graph, cfg hw.SystemConfig, opts Options) (*capWatch, uint64, int) {
	t.Helper()
	x, err := newExec(g, cfg, opts.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	w := &capWatch{maxUnits: math.MaxInt, deep: true}
	x.watch = w
	x.seed()
	if _, err := x.drainRun(); err != nil {
		t.Fatal(err)
	}
	total := x.eng.Processed()
	baseU := x.pool.Total()
	x.teardown()
	return w, total, baseU
}

// TestDeepWatchNarrowingMonotonic pins the range-narrowing discipline
// the deep-checkpoint soundness argument rests on: the recorded windows
// are nested (min never decreases, max never increases), stamped in
// nondecreasing event order, and every window contains the probe's own
// budget — the base run must never contradict its own predicates.
func TestDeepWatchNarrowingMonotonic(t *testing.T) {
	defer EnableResultCache(EnableResultCache(false))
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	opts := HeteroOptions()
	for _, g := range checkpointModels(t) {
		w, total, baseU := deepProbe(t, g, cfg, opts)
		if len(w.steps) == 0 {
			t.Fatalf("%s: deep watch recorded no narrowings", g.Model)
		}
		prevMin, prevMax := 0, math.MaxInt
		var prevEv uint64
		for i, s := range w.steps {
			if s.min < prevMin || s.max > prevMax {
				t.Fatalf("%s step %d: window [%d,%d] widened from [%d,%d]",
					g.Model, i, s.min, s.max, prevMin, prevMax)
			}
			if s.min > s.max {
				t.Fatalf("%s step %d: inverted window [%d,%d]", g.Model, i, s.min, s.max)
			}
			if s.processed < prevEv {
				t.Fatalf("%s step %d: event index %d before %d", g.Model, i, s.processed, prevEv)
			}
			if s.processed > total {
				t.Fatalf("%s step %d: event index %d past the run's %d events",
					g.Model, i, s.processed, total)
			}
			if baseU < s.min || baseU > s.max {
				t.Fatalf("%s step %d: base budget %d outside its own window [%d,%d]",
					g.Model, i, baseU, s.min, s.max)
			}
			prevMin, prevMax, prevEv = s.min, s.max, s.processed
		}
		if w.minUnits != prevMin || w.maxUnits != prevMax {
			t.Fatalf("%s: final watch window [%d,%d] disagrees with last step [%d,%d]",
				g.Model, w.minUnits, w.maxUnits, prevMin, prevMax)
		}
	}
}

// TestDeepCaptureRefusesBudgetSpecificPoints pins the deep capture
// guard: once a granule-1 grant (or an exact-Total clamp) collapses the
// watch window to the base budget alone, freezing that state helps no
// sibling — captureAt must refuse it — while the last boundary before
// the collapse must still capture.
func TestDeepCaptureRefusesBudgetSpecificPoints(t *testing.T) {
	defer EnableResultCache(EnableResultCache(false))
	g, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	opts := HeteroOptions().withDefaults()
	w, _, _ := deepProbe(t, g, cfg, opts)
	var collapse uint64
	for _, s := range w.steps {
		if s.min >= s.max {
			collapse = s.processed
			break
		}
	}
	if collapse <= 1 {
		t.Fatalf("probe never collapsed to a single budget (steps %+v)", w.steps)
	}
	if _, err := captureAt(g, cfg, opts, collapse, true); err == nil {
		t.Fatal("deep captureAt accepted a budget-specific point")
	}
	cp, err := captureAt(g, cfg, opts, collapse-1, true)
	if err != nil {
		t.Fatalf("deep captureAt refused the last shareable boundary: %v", err)
	}
	if lo, hi := cp.UnitRange(); lo >= hi {
		t.Fatalf("pre-collapse checkpoint window [%d,%d] is degenerate", lo, hi)
	}
	if cp.SharedEvents() != collapse-1 {
		t.Fatalf("checkpoint covers %d events, want %d", cp.SharedEvents(), collapse-1)
	}
}

// TestDeltaPlanReplayBitIdentical is the deep-delta property test: for
// every model, forking any compatible unit budget from its deepest
// shared boundary reproduces the from-scratch result byte for byte —
// and the deep boundary actually reaches past the shallow layer's
// first-grant horizon.
func TestDeltaPlanReplayBitIdentical(t *testing.T) {
	defer EnableResultCache(EnableResultCache(false))
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	opts := HeteroOptions()
	for _, g := range checkpointModels(t) {
		plan, base, err := NewDeltaPlan(g, cfg, opts)
		if err != nil {
			t.Fatalf("%s: %v", g.Model, err)
		}
		if plan == nil {
			t.Fatalf("%s: no plan from a fixed-pool run", g.Model)
		}
		scratch, err := RunPIM(g, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if resultJSON(t, base) != resultJSON(t, scratch) {
			t.Fatalf("%s: probe result differs from a plain run", g.Model)
		}

		// The shallow layer's sharing depth for the same cell, as the
		// baseline the deep boundary must beat for near-base budgets.
		shallow, _, err := CheckpointRun(g, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if shallow == nil {
			t.Fatalf("%s: no shallow checkpoint", g.Model)
		}

		baseU := plan.BaseUnits()
		deeper := false
		for _, u := range []int{baseU - 1, baseU - 5, baseU * 3 / 4, baseU / 2, baseU / 4, 1} {
			if u < 1 || u == baseU {
				continue
			}
			cfg2 := cfg
			cfg2.FixedPIM.Units = u
			got, shared, err := plan.Replay(cfg2)
			if err != nil {
				// Budgets that diverge at the first event legitimately
				// fall back to full simulation.
				continue
			}
			want, err := RunPIM(g, cfg2, opts)
			if err != nil {
				t.Fatal(err)
			}
			if resultJSON(t, got) != resultJSON(t, want) {
				t.Errorf("%s u=%d: deep replay differs from scratch", g.Model, u)
			}
			if shared > shallow.SharedEvents() {
				deeper = true
			}
		}
		if !deeper {
			t.Errorf("%s: no deep fork reached past the shallow horizon (%d events)",
				g.Model, shallow.SharedEvents())
		}
	}
}

// TestDeltaPlanWholeRunWindow pins the best case: budgets inside the
// probe's final window share the entire timeline, so the fork replays
// from one event before the end and still reproduces the scratch result
// (the utilization integral re-accumulates under the fork's own total).
func TestDeltaPlanWholeRunWindow(t *testing.T) {
	defer EnableResultCache(EnableResultCache(false))
	g := smallGraph()
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	opts := HeteroOptions()
	plan, _, err := NewDeltaPlan(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("no plan")
	}
	w, total, baseU := deepProbe(t, g, cfg, opts)
	if w.minUnits >= w.maxUnits {
		t.Skipf("toy run's final window collapsed; no whole-run sibling to test")
	}
	u := w.minUnits
	if u == baseU {
		u = w.maxUnits
	}
	cfg2 := cfg
	cfg2.FixedPIM.Units = u
	got, shared, err := plan.Replay(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if shared != total-1 {
		t.Fatalf("whole-run sibling shared %d events, want %d", shared, total-1)
	}
	want, err := RunPIM(g, cfg2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if resultJSON(t, got) != resultJSON(t, want) {
		t.Fatal("whole-run fork differs from scratch")
	}
}

// TestDeltaPlanConcurrentForks replays many budgets through one plan
// concurrently (exercised under -race in CI): forks landing on the same
// deep boundary must share a single capture, and every result must
// match its from-scratch run.
func TestDeltaPlanConcurrentForks(t *testing.T) {
	defer EnableResultCache(EnableResultCache(false))
	g, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	opts := HeteroOptions()
	plan, _, err := NewDeltaPlan(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("no plan")
	}
	// Budgets inside AlexNet's first quotient window (its 11x11 conv
	// granule keeps budgets >= 242 indistinguishable for ~100 events);
	// nearby budgets share one deep boundary, exercising the
	// capture-once path.
	baseU := plan.BaseUnits()
	units := []int{baseU - 1, baseU - 2, baseU - 3, baseU * 3 / 4, baseU*3/4 + 1, 250}
	want := make([]string, len(units))
	for i, u := range units {
		cfg2 := cfg
		cfg2.FixedPIM.Units = u
		r, err := RunPIM(g, cfg2, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resultJSON(t, r)
	}
	var wg sync.WaitGroup
	got := make([]string, len(units))
	errs := make([]error, len(units))
	for i, u := range units {
		wg.Add(1)
		go func(i, u int) {
			defer wg.Done()
			cfg2 := cfg
			cfg2.FixedPIM.Units = u
			r, _, err := plan.Replay(cfg2)
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = resultJSONString(r)
		}(i, u)
	}
	wg.Wait()
	for i := range units {
		if errs[i] != nil {
			t.Fatalf("u=%d: %v", units[i], errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("u=%d: concurrent deep fork differs from scratch", units[i])
		}
	}
}

// resultJSONString is resultJSON without the test handle, for use in
// goroutines.
func resultJSONString(r Result) string {
	b, err := json.Marshal(r)
	if err != nil {
		return "unmarshalable"
	}
	return string(b)
}
