package core

import (
	"context"
	"fmt"

	"heteropim/internal/hmc"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/pim"
	"heteropim/internal/runner"
	"heteropim/internal/sim"
	"heteropim/internal/thermal"
)

// Sharded multi-stack execution: M HMC stacks train data-parallel on a
// split minibatch and synchronize gradients over the inter-stack links
// once per step. Each stack is simulated by its own event engine — the
// engines share nothing, so they advance concurrently on the runner
// pool — and the per-stack results are merged deterministically:
//
//   - shard i runs batch ShardBatches(B, M)[i] of the global batch B
//     through the unmodified single-stack executor (its own pooled
//     engine, slab task graph and result-cache entry);
//   - the merged compute phase is the slowest stack's step (argmax over
//     StepTime, lowest stack index on ties), because data-parallel
//     peers proceed in lockstep at all-reduce barriers;
//   - the all-reduce is simulated as its own event timeline from the
//     nn.AllReduceTemplate task graph over cfg.Link;
//   - usage and energy sum over stacks in fixed index order, so the
//     merged Result is byte-identical no matter how many workers ran
//     the shards or in which order they finished.
//
// Merge rules (DESIGN.md §5i):
//
//	StepTime      = max_i(shard StepTime) + AllReduceTime
//	Breakdown     = slowest shard's breakdown, Sync += AllReduceTime
//	Usage         = sum over shards (index order) + InterStackBytes
//	FixedUtil/ops = slowest shard's (a per-stack property)

// ReduceSchedule selects the gradient all-reduce schedule of a
// multi-stack run. It aliases the nn task-graph template kind; the
// empty string means "default" (ring) and is what single-stack runs
// normalize to.
type ReduceSchedule = nn.AllReduceKind

const (
	// ReduceRing is the bandwidth-optimal ring all-reduce.
	ReduceRing = nn.AllReduceRing
	// ReduceTree is the latency-optimal binomial-tree all-reduce.
	ReduceTree = nn.AllReduceTree
)

// runMultiPIM is the Stacks > 1 arm of RunPIM. opts is normalized.
func runMultiPIM(g *nn.Graph, cfg hw.SystemConfig, opts Options) (Result, error) {
	m := opts.Stacks
	if err := cfg.ValidateMultiStack(); err != nil {
		return Result{}, err
	}
	shards, err := nn.ShardBatches(g.BatchSize, m)
	if err != nil {
		return Result{}, err
	}
	// Shard graphs are rebuilt per stack from the model name, so the
	// input graph must be a named model, unmodified at its batch size —
	// otherwise the shards would silently simulate a different network.
	name := nn.ModelName(g.Model)
	shardOpts := opts
	shardOpts.Stacks, shardOpts.AllReduce = 1, ""
	if ref, rerr := nn.BuildWithBatch(name, g.BatchSize); rerr != nil {
		return Result{}, fmt.Errorf("core: multi-stack run needs a named model graph: %v", rerr)
	} else if fingerprintRun("pim", ref, cfg, shardOpts, nil) != fingerprintRun("pim", g, cfg, shardOpts, nil) {
		return Result{}, fmt.Errorf("core: multi-stack run of %q: graph differs from the named model at batch %d", g.Model, g.BatchSize)
	}
	// One engine per stack, advanced in parallel. runner.Map reassembles
	// results in input (= stack index) order whatever the completion
	// order, which is half of the determinism story; the other half is
	// that every reduction below iterates stacks in index order.
	// Instrumentation binds to stack 0 only — the stacks are near-clones
	// and a second collector would interleave identical timelines.
	results, err := runner.Map(context.Background(), m, 0, func(_ context.Context, i int) (Result, error) {
		so := shardOpts
		if i > 0 {
			so.Collector, so.Trace, so.Census = nil, nil, nil
		}
		sg, berr := nn.BuildWithBatch(name, shards[i])
		if berr != nil {
			return Result{}, berr
		}
		return RunPIM(sg, cfg, so)
	})
	if err != nil {
		return Result{}, err
	}
	// The gradient all-reduce, as its own event timeline over the
	// template's phase graph.
	arTime, arBytes, _, err := simulateAllReduce(opts.AllReduce, m, g.ParamBytes, cfg.Link, opts.Collector)
	if err != nil {
		return Result{}, err
	}
	// Slowest stack paces the step; ties break to the lowest index.
	slow := 0
	for i := 1; i < m; i++ {
		if results[i].StepTime > results[slow].StepTime {
			slow = i
		}
	}
	res := results[slow]
	res.Config = cfg
	res.Config.Name = fmt.Sprintf("%s x%d", cfg.Name, m)
	res.Model = g.Model
	res.Stacks = m
	res.AllReduce = string(opts.AllReduce)
	res.StackStepTime = res.StepTime
	res.AllReduceTime = arTime
	res.StepTime = res.StackStepTime + arTime
	res.Breakdown.Sync += arTime
	var u Usage
	for i := 0; i < m; i++ {
		u.add(results[i].Usage)
	}
	u.InterStackBytes = arBytes
	res.Usage = u
	if cfg.FixedPIM.Units > 0 {
		temp, terr := stackMaxTemp(cfg, opts)
		if terr != nil {
			return Result{}, terr
		}
		res.StackMaxTemp = temp
	}
	return res, nil
}

// phaseDuration is the wall-clock of one all-reduce phase: every
// transfer in a phase moves frac*gradBytes concurrently on its own
// link, so the phase costs one link latency plus the chunk's serialized
// bytes. Shared by the event simulation and the analytic bound so the
// two agree bit for bit.
func phaseDuration(frac, gradBytes float64, link hw.InterStackLinkSpec) hw.Seconds {
	return link.Latency + frac*gradBytes/link.Bandwidth
}

// AllReduceStepTime returns the per-step gradient synchronization time
// and the total bytes crossing the inter-stack links for the given
// schedule, analytically from the task-graph template. It matches the
// event-simulated all-reduce exactly (same per-phase float additions in
// the same order), which is what makes it usable as the synchronization
// leg of the DSE's admissible lower bound.
func AllReduceStepTime(sched ReduceSchedule, stacks int, gradBytes float64, link hw.InterStackLinkSpec) (hw.Seconds, float64, error) {
	phases, err := nn.AllReduceTemplate(sched, stacks)
	if err != nil {
		return 0, 0, err
	}
	var t hw.Seconds
	var bytes float64
	for _, ph := range phases {
		t += phaseDuration(ph.Frac, gradBytes, link)
		bytes += ph.Frac * gradBytes * float64(len(ph.Transfers))
	}
	return t, bytes, nil
}

// simulateAllReduce runs the schedule's phase graph on a pooled event
// engine: each transfer is one completion event, a phase opens when the
// previous one fully drains, and transfers within a phase are scheduled
// in template order so the (time, seq) heap order — and with it the
// collector's span stream — is deterministic. Returns the synchronized
// time, total link bytes and processed event count.
func simulateAllReduce(sched ReduceSchedule, stacks int, gradBytes float64, link hw.InterStackLinkSpec, obs sim.Collector) (hw.Seconds, float64, uint64, error) {
	phases, err := nn.AllReduceTemplate(sched, stacks)
	if err != nil {
		return 0, 0, 0, err
	}
	eng := sim.Acquire()
	defer sim.Release(eng)
	eng.SetCollector(obs)
	var bytes float64
	var schedErr error
	var startPhase func(p int)
	startPhase = func(p int) {
		if p >= len(phases) || schedErr != nil {
			return
		}
		ph := phases[p]
		dur := phaseDuration(ph.Frac, gradBytes, link)
		start := eng.Now()
		remaining := len(ph.Transfers)
		for _, tr := range ph.Transfers {
			if obs != nil {
				span := sim.Task{
					Track: "link",
					Name:  fmt.Sprintf("allreduce %d->%d", tr[0], tr[1]),
					Kind:  "allreduce",
					Start: start,
					End:   start + dur,
				}
				eng.EmitTaskStart(span)
				eng.EmitTaskEnd(span)
			}
			bytes += ph.Frac * gradBytes
			if aerr := eng.After(dur, func() {
				remaining--
				if remaining == 0 {
					startPhase(p + 1)
				}
			}); aerr != nil {
				schedErr = aerr
				return
			}
		}
	}
	startPhase(0)
	if schedErr != nil {
		return 0, 0, 0, schedErr
	}
	if rerr := eng.Run(); rerr != nil {
		return 0, 0, 0, rerr
	}
	return eng.Now(), bytes, eng.Processed(), nil
}

// stackMaxTemp solves one stack's steady-state hottest-bank temperature
// under the run's fixed-function placement — every stack of the array
// is identical, so one solve covers the per-stack thermal budget.
func stackMaxTemp(cfg hw.SystemConfig, opts Options) (float64, error) {
	stack, err := hmc.New(cfg.Stack)
	if err != nil {
		return 0, err
	}
	var placement pim.Placement
	if opts.UniformPlacement {
		placement, err = pim.UniformPlacement(stack, cfg.FixedPIM.Units)
	} else {
		placement, err = pim.ThermalPlacement(stack, cfg.FixedPIM.Units)
	}
	if err != nil {
		return 0, err
	}
	scale := cfg.Stack.FreqScale
	if scale == 0 {
		scale = 1
	}
	return thermal.PlacementMaxTemp(stack, placement, cfg.FixedPIM, scale)
}

// RunMulti is the multi-stack counterpart of RunOn: it runs the graph's
// global batch data-parallel across `stacks` stacks of the given PIM
// platform with the chosen all-reduce schedule. stacks <= 1 falls back
// to the single-stack RunOn path (bit-identical to it); the CPU and GPU
// baselines have no stacks to shard across and are rejected.
func RunMulti(kind hw.ConfigKind, g *nn.Graph, cfg hw.SystemConfig, stacks int, sched ReduceSchedule) (Result, error) {
	if stacks <= 1 {
		return RunOn(kind, g, cfg)
	}
	opts, ok := pimOptionsFor(kind)
	if !ok {
		return Result{}, fmt.Errorf("core: multi-stack training needs a PIM platform, got %v", kind)
	}
	opts.Stacks, opts.AllReduce = stacks, sched
	return RunPIM(g, cfg, opts)
}
