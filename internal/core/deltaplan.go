package core

import (
	"fmt"
	"math"
	"sync"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// DeltaPlan is the deep delta-simulation layer: one probe run of the
// base configuration, watched in deep mode, yields a full narrowing
// history — at which event index the set of unit budgets that share the
// base timeline shrank, and to what window. For any sibling budget the
// plan then knows the DEEPEST event boundary whose prefix that budget
// shares, captures a checkpoint there (once per boundary — budgets in
// the same quotient window share the capture), and forks the sibling
// from it. Bit-identity of replay-vs-scratch is inherited from
// RunCheckpoint.Replay; the narrowing history only decides how deep the
// shared prefix reaches.
//
// Compared to the shallow CheckpointRun (which stops at the first
// fixed-pool grant, sharing ~a handful of events), a deep plan keeps
// sharing through every grant whose quotient a sibling budget
// reproduces — on dense unit ladders neighboring budgets often share
// thousands of events, and budgets inside one quotient window share the
// entire run.
type DeltaPlan struct {
	g    *nn.Graph
	cfg  hw.SystemConfig
	opts Options

	baseUnits  int
	probeTotal uint64
	steps      []watchStep

	mu      sync.Mutex
	entries map[uint64]*planEntry
}

// planEntry is one per-boundary checkpoint slot, captured at most once
// no matter how many forks land on the boundary concurrently.
type planEntry struct {
	once sync.Once
	cp   *RunCheckpoint
	err  error
}

// NewDeltaPlan simulates (g, cfg, opts) to completion under a deep
// watch and returns the plan plus the base run's result (published to
// the result cache, bit-identical to RunPIM's). A nil plan with a nil
// error means the run offers nothing to share (multi-stack runs, or a
// timeline that is budget-specific from the first event); callers fall
// back to full simulations. Instrumented options are refused.
func NewDeltaPlan(g *nn.Graph, cfg hw.SystemConfig, opts Options) (*DeltaPlan, Result, error) {
	opts = opts.withDefaults()
	if opts.Collector != nil || opts.Trace != nil || opts.Census != nil {
		return nil, Result{}, fmt.Errorf("core: delta simulation requires an uninstrumented run")
	}
	if opts.Stacks > 1 {
		res, err := RunPIM(g, cfg, opts)
		return nil, res, err
	}
	x, err := newExec(g, cfg, opts)
	if err != nil {
		return nil, Result{}, err
	}
	w := &capWatch{maxUnits: math.MaxInt, deep: true}
	x.watch = w
	x.seed()
	res, err := x.drainRun()
	probeTotal := x.eng.Processed()
	baseUnits := x.pool.Total()
	x.teardown()
	if err != nil {
		return nil, Result{}, err
	}
	if resultCacheUsable(opts) {
		storeResult(fingerprintRun("pim", g, cfg, opts, nil), res)
	}
	if probeTotal <= 1 {
		return nil, res, nil
	}
	return &DeltaPlan{
		g:          g,
		cfg:        cfg,
		opts:       opts,
		baseUnits:  baseUnits,
		probeTotal: probeTotal,
		steps:      append([]watchStep(nil), w.steps...),
		entries:    map[uint64]*planEntry{},
	}, res, nil
}

// BaseUnits returns the probe run's unit budget.
func (p *DeltaPlan) BaseUnits() int { return p.baseUnits }

// Boundaries returns how many distinct deep-checkpoint boundaries have
// been captured so far (budgets in one quotient window share one).
func (p *DeltaPlan) Boundaries() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// deepestBoundary returns the last event boundary (a processed-event
// count) whose prefix a budget shares with the base run: one event
// before the first narrowing that excluded the budget, or one event
// before the end of the probe when no narrowing ever did (the whole
// timeline is shared; only the pool's own-total integral differs).
func (p *DeltaPlan) deepestBoundary(units int) uint64 {
	for _, s := range p.steps {
		if units < s.min || units > s.max {
			if s.processed <= 1 {
				return 0
			}
			return s.processed - 1
		}
	}
	return p.probeTotal - 1
}

// checkpointAt returns the boundary's checkpoint, capturing it exactly
// once across concurrent forks.
func (p *DeltaPlan) checkpointAt(boundary uint64) (*RunCheckpoint, error) {
	p.mu.Lock()
	e, ok := p.entries[boundary]
	if !ok {
		e = &planEntry{}
		p.entries[boundary] = e
	}
	p.mu.Unlock()
	e.once.Do(func() { e.cp, e.err = captureAt(p.g, p.cfg, p.opts, boundary, true) })
	return e.cp, e.err
}

// Replay forks cfg2 from the deepest checkpoint its unit budget shares
// with the base run and simulates the suffix, returning the result
// (bit-identical to a from-scratch run, published to the result cache)
// and the number of events the shared prefix covered. An error means
// this budget has nothing usable to fork from — the caller falls back
// to a full simulation.
func (p *DeltaPlan) Replay(cfg2 hw.SystemConfig) (Result, uint64, error) {
	boundary := p.deepestBoundary(cfg2.FixedPIM.Units)
	if boundary <= 1 {
		return Result{}, 0, fmt.Errorf("core: budget %d diverges from the base at the first event",
			cfg2.FixedPIM.Units)
	}
	cp, err := p.checkpointAt(boundary)
	if err != nil {
		return Result{}, 0, err
	}
	res, err := cp.Replay(cfg2)
	if err != nil {
		return Result{}, 0, err
	}
	return res, cp.SharedEvents(), nil
}
