package core

import (
	"encoding/json"
	"sync"
	"testing"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// checkpointModels are the graphs the delta-simulation properties are
// pinned on: the toy graph plus two real CNNs with different shapes.
func checkpointModels(t *testing.T) []*nn.Graph {
	t.Helper()
	vgg, err := nn.Build(nn.VGG19Name)
	if err != nil {
		t.Fatal(err)
	}
	alex, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	return []*nn.Graph{smallGraph(), alex, vgg}
}

// resultJSON renders a result for bit-exact comparison.
func resultJSON(t *testing.T, r Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCheckpointReplayBitIdentical is the delta-simulation property
// test: for every platform and model, forking a run from its checkpoint
// under a compatible unit budget produces a result byte-identical to
// simulating that budget from scratch. Platforms without a fixed pool
// (CPU, GPU, Progr PIM) must take the graceful no-checkpoint path while
// still reproducing the base run exactly.
func TestCheckpointReplayBitIdentical(t *testing.T) {
	defer EnableResultCache(EnableResultCache(false))
	kinds := []hw.ConfigKind{hw.ConfigCPU, hw.ConfigGPU, hw.ConfigProgrPIM, hw.ConfigFixedPIM, hw.ConfigHeteroPIM}
	for _, g := range checkpointModels(t) {
		for _, kind := range kinds {
			cfg := hw.PaperConfigScaled(kind, 1)
			opts := HeteroOptions()
			cp, base, err := CheckpointRun(g, cfg, opts)
			if err != nil {
				t.Fatalf("%s/%v: %v", g.Model, kind, err)
			}
			scratch, err := RunPIM(g, cfg, opts)
			if err != nil {
				t.Fatalf("%s/%v: %v", g.Model, kind, err)
			}
			if resultJSON(t, base) != resultJSON(t, scratch) {
				t.Fatalf("%s/%v: probe result differs from a plain run", g.Model, kind)
			}
			if cfg.FixedPIM.Units == 0 {
				if cp != nil {
					t.Fatalf("%s/%v: checkpoint from a platform with no fixed pool", g.Model, kind)
				}
				continue
			}
			if cp == nil {
				t.Fatalf("%s/%v: no checkpoint from a fixed-pool run", g.Model, kind)
			}
			lo, hi := cp.UnitRange()
			if lo < 1 || hi < cfg.FixedPIM.Units {
				t.Fatalf("%s/%v: base units %d outside watched range [%d, %d]",
					g.Model, kind, cfg.FixedPIM.Units, lo, hi)
			}
			variants := []int{lo, (lo + cfg.FixedPIM.Units) / 2, cfg.FixedPIM.Units}
			for _, u := range variants {
				if u < lo || (hi > 0 && u > hi) {
					continue
				}
				cfg2 := cfg
				cfg2.FixedPIM.Units = u
				got, err := cp.Replay(cfg2)
				if err != nil {
					t.Fatalf("%s/%v u=%d: replay: %v", g.Model, kind, u, err)
				}
				want, err := RunPIM(g, cfg2, opts)
				if err != nil {
					t.Fatalf("%s/%v u=%d: scratch: %v", g.Model, kind, u, err)
				}
				if resultJSON(t, got) != resultJSON(t, want) {
					t.Errorf("%s/%v u=%d: replay result differs from scratch\nreplay:  %s\nscratch: %s",
						g.Model, kind, u, resultJSON(t, got), resultJSON(t, want))
				}
			}
			if err := cp.Compatible(hw.SystemConfig{}); err == nil {
				t.Fatalf("%s/%v: compatibility check accepted an unrelated config", g.Model, kind)
			}
		}
	}
}

// TestCheckpointConcurrentReplays forks one checkpoint into four
// concurrent replays (exercised under -race in CI) and checks each
// against its from-scratch result.
func TestCheckpointConcurrentReplays(t *testing.T) {
	defer EnableResultCache(EnableResultCache(false))
	g, err := nn.Build(nn.AlexNetName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	opts := HeteroOptions()
	cp, _, err := CheckpointRun(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint")
	}
	lo, _ := cp.UnitRange()
	base := cfg.FixedPIM.Units
	units := []int{base, lo, lo + (base-lo)/2, lo + (base-lo)/3}
	want := make([]string, len(units))
	for i, u := range units {
		cfg2 := cfg
		cfg2.FixedPIM.Units = u
		r, err := RunPIM(g, cfg2, opts)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resultJSON(t, r)
	}
	var wg sync.WaitGroup
	got := make([]string, len(units))
	errs := make([]error, len(units))
	for i, u := range units {
		wg.Add(1)
		go func(i, u int) {
			defer wg.Done()
			cfg2 := cfg
			cfg2.FixedPIM.Units = u
			r, err := cp.Replay(cfg2)
			if err != nil {
				errs[i] = err
				return
			}
			b, _ := json.Marshal(r)
			got[i] = string(b)
		}(i, u)
	}
	wg.Wait()
	for i := range units {
		if errs[i] != nil {
			t.Fatalf("u=%d: %v", units[i], errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("u=%d: concurrent replay differs from scratch", units[i])
		}
	}
}

// TestCaptureAtRejectsPostGrantPoints pins the honesty of the capture
// guard: asking for a checkpoint at or past the first fixed-pool grant
// must fail rather than freeze budget-specific state.
func TestCaptureAtRejectsPostGrantPoints(t *testing.T) {
	defer EnableResultCache(EnableResultCache(false))
	g := smallGraph()
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	opts := HeteroOptions().withDefaults()
	// Find the horizon via a probe.
	x, err := newExec(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	w := &capWatch{maxUnits: 1 << 30}
	x.watch = w
	x.seed()
	if _, err := x.drainRun(); err != nil {
		t.Fatal(err)
	}
	x.teardown()
	if w.horizon == 0 {
		t.Fatal("toy hetero run never granted fixed units")
	}
	if _, err := captureAt(g, cfg, opts, w.horizon, false); err == nil {
		t.Fatal("captureAt accepted a point at the first grant")
	}
	if cp, err := captureAt(g, cfg, opts, w.horizon-1, false); err != nil || cp == nil {
		t.Fatalf("captureAt refused the last pre-grant point: %v", err)
	}
}

// TestCheckpointRefusesInstrumentedRuns: replayed prefixes cannot
// re-emit collector side effects, so instrumented options are rejected.
func TestCheckpointRefusesInstrumentedRuns(t *testing.T) {
	g := smallGraph()
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	opts := HeteroOptions()
	opts.Census = &PlacementCensus{}
	if _, _, err := CheckpointRun(g, cfg, opts); err == nil {
		t.Fatal("expected refusal for instrumented options")
	}
}
