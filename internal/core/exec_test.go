package core

import (
	"math"
	"strings"
	"testing"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// smallGraph builds a deterministic toy training step for fast executor
// tests: two conv-ish offloadable ops, a conditional op, and an update.
func smallGraph() *nn.Graph {
	g := &nn.Graph{Model: "toy", BatchSize: 4, InputBytes: 1e6,
		GPUUtilization: 0.5, ActivationBytes: 1e7}
	a := g.AddOp(nn.Op{Name: "conv/Conv2D", Type: nn.OpConv2D,
		Muls: 4e9, Adds: 4e9, OtherFlops: 4e6, Bytes: 1e8, UnitGranule: 17})
	r := g.AddOp(nn.Op{Name: "conv/Relu", Type: nn.OpRelu,
		OtherFlops: 2e7, Bytes: 1e6, UnitGranule: 1, Inputs: []int{a.ID}})
	cf := g.AddOp(nn.Op{Name: "conv/Conv2DBackpropFilter", Type: nn.OpConv2DBackpropFilter,
		Muls: 4e9, Adds: 4e9, OtherFlops: 8e6, Bytes: 4e8, UnitGranule: 17, Inputs: []int{r.ID}})
	ad := g.AddOp(nn.Op{Name: "conv/ApplyAdam", Type: nn.OpApplyAdam,
		Muls: 6e6, Adds: 4e6, OtherFlops: 2e6, Bytes: 8e6, UnitGranule: 16,
		Params: true, Inputs: []int{cf.ID}})
	a.CrossStep = []int{ad.ID}
	return g
}

func TestRunPIMBreakdownSumsToStepTime(t *testing.T) {
	g := smallGraph()
	for _, kind := range []hw.ConfigKind{hw.ConfigProgrPIM, hw.ConfigFixedPIM, hw.ConfigHeteroPIM} {
		r, err := Run(kind, g, 1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if r.StepTime <= 0 {
			t.Fatalf("%v: non-positive step time", kind)
		}
		if d := math.Abs(r.Breakdown.Total() - r.StepTime); d > 1e-9*r.StepTime {
			t.Errorf("%v: breakdown %g != step time %g", kind, r.Breakdown.Total(), r.StepTime)
		}
		if r.Breakdown.Operation < 0 || r.Breakdown.DataMovement < 0 || r.Breakdown.Sync < 0 {
			t.Errorf("%v: negative breakdown component: %+v", kind, r.Breakdown)
		}
	}
}

func TestSerialExecutorBreakdowns(t *testing.T) {
	g := smallGraph()
	for _, kind := range []hw.ConfigKind{hw.ConfigCPU, hw.ConfigGPU} {
		r, err := Run(kind, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(r.Breakdown.Total() - r.StepTime); d > 1e-12 {
			t.Errorf("%v: breakdown %g != step %g", kind, r.Breakdown.Total(), r.StepTime)
		}
	}
}

func TestHeteroFasterThanCPUAndBaselines(t *testing.T) {
	for _, m := range nn.CNNModelNames() {
		g, err := nn.Build(m)
		if err != nil {
			t.Fatal(err)
		}
		results := map[hw.ConfigKind]Result{}
		for _, kind := range hw.AllConfigKinds() {
			r, err := Run(kind, g, 1)
			if err != nil {
				t.Fatalf("%s/%v: %v", m, kind, err)
			}
			results[kind] = r
		}
		het := results[hw.ConfigHeteroPIM].StepTime
		cpu := results[hw.ConfigCPU].StepTime
		fixed := results[hw.ConfigFixedPIM].StepTime
		prog := results[hw.ConfigProgrPIM].StepTime
		// Headline bands of Section VI-A.
		if ratio := cpu / het; ratio < 1.19 || ratio > 28 {
			t.Errorf("%s: CPU/Hetero = %.2f, want within the paper's 1.19x-28x band", m, ratio)
		}
		if ratio := prog / het; ratio < 1.5 || ratio > 23 {
			t.Errorf("%s: Progr/Hetero = %.2f, want within ~2.5x-23x (loose 1.5 floor)", m, ratio)
		}
		if ratio := fixed / het; ratio < 1.2 || ratio > 5.7 {
			t.Errorf("%s: Fixed/Hetero = %.2f, want within ~1.4x-5.7x (loose 1.2 floor)", m, ratio)
		}
		// All PIM designs beat the CPU (the 19%+ claim).
		for _, kind := range []hw.ConfigKind{hw.ConfigProgrPIM, hw.ConfigFixedPIM, hw.ConfigHeteroPIM} {
			if results[kind].StepTime >= cpu {
				t.Errorf("%s: %v (%.2fs) does not beat CPU (%.2fs)", m, kind, results[kind].StepTime, cpu)
			}
		}
	}
}

func TestGPURelationshipsMatchPaper(t *testing.T) {
	// Section VI-A: DCGAN loses to GPU, ResNet-50 beats it, the rest
	// are close.
	ratio := func(m nn.ModelName) float64 {
		g, err := nn.Build(m)
		if err != nil {
			t.Fatal(err)
		}
		gpu, err := Run(hw.ConfigGPU, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		het, err := Run(hw.ConfigHeteroPIM, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		return gpu.StepTime / het.StepTime
	}
	if r := ratio(nn.DCGANName); r >= 1 {
		t.Errorf("DCGAN: GPU/Hetero = %.2f, want < 1 (GPU wins)", r)
	}
	if r := ratio(nn.ResNet50Name); r <= 1.1 {
		t.Errorf("ResNet-50: GPU/Hetero = %.2f, want > 1.1 (Hetero wins)", r)
	}
	for _, m := range []nn.ModelName{nn.VGG19Name, nn.AlexNetName, nn.InceptionV3Name} {
		if r := ratio(m); r < 0.85 || r > 1.25 {
			t.Errorf("%s: GPU/Hetero = %.2f, want ~1 (within 10%%-ish)", m, r)
		}
	}
}

func TestRCAndOPImproveVGG(t *testing.T) {
	g := nn.VGG19()
	base, err := RunHeteroVariant(g, false, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := RunHeteroVariant(g, true, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	op, err := RunHeteroVariant(g, false, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	both, err := RunHeteroVariant(g, true, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(rc.StepTime < base.StepTime) {
		t.Errorf("RC did not help: %g vs %g", rc.StepTime, base.StepTime)
	}
	if !(op.StepTime < base.StepTime) {
		t.Errorf("OP did not help: %g vs %g", op.StepTime, base.StepTime)
	}
	if !(both.StepTime <= rc.StepTime && both.StepTime <= op.StepTime) {
		t.Errorf("RC+OP (%g) should be the fastest variant", both.StepTime)
	}
	// Fig. 15: utilization ordering.
	if !(both.FixedUtilization > base.FixedUtilization) {
		t.Errorf("RC+OP utilization %g should exceed baseline %g", both.FixedUtilization, base.FixedUtilization)
	}
	if both.FixedUtilization < 0.7 {
		t.Errorf("RC+OP utilization %g, want close to 1 (paper: ~100%%)", both.FixedUtilization)
	}
	// RC removes most synchronization (Fig. 13's sync bars).
	if !(rc.Breakdown.Sync < base.Breakdown.Sync/4) {
		t.Errorf("RC sync %g should be far below no-RC %g", rc.Breakdown.Sync, base.Breakdown.Sync)
	}
}

func TestFrequencyScalingMonotone(t *testing.T) {
	g := nn.AlexNet()
	var prev hw.Seconds = math.Inf(1)
	for _, f := range []float64{1, 2, 4} {
		r, err := Run(hw.ConfigHeteroPIM, g, f)
		if err != nil {
			t.Fatal(err)
		}
		if r.StepTime >= prev {
			t.Errorf("frequency %gx did not improve: %g >= %g", f, r.StepTime, prev)
		}
		prev = r.StepTime
	}
}

func TestFrequencyScalingSaturatesForVGG(t *testing.T) {
	// Fig. 11: VGG-19's 4x gain over 2x is small (internal bandwidth
	// bound), while AlexNet keeps scaling.
	gain := func(m nn.ModelName) float64 {
		g, err := nn.Build(m)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(hw.ConfigHeteroPIM, g, 2)
		if err != nil {
			t.Fatal(err)
		}
		r4, err := Run(hw.ConfigHeteroPIM, g, 4)
		if err != nil {
			t.Fatal(err)
		}
		return r2.StepTime / r4.StepTime
	}
	vgg := gain(nn.VGG19Name)
	alex := gain(nn.AlexNetName)
	if vgg >= alex {
		t.Errorf("VGG 2x->4x gain (%.2f) should saturate below AlexNet's (%.2f)", vgg, alex)
	}
}

func TestProgPIMScaling(t *testing.T) {
	// Fig. 12: 1P vs 16P within ~12-14%; 16P never catastrophically
	// worse (constant die area).
	g := nn.VGG19()
	r1, err := RunPIM(g, hw.HeteroConfigWithProcessors(1, 1), HeteroOptions())
	if err != nil {
		t.Fatal(err)
	}
	r16, err := RunPIM(g, hw.HeteroConfigWithProcessors(16, 1), HeteroOptions())
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(r16.StepTime-r1.StepTime) / r1.StepTime
	if diff > 0.20 {
		t.Errorf("1P vs 16P differ by %.0f%%, paper says 12-14%%", diff*100)
	}
}

func TestUniformPlacementSlower(t *testing.T) {
	g := nn.AlexNet()
	opts := HeteroOptions()
	thermal, err := RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.UniformPlacement = true
	uniform, err := RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), opts)
	if err != nil {
		t.Fatal(err)
	}
	if uniform.StepTime <= thermal.StepTime {
		t.Errorf("uniform placement (%g) should be slower than thermal (%g)", uniform.StepTime, thermal.StepTime)
	}
}

func TestCandidateThresholdAblation(t *testing.T) {
	// DESIGN.md §6 ablation. Finding (recorded in EXPERIMENTS.md): with
	// opportunistic class-1 offload in place, the x threshold mostly
	// decides which conditional ops are *forced* onto the programmable
	// PIM; performance varies only mildly with x, and offload stays
	// high across the sweep.
	g := nn.VGG19()
	times := map[float64]hw.Seconds{}
	for _, x := range []float64{5, 90, 99} {
		opts := HeteroOptions()
		opts.XPercent = x
		r, err := RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), opts)
		if err != nil {
			t.Fatal(err)
		}
		times[x] = r.StepTime
		if r.OffloadedOps < 50 {
			t.Errorf("x=%g: only %d ops offloaded", x, r.OffloadedOps)
		}
	}
	if spread := times[99] / times[5]; spread > 1.35 || spread < 1.0 {
		t.Errorf("x sweep spread = %.2f, want mild (1.0-1.35)", spread)
	}
}

func TestRunPIMRejectsInvalidConfig(t *testing.T) {
	g := smallGraph()
	cfg := hw.PaperConfig(hw.ConfigHeteroPIM)
	cfg.Stack.Rows = 3
	if _, err := RunPIM(g, cfg, HeteroOptions()); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}

func TestRunUnknownConfigKind(t *testing.T) {
	g := smallGraph()
	if _, err := Run(hw.ConfigKind(42), g, 1); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestRunAllAndBuildAndRun(t *testing.T) {
	g := smallGraph()
	rs, err := RunAll(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("RunAll returned %d results", len(rs))
	}
	if _, err := BuildAndRun(hw.ConfigCPU, nn.AlexNetName, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildAndRun(hw.ConfigCPU, "nope", 1); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestNeurocubeComparison(t *testing.T) {
	// Fig. 10: Hetero PIM at least 3x faster than Neurocube.
	for _, m := range nn.CNNModelNames() {
		g, err := nn.Build(m)
		if err != nil {
			t.Fatal(err)
		}
		nc := RunNeurocubeDefault(g)
		het, err := Run(hw.ConfigHeteroPIM, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ratio := nc.StepTime / het.StepTime; ratio < 3 {
			t.Errorf("%s: Neurocube/Hetero = %.2f, want >= 3 (Section VI-C)", m, ratio)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := nn.AlexNet()
	a, err := Run(hw.ConfigHeteroPIM, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(hw.ConfigHeteroPIM, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.StepTime != b.StepTime || a.FixedUtilization != b.FixedUtilization {
		t.Fatalf("simulation not deterministic: %v vs %v", a.StepTime, b.StepTime)
	}
}

func TestHostOnlyOpsNeverTouchFixedPool(t *testing.T) {
	g := smallGraph()
	opts := HeteroOptions()
	opts.HostOnlyOps = map[int]bool{0: true, 1: true, 2: true, 3: true}
	r, err := RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Usage.FixedBusyUnitSeconds != 0 {
		t.Fatalf("restricted ops used %g fixed unit-seconds", r.Usage.FixedBusyUnitSeconds)
	}
}

func TestThroughput(t *testing.T) {
	r := Result{StepTime: 0.5}
	if r.Throughput() != 2 {
		t.Fatal("throughput wrong")
	}
	if (Result{}).Throughput() != 0 {
		t.Fatal("zero step time must give zero throughput")
	}
}

func TestMoreStepsSameStepTime(t *testing.T) {
	// Steady-state per-step time should be stable in the number of
	// simulated steps (within pipeline fill effects).
	g := nn.AlexNet()
	opts := HeteroOptions()
	opts.Steps = 3
	a, err := RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Steps = 8
	b, err := RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(a.StepTime-b.StepTime) / a.StepTime; rel > 0.15 {
		t.Errorf("step time unstable across horizons: %g vs %g (%.0f%%)", a.StepTime, b.StepTime, rel*100)
	}
}

func TestScheduleTrace(t *testing.T) {
	g := smallGraph()
	var buf strings.Builder
	opts := HeteroOptions()
	opts.Trace = &buf
	opts.Steps = 1
	if _, err := RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Count(out, "\n")
	if lines != len(g.Ops) {
		t.Fatalf("%d trace lines for %d ops:\n%s", lines, len(g.Ops), out)
	}
	for _, want := range []string{"path=fixed", "path=cpu", "op=conv/Conv2D"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestStatusRegistersDrainAtCompletion(t *testing.T) {
	// The Fig. 7 registers must read all-idle once the simulation ends:
	// every pimOffload got its matching completion.
	g := nn.AlexNet()
	opts := HeteroOptions()
	opts.Steps = 2
	r, err := RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.OffloadedOps == 0 {
		t.Fatal("nothing offloaded")
	}
}

func TestStepTimeWithinAnalyticBounds(t *testing.T) {
	// The DES makespan must sit between the embarrassingly-parallel
	// lower bound (all decomposable work at the full pool rate) and the
	// fully-serial upper bound (every op on the CPU, one at a time).
	for _, m := range []nn.ModelName{nn.AlexNetName, nn.DCGANName} {
		g, err := nn.Build(m)
		if err != nil {
			t.Fatal(err)
		}
		het, err := Run(hw.ConfigHeteroPIM, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		serial := RunCPU(g, hw.PaperConfig(hw.ConfigCPU)).StepTime
		cfg := hw.PaperConfig(hw.ConfigHeteroPIM)
		poolRate := float64(cfg.FixedPIM.Units) * cfg.FixedPIM.FlopsPerUnitCycle * cfg.Stack.EffectiveFreq()
		var decomposable float64
		for _, op := range g.Ops {
			decomposable += op.DecomposableFlops()
		}
		lower := decomposable / poolRate
		if het.StepTime < lower {
			t.Errorf("%s: step %g below the physical lower bound %g", m, het.StepTime, lower)
		}
		if het.StepTime > serial {
			t.Errorf("%s: step %g above the fully-serial CPU bound %g", m, het.StepTime, serial)
		}
	}
}

func TestOpportunisticOffloadNeverHurts(t *testing.T) {
	// The class-1 rule (Fig. 2: offload compute-intensive
	// non-candidates when units idle). With the operation pipeline
	// already overlapping steps, the rule is worth a measurable few
	// percent on deep serial networks — and must never be a loss.
	g := nn.ResNet50()
	on, err := RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), HeteroOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := HeteroOptions()
	opts.DisableOpportunistic = true
	off, err := RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), opts)
	if err != nil {
		t.Fatal(err)
	}
	if on.StepTime > off.StepTime*1.01 {
		t.Errorf("opportunistic offload HURT: on=%g off=%g", on.StepTime, off.StepTime)
	}
	// Without OP the rule carries far more weight (the forward pass has
	// nothing else to overlap with).
	noOP := HeteroOptions()
	noOP.OP = false
	onNoOP, err := RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), noOP)
	if err != nil {
		t.Fatal(err)
	}
	noOP.DisableOpportunistic = true
	offNoOP, err := RunPIM(g, hw.PaperConfig(hw.ConfigHeteroPIM), noOP)
	if err != nil {
		t.Fatal(err)
	}
	if offNoOP.StepTime < onNoOP.StepTime*1.1 {
		t.Errorf("without OP, disabling the class-1 rule cost only %.0f%% (on=%g off=%g)",
			(offNoOP.StepTime/onNoOP.StepTime-1)*100, onNoOP.StepTime, offNoOP.StepTime)
	}
}

func TestNonCNNModelsRunOnAllConfigs(t *testing.T) {
	for _, m := range []nn.ModelName{nn.LSTMName, nn.Word2VecName} {
		g, err := nn.Build(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range hw.AllConfigKinds() {
			r, err := Run(kind, g, 1)
			if err != nil {
				t.Fatalf("%s on %v: %v", m, kind, err)
			}
			if r.StepTime <= 0 {
				t.Fatalf("%s on %v: degenerate step", m, kind)
			}
		}
	}
}
