package core

import (
	"testing"

	"heteropim/internal/hmc"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/pim"
	"heteropim/internal/sim"
)

// spanCollector records task spans and gauge samples for assertions on
// the fixed-pool section path.
type spanCollector struct {
	starts, ends []sim.Task
	samples      map[string][]float64
}

func newSpanCollector() *spanCollector {
	return &spanCollector{samples: map[string][]float64{}}
}

func (c *spanCollector) TaskStart(t sim.Task) { c.starts = append(c.starts, t) }
func (c *spanCollector) TaskEnd(t sim.Task)   { c.ends = append(c.ends, t) }
func (c *spanCollector) Sample(name string, _ hw.Seconds, v float64) {
	c.samples[name] = append(c.samples[name], v)
}
func (c *spanCollector) Count(string, float64) {}

// sectionGraph builds two independent, identical conv ops that are both
// offload candidates, so their section requests contend for the pool.
func sectionGraph() *nn.Graph {
	g := &nn.Graph{Model: "sections", BatchSize: 1, InputBytes: 1e5}
	g.AddOp(nn.Op{Name: "opA", Type: nn.OpConv2D,
		Muls: 2e9, Adds: 2e9, OtherFlops: 1e6, Bytes: 5e7, UnitGranule: 17})
	g.AddOp(nn.Op{Name: "opB", Type: nn.OpConv2D,
		Muls: 2e9, Adds: 2e9, OtherFlops: 1e6, Bytes: 5e7, UnitGranule: 17})
	return g
}

// TestSectionContentionFIFOAndOrdering drives two contending offloads
// through a pool holding exactly ONE granule of units and checks the
// section path edge cases end to end:
//
//   - zero granted units: the second requester must wait in the pending
//     queue (its first section cannot start before the holder's first
//     chunk ends);
//   - contention: granted units never exceed the pool total;
//   - residual ordering: the before-residual ends no later than the
//     op's first section starts, and the after-residual starts no
//     earlier than its last section ends.
func TestSectionContentionFIFOAndOrdering(t *testing.T) {
	g := sectionGraph()
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	cfg.FixedPIM = hw.PaperFixedPIM(17) // one granule for two requesters
	c := newSpanCollector()
	opts := Options{Steps: 1, Collector: c}
	if _, err := RunPIM(g, cfg, opts); err != nil {
		t.Fatal(err)
	}

	for _, v := range c.samples["fixed.busy_units"] {
		if v > 17 {
			t.Fatalf("pool over-granted: busy units sample %g > 17", v)
		}
	}

	type spanStats struct {
		sections                     int
		firstSecStart, lastSecEnd    hw.Seconds
		residualEnds, residualStarts []hw.Seconds
	}
	stats := map[string]*spanStats{"opA": {}, "opB": {}}
	for _, s := range c.ends {
		st, ok := stats[s.Name]
		if !ok {
			continue
		}
		switch s.Kind {
		case "section":
			if st.sections == 0 {
				st.firstSecStart = s.Start
			}
			st.sections++
			if s.End > st.lastSecEnd {
				st.lastSecEnd = s.End
			}
		case "residual":
			st.residualStarts = append(st.residualStarts, s.Start)
			st.residualEnds = append(st.residualEnds, s.End)
		}
	}
	for name, st := range stats {
		if st.sections == 0 {
			t.Fatalf("%s: no fixed sections recorded", name)
		}
		if len(st.residualEnds) != 2 {
			t.Fatalf("%s: %d residual halves, want 2", name, len(st.residualEnds))
		}
		if st.residualEnds[0] > st.firstSecStart {
			t.Errorf("%s: before-residual ends at %.9g, after first section start %.9g",
				name, st.residualEnds[0], st.firstSecStart)
		}
		if st.residualStarts[1] < st.lastSecEnd {
			t.Errorf("%s: after-residual starts at %.9g, before last section end %.9g",
				name, st.residualStarts[1], st.lastSecEnd)
		}
	}
	// FIFO hand-off: opA is dispatched first and takes the whole pool;
	// opB's request finds zero free granules and must queue until opA's
	// first chunk releases its units.
	if stats["opB"].firstSecStart < stats["opA"].firstSecStart+fixedTimeQuantum/2 {
		t.Errorf("opB's first section at %.9g did not wait for opA's chunk (opA start %.9g)",
			stats["opB"].firstSecStart, stats["opA"].firstSecStart)
	}
}

// newSectionExec builds a minimal executor over a real pool for direct
// unit tests of the request/pump path.
func newSectionExec(t *testing.T, units int) *exec {
	t.Helper()
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	cfg.FixedPIM = hw.PaperFixedPIM(units)
	stack, err := hmc.New(cfg.Stack)
	if err != nil {
		t.Fatal(err)
	}
	placement, err := pim.ThermalPlacement(stack, units)
	if err != nil {
		t.Fatal(err)
	}
	g := sectionGraph()
	eng := sim.New()
	x := &exec{
		eng:  eng,
		cfg:  cfg,
		g:    g,
		opts: Options{Steps: 1}.withDefaults(),
		pool: pim.NewPool(cfg.FixedPIM, placement),
		regs: pim.NewRegisters(cfg.Stack.Banks, cfg.ProgPIM.Processors),
		cpu:  &serialDevice{idx: devCPU, slots: 2, sjf: true, name: "cpu", queueMetric: "queue.cpu"},
		prog: &serialDevice{idx: devProg, slots: cfg.ProgPIM.Processors, name: "prog", queueMetric: "queue.prog"},
	}
	eng.SetHandler(x)
	return x
}

// TestRequestSectionZeroGrantQueues checks the zero-granted-units edge
// directly: a request against a fully busy pool joins the FIFO and is
// served, in order, by pumpFixedPending once units free up.
func TestRequestSectionZeroGrantQueues(t *testing.T) {
	x := newSectionExec(t, 34) // two granules of 17
	a := &task{op: x.g.Ops[0], remFlops: 1e9, remBytes: 1e7}
	b := &task{op: x.g.Ops[1], remFlops: 1e9, remBytes: 1e7}

	x.pool.Grant(34) // saturate the pool externally
	x.requestSection(a)
	x.requestSection(b)
	if got := len(x.fixedPending) - x.fixedHead; got != 2 {
		t.Fatalf("%d tasks pending, want 2 (zero-grant requests must queue)", got)
	}
	if x.pool.Busy() != 34 {
		t.Fatalf("busy=%d changed by zero-grant requests", x.pool.Busy())
	}

	// Free ONE granule: only the head of the queue may be served.
	if err := x.pool.Release(17); err != nil {
		t.Fatal(err)
	}
	x.pumpFixedPending()
	if got := len(x.fixedPending) - x.fixedHead; got != 1 {
		t.Fatalf("%d tasks pending after one-granule release, want 1", got)
	}
	if x.fixedPending[x.fixedHead] != b {
		t.Fatal("FIFO violated: task B served before task A")
	}
	if x.pool.Available() != 0 {
		t.Fatalf("%d units left idle with a waiter queued", x.pool.Available())
	}
	if x.err != nil {
		t.Fatal(x.err)
	}
}

// TestRequestSectionGranuleClampedToPool checks that an op whose granule
// exceeds the whole pool is clamped to the pool size instead of waiting
// forever.
func TestRequestSectionGranuleClampedToPool(t *testing.T) {
	x := newSectionExec(t, 8) // pool smaller than the op granule (17)
	a := &task{op: x.g.Ops[0], remFlops: 1e9, remBytes: 1e7}
	x.requestSection(a)
	if got := len(x.fixedPending) - x.fixedHead; got != 0 {
		t.Fatalf("request queued (%d pending) instead of running on the clamped granule", got)
	}
	if x.pool.Busy() != 8 {
		t.Fatalf("busy=%d, want the whole 8-unit pool granted", x.pool.Busy())
	}
	if x.err != nil {
		t.Fatal(x.err)
	}
}

// TestGranuleClampEndToEnd runs a whole simulation whose op granule
// exceeds the pool, which must still terminate with drained registers.
func TestGranuleClampEndToEnd(t *testing.T) {
	g := sectionGraph()
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	cfg.FixedPIM = hw.PaperFixedPIM(8)
	r, err := RunPIM(g, cfg, Options{Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.StepTime <= 0 {
		t.Fatal("non-positive step time")
	}
}
