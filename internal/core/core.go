package core

import (
	"fmt"

	"heteropim/internal/device"
	"heteropim/internal/hw"
	"heteropim/internal/nn"
	"heteropim/internal/sim"
)

// HeteroOptions returns the full paper runtime: profiling-based
// selection, recursive kernels, and the operation pipeline.
func HeteroOptions() Options {
	return Options{RC: true, OP: true, UseSelection: true}
}

// Run simulates steady-state training of a model on one of the five
// evaluated platform configurations (Section VI) at the given PIM/stack
// frequency scale.
func Run(kind hw.ConfigKind, g *nn.Graph, freqScale float64) (Result, error) {
	cfg := hw.PaperConfigScaled(kind, freqScale)
	return RunOn(kind, g, cfg)
}

// RunOn is Run with an explicit (possibly customized) configuration.
func RunOn(kind hw.ConfigKind, g *nn.Graph, cfg hw.SystemConfig) (Result, error) {
	return RunOnWithCollector(kind, g, cfg, nil)
}

// RunOnWithCollector is RunOn with the observability layer attached:
// the run's task spans, queue depths and scheduling counters are
// delivered to c (nil behaves exactly like RunOn — attaching a
// collector never changes simulation results).
func RunOnWithCollector(kind hw.ConfigKind, g *nn.Graph, cfg hw.SystemConfig, c sim.Collector) (Result, error) {
	switch kind {
	case hw.ConfigCPU:
		return RunCPUWithCollector(g, cfg, c), nil
	case hw.ConfigGPU:
		return RunGPUWithCollector(g, cfg, c), nil
	}
	opts, ok := pimOptionsFor(kind)
	if !ok {
		return Result{}, fmt.Errorf("core: unknown configuration %v", kind)
	}
	opts.Collector = c
	return RunPIM(g, cfg, opts)
}

// pimOptionsFor maps a PIM platform kind to its executor options; ok is
// false for the non-PIM kinds.
func pimOptionsFor(kind hw.ConfigKind) (Options, bool) {
	switch kind {
	case hw.ConfigProgrPIM:
		// No runtime scheduling: every op runs on the programmable
		// cores, as wide as its parallelism allows, no pipeline.
		return Options{NoCPUFallback: true, WideProgOps: true}, true
	case hw.ConfigFixedPIM:
		// Offloadable ops on the fixed-function pool, everything else
		// (and all residual phases) on the CPU; no runtime scheduling.
		return Options{}, true
	case hw.ConfigHeteroPIM:
		return HeteroOptions(), true
	default:
		return Options{}, false
	}
}

// RunHeteroVariant simulates the Hetero PIM platform with the runtime
// techniques individually toggled (the software-impact study of
// Section VI-E: Figs. 13-15).
func RunHeteroVariant(g *nn.Graph, rc, op bool, freqScale float64) (Result, error) {
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, freqScale)
	opts := HeteroOptions()
	opts.RC = rc
	opts.OP = op
	res, err := RunPIM(g, cfg, opts)
	if err != nil {
		return res, err
	}
	res.Config.Name = fmt.Sprintf("Hetero PIM(RC=%v,OP=%v)", rc, op)
	return res, nil
}

// RunNeurocubeDefault runs the Neurocube comparison point (Fig. 10).
func RunNeurocubeDefault(g *nn.Graph) Result {
	cfg := hw.PaperConfigScaled(hw.ConfigHeteroPIM, 1)
	return RunNeurocube(g, device.DefaultNeurocube(), cfg)
}

// RunAll runs a model across the five platform configurations and
// returns results in figure order.
func RunAll(g *nn.Graph) ([]Result, error) {
	out := make([]Result, 0, 5)
	for _, kind := range hw.AllConfigKinds() {
		r, err := Run(kind, g, 1)
		if err != nil {
			return nil, fmt.Errorf("core: %s on %v: %w", g.Model, kind, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// BuildAndRun is a convenience for tools: build the model, run one
// configuration.
func BuildAndRun(kind hw.ConfigKind, model nn.ModelName, freqScale float64) (Result, error) {
	g, err := nn.Build(model)
	if err != nil {
		return Result{}, err
	}
	return Run(kind, g, freqScale)
}
