package core

import (
	"io"
	"sync"
)

// syncWriter serializes writes from concurrent simulation runs.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// SyncWriter wraps w so it can be shared as the Trace sink of multiple
// concurrent runs: each trace line is written atomically. Lines from
// different runs interleave (tag them by giving each run its own
// prefixed writer if they must be separable).
func SyncWriter(w io.Writer) io.Writer {
	if w == nil {
		return nil
	}
	if _, ok := w.(*syncWriter); ok {
		return w
	}
	return &syncWriter{w: w}
}
