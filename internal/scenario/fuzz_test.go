package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// seedCorpus feeds every committed scenario document plus a few
// adversarial shapes to a fuzz target.
func seedCorpus(f *testing.F) {
	files, err := filepath.Glob("../../testdata/scenarios/*.json")
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, doc := range []string{
		``,
		`{}`,
		`{"scenario": 1}`,
		`{"scenario": 1, "cells": [{"models": ["VGG-19"]}]}`,
		`{"scenario": 1, "cells": [{"models": ["VGG-19"], "stacks": [0]}]}`,
		`{"scenario": 1, "seed": -9223372036854775808, "cells": [{"models": ["LSTM"], "freq_scales": [1e308, 5e-324]}]}`,
		`{"scenario": 1, "cells": [{"models": ["VGG-19"]}], "arrival": {"process": "poisson", "rate_per_sec": 1e-9, "duration_sec": 1e9}}`,
		`{"scenario": 1, "cells": [{"models": ["VGG-19"]}], "arrival": {"process": "burst", "trace_sec": [0, 0, 0]}}`,
	} {
		f.Add([]byte(doc))
	}
}

// FuzzParseScenario asserts the whole front end is total: arbitrary
// bytes either parse-and-compile cleanly or return an error — never a
// panic — and an accepted document respects the plan's hard limits.
func FuzzParseScenario(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		p, err := Compile(s)
		if err != nil {
			return
		}
		if len(p.Cells) == 0 {
			t.Fatal("compile accepted a plan with zero cells")
		}
		if len(p.Cells) > MaxCells {
			t.Fatalf("plan has %d cells, above the %d cap", len(p.Cells), MaxCells)
		}
		if p.Requested < len(p.Cells) || p.Duplicates != p.Requested-len(p.Cells) {
			t.Fatalf("accounting broken: requested=%d duplicates=%d cells=%d",
				p.Requested, p.Duplicates, len(p.Cells))
		}
		if p.Arrival != nil {
			offsets, err := p.Arrival.Schedule(p.Seed)
			if err != nil {
				t.Fatalf("validated arrival failed to schedule: %v", err)
			}
			if len(offsets) > MaxScheduleRequests {
				t.Fatalf("schedule has %d offsets, above the %d cap", len(offsets), MaxScheduleRequests)
			}
			for i, off := range offsets {
				if off < 0 || (i > 0 && off < offsets[i-1]) {
					t.Fatalf("offsets not non-decreasing/non-negative at %d: %v", i, offsets)
				}
			}
		}
	})
}

// FuzzCompile asserts the compiler is a pure function of the document:
// compiling the same bytes twice yields identical plans (cells, order,
// accounting, schedules).
func FuzzCompile(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		s1, err1 := Parse(data)
		s2, err2 := Parse(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("parse not deterministic: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		p1, err1 := Compile(s1)
		p2, err2 := Compile(s2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("compile not deterministic: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatal("identical documents compiled to different plans")
		}
		if p1.Arrival != nil {
			o1, _ := p1.Arrival.Schedule(p1.Seed)
			o2, _ := p2.Arrival.Schedule(p2.Seed)
			if !reflect.DeepEqual(o1, o2) {
				t.Fatal("identical arrivals scheduled differently under one seed")
			}
		}
	})
}
