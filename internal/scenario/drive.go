package scenario

import (
	"sort"
	"sync"
	"time"
)

// DriveResult is what the open-loop driver hands back: per-request
// latencies (successful requests only, arrival order lost), the error
// count, and the wall-clock span of the whole run.
type DriveResult struct {
	Fired     int
	Errors    int
	Latencies []time.Duration
	Wall      time.Duration
}

// Drive executes an open-loop arrival schedule: request i fires at
// offsets[i] seconds after start — on time even when earlier requests
// are still in flight, which is the property that distinguishes
// open-loop load from the closed-loop N-clients harness (a closed loop
// self-throttles when the server slows down; an open loop keeps
// arriving and exposes queue growth). fire(i) performs request i and
// returns its error; it runs on its own goroutine per arrival.
func Drive(offsets []float64, fire func(i int) error) DriveResult {
	start := time.Now()
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		res DriveResult
	)
	for i, off := range offsets {
		due := start.Add(time.Duration(off * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			err := fire(i)
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			res.Fired++
			if err != nil {
				res.Errors++
				return
			}
			res.Latencies = append(res.Latencies, lat)
		}(i)
	}
	wg.Wait()
	sort.Slice(res.Latencies, func(i, j int) bool { return res.Latencies[i] < res.Latencies[j] })
	res.Wall = time.Since(start)
	return res
}
