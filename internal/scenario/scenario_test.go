package scenario

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func parseCompile(t *testing.T, doc string) (*Plan, error) {
	t.Helper()
	s, err := Parse([]byte(doc))
	if err != nil {
		return nil, err
	}
	return Compile(s)
}

func mustCompile(t *testing.T, doc string) *Plan {
	t.Helper()
	p, err := parseCompile(t, doc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestParseRejectsBadDocuments(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"empty", ``, "EOF"},
		{"not json", `{`, "scenario"},
		{"wrong version", `{"scenario": 2, "cells": [{"models": ["VGG-19"]}]}`, "version"},
		{"missing version", `{"cells": [{"models": ["VGG-19"]}]}`, "version"},
		{"unknown field", `{"scenario": 1, "cells": [{"models": ["VGG-19"]}], "bogus": 1}`, "bogus"},
		{"unknown cell field", `{"scenario": 1, "cells": [{"models": ["VGG-19"], "nope": []}]}`, "nope"},
		{"trailing data", `{"scenario": 1, "cells": [{"models": ["VGG-19"]}]} {"x":1}`, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse([]byte(tc.doc)); err == nil {
				t.Fatalf("Parse accepted %s", tc.name)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestUnknownNamesListValidOnes(t *testing.T) {
	_, err := parseCompile(t, `{"scenario": 1, "cells": [{"models": ["VGG-99"]}]}`)
	if err == nil {
		t.Fatal("unknown model accepted")
	}
	for _, want := range []string{"VGG-99", "VGG-19", "Word2vec"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("model error %q does not mention %q", err, want)
		}
	}

	_, err = parseCompile(t, `{"scenario": 1, "cells": [{"models": ["VGG-19"], "configs": ["tpu"]}]}`)
	if err == nil {
		t.Fatal("unknown config accepted")
	}
	for _, want := range []string{"tpu", "cpu", "hetero"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("config error %q does not mention %q", err, want)
		}
	}
}

func TestEmptyProductRejected(t *testing.T) {
	for name, doc := range map[string]string{
		"no cell sets": `{"scenario": 1, "cells": []}`,
		"no models":    `{"scenario": 1, "cells": [{"models": []}]}`,
	} {
		if _, err := parseCompile(t, doc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestConflictingAxesRejected(t *testing.T) {
	variant := `{"recursive_kernels": true, "operation_pipeline": false}`
	for name, doc := range map[string]string{
		"variants+processors": fmt.Sprintf(
			`{"scenario": 1, "cells": [{"models": ["VGG-19"], "variants": [%s], "processors": [32]}]}`, variant),
		"variants+configs": fmt.Sprintf(
			`{"scenario": 1, "cells": [{"models": ["VGG-19"], "variants": [%s], "configs": ["gpu"]}]}`, variant),
		"processors+configs": `{"scenario": 1, "cells": [{"models": ["VGG-19"], "processors": [32], "configs": ["gpu"]}]}`,
		"bad allreduce":      `{"scenario": 1, "cells": [{"models": ["VGG-19"], "stacks": [2], "allreduce": ["mesh"]}]}`,
		"negative batch":     `{"scenario": 1, "cells": [{"models": ["VGG-19"], "batch_sizes": [-4]}]}`,
		"negative freq":      `{"scenario": 1, "cells": [{"models": ["VGG-19"], "freq_scales": [-1]}]}`,
	} {
		if _, err := parseCompile(t, doc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDuplicatesFoldedWithCount(t *testing.T) {
	// The same 2-model set twice, plus an allreduce pair that collapses
	// at stacks==1: 2 sets x 2 models x 2 allreduce = 8 requested, 2 unique.
	doc := `{"scenario": 1, "cells": [
		{"models": ["VGG-19", "AlexNet"], "allreduce": ["ring", "tree"]},
		{"models": ["VGG-19", "AlexNet"], "allreduce": ["ring", "tree"]}
	]}`
	p := mustCompile(t, doc)
	if p.Requested != 8 || p.Duplicates != 6 || len(p.Cells) != 2 {
		t.Fatalf("requested=%d duplicates=%d cells=%d, want 8/6/2",
			p.Requested, p.Duplicates, len(p.Cells))
	}
	// First-occurrence order holds.
	if p.Cells[0].Model != "VGG-19" || p.Cells[1].Model != "AlexNet" {
		t.Fatalf("dedup broke order: %v", p.Cells)
	}
}

func TestCompileDeterministic(t *testing.T) {
	files, err := filepath.Glob("../../testdata/scenarios/*.json")
	if err != nil || len(files) == 0 {
		t.Fatalf("no scenario corpus: %v", err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		s1, err := Parse(data)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		p1, err := Compile(s1)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		s2, _ := Parse(data)
		p2, _ := Compile(s2)
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("%s: compile not deterministic", f)
		}
	}
}

func TestPoissonScheduleDeterministicUnderSeed(t *testing.T) {
	a := Arrival{Process: ArrivalPoisson, RatePerSec: 100, Requests: 50}
	s1, err := a.Schedule(42)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := a.Schedule(42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different Poisson schedules")
	}
	if len(s1) != 50 {
		t.Fatalf("got %d offsets, want 50", len(s1))
	}
	for i := 1; i < len(s1); i++ {
		if s1[i] < s1[i-1] {
			t.Fatalf("offsets not non-decreasing at %d: %v < %v", i, s1[i], s1[i-1])
		}
	}
	s3, err := a.Schedule(43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1, s3) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestBurstReplayRoundTrip(t *testing.T) {
	trace := []float64{0, 0, 0.25, 0.25, 1.5}
	a := Arrival{Process: ArrivalBurst, TraceSec: trace}
	got, err := a.Schedule(7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, trace) {
		t.Fatalf("burst schedule %v != trace %v", got, trace)
	}
	// The schedule is a copy: mutating it must not alias the spec.
	got[0] = 99
	if a.TraceSec[0] == 99 {
		t.Fatal("burst schedule aliases the spec's trace")
	}

	for name, bad := range map[string]Arrival{
		"empty":          {Process: ArrivalBurst},
		"decreasing":     {Process: ArrivalBurst, TraceSec: []float64{1, 0.5}},
		"negative":       {Process: ArrivalBurst, TraceSec: []float64{-1, 0}},
		"non-finite":     {Process: ArrivalBurst, TraceSec: []float64{0, math.NaN()}},
		"unknown kind":   {Process: "exponential"},
		"poisson norate": {Process: ArrivalPoisson, Requests: 10},
		"diurnal minmax": {Process: ArrivalDiurnal, RatePerSec: 10, MinRatePerSec: 20, PeriodSec: 1, DurationSec: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestDiurnalScheduleBoundedAndSeeded(t *testing.T) {
	a := Arrival{Process: ArrivalDiurnal, RatePerSec: 500, MinRatePerSec: 50, PeriodSec: 0.5, DurationSec: 1}
	s1, err := a.Schedule(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) == 0 {
		t.Fatal("diurnal schedule empty at rate 500/s over 1s")
	}
	for _, off := range s1 {
		if off < 0 || off > 1 {
			t.Fatalf("offset %v outside [0, duration]", off)
		}
	}
	s2, _ := a.Schedule(1)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different diurnal schedules")
	}
}

func TestStacksCanonicalizeAllReduce(t *testing.T) {
	// stacks 1 collapses allreduce to ""; stacks > 1 defaults it to ring.
	p := mustCompile(t, `{"scenario": 1, "cells": [{"models": ["VGG-19"], "stacks": [1, 2]}]}`)
	if len(p.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(p.Cells))
	}
	if p.Cells[0].Stacks != 1 || p.Cells[0].AllReduce != "" {
		t.Fatalf("stacks-1 cell: %+v", p.Cells[0])
	}
	if p.Cells[1].Stacks != 2 || string(p.Cells[1].AllReduce) != "ring" {
		t.Fatalf("stacks-2 cell: %+v", p.Cells[1])
	}
}
