package scenario

import (
	"fmt"
	"math"
	"math/rand"
)

// Arrival process names. "closed" (or the empty string) is the classic
// N-clients closed loop; the other three are open-loop: the schedule
// generator emits absolute arrival offsets and Drive fires requests at
// those offsets regardless of how fast responses come back.
const (
	ArrivalClosed  = "closed"
	ArrivalPoisson = "poisson"
	ArrivalDiurnal = "diurnal"
	ArrivalBurst   = "burst"
)

// MaxScheduleRequests bounds a generated schedule so a scenario file
// cannot ask a load generator to allocate an unbounded arrival list.
const MaxScheduleRequests = 100000

// Arrival describes how a load generator fires a plan's cells at a
// serving daemon. Which fields matter depends on Process:
//
//   - closed:  Clients (concurrent closed-loop clients), Requests
//     (total; defaults to one per client).
//   - poisson: RatePerSec (λ) plus Requests or DurationSec (horizon).
//   - diurnal: RatePerSec (peak λ), MinRatePerSec (off-peak floor),
//     PeriodSec (one day's length in test time), DurationSec.
//   - burst:   TraceSec, a recorded trace of non-decreasing arrival
//     offsets replayed verbatim.
type Arrival struct {
	Process       string    `json:"process"`
	Clients       int       `json:"clients,omitempty"`
	Requests      int       `json:"requests,omitempty"`
	RatePerSec    float64   `json:"rate_per_sec,omitempty"`
	MinRatePerSec float64   `json:"min_rate_per_sec,omitempty"`
	PeriodSec     float64   `json:"period_sec,omitempty"`
	DurationSec   float64   `json:"duration_sec,omitempty"`
	TraceSec      []float64 `json:"trace_sec,omitempty"`
}

// Normalized returns the canonical process name ("" means closed).
func (a *Arrival) Normalized() string {
	if a == nil || a.Process == "" {
		return ArrivalClosed
	}
	return a.Process
}

// Open reports whether the process is open-loop (has an arrival
// schedule) rather than closed-loop.
func (a *Arrival) Open() bool {
	switch a.Normalized() {
	case ArrivalPoisson, ArrivalDiurnal, ArrivalBurst:
		return true
	}
	return false
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks the arrival block in isolation (Compile calls it).
func (a *Arrival) Validate() error {
	if a == nil {
		return nil
	}
	if a.Clients < 0 {
		return fmt.Errorf("scenario: arrival: clients must be >= 0, got %d", a.Clients)
	}
	if a.Requests < 0 || a.Requests > MaxScheduleRequests {
		return fmt.Errorf("scenario: arrival: requests must be in [0, %d], got %d", MaxScheduleRequests, a.Requests)
	}
	switch a.Normalized() {
	case ArrivalClosed:
		return nil
	case ArrivalPoisson:
		if !(a.RatePerSec > 0) || !finite(a.RatePerSec) {
			return fmt.Errorf("scenario: arrival: poisson needs rate_per_sec > 0, got %g", a.RatePerSec)
		}
		if a.Requests == 0 && !(a.DurationSec > 0 && finite(a.DurationSec)) {
			return fmt.Errorf("scenario: arrival: poisson needs requests or duration_sec")
		}
		if a.DurationSec < 0 || !finite(a.DurationSec) {
			return fmt.Errorf("scenario: arrival: duration_sec must be a finite non-negative number, got %g", a.DurationSec)
		}
		return nil
	case ArrivalDiurnal:
		if !(a.RatePerSec > 0) || !finite(a.RatePerSec) {
			return fmt.Errorf("scenario: arrival: diurnal needs rate_per_sec > 0 (peak), got %g", a.RatePerSec)
		}
		if a.MinRatePerSec < 0 || a.MinRatePerSec > a.RatePerSec || !finite(a.MinRatePerSec) {
			return fmt.Errorf("scenario: arrival: diurnal min_rate_per_sec must be in [0, rate_per_sec], got %g", a.MinRatePerSec)
		}
		if !(a.PeriodSec > 0) || !finite(a.PeriodSec) {
			return fmt.Errorf("scenario: arrival: diurnal needs period_sec > 0, got %g", a.PeriodSec)
		}
		if !(a.DurationSec > 0) || !finite(a.DurationSec) {
			return fmt.Errorf("scenario: arrival: diurnal needs duration_sec > 0, got %g", a.DurationSec)
		}
		return nil
	case ArrivalBurst:
		if len(a.TraceSec) == 0 {
			return fmt.Errorf("scenario: arrival: burst needs a non-empty trace_sec")
		}
		if len(a.TraceSec) > MaxScheduleRequests {
			return fmt.Errorf("scenario: arrival: trace_sec has %d offsets, max %d", len(a.TraceSec), MaxScheduleRequests)
		}
		prev := 0.0
		for i, t := range a.TraceSec {
			if t < 0 || !finite(t) {
				return fmt.Errorf("scenario: arrival: trace_sec[%d] must be a finite non-negative offset, got %g", i, t)
			}
			if t < prev {
				return fmt.Errorf("scenario: arrival: trace_sec[%d]=%g is before trace_sec[%d]=%g (offsets must be non-decreasing)", i, t, i-1, prev)
			}
			prev = t
		}
		return nil
	default:
		return fmt.Errorf("scenario: arrival: unknown process %q (valid: %s, %s, %s, %s)",
			a.Process, ArrivalClosed, ArrivalPoisson, ArrivalDiurnal, ArrivalBurst)
	}
}

// Schedule generates the arrival offsets (seconds from test start) for
// an open-loop process. The generator is a pure function of the
// arrival block and the seed: replaying a scenario file reproduces the
// exact same schedule. Closed-loop processes return a nil schedule.
func (a *Arrival) Schedule(seed int64) ([]float64, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	switch a.Normalized() {
	case ArrivalClosed:
		return nil, nil
	case ArrivalBurst:
		// Replay the recorded trace verbatim, so a schedule captured
		// from one run can be fed back as a scenario and fire
		// identically (burst round-trip).
		out := make([]float64, len(a.TraceSec))
		copy(out, a.TraceSec)
		return out, nil
	case ArrivalPoisson:
		rng := rand.New(rand.NewSource(seed))
		var out []float64
		t := 0.0
		for len(out) < MaxScheduleRequests {
			t += rng.ExpFloat64() / a.RatePerSec
			if a.DurationSec > 0 && t > a.DurationSec {
				break
			}
			out = append(out, t)
			if a.Requests > 0 && len(out) == a.Requests {
				break
			}
		}
		return out, nil
	case ArrivalDiurnal:
		// Thinning (Lewis-Shedler): draw candidate arrivals from a
		// homogeneous Poisson at the peak rate, keep each with
		// probability lambda(t)/peak where lambda follows a raised
		// cosine between min_rate_per_sec and rate_per_sec over one
		// period.
		rng := rand.New(rand.NewSource(seed))
		peak := a.RatePerSec
		lambda := func(t float64) float64 {
			phase := (1 - math.Cos(2*math.Pi*t/a.PeriodSec)) / 2
			return a.MinRatePerSec + (peak-a.MinRatePerSec)*phase
		}
		var out []float64
		t := 0.0
		for len(out) < MaxScheduleRequests {
			t += rng.ExpFloat64() / peak
			if t > a.DurationSec {
				break
			}
			if rng.Float64()*peak <= lambda(t) {
				out = append(out, t)
				if a.Requests > 0 && len(out) == a.Requests {
					break
				}
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("scenario: arrival: unknown process %q", a.Process)
	}
}
