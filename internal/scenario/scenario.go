// Package scenario is the declarative front door of the simulator: a
// versioned JSON schema describing cell sets (models x configurations
// x option axes), compiled to the ordered, deduplicated cell plans
// every CLI, the serving POST body and the load generators execute.
//
// The compiler is deterministic: the same spec always produces the
// same plan (same cells, same order, same duplicate count), and the
// arrival-schedule generator is seeded, so an open-loop load test is
// reproducible from its scenario file alone. Validation rides the same
// name tables as heteropim.ParseConfig / heteropim.ParseModel
// (hw.ParseConfigFlag / nn.ParseModelName), so a scenario accepts
// exactly the spellings the flags and the POST body do — and rejects
// unknown names with the same valid-name listing.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"heteropim/internal/hw"
	"heteropim/internal/nn"
)

// Version is the schema version this package compiles. A spec's
// "scenario" field must match exactly; unknown future versions are
// rejected rather than half-understood.
const Version = 1

// MaxCells bounds a compiled plan's unique cell count — a scenario is
// a figure grid or a load mix, not a denial-of-service vector for the
// serving daemon (which accepts scenario documents as POST bodies).
const MaxCells = 4096

// VariantAxis is one RC/OP runtime-technique combination of the
// Section VI-E study (Hetero PIM only).
type VariantAxis struct {
	RecursiveKernels  bool `json:"recursive_kernels"`
	OperationPipeline bool `json:"operation_pipeline"`
}

// CellSet is one cross product of models and option axes. Empty axes
// default to the paper's baseline (configs: hetero; freq_scales: [1];
// batch_sizes: paper defaults; stacks: [1]). The variants and
// processors axes replace the configs axis (they are Hetero PIM
// studies by construction) and are mutually exclusive.
type CellSet struct {
	Models     []string      `json:"models"`
	Configs    []string      `json:"configs,omitempty"`
	FreqScales []float64     `json:"freq_scales,omitempty"`
	BatchSizes []int         `json:"batch_sizes,omitempty"`
	Stacks     []int         `json:"stacks,omitempty"`
	AllReduce  []string      `json:"allreduce,omitempty"`
	Variants   []VariantAxis `json:"variants,omitempty"`
	Processors []int         `json:"processors,omitempty"`
}

// Spec is the versioned scenario document.
type Spec struct {
	// Scenario is the schema version; must equal Version.
	Scenario int `json:"scenario"`
	// Name labels the scenario in reports and responses.
	Name string `json:"name,omitempty"`
	// Seed drives the arrival-schedule generator (0 is a valid seed).
	Seed int64 `json:"seed,omitempty"`
	// Cells are the cell sets, compiled in order.
	Cells []CellSet `json:"cells"`
	// Arrival, when set, describes how load-generating consumers fire
	// the cells at a serving daemon.
	Arrival *Arrival `json:"arrival,omitempty"`
}

// Cell is one compiled simulation cell: every axis resolved and
// normalized. The zero-value axes match the paper baseline the public
// Run entry points default to.
type Cell struct {
	// Config is the platform kind; ignored (Hetero PIM) when Variant is
	// set or Processors > 0.
	Config hw.ConfigKind
	Model  nn.ModelName
	// FreqScale is always >= some positive value (default 1).
	FreqScale float64
	// BatchSize 0 means the model's paper batch size.
	BatchSize int
	// Stacks is always >= 1; AllReduce is "" exactly when Stacks == 1.
	Stacks    int
	AllReduce string
	Variant   *VariantAxis
	// Processors > 0 selects the constant-area processor-count study.
	Processors int
}

// Key is the cell's canonical identity — the dedup key. Two spec
// entries spelling the same cell differently ("GPU" vs "gpu", an
// explicit freq_scale 1 vs the default) collapse onto one key.
func (c Cell) Key() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%d|%s|%g|%d|%d|%s|", c.Config, c.Model, c.FreqScale,
		c.BatchSize, c.Stacks, c.AllReduce)
	if c.Variant != nil {
		fmt.Fprintf(&b, "rc=%t,op=%t", c.Variant.RecursiveKernels, c.Variant.OperationPipeline)
	}
	fmt.Fprintf(&b, "|%d", c.Processors)
	return b.String()
}

// Plan is a compiled scenario: the unique cells in deterministic
// order, the dedup accounting, and the validated arrival process.
type Plan struct {
	Name string
	Seed int64
	// Cells are unique and ordered: first occurrence wins.
	Cells []Cell
	// Requested counts cells before dedup; Requested - len(Cells) were
	// duplicates.
	Requested  int
	Duplicates int
	Arrival    *Arrival
}

// Parse decodes and validates a scenario document strictly: unknown
// fields, trailing garbage and version mismatches are errors, so a
// typo'd axis name cannot silently compile to the default grid.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after the document")
	}
	if s.Scenario != Version {
		return nil, fmt.Errorf("scenario: unsupported version %d (this build compiles version %d)",
			s.Scenario, Version)
	}
	return &s, nil
}

// axis limits: generous for every real study, tight enough that a
// fuzzer (or a hostile POST body) cannot make Compile explode.
const (
	maxBatchSize  = 1 << 16
	maxStacks     = 64
	maxProcessors = 256
)

func validFreq(v float64) bool {
	return v > 0 && !math.IsInf(v, 1) && !math.IsNaN(v)
}

// Compile expands, validates, normalizes and deduplicates the spec's
// cell sets into a Plan. It is a pure function of the spec: compiling
// twice yields identical plans (the fuzz harness holds it to that).
func Compile(s *Spec) (*Plan, error) {
	if s == nil {
		return nil, fmt.Errorf("scenario: nil spec")
	}
	if len(s.Cells) == 0 {
		return nil, fmt.Errorf("scenario: empty cell product (no cell sets)")
	}
	if s.Arrival != nil {
		if err := s.Arrival.Validate(); err != nil {
			return nil, err
		}
	}
	plan := &Plan{Name: s.Name, Seed: s.Seed, Arrival: s.Arrival}
	seen := map[string]bool{}
	for si, cs := range s.Cells {
		cells, err := expandSet(si, cs)
		if err != nil {
			return nil, err
		}
		plan.Requested += len(cells)
		for _, c := range cells {
			k := c.Key()
			if seen[k] {
				plan.Duplicates++
				continue
			}
			seen[k] = true
			plan.Cells = append(plan.Cells, c)
			if len(plan.Cells) > MaxCells {
				return nil, fmt.Errorf("scenario: over %d unique cells; split the scenario", MaxCells)
			}
		}
	}
	if len(plan.Cells) == 0 {
		return nil, fmt.Errorf("scenario: empty cell product (no cells compiled)")
	}
	return plan, nil
}

// expandSet cross-multiplies one cell set. The nesting order is the
// contract the CLIs' byte-identity rides on: models (outermost), then
// freq_scales, batch_sizes, stacks, allreduce, variants, processors,
// and configs innermost — exactly the row order of the legacy
// flag-driven sweeps.
func expandSet(si int, cs CellSet) ([]Cell, error) {
	if len(cs.Models) == 0 {
		return nil, fmt.Errorf("scenario: cell set %d: empty cell product (no models)", si)
	}
	if len(cs.Variants) > 0 && len(cs.Processors) > 0 {
		return nil, fmt.Errorf("scenario: cell set %d: variants and processors are mutually exclusive", si)
	}
	if (len(cs.Variants) > 0 || len(cs.Processors) > 0) && len(cs.Configs) > 0 {
		return nil, fmt.Errorf("scenario: cell set %d: variants/processors imply the hetero platform; drop the configs axis", si)
	}

	models := make([]nn.ModelName, len(cs.Models))
	for i, name := range cs.Models {
		m, err := nn.ParseModelName(name)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	configs := []hw.ConfigKind{hw.ConfigHeteroPIM}
	if len(cs.Configs) > 0 {
		configs = make([]hw.ConfigKind, len(cs.Configs))
		for i, name := range cs.Configs {
			k, err := hw.ParseConfigFlag(name)
			if err != nil {
				return nil, err
			}
			configs[i] = k
		}
	}
	freqs := cs.FreqScales
	if len(freqs) == 0 {
		freqs = []float64{1}
	}
	for _, v := range freqs {
		if !validFreq(v) {
			return nil, fmt.Errorf("scenario: cell set %d: freq_scale must be a positive finite number, got %g", si, v)
		}
	}
	batches := cs.BatchSizes
	if len(batches) == 0 {
		batches = []int{0}
	}
	for _, b := range batches {
		if b < 0 || b > maxBatchSize {
			return nil, fmt.Errorf("scenario: cell set %d: batch_size must be in [0, %d], got %d", si, maxBatchSize, b)
		}
	}
	stacks := cs.Stacks
	if len(stacks) == 0 {
		stacks = []int{1}
	}
	for _, m := range stacks {
		if m < 1 || m > maxStacks {
			return nil, fmt.Errorf("scenario: cell set %d: stacks must be in [1, %d], got %d", si, maxStacks, m)
		}
	}
	allreduce := cs.AllReduce
	if len(allreduce) == 0 {
		allreduce = []string{""}
	}
	for _, a := range allreduce {
		if _, err := nn.ParseAllReduceKind(a); err != nil {
			return nil, fmt.Errorf("scenario: cell set %d: %w", si, err)
		}
	}
	for _, p := range cs.Processors {
		if p < 1 || p > maxProcessors {
			return nil, fmt.Errorf("scenario: cell set %d: processors must be in [1, %d], got %d", si, maxProcessors, p)
		}
	}

	var cells []Cell
	emit := func(c Cell) {
		cells = append(cells, c)
	}
	for _, m := range models {
		for _, fs := range freqs {
			for _, bs := range batches {
				for _, ms := range stacks {
					for _, ar := range allreduce {
						base := Cell{Model: m, FreqScale: fs, BatchSize: bs, Stacks: ms}
						if ms > 1 {
							// Multi-stack runs default to the ring schedule;
							// single-stack runs have no gradient exchange, so
							// the allreduce axis collapses (the dedup pass
							// folds the resulting duplicates).
							base.AllReduce = ar
							if base.AllReduce == "" {
								base.AllReduce = string(nn.AllReduceRing)
							}
						}
						switch {
						case len(cs.Variants) > 0:
							for _, v := range cs.Variants {
								c := base
								v := v
								c.Config = hw.ConfigHeteroPIM
								c.Variant = &v
								emit(c)
							}
						case len(cs.Processors) > 0:
							for _, p := range cs.Processors {
								c := base
								c.Config = hw.ConfigHeteroPIM
								c.Processors = p
								emit(c)
							}
						default:
							for _, cfg := range configs {
								c := base
								c.Config = cfg
								emit(c)
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}
