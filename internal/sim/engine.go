// Package sim is a small deterministic discrete-event simulation engine:
// an event heap ordered by (time, sequence), a clock, and run control.
// It is the substrate under the trace-driven executors in internal/core,
// playing the role of the paper's Python simulation framework
// (Section V-A).
package sim

import (
	"fmt"
	"math"
	"sync"

	"heteropim/internal/hw"
)

// event is one scheduled entry: a typed payload (event.go) at a time.
// Legacy closure events are payloads of KindFunc whose Ptr holds the
// func(); typed events are dispatched through the engine's Handler.
type event struct {
	at  hw.Seconds
	seq uint64
	ev  Ev
}

// before is the heap order: time first, insertion sequence as the tie
// break, which is what makes same-time events run in schedule order.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a typed 4-ary implicit heap. The previous container/heap
// implementation boxed every event through `any` on Push/Pop (one heap
// allocation per scheduled event) and dispatched Len/Less/Swap through
// an interface; the typed heap does neither. A 4-ary layout halves the
// tree depth of the binary heap, trading slightly more sibling
// comparisons per level for fewer cache-missing levels — the right
// trade for the tens of thousands of events a steady-state run pushes.
// Children of node i live at 4i+1..4i+4; the parent of i is (i-1)/4.
type eventHeap []event

// push inserts ev, sifting it up to its heap position.
func (h *eventHeap) push(ev event) {
	a := append(*h, ev)
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !ev.before(a[p]) {
			break
		}
		a[i] = a[p]
		i = p
	}
	a[i] = ev
	*h = a
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	a := *h
	top := a[0]
	n := len(a) - 1
	last := a[n]
	a[n] = event{} // drop the payload's pointer reference for the GC
	a = a[:n]
	*h = a
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			// Find the smallest of up to four children.
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if a[j].before(a[m]) {
					m = j
				}
			}
			if !a[m].before(last) {
				break
			}
			a[i] = a[m]
			i = m
		}
		a[i] = last
	}
	return top
}

// Engine is the simulation core. The zero value is NOT usable; call New.
type Engine struct {
	now    hw.Seconds
	seq    uint64
	events eventHeap
	// processed counts executed events (for runaway detection).
	processed uint64
	// MaxEvents guards against schedule loops; 0 means the default.
	MaxEvents uint64
	// obs receives instrumentation events when attached (observe.go);
	// nil on the uninstrumented fast path.
	obs Collector
	// handler dispatches typed (non-KindFunc) events; see event.go.
	handler Handler
}

// DefaultMaxEvents bounds a single Run; generous for every workload here.
const DefaultMaxEvents = 200_000_000

// New creates an engine at time zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() hw.Seconds { return e.now }

// Processed returns how many events have executed.
func (e *Engine) Processed() uint64 { return e.processed }

// checkTime validates a scheduling time: finite and not in the past.
func (e *Engine) checkTime(t hw.Seconds) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("sim: scheduling at non-finite time %v", t)
	}
	if t < e.now {
		return fmt.Errorf("sim: scheduling at %.9g, before now %.9g", t, e.now)
	}
	return nil
}

// At schedules fn at an absolute time, which must not be in the past.
func (e *Engine) At(t hw.Seconds, fn func()) error {
	if err := e.checkTime(t); err != nil {
		return err
	}
	e.seq++
	e.events.push(event{at: t, seq: e.seq, ev: Ev{Kind: KindFunc, Ptr: fn}})
	return nil
}

// After schedules fn delay seconds from now.
func (e *Engine) After(delay hw.Seconds, fn func()) error {
	if delay < 0 {
		return fmt.Errorf("sim: negative delay %.9g", delay)
	}
	return e.At(e.now+delay, fn)
}

// drain is the execution loop behind Run and RunUntil: it executes
// events until the queue empties or the total processed count reaches
// stopAfter, returning an error if the event budget is exhausted (a
// scheduling loop).
func (e *Engine) drain(stopAfter uint64) error {
	max := e.MaxEvents
	if max == 0 {
		max = DefaultMaxEvents
	}
	for len(e.events) > 0 && e.processed < stopAfter {
		if e.processed >= max {
			return fmt.Errorf("sim: event budget (%d) exhausted at t=%.9g — scheduling loop?", max, e.now)
		}
		ev := e.events.pop()
		e.now = ev.at
		e.processed++
		if ev.ev.Kind == KindFunc {
			ev.ev.Ptr.(func())()
		} else if e.handler != nil {
			e.handler.HandleEvent(ev.ev)
		} else {
			return fmt.Errorf("sim: typed event kind %d at t=%.9g with no handler attached", ev.ev.Kind, e.now)
		}
	}
	return nil
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Reset returns the engine to its initial state (time zero, no events,
// default budget) while keeping the event heap's backing array, so a
// recycled engine runs its next simulation without re-growing the heap.
func (e *Engine) Reset() {
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.MaxEvents = 0
	e.obs = nil
	e.handler = nil
	for i := range e.events {
		e.events[i] = event{} // drop payload pointer references for the GC
	}
	e.events = e.events[:0]
}

// enginePool recycles engines (and their grown heap arrays) across
// simulation runs. One steady-state run schedules tens of thousands of
// events; reusing the backing array removes that re-growth from every
// cell of a parallel sweep.
var enginePool = sync.Pool{New: func() any { return New() }}

// Acquire returns a reset engine from the pool.
func Acquire() *Engine {
	return enginePool.Get().(*Engine)
}

// Release resets the engine and returns it to the pool. The caller must
// not use the engine afterwards.
func Release(e *Engine) {
	if e == nil {
		return
	}
	e.Reset()
	enginePool.Put(e)
}
